package experiments

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/interp"
)

// A second process (modeled by a fresh Context sharing the cache
// directory) must analyze a batch without a single interpreter trace, and
// produce bit-identical profiles.
func TestContextWarmBatchSkipsTracing(t *testing.T) {
	dir := t.TempDir()
	cache, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := corpus.Study()[:4]

	cold, err := NewContextWithCache(cache).Batch(entries, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}

	cache2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := interp.TotalRuns()
	warm, err := NewContextWithCache(cache2).Batch(entries, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.TotalRuns() - before; got != 0 {
		t.Fatalf("warm batch ran the interpreter %d times", got)
	}
	for i := range cold {
		if !reflect.DeepEqual(cold[i].Profile, warm[i].Profile) ||
			!reflect.DeepEqual(cold[i].Vectors, warm[i].Vectors) {
			t.Fatalf("%s: warm result differs from cold", entries[i].Name)
		}
	}

	// And the uncached context must behave exactly as before.
	plain, err := NewContext().Batch(entries, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Profile, warm[i].Profile) {
			t.Fatalf("%s: cached result differs from uncached", entries[i].Name)
		}
	}
}
