// Package hwsim simulates hardware branch direction predictors over the
// interpreter's dynamic branch-outcome stream (interp.RunTrace), to measure
// what a good *static* prior — BTFNT, the Ball/Larus+DSHC heuristics, ESP,
// or a perfect profile — is worth to *dynamic* prediction hardware.
//
// Four predictor families are modeled: per-site 1-bit and 2-bit saturating
// counters, a gshare global-history table, and a small TAGE-like tagged
// multi-history predictor. Per-site predictors seed their counters directly
// from static hint bits; shared-table predictors (gshare) seed via the
// agree transformation — counters predict *agreement with the hint* and
// initialize to weakly-agree, so one table entry shared by sites with
// opposite biases no longer destructively interferes — and the TAGE base
// component, being per-site, seeds directly.
//
// Every predictor is deterministic: same stream in, same mispredict count
// out. The simulation protocol is strict Predict-then-Update per dynamic
// branch, which Counter.Observe enforces by construction.
package hwsim

// Predictor is one dynamic branch direction predictor instance, simulated
// over a single program's outcome stream. Predict returns the predicted
// direction for the next dynamic instance of site; Update resolves it.
// Callers must alternate Predict/Update for the same dynamic branch (the
// TAGE provider bookkeeping depends on it).
type Predictor interface {
	Name() string
	Predict(site int32) bool
	Update(site int32, taken bool)
}

// ctrTaken reports the direction of a 2-bit saturating counter.
func ctrTaken(c uint8) bool { return c >= 2 }

// bump saturates a 2-bit counter toward (up) or away from (down) taken.
func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// oneBit is the per-site last-outcome predictor. Unseeded it starts
// predicting not-taken everywhere; seeded it starts at the hint bit.
type oneBit struct {
	name string
	bits []bool
}

// NewOneBit builds a 1-bit predictor over nsites static sites. hints, when
// non-nil, seeds each site's bit; nil starts all-not-taken.
func NewOneBit(nsites int, hints []bool) Predictor {
	p := &oneBit{name: "1bit", bits: make([]bool, nsites)}
	if hints != nil {
		copy(p.bits, hints)
	}
	return p
}

func (p *oneBit) Name() string            { return p.name }
func (p *oneBit) Predict(site int32) bool { return p.bits[site] }
func (p *oneBit) Update(site int32, taken bool) {
	p.bits[site] = taken
}

// twoBit is the per-site 2-bit saturating counter predictor. Unseeded every
// counter starts weakly-not-taken (1); seeded, a taken hint starts
// weakly-taken (2) — weak either way, so one contrary outcome flips the
// prediction exactly like hardware warming from a hint bit.
type twoBit struct {
	name string
	ctr  []uint8
}

// NewTwoBit builds a 2-bit predictor over nsites static sites, optionally
// seeded from hint bits.
func NewTwoBit(nsites int, hints []bool) Predictor {
	p := &twoBit{name: "2bit", ctr: make([]uint8, nsites)}
	for i := range p.ctr {
		p.ctr[i] = 1
		if hints != nil && hints[i] {
			p.ctr[i] = 2
		}
	}
	return p
}

func (p *twoBit) Name() string            { return p.name }
func (p *twoBit) Predict(site int32) bool { return ctrTaken(p.ctr[site]) }
func (p *twoBit) Update(site int32, taken bool) {
	p.ctr[site] = bump(p.ctr[site], taken)
}
