// Command esptool trains, saves, loads, and applies ESP models:
//
//	esptool train -out model.json              # train on the full corpus
//	esptool train -lang FORT -out model.json   # train on one language group
//	esptool train -tree -out model.json        # decision-tree classifier
//	esptool predict -model model.json -program gzip
//	esptool rules -model model.json            # print decision-tree rules
//	esptool eval                               # all predictors on the corpus
//	esptool calibrate -model model.json        # decision-pinned int8 calibration
//	esptool gencorpus -seed 1 -n 5             # emit generated MinC workloads
//	esptool train -gen 1000 -shard 64 -stream-dir ckpt -out model.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "rules":
		cmdRules(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "calibrate":
		cmdCalibrate(os.Args[2:])
	case "gencorpus":
		cmdGencorpus(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: esptool {train|predict|rules|eval|calibrate|gencorpus} [flags]")
	os.Exit(2)
}

// cacheFlags registers the shared artifact-cache flags on a subcommand's
// flag set and returns a resolver to call after parsing.
func cacheFlags(fs *flag.FlagSet) func() *artifact.Cache {
	dir := fs.String("cache-dir", "", "artifact cache directory (default $ESPCACHE_DIR, else .espcache)")
	noCache := fs.Bool("no-cache", false, "disable the persistent analysis cache")
	maxBytes := fs.Int64("cache-max-bytes", 0,
		"evict least-recently-used cache entries past this size (0 = unbounded)")
	return func() *artifact.Cache {
		if *noCache {
			return nil
		}
		c, err := artifact.Open(artifact.DefaultDir(*dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "esptool: %v (continuing uncached)\n", err)
			return nil
		}
		c.SetMaxBytes(*maxBytes)
		return c
	}
}

// analyzeCorpus profiles a set of corpus entries, serving warm programs
// from the artifact cache.
func analyzeCorpus(entries []corpus.Entry, cache *artifact.Cache) []*core.ProgramData {
	var out []*core.ProgramData
	for _, e := range entries {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			fatal(err)
		}
		pd, err := core.AnalyzeCached(cache, prog, e.Language, e.RunConfig())
		if err != nil {
			fatal(err)
		}
		out = append(out, pd)
	}
	return out
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "esp-model.json", "output model file")
	lang := fs.String("lang", "", "restrict corpus to one language (C or FORT)")
	tree := fs.Bool("tree", false, "train the decision-tree classifier")
	hidden := fs.Int("hidden", 0, "hidden units (default 12)")
	seed := fs.Uint64("seed", 0, "training seed (default 1)")
	exclude := fs.String("exclude", "", "program to hold out of the corpus")
	genN := fs.Int("gen", 0, "train on this many generated programs instead of the real corpus")
	genSeed := fs.Int64("gen-seed", 1, "generated-corpus base seed")
	genMix := fs.String("gen-mix", "", "restrict generation to one mix (default: cycle all)")
	shard := fs.Int("shard", 64, "streaming shard size for -gen")
	streamDir := fs.String("stream-dir", "", "checkpoint directory for streaming training (resumable)")
	cache := cacheFlags(fs)
	mustParse(fs, args)

	cfg := core.Config{Hidden: *hidden, Seed: *seed}
	if *tree {
		cfg.Classifier = core.DecisionTree
	}

	var model *core.Model
	var programs, examples int
	if *genN > 0 {
		spec := gencorpus.Spec{Seed: *genSeed, N: *genN}
		if *genMix != "" {
			m, err := gencorpus.ParseMix(*genMix)
			if err != nil {
				fatal(err)
			}
			spec.Mixes = []gencorpus.Mix{m}
		}
		src := &gencorpus.ShardedCorpus{Entries: spec.Entries(), Size: *shard, Cache: cache()}
		m, st, err := core.TrainStreaming(context.Background(), src, cfg, *streamDir)
		if err != nil {
			fatal(err)
		}
		model = m
		programs, examples = *genN, st.Examples
		fmt.Printf("streamed %d shards (%d resumed from checkpoints)\n", st.Shards, st.Resumed)
	} else {
		entries := corpus.Study()
		if *lang != "" {
			entries = corpus.ByLanguage(ir.Language(*lang))
		}
		var kept []corpus.Entry
		for _, e := range entries {
			if e.Name != *exclude {
				kept = append(kept, e)
			}
		}
		data := analyzeCorpus(kept, cache())
		model = core.Train(data, cfg)
		programs, examples = len(data), countExamples(data)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %s on %d programs (%d examples dim=%d) -> %s\n",
		cfg.Classifier, programs, examples, model.Encoder.Dim, *out)
	if cfg.Classifier == core.NeuralNet {
		fmt.Printf("epochs=%d best thresholded error=%.4f\n",
			model.TrainStats.Epochs, model.TrainStats.BestThresholded)
	}
}

// cmdGencorpus emits generated workloads. The output is a pure function of
// the flags — byte-identical across invocations and machines — so it can be
// diffed, archived, and replayed.
func cmdGencorpus(args []string) {
	fs := flag.NewFlagSet("gencorpus", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base seed")
	n := fs.Int("n", 1, "number of programs")
	mix := fs.String("mix", "", "restrict to one mix: loop-heavy, pointer-chasing, recursion-heavy, call-dense, mixed (default: cycle all)")
	prints := fs.Bool("prints", false, "instrument programs with __print statements")
	list := fs.Bool("list", false, "print one metadata line per program instead of sources")
	mustParse(fs, args)

	spec := gencorpus.Spec{Seed: *seed, N: *n, Opt: gencorpus.Options{Prints: *prints}}
	if *mix != "" {
		m, err := gencorpus.ParseMix(*mix)
		if err != nil {
			fatal(err)
		}
		spec.Mixes = []gencorpus.Mix{m}
	}
	for i := 0; i < spec.N; i++ {
		p := spec.Program(i)
		if *list {
			fmt.Printf("%s seed=%d runseed=%d input=%v bytes=%d\n",
				p.Name, p.Seed, p.RunSeed, p.Input, len(p.Source))
			continue
		}
		fmt.Printf("// program: %s\n// seed: %d  runseed: %d  input: %v\n%s\n", p.Name, p.Seed, p.RunSeed, p.Input, p.Source)
	}
}

func countExamples(data []*core.ProgramData) int {
	n := 0
	for _, pd := range data {
		n += len(pd.Examples())
	}
	return n
}

func loadModel(path string) *core.Model {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		fatal(err)
	}
	return m
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "esp-model.json", "model file")
	program := fs.String("program", "", "corpus program to predict")
	verbose := fs.Bool("v", false, "print per-site predictions")
	cache := cacheFlags(fs)
	mustParse(fs, args)

	e, ok := corpus.ByName(*program)
	if !ok {
		fatal(fmt.Errorf("unknown corpus program %q", *program))
	}
	model := loadModel(*modelPath)
	data := analyzeCorpus([]corpus.Entry{e}, cache())[0]
	pred := &core.Predictor{Model: model}
	miss := heuristics.MissRate(data.Sites, data.Profile, pred)
	aphc := heuristics.MissRate(data.Sites, data.Profile, heuristics.NewAPHC())
	fmt.Printf("%s: ESP miss %s%%  (APHC %s%%, BTFNT %s%%)\n", e.Name,
		stats.Pct1(miss), stats.Pct1(aphc),
		stats.Pct1(heuristics.MissRate(data.Sites, data.Profile, heuristics.BTFNT{})))
	if *verbose {
		for _, o := range heuristics.Outcomes(data.Sites, data.Profile, pred) {
			if o.Executed == 0 {
				continue
			}
			fmt.Printf("  %-24s exec=%8d taken=%5.2f predicted=%s\n",
				o.Ref, o.Executed, float64(o.Taken)/float64(o.Executed), o.Pred)
		}
	}
}

func cmdRules(args []string) {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	modelPath := fs.String("model", "esp-model.json", "model file")
	mustParse(fs, args)
	model := loadModel(*modelPath)
	if model.Tree == nil {
		fatal(fmt.Errorf("model %s is not a decision tree; train with -tree", *modelPath))
	}
	for _, r := range model.Tree.Rules() {
		fmt.Println(r)
	}
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	cache := cacheFlags(fs)
	mustParse(fs, args)
	data := analyzeCorpus(corpus.Study(), cache())
	t := stats.NewTable("Program", "BTFNT", "APHC", "Perfect")
	for _, pd := range data {
		t.Row(pd.Name,
			stats.Pct(heuristics.MissRate(pd.Sites, pd.Profile, heuristics.BTFNT{})),
			stats.Pct(heuristics.MissRate(pd.Sites, pd.Profile, heuristics.NewAPHC())),
			stats.Pct(heuristics.MissRate(pd.Sites, pd.Profile, &heuristics.Perfect{Prof: pd.Profile})))
	}
	fmt.Print(t.String())
}

// cmdCalibrate sweeps the int8 quantization scale over the full corpus,
// pins every decision to the float reference via the guard band, and writes
// the calibration into the model file so espserve -quant can use it.
func cmdCalibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	modelPath := fs.String("model", "esp-model.json", "model file to calibrate")
	out := fs.String("out", "", "output model file (default: overwrite -model)")
	cache := cacheFlags(fs)
	mustParse(fs, args)

	model := loadModel(*modelPath)
	data := analyzeCorpus(corpus.Study(), cache())
	rep, err := core.CalibrateQuant(model, data, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())

	dst := *out
	if dst == "" {
		dst = *modelPath
	}
	f, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("calibrated model -> %s\n", dst)
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esptool:", err)
	os.Exit(1)
}
