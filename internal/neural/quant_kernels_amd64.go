//go:build amd64 && !purego

package neural

// useAVX2 gates the int8 kernels on hardware and OS support: AVX2 in CPUID
// leaf 7 plus YMM state enabled in XCR0 (the same discipline as useAVX for
// the float kernels).
var useAVX2 = x86HasAVX2()

// x86HasAVX2 reports CPU + OS support for the AVX2 integer kernels
// (implemented in quant_kernels_amd64.s).
func x86HasAVX2() bool

//go:noescape
func quantDotAVX2(a, b *int8, n int) int32

// quantDot returns the int8 dot product Σ a[i]·b[i] as int32. The AVX2 and
// generic paths return identical values for all inputs (integer adds are
// order-independent), so this dispatch never changes results.
func quantDot(a, b []int8) int32 {
	if useAVX2 && len(a) > 0 {
		return quantDotAVX2(&a[0], &b[0], len(a))
	}
	return quantDotGeneric(a, b)
}
