package codegen_test

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/interp"
	"repro/internal/minic"
)

// TestDifferentialRandomPrograms generates random MinC programs (the shared
// gencorpus generator with __print instrumentation enabled, cycling through
// every branch-character mix) and checks that every target/compiler
// configuration computes identical outputs — the compiler axes of Tables 6
// and 7 must be semantics-preserving by construction, so any divergence is
// a code-generator bug.
func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	targets := []codegen.Target{codegen.AlphaCCv2, codegen.AlphaGEM, codegen.AlphaGCC, codegen.MIPSCC,
		{Name: "tiny-regs", ISA: codegen.ISAAlpha, IntTemps: 3, FloatTemps: 3, FoldConstants: true}}
	spec := gencorpus.Spec{Seed: 1000, N: trials, Opt: gencorpus.Options{Prints: true}}
	for trial := 0; trial < trials; trial++ {
		p := spec.Program(trial)
		ast, err := minic.Parse(p.Name, p.Source+corpus.StdlibSource+corpus.Stdlib2Source)
		if err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, p.Source)
		}
		base := runFor(t, trial, ast, p, codegen.AlphaCC)
		for _, tgt := range targets {
			got := runFor(t, trial, ast, p, tgt)
			if got.Result != base.Result {
				t.Fatalf("trial %d: %s result %d, base %d\n%s",
					trial, tgt.Name, got.Result, base.Result, p.Source)
			}
			if len(got.Outputs) != len(base.Outputs) {
				t.Fatalf("trial %d: %s output count %d, base %d\n%s",
					trial, tgt.Name, len(got.Outputs), len(base.Outputs), p.Source)
			}
			for i := range got.Outputs {
				if got.Outputs[i] != base.Outputs[i] {
					t.Fatalf("trial %d: %s output[%d] = %d, base %d\n%s",
						trial, tgt.Name, i, got.Outputs[i], base.Outputs[i], p.Source)
				}
			}
		}
	}
}

func runFor(t *testing.T, trial int, ast *minic.Program, p gencorpus.Program, tgt codegen.Target) *interp.Profile {
	t.Helper()
	prog, err := codegen.Compile(ast, p.Entry().Language, tgt)
	if err != nil {
		t.Fatalf("trial %d: compile for %s: %v\n%s", trial, tgt.Name, err, p.Source)
	}
	prof, err := interp.Run(prog, interp.Config{Input: p.Input, Seed: p.RunSeed, MaxInsns: 8_000_000})
	if err != nil {
		t.Fatalf("trial %d: run for %s: %v\n%s", trial, tgt.Name, err, p.Source)
	}
	return prof
}
