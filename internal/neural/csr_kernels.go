package neural

// The two inner loops of the sparse training kernel, in axpy form. Both are
// "accumulator[i] += scale * vector[i]" over a hidden-unit range, once per
// nonzero input column:
//
//	gather:  h[i]          += w[col*stride+i] * val[p]   (forward pass)
//	scatter: gw[col*stride+i] += dh[i] * val[p]          (gradient pass)
//
// The amd64 build carries AVX versions (csr_kernels_amd64.s). Vectorizing is
// bit-safe here because lanes are distinct accumulators: every h[i] / gw slot
// still receives exactly the same multiplies and adds in the same order as
// the scalar loop, and the kernels use separate IEEE multiply and add
// instructions (never FMA, whose single rounding would change results).

// csrGatherGeneric is the portable gather: n accumulators starting at h,
// input columns of width stride starting at w.
func csrGatherGeneric(h, w []float64, idx []int32, val []float64, n, stride int) {
	for p, j := range idx {
		xv := val[p]
		col := w[int(j)*stride : int(j)*stride+n]
		for i, wv := range col {
			h[i] += wv * xv
		}
	}
}

// csrScatterGeneric is the portable scatter: adds dh[i]*val[p] into column
// idx[p] of gw for every nonzero.
func csrScatterGeneric(gw, dh []float64, idx []int32, val []float64, n, stride int) {
	for p, j := range idx {
		xv := val[p]
		col := gw[int(j)*stride : int(j)*stride+n]
		for i := range col {
			col[i] += dh[i] * xv
		}
	}
}
