package minic

import (
	"strconv"
	"strings"
)

// Lexer tokenizes MinC source text. Comments are C-style line comments
// ("// ...") and block comments ("/* ... */").
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token, or an error for malformed input.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		begin := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[begin:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9':
		return lx.number(start)
	}
	lx.advance()
	mk := func(k TokKind) (Token, error) { return Token{Kind: k, Pos: start}, nil }
	switch c {
	case '(':
		return mk(TokLParen)
	case ')':
		return mk(TokRParen)
	case '{':
		return mk(TokLBrace)
	case '}':
		return mk(TokRBrace)
	case '[':
		return mk(TokLBracket)
	case ']':
		return mk(TokRBracket)
	case ';':
		return mk(TokSemi)
	case ',':
		return mk(TokComma)
	case '+':
		return mk(TokPlus)
	case '-':
		return mk(TokMinus)
	case '*':
		return mk(TokStar)
	case '/':
		return mk(TokSlash)
	case '%':
		return mk(TokPercent)
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokEq)
		}
		return mk(TokAssign)
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokNe)
		}
		return mk(TokBang)
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokLe)
		}
		return mk(TokLt)
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return mk(TokGe)
		}
		return mk(TokGt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return mk(TokAndAnd)
		}
		return mk(TokAmp)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return mk(TokOrOr)
		}
		return Token{}, errf(start, "unexpected character '|' (did you mean '||'?)")
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			open := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return errf(open, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) number(start Pos) (Token, error) {
	begin := lx.off
	for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' && lx.peek2() >= '0' && lx.peek2() <= '9' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		saveOff, saveCol := lx.off, lx.col
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if lx.peek() >= '0' && lx.peek() <= '9' {
			isFloat = true
			for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
				lx.advance()
			}
		} else {
			lx.off, lx.col = saveOff, saveCol
		}
	}
	text := lx.src[begin:lx.off]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(start, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Text: text, Float: f, Pos: start}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errf(start, "bad integer literal %q", text)
	}
	return Token{Kind: TokIntLit, Text: text, Int: v, Pos: start}, nil
}

// LexAll tokenizes the whole input (excluding the trailing EOF token).
// It is primarily a testing convenience.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

// isIdentStart reports whether c can begin an identifier.
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// reject reports a lexer-level sanity failure for inputs that contain NUL
// bytes (never valid in MinC source).
func reject(src string) error {
	if i := strings.IndexByte(src, 0); i >= 0 {
		return errf(Pos{Line: 1, Col: 1}, "source contains NUL byte at offset %d", i)
	}
	return nil
}
