package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/obs"
)

// StageStat summarizes one analysis stage's timing distribution, extracted
// from the same log-bucketed histogram type the serving layer uses, so the
// offline pipeline and the online service report latency in one vocabulary.
type StageStat struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	MeanUS  float64 `json:"mean_us"`
	P50US   float64 `json:"p50_us"`
	P90US   float64 `json:"p90_us"`
	P99US   float64 `json:"p99_us"`
	TotalUS int64   `json:"total_us"`
}

// StageReport is the per-stage timing breakdown of a corpus analysis run:
// where the wall time goes between compiling, tracing (the interpreter
// profiling run), featurizing, and training.
type StageReport struct {
	Programs int         `json:"programs"`
	Stages   []StageStat `json:"stages"`
}

// stageNames fixes the report order.
var stageNames = []string{"compile", "trace", "featurize", "train"}

// AnalysisStages runs the full offline pipeline over the given corpus
// entries, timing each stage separately: compile (source to IR), trace (the
// profiling interpreter run — the dominant cost), featurize (branch-site
// collection and Table 2 feature extraction), and train (one model fit over
// everything). It deliberately bypasses the artifact cache: the point is to
// measure the stages, and a warm cache would hide the traced ones.
func AnalysisStages(entries []corpus.Entry, espCfg core.Config) (*StageReport, error) {
	hists := make(map[string]*obs.Histogram, len(stageNames))
	for _, name := range stageNames {
		hists[name] = &obs.Histogram{}
	}
	timed := func(stage string, f func() error) error {
		start := time.Now()
		err := f()
		hists[stage].Observe(time.Since(start).Microseconds())
		return err
	}

	data := make([]*core.ProgramData, 0, len(entries))
	for _, e := range entries {
		pd := &core.ProgramData{Name: e.Name, Language: e.Language}
		err := timed("compile", func() (err error) {
			pd.Prog, err = e.Compile(codegen.Default)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("stages: compile %s: %w", e.Name, err)
		}
		err = timed("trace", func() (err error) {
			pd.Profile, err = interp.Run(pd.Prog, e.RunConfig())
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("stages: trace %s: %w", e.Name, err)
		}
		_ = timed("featurize", func() error {
			pd.Sites = features.Collect(pd.Prog)
			pd.Vectors = features.ExtractAll(pd.Sites)
			return nil
		})
		data = append(data, pd)
	}
	_ = timed("train", func() error {
		core.Train(data, espCfg)
		return nil
	})

	rep := &StageReport{Programs: len(entries)}
	for _, name := range stageNames {
		s := hists[name].Snapshot()
		rep.Stages = append(rep.Stages, StageStat{
			Stage:   name,
			Count:   s.Count,
			MeanUS:  s.Mean(),
			P50US:   s.Quantile(0.5),
			P90US:   s.Quantile(0.9),
			P99US:   s.Quantile(0.99),
			TotalUS: s.Sum,
		})
	}
	return rep, nil
}

// Render formats the report as an aligned table, one row per stage.
func (r *StageReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-stage analysis timings (%d programs)\n", r.Programs)
	fmt.Fprintf(&b, "%-10s %6s %12s %12s %12s %12s %12s\n",
		"stage", "n", "mean", "p50", "p90", "p99", "total")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-10s %6d %12s %12s %12s %12s %12s\n",
			s.Stage, s.Count,
			fmtMicros(s.MeanUS), fmtMicros(s.P50US), fmtMicros(s.P90US),
			fmtMicros(s.P99US), fmtMicros(float64(s.TotalUS)))
	}
	return strings.TrimRight(b.String(), "\n")
}

// fmtMicros renders a microsecond quantity at a human scale.
func fmtMicros(us float64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
