package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/features"
)

// PredictPipeline runs the steady-state vectors request path without the
// HTTP plumbing around it: arena decode → pooled batch submit →
// hand-rendered response. The response bytes are appended to out (reusing
// its capacity; pass nil to allocate) and returned. This is the unit
// espbench -serve measures and the load test's throughput assertion drives;
// the /predict handler wraps exactly these stages.
//
// body must be a well-formed vectors-only request ({"id": ..., "vectors":
// [[...], ...]}); anything else is an error here rather than a silent fall
// back, so a benchmark can't accidentally time the wrong path.
func (s *Server) PredictPipeline(ctx context.Context, body, out []byte) ([]byte, error) {
	ar := getArena()
	ar.body = append(ar.body[:0], body...)
	if !ar.decode(ar.body, s.cfg.MaxVectors) {
		putArena(ar)
		return out, fmt.Errorf("serve: body is not a fast-path vectors request")
	}
	mv := s.pinned()
	defer mv.unpin()
	j := ar.prepareJob(ctx)
	reusable, err := mv.pool.submitJob(j)
	if err == nil {
		out = append(out[:0], ar.encodeResponse(j.probs)...)
	}
	if reusable {
		putArena(ar)
	}
	return out, err
}

// PredictPipelineReference runs the same request through the pre-arena
// pipeline: encoding/json decode, features.FromValues, a per-request job
// allocation, encoding/json response. This is the committed float-era
// request path, preserved verbatim as the baseline for BENCH_serve.json's
// speedup ratio — and it is still the live slow path for requests the
// arena scanner doesn't own.
func (s *Server) PredictPipelineReference(ctx context.Context, body []byte) ([]byte, error) {
	var req PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if len(req.Vectors) == 0 {
		return nil, fmt.Errorf("serve: reference pipeline needs vectors")
	}
	if len(req.Vectors) > s.cfg.MaxVectors {
		return nil, fmt.Errorf("serve: request has %d vectors, limit %d", len(req.Vectors), s.cfg.MaxVectors)
	}
	vecs := make([]features.Vector, len(req.Vectors))
	refs := make([]string, len(req.Vectors))
	for i, vals := range req.Vectors {
		v, err := features.FromValues(vals)
		if err != nil {
			return nil, fmt.Errorf("vector %d: %v", i, err)
		}
		vecs[i] = v
		refs[i] = fmt.Sprintf("#%d", i)
	}
	mv := s.pinned()
	defer mv.unpin()
	probs, err := mv.pool.submit(ctx, vecs)
	if err != nil {
		return nil, err
	}
	resp := PredictResponse{ID: req.ID, Predictions: make([]Prediction, len(vecs))}
	for i, p := range probs {
		conf := p
		if conf < 0.5 {
			conf = 1 - conf
		}
		resp.Predictions[i] = Prediction{
			Branch:      refs[i],
			Taken:       p > 0.5,
			Probability: p,
			Confidence:  conf,
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
