package codegen

import (
	"math"

	"repro/internal/ir"
	"repro/internal/minic"
)

// genCondBranch emits "if cond == when, branch to target; otherwise fall
// through". After it returns, the builder's current block is the fall-through
// continuation. Short-circuit operators expand into branch trees, which is
// where most of a program's non-loop conditional branches come from.
func (g *generator) genCondBranch(cond minic.Expr, target *ir.Block, when bool) {
	switch x := cond.(type) {
	case *minic.UnExpr:
		if x.Op == minic.OpNot {
			g.genCondBranch(x.X, target, !when)
			return
		}
	case *minic.IntLit:
		if (x.Value != 0) == when {
			g.fb.Jump(target)
			g.startDeadBlock()
		}
		return
	case *minic.BinExpr:
		switch {
		case x.Op == minic.OpAnd && !when:
			g.genCondBranch(x.L, target, false)
			g.genCondBranch(x.R, target, false)
			return
		case x.Op == minic.OpAnd && when:
			cont := g.fb.NewBlockDetached()
			g.genCondBranch(x.L, cont, false)
			g.genCondBranch(x.R, target, true)
			g.fb.Place(cont)
			g.fb.SetBlock(cont)
			return
		case x.Op == minic.OpOr && when:
			g.genCondBranch(x.L, target, true)
			g.genCondBranch(x.R, target, true)
			return
		case x.Op == minic.OpOr && !when:
			cont := g.fb.NewBlockDetached()
			g.genCondBranch(x.L, cont, true)
			g.genCondBranch(x.R, target, false)
			g.fb.Place(cont)
			g.fb.SetBlock(cont)
			return
		case x.Op.IsComparison():
			g.genCompareBranch(x, target, when)
			return
		}
	}
	// General scalar condition: branch on (non)zero.
	v := g.genExpr(cond)
	op := ir.OpBne
	if !when {
		op = ir.OpBeq
	}
	g.emitBranch(op, v.reg, target)
	g.freeVal(v)
	g.startFallthrough()
}

// emitBranch emits a conditional branch, stamping the current statement
// origin on the branch site (the Meta side table CompilePlanned returns).
func (g *generator) emitBranch(op ir.Op, reg ir.Reg, target *ir.Block) {
	g.noteBranch()
	g.fb.Branch(op, reg, target)
}

// emitBranch2 is emitBranch for the MIPS-style two-register forms.
func (g *generator) emitBranch2(op ir.Op, a, b ir.Reg, target *ir.Block) {
	g.noteBranch()
	g.fb.Branch2(op, a, b, target)
}

func (g *generator) noteBranch() {
	if g.meta != nil {
		g.meta.Branch[ir.BranchRef{Func: g.fb.Func().Name, Block: g.fb.Block().ID}] = g.origin
	}
}

// startFallthrough begins the fall-through block after a conditional branch.
func (g *generator) startFallthrough() {
	nb := g.fb.NewBlock()
	g.fb.SetBlock(nb)
}

// genCompareBranch lowers a relational test directly into a branch. The
// instruction selection here is the architecture/compiler axis of Tables 6
// and 7: the Alpha branches on a register's sign/zero (so comparisons
// against zero need no compare instruction), the MIPS-style target compares
// two registers in the branch itself for ==/!=, and gcc-style code always
// materializes the comparison.
func (g *generator) genCompareBranch(x *minic.BinExpr, target *ir.Block, when bool) {
	if x.L.Type().Decay().IsFloat() {
		g.genFloatCompareBranch(x, target, when)
		return
	}
	// Direct compare-against-zero branches (Alpha style).
	if !g.tgt.MaterializeCompares {
		if lit, swapped, ok := zeroOperand(x); ok {
			op := x.Op
			if swapped {
				op = swapCmp(op)
			}
			bop := directIntBranch(op)
			if !when {
				bop = bop.BranchNegate()
			}
			v := g.genExpr(lit)
			g.emitBranch(bop, v.reg, target)
			g.freeVal(v)
			g.startFallthrough()
			return
		}
	}
	// MIPS-style two-register equality branches.
	if g.tgt.ISA == ISAMIPS && (x.Op == minic.OpEq || x.Op == minic.OpNe) {
		lv := g.genExpr(x.L)
		g.maybeSpill(&lv)
		rv := g.genExpr(x.R)
		lv = g.reload(lv)
		// OpBeq2 is taken when L == R; pick the form whose taken condition
		// matches (source condition == when).
		bop := ir.OpBeq2
		if (x.Op == minic.OpNe) == when {
			bop = ir.OpBne2
		}
		g.emitBranch2(bop, lv.reg, rv.reg, target)
		g.freeVal(lv)
		g.freeVal(rv)
		g.startFallthrough()
		return
	}
	// General: compare into a register, branch on it.
	cv, negate := g.genIntCompare(x)
	effWhen := when
	if negate {
		effWhen = !when
	}
	op := ir.OpBne
	if !effWhen {
		op = ir.OpBeq
	}
	g.emitBranch(op, cv.reg, target)
	g.freeVal(cv)
	g.startFallthrough()
}

// zeroOperand detects comparisons against the integer literal 0 or null.
// It returns the non-zero side and whether the zero was on the left
// (requiring the comparison to be mirrored).
func zeroOperand(x *minic.BinExpr) (other minic.Expr, swapped bool, ok bool) {
	isZero := func(e minic.Expr) bool {
		switch lit := e.(type) {
		case *minic.IntLit:
			return lit.Value == 0
		case *minic.NullLit:
			return true
		}
		return false
	}
	if isZero(x.R) {
		return x.L, false, true
	}
	if isZero(x.L) {
		return x.R, true, true
	}
	return nil, false, false
}

// swapCmp mirrors a comparison operator (a OP b == b swap(OP) a).
func swapCmp(op minic.BinOpKind) minic.BinOpKind {
	switch op {
	case minic.OpLt:
		return minic.OpGt
	case minic.OpLe:
		return minic.OpGe
	case minic.OpGt:
		return minic.OpLt
	case minic.OpGe:
		return minic.OpLe
	}
	return op // ==, != are symmetric
}

// directIntBranch maps "value OP 0" to the Alpha branch testing it.
func directIntBranch(op minic.BinOpKind) ir.Op {
	switch op {
	case minic.OpEq:
		return ir.OpBeq
	case minic.OpNe:
		return ir.OpBne
	case minic.OpLt:
		return ir.OpBlt
	case minic.OpLe:
		return ir.OpBle
	case minic.OpGt:
		return ir.OpBgt
	case minic.OpGe:
		return ir.OpBge
	}
	panic("codegen: not a comparison")
}

func directFloatBranch(op minic.BinOpKind) ir.Op {
	switch op {
	case minic.OpEq:
		return ir.OpFbeq
	case minic.OpNe:
		return ir.OpFbne
	case minic.OpLt:
		return ir.OpFblt
	case minic.OpLe:
		return ir.OpFble
	case minic.OpGt:
		return ir.OpFbgt
	case minic.OpGe:
		return ir.OpFbge
	}
	panic("codegen: not a comparison")
}

func (g *generator) genFloatCompareBranch(x *minic.BinExpr, target *ir.Block, when bool) {
	// Direct branch for comparisons against the literal 0.0.
	if !g.tgt.MaterializeCompares {
		if other, swapped, ok := floatZeroOperand(x); ok {
			op := x.Op
			if swapped {
				op = swapCmp(op)
			}
			bop := directFloatBranch(op)
			if !when {
				bop = bop.BranchNegate()
			}
			v := g.genExpr(other)
			g.emitBranch(bop, v.reg, target)
			g.freeVal(v)
			g.startFallthrough()
			return
		}
	}
	fv, negate := g.genFloatCompare(x)
	effWhen := when
	if negate {
		effWhen = !when
	}
	op := ir.OpFbne
	if !effWhen {
		op = ir.OpFbeq
	}
	g.emitBranch(op, fv.reg, target)
	g.freeVal(fv)
	g.startFallthrough()
}

func floatZeroOperand(x *minic.BinExpr) (other minic.Expr, swapped bool, ok bool) {
	isZero := func(e minic.Expr) bool {
		lit, isLit := e.(*minic.FloatLit)
		return isLit && (lit.Value == 0 || math.Signbit(lit.Value) && lit.Value == 0)
	}
	if isZero(x.R) {
		return x.L, false, true
	}
	if isZero(x.L) {
		return x.R, true, true
	}
	return nil, false, false
}
