package neural

import (
	"fmt"
	"math"
)

// QuantNet is the int8 inference twin of Net: the hidden×inputs weight
// matrix quantized symmetrically per row to int8, inputs quantized to int8
// with one fixed calibrated scale, and the hidden pre-activations computed
// as int32 dot products (quant_kernels). Only the first layer — the O(D·H)
// bulk of the forward pass — runs in fixed point; biases, tanh, and the
// H-wide output layer stay float64, where they cost nothing and keep the
// output a smooth probability.
//
// Quantization moves probabilities, never measured outcomes: the calibration
// step (core.CalibrateQuant) picks XScale and a decision guard band so that
// taken/not-taken decisions — and therefore every miss rate — are pinned to
// the float reference over the whole corpus. See DESIGN.md.
type QuantNet struct {
	Inputs int
	Hidden int
	// WQ is the row-major Hidden×Inputs int8 weight matrix:
	// WQ[i*Inputs+j] ≈ W[i][j] / WScale[i]. Row-major (the transpose of
	// Net.W's column-major layout) so each hidden unit's dot product walks
	// one contiguous int8 row.
	WQ []int8
	// WScale dequantizes row i: w ≈ int8 · WScale[i] (symmetric, per row).
	WScale []float64
	// XScale quantizes inputs: qx = clamp(round(x · XScale), ±127). Fixed
	// at calibration time rather than per-vector, so a (feature, value)
	// pair always quantizes to the same int8 pattern and the quantized
	// encoder can precompute whole blocks (features.QuantEncoder).
	XScale float64
	// B, V, A are carried unquantized from the float net.
	B []float64
	V []float64
	A float64

	// deq[i] = WScale[i]/XScale folds both scales into the single
	// float multiply that turns row i's int32 accumulator into a
	// pre-activation.
	deq []float64
}

// QuantizeSym exposes the symmetric int8 grid to the feature-level
// quantized encoder, which precomputes per-value input blocks and must land
// on exactly the codes QuantizeInput would produce (same step, same
// rounding). step is the quantization step size, i.e. 1/XScale for inputs.
func QuantizeSym(v, step float64) int8 { return quantizeSym(v, step) }

// quantizeSym quantizes v symmetrically: clamp(round(v/scale)) to ±127.
// The -128 code is never produced, keeping the grid symmetric around zero.
func quantizeSym(v, scale float64) int8 {
	if scale == 0 {
		return 0
	}
	r := math.Round(v / scale)
	if r > 127 {
		return 127
	}
	if r < -127 {
		return -127
	}
	return int8(r)
}

// Quantize builds the int8 twin of a trained float net. xscale is the input
// quantization scale (1/xscale is the largest representable activation
// magnitude; larger inputs saturate).
func Quantize(n *Net, xscale float64) (*QuantNet, error) {
	if n == nil {
		return nil, fmt.Errorf("neural: Quantize: nil net")
	}
	if xscale <= 0 || math.IsInf(xscale, 0) || math.IsNaN(xscale) {
		return nil, fmt.Errorf("neural: Quantize: bad xscale %v", xscale)
	}
	q := &QuantNet{
		Inputs: n.Inputs,
		Hidden: n.Hidden,
		WQ:     make([]int8, n.Hidden*n.Inputs),
		WScale: make([]float64, n.Hidden),
		XScale: xscale,
		B:      append([]float64(nil), n.B...),
		V:      append([]float64(nil), n.V...),
		A:      n.A,
		deq:    make([]float64, n.Hidden),
	}
	for i := 0; i < n.Hidden; i++ {
		var maxAbs float64
		for j := 0; j < n.Inputs; j++ {
			if a := math.Abs(n.Weight(i, j)); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1 // all-zero row: any scale dequantizes zeros to zero
		}
		q.WScale[i] = scale
		q.deq[i] = scale / xscale
		row := q.WQ[i*n.Inputs : (i+1)*n.Inputs]
		for j := 0; j < n.Inputs; j++ {
			row[j] = quantizeSym(n.Weight(i, j), scale)
		}
	}
	return q, nil
}

// QuantizeInput writes the int8 quantization of x into qx (both length
// Inputs). Serving uses features.QuantEncoder instead, which produces the
// same bytes from precomputed per-value blocks without touching float64.
func (q *QuantNet) QuantizeInput(x []float64, qx []int8) {
	if len(x) != q.Inputs || len(qx) != q.Inputs {
		panic(fmt.Sprintf("neural: QuantizeInput lengths x=%d qx=%d, want %d", len(x), len(qx), q.Inputs))
	}
	inv := 1 / q.XScale
	for j, v := range x {
		qx[j] = quantizeSym(v, inv)
	}
}

// Forward returns the quantized network's output probability for one
// already-quantized input row. It allocates nothing.
//
// The nonlinearity is tanhApprox, not math.Tanh: the approximation error is
// calibration noise by design (the sweep measures flips against this exact
// function), and the table lookup is what keeps the int8 pass from being
// tanh-bound.
func (q *QuantNet) Forward(qx []int8) float64 {
	if len(qx) != q.Inputs {
		panic(fmt.Sprintf("neural: QuantNet.Forward input length %d, want %d", len(qx), q.Inputs))
	}
	z := q.A
	d := q.Inputs
	for i := 0; i < q.Hidden; i++ {
		acc := quantDot(q.WQ[i*d:(i+1)*d], qx)
		z += q.V[i] * tanhApprox(float64(acc)*q.deq[i]+q.B[i])
	}
	return 0.5 * (tanhApprox(z) + 1)
}

// ForwardAcc finishes a forward pass from externally computed hidden-unit
// accumulators (acc[i] = Σ_j WQ[i·d+j]·qx[j]). Integer addition is exact
// and associative, so any decomposition of the dot products — in
// particular the per-feature-block fusion core builds for serving — yields
// accumulators identical to quantDot's, and this function performs the
// float combination in exactly Forward's operation order. The two are
// therefore bit-identical: the calibration sweep can measure with Forward
// and serving can answer with ForwardAcc.
func (q *QuantNet) ForwardAcc(acc []int32) float64 {
	if len(acc) != q.Hidden {
		panic(fmt.Sprintf("neural: QuantNet.ForwardAcc acc length %d, want %d", len(acc), q.Hidden))
	}
	z := q.A
	for i, a := range acc {
		z += q.V[i] * tanhApprox(float64(a)*q.deq[i]+q.B[i])
	}
	return 0.5 * (tanhApprox(z) + 1)
}

// ForwardBatch runs every quantized row through the network, writing the
// output probabilities into out. len(out) must equal len(qxs); the empty
// batch is a no-op.
func (q *QuantNet) ForwardBatch(qxs [][]int8, out []float64) {
	if len(out) != len(qxs) {
		panic(fmt.Sprintf("neural: QuantNet.ForwardBatch out length %d, want %d", len(out), len(qxs)))
	}
	for i, qx := range qxs {
		out[i] = q.Forward(qx)
	}
}
