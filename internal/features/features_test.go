package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/minic"
)

// compile builds a MinC program for feature tests.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := minic.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// siteIn finds the branch site inside the named function whose feature
// vector satisfies pred (first match in site order).
func siteIn(ps *ProgramSites, fn string) []*Site {
	var out []*Site
	for _, s := range ps.Sites {
		if s.Ref.Func == fn {
			out = append(out, s)
		}
	}
	return out
}

func TestLoopFeatures(t *testing.T) {
	prog := compile(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s + i; }
	return s;
}`)
	ps := Collect(prog)
	sites := siteIn(ps, "main")
	if len(sites) != 2 {
		t.Fatalf("expected guard + iteration branches, got %d sites", len(sites))
	}
	var backSite *Site
	for _, s := range sites {
		v := Of(s)
		if v.Values[FTakenSuccBackedge] == "LB" {
			backSite = s
			if v.Values[FBrDirection] != "B" {
				t.Error("back-edge branch must be backward")
			}
			if v.Values[FNotTakenSuccExit] != "LE" {
				t.Error("the fall-through of the iteration branch exits the loop")
			}
		}
	}
	if backSite == nil {
		t.Fatal("no branch with a taken back edge (loop inversion broken?)")
	}
}

func TestLanguageAndProcedureFeatures(t *testing.T) {
	prog := compile(t, `
int leafFn(int x) { if (x > 0) { return 1; } return 0; }
int selfFn(int x) { if (x > 0) { return selfFn(x - 1); } return 0; }
int main() { return leafFn(3) + selfFn(2); }`)
	ps := Collect(prog)
	leaf := siteIn(ps, "leafFn")[0]
	self := siteIn(ps, "selfFn")[0]
	mainS := siteIn(ps, "main")
	if v := Of(leaf); v.Values[FProcedureType] != "Leaf" {
		t.Errorf("leafFn type = %s", v.Values[FProcedureType])
	}
	if v := Of(self); v.Values[FProcedureType] != "CallSelf" {
		t.Errorf("selfFn type = %s", v.Values[FProcedureType])
	}
	if len(mainS) > 0 {
		if v := Of(mainS[0]); v.Values[FProcedureType] != "NonLeaf" {
			t.Errorf("main type = %s", v.Values[FProcedureType])
		}
	}
	if v := Of(leaf); v.Values[FLanguage] != "C" {
		t.Errorf("language = %s", v.Values[FLanguage])
	}
}

func TestCondInfoPatterns(t *testing.T) {
	prog := compile(t, `
int g;
int* gp;
int main() {
	int x;
	x = g;
	gp = &g; // a pointer store types the global slot for the analysis
	if (x < 0) { g = 1; }
	if (x == 7) { g = 2; }
	if (gp == null) { g = 3; }
	float f;
	f = 0.5;
	if (f < 0.0) { g = 4; }
	return 0;
}`)
	ps := Collect(prog)
	sites := siteIn(ps, "main")
	if len(sites) != 4 {
		t.Fatalf("got %d sites, want 4", len(sites))
	}
	// Site order follows block order: x<0, x==7, gp==null, f<0.
	c0 := sites[0].Cond
	if !c0.RightZero || c0.Float || c0.LeftPtr {
		t.Errorf("x<0 cond = %+v", c0)
	}
	c1 := sites[1].Cond
	if !c1.RightConst || c1.RightZero {
		t.Errorf("x==7 cond = %+v", c1)
	}
	c2 := sites[2].Cond
	if !c2.LeftPtr || !c2.RightZero {
		t.Errorf("gp==null cond = %+v", c2)
	}
	c3 := sites[3].Cond
	if !c3.Float || !c3.RightZero {
		t.Errorf("f<0.0 cond = %+v", c3)
	}
}

func TestSuccessorCallFeature(t *testing.T) {
	prog := compile(t, `
int helper() { return 1; }
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		x = helper();
	}
	return x;
}`)
	ps := Collect(prog)
	s := siteIn(ps, "main")[0]
	v := Of(s)
	// The branch skips the call: its fall-through contains the call and its
	// taken side (the join) does not lead to one unconditionally... the
	// then-block falls into the join, so taken side reaches no call.
	if v.Values[FNotTakenSuccCall] != "PC" {
		t.Errorf("fall-through call feature = %s, want PC", v.Values[FNotTakenSuccCall])
	}
}

func TestDependentFeatureGating(t *testing.T) {
	vecs := []Vector{
		{Values: [NumFeatures]string{FBrOpcode: "bne", FRAOpcode: "ldq"}},
		{Values: [NumFeatures]string{FBrOpcode: "beq", FRAOpcode: Unknown}},
	}
	enc := NewEncoder(vecs)
	x := make([]float64, enc.Dim)
	enc.Encode(vecs[1], x)
	// All columns of the RA-opcode feature must be exactly zero for the
	// Unknown vector.
	lo := enc.Offsets[FRAOpcode]
	for i := 0; i < len(enc.Vocab[FRAOpcode]); i++ {
		if x[lo+i] != 0 {
			t.Errorf("gated feature column %d = %g, want 0", lo+i, x[lo+i])
		}
	}
	// And the branch-opcode feature must be non-zero somewhere (normalized
	// one-hot of a non-constant column).
	found := false
	lo = enc.Offsets[FBrOpcode]
	for i := 0; i < len(enc.Vocab[FBrOpcode]); i++ {
		if x[lo+i] != 0 {
			found = true
		}
	}
	if !found {
		t.Error("known feature encoded as all zeros")
	}
}

func TestEncoderNormalization(t *testing.T) {
	// 3 of 4 vectors have value "a": mean 0.75, std sqrt(0.1875).
	var vecs []Vector
	for i := 0; i < 4; i++ {
		v := Vector{}
		if i < 3 {
			v.Values[0] = "a"
		} else {
			v.Values[0] = "b"
		}
		for f := 1; f < NumFeatures; f++ {
			v.Values[f] = "x"
		}
		vecs = append(vecs, v)
	}
	enc := NewEncoder(vecs)
	colA := enc.Offsets[0] // "a" sorts before "b"
	if math.Abs(enc.Mean[colA]-0.75) > 1e-9 {
		t.Errorf("mean = %g, want 0.75", enc.Mean[colA])
	}
	if math.Abs(enc.Std[colA]-math.Sqrt(0.1875)) > 1e-9 {
		t.Errorf("std = %g", enc.Std[colA])
	}
	// Constant columns ("x" everywhere) must encode to zero.
	x := make([]float64, enc.Dim)
	enc.Encode(vecs[0], x)
	colX := enc.Offsets[1]
	if x[colX] != 0 {
		t.Errorf("constant column = %g, want 0", x[colX])
	}
	// Normalized mean over the training set must be ~0 for column A.
	var sum float64
	for _, v := range vecs {
		enc.Encode(v, x)
		sum += x[colA]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("normalized column mean = %g, want 0", sum/4)
	}
}

func TestEncoderUnseenValue(t *testing.T) {
	vecs := []Vector{{Values: [NumFeatures]string{FBrOpcode: "bne"}}}
	enc := NewEncoder(vecs)
	unseen := Vector{Values: [NumFeatures]string{FBrOpcode: "fbgt"}}
	x := make([]float64, enc.Dim)
	enc.Encode(unseen, x) // must not panic
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("unseen value produced a non-finite input")
		}
	}
}

func TestEncoderRebuildRoundtrip(t *testing.T) {
	vecs := []Vector{
		{Values: [NumFeatures]string{FBrOpcode: "bne", FBrDirection: "F"}},
		{Values: [NumFeatures]string{FBrOpcode: "beq", FBrDirection: "B"}},
	}
	enc := NewEncoder(vecs)
	// Simulate deserialization: wipe the index, Rebuild, compare encodings.
	clone := &Encoder{Vocab: enc.Vocab, Offsets: enc.Offsets, Dim: enc.Dim,
		Mean: enc.Mean, Std: enc.Std}
	clone.Rebuild()
	a := make([]float64, enc.Dim)
	b := make([]float64, enc.Dim)
	for _, v := range vecs {
		enc.Encode(v, a)
		clone.Encode(v, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rebuilt encoder differs at column %d", i)
			}
		}
	}
}

// TestEncoderFiniteProperty: any vector over the known vocabulary encodes
// to finite values.
func TestEncoderFiniteProperty(t *testing.T) {
	vecs := []Vector{
		{Values: [NumFeatures]string{FBrOpcode: "bne", FBrDirection: "F", FLanguage: "C"}},
		{Values: [NumFeatures]string{FBrOpcode: "beq", FBrDirection: "B", FLanguage: "FORT"}},
		{Values: [NumFeatures]string{FBrOpcode: "blt", FBrDirection: "F", FLanguage: "C"}},
	}
	enc := NewEncoder(vecs)
	f := func(choice [NumFeatures]uint8) bool {
		var v Vector
		for fi := 0; fi < NumFeatures; fi++ {
			vocab := enc.Vocab[fi]
			if len(vocab) == 0 || int(choice[fi])%(len(vocab)+1) == len(vocab) {
				v.Values[fi] = Unknown
			} else {
				v.Values[fi] = vocab[int(choice[fi])%(len(vocab)+1)]
			}
		}
		x := make([]float64, enc.Dim)
		enc.Encode(v, x)
		for _, val := range x {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsesBeforeDefAndLocs(t *testing.T) {
	prog := compile(t, `
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		x = x + 1;   // reads x before writing it: use-before-def
	}
	return x;
}`)
	ps := Collect(prog)
	s := siteIn(ps, "main")[0]
	if len(s.SourceLocs) == 0 {
		t.Fatal("branch has no source locations")
	}
	v := Of(s)
	// The then-block (fall-through) reads x first.
	if v.Values[FNotTakenSuccUseDef] != "UBD" {
		t.Errorf("use-before-def feature = %s, want UBD", v.Values[FNotTakenSuccUseDef])
	}
}

func TestFeatureNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumFeatures; i++ {
		n := Name(i)
		if n == "" || seen[n] {
			t.Errorf("feature %d has empty or duplicate name %q", i, n)
		}
		seen[n] = true
	}
	if Name(-1) == "" || Name(NumFeatures) == "" {
		t.Error("out-of-range names must still render")
	}
}

// TestEncodeAllSparseMatchesDense: the sparse batch encoding must contain
// exactly the nonzeros of the dense encoding, in ascending column order, with
// bit-identical values — including gated ("?") blocks, unseen values, and
// constant columns.
func TestEncodeAllSparseMatchesDense(t *testing.T) {
	vals := []string{"a", "b", "c", Unknown, "zz-unseen"}
	var vecs []Vector
	for i := 0; i < 17; i++ {
		v := Vector{}
		for f := 0; f < NumFeatures; f++ {
			v.Values[f] = vals[(i*7+f*3)%len(vals)]
		}
		vecs = append(vecs, v)
	}
	// Train the encoder on a subset so some values are out-of-vocabulary.
	enc := NewEncoder(vecs[:10])
	dense := enc.EncodeAll(vecs)
	sparse := enc.EncodeAllSparse(vecs)
	if got, want := sparse.Rows(), len(vecs); got != want {
		t.Fatalf("sparse rows = %d, want %d", got, want)
	}
	if sparse.Cols != enc.Dim {
		t.Fatalf("sparse cols = %d, want %d", sparse.Cols, enc.Dim)
	}
	for k, row := range dense {
		idx, val := sparse.Row(k)
		p := 0
		for j, x := range row {
			if x == 0 {
				continue
			}
			if p >= len(idx) {
				t.Fatalf("row %d: sparse ran out at dense col %d", k, j)
			}
			if int(idx[p]) != j || val[p] != x {
				t.Fatalf("row %d: sparse (%d,%g) vs dense (%d,%g)",
					k, idx[p], val[p], j, x)
			}
			p++
		}
		if p != len(idx) {
			t.Fatalf("row %d: sparse has %d extra entries", k, len(idx)-p)
		}
		for q := 1; q < len(idx); q++ {
			if idx[q] <= idx[q-1] {
				t.Fatalf("row %d: columns not strictly ascending", k)
			}
		}
	}
}
