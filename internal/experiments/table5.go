package experiments

import (
	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/heuristics"
	"repro/internal/stats"
)

// Table5Row is one program's heuristic-decomposition row (Table 5).
type Table5Row struct {
	Program string
	Suite   corpus.Suite
	B       heuristics.Breakdown
}

// Table5Result decomposes APHC performance into loop and non-loop branches
// with heuristic coverage, as in Table 5 of the paper.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 computes the decomposition for every program.
func Table5(ctx *Context) (*Table5Result, error) {
	data, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	aphc := heuristics.NewAPHC()
	res := &Table5Result{}
	entries := corpus.Study()
	for i, pd := range data {
		res.Rows = append(res.Rows, Table5Row{
			Program: pd.Name,
			Suite:   entries[i].Suite,
			B:       heuristics.BreakdownOf(pd.Sites, pd.Profile, aphc),
		})
	}
	return res, nil
}

// Averages returns the column means over all programs.
func (r *Table5Result) Averages() (loopMiss, pctNonLoop, pctCovered, missCov, missDefault, overall float64) {
	n := float64(len(r.Rows))
	if n == 0 {
		return
	}
	for _, row := range r.Rows {
		loopMiss += row.B.LoopMissRate()
		pctNonLoop += row.B.PctNonLoop()
		pctCovered += row.B.PctCovered()
		missCov += row.B.MissForHeuristics()
		missDefault += row.B.MissWithDefault()
		overall += row.B.OverallMissRate()
	}
	return loopMiss / n, pctNonLoop / n, pctCovered / n, missCov / n, missDefault / n, overall / n
}

// Render formats the table in the paper's layout.
func (r *Table5Result) Render() string {
	t := stats.NewTable("Program", "Loop Miss Rate", "% Non-Loop Branches",
		"% Covered By Heuristics", "Miss For Heuristics", "Miss With Default", "Overall Miss Rate")
	var lastSuite corpus.Suite
	for i, row := range r.Rows {
		if i > 0 && row.Suite != lastSuite {
			t.Separator()
		}
		lastSuite = row.Suite
		b := row.B
		t.Row(row.Program, stats.Pct(b.LoopMissRate()),
			stats.Pct1(b.PctNonLoop()/100), stats.Pct1(b.PctCovered()/100),
			stats.Pct(b.MissForHeuristics()), stats.Pct(b.MissWithDefault()),
			stats.Pct(b.OverallMissRate()))
	}
	t.Separator()
	lm, nl, cov, mc, md, ov := r.Averages()
	t.Row("Overall Avg", stats.Pct(lm), stats.Pct1(nl/100), stats.Pct1(cov/100),
		stats.Pct(mc), stats.Pct(md), stats.Pct(ov))
	return "Table 5: results for the program-based heuristic approaches (APHC order)\n" + t.String()
}
