// Package guard defines the shared vocabulary of resource budgets that the
// compile and execute pipelines enforce when they face untrusted input: a
// typed sentinel error that every budget violation wraps, and a Limits
// record the serving layer threads through the parser, code generator, and
// interpreter.
//
// The rule of the house: budget checks are OFF by default (zero Limits mean
// "unlimited" everywhere) so the paper-reproduction experiments remain
// bit-identical, and ON in espserve, where a hostile or runaway program must
// produce a typed error instead of hanging a worker.
package guard

import "errors"

// ErrBudgetExceeded is wrapped by every resource-budget violation — parser
// recursion depth, code-generator CFG caps, interpreter fuel, stack, heap,
// and call-depth limits. Callers classify failures with
// errors.Is(err, guard.ErrBudgetExceeded) and can translate them into a
// client error (the work was impossible under the configured budget) rather
// than an infrastructure failure.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// Limits bundles the compile-side budgets a server enforces per request.
// Zero values mean unlimited.
type Limits struct {
	// ParseDepth bounds the parser's statement/expression nesting depth.
	ParseDepth int
	// CFGBlocks bounds the basic-block count of any single generated
	// function (the CFG size cap).
	CFGBlocks int
}

// Unlimited reports whether no limit is set.
func (l Limits) Unlimited() bool { return l.ParseDepth <= 0 && l.CFGBlocks <= 0 }
