package core

import (
	"fmt"
	"testing"

	"repro/internal/features"
	"repro/internal/neural"
)

// TestQuantFusedMatchesKernelPath is the bit-identity contract between the
// fused contribution-table path and the kernel path (QuantEncoder.Encode +
// QuantNet.Forward): same probability, bit for bit, across every lookup
// shape — vocabulary hits, packable and unpackable (>7 byte) values, unseen
// values, and gated features.
func TestQuantFusedMatchesKernelPath(t *testing.T) {
	mk := func(vals ...string) features.Vector {
		var v features.Vector
		for i := range v.Values {
			v.Values[i] = features.Unknown
		}
		for i, val := range vals {
			v.Values[i] = val
		}
		return v
	}
	// Feature 1 gets a >7-byte vocabulary value, forcing its fused table
	// onto the slow-map fallback; the others stay on packed keys.
	train := []features.Vector{
		mk("BEQ", "LONG-VOCAB-VALUE", "SLT"),
		mk("BNE", "F", "SLT"),
		mk("BEQ", "F", "ADD"),
		mk("BEQ", "B", "SLT"),
		mk("BNE", "LONG-VOCAB-VALUE", "ADD"),
	}
	var examples []Example
	for i, v := range train {
		examples = append(examples, Example{Vector: v, Target: float64(i%2) - 0.5, Weight: 1})
	}
	m := TrainExamples(examples, Config{})

	probes := append([]features.Vector(nil), train...)
	probes = append(probes,
		mk("NEVER"),                     // unseen short value
		mk("NEVER-SEEN-AND-QUITE-LONG"), // unseen unpackable value
		mk("BEQ", "ALSO-LONG-BUT-NEW"),  // unpackable miss on the slow-map feature
		mk(),                            // fully gated
	)

	for _, margin := range []float64{0.5, 1.0} {
		xscale := 127 / (m.Encoder.MaxAbsActivation() * margin)
		qn, err := neural.Quantize(m.Net, xscale)
		if err != nil {
			t.Fatal(err)
		}
		qe, err := features.NewQuantEncoder(m.Encoder, xscale)
		if err != nil {
			t.Fatal(err)
		}
		fused := newQuantFused(qn, qe, nil)
		if fused.feats[1].slow == nil {
			t.Fatal("feature 1 has an unpackable vocabulary value but no slow map")
		}
		if fused.feats[0].keys == nil {
			t.Fatal("feature 0 has a short-string vocabulary but no packed table")
		}
		// A gated table must equal the kernel path on the masked vector.
		excluded := map[int]bool{0: true}
		gated := newQuantFused(qn, qe, excluded)

		qx := make([]int8, qe.Dim())
		acc := make([]int32, qn.Hidden)
		for pi := range probes {
			qe.Encode(&probes[pi], qx)
			want := qn.Forward(qx)
			got := fused.forward(&probes[pi], acc)
			if got != want {
				t.Errorf("margin %v probe %d: fused %v, kernel %v — not bit-identical",
					margin, pi, got, want)
			}
			masked := maskVector(probes[pi], excluded)
			qe.Encode(&masked, qx)
			want = qn.Forward(qx)
			got = gated.forward(&probes[pi], acc)
			if got != want {
				t.Errorf("margin %v probe %d: gated fused %v, masked kernel %v — not bit-identical",
					margin, pi, got, want)
			}
		}
	}
}

// TestPackKey pins the packed-key invariants the hash table's empty-slot
// sentinel depends on: injectivity over packable strings and never-zero.
func TestPackKey(t *testing.T) {
	if _, ok := packKey(""); ok {
		t.Error("empty string must be unpackable (0 marks empty slots)")
	}
	if _, ok := packKey("12345678"); ok {
		t.Error("8-byte string must be unpackable")
	}
	seen := make(map[uint64]string)
	var vals []string
	for _, s := range []string{"a", "b", "ab", "ba", "aa", "A", "\x00", "\x00\x00", "BEQ", "BEQZ", "1234567"} {
		vals = append(vals, s)
	}
	for i := 0; i < 200; i++ {
		vals = append(vals, fmt.Sprintf("v%d", i))
	}
	for _, s := range vals {
		k, ok := packKey(s)
		if !ok {
			t.Fatalf("packKey(%q) not packable", s)
		}
		if k == 0 {
			t.Fatalf("packKey(%q) = 0, collides with the empty-slot sentinel", s)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("packKey collision: %q and %q -> %#x", prev, s, k)
		}
		seen[k] = s
	}
}
