package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/testutil"
)

// arenaBody builds a vectors-only request body by hand so tests control the
// exact JSON surface (whitespace, escapes, key order).
func arenaBody(id string, rows [][]string) string {
	b, _ := json.Marshal(PredictRequest{ID: id, Vectors: rows})
	return string(b)
}

func fullRow(first string) []string {
	row := make([]string, features.NumFeatures)
	for i := range row {
		row[i] = "?"
	}
	row[0] = first
	return row
}

// TestArenaDecode pins the fast-path/slow-path split: bodies the scanner
// owns must decode to exactly what features.FromValues produces from the
// encoding/json parse, and every other shape must be refused so the slow
// path keeps its semantics.
func TestArenaDecode(t *testing.T) {
	rows := [][]string{fullRow("BEQ"), fullRow("BNE")}
	fast := []string{
		arenaBody("", rows),
		arenaBody("req-1", rows),
		// Whitespace everywhere the grammar allows it.
		strings.ReplaceAll(arenaBody("req-2", rows), ",", " ,\n\t "),
		// Escapes in the id and in a value.
		`{"id":"a\"b\\c\nd","vectors":[[` + strings.Repeat(`"\t",`, features.NumFeatures-1) + `"x"]]}`,
		// Key order flipped, duplicate key (last wins, same as encoding/json).
		`{"vectors":` + mustJSON(rows) + `,"id":"first","id":"second"}`,
		// Empty strings normalize to Unknown.
		`{"vectors":[[` + strings.Repeat(`"",`, features.NumFeatures-1) + `""]]}`,
	}
	for _, body := range fast {
		ar := getArena()
		if !ar.decode([]byte(body), 4096) {
			t.Errorf("fast path refused %q", body)
			continue
		}
		var req PredictRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("reference parse of %q: %v", body, err)
		}
		if ar.id != req.ID {
			t.Errorf("id %q, want %q for %q", ar.id, req.ID, body)
		}
		if len(ar.vecs) != len(req.Vectors) {
			t.Fatalf("%d vectors, want %d for %q", len(ar.vecs), len(req.Vectors), body)
		}
		for i, vals := range req.Vectors {
			want, err := features.FromValues(vals)
			if err != nil {
				t.Fatal(err)
			}
			if ar.vecs[i].Values != want.Values {
				t.Errorf("vector %d: %v, want %v", i, ar.vecs[i].Values, want.Values)
			}
		}
		putArena(ar)
	}

	slow := map[string]string{
		"source request":   `{"source":"int main() {}"}`,
		"both":             `{"source":"x","vectors":` + mustJSON(rows) + `}`,
		"unknown key":      `{"vectors":` + mustJSON(rows) + `,"extra":1}`,
		"no vectors":       `{}`,
		"empty vectors":    `{"vectors":[]}`,
		"wrong arity":      `{"vectors":[["BEQ"]]}`,
		"row not strings":  `{"vectors":[[1,2]]}`,
		"unicode escape":   `{"id":"\u0041","vectors":` + mustJSON(rows) + `}`,
		"trailing garbage": arenaBody("x", rows) + "garbage",
		"truncated":        arenaBody("x", rows)[:20],
		"not an object":    `[1,2,3]`,
		"over limit":       `{"vectors":` + mustJSON([][]string{fullRow("a"), fullRow("b"), fullRow("c")}) + `}`,
	}
	for name, body := range slow {
		ar := getArena()
		limit := 4096
		if name == "over limit" {
			limit = 2
		}
		if ar.decode([]byte(body), limit) {
			t.Errorf("%s: fast path accepted %q, must fall back", name, body)
		}
		putArena(ar)
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestArenaResponseMatchesEncodingJSON checks the hand-rolled response
// encoder against the encoding/json rendering of the same PredictResponse:
// both must unmarshal to identical values (bit-exact probabilities included).
func TestArenaResponseMatchesEncodingJSON(t *testing.T) {
	probs := []float64{0.5, 0.25, 0.875, 1e-7, 0.9999999999999999, 1}
	for _, id := range []string{"", "req-1", "needs \"escaping\"\n\tok\x01"} {
		ar := getArena()
		ar.id = id
		got := append([]byte(nil), ar.encodeResponse(probs)...)
		putArena(ar)

		want := PredictResponse{ID: id, Predictions: make([]Prediction, len(probs))}
		for i, p := range probs {
			conf := p
			if conf < 0.5 {
				conf = 1 - conf
			}
			want.Predictions[i] = Prediction{
				Branch:      fmt.Sprintf("#%d", i),
				Taken:       p > 0.5,
				Probability: p,
				Confidence:  conf,
			}
		}
		var fromArena, fromJSON PredictResponse
		if err := json.Unmarshal(got, &fromArena); err != nil {
			t.Fatalf("arena encoding is not valid JSON: %v\n%s", err, got)
		}
		ref, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(ref, &fromJSON); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", fromArena) != fmt.Sprintf("%+v", fromJSON) {
			t.Errorf("id %q:\narena: %+v\njson:  %+v", id, fromArena, fromJSON)
		}
		if got[len(got)-1] != '\n' {
			t.Error("arena encoding lost the trailing newline json.Encoder emits")
		}
	}
}

// TestArenaPipelineZeroAlloc is the tentpole allocation contract: the
// internal request pipeline — read body, decode, submit through the worker
// pool, encode the response — performs zero heap allocations at steady
// state. The net/http connection machinery around it is explicitly outside
// the pooled region.
func TestArenaPipelineZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold on plain builds")
	}
	model, data := testModel(t)
	_ = model
	srv, ts := testServer(t, Config{Workers: 2, MaxBatch: 8})
	ts.Close()

	body := []byte(arenaBody("alloc-test", vectorValues(data[0].Vectors[:4])))
	rd := bytes.NewReader(body)
	ctx := context.Background()

	run := func() {
		ar := getArena()
		rd.Reset(body)
		data, err := ar.readBody(rd)
		if err != nil {
			t.Fatal(err)
		}
		if !ar.decode(data, srv.cfg.MaxVectors) {
			t.Fatal("fast path refused the steady-state body")
		}
		j := ar.prepareJob(ctx)
		reusable, err := srv.currentVersion().pool.submitJob(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reusable {
			t.Fatal("completed job reported not reusable")
		}
		ar.encodeResponse(j.probs)
		putArena(ar)
	}
	run() // warm the arena pool and the job's probs buffer
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("request pipeline allocates %v per request, want 0", allocs)
	}
}

// TestPredictVectorsFastPathEndToEnd drives the fast path through the real
// HTTP handler and checks the response against the model served offline —
// including an id that forces the escape-decoding path.
func TestPredictVectorsFastPathEndToEnd(t *testing.T) {
	model, data := testModel(t)
	_, ts := testServer(t, Config{})
	vecs := data[0].Vectors[:6]
	offline := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offline)

	for _, id := range []string{"plain-id", `quoted "id"`, ""} {
		resp, pr := postPredict(t, ts.URL, PredictRequest{ID: id, Vectors: vectorValues(vecs)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("id %q: status %d", id, resp.StatusCode)
		}
		if pr.ID != id {
			t.Errorf("id %q echoed as %q", id, pr.ID)
		}
		if pr.Degraded || pr.Cached {
			t.Errorf("id %q: degraded=%v cached=%v on the healthy fast path", id, pr.Degraded, pr.Cached)
		}
		if len(pr.Predictions) != len(vecs) {
			t.Fatalf("id %q: %d predictions, want %d", id, len(pr.Predictions), len(vecs))
		}
		for i, p := range pr.Predictions {
			if p.Branch != fmt.Sprintf("#%d", i) {
				t.Errorf("prediction %d branch %q", i, p.Branch)
			}
			if p.Probability != offline[i] {
				t.Errorf("prediction %d probability %v, offline %v", i, p.Probability, offline[i])
			}
			if p.Taken != (offline[i] > 0.5) {
				t.Errorf("prediction %d taken %v, want %v", i, p.Taken, offline[i] > 0.5)
			}
		}
	}
}
