// Package features implements the paper's Table 2 static feature set: for
// every two-way conditional branch it extracts the 24 categorical features
// of the paper (the branch opcode and direction, the opcodes defining the
// branch's operands, loop and language context, and eight structural
// features for each of the two successors) plus the Section 6
// library-subroutine extension, together with the shared condition analysis
// that both the feature extractor and the Ball/Larus heuristics consume.
package features

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Site is one static conditional branch with the analysis context shared by
// feature extraction and the prediction heuristics.
type Site struct {
	Ref      ir.BranchRef
	Fn       *ir.Func
	G        *cfg.Graph
	BlockIdx int       // dense index of the branch block
	Branch   *ir.Instr // the conditional branch terminator
	TakenIdx int       // dense index of the taken successor
	FallIdx  int       // dense index of the fall-through successor

	// DefInstr is the in-block instruction defining the branch's tested
	// register, or nil when the register is defined in a previous block.
	DefInstr *ir.Instr
	// DefIdx is the instruction index of DefInstr within the block (-1).
	DefIdx int

	// Cond is the recovered source-level condition of the branch.
	Cond CondInfo

	// ProcType is the enclosing procedure's type (Leaf/NonLeaf/CallSelf).
	ProcType string

	// SourceLocs are the memory locations (frame slots and globals) whose
	// values determined the branch direction — the variables "used in the
	// branch comparison" at source level. The Guard heuristic and feature
	// 15 test whether a successor reads one of them before writing it.
	SourceLocs []MemLoc
}

// MemLoc is an abstract memory location: a stack-frame word (Base == "") or
// a word of a named global.
type MemLoc struct {
	Base string
	Off  int64
}

// CondInfo describes the semantic comparison a conditional branch performs,
// reconstructed from the instruction stream the way the paper reconstructed
// abstract syntax trees from Alpha binaries (Section 5.2.1).
type CondInfo struct {
	// Kind is the comparison relation with respect to the *taken* direction:
	// the branch is taken exactly when "Left Kind Right" holds.
	Kind CmpKind
	// Float marks floating-point comparisons.
	Float bool
	// LeftPtr/RightPtr mark pointer-valued operands.
	LeftPtr  bool
	RightPtr bool
	// RightZero marks comparison against constant zero (x < 0, p == null…).
	RightZero bool
	// RightConst marks comparison against a compile-time constant (including
	// zero).
	RightConst bool
}

// CmpKind is a comparison relation.
type CmpKind int

// Comparison relations. CmpNone means the branch tests a raw value that was
// not produced by a recognizable comparison (tested against zero).
const (
	CmpNone CmpKind = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Negate returns the complementary relation.
func (k CmpKind) Negate() CmpKind {
	switch k {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpGe:
		return CmpLt
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	}
	return CmpNone
}

// String names the relation.
func (k CmpKind) String() string {
	switch k {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// ProgramSites collects every two-way conditional branch site of the
// program, in deterministic order, with graphs and pointer analysis shared
// across sites.
type ProgramSites struct {
	Prog   *ir.Program
	Graphs map[string]*cfg.Graph
	Ptrs   map[string]*cfg.PointerInfo
	Sites  []*Site
	byRef  map[ir.BranchRef]*Site
}

// Collect analyzes a program and returns all of its branch sites.
func Collect(prog *ir.Program) *ProgramSites {
	ps := &ProgramSites{
		Prog:   prog,
		Graphs: make(map[string]*cfg.Graph, len(prog.Funcs)),
		byRef:  make(map[ir.BranchRef]*Site),
	}
	for _, fn := range prog.Funcs {
		ps.Graphs[fn.Name] = cfg.New(fn)
	}
	ps.Ptrs = cfg.ProgramPointers(prog, ps.Graphs)
	for _, fn := range prog.Funcs {
		g := ps.Graphs[fn.Name]
		procType := procedureType(fn)
		for i := 0; i < g.N(); i++ {
			if !g.IsBranchBlock(i) {
				continue
			}
			s := &Site{
				Ref:      ir.BranchRef{Func: fn.Name, Block: g.Block(i).ID},
				Fn:       fn,
				G:        g,
				BlockIdx: i,
				Branch:   g.Block(i).Branch(),
				ProcType: procType,
			}
			s.TakenIdx, s.FallIdx = g.TakenSucc(i)
			s.DefInstr, s.DefIdx = defInstr(g.Block(i), len(g.Block(i).Insns)-1, s.Branch.A)
			s.Cond = condInfo(ps.Ptrs[fn.Name], g, i, s)
			s.SourceLocs = sourceLocs(g.Block(i), s)
			ps.Sites = append(ps.Sites, s)
		}
	}
	sort.Slice(ps.Sites, func(a, b int) bool {
		if ps.Sites[a].Ref.Func != ps.Sites[b].Ref.Func {
			return ps.Sites[a].Ref.Func < ps.Sites[b].Ref.Func
		}
		return ps.Sites[a].Ref.Block < ps.Sites[b].Ref.Block
	})
	for _, s := range ps.Sites {
		ps.byRef[s.Ref] = s
	}
	return ps
}

// Site returns the site for a branch reference, or nil.
func (ps *ProgramSites) Site(ref ir.BranchRef) *Site { return ps.byRef[ref] }

// procedureType classifies the function: Leaf (no calls), CallSelf
// (recursive), or NonLeaf — feature 8 of Table 2.
func procedureType(fn *ir.Func) string {
	hasCall := false
	for _, b := range fn.Blocks {
		for i := range b.Insns {
			in := &b.Insns[i]
			if in.Op.IsCall() {
				hasCall = true
				if in.Op == ir.OpBsr && in.Sym == fn.Name {
					return "CallSelf"
				}
			}
		}
	}
	if hasCall {
		return "NonLeaf"
	}
	return "Leaf"
}

// defInstr scans backward from instruction index before in the block for the
// instruction defining register r. It returns (nil, -1) if r is defined in a
// previous block (or is an argument).
func defInstr(b *ir.Block, before int, r ir.Reg) (*ir.Instr, int) {
	for j := before - 1; j >= 0; j-- {
		if d, ok := b.Insns[j].Def(); ok && d == r {
			return &b.Insns[j], j
		}
	}
	return nil, -1
}

// condInfo reconstructs the branch's source-level condition.
func condInfo(pi *cfg.PointerInfo, g *cfg.Graph, blockIdx int, s *Site) CondInfo {
	br := s.Branch
	branchInsnIdx := len(g.Block(blockIdx).Insns) - 1
	var ci CondInfo

	// MIPS-style two-register branch: x ==/!= y directly.
	if br.Op.IsTwoRegBranch() {
		if br.Op == ir.OpBeq2 {
			ci.Kind = CmpEq
		} else {
			ci.Kind = CmpNe
		}
		if pi != nil {
			ci.LeftPtr = pi.OperandIsPointer(blockIdx, branchInsnIdx, 0)
			ci.RightPtr = pi.OperandIsPointer(blockIdx, branchInsnIdx, 1)
		}
		return ci
	}

	baseKind := branchRelation(br.Op)
	def := s.DefInstr
	if def == nil || !def.Op.IsCompare() {
		// The branch tests a raw value against zero. If the value is a
		// pointer, this is a null comparison (p ==/!= null).
		ci.Kind = baseKind
		ci.Float = br.Op.IsFloat()
		ci.RightZero = true
		ci.RightConst = true
		if pi != nil {
			ci.LeftPtr = pi.OperandIsPointer(blockIdx, branchInsnIdx, 0)
		}
		return ci
	}

	// The branch tests the boolean result of a compare instruction: recover
	// the compare relation; BEQ on the result negates it.
	switch def.Op {
	case ir.OpCmpEq, ir.OpCmpTEq:
		ci.Kind = CmpEq
	case ir.OpCmpLt, ir.OpCmpTLt:
		ci.Kind = CmpLt
	case ir.OpCmpLe, ir.OpCmpTLe:
		ci.Kind = CmpLe
	}
	ci.Float = def.Op.Class() == ir.ClassFloatCmp
	switch baseKind {
	case CmpEq: // branch taken when compare result == 0: negated
		ci.Kind = ci.Kind.Negate()
	case CmpNe: // taken when result != 0: as-is
	default:
		// Relational branch on a 0/1 compare result (unusual); treat the
		// compare relation as the condition.
	}
	if pi != nil {
		ci.LeftPtr = pi.OperandIsPointer(blockIdx, s.DefIdx, 0)
		ci.RightPtr = !def.UseImm && pi.OperandIsPointer(blockIdx, s.DefIdx, 1)
	}
	if def.UseImm {
		ci.RightConst = true
		ci.RightZero = def.Imm == 0
	} else if rdef, _ := defInstr(g.Block(blockIdx), s.DefIdx, def.B); rdef != nil && rdef.Op == ir.OpLdiQ {
		ci.RightConst = true
		ci.RightZero = rdef.Imm == 0
	}
	return ci
}

// branchRelation maps a conditional branch opcode to the relation it tests
// (against zero for the single-register forms).
func branchRelation(op ir.Op) CmpKind {
	switch op {
	case ir.OpBeq, ir.OpFbeq:
		return CmpEq
	case ir.OpBne, ir.OpFbne:
		return CmpNe
	case ir.OpBlt, ir.OpFblt:
		return CmpLt
	case ir.OpBle, ir.OpFble:
		return CmpLe
	case ir.OpBgt, ir.OpFbgt:
		return CmpGt
	case ir.OpBge, ir.OpFbge:
		return CmpGe
	}
	return CmpNone
}

// sourceLocs recovers the memory locations whose loads fed the branch: the
// branch's tested register(s) and, when the branch tests a compare result,
// the compare's operands, each traced back to an in-block load from a frame
// slot or a global.
func sourceLocs(b *ir.Block, s *Site) []MemLoc {
	var locs []MemLoc
	add := func(loc MemLoc) {
		for _, have := range locs {
			if have == loc {
				return
			}
		}
		locs = append(locs, loc)
	}
	trace := func(before int, r ir.Reg) {
		def, idx := defInstr(b, before, r)
		if def == nil {
			return
		}
		if loc, ok := loadLoc(b, idx, def); ok {
			add(loc)
		}
	}
	branchIdx := len(b.Insns) - 1
	for _, r := range s.Branch.Uses() {
		trace(branchIdx, r)
	}
	if s.DefInstr != nil && s.DefInstr.Op.IsCompare() {
		for _, r := range s.DefInstr.Uses() {
			trace(s.DefIdx, r)
		}
	}
	return locs
}

// loadLoc resolves a load instruction's address to an abstract location:
// SP-relative directly, or via an in-block LDA for globals.
func loadLoc(b *ir.Block, idx int, in *ir.Instr) (MemLoc, bool) {
	if !in.Op.IsLoad() {
		return MemLoc{}, false
	}
	if in.A == ir.RegSP {
		return MemLoc{Base: "", Off: in.Imm}, true
	}
	base, _ := defInstr(b, idx, in.A)
	if base != nil && base.Op == ir.OpLda {
		return MemLoc{Base: base.Sym, Off: base.Imm + in.Imm}, true
	}
	return MemLoc{}, false
}

// ReadsLocBeforeWrite reports whether dense block idx loads one of the
// locations before storing to it — the memory-level reading of "a register
// is used before being defined in a successor block" for code whose
// variables live in frame slots.
func ReadsLocBeforeWrite(g *cfg.Graph, idx int, locs []MemLoc) bool {
	if len(locs) == 0 {
		return false
	}
	written := make(map[MemLoc]bool)
	b := g.Block(idx)
	for i := range b.Insns {
		in := &b.Insns[i]
		if in.Op.IsLoad() {
			if loc, ok := loadLoc(b, i, in); ok && !written[loc] {
				for _, want := range locs {
					if loc == want {
						return true
					}
				}
			}
			continue
		}
		if in.Op.IsStore() {
			if loc, ok := storeLoc(b, i, in); ok {
				written[loc] = true
			}
		}
	}
	return false
}

func storeLoc(b *ir.Block, idx int, in *ir.Instr) (MemLoc, bool) {
	if in.A == ir.RegSP {
		return MemLoc{Base: "", Off: in.Imm}, true
	}
	base, _ := defInstr(b, idx, in.A)
	if base != nil && base.Op == ir.OpLda {
		return MemLoc{Base: base.Sym, Off: base.Imm + in.Imm}, true
	}
	return MemLoc{}, false
}

// ContainsRealStore reports whether dense block idx contains a store to
// memory other than the stack frame. Stack-pointer-relative stores model
// register-allocated locals (no memory traffic at -O), so the Store
// heuristic must not see them.
func ContainsRealStore(g *cfg.Graph, idx int) bool {
	b := g.Block(idx)
	for i := range b.Insns {
		in := &b.Insns[i]
		if in.Op.IsStore() && in.A != ir.RegSP {
			return true
		}
	}
	return false
}

// UsesBeforeDef reports whether, in dense block succIdx, any of the given
// registers is used before being defined. The register-level reading of the
// Guard/feature-15 test; production paths use ReadsLocBeforeWrite (the
// memory-location reading suited to this IR's slot-allocated variables),
// but the register form is kept for analyses over hand-built or
// register-allocated IR.
func UsesBeforeDef(g *cfg.Graph, succIdx int, regs []ir.Reg) bool {
	defined := make(map[ir.Reg]bool)
	for i := range g.Block(succIdx).Insns {
		in := &g.Block(succIdx).Insns[i]
		for _, u := range in.Uses() {
			if u.IsZero() || u == ir.RegSP {
				continue
			}
			for _, r := range regs {
				if u == r && !defined[u] {
					return true
				}
			}
		}
		if d, ok := in.Def(); ok {
			defined[d] = true
		}
	}
	return false
}

// BranchSourceRegs returns the registers that determined the branch's
// destination: the branch's own operands plus, when the branch tests a
// compare result, the compare's register operands.
func (s *Site) BranchSourceRegs() []ir.Reg {
	var regs []ir.Reg
	add := func(r ir.Reg) {
		if r.IsZero() || r == ir.RegSP {
			return
		}
		for _, have := range regs {
			if have == r {
				return
			}
		}
		regs = append(regs, r)
	}
	for _, r := range s.Branch.Uses() {
		add(r)
	}
	if s.DefInstr != nil && s.DefInstr.Op.IsCompare() {
		for _, r := range s.DefInstr.Uses() {
			add(r)
		}
	}
	return regs
}
