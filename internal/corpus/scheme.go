package corpus

import "repro/internal/ir"

// The Scheme study programs of Section 3.1.2: boyer, corewar, and sccomp
// (compiled with Scheme-to-C in the paper). They exist to reproduce the
// paper's observation that C-derived heuristics break on Scheme idioms: the
// Return heuristic misses ~56% (recursion is the iteration mechanism, so the
// successor containing a return is frequently the hot path) and the Pointer
// heuristic misses ~89% (null/pair tests at the end of list recursions
// *succeed* constantly instead of failing like C pointer guards).

func init() {
	register(Entry{
		Name: "boyer", Suite: SuiteScheme, Language: ir.LangScheme, Seed: 501,
		About: "term rewriting benchmark: deep recursion over cons trees; null tests usually true, returns on the hot path",
		Input: []int64{700, 9},
		Source: `
// boyer: rewrite random terms to normal form over cons cells [tag, car, cdr].
int cells;
int lastTag;
int* lastCar;
int* lastCdr;
int* lastCell;

// cons with hash-consing: Scheme runtimes intern structure, so the pointer
// comparisons here *succeed* most of the time — the anti-C idiom that
// breaks the Pointer heuristic (89% miss in the paper).
int* cons(int tag, int* car, int* cdr) {
	if (car == lastCar && cdr == lastCdr && tag == lastTag && lastCell != null) {
		return lastCell;
	}
	int* c;
	c = __alloc(3);
	c[0] = tag;
	c[1] = (int) car;
	c[2] = (int) cdr;
	cells = cells + 1;
	lastTag = tag;
	lastCar = car;
	lastCdr = cdr;
	lastCell = c;
	return c;
}

int* genTerm(int depth) {
	// Lists are short, so the null base case hits constantly.
	if (depth <= 0 || __rand() % 100 < 62) { return null; }
	return cons(__rand() % 4, genTerm(depth - 1), genTerm(depth - 1));
}

// rewrite: tag-directed rules, recursing to normal form.
int* rewrite(int* t) {
	if (t == null) { return null; }
	int tag;
	tag = t[0];
	if (tag == 0) {
		// (and x y) -> (if x y false)
		return cons(3, rewrite((int*) t[1]), rewrite((int*) t[2]));
	}
	if (tag == 1) {
		// double negation cancels
		int* a;
		a = (int*) t[1];
		if (a != null && a[0] == 1) {
			return rewrite((int*) a[1]);
		}
		return cons(1, rewrite((int*) t[1]), null);
	}
	if (tag == 2) {
		return cons(2, rewrite((int*) t[2]), rewrite((int*) t[1]));
	}
	return cons(tag, rewrite((int*) t[1]), rewrite((int*) t[2]));
}

int size(int* t) {
	if (t == null) { return 0; }
	return 1 + size((int*) t[1]) + size((int*) t[2]);
}

// eqTerm: Scheme's equal? with the eq? fast path. Interning makes the
// pointer-equality tests *succeed* most of the time — exactly the idiom
// that drives the Pointer heuristic to an 89% miss rate on Scheme in the
// paper.
int eqTerm(int* a, int* b) {
	if (a == b) { return 1; }
	if (a == null || b == null) { return 0; }
	if (a[0] != b[0]) { return 0; }
	if (eqTerm((int*) a[1], (int*) b[1]) == 0) { return 0; }
	return eqTerm((int*) a[2], (int*) b[2]);
}

int main() {
	int rounds;
	int depth;
	int i;
	int total;
	int stable;
	rounds = __input(0);
	depth = __input(1);
	cells = 0;
	total = 0;
	stable = 0;
	for (i = 0; i < rounds; i = i + 1) {
		int* t;
		int* t1;
		int* t2;
		t = genTerm(depth);
		t1 = rewrite(t);
		t2 = rewrite(t1);
		// Convergence check via equal?: heavy pointer-equality traffic.
		if (eqTerm(t1, t2)) { stable = stable + 1; }
		if (eqTerm(t2, rewrite(t2))) { stable = stable + 1; }
		total = total + size(t2);
	}
	__print(total);
	__print(stable);
	__print(cells);
	return 0;
}
`})

	register(Entry{
		Name: "corewar", Suite: SuiteScheme, Language: ir.LangScheme, Seed: 502,
		About: "core war battle simulator written in Scheme style: instruction lists walked recursively, recursion instead of loops",
		Input: []int64{26, 160},
		Source: `
// corewar: two programs battle in a circular core; the simulation uses
// Scheme-style recursion over instruction list cells.
int core[256];
int owner[256];

// step one warrior recursively; returns cycles survived.
int run(int pc, int who, int fuel) {
	int op;
	int arg;
	if (fuel <= 0) { return 0; }
	pc = pc % 256;
	if (pc < 0) { pc = pc + 256; }
	if (owner[pc] != who && owner[pc] != 0) {
		// Stepped on enemy territory: die.
		return 0;
	}
	op = core[pc] % 4;
	arg = core[pc] / 4 % 16;
	owner[pc] = who;
	if (op == 0) {
		// mov: copy forward.
		core[(pc + arg) % 256] = core[pc];
		return 1 + run(pc + 1, who, fuel - 1);
	}
	if (op == 1) {
		// add into target.
		core[(pc + arg) % 256] = core[(pc + arg) % 256] + core[pc];
		return 1 + run(pc + 1, who, fuel - 1);
	}
	if (op == 2) {
		// jmp.
		return 1 + run(pc + arg, who, fuel - 1);
	}
	// skip-if-zero.
	if (core[(pc + arg) % 256] == 0) {
		return 1 + run(pc + 2, who, fuel - 1);
	}
	return 1 + run(pc + 1, who, fuel - 1);
}

int main() {
	int battles;
	int fuel;
	int b;
	int scoreA;
	int scoreB;
	battles = __input(0);
	fuel = __input(1);
	scoreA = 0;
	scoreB = 0;
	for (b = 0; b < battles; b = b + 1) {
		int i;
		for (i = 0; i < 256; i = i + 1) {
			core[i] = __rand() % 64;
			owner[i] = 0;
		}
		scoreA = scoreA + run(0, 1, fuel);
		scoreB = scoreB + run(128, 2, fuel);
	}
	__print(scoreA);
	__print(scoreB);
	return 0;
}
`})

	register(Entry{
		Name: "sccomp", Suite: SuiteScheme, Language: ir.LangScheme, Seed: 503,
		About: "Scheme compiler benchmark: recursive AST transforms over cons trees, association-list environments walked to success",
		Input: []int64{90, 8},
		Source: `
// sccomp: alpha-rename and constant-fold random expression trees.
// Node: [tag, a, b]; tags: 0 const, 1 var, 2 app, 3 lambda, 4 if0.
int cells;

int* lastNode;
int lastA;

int* node(int tag, int a, int b) {
	int* p;
	// Interning check: identical immediate re-allocations are shared, so
	// these pointer comparisons usually succeed (Scheme interning).
	if (lastNode != null && a == lastA && lastNode[0] == tag && lastNode[2] == b) {
		return lastNode;
	}
	p = __alloc(3);
	p[0] = tag;
	p[1] = a;
	p[2] = b;
	cells = cells + 1;
	lastNode = p;
	lastA = a;
	return p;
}

int* gen(int depth) {
	if (depth <= 0 || __rand() % 100 < 48) {
		if (__rand() % 2 == 0) { return node(0, __rand() % 50, 0); }
		return node(1, __rand() % 8, 0);
	}
	int tag;
	tag = 2 + __rand() % 3;
	return node(tag, (int) gen(depth - 1), (int) gen(depth - 1));
}

// assq walk: environments are short lists searched to a *hit* most times —
// the anti-C pointer idiom.
int* env;

int* assq(int* e, int key) {
	if (e == null) { return null; }
	int* pair;
	pair = (int*) e[1];
	if (pair[0] == key) { return pair; }
	return assq((int*) e[2], key);
}

void bind(int key, int v) {
	int* pair;
	pair = node(key, v, 0);
	env = node(9, (int) pair, (int) env);
}

int* transform(int* t, int depth) {
	if (t == null) { return null; }
	int tag;
	tag = t[0];
	if (tag == 0) { return t; }
	if (tag == 1) {
		int* hit;
		hit = assq(env, t[1]);
		if (hit != null) {
			return node(0, hit[1], 0);
		}
		return t;
	}
	if (tag == 3) {
		bind(__rand() % 8, __rand() % 50);
	}
	int* a;
	int* b;
	a = transform((int*) t[1], depth + 1);
	b = transform((int*) t[2], depth + 1);
	// Constant folding for applications of two constants.
	if (tag == 2 && a != null && b != null) {
		if (a[0] == 0 && b[0] == 0) {
			return node(0, (a[1] + b[1]) % 1000, 0);
		}
	}
	return node(tag, (int) a, (int) b);
}

int count(int* t) {
	if (t == null) { return 0; }
	if (t[0] == 0 || t[0] == 1) { return 1; }
	return 1 + count((int*) t[1]) + count((int*) t[2]);
}

int main() {
	int rounds;
	int depth;
	int i;
	int total;
	rounds = __input(0);
	depth = __input(1);
	cells = 0;
	total = 0;
	for (i = 0; i < rounds; i = i + 1) {
		env = null;
		bind(0, 7);
		bind(1, 11);
		total = total + count(transform(gen(depth), 0));
	}
	__print(total);
	__print(cells);
	return 0;
}
`})
}
