package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// endpointStats is the per-endpoint counter block, updated atomically on
// every request.
type endpointStats struct {
	requests     atomic.Int64
	errors       atomic.Int64 // 4xx/5xx responses
	latencyMicro atomic.Int64 // summed wall time
}

func (s *endpointStats) observe(micros int64, failed bool) {
	s.requests.Add(1)
	s.latencyMicro.Add(micros)
	if failed {
		s.errors.Add(1)
	}
}

// metrics aggregates the service counters exposed at /metrics.
type metrics struct {
	endpoints map[string]*endpointStats

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	batches        atomic.Int64 // worker passes executed
	batchedJobs    atomic.Int64 // jobs folded into those passes
	predictedVecs  atomic.Int64 // feature vectors predicted
	inflight       atomic.Int64
	rejectedDrain  atomic.Int64 // requests refused because the server drains
	timeoutsCancel atomic.Int64 // requests that hit their deadline

	shed            atomic.Int64 // requests refused with 429 by admission control
	degraded        atomic.Int64 // requests answered by the heuristic fallback
	panicsRecovered atomic.Int64 // panics absorbed by middleware or workers
	budgetRejects   atomic.Int64 // submissions rejected by compile resource budgets
}

func newMetrics() *metrics {
	return &metrics{endpoints: map[string]*endpointStats{
		"predict": {},
		"healthz": {},
		"metrics": {},
	}}
}

func (m *metrics) endpoint(name string) *endpointStats { return m.endpoints[name] }

// render writes the counters in the Prometheus text exposition style:
// one `name{labels} value` line per counter, sorted for determinism.
func (m *metrics) render() string {
	var b strings.Builder
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := m.endpoints[name]
		fmt.Fprintf(&b, "espserve_requests_total{endpoint=%q} %d\n", name, s.requests.Load())
		fmt.Fprintf(&b, "espserve_request_errors_total{endpoint=%q} %d\n", name, s.errors.Load())
		fmt.Fprintf(&b, "espserve_request_latency_micros_total{endpoint=%q} %d\n", name, s.latencyMicro.Load())
	}
	fmt.Fprintf(&b, "espserve_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(&b, "espserve_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(&b, "espserve_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(&b, "espserve_batched_jobs_total %d\n", m.batchedJobs.Load())
	fmt.Fprintf(&b, "espserve_predicted_vectors_total %d\n", m.predictedVecs.Load())
	fmt.Fprintf(&b, "espserve_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(&b, "espserve_drain_rejects_total %d\n", m.rejectedDrain.Load())
	fmt.Fprintf(&b, "espserve_request_timeouts_total %d\n", m.timeoutsCancel.Load())
	fmt.Fprintf(&b, "espserve_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(&b, "espserve_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintf(&b, "espserve_panics_recovered_total %d\n", m.panicsRecovered.Load())
	fmt.Fprintf(&b, "espserve_budget_rejects_total %d\n", m.budgetRejects.Load())
	return b.String()
}
