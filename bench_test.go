package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches listed in DESIGN.md and component micro-benchmarks.
// Corpus compilation and profiling are cached in a shared context so each
// benchmark measures its own experiment's work.

import (
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/neural"
)

var (
	benchCtx  *experiments.Context
	benchOnce sync.Once
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext()
		// Pre-analyze the corpus so benchmarks time their experiment, not
		// corpus profiling.
		if _, err := benchCtx.StudyData(codegen.Default); err != nil {
			panic(err)
		}
	})
	return benchCtx
}

// --- One benchmark per table/figure ------------------------------------------

func BenchmarkTable1Heuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3ProgramStats(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 43 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkTable4MissRates(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(ctx, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Overall.ESP >= res.Overall.APHC {
			b.Fatalf("headline inverted: ESP %.3f vs APHC %.3f",
				res.Overall.ESP, res.Overall.APHC)
		}
	}
}

func BenchmarkTable5HeuristicDetail(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6CrossArch(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7CompilerSweep(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1NetDescription(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure1(100, 20) == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure2TomcatvEdges(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.TopBlockSharePct <= 0 {
			b.Fatal("no hot blocks")
		}
	}
}

func BenchmarkSchemeStudy(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SchemeStudy(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusSizeSweep(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CorpusSize(ctx, []int{8, 23}, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md) --------------------------------------------

func BenchmarkAblationFeatureSets(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFeatureSets(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHiddenUnits(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHiddenUnits(ctx, []int{12, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLoss(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLoss(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClassifier(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClassifier(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCallPolarity(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCallPolarity(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAPHCOrder(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.APHCOrderSearch(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.Orders != 40320 {
			b.Fatal("wrong order count")
		}
	}
}

func BenchmarkProfileEstimation(b *testing.B) {
	ctx := sharedCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProfileEstimation(ctx, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.ESPError >= res.UniformError {
			b.Fatal("ESP probabilities no better than the uninformed baseline")
		}
	}
}

// --- Component micro-benchmarks -----------------------------------------------

func BenchmarkCompileEspresso(b *testing.B) {
	e, _ := corpus.ByName("espresso")
	ast, err := minic.Parse(e.Name, e.Source+corpus.StdlibSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Compile(ast, e.Language, codegen.Default); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretTomcatv(b *testing.B) {
	e, _ := corpus.ByName("tomcatv")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := interp.Run(prog, e.RunConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(prof.Insns) // reports interpreted instructions per second
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	e, _ := corpus.ByName("gcc")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := features.Collect(prog)
		if len(features.ExtractAll(ps)) == 0 {
			b.Fatal("no features")
		}
	}
}

func BenchmarkHeuristicApply(b *testing.B) {
	e, _ := corpus.ByName("gcc")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	ps := features.Collect(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range ps.Sites {
			for _, h := range heuristics.AllHeuristics() {
				heuristics.Apply(h, s, heuristics.Config{})
			}
		}
	}
}

func BenchmarkNeuralTraining(b *testing.B) {
	// A representative training set: 500 examples, 86 inputs, 12 hidden.
	cfg := neural.Config{Inputs: 86, Hidden: 12, Seed: 1, MaxEpochs: 50, Patience: 50}
	rng := uint64(12345)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64((rng>>33)&0xFFFF)/65535*2 - 1
	}
	xs := make([][]float64, 500)
	ts := make([]float64, 500)
	ws := make([]float64, 500)
	for i := range xs {
		xs[i] = make([]float64, cfg.Inputs)
		for j := range xs[i] {
			xs[i][j] = next()
		}
		ts[i] = (next() + 1) / 2
		ws[i] = 1.0 / 500
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := neural.New(cfg)
		n.Train(cfg, xs, ts, ws)
	}
}

// BenchmarkTable4ESPCrossVal isolates the paper's core computation: the
// leave-one-out ESP cross-validation over the C language group.
func BenchmarkTable4ESPCrossVal(b *testing.B) {
	ctx := sharedCtx(b)
	data, err := ctx.LanguageData(ir.LangC, codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		folds := core.CrossValidate(data, core.Config{})
		if len(folds) != len(data) {
			b.Fatal("missing folds")
		}
	}
}

// BenchmarkNeuralTrainSparse is BenchmarkNeuralTraining's workload run
// through the sparse fused kernel on encoder-realistic data (block-sparse
// rows, ~35% exact zeros).
func BenchmarkNeuralTrainSparse(b *testing.B) {
	cfg := neural.Config{Inputs: 86, Hidden: 12, Seed: 1, MaxEpochs: 50, Patience: 50}
	rng := uint64(12345)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64((rng>>33)&0xFFFF)/65535*2 - 1
	}
	xs := make([][]float64, 500)
	ts := make([]float64, 500)
	ws := make([]float64, 500)
	for i := range xs {
		xs[i] = make([]float64, cfg.Inputs)
		for j := range xs[i] {
			// Gated feature blocks are exact zeros, as the encoder emits.
			if j%8 < 3 && (i+j/8)%3 == 0 {
				continue
			}
			xs[i][j] = next()
		}
		ts[i] = (next() + 1) / 2
		ws[i] = 1.0 / 500
	}
	data := neural.NewCSRFromDense(xs, cfg.Inputs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := neural.New(cfg)
		n.TrainCSR(cfg, data, ts, ws)
	}
}

// BenchmarkInterpProfile measures profile collection end to end on the
// espresso workload (map-free branch counting in the dispatch loop).
func BenchmarkInterpProfile(b *testing.B) {
	e, _ := corpus.ByName("espresso")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := interp.Run(prog, e.RunConfig())
		if err != nil {
			b.Fatal(err)
		}
		if prof.CondExec == 0 {
			b.Fatal("no branches profiled")
		}
		b.SetBytes(prof.Insns)
	}
}

func BenchmarkESPPrediction(b *testing.B) {
	ctx := sharedCtx(b)
	data, err := ctx.LanguageData(ir.LangFortran, codegen.Default)
	if err != nil {
		b.Fatal(err)
	}
	model := core.Train(data[1:], core.Config{})
	pred := &core.Predictor{Model: model}
	held := data[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.MissRate(held.Sites, held.Profile, pred)
	}
}
