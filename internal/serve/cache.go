package serve

import (
	"container/list"
	"sync"

	"repro/internal/features"
	"repro/internal/ir"
)

// programImage is everything the service derives from one source submission:
// the compiled program and its extracted branch-site features, ready to be
// predicted again without re-compiling.
type programImage struct {
	Name    string
	Prog    *ir.Program
	Refs    []ir.BranchRef
	Vectors []features.Vector
}

// lru is a mutex-guarded LRU cache from source hash to compiled image.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	img *programImage
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (*programImage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).img, true
}

func (c *lru) add(key string, img *programImage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).img = img
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, img: img})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
