package experiments

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/heuristics"
	"repro/internal/stats"
)

// SchemeStudyResult reproduces the Section 3.1.2 language study: the
// Ball/Larus heuristics applied to three Scheme programs (boyer, corewar,
// sccomp), where the paper found the Return heuristic missing 56% and the
// Pointer heuristic 89% — evidence that heuristics are language dependent.
type SchemeStudyResult struct {
	// SchemeMiss and CMiss hold per-heuristic miss rates on the Scheme
	// programs and on the C group, for contrast.
	SchemeMiss [heuristics.NumHeuristics]float64
	CMiss      [heuristics.NumHeuristics]float64
	Programs   []string
	APHCMiss   map[string]float64
}

// SchemeStudy measures heuristic behaviour on the Scheme corpus.
func SchemeStudy(ctx *Context) (*SchemeStudyResult, error) {
	scheme, err := ctx.Batch(corpus.BySuite(corpus.SuiteScheme), codegen.Default)
	if err != nil {
		return nil, err
	}
	cGroup, err := ctx.LanguageData("C", codegen.Default)
	if err != nil {
		return nil, err
	}
	res := &SchemeStudyResult{APHCMiss: make(map[string]float64)}
	res.SchemeMiss, _ = perProgramHeuristicAvg(scheme, heuristics.Config{})
	res.CMiss, _ = perProgramHeuristicAvg(cGroup, heuristics.Config{})
	aphc := heuristics.NewAPHC()
	for _, pd := range scheme {
		res.Programs = append(res.Programs, pd.Name)
		res.APHCMiss[pd.Name] = heuristics.MissRate(pd.Sites, pd.Profile, aphc)
	}
	return res, nil
}

// Render formats the study.
func (r *SchemeStudyResult) Render() string {
	t := stats.NewTable("Heuristic", "Scheme Miss", "C Miss", "Delta")
	for h := heuristics.Heuristic(0); h < heuristics.NumHeuristics; h++ {
		t.Row(h.String(), stats.Pct(r.SchemeMiss[h]), stats.Pct(r.CMiss[h]),
			stats.Pct(r.SchemeMiss[h]-r.CMiss[h]))
	}
	out := "Section 3.1.2 Scheme study: heuristic miss rates on boyer/corewar/sccomp vs the C group\n" + t.String()
	for _, p := range r.Programs {
		out += fmt.Sprintf("APHC on %-8s %s%%\n", p, stats.Pct(r.APHCMiss[p]))
	}
	return out
}
