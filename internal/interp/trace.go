package interp

import (
	"fmt"

	"repro/internal/ir"
)

// TraceSink receives the dynamic conditional-branch outcome stream of one
// execution, in exact program order. The stream is opt-in (RunTrace /
// RunReferenceTrace); the plain Run entry points pay nothing for it beyond
// one predictable nil check per executed branch.
//
// Contract (the streaming analogue of CycleCountModel's Executed==dyn
// check): over a successful execution the sink observes exactly
// Profile.Branches[refs[site]].Executed events per site, of which exactly
// .Taken carry taken=true — bit-identical on the micro-op and reference
// paths, including executions that hand an out-of-fuel activation from the
// micro-op loop to the reference tail. TraceAggregate.Check verifies this.
type TraceSink interface {
	// BeginTrace is called once, before any event, with the dense site
	// table: event site indices refer to refs[site]. The table covers every
	// static conditional branch in the program (sites that never execute
	// included) in deterministic function/layout order, and is owned by the
	// interpreter — sinks must not mutate it.
	BeginTrace(refs []ir.BranchRef)
	// TraceBranch reports one executed conditional branch: site indexes the
	// BeginTrace table, taken is the resolved direction. Called
	// synchronously from the dispatch loop; implementations should be cheap
	// and must not call back into the interpreter.
	TraceBranch(site int32, taken bool)
}

// RunTrace is Run with a branch-outcome stream: it executes the program on
// the micro-op path and forwards every conditional-branch outcome to sink.
// A nil sink makes it identical to Run. The profile returned is bit-identical
// to Run's — tracing only observes, it never perturbs.
func RunTrace(p *ir.Program, cfg Config, sink TraceSink) (*Profile, error) {
	totalRuns.Add(1)
	m := newMachine(p, cfg)
	defer m.release()
	m.beginTrace(sink)
	m.buildUImages()
	if m.umain == nil {
		return nil, ErrNoMain
	}
	var args [12]int64
	ret, _, err := m.callU(m.umain, args, m.cfg.MemWords)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	return m.finish(ret), nil
}

// RunReferenceTrace is RunReference with a branch-outcome stream, for
// differential tests against RunTrace.
func RunReferenceTrace(p *ir.Program, cfg Config, sink TraceSink) (*Profile, error) {
	totalRuns.Add(1)
	m := newMachine(p, cfg)
	defer m.release()
	m.beginTrace(sink)
	m.buildImages()
	mainFn := m.funcs["main"]
	if mainFn == nil {
		return nil, ErrNoMain
	}
	var args [12]int64
	ret, _, err := m.call(mainFn, args, m.cfg.MemWords)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	return m.finish(ret), nil
}

// beginTrace installs the sink and hands it the (already complete, see
// newMachine) site table.
func (m *machine) beginTrace(sink TraceSink) {
	if sink == nil {
		return
	}
	m.trace = sink
	sink.BeginTrace(m.refs)
}

// TraceAggregate is a TraceSink that folds the stream back into per-site
// executed/taken counts plus an order-sensitive FNV-1a digest, so tests can
// assert both that the stream aggregates bit-identically to the profile and
// that two executions produced the same stream event for event without
// storing either stream.
type TraceAggregate struct {
	refs   []ir.BranchRef
	counts []BranchCount
	digest uint64
	events int64
}

// fnvOffset/fnvPrime are the 64-bit FNV-1a parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (a *TraceAggregate) BeginTrace(refs []ir.BranchRef) {
	a.refs = refs
	a.counts = make([]BranchCount, len(refs))
	a.digest = fnvOffset
	a.events = 0
}

func (a *TraceAggregate) TraceBranch(site int32, taken bool) {
	c := &a.counts[site]
	c.Executed++
	t := uint64(0)
	if taken {
		c.Taken++
		t = 1
	}
	// FNV-1a over the (site, taken) pair, one byte-sized mix per field so
	// event order matters.
	a.digest = (a.digest ^ uint64(uint32(site))) * fnvPrime
	a.digest = (a.digest ^ t) * fnvPrime
	a.events++
}

// Events returns the number of branch events observed.
func (a *TraceAggregate) Events() int64 { return a.events }

// Digest returns the order-sensitive stream digest.
func (a *TraceAggregate) Digest() uint64 { return a.digest }

// Check verifies the stream aggregates bit-identically to a profile from the
// same execution: per-site Executed and Taken must match exactly, and the
// event total must equal prof.CondExec. Any divergence is an error, never a
// silently wrong number (the CycleCountModel contract).
func (a *TraceAggregate) Check(prof *Profile) error {
	if a.refs == nil {
		return fmt.Errorf("interp: trace check before BeginTrace")
	}
	if len(prof.Branches) != len(a.refs) {
		return fmt.Errorf("interp: trace saw %d sites, profile has %d",
			len(a.refs), len(prof.Branches))
	}
	for i, ref := range a.refs {
		pc := prof.Branches[ref]
		if pc == nil {
			return fmt.Errorf("interp: trace site %s:b%d missing from profile", ref.Func, ref.Block)
		}
		if c := a.counts[i]; c != *pc {
			return fmt.Errorf("interp: %s:b%d stream aggregated %d/%d executed/taken, profile recorded %d/%d",
				ref.Func, ref.Block, c.Executed, c.Taken, pc.Executed, pc.Taken)
		}
	}
	if a.events != prof.CondExec {
		return fmt.Errorf("interp: stream carried %d events, profile recorded %d conditional executions",
			a.events, prof.CondExec)
	}
	return nil
}
