package gencorpus_test

// The generator's own property suite: every generated program, across every
// branch-character mix, must parse under the serving parse budgets, compile
// under the CFG budgets, terminate well within interpreter fuel, and
// reproduce bit-identical sources, profiles, and feature vectors across
// runs and worker counts. The differential tests elsewhere lean on these
// guarantees; this file is where they are pinned.

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/guard"
	"repro/internal/interp"
	"repro/internal/minic"
)

// Budgets every generated program must satisfy: the serving-layer parse and
// CFG limits, and a fuel ceiling far below the interpreter default so a
// termination regression in the generator surfaces as a test failure, not a
// minutes-long hang.
const (
	parseDepthBudget = 64
	cfgBlocksBudget  = 2048
	fuelBudget       = 4_000_000
)

// seedsPerMix scales the sweep: a fast slice under -short (the -race CI
// soak), the full thousand per mix by default, and more under -tags slow.
func seedsPerMix(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	if slowTests {
		return 5000
	}
	return 1000
}

// mustBuild parses and compiles p under the guard budgets.
func mustBuild(t *testing.T, p gencorpus.Program) *interp.Profile {
	t.Helper()
	lim := minic.Limits{MaxDepth: parseDepthBudget}
	ast, err := minic.ParseWithLimits(p.Name, p.Source+corpus.StdlibSource+corpus.Stdlib2Source, lim)
	if err != nil {
		t.Fatalf("seed %d (%s): parse: %v\n%s", p.Seed, p.Mix, err, p.Source)
	}
	prog, err := codegen.CompileBounded(ast, p.Entry().Language, codegen.Default,
		guard.Limits{CFGBlocks: cfgBlocksBudget})
	if err != nil {
		t.Fatalf("seed %d (%s): compile: %v\n%s", p.Seed, p.Mix, err, p.Source)
	}
	cfg := p.Entry().RunConfig()
	cfg.MaxInsns = fuelBudget
	prof, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatalf("seed %d (%s): run: %v\n%s", p.Seed, p.Mix, err, p.Source)
	}
	return prof
}

func TestEveryProgramParsesCompilesTerminates(t *testing.T) {
	n := seedsPerMix(t)
	for _, mix := range gencorpus.AllMixes() {
		mix := mix
		t.Run(mix.String(), func(t *testing.T) {
			t.Parallel()
			branchy := 0
			for seed := int64(0); seed < int64(n); seed++ {
				p := gencorpus.Generate(seed, mix)
				prof := mustBuild(t, p)
				if prof.CondExec > 0 {
					branchy++
				}
			}
			// The mix must actually produce branch behaviour to train on.
			if branchy < n*3/4 {
				t.Errorf("%s: only %d/%d programs executed a conditional branch", mix, branchy, n)
			}
		})
	}
}

func TestGenerateByteIdentical(t *testing.T) {
	for _, mix := range gencorpus.AllMixes() {
		for seed := int64(0); seed < 50; seed++ {
			a := gencorpus.Generate(seed, mix)
			b := gencorpus.Generate(seed, mix)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d (%s): two generations differ", seed, mix)
			}
		}
	}
	// Options variants are independent draws but equally reproducible.
	opt := gencorpus.Options{Prints: true, Stmts: 12}
	a := gencorpus.GenerateOpts(3, gencorpus.Mixed, opt)
	b := gencorpus.GenerateOpts(3, gencorpus.Mixed, opt)
	if a.Source != b.Source {
		t.Fatal("GenerateOpts is not reproducible")
	}
}

// TestProfilesAndVectorsBitIdentical pins the pipeline guarantee the
// artifact cache and streaming trainer rest on: analyzing the same
// generated program twice yields bit-identical profiles and feature
// vectors.
func TestProfilesAndVectorsBitIdentical(t *testing.T) {
	spec := gencorpus.Spec{Seed: 77, N: 10}
	for i := 0; i < spec.N; i++ {
		e := spec.Program(i).Entry()
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Vectors, b.Vectors) {
			t.Fatalf("%s: feature vectors differ between runs", e.Name)
		}
		if a.Profile.Insns != b.Profile.Insns || !reflect.DeepEqual(a.Profile.Branches, b.Profile.Branches) {
			t.Fatalf("%s: profiles differ between runs", e.Name)
		}
	}
}

// TestShardLoadWorkerCountIndependent analyzes one shard at GOMAXPROCS=1
// and at the test's full parallelism, and requires bit-identical example
// streams — the assembled-in-entry-order contract of ShardedCorpus.Load.
func TestShardLoadWorkerCountIndependent(t *testing.T) {
	spec := gencorpus.Spec{Seed: 5, N: 8}
	src := &gencorpus.ShardedCorpus{Entries: spec.Entries(), Size: 8}

	wide, err := src.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	narrow, err := src.Load(0)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wide, narrow) {
		t.Fatal("shard examples depend on GOMAXPROCS")
	}
}

// TestShardLoadCacheTemperatureIndependent requires a warm (cache-hit) load
// to be bit-identical to the cold load that filled the cache.
func TestShardLoadCacheTemperatureIndependent(t *testing.T) {
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := gencorpus.Spec{Seed: 6, N: 6}
	src := &gencorpus.ShardedCorpus{Entries: spec.Entries(), Size: 6, Cache: cache}
	cold, err := src.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	before := interp.TotalRuns()
	warm, err := src.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if traces := interp.TotalRuns() - before; traces != 0 {
		t.Errorf("warm shard load did %d interpreter traces, want 0", traces)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm shard examples differ from cold")
	}
}

func TestSpecSeedsDistinctAndStable(t *testing.T) {
	s := gencorpus.Spec{Seed: 1, N: 2000}
	seen := make(map[int64]int, s.N)
	for i := 0; i < s.N; i++ {
		d := s.ProgramSeed(i)
		if j, dup := seen[d]; dup {
			t.Fatalf("programs %d and %d share derived seed %d", j, i, d)
		}
		seen[d] = i
	}
	// Spec naming embeds base seed, index, and mix, so entries are unique.
	names := map[string]bool{}
	for _, e := range (gencorpus.Spec{Seed: 1, N: 25}).Entries() {
		if names[e.Name] {
			t.Fatalf("duplicate entry name %s", e.Name)
		}
		names[e.Name] = true
		if e.Suite != corpus.SuiteGenerated {
			t.Fatalf("%s: suite %q", e.Name, e.Suite)
		}
	}
}

func TestParseMixRoundTrips(t *testing.T) {
	for _, m := range gencorpus.AllMixes() {
		got, err := gencorpus.ParseMix(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMix(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := gencorpus.ParseMix("bogus"); err == nil {
		t.Fatal("ParseMix accepted a bogus mix")
	}
}

// TestGenCorpusSoak is the opt-in long soak: GENCORPUS_SOAK=<n> sweeps n
// seeds per mix through the full build-and-run budget check (the CI target
// runs the -short sweep under -race instead).
func TestGenCorpusSoak(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("GENCORPUS_SOAK"))
	if n <= 0 {
		t.Skip("set GENCORPUS_SOAK=<seeds per mix> to run the soak")
	}
	for _, mix := range gencorpus.AllMixes() {
		mix := mix
		t.Run(mix.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(n); seed++ {
				mustBuild(t, gencorpus.Generate(seed, mix))
			}
		})
	}
}

// FuzzGenCorpus drives generator output — and byte-level mutations of it —
// through parse, compile, and the micro-op-vs-reference differential: both
// interpreters must agree on result, outputs, and instruction count, or
// agree that the program fails. Seeds cover every mix; the mutation bytes
// let the fuzzer explore programs the generator itself would never emit.
func FuzzGenCorpus(f *testing.F) {
	for _, m := range gencorpus.AllMixes() {
		f.Add(int64(1), uint8(m), []byte{})
		f.Add(int64(42), uint8(m), []byte{3, 'x', 9, '+'})
	}
	alphabet := []byte("0123456789+-*<>=!;xyzar ")
	f.Fuzz(func(t *testing.T, seed int64, mixByte uint8, mut []byte) {
		mix := gencorpus.Mix(int(mixByte) % len(gencorpus.AllMixes()))
		p := gencorpus.Generate(seed, mix)
		src := []byte(p.Source)
		// Apply (position, replacement) pairs inside the generated portion;
		// replacements are drawn from a source-plausible alphabet so a
		// useful fraction survives the parser.
		for i := 0; i+1 < len(mut) && len(src) > 0; i += 2 {
			pos := int(mut[i]) * len(src) / 256
			src[pos] = alphabet[int(mut[i+1])%len(alphabet)]
		}
		lim := minic.Limits{MaxDepth: parseDepthBudget}
		ast, err := minic.ParseWithLimits(p.Name, string(src)+corpus.StdlibSource+corpus.Stdlib2Source, lim)
		if err != nil {
			return // mutation broke the syntax; nothing to compare
		}
		prog, err := codegen.CompileBounded(ast, p.Entry().Language, codegen.Default,
			guard.Limits{CFGBlocks: cfgBlocksBudget})
		if err != nil {
			return // mutation broke typing or the CFG budget
		}
		cfg := p.Entry().RunConfig()
		cfg.MaxInsns = fuelBudget
		got, gerr := interp.Run(prog, cfg)
		ref, rerr := interp.RunReference(prog, cfg)
		if (gerr == nil) != (rerr == nil) {
			t.Fatalf("interpreters disagree on failure: uop=%v ref=%v\n%s", gerr, rerr, src)
		}
		if gerr != nil {
			return // both failed (a mutated program may run out of fuel or trap)
		}
		if got.Result != ref.Result || got.Insns != ref.Insns {
			t.Fatalf("uop result %d/%d insns, reference %d/%d\n%s",
				got.Result, got.Insns, ref.Result, ref.Insns, src)
		}
		if !reflect.DeepEqual(got.Outputs, ref.Outputs) {
			t.Fatalf("outputs diverge: uop %v, reference %v\n%s", got.Outputs, ref.Outputs, src)
		}
	})
}
