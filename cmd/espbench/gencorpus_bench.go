package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/gencorpus"
	"repro/internal/interp"
)

// gencorpusBenchResult is BENCH_gencorpus.json: throughput of the
// generative-corpus pipeline — generation, cold analysis (interpreter
// traces), warm analysis (artifact-cache hits), and streaming training.
type gencorpusBenchResult struct {
	Name     string `json:"name"`
	Programs int    `json:"programs"`
	Shards   int    `json:"shards"`
	Examples int    `json:"examples"`
	// GenNsPerProgram is pure generation cost (no compile/run).
	GenNsPerProgram float64 `json:"gen_ns_per_program"`
	// ColdAnalyzeNsPerProgram includes compile + trace + featurize + store.
	ColdAnalyzeNsPerProgram float64 `json:"cold_analyze_ns_per_program"`
	// WarmAnalyzeNsPerProgram is the same path served from the cache.
	WarmAnalyzeNsPerProgram float64 `json:"warm_analyze_ns_per_program"`
	// WarmTraces must be 0: the zero-interpreter-work guarantee.
	WarmTraces int64 `json:"warm_traces"`
	// TrainNs is the end-to-end streaming fit (warm loads + classifier).
	TrainNs float64 `json:"train_ns"`
}

// runGencorpusBench measures the generative pipeline end to end on a
// fresh (temp-dir) cache so cold and warm numbers are honest, and writes
// BENCH_gencorpus.json.
func runGencorpusBench(dir string, cfg core.Config) error {
	const programs = 200
	const shardSize = 50
	spec := gencorpus.Spec{Seed: 1, N: programs}

	start := time.Now()
	entries := spec.Entries()
	genNs := float64(time.Since(start).Nanoseconds()) / programs

	cacheDir, err := os.MkdirTemp("", "espbench-gencorpus-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	cache, err := artifact.Open(cacheDir)
	if err != nil {
		return err
	}
	src := &gencorpus.ShardedCorpus{Entries: entries, Size: shardSize, Cache: cache}

	// Cold: every shard analyzed through the interpreter.
	start = time.Now()
	for i := 0; i < src.NumShards(); i++ {
		if _, err := src.Load(i); err != nil {
			return err
		}
	}
	coldNs := float64(time.Since(start).Nanoseconds()) / programs

	// Warm: the same shard loads served from the cache — the interpreter
	// trace drops out, the compile + featurize work remains.
	tracesBefore := interp.TotalRuns()
	start = time.Now()
	for i := 0; i < src.NumShards(); i++ {
		if _, err := src.Load(i); err != nil {
			return err
		}
	}
	warmNs := float64(time.Since(start).Nanoseconds()) / programs
	warmTraces := interp.TotalRuns() - tracesBefore

	// The end-to-end streaming fit over the warm cache.
	start = time.Now()
	_, st, err := core.TrainStreaming(context.Background(), src, cfg, "")
	if err != nil {
		return err
	}
	trainNs := float64(time.Since(start).Nanoseconds())

	out := gencorpusBenchResult{
		Name:                    "gencorpus",
		Programs:                programs,
		Shards:                  st.Shards,
		Examples:                st.Examples,
		GenNsPerProgram:         genNs,
		ColdAnalyzeNsPerProgram: coldNs,
		WarmAnalyzeNsPerProgram: warmNs,
		WarmTraces:              warmTraces,
		TrainNs:                 trainNs,
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	path := benchFile(dir, "gencorpus")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("gencorpus: %d programs  gen %.0f ns/prog  cold %.0f ns/prog  warm %.0f ns/prog (traces=%d)  train %.0f ms -> %s\n",
		programs, genNs, coldNs, warmNs, out.WarmTraces, trainNs/1e6, path)
	return nil
}
