// Package heuristics implements the program-based branch predictors the
// paper compares ESP against: BTFNT, the nine Ball/Larus heuristics of
// Table 1, their fixed-order combination (APHC), the Dempster-Shafer
// combination of Wu and Larus (DSHC), and the perfect static predictor.
package heuristics

import (
	"repro/internal/features"
)

// Prediction is a static branch prediction.
type Prediction int

// Prediction values.
const (
	None Prediction = iota // the predictor does not apply
	Taken
	NotTaken
)

// String renders the prediction.
func (p Prediction) String() string {
	switch p {
	case Taken:
		return "taken"
	case NotTaken:
		return "not-taken"
	}
	return "none"
}

// Heuristic identifies one of the Ball/Larus heuristics (Table 1).
type Heuristic int

// The nine Ball/Larus heuristics.
const (
	LoopBranch Heuristic = iota
	Pointer
	Opcode
	Guard
	LoopExit
	LoopHeader
	Call
	Store
	Return
	NumHeuristics
)

var heuristicNames = [NumHeuristics]string{
	"Loop Branch", "Pointer", "Opcode", "Guard", "Loop Exit",
	"Loop Header", "Call", "Store", "Return",
}

// String names the heuristic as in Table 1.
func (h Heuristic) String() string {
	if h < 0 || h >= NumHeuristics {
		return "unknown"
	}
	return heuristicNames[h]
}

// AllHeuristics lists the heuristics in Table 1 order.
func AllHeuristics() []Heuristic {
	hs := make([]Heuristic, NumHeuristics)
	for i := range hs {
		hs[i] = Heuristic(i)
	}
	return hs
}

// Config carries semantic knobs. The zero value follows Ball and Larus
// (PLDI'93) exactly.
type Config struct {
	// CallPredictsTaken flips the Call heuristic's polarity to the variant
	// printed in the paper's (OCR-damaged) Table 1: "predict the successor
	// that contains a call and does not post-dominate as taken". The
	// original Ball/Larus definition (the default) predicts it NOT taken.
	CallPredictsTaken bool
}

// Apply evaluates heuristic h on a branch site, returning Taken/NotTaken
// when the heuristic applies and None otherwise.
func Apply(h Heuristic, s *features.Site, cfg Config) Prediction {
	switch h {
	case LoopBranch:
		return applyLoopBranch(s)
	case Pointer:
		return applyPointer(s)
	case Opcode:
		return applyOpcode(s)
	case Guard:
		return applyGuard(s)
	case LoopExit:
		return applyLoopExit(s)
	case LoopHeader:
		return applyLoopHeader(s)
	case Call:
		return applyCall(s, cfg)
	case Store:
		return applyStore(s)
	case Return:
		return applyReturn(s)
	}
	return None
}

// applyLoopBranch: "Predict that the edge back to the loop's head is taken
// and the edge exiting the loop is not taken." A loop branch is a branch
// one of whose edges is a loop back edge — the loop's iteration branch.
// Exit-only branches (break-style tests) are non-loop branches, handled by
// the Loop Exit heuristic.
func applyLoopBranch(s *features.Site) Prediction {
	g := s.G
	if g.IsBackEdge(s.BlockIdx, s.TakenIdx) {
		return Taken
	}
	if g.IsBackEdge(s.BlockIdx, s.FallIdx) {
		return NotTaken
	}
	return None
}

// IsLoopBranch reports whether the Loop Branch heuristic applies — the
// paper's partition of dynamic branches into loop and non-loop branches
// (Table 5).
func IsLoopBranch(s *features.Site) bool { return applyLoopBranch(s) != None }

// applyPointer: comparisons of a pointer against null or of two pointers
// are predicted false.
func applyPointer(s *features.Site) Prediction {
	c := s.Cond
	if c.Kind != features.CmpEq && c.Kind != features.CmpNe {
		return None
	}
	ptrCmp := (c.LeftPtr && c.RightZero) || (c.LeftPtr && c.RightPtr)
	if !ptrCmp {
		return None
	}
	// Cond.Kind holds when the branch is taken; "comparison false" means:
	// equality false. For a taken-condition of CmpEq the branch is predicted
	// not taken; for CmpNe, taken.
	if c.Kind == features.CmpEq {
		return NotTaken
	}
	return Taken
}

// applyOpcode: integer comparisons "x < 0", "x <= 0", and "x == constant"
// are predicted false.
func applyOpcode(s *features.Site) Prediction {
	c := s.Cond
	if c.Float || c.LeftPtr || c.RightPtr {
		return None
	}
	switch {
	case c.Kind == features.CmpLt && c.RightZero,
		c.Kind == features.CmpLe && c.RightZero,
		c.Kind == features.CmpEq && c.RightConst:
		return NotTaken // the taken-condition is one of the unlikely forms
	case c.Kind == features.CmpGe && c.RightZero,
		c.Kind == features.CmpGt && c.RightZero,
		c.Kind == features.CmpNe && c.RightConst:
		return Taken // the fall-through condition is the unlikely form
	}
	return None
}

// applyGuard: if a register (at source level, a variable) operand of the
// branch comparison is used before being defined in a successor block and
// that successor does not post-dominate the branch, predict that successor.
// Variables live in frame slots in this IR, so the use-before-def test runs
// over the memory locations that fed the branch.
func applyGuard(s *features.Site) Prediction {
	g := s.G
	takenGuards := features.ReadsLocBeforeWrite(g, s.TakenIdx, s.SourceLocs) &&
		!g.PostDominates(s.TakenIdx, s.BlockIdx)
	fallGuards := features.ReadsLocBeforeWrite(g, s.FallIdx, s.SourceLocs) &&
		!g.PostDominates(s.FallIdx, s.BlockIdx)
	// When both successors re-use the guarded variable the heuristic gives
	// no signal; only a one-sided use predicts.
	if takenGuards && !fallGuards {
		return Taken
	}
	if fallGuards && !takenGuards {
		return NotTaken
	}
	return None
}

// applyLoopExit: if a comparison is inside a loop and no successor is a loop
// head, predict the edge exiting the loop as not taken.
func applyLoopExit(s *features.Site) Prediction {
	g := s.G
	if g.Loops().Innermost(s.BlockIdx) == nil {
		return None
	}
	if g.Loops().IsHeader(s.TakenIdx) || g.Loops().IsHeader(s.FallIdx) {
		return None
	}
	takenExits := g.IsLoopExitEdge(s.BlockIdx, s.TakenIdx)
	fallExits := g.IsLoopExitEdge(s.BlockIdx, s.FallIdx)
	if takenExits && !fallExits {
		return NotTaken
	}
	if fallExits && !takenExits {
		return Taken
	}
	return None
}

// applyLoopHeader: predict the successor that is a loop header or pre-header
// and does not post-dominate the branch as taken.
func applyLoopHeader(s *features.Site) Prediction {
	g := s.G
	if g.ReachesLoopHeaderUncond(s.TakenIdx) && !g.PostDominates(s.TakenIdx, s.BlockIdx) {
		return Taken
	}
	if g.ReachesLoopHeaderUncond(s.FallIdx) && !g.PostDominates(s.FallIdx, s.BlockIdx) {
		return NotTaken
	}
	return None
}

// applyCall: a successor that contains a call and does not post-dominate the
// branch is predicted not taken (Ball/Larus); Config.CallPredictsTaken flips
// the polarity to the variant printed in this paper's Table 1.
func applyCall(s *features.Site, cfg Config) Prediction {
	g := s.G
	predictAvoid := func(succTaken bool) Prediction {
		if cfg.CallPredictsTaken == succTaken {
			return Taken
		}
		return NotTaken
	}
	if g.ReachesCallUncond(s.TakenIdx) && !g.PostDominates(s.TakenIdx, s.BlockIdx) {
		return predictAvoid(true)
	}
	if g.ReachesCallUncond(s.FallIdx) && !g.PostDominates(s.FallIdx, s.BlockIdx) {
		return predictAvoid(false)
	}
	return None
}

// applyStore: a successor that contains a store instruction and does not
// post-dominate the branch is predicted not taken. Stack-pointer-relative
// stores are ignored: they are the IR's stand-in for register-allocated
// locals, which produce no memory traffic in the -O binaries the heuristic
// was designed for.
func applyStore(s *features.Site) Prediction {
	g := s.G
	if features.ContainsRealStore(g, s.TakenIdx) && !g.PostDominates(s.TakenIdx, s.BlockIdx) {
		return NotTaken
	}
	if features.ContainsRealStore(g, s.FallIdx) && !g.PostDominates(s.FallIdx, s.BlockIdx) {
		return Taken
	}
	return None
}

// applyReturn: a successor that contains a return is predicted not taken.
func applyReturn(s *features.Site) Prediction {
	g := s.G
	takenReturns := g.ContainsReturn(s.TakenIdx)
	fallReturns := g.ContainsReturn(s.FallIdx)
	if takenReturns && !fallReturns {
		return NotTaken
	}
	if fallReturns && !takenReturns {
		return Taken
	}
	return None
}
