package interp

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// cyclesProg builds a small two-function program with a loop and a
// conditional branch, directly in IR, so the test controls layout exactly.
//
//	main:  b0: n=6; br b1
//	       b1: n=n-1; bgt n, b1   (loop: 6 iterations)
//	       b2: call f; ret
//	f:     b0: ret
func cyclesProg() *ir.Program {
	f := &ir.Func{Name: "f", Language: ir.LangC, FrameSize: 0}
	f.Blocks = []*ir.Block{{ID: 0, Insns: []ir.Instr{
		{Op: ir.OpLdiQ, Dst: ir.RegV0, Imm: 7},
		{Op: ir.OpRet},
	}}}
	m := &ir.Func{Name: "main", Language: ir.LangC, FrameSize: 0}
	m.Blocks = []*ir.Block{
		{ID: 0, Insns: []ir.Instr{
			{Op: ir.OpLdiQ, Dst: ir.R(1), Imm: 6},
			{Op: ir.OpBr, Target: 1},
		}},
		{ID: 1, Insns: []ir.Instr{
			{Op: ir.OpSubQ, Dst: ir.R(1), A: ir.R(1), Imm: 1, UseImm: true},
			{Op: ir.OpBgt, A: ir.R(1), Target: 1},
		}},
		{ID: 2, Insns: []ir.Instr{
			{Op: ir.OpBsr, Sym: "f"},
			{Op: ir.OpLdiQ, Dst: ir.RegV0, Imm: 0},
			{Op: ir.OpRet},
		}},
	}
	p := &ir.Program{Name: "cycles-test", Funcs: []*ir.Func{m, f}}
	if err := p.Verify(); err != nil {
		panic(err)
	}
	return p
}

func TestCycleCountExact(t *testing.T) {
	p := cyclesProg()
	prof, err := Run(p, Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.Calls["main"]; got != 1 {
		t.Fatalf("Calls[main] = %d, want 1", got)
	}
	if got := prof.Calls["f"]; got != 1 {
		t.Fatalf("Calls[f] = %d, want 1", got)
	}
	cycles, err := CycleCount(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Hand count under DefaultCostModel:
	//   b0 once:   ldiq(1) + br(1+2 redirect)                    = 4
	//   b1 6x:     subq(1) + bgt(1), taken 5x (+2 each),
	//              backward so the 1 fall-through mispredicts +8 = 12+10+8
	//   b2 once:   bsr(2+2) + ldiq(1) + ret(2+2)                 = 9
	//   f.b0 once: ldiq(1) + ret(2+2)                            = 5
	want := int64(4 + 30 + 9 + 5)
	if cycles != want {
		t.Fatalf("CycleCount = %d, want %d", cycles, want)
	}
}

func TestCycleCountNeedsEdges(t *testing.T) {
	p := cyclesProg()
	prof, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CycleCount(p, prof); err != ErrNoEdgeProfile {
		t.Fatalf("CycleCount without edges: err = %v, want ErrNoEdgeProfile", err)
	}
}

func TestCycleCountDetectsMismatchedProfile(t *testing.T) {
	p := cyclesProg()
	prof, err := Run(p, Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	prof.Insns += 3 // a profile that cannot have come from this program
	if _, err := CycleCount(p, prof); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("CycleCount on mismatched profile: err = %v, want consistency error", err)
	}
}

func TestCycleCountPathsAgree(t *testing.T) {
	p := cyclesProg()
	a, err := Run(p, Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReference(p, Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := CycleCount(p, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CycleCount(p, b)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("micro-op path %d cycles, reference path %d", ca, cb)
	}
}
