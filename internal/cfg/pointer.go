package cfg

import (
	"repro/internal/ir"
)

// PointerInfo is a lightweight pointer-value inference over the IR. The
// paper's Pointer heuristic needs to know whether a branch compares a
// pointer against null or two pointers against each other; Ball and Larus
// (and this paper) recovered that information from the program binary by
// reconstructing an abstract syntax tree. We do the moral equivalent: a
// fixed-point abstract interpretation over the two-point lattice
// {not-pointer, pointer}, tracking registers block-locally and memory slots
// (stack frame words and global words) function-globally.
//
// A register becomes pointer-valued when it is defined by LDA (address of a
// global), by pointer arithmetic (add/sub with a pointer operand), by a copy
// of a pointer register, or by a load from a slot previously observed to
// hold a pointer. Stores of pointer-valued registers mark the target slot.
// Argument registers are marked pointer-valued when any call site passes a
// pointer in them (propagated interprocedurally to the callee's entry).
type PointerInfo struct {
	g *Graph
	// ptrAt[b][i] records, for instruction i of dense block b, which of its
	// register operands were pointer-valued at that point: bit 0 for A,
	// bit 1 for B.
	ptrAt [][]uint8
	// callPtrArgs records, per direct callee, which argument registers were
	// observed pointer-valued at any call site in this function.
	callPtrArgs map[string]map[ir.Reg]bool
	// returnsPtr records whether any return site had a pointer-valued V0.
	returnsPtr bool
}

// ptrFacts carries the interprocedural facts ProgramPointers iterates on.
type ptrFacts struct {
	args map[string]map[ir.Reg]bool
	rets map[string]bool
}

const (
	ptrOperandA = 1 << 0
	ptrOperandB = 1 << 1
)

type slotKey struct {
	base string // "" for stack-relative (SP), else global symbol
	off  int64
}

// Pointers computes (once) and returns the pointer inference for the graph.
// entryPtrArgs marks which incoming integer-argument registers are known to
// carry pointers (nil means none); the program-level analysis in
// ProgramPointers supplies this interprocedurally.
func (g *Graph) Pointers() *PointerInfo { return g.PointersWithArgs(nil) }

// PointersWithArgs is Pointers with explicit pointer-valued argument
// registers for the function entry.
func (g *Graph) PointersWithArgs(entryPtrArgs map[ir.Reg]bool) *PointerInfo {
	return g.pointersWithFacts(entryPtrArgs, nil)
}

func (g *Graph) pointersWithFacts(entryPtrArgs map[ir.Reg]bool, retFacts map[string]bool) *PointerInfo {
	if g.ptrs != nil && entryPtrArgs == nil && retFacts == nil {
		return g.ptrs
	}
	pi := computePointers(g, entryPtrArgs, retFacts)
	if entryPtrArgs == nil && retFacts == nil {
		g.ptrs = pi
	}
	return pi
}

func computePointers(g *Graph, entryPtrArgs map[ir.Reg]bool, retFacts map[string]bool) *PointerInfo {
	pi := &PointerInfo{g: g, ptrAt: make([][]uint8, g.N())}
	for b := 0; b < g.N(); b++ {
		pi.ptrAt[b] = make([]uint8, len(g.Blocks[b].Insns))
	}
	ptrSlots := make(map[slotKey]bool)
	// Iterate to a fixed point on the slot set; register state is tracked
	// within each block only (the code generator stores locals to the frame
	// between statements, so block-local tracking plus slot typing recovers
	// essentially all pointer flow).
	for pass := 0; pass < 6; pass++ {
		changed := false
		pi.callPtrArgs = make(map[string]map[ir.Reg]bool)
		for b := 0; b < g.N(); b++ {
			regPtr := make(map[ir.Reg]bool)
			if b == g.Entry() {
				for r, isPtr := range entryPtrArgs {
					if isPtr {
						regPtr[r] = true
					}
				}
			}
			for i := range g.Blocks[b].Insns {
				in := &g.Blocks[b].Insns[i]
				var mark uint8
				if regPtr[in.A] {
					mark |= ptrOperandA
				}
				if !in.UseImm && regPtr[in.B] {
					mark |= ptrOperandB
				}
				pi.ptrAt[b][i] = mark
				switch in.Op {
				case ir.OpLda:
					regPtr[in.Dst] = true
				case ir.OpAddQ, ir.OpSubQ:
					regPtr[in.Dst] = regPtr[in.A] || (!in.UseImm && regPtr[in.B])
				case ir.OpMov:
					regPtr[in.Dst] = regPtr[in.A]
				case ir.OpLdq:
					key, ok := pi.slotOf(b, i, in)
					isPtr := ok && ptrSlots[key]
					regPtr[in.Dst] = isPtr
				case ir.OpStq:
					if regPtr[in.B] {
						if key, ok := pi.slotOf(b, i, in); ok && !ptrSlots[key] {
							ptrSlots[key] = true
							changed = true
						}
					}
				case ir.OpBsr:
					for argIdx := 0; argIdx < 6; argIdx++ {
						r := ir.Reg(int(ir.RegA0) + argIdx)
						if regPtr[r] {
							if pi.callPtrArgs[in.Sym] == nil {
								pi.callPtrArgs[in.Sym] = make(map[ir.Reg]bool)
							}
							pi.callPtrArgs[in.Sym][r] = true
						}
					}
					// The return register carries a pointer when the callee
					// is known (interprocedurally) to return one.
					regPtr[ir.RegV0] = retFacts[in.Sym]
				case ir.OpRtcall:
					// The allocator intrinsic returns a fresh heap pointer.
					regPtr[ir.RegV0] = in.Imm == ir.RtAlloc
				case ir.OpRet:
					if regPtr[ir.RegV0] {
						pi.returnsPtr = true
					}
				default:
					if d, ok := in.Def(); ok {
						regPtr[d] = false
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return pi
}

// slotOf identifies the abstract memory slot addressed by a load/store when
// the base register is the stack pointer or was just defined by an LDA of a
// global within the same block; otherwise it reports no slot.
func (pi *PointerInfo) slotOf(b, i int, in *ir.Instr) (slotKey, bool) {
	if in.A == ir.RegSP {
		return slotKey{base: "", off: in.Imm}, true
	}
	// Walk back for the defining LDA of the base register.
	insns := pi.g.Blocks[b].Insns
	for j := i - 1; j >= 0; j-- {
		d, ok := insns[j].Def()
		if !ok || d != in.A {
			continue
		}
		if insns[j].Op == ir.OpLda {
			return slotKey{base: insns[j].Sym, off: insns[j].Imm + in.Imm}, true
		}
		return slotKey{}, false
	}
	return slotKey{}, false
}

// OperandIsPointer reports whether, at instruction index i of dense block b,
// the given operand register (operand 0 = A, 1 = B) held a pointer value.
func (pi *PointerInfo) OperandIsPointer(b, i, operand int) bool {
	if b < 0 || b >= len(pi.ptrAt) || i < 0 || i >= len(pi.ptrAt[b]) {
		return false
	}
	if operand == 0 {
		return pi.ptrAt[b][i]&ptrOperandA != 0
	}
	return pi.ptrAt[b][i]&ptrOperandB != 0
}

// ProgramPointers computes pointer inference for every function of a
// program, propagating two interprocedural facts across direct calls until
// a fixed point: pointer-valued argument registers (a call site passing a
// pointer in An makes the callee's entry treat An as pointer-valued) and
// pointer-returning functions (a callee observed returning a pointer makes
// V0 pointer-valued after calls to it).
func ProgramPointers(p *ir.Program, graphs map[string]*Graph) map[string]*PointerInfo {
	facts := ptrFacts{
		args: make(map[string]map[ir.Reg]bool),
		rets: make(map[string]bool),
	}
	infos := make(map[string]*PointerInfo)
	for round := 0; round < 6; round++ {
		changed := false
		for _, f := range p.Funcs {
			g := graphs[f.Name]
			if g == nil {
				continue
			}
			pi := g.pointersWithFacts(facts.args[f.Name], facts.rets)
			infos[f.Name] = pi
			if pi.returnsPtr && !facts.rets[f.Name] {
				facts.rets[f.Name] = true
				changed = true
			}
			for callee, regs := range pi.callPtrArgs {
				if facts.args[callee] == nil {
					facts.args[callee] = make(map[ir.Reg]bool)
				}
				for r := range regs {
					if !facts.args[callee][r] {
						facts.args[callee][r] = true
						changed = true
					}
				}
			}
		}
		if !changed && round > 0 {
			break
		}
	}
	return infos
}
