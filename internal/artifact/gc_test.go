package artifact

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"
)

// syntheticKey returns a distinct well-formed hex key; the cache does not
// require a key to be derivable from the record, so GC tests can populate
// many entries from one analysis.
func syntheticKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

// entrySize stores one entry and measures its on-disk size so bounds can
// be expressed as "room for n entries".
func entrySize(t *testing.T, rec *Record) int64 {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(syntheticKey(0), rec); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.path(syntheticKey(0)))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// backdate pins an entry's mtime to a fixed point in the past so eviction
// order is deterministic regardless of store timing.
func backdate(t *testing.T, c *Cache, key string, age time.Duration) {
	t.Helper()
	when := time.Now().Add(-age)
	if err := os.Chtimes(c.path(key), when, when); err != nil {
		t.Fatal(err)
	}
}

// TestGCEvictsOldestWhenOverBound: with room for two entries, storing five
// leaves the two youngest; the directory total respects the bound.
func TestGCEvictsOldestWhenOverBound(t *testing.T) {
	_, rec := analyzed(t, "bc")
	size := entrySize(t, rec)
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Store(syntheticKey(i), rec); err != nil {
			t.Fatal(err)
		}
		backdate(t, c, syntheticKey(i), time.Duration(5-i)*time.Hour)
	}
	c.SetMaxBytes(2*size + size/2)

	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, _ := e.Info()
		total += info.Size()
	}
	if total > c.MaxBytes() {
		t.Fatalf("directory holds %d bytes, bound is %d", total, c.MaxBytes())
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Load(syntheticKey(i)); ok {
			t.Errorf("entry %d (old) survived eviction", i)
		}
	}
	for i := 3; i < 5; i++ {
		if got, ok := c.Load(syntheticKey(i)); !ok || !reflect.DeepEqual(got, rec) {
			t.Errorf("entry %d (young) evicted or corrupt", i)
		}
	}
}

// TestGCKeepsRecentlyHitEntries: a Load refreshes an entry's age, so the
// oldest-by-store entry survives eviction if it was just hit — LRU, not
// FIFO.
func TestGCKeepsRecentlyHitEntries(t *testing.T) {
	_, rec := analyzed(t, "bc")
	size := entrySize(t, rec)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Store(syntheticKey(i), rec); err != nil {
			t.Fatal(err)
		}
		backdate(t, c, syntheticKey(i), time.Duration(3-i)*time.Hour)
	}
	// Enable LRU tracking without evicting, then hit the oldest entry.
	c.SetMaxBytes(100 * size)
	if _, ok := c.Load(syntheticKey(0)); !ok {
		t.Fatal("setup load missed")
	}
	// Shrink to two entries' room: entry 1 is now the least recently used.
	c.SetMaxBytes(2*size + size/2)

	if _, ok := c.Load(syntheticKey(1)); ok {
		t.Error("least-recently-used entry survived")
	}
	for _, i := range []int{0, 2} {
		if _, ok := c.Load(syntheticKey(i)); !ok {
			t.Errorf("recently-used entry %d evicted", i)
		}
	}
}

// TestGCDisabledByDefault: without SetMaxBytes the cache never evicts.
func TestGCDisabledByDefault(t *testing.T) {
	_, rec := analyzed(t, "bc")
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Store(syntheticKey(i), rec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := c.Load(syntheticKey(i)); !ok {
			t.Fatalf("entry %d missing with GC disabled", i)
		}
	}
}

// TestGCSafeUnderConcurrentLoads: loads racing eviction must observe a
// full record or a clean miss, never an error or a torn entry, and the
// race detector must stay quiet.
func TestGCSafeUnderConcurrentLoads(t *testing.T) {
	_, rec := analyzed(t, "bc")
	size := entrySize(t, rec)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(3 * size)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := syntheticKey((g*25 + i) % 8)
				if i%2 == 0 {
					if err := c.Store(key, rec); err != nil {
						t.Errorf("store: %v", err)
						return
					}
				}
				if got, ok := c.Load(key); ok && !reflect.DeepEqual(got, rec) {
					t.Error("load racing GC observed a wrong record")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRawRoundTripAcrossCaches is the peer-protocol contract: bytes read
// with LoadRaw from one cache install verbatim into another via StoreRaw,
// and the receiving cache then hits locally with an identical record.
func TestRawRoundTripAcrossCaches(t *testing.T) {
	key, rec := analyzed(t, "bc")
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.LoadRaw(key); ok {
		t.Fatal("raw hit on empty cache")
	}
	if err := a.Store(key, rec); err != nil {
		t.Fatal(err)
	}
	raw, ok := a.LoadRaw(key)
	if !ok {
		t.Fatal("raw miss after store")
	}
	if got, ok := DecodeRecord(raw, key); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("DecodeRecord of raw bytes differs from stored record")
	}
	if err := b.StoreRaw(key, raw); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Load(key); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("receiving cache does not hit after StoreRaw")
	}
}

// TestStoreRawRejectsBadPayloads: corrupt or mis-keyed peer bytes must be
// refused before touching disk — the local cache cannot be poisoned by a
// bad peer.
func TestStoreRawRejectsBadPayloads(t *testing.T) {
	key, rec := analyzed(t, "bc")
	otherKey, _ := analyzed(t, "gzip")
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Store(key, rec); err != nil {
		t.Fatal(err)
	}
	raw, ok := src.LoadRaw(key)
	if !ok {
		t.Fatal("raw miss after store")
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xFF
	if err := dst.StoreRaw(key, flipped); err == nil {
		t.Fatal("corrupt raw payload accepted")
	}
	if err := dst.StoreRaw(otherKey, raw); err == nil {
		t.Fatal("mis-keyed raw payload accepted")
	}
	if _, ok := dst.Load(key); ok {
		t.Fatal("rejected payload landed on disk")
	}
	if _, ok := DecodeRecord(raw, otherKey); ok {
		t.Fatal("DecodeRecord accepted a wrong key")
	}
}

// TestRawNilCache: the nil-cache convention extends to the raw API.
func TestRawNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.LoadRaw("deadbeef"); ok {
		t.Fatal("nil cache raw hit")
	}
	if err := c.StoreRaw("deadbeef", nil); err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(1)
	if c.MaxBytes() != 0 {
		t.Fatal("nil cache reports a bound")
	}
}
