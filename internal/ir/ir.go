// Package ir defines the Alpha-like intermediate representation that the
// whole reproduction is built on: the MinC code generator lowers programs to
// it, the interpreter executes it to collect branch profiles (standing in for
// ATOM instrumentation of Alpha binaries), and the CFG analyses, feature
// extraction, and branch-prediction heuristics all consume it.
package ir

import "fmt"

// Reg names a machine register. Values 0..31 are the integer registers
// R0..R31; values 32..63 are the floating-point registers F0..F31.
// Following Alpha conventions, R31 and F31 always read as zero.
type Reg uint8

// Register conventions (a simplified Alpha calling standard).
const (
	RegV0   Reg = 0  // integer return value
	RegA0   Reg = 16 // first integer argument (R16..R21 are A0..A5)
	RegSP   Reg = 30 // stack pointer
	RegZero Reg = 31 // integer zero register

	RegFV0   Reg = 32 + 0  // float return value (F0)
	RegFA0   Reg = 32 + 16 // first float argument (F16..F21)
	RegFZero Reg = 32 + 31 // float zero register (F31)

	// NumRegs is the total register file size (32 int + 32 float).
	NumRegs = 64
)

// R returns the i'th integer register.
func R(i int) Reg {
	if i < 0 || i > 31 {
		panic(fmt.Sprintf("ir: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register.
func F(i int) Reg {
	if i < 0 || i > 31 {
		panic(fmt.Sprintf("ir: float register index %d out of range", i))
	}
	return Reg(32 + i)
}

// IsFloat reports whether r is a floating-point register.
func (r Reg) IsFloat() bool { return r >= 32 }

// IsZero reports whether r is a hardwired zero register.
func (r Reg) IsZero() bool { return r == RegZero || r == RegFZero }

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r.IsFloat() {
		return fmt.Sprintf("F%d", int(r-32))
	}
	return fmt.Sprintf("R%d", int(r))
}

// NoReg is the canonical "no register" operand placeholder (reads as zero).
const NoReg = RegZero

// Instr is a single IR instruction. The meaning of the fields depends on the
// opcode:
//
//   - ALU/compare: Dst = A op B, or Dst = A op Imm when UseImm is set.
//   - OpLdiQ/OpLdiT: Dst = Imm (for OpLdiT, Imm holds the float's bits).
//   - OpLda: Dst = &Sym + Imm.
//   - Loads/stores: address is A + Imm; loads write Dst, stores read B.
//   - Conditional branches: test A (against zero, or against B for the
//     MIPS-style two-register forms); Target is the taken successor block ID.
//   - OpBr: Target is the successor block ID.
//   - OpJmp: A holds a block-table index; Targets lists the candidates.
//   - OpBsr: call function Sym; arguments are in A0.../FA0... by convention.
//   - OpRtcall: Imm selects the runtime intrinsic.
type Instr struct {
	Op     Op
	Dst    Reg
	A      Reg
	B      Reg
	Imm    int64
	UseImm bool
	Sym    string
	Target int
	// Targets lists candidate successor blocks for OpJmp (jump tables).
	Targets []int
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []Reg {
	switch in.Op.Class() {
	case ClassIntALU, ClassFloatALU, ClassIntCmp, ClassFloatCmp:
		if in.Op == OpFAbs || in.Op == OpFNeg || in.Op == OpCvtQT || in.Op == OpCvtTQ {
			return []Reg{in.A}
		}
		if in.UseImm {
			return []Reg{in.A}
		}
		return []Reg{in.A, in.B}
	case ClassMove:
		return []Reg{in.A}
	case ClassCmov:
		return []Reg{in.A, in.B, in.Dst}
	case ClassLoad:
		return []Reg{in.A}
	case ClassStore:
		return []Reg{in.A, in.B}
	case ClassCondBranch:
		if in.Op.IsTwoRegBranch() {
			return []Reg{in.A, in.B}
		}
		return []Reg{in.A}
	case ClassIndirectJump, ClassIndirectCall:
		return []Reg{in.A}
	}
	return nil
}

// Def returns the register written by the instruction and whether it writes
// one at all.
func (in *Instr) Def() (Reg, bool) {
	switch in.Op.Class() {
	case ClassIntALU, ClassFloatALU, ClassIntCmp, ClassFloatCmp,
		ClassConst, ClassMove, ClassCmov, ClassLoad:
		return in.Dst, true
	}
	return 0, false
}

// String renders the instruction in assembler-like syntax.
func (in *Instr) String() string {
	switch in.Op.Class() {
	case ClassIntALU, ClassFloatALU, ClassIntCmp, ClassFloatCmp:
		if in.Op == OpFAbs || in.Op == OpFNeg || in.Op == OpCvtQT || in.Op == OpCvtTQ {
			return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.A)
		}
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Dst, in.A, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.A, in.B)
	case ClassConst:
		if in.Op == OpLda {
			return fmt.Sprintf("lda %s, %s+%d", in.Dst, in.Sym, in.Imm)
		}
		return fmt.Sprintf("%s %s, #%d", in.Op, in.Dst, in.Imm)
	case ClassMove:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.A)
	case ClassCmov:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.A, in.B, in.Dst)
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Dst, in.Imm, in.A)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.B, in.Imm, in.A)
	case ClassCondBranch:
		if in.Op.IsTwoRegBranch() {
			return fmt.Sprintf("%s %s, %s, b%d", in.Op, in.A, in.B, in.Target)
		}
		return fmt.Sprintf("%s %s, b%d", in.Op, in.A, in.Target)
	case ClassUncondBranch:
		return fmt.Sprintf("br b%d", in.Target)
	case ClassIndirectJump:
		return fmt.Sprintf("jmp (%s) %v", in.A, in.Targets)
	case ClassCall:
		return fmt.Sprintf("bsr %s", in.Sym)
	case ClassIndirectCall:
		return fmt.Sprintf("jsr (%s)", in.A)
	case ClassReturn:
		return "ret"
	case ClassRuntime:
		return fmt.Sprintf("rtcall #%d", in.Imm)
	}
	return fmt.Sprintf("%s ???", in.Op)
}

// Block is a basic block: a maximal straight-line instruction sequence. A
// block may end with a terminator (branch, jump, or return); a block whose
// last instruction is not a terminator falls through to the next block in
// the function's layout order.
type Block struct {
	ID    int
	Insns []Instr
}

// Terminator returns the block's terminating instruction, or nil if the
// block falls through implicitly.
func (b *Block) Terminator() *Instr {
	if len(b.Insns) == 0 {
		return nil
	}
	last := &b.Insns[len(b.Insns)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Branch returns the block's conditional-branch terminator, or nil.
func (b *Block) Branch() *Instr {
	t := b.Terminator()
	if t != nil && t.Op.IsCondBranch() {
		return t
	}
	return nil
}

// ContainsCall reports whether any instruction in the block is a call.
func (b *Block) ContainsCall() bool {
	for i := range b.Insns {
		if b.Insns[i].Op.IsCall() {
			return true
		}
	}
	return false
}

// ContainsStore reports whether any instruction in the block writes memory.
func (b *Block) ContainsStore() bool {
	for i := range b.Insns {
		if b.Insns[i].Op.IsStore() {
			return true
		}
	}
	return false
}

// Language tags the source language of a procedure, one of the static
// features in Table 2 of the paper (value "C" or "FORT"; the Scheme-style
// corpus programs use "SCHEME" for the Section 3.1.2 study).
type Language string

// Source-language values.
const (
	LangC       Language = "C"
	LangFortran Language = "FORT"
	LangScheme  Language = "SCHEME"
)

// Func is a procedure: an ordered list of basic blocks. Blocks[0] is the
// entry block and block layout order defines branch direction (a branch to a
// lower-indexed block is a backward branch).
type Func struct {
	Name      string
	Blocks    []*Block
	NIntArgs  int
	NFltArgs  int
	FrameSize int64 // stack frame size in words
	Language  Language
}

// Succs returns the successor block IDs of block b in control-flow order:
// for a conditional branch the taken successor (branch target) comes first
// and the fall-through successor second.
func (f *Func) Succs(b *Block) []int {
	t := b.Terminator()
	if t == nil {
		if next := f.layoutNext(b.ID); next >= 0 {
			return []int{next}
		}
		return nil
	}
	switch t.Op.Class() {
	case ClassCondBranch:
		succs := []int{t.Target}
		if next := f.layoutNext(b.ID); next >= 0 {
			succs = append(succs, next)
		}
		return succs
	case ClassUncondBranch:
		return []int{t.Target}
	case ClassIndirectJump:
		return append([]int(nil), t.Targets...)
	case ClassReturn:
		return nil
	}
	return nil
}

// layoutNext returns the ID of the block following block id in layout order,
// or -1 if id is the last block.
func (f *Func) layoutNext(id int) int {
	for i, b := range f.Blocks {
		if b.ID == id {
			if i+1 < len(f.Blocks) {
				return f.Blocks[i+1].ID
			}
			return -1
		}
	}
	return -1
}

// BlockByID returns the block with the given ID, or nil.
func (f *Func) BlockByID(id int) *Block {
	for _, b := range f.Blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// LayoutIndex returns the position of block id in layout order, or -1.
func (f *Func) LayoutIndex(id int) int {
	for i, b := range f.Blocks {
		if b.ID == id {
			return i
		}
	}
	return -1
}

// NumInsns returns the static instruction count of the function.
func (f *Func) NumInsns() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insns)
	}
	return n
}

// Global is a program global variable: a named region of Size words,
// optionally with initial integer values.
type Global struct {
	Name  string
	Size  int64
	Init  []int64
	Float bool
}

// Program is a complete compiled program: a set of functions (with "main" as
// the entry point) and global variables.
type Program struct {
	Name    string
	Funcs   []*Func
	Globals []Global
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalByName returns the global with the given name, or nil.
func (p *Program) GlobalByName(name string) *Global {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// NumInsns returns the static instruction count of the whole program.
func (p *Program) NumInsns() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInsns()
	}
	return n
}

// NumCondBranches returns the number of static conditional branch sites.
func (p *Program) NumCondBranches() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Branch() != nil {
				n++
			}
		}
	}
	return n
}

// BranchRef identifies a static conditional branch site within a program.
type BranchRef struct {
	Func  string
	Block int
}

// String renders the site as func:bN.
func (r BranchRef) String() string { return fmt.Sprintf("%s:b%d", r.Func, r.Block) }

// Branches enumerates every static conditional branch site in the program,
// in deterministic (function then layout) order.
func (p *Program) Branches() []BranchRef {
	var refs []BranchRef
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Branch() != nil {
				refs = append(refs, BranchRef{Func: f.Name, Block: b.ID})
			}
		}
	}
	return refs
}
