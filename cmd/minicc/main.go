// Command minicc compiles a MinC source file and inspects the result:
//
//	minicc prog.mc                  # compile, verify, print a summary
//	minicc -dump ir prog.mc         # disassemble the generated IR
//	minicc -dump cfg prog.mc        # per-function CFG, dominators, loops
//	minicc -dump tokens prog.mc     # lexer output
//	minicc -run -input 5,10 prog.mc # execute and print outputs
//	minicc -target gem prog.mc      # select a compiler/architecture config
//	minicc -stdlib prog.mc          # link the corpus runtime library
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cfg"
	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

func main() {
	dump := flag.String("dump", "", "dump stage: tokens, ir, or cfg")
	run := flag.Bool("run", false, "execute the program after compiling")
	inputStr := flag.String("input", "", "comma-separated input words for -run")
	seed := flag.Uint64("seed", 1, "__rand seed for -run")
	targetName := flag.String("target", codegen.Default.Name, "target/compiler configuration")
	lang := flag.String("lang", "C", "language tag: C, FORT, or SCHEME")
	withStdlib := flag.Bool("stdlib", false, "link the corpus runtime library")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	text := string(src)
	if *withStdlib {
		text += corpus.StdlibSource + corpus.Stdlib2Source
	}

	if *dump == "tokens" {
		toks, err := minic.LexAll(text)
		if err != nil {
			fatal(err)
		}
		for _, t := range toks {
			fmt.Printf("%s\t%v\t%q\n", t.Pos, t.Kind, t.Text)
		}
		return
	}

	ast, err := minic.Parse(flag.Arg(0), text)
	if err != nil {
		fatal(err)
	}
	tgt, err := findTarget(*targetName)
	if err != nil {
		fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.Language(*lang), tgt)
	if err != nil {
		fatal(err)
	}

	switch *dump {
	case "":
	case "ir":
		fmt.Print(prog.Disassemble())
	case "cfg":
		dumpCFG(prog)
	default:
		fatal(fmt.Errorf("unknown -dump stage %q", *dump))
	}

	fmt.Printf("%s: %d functions, %d globals, %d instructions, %d conditional branch sites [%s]\n",
		prog.Name, len(prog.Funcs), len(prog.Globals), prog.NumInsns(), prog.NumCondBranches(), tgt.Name)

	if *run {
		prof, err := interp.Run(prog, interp.Config{Input: parseInputs(*inputStr), Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for _, v := range prof.Outputs {
			fmt.Println(v)
		}
		for _, v := range prof.FOutputs {
			fmt.Println(v)
		}
		fmt.Printf("result=%d insns=%d cond-branches=%d (%.1f%% taken)\n",
			prof.Result, prof.Insns, prof.CondExec, prof.PercentTaken())
	}
}

func findTarget(name string) (codegen.Target, error) {
	all := append([]codegen.Target{codegen.Default, codegen.MIPSCC}, codegen.Compilers...)
	for _, t := range all {
		if t.Name == name {
			return t, nil
		}
	}
	names := make([]string, len(all))
	for i, t := range all {
		names[i] = t.Name
	}
	return codegen.Target{}, fmt.Errorf("unknown target %q (have: %s)", name, strings.Join(names, ", "))
}

func parseInputs(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -input element %q: %v", part, err))
		}
		out = append(out, v)
	}
	return out
}

func dumpCFG(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		g := cfg.New(fn)
		loops := g.Loops()
		fmt.Printf("func %s: %d blocks, %d loops\n", fn.Name, g.N(), len(loops.Loops))
		idom := g.Idom()
		ipdom := g.Ipdom()
		for i := 0; i < g.N(); i++ {
			b := g.Block(i)
			fmt.Printf("  b%-3d succs=%v idom=%d ipdom=%d depth=%d",
				b.ID, g.Succ[i], idom[i], ipdom[i], loops.Depth(i))
			if loops.IsHeader(i) {
				fmt.Print(" [loop header]")
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
