package neural

import (
	"math"
	"testing"
)

// edgeValues are the int8 extremes the quant kernels must handle exactly:
// the most negative code (−128, which the symmetric quantizer never emits
// but the kernel contract still covers), the extremes of the symmetric
// grid, zero, and ±1.
var edgeValues = []int8{-128, -127, -1, 0, 1, 127}

// TestQuantDotEdgeValuesExhaustive runs every (a, b) pair of edge values
// through both kernels at a length past the vector width, checking the
// exact int32 accumulation (including -128·-128 = 16384 products).
func TestQuantDotEdgeValuesExhaustive(t *testing.T) {
	const n = 37 // two 16-lane iterations plus a 5-lane scalar tail
	for _, av := range edgeValues {
		for _, bv := range edgeValues {
			a := make([]int8, n)
			b := make([]int8, n)
			for i := range a {
				a[i] = av
				b[i] = bv
			}
			want := int32(n) * int32(av) * int32(bv)
			if got := quantDotGeneric(a, b); got != want {
				t.Errorf("generic dot(%d,%d)×%d = %d, want %d", av, bv, n, got, want)
			}
			if got := quantDot(a, b); got != want {
				t.Errorf("dispatched dot(%d,%d)×%d = %d, want %d", av, bv, n, got, want)
			}
		}
	}
}

// TestQuantDotLengthsAroundVectorWidth sweeps every length 0..67 — odd
// lengths, exact multiples of the 16-lane width, and one-off lengths on
// both sides — with mixed-sign contents, asserting the dispatched kernel
// (AVX2 where available) equals the generic loop exactly.
func TestQuantDotLengthsAroundVectorWidth(t *testing.T) {
	rng := newRNG(7)
	for n := 0; n <= 67; n++ {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := 0; i < n; i++ {
			a[i] = int8(rng.next())
			b[i] = int8(rng.next())
		}
		// Plant edge codes at the boundaries the tail logic cares about.
		if n > 0 {
			a[0], b[0] = -128, 127
			a[n-1], b[n-1] = 127, -128
		}
		want := quantDotGeneric(a, b)
		if got := quantDot(a, b); got != want {
			t.Fatalf("n=%d: dispatched dot %d, generic %d", n, got, want)
		}
	}
}

// TestQuantDotUnalignedOffsets slides both operands across sub-slice
// offsets so the AVX2 loads hit every 16-byte misalignment.
func TestQuantDotUnalignedOffsets(t *testing.T) {
	rng := newRNG(11)
	backing := make([]int8, 128)
	for i := range backing {
		backing[i] = int8(rng.next())
	}
	for off := 0; off < 16; off++ {
		for n := 15; n <= 49; n += 17 {
			a := backing[off : off+n]
			b := backing[off+n : off+2*n]
			want := quantDotGeneric(a, b)
			if got := quantDot(a, b); got != want {
				t.Fatalf("off=%d n=%d: dispatched dot %d, generic %d", off, n, got, want)
			}
		}
	}
}

// FuzzQuantDot compares the dispatched kernel against the generic fallback
// on arbitrary byte strings: the two halves of the input become the two
// operands. On amd64 this differentially fuzzes the assembly; under the
// purego tag (or other GOARCH) it degenerates to self-consistency.
func FuzzQuantDot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x7f, 0x00, 0x01, 0xff, 0x80})
	seed := make([]byte, 66)
	for i := range seed {
		seed[i] = byte(i*37 + 128)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 2
		a := make([]int8, n)
		b := make([]int8, n)
		for i := 0; i < n; i++ {
			a[i] = int8(data[i])
			b[i] = int8(data[n+i])
		}
		want := quantDotGeneric(a, b)
		if got := quantDot(a, b); got != want {
			t.Fatalf("n=%d: dispatched dot %d, generic %d", n, got, want)
		}
	})
}

// TestQuantizeSym pins the quantizer's grid: symmetric ±127, round half
// away from zero, saturating.
func TestQuantizeSym(t *testing.T) {
	cases := []struct {
		v, scale float64
		want     int8
	}{
		{0, 1, 0},
		{1, 1, 1},
		{-1, 1, -1},
		{0.5, 1, 1}, // round half away from zero
		{-0.5, 1, -1},
		{0.49, 1, 0},
		{126.6, 1, 127},
		{1000, 1, 127},   // saturate high
		{-1000, 1, -127}, // saturate low symmetrically (never -128)
		{3, 2, 2},        // scale divides before rounding
		{1, 0, 0},        // degenerate scale quantizes to zero
	}
	for _, c := range cases {
		if got := quantizeSym(c.v, c.scale); got != c.want {
			t.Errorf("quantizeSym(%v, %v) = %d, want %d", c.v, c.scale, got, c.want)
		}
	}
}

// TestQuantizeRoundTrip checks Quantize against a hand-computed net: the
// dequantized weights stay within half a quantization step of the float
// weights, and the quantized forward output stays close to the float one.
func TestQuantizeRoundTrip(t *testing.T) {
	cfg := Config{Inputs: 33, Hidden: 5, Seed: 3}
	n := New(cfg)
	q, err := Quantize(n, 127/4.0) // representable input range ±4
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.Hidden; i++ {
		for j := 0; j < n.Inputs; j++ {
			w := n.Weight(i, j)
			wq := float64(q.WQ[i*q.Inputs+j]) * q.WScale[i]
			if d := math.Abs(w - wq); d > q.WScale[i]/2+1e-12 {
				t.Fatalf("weight (%d,%d): float %v dequantized %v, off by %v > step/2 %v",
					i, j, w, wq, d, q.WScale[i]/2)
			}
		}
	}

	rng := newRNG(9)
	x := make([]float64, cfg.Inputs)
	qx := make([]int8, cfg.Inputs)
	h := make([]float64, cfg.Hidden)
	var worst float64
	for trial := 0; trial < 200; trial++ {
		for j := range x {
			x[j] = rng.uniform() * 3
		}
		q.QuantizeInput(x, qx)
		yf := n.ForwardInto(h, x)
		yq := q.Forward(qx)
		if d := math.Abs(yf - yq); d > worst {
			worst = d
		}
	}
	// The error budget here is loose — the decision-pinning calibration is
	// what guarantees outcomes — but a broken quantizer would blow far past
	// this.
	if worst > 0.05 {
		t.Fatalf("worst |float-quant| probability gap %v > 0.05", worst)
	}
}

// TestQuantizeAllZeroRow covers the degenerate all-zero weight row: its
// scale must stay finite and its contribution exactly tanh(bias).
func TestQuantizeAllZeroRow(t *testing.T) {
	n := &Net{
		Inputs: 8,
		Hidden: 2,
		W:      make([]float64, 16),
		B:      []float64{0.25, -0.5},
		V:      []float64{1, 1},
	}
	// Row 1 gets real weights; row 0 stays all zero.
	for j := 0; j < 8; j++ {
		n.SetWeight(1, j, float64(j-4)/8)
	}
	q, err := Quantize(n, 127.0)
	if err != nil {
		t.Fatal(err)
	}
	if q.WScale[0] != 1 {
		t.Fatalf("all-zero row scale = %v, want 1", q.WScale[0])
	}
	qx := make([]int8, 8)
	for i := range qx {
		qx[i] = 127
	}
	got := q.Forward(qx)
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("forward with all-zero row = %v, want a probability", got)
	}
}

// TestQuantizeRejectsBadScale pins the error paths.
func TestQuantizeRejectsBadScale(t *testing.T) {
	n := New(Config{Inputs: 4, Hidden: 2, Seed: 1})
	for _, s := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := Quantize(n, s); err == nil {
			t.Errorf("Quantize(xscale=%v): no error", s)
		}
	}
	if _, err := Quantize(nil, 1); err == nil {
		t.Error("Quantize(nil): no error")
	}
}

// TestQuantForwardBatchValidates mirrors the Net.ForwardBatch contract:
// mismatched lengths panic, the empty batch is a no-op.
func TestQuantForwardBatchValidates(t *testing.T) {
	n := New(Config{Inputs: 4, Hidden: 2, Seed: 1})
	q, err := Quantize(n, 127.0)
	if err != nil {
		t.Fatal(err)
	}
	q.ForwardBatch(nil, nil) // empty batch: no panic
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ForwardBatch length mismatch did not panic")
			}
		}()
		q.ForwardBatch(make([][]int8, 2), make([]float64, 1))
	}()
}

// BenchmarkQuantDot measures the int8 kernel at the serving row width.
func BenchmarkQuantDot(b *testing.B) {
	const n = 256
	rng := newRNG(5)
	a := make([]int8, n)
	c := make([]int8, n)
	for i := 0; i < n; i++ {
		a[i] = int8(rng.next())
		c[i] = int8(rng.next())
	}
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += quantDot(a, c)
	}
	_ = sink
}
