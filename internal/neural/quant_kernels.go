package neural

// The quantized forward pass reduces to one integer kernel: the int8 dot
// product with an int32 accumulator. Unlike the float64 CSR kernels, whose
// assembly must replay the exact IEEE rounding of the Go loop, integer
// addition is associative — any summation order produces the same int32 —
// so the AVX2 version (quant_kernels_amd64.s) is exactly equal to this
// generic loop by construction, and the differential tests assert ==.
//
// Accumulator bound: |a[i]*b[i]| ≤ 128·128 = 16384, so the int32 accumulator
// is exact for any n ≤ 2^31/2^14 = 131072 elements. Quantized input rows are
// a few hundred columns wide; callers stay far inside the bound.

// quantDotGeneric is the portable int8 dot product.
func quantDotGeneric(a, b []int8) int32 {
	var acc int32
	_ = b[:len(a)]
	for i, av := range a {
		acc += int32(av) * int32(b[i])
	}
	return acc
}
