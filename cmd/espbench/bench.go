package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/minic"
	"repro/internal/neural"
)

// benchResult is the machine-readable form of one micro-benchmark, written
// as BENCH_<name>.json so the perf trajectory of the hot paths is tracked
// across PRs.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchFile names the output file for one benchmark.
func benchFile(dir, name string) string {
	return filepath.Join(dir, "BENCH_"+name+".json")
}

// writeBench serializes one benchmark result. Split from the runner so the
// emitter is testable without running benchmarks.
func writeBench(dir, name string, r testing.BenchmarkResult) error {
	out := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchFile(dir, name), append(data, '\n'), 0o644)
}

// benchRegistry maps benchmark names to their bodies. Each body is handed a
// *testing.B by testing.Benchmark.
func benchRegistry() (map[string]func(b *testing.B), error) {
	e, ok := corpus.ByName("gzip")
	if !ok {
		return nil, fmt.Errorf("corpus program gzip missing")
	}
	src := e.Source + corpus.StdlibSource + corpus.Stdlib2Source

	// The derived fixtures are built lazily so `-bench parse` does not pay
	// for compilation or analysis.
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		return nil, err
	}
	pd, err := core.Analyze(prog, e.Language, e.RunConfig())
	if err != nil {
		return nil, err
	}
	enc := features.NewEncoder(pd.Vectors)

	return map[string]func(b *testing.B){
		"parse": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := minic.Parse(e.Name, src); err != nil {
					b.Fatal(err)
				}
			}
		},
		"profile": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(prog, e.Language, e.RunConfig()); err != nil {
					b.Fatal(err)
				}
			}
		},
		"encode": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				enc.EncodeAllSparse(pd.Vectors)
			}
		},
		"forward": func(b *testing.B) {
			cfg := neural.Config{Inputs: enc.Dim, Hidden: 20, Seed: 1}
			net := neural.New(cfg)
			xs := enc.EncodeAll(pd.Vectors)
			h := make([]float64, net.Hidden)
			out := make([]float64, len(xs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForwardBatch(h, xs, out)
			}
		},
		"train": func(b *testing.B) {
			examples := pd.Examples()
			vecs := make([]features.Vector, len(examples))
			targets := make([]float64, len(examples))
			weights := make([]float64, len(examples))
			for i, ex := range examples {
				vecs[i], targets[i], weights[i] = ex.Vector, ex.Target, ex.Weight
			}
			xs := enc.EncodeAllSparse(vecs)
			cfg := neural.Config{
				Inputs: enc.Dim, Hidden: 12, Seed: 1,
				MaxEpochs: 40, Patience: 40, Workers: 1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := neural.New(cfg)
				net.TrainCSR(cfg, xs, targets, weights)
			}
		},
	}, nil
}

// runBenchSuite runs the selected benchmarks (comma-separated names, or
// "all") and writes one BENCH_<name>.json per benchmark into dir.
func runBenchSuite(selection, dir string) error {
	reg, err := benchRegistry()
	if err != nil {
		return err
	}
	var names []string
	if selection == "all" {
		for name := range reg {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		names = strings.Split(selection, ",")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		body, ok := reg[name]
		if !ok {
			return fmt.Errorf("unknown benchmark %q (have: parse, profile, encode, forward, train)", name)
		}
		r := testing.Benchmark(body)
		if err := writeBench(dir, name, r); err != nil {
			return err
		}
		fmt.Printf("%s: %d iterations, %.0f ns/op, %d B/op, %d allocs/op -> %s\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp(), benchFile(dir, name))
	}
	return nil
}

// runStages times the offline analysis pipeline per stage (compile, trace,
// featurize, train) over the full study corpus, prints the table, and writes
// BENCH_stages.json next to the micro-benchmark numbers. Unlike the
// benchmarks above it runs each program once — the interest is the relative
// cost split, not steady-state ns/op.
func runStages(dir string, espCfg core.Config) error {
	rep, err := experiments.AnalysisStages(corpus.Study(), espCfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Render())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return err
	}
	out := benchFile(dir, "stages")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("per-stage timings -> %s\n", out)
	return nil
}
