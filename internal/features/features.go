package features

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Feature indices, following Table 2 of the paper (0-based here; the paper
// numbers them 1-24). Features 8-15 describe the taken successor and 16-23
// the not-taken successor.
const (
	FBrOpcode = iota // opcode of the branch instruction
	FBrDirection
	FBrOperandOpcode // opcode of the instruction defining the tested register
	FRAOpcode        // opcode defining that instruction's first operand
	FRBOpcode        // opcode defining that instruction's second operand
	FLoopHeader
	FLanguage
	FProcedureType
	FTakenDominates
	FTakenPostdominates
	FTakenSuccEnds
	FTakenSuccLoop
	FTakenSuccBackedge
	FTakenSuccExit
	FTakenSuccUseDef
	FTakenSuccCall
	FNotTakenDominates
	FNotTakenPostdominates
	FNotTakenSuccEnds
	FNotTakenSuccLoop
	FNotTakenSuccBackedge
	FNotTakenSuccExit
	FNotTakenSuccUseDef
	FNotTakenSuccCall

	// FLibraryProc marks branches inside library subroutines — the paper's
	// Section 6 future-work feature ("we plan on indicating branches in
	// library subroutines, since those subroutines may have similar
	// behavior across a number of programs"), implemented here as feature
	// 25. The ablation benches measure its contribution.
	FLibraryProc

	// FCorrSharedCond and FCorrDomCond are sparse static inter-branch
	// correlation features (the direction of arXiv 2207.14033, recovered
	// statically): whether another branch in the same function tests one of
	// this branch's source locations, and whether a *dominating* branch
	// does — a dominating test of the same variable is the strongest static
	// signal that two branches resolve together. They need whole-program
	// context, so Of alone leaves them Unknown; ExtractAll fills them. Like
	// FLibraryProc they are excluded from the model by default
	// (core.Config.IncludeCorrelationFeatures opts in), and an
	// always-Unknown or masked feature contributes zero encoder columns, so
	// the default feature set is bit-identical to the 25-feature one.
	FCorrSharedCond
	FCorrDomCond

	// NumFeatures is the size of the static feature set (the paper's 24
	// plus the library-subroutine extension plus the two inter-branch
	// correlation extensions).
	NumFeatures = 27
)

// Unknown is the value of a dependent feature that is not meaningful for a
// branch (the paper's "?"); the encoder gates such features to zero input
// activity.
const Unknown = "?"

// ImmValue marks an operand that is an instruction immediate rather than a
// register (visible directly in the instruction encoding, so a binary-level
// extractor can always recover it).
const ImmValue = "IMM"

// featureNames gives a short name per feature index (for reports and the
// decision-tree rule printer).
var featureNames = [NumFeatures]string{
	"br.opcode", "br.direction", "br.operand.opcode", "ra.opcode", "rb.opcode",
	"loop.header", "language", "proc.type",
	"taken.dominates", "taken.postdom", "taken.ends", "taken.loop",
	"taken.backedge", "taken.exit", "taken.usedef", "taken.call",
	"nottaken.dominates", "nottaken.postdom", "nottaken.ends", "nottaken.loop",
	"nottaken.backedge", "nottaken.exit", "nottaken.usedef", "nottaken.call",
	"proc.library", "corr.shared", "corr.dom",
}

// Name returns the short name of feature index i.
func Name(i int) string {
	if i < 0 || i >= NumFeatures {
		return fmt.Sprintf("feature%d", i)
	}
	return featureNames[i]
}

// Vector is the static feature set of one branch: the paper's 24
// categorical values plus the library-subroutine extension.
type Vector struct {
	Ref    ir.BranchRef
	Values [NumFeatures]string
}

// FromValues builds a Vector from explicit per-feature categorical values,
// as submitted by serving clients that extracted features elsewhere. It
// requires exactly NumFeatures values; empty strings are normalized to
// Unknown so a partially-populated vector still encodes (unknown features
// contribute zero input activity, same as "?").
func FromValues(vals []string) (Vector, error) {
	if len(vals) != NumFeatures {
		return Vector{}, fmt.Errorf("features: vector has %d values, want %d", len(vals), NumFeatures)
	}
	var v Vector
	copy(v.Values[:], vals)
	for i, val := range v.Values {
		if val == "" {
			v.Values[i] = Unknown
		}
	}
	return v, nil
}

// Of extracts the Table 2 feature vector for a branch site.
func Of(s *Site) Vector {
	v := Vector{Ref: s.Ref}
	g := s.G

	v.Values[FBrOpcode] = s.Branch.Op.String()
	if g.Fn.LayoutIndex(s.Branch.Target) < g.Fn.LayoutIndex(s.Ref.Block) {
		v.Values[FBrDirection] = "B"
	} else {
		v.Values[FBrDirection] = "F"
	}
	v.Values[FBrOperandOpcode] = Unknown
	v.Values[FRAOpcode] = Unknown
	v.Values[FRBOpcode] = Unknown
	if def := s.DefInstr; def != nil {
		v.Values[FBrOperandOpcode] = def.Op.String()
		uses := def.Uses()
		blk := g.Block(s.BlockIdx)
		if len(uses) > 0 {
			if d, _ := defInstr(blk, s.DefIdx, uses[0]); d != nil {
				v.Values[FRAOpcode] = d.Op.String()
			}
		}
		if def.UseImm {
			v.Values[FRBOpcode] = ImmValue
		} else if len(uses) > 1 {
			if d, _ := defInstr(blk, s.DefIdx, uses[1]); d != nil {
				v.Values[FRBOpcode] = d.Op.String()
			}
		}
	}
	if g.Loops().IsHeader(s.BlockIdx) {
		v.Values[FLoopHeader] = "LH"
	} else {
		v.Values[FLoopHeader] = "NLH"
	}
	v.Values[FLanguage] = string(s.Fn.Language)
	v.Values[FProcedureType] = s.ProcType

	fillSucc(v.Values[FTakenDominates:FTakenSuccCall+1], s, s.TakenIdx)
	fillSucc(v.Values[FNotTakenDominates:FNotTakenSuccCall+1], s, s.FallIdx)
	if IsLibraryFunc(s.Fn.Name) {
		v.Values[FLibraryProc] = "LIB"
	} else {
		v.Values[FLibraryProc] = "USER"
	}
	// The correlation features compare against the function's other branch
	// sites, which a single site cannot see; ExtractAll fills them.
	v.Values[FCorrSharedCond] = Unknown
	v.Values[FCorrDomCond] = Unknown
	return v
}

// IsLibraryFunc reports whether a function belongs to the linked runtime
// library (the corpus convention: the lib_ prefix).
func IsLibraryFunc(name string) bool {
	return strings.HasPrefix(name, "lib_")
}

// fillSucc fills the eight per-successor features (9-16 / 17-24 in the
// paper's numbering) into dst, which must have length 8.
func fillSucc(dst []string, s *Site, succIdx int) {
	g := s.G
	if g.Dominates(s.BlockIdx, succIdx) {
		dst[0] = "D"
	} else {
		dst[0] = "ND"
	}
	if g.PostDominates(succIdx, s.BlockIdx) {
		dst[1] = "PD"
	} else {
		dst[1] = "NPD"
	}
	dst[2] = succEnds(g, succIdx)
	if g.ReachesLoopHeaderUncond(succIdx) {
		dst[3] = "LH"
	} else {
		dst[3] = "NLH"
	}
	if g.IsBackEdge(s.BlockIdx, succIdx) {
		dst[4] = "LB"
	} else {
		dst[4] = "NLB"
	}
	if g.IsLoopExitEdge(s.BlockIdx, succIdx) {
		dst[5] = "LE"
	} else {
		dst[5] = "NLE"
	}
	if ReadsLocBeforeWrite(g, succIdx, s.SourceLocs) {
		dst[6] = "UBD"
	} else {
		dst[6] = "NU"
	}
	if g.ReachesCallUncond(succIdx) {
		dst[7] = "PC"
	} else {
		dst[7] = "NPC"
	}
}

// succEnds classifies the control transfer ending the successor block
// (feature 11/19: FT, CBR, UBR, BSR, JUMP, IJUMP, JSR, IJSR, RETURN,
// COROUTINE, or NOTHING).
func succEnds(g *cfg.Graph, succIdx int) string {
	b := g.Block(succIdx)
	t := b.Terminator()
	if t == nil {
		if n := len(b.Insns); n > 0 {
			switch b.Insns[n-1].Op {
			case ir.OpBsr:
				return "BSR"
			case ir.OpJsr:
				return "JSR"
			}
		}
		if len(b.Insns) == 0 {
			return "NOTHING"
		}
		return "FT"
	}
	switch t.Op.Class() {
	case ir.ClassCondBranch:
		return "CBR"
	case ir.ClassUncondBranch:
		return "UBR"
	case ir.ClassIndirectJump:
		return "IJUMP"
	case ir.ClassReturn:
		return "RETURN"
	}
	return "NOTHING"
}

// ExtractAll returns feature vectors for every site of a program, in the
// deterministic site order, with the whole-program correlation features
// (FCorrSharedCond, FCorrDomCond) filled in.
func ExtractAll(ps *ProgramSites) []Vector {
	out := make([]Vector, 0, len(ps.Sites))
	byFunc := make(map[string][]*Site)
	for _, s := range ps.Sites {
		byFunc[s.Ref.Func] = append(byFunc[s.Ref.Func], s)
	}
	for _, s := range ps.Sites {
		v := Of(s)
		fillCorrelation(&v, s, byFunc[s.Ref.Func])
		out = append(out, v)
	}
	return out
}

// fillCorrelation fills the inter-branch correlation features of one site
// by scanning the other branch sites of its function: SHARED when any other
// branch tests one of the same source locations (PRIVATE otherwise), and
// DOM when such a branch's block additionally dominates this one (NDOM
// otherwise). Sites with no recovered source locations stay Unknown — the
// encoder gates them to zero input activity like any dependent feature.
func fillCorrelation(v *Vector, s *Site, fnSites []*Site) {
	if len(s.SourceLocs) == 0 {
		return
	}
	v.Values[FCorrSharedCond] = "PRIVATE"
	v.Values[FCorrDomCond] = "NDOM"
	for _, o := range fnSites {
		if o == s || !sharesLoc(s.SourceLocs, o.SourceLocs) {
			continue
		}
		v.Values[FCorrSharedCond] = "SHARED"
		if s.G.Dominates(o.BlockIdx, s.BlockIdx) {
			v.Values[FCorrDomCond] = "DOM"
			return
		}
	}
}

// sharesLoc reports whether the two location sets intersect.
func sharesLoc(a, b []MemLoc) bool {
	for _, la := range a {
		for _, lb := range b {
			if la == lb {
				return true
			}
		}
	}
	return false
}
