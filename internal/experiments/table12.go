package experiments

import (
	"fmt"
	"strings"

	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/stats"
)

// Table1 renders the Ball/Larus heuristic summary (Table 1 of the paper) as
// implemented by this reproduction, including the Call-polarity note.
func Table1() string {
	t := stats.NewTable("Heuristic", "Description")
	rows := []struct{ name, desc string }{
		{"Loop Branch", "predict the edge back to the loop's head taken; the edge exiting the loop not taken"},
		{"Pointer", "a comparison of a pointer against null or of two pointers is predicted false"},
		{"Opcode", "integer tests 'x < 0', 'x <= 0', 'x == constant' are predicted false"},
		{"Guard", "a successor that uses the branch's operand before defining it and does not post-dominate is predicted"},
		{"Loop Exit", "inside a loop, with no successor a loop head, the loop-exiting edge is predicted not taken"},
		{"Loop Header", "a successor that is a loop header or pre-header and does not post-dominate is predicted taken"},
		{"Call", "a successor containing a call that does not post-dominate is predicted not taken (Ball/Larus polarity; the paper's OCR-damaged Table 1 prints 'taken' — see Config.CallPredictsTaken)"},
		{"Store", "a successor containing a (non-stack) store that does not post-dominate is predicted not taken"},
		{"Return", "a successor containing a return is predicted not taken"},
	}
	for _, r := range rows {
		t.Row(r.name, r.desc)
	}
	return "Table 1: summary of the Ball/Larus heuristics\n" + t.String()
}

// Table2 renders the static feature set (Table 2 of the paper) with the
// values this implementation produces.
func Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: static feature set used by ESP\n")
	t := stats.NewTable("#", "Feature", "Values")
	domains := []string{
		"conditional branch opcodes (beq, bne, blt, ..., fbne, beq2, ...)",
		"F forward, B backward",
		"opcode defining the tested register, or ? if defined in a previous block",
		"opcode defining that instruction's first operand, or ?",
		"opcode defining its second operand, IMM for immediates, or ?",
		"LH loop header, NLH not",
		"C, FORT, SCHEME",
		"Leaf, NonLeaf, CallSelf",
	}
	succ := []string{
		"D dominates / ND",
		"PD post-dominates / NPD",
		"FT, CBR, UBR, BSR, JUMP, IJUMP, JSR, IJSR, RETURN, NOTHING",
		"LH reaches a loop header unconditionally / NLH",
		"LB back edge / NLB",
		"LE loop exit edge / NLE",
		"UBD uses branch variable before defining it / NU",
		"PC reaches a procedure call unconditionally / NPC",
	}
	for i := 0; i < 8; i++ {
		t.Row(i+1, features.Name(i), domains[i])
	}
	for i := 0; i < 8; i++ {
		t.Row(i+9, features.Name(8+i), "taken successor: "+succ[i])
	}
	for i := 0; i < 8; i++ {
		t.Row(i+17, features.Name(16+i), "not-taken successor: "+succ[i])
	}
	sb.WriteString(t.String())
	return sb.String()
}

// heuristicOrderString names the default APHC order.
func heuristicOrderString() string {
	names := make([]string, len(heuristics.DefaultOrder))
	for i, h := range heuristics.DefaultOrder {
		names[i] = h.String()
	}
	return fmt.Sprintf("APHC order: %s", strings.Join(names, " > "))
}
