package dtree

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/features"
)

// ex builds an example with one feature set and the rest empty.
func ex(f int, val string, takenW, notW float64) Example {
	var e Example
	for i := range e.Values {
		e.Values[i] = "-"
	}
	e.Values[f] = val
	e.TakenW = takenW
	e.NotW = notW
	return e
}

func TestEntropy(t *testing.T) {
	if e := entropy(1, 1); math.Abs(e-math.Log(2)) > 1e-12 {
		t.Errorf("entropy(1,1) = %g, want ln 2", e)
	}
	if e := entropy(1, 0); e != 0 {
		t.Errorf("entropy(1,0) = %g, want 0", e)
	}
	if e := entropy(0, 0); e != 0 {
		t.Errorf("entropy(0,0) = %g, want 0", e)
	}
}

func TestBuildSeparable(t *testing.T) {
	// Feature 0 separates perfectly: "T" always taken, "N" never.
	var exs []Example
	for i := 0; i < 10; i++ {
		exs = append(exs, ex(0, "T", 1, 0))
		exs = append(exs, ex(0, "N", 0, 1))
	}
	tree := Build(exs, Config{})
	if tree.Root.Feature != 0 {
		t.Fatalf("root splits on %d, want 0", tree.Root.Feature)
	}
	var tv, nv [features.NumFeatures]string
	for i := range tv {
		tv[i], nv[i] = "-", "-"
	}
	tv[0], nv[0] = "T", "N"
	if p := tree.Predict(tv); p <= 0.99 {
		t.Errorf("P(taken | T) = %g", p)
	}
	if p := tree.Predict(nv); p >= 0.01 {
		t.Errorf("P(taken | N) = %g", p)
	}
}

func TestPredictUnseenFallsBack(t *testing.T) {
	exs := []Example{ex(0, "A", 3, 1), ex(0, "B", 0, 4)}
	tree := Build(exs, Config{})
	var v [features.NumFeatures]string
	for i := range v {
		v[i] = "-"
	}
	v[0] = "ZZZ" // never seen: root's own distribution must answer
	want := 3.0 / 8.0
	if p := tree.Predict(v); math.Abs(p-want) > 1e-12 {
		t.Errorf("fallback probability = %g, want %g", p, want)
	}
}

func TestDepthLimit(t *testing.T) {
	// Data where every feature splits a little: the tree must respect
	// MaxDepth.
	var exs []Example
	for i := 0; i < 64; i++ {
		var e Example
		for f := 0; f < features.NumFeatures; f++ {
			if i&(1<<(f%6)) != 0 {
				e.Values[f] = "x"
			} else {
				e.Values[f] = "y"
			}
		}
		// Target = AND of two feature bits: each feature has positive
		// marginal gain, and full purity needs two levels of splits.
		if i&1 == 1 && (i>>1)&1 == 1 {
			e.TakenW = 1
		} else {
			e.NotW = 1
		}
		exs = append(exs, e)
	}
	tree := Build(exs, Config{MaxDepth: 3})
	if d := tree.Depth(); d > 4 { // root + 3 levels
		t.Errorf("depth = %d exceeds limit", d)
	}
	if tree.Size() < 2 {
		t.Error("tree did not split at all")
	}
}

func TestNoSplitOnPure(t *testing.T) {
	exs := []Example{ex(0, "A", 1, 0), ex(0, "B", 2, 0)}
	tree := Build(exs, Config{})
	if tree.Root.Feature != -1 {
		t.Error("pure data must yield a leaf")
	}
	if tree.Root.ProbTaken != 1 {
		t.Errorf("leaf probability = %g", tree.Root.ProbTaken)
	}
}

func TestRules(t *testing.T) {
	exs := []Example{ex(1, "LB", 10, 1), ex(1, "NLB", 1, 10)}
	tree := Build(exs, Config{})
	rules := tree.Rules()
	if len(rules) != 2 {
		t.Fatalf("got %d rules: %v", len(rules), rules)
	}
	joined := strings.Join(rules, "\n")
	if !strings.Contains(joined, features.Name(1)+"=LB") {
		t.Errorf("rules missing the split condition:\n%s", joined)
	}
	if !strings.Contains(joined, "predict taken") || !strings.Contains(joined, "predict not-taken") {
		t.Errorf("rules missing predictions:\n%s", joined)
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	exs := []Example{ex(0, "A", 3, 1), ex(0, "B", 0, 4), ex(2, "C", 1, 1)}
	tree := Build(exs, Config{})
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	var v [features.NumFeatures]string
	v[0] = "A"
	if tree.Predict(v) != back.Predict(v) {
		t.Error("serialized tree predicts differently")
	}
}

// TestPredictBounded: predictions are probabilities for any weighted data.
func TestPredictBounded(t *testing.T) {
	f := func(weights [8]float64, vals [8]uint8) bool {
		var exs []Example
		for i := 0; i < 8; i++ {
			w := math.Abs(weights[i])
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 1
			}
			w = math.Mod(w, 100)
			e := ex(int(vals[i])%4, string(rune('A'+vals[i]%3)), w, math.Mod(w*1.7, 50))
			exs = append(exs, e)
		}
		tree := Build(exs, Config{})
		var v [features.NumFeatures]string
		for i := range v {
			v[i] = "-"
		}
		v[0] = "A"
		p := tree.Predict(v)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFeatureNotReusedOnPath(t *testing.T) {
	// With a single informative feature, the tree must not split on it
	// twice along one path (used-feature tracking).
	var exs []Example
	for i := 0; i < 20; i++ {
		val := "A"
		taken := 1.0
		if i%2 == 0 {
			val, taken = "B", 0
		}
		e := ex(0, val, taken, 1-taken)
		exs = append(exs, e)
	}
	tree := Build(exs, Config{})
	var walk func(n *Node, seen map[int]bool)
	walk = func(n *Node, seen map[int]bool) {
		if n.Feature < 0 {
			return
		}
		if seen[n.Feature] {
			t.Fatalf("feature %d reused on a path", n.Feature)
		}
		seen[n.Feature] = true
		for _, c := range n.Children {
			walk(c, seen)
		}
		delete(seen, n.Feature)
	}
	walk(tree.Root, map[int]bool{})
}
