package codegen

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// compileAndRun compiles src for the target and executes it, failing the
// test on any error.
func compileAndRun(t *testing.T, src string, tgt Target, input []int64) *interp.Profile {
	t.Helper()
	ast, err := minic.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Compile(ast, ir.LangC, tgt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prof, err := interp.Run(prog, interp.Config{Input: input, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Disassemble())
	}
	return prof
}

// runAllTargets runs the program under every predefined target and checks
// that the observable outputs agree — the compiler axes of Tables 6 and 7
// must never change program semantics.
func runAllTargets(t *testing.T, src string, input []int64) *interp.Profile {
	t.Helper()
	base := compileAndRun(t, src, AlphaCC, input)
	for _, tgt := range []Target{AlphaCCv2, AlphaGEM, AlphaGCC, MIPSCC} {
		got := compileAndRun(t, src, tgt, input)
		if got.Result != base.Result {
			t.Errorf("%s: result %d, want %d", tgt.Name, got.Result, base.Result)
		}
		if len(got.Outputs) != len(base.Outputs) {
			t.Fatalf("%s: %d outputs, want %d", tgt.Name, len(got.Outputs), len(base.Outputs))
		}
		for i := range got.Outputs {
			if got.Outputs[i] != base.Outputs[i] {
				t.Errorf("%s: output[%d] = %d, want %d", tgt.Name, i, got.Outputs[i], base.Outputs[i])
			}
		}
		for i := range got.FOutputs {
			if got.FOutputs[i] != base.FOutputs[i] {
				t.Errorf("%s: foutput[%d] = %g, want %g", tgt.Name, i, got.FOutputs[i], base.FOutputs[i])
			}
		}
	}
	return base
}

func TestArithmetic(t *testing.T) {
	prof := runAllTargets(t, `
int main() {
	int a;
	int b;
	a = 6;
	b = 7;
	__print(a * b);
	__print(a + b * 2);
	__print((a + b) * 2);
	__print(a - b);
	__print(100 / 7);
	__print(100 % 7);
	__print(-a);
	return a * b;
}`, nil)
	want := []int64{42, 20, 26, -1, 14, 2, -6}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
	if prof.Result != 42 {
		t.Errorf("result = %d, want 42", prof.Result)
	}
}

func TestControlFlow(t *testing.T) {
	prof := runAllTargets(t, `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) {
			sum = sum + i;
		} else {
			sum = sum - 1;
		}
	}
	__print(sum);
	i = 0;
	while (i < 5) {
		i = i + 1;
		if (i == 3) { continue; }
		if (i == 5) { break; }
		__print(i);
	}
	do { i = i - 1; } while (i > 0);
	__print(i);
	return sum;
}`, nil)
	want := []int64{15, 1, 2, 4, 0}
	if len(prof.Outputs) != len(want) {
		t.Fatalf("outputs = %v, want %v", prof.Outputs, want)
	}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	prof := runAllTargets(t, `
int g;
int bump(int v) { g = g + 1; return v; }
int main() {
	g = 0;
	if (bump(0) && bump(1)) { __print(100); }
	__print(g); // only the left side evaluated
	if (bump(1) || bump(1)) { __print(200); }
	__print(g);
	int v;
	v = (3 < 4) && (4 < 3);
	__print(v);
	v = (3 < 4) || (4 < 3);
	__print(v);
	return 0;
}`, nil)
	want := []int64{1, 200, 2, 0, 1}
	if len(prof.Outputs) != len(want) {
		t.Fatalf("outputs = %v, want %v", prof.Outputs, want)
	}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestPointersAndArrays(t *testing.T) {
	prof := runAllTargets(t, `
int a[10];
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
	int* p;
	p = &a[3];
	__print(*p);
	__print(p[2]);
	*p = 77;
	__print(a[3]);
	p = null;
	if (p == null) { __print(1); }
	int* q;
	q = __alloc(4);
	q[0] = 5; q[1] = 6;
	__print(q[0] + q[1]);
	int b[3];
	b[0] = 9; b[1] = 8; b[2] = 7;
	__print(b[0] * 100 + b[1] * 10 + b[2]);
	return 0;
}`, nil)
	want := []int64{9, 25, 77, 1, 11, 987}
	if len(prof.Outputs) != len(want) {
		t.Fatalf("outputs = %v, want %v", prof.Outputs, want)
	}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestFloats(t *testing.T) {
	prof := runAllTargets(t, `
float eps;
int main() {
	float x;
	float y;
	x = 1.5;
	y = 2.25;
	__printf(x + y);
	__printf(x * y);
	__printf(y - x);
	__printf(x / 0.5);
	if (x < y) { __print(1); }
	if (y <= x) { __print(999); }
	eps = 0.001;
	float d;
	d = x - y;
	if (d < 0.0) { d = 0.0 - d; }
	__printf(d);
	__print((int) (d * 4.0));
	__printf((float) 7);
	return 0;
}`, nil)
	wantF := []float64{3.75, 3.375, 0.75, 3, 0.75, 7}
	wantI := []int64{1, 3}
	if len(prof.FOutputs) != len(wantF) || len(prof.Outputs) != len(wantI) {
		t.Fatalf("outputs %v / %v, want %v / %v", prof.Outputs, prof.FOutputs, wantI, wantF)
	}
	for i, w := range wantF {
		if prof.FOutputs[i] != w {
			t.Errorf("foutput[%d] = %g, want %g", i, prof.FOutputs[i], w)
		}
	}
	for i, w := range wantI {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestRecursionAndCalls(t *testing.T) {
	prof := runAllTargets(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int ack(int m, int n) {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	__print(fib(12));
	__print(ack(2, 3));
	return 0;
}`, nil)
	want := []int64{144, 9}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestInputsAndRand(t *testing.T) {
	prof := compileAndRun(t, `
int main() {
	__print(__input(0));
	__print(__input(1));
	__print(__input(5)); // wraps modulo length
	int r;
	r = __rand();
	if (r < 0) { __print(-1); } else { __print(1); }
	return 0;
}`, AlphaCC, []int64{11, 22, 33})
	want := []int64{11, 22, 33, 1}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestDeepExpressionSpill(t *testing.T) {
	// Deep enough to exhaust the MIPS temp pools and force spills; results
	// must still agree across targets.
	runAllTargets(t, `
float fg[4];
int main() {
	fg[0] = 1.0; fg[1] = 2.0; fg[2] = 3.0; fg[3] = 4.0;
	float r;
	r = ((fg[0] + fg[1]) * (fg[2] + fg[3]) - (fg[0] * fg[1] + fg[2] * fg[3]))
	  * ((fg[3] - fg[0]) * (fg[2] - fg[1]) + (fg[1] + fg[2]) * (fg[0] + fg[3]))
	  + ((fg[0] + fg[2]) * (fg[1] + fg[3]) - (fg[2] * fg[0] - fg[1] * fg[3]));
	__printf(r);
	int s;
	s = ((1 + 2) * (3 + 4) - (5 * 6 + 7 * 8)) * ((9 - 1) * (8 - 2) + (3 + 4) * (5 + 6))
	  + ((1 + 3) * (2 + 4) - (5 * 7 - 6 * 8));
	__print(s);
	return 0;
}`, nil)
}

func TestUnrollingPreservesSemantics(t *testing.T) {
	src := `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 1; i <= 17; i = i + 1) {
		sum = sum + i * i;
	}
	__print(sum);
	// Loop with internal control flow is not unrolled but must still work.
	int n;
	n = 0;
	for (i = 0; i < 30; i = i + 1) {
		if (i % 7 == 3) { continue; }
		n = n + 1;
	}
	__print(n);
	return sum;
}`
	base := compileAndRun(t, src, AlphaCC, nil)
	unrolled := compileAndRun(t, src, AlphaGEM, nil)
	if base.Outputs[0] != unrolled.Outputs[0] || base.Outputs[1] != unrolled.Outputs[1] {
		t.Errorf("unrolled outputs %v, want %v", unrolled.Outputs, base.Outputs)
	}
	if base.Outputs[0] != 1785 {
		t.Errorf("sum = %d, want 1785", base.Outputs[0])
	}
	// Unrolling must reduce the dynamic frequency of the loop back-edge
	// branch: fewer total conditional branch executions per loop trip is not
	// guaranteed, but the most-executed single branch site shrinks.
	if unrolled.CondExec >= base.CondExec+20 {
		t.Errorf("unrolled executes far more branches: %d vs %d", unrolled.CondExec, base.CondExec)
	}
}

func TestCmovRemovesBranches(t *testing.T) {
	src := `
int main() {
	int i;
	int mx;
	mx = 0;
	for (i = 0; i < 200; i = i + 1) {
		int v;
		v = (i * 37) % 101;
		if (v > mx) { mx = v; }
	}
	__print(mx);
	return mx;
}`
	plain := compileAndRun(t, src, AlphaCC, nil)
	cmov := compileAndRun(t, src, AlphaCCv2, nil)
	if plain.Outputs[0] != cmov.Outputs[0] {
		t.Fatalf("cmov changed the answer: %v vs %v", cmov.Outputs, plain.Outputs)
	}
	if cmov.CondExec >= plain.CondExec {
		t.Errorf("cmov target executed %d conditional branches, plain %d; want fewer",
			cmov.CondExec, plain.CondExec)
	}
}

func TestGeneratedIRVerifies(t *testing.T) {
	// Verify is already called inside Compile; this exercises a program
	// touching every statement and expression form under every target.
	src := `
int g;
float fgl;
int arr[16];
int helper(int a, int b, int c, int d, int e, int f) {
	return a + b + c + d + e + f;
}
float favg(float a, float b) { return (a + b) / 2.0; }
void sideEffect() { g = g + 1; }
int main() {
	int i;
	for (i = 0; i < 16; i = i + 1) { arr[i] = 16 - i; }
	int* p;
	p = &arr[0];
	int n;
	n = 0;
	while (p != null && *p > 1 && n < 100) {
		n = n + 1;
		if (*p % 2 == 0) { p = p + 1; } else { p = p + 2; }
		if (p - &arr[0] >= 16) { p = null; }
	}
	__print(n);
	sideEffect();
	__print(helper(1, 2, 3, 4, 5, 6));
	__printf(favg(1.0, 2.0));
	__print(g);
	int** pp;
	pp = (int**) __alloc(2);
	pp[0] = &arr[3];
	__print(*pp[0]);
	return 0;
}`
	runAllTargets(t, src, nil)
}
