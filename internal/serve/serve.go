// Package serve turns a trained ESP model into an online branch-prediction
// oracle: an HTTP JSON service in the deployment shape of Rotem & Cummins'
// "Profile Guided Optimization without Profiles" — compilers (or anything
// else) submit MinC source or pre-extracted Table 2 feature vectors and get
// per-branch taken/not-taken predictions with confidences, instead of
// profiling.
//
// The service is built for load: a worker pool batches concurrently
// submitted feature vectors into single model passes over pooled scratch
// buffers, compiled program images and their extracted features are kept in
// an LRU cache keyed by source hash, every endpoint is instrumented
// (request, error, latency, cache, and batching counters at /metrics), each
// request runs under a context deadline, and Drain performs a graceful
// SIGTERM shutdown that completes in-flight requests while refusing new
// ones.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/guard"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/obs"
)

// Fault-injection sites along the prediction path. In production these are
// single atomic-load no-ops; the chaos tests activate an injector to force
// errors, latency, and panics through them.
var (
	siteCacheGet = faultinject.Register("serve.cache.get")
	siteCompile  = faultinject.Register("serve.compile")
	siteSubmit   = faultinject.Register("serve.pool.submit")
	siteForward  = faultinject.Register("serve.forward")
)

// Config parameterizes a Server.
type Config struct {
	// Model is the trained ESP model to serve (required).
	Model *core.Model
	// Workers sizes the prediction worker pool (default GOMAXPROCS).
	Workers int
	// MaxBatch bounds how many queued requests one worker folds into a
	// single model pass (default 32).
	MaxBatch int
	// QueueDepth bounds the prediction queue (default 4*Workers*MaxBatch).
	QueueDepth int
	// CacheSize bounds the compiled-program LRU cache (default 128 entries).
	CacheSize int
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// MaxSourceBytes bounds submitted program text (default 1 MiB).
	MaxSourceBytes int
	// MaxVectors bounds the feature vectors of one request (default 4096).
	MaxVectors int
	// MaxInflight bounds concurrently admitted /predict requests; excess
	// load is shed immediately with 429 and a Retry-After hint instead of
	// queueing without bound (default QueueDepth; negative disables
	// admission control).
	MaxInflight int
	// MaxParseDepth bounds statement/expression nesting when compiling
	// submitted source (default 256; negative disables the guard).
	MaxParseDepth int
	// MaxCFGBlocks bounds the per-function CFG when compiling submitted
	// source (default 16384; negative disables the guard).
	MaxCFGBlocks int
	// NoDegrade disables the heuristic fallback: model-path failures
	// surface as 5xx instead of degraded 200 responses.
	NoDegrade bool
	// TraceRing bounds the in-memory ring of completed request traces
	// served at /debug/requests (default 256; negative disables the ring).
	TraceRing int
	// TraceSample is the fraction of request traces written to AccessLog
	// as JSON lines (0 disables the access log, 1 logs every request).
	TraceSample float64
	// AccessLog receives sampled trace JSON lines (nil disables).
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers * c.MaxBatch
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxVectors == 0 {
		c.MaxVectors = 4096
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = c.QueueDepth
	}
	if c.MaxParseDepth == 0 {
		c.MaxParseDepth = 256
	}
	if c.MaxCFGBlocks == 0 {
		c.MaxCFGBlocks = 16384
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	return c
}

// parseLimits translates the configured guards into compiler limits,
// treating negative values as "unlimited".
func (c Config) parseDepth() int {
	if c.MaxParseDepth < 0 {
		return 0
	}
	return c.MaxParseDepth
}

func (c Config) cfgBlocks() int {
	if c.MaxCFGBlocks < 0 {
		return 0
	}
	return c.MaxCFGBlocks
}

// Server is the espserve HTTP service.
type Server struct {
	cfg     Config
	cache   *lru
	metrics *metrics
	traces  *obs.Recorder
	mux     *http.ServeMux
	started time.Time
	admit   chan struct{} // admission-control semaphore (nil when disabled)

	// The model registry: current points at the version serving new
	// requests, versions holds every generation ever installed (for Drain),
	// and draining refuses further reloads once shutdown begins.
	current  atomic.Pointer[modelVersion]
	mu       sync.Mutex // guards versions and the reload swap
	versions []*modelVersion
	draining atomic.Bool

	fallback *heuristics.DSHC
}

// New builds a Server around a trained model, installed as version 1.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	s := &Server{
		cfg:      cfg,
		cache:    newLRU(cfg.CacheSize),
		metrics:  newMetrics(),
		traces:   obs.NewRecorder(cfg.TraceRing, cfg.TraceSample, cfg.AccessLog),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		fallback: heuristics.NewDSHCBallLarus(),
	}
	if cfg.MaxInflight > 0 {
		s.admit = make(chan struct{}, cfg.MaxInflight)
	}
	mv := newModelVersion(1, cfg.Model, newPool(cfg.Model, cfg.Workers, cfg.MaxBatch, cfg.QueueDepth, s.metrics))
	s.versions = append(s.versions, mv)
	s.current.Store(mv)

	// Pool gauges read through the current version so a hot reload swaps
	// what they report along with what serves; registration happens once,
	// here, because the gauge slice is read lock-free on every scrape.
	s.metrics.addGauge("espserve_batch_queue_depth", "Jobs waiting in the prediction queue.",
		func() float64 { return float64(len(s.current.Load().pool.jobs)) })
	s.metrics.addGauge("espserve_batch_queue_age_micros", "Approximate age of the oldest queued job in microseconds.",
		func() float64 { return float64(s.current.Load().pool.queueAge().Microseconds()) })
	s.metrics.addGauge("espserve_busy_workers", "Workers currently executing a model pass.",
		func() float64 { return float64(s.current.Load().pool.busy.Load()) })
	s.metrics.addGauge("espserve_workers", "Size of the prediction worker pool.",
		func() float64 { return float64(s.current.Load().pool.nworkers) })
	s.metrics.addGauge("espserve_worker_utilization", "Fraction of workers currently executing a model pass.",
		func() float64 {
			p := s.current.Load().pool
			return float64(p.busy.Load()) / float64(p.nworkers)
		})
	s.metrics.addGauge("espserve_model_version", "Model version currently serving new requests.",
		func() float64 { return float64(s.current.Load().version) })

	s.mux.HandleFunc("/predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/requests", s.instrument("debug", s.handleDebugRequests))
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the prediction pipeline down: new predictions are
// refused with 503 while requests already in flight run to completion. It
// returns once every model version's worker pool has emptied (or ctx
// expires) — retired versions still draining out included. Call it after
// http.Server.Shutdown has stopped accepting connections.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	vs := append([]*modelVersion(nil), s.versions...)
	s.mu.Unlock()
	var firstErr error
	for _, mv := range vs {
		if err := mv.pool.drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter records the response code so instrumentation can count
// errors. Once a status has been sent, later WriteHeader calls are ignored
// instead of duplicated onto the wire (net/http logs a spurious warning and
// the original code stands anyway).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush passes streaming flushes through to the underlying writer, so
// handlers (and httputil proxies) that depend on http.Flusher keep working
// behind the instrumentation wrapper. A flush commits the response headers,
// so it counts as having written.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		w.wrote = true
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// statusClientClosedRequest is the non-standard (nginx-convention) status
// used to account requests whose client went away before the answer was
// ready. Nothing meaningful can be delivered; the code keeps cancellations
// distinguishable from server-side deadline 504s in logs and metrics.
const statusClientClosedRequest = 499

// requestID picks the trace ID for one request: a client-supplied
// X-Request-ID wins, otherwise a process-unique ID is minted.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return s.traces.NextID()
}

// instrument wraps a handler with the per-endpoint counters and latency
// histogram, the request trace (recorded into the /debug/requests ring and
// the sampled access log), the request deadline, and panic containment: a
// panicking handler is accounted as a 500 and the process keeps serving.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		tr := obs.NewTrace(name, s.requestID(r))
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = obs.WithTrace(ctx, tr)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panicsRecovered.Add(1)
				tr.SetError(fmt.Errorf("panic: %v", rec))
				if sw.wrote {
					// Headers are gone; record the failure for accounting
					// only.
					sw.status = http.StatusInternalServerError
				} else {
					writeJSON(sw, http.StatusInternalServerError,
						errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
				}
			}
			s.metrics.endpoint(name).observe(time.Since(start).Microseconds(), sw.status >= 400)
			tr.SetStatus(sw.status)
			s.traces.Record(tr)
		}()
		h(sw, r.WithContext(ctx))
	}
}

// PredictRequest is the /predict request body. Exactly one of Source or
// Vectors must be set.
type PredictRequest struct {
	// ID is echoed back verbatim, letting clients correlate responses.
	ID string `json:"id,omitempty"`
	// Source is MinC program text to compile and predict.
	Source string `json:"source,omitempty"`
	// Name labels the submitted source (default "query").
	Name string `json:"name,omitempty"`
	// Language tags the source dialect: "C" (default), "FORT", or "SCHEME".
	Language string `json:"language,omitempty"`
	// LinkStdlib links the submitted source against the MinC runtime
	// library, as the corpus programs are.
	LinkStdlib bool `json:"link_stdlib,omitempty"`
	// Vectors carries pre-extracted feature vectors (NumFeatures categorical
	// values each) instead of source.
	Vectors [][]string `json:"vectors,omitempty"`
}

// Prediction is one branch's answer.
type Prediction struct {
	// Branch identifies the site ("func:bN" for compiled source, "#i" for
	// submitted vectors).
	Branch string `json:"branch"`
	// Taken is the predicted direction.
	Taken bool `json:"taken"`
	// Probability is the model's taken-probability estimate.
	Probability float64 `json:"probability"`
	// Confidence is max(p, 1-p): how far the estimate is from a coin flip.
	Confidence float64 `json:"confidence"`
}

// PredictResponse is the /predict response body.
type PredictResponse struct {
	ID      string `json:"id,omitempty"`
	Program string `json:"program,omitempty"`
	Cached  bool   `json:"cached"`
	// Degraded reports that the model path was unavailable and the
	// predictions come from the Dempster-Shafer heuristic fallback
	// instead of the trained model.
	Degraded    bool         `json:"degraded,omitempty"`
	Predictions []Prediction `json:"predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errTransient marks infrastructure failures (as opposed to bad requests)
// on the compile path; they map to 503 with a Retry-After hint.
var errTransient = errors.New("transient failure")

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	endAdmit := tr.StartSpan(obs.StageAdmission)
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
		default:
			endAdmit()
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: "overloaded, retry later"})
			return
		}
	}
	endAdmit()
	// Pin the serving model version for the whole request: a hot reload
	// mid-request keeps answering from the version this request started
	// with, and the version's pool cannot drain while the pin is held.
	mv := s.pinned()
	defer mv.unpin()
	endDecode := tr.StartSpan(obs.StageDecode)
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+1<<16)
	ar := getArena()
	data, err := ar.readBody(body)
	if err != nil {
		putArena(ar)
		endDecode()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	featStart := time.Now()
	if ar.decode(data, s.cfg.MaxVectors) {
		// The zero-allocation fast path owns the well-formed vectors-only
		// request end to end. The scan fuses parsing and featurization, so
		// the featurize span covers the same wall time the two-step slow
		// path reports separately.
		endDecode()
		tr.AddSpan(obs.StageFeaturize, featStart, time.Since(featStart))
		s.predictPooled(w, r, tr, ar, mv)
		return
	}
	// Anything else — source submissions, malformed bodies, over-limit or
	// wrong-arity vectors — re-parses through encoding/json, which carries
	// the full semantics and error reporting.
	var req PredictRequest
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		putArena(ar)
		endDecode()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	putArena(ar)
	endDecode()

	var (
		resp PredictResponse
		vecs []features.Vector
		refs []string
	)
	resp.ID = req.ID
	switch {
	case req.Source != "" && len(req.Vectors) > 0:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request has both source and vectors"})
		return
	case req.Source != "":
		if len(req.Source) > s.cfg.MaxSourceBytes {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("source exceeds %d bytes", s.cfg.MaxSourceBytes)})
			return
		}
		img, cached, err := s.compile(tr, &req)
		switch {
		case err == nil:
		case errors.Is(err, guard.ErrBudgetExceeded):
			s.metrics.budgetRejects.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
			return
		case errors.Is(err, errTransient):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		resp.Program = img.Name
		resp.Cached = cached
		vecs = img.Vectors
		refs = make([]string, len(img.Refs))
		for i, ref := range img.Refs {
			refs[i] = ref.String()
		}
	case len(req.Vectors) > 0:
		if len(req.Vectors) > s.cfg.MaxVectors {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("request has %d vectors, limit %d", len(req.Vectors), s.cfg.MaxVectors)})
			return
		}
		endFeaturize := tr.StartSpan(obs.StageFeaturize)
		vecs = make([]features.Vector, len(req.Vectors))
		refs = make([]string, len(req.Vectors))
		for i, vals := range req.Vectors {
			v, err := features.FromValues(vals)
			if err != nil {
				writeJSON(w, http.StatusBadRequest,
					errorResponse{Error: fmt.Sprintf("vector %d: %v", i, err)})
				return
			}
			vecs[i] = v
			refs[i] = fmt.Sprintf("#%d", i)
		}
		endFeaturize()
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "request needs source or vectors"})
		return
	}

	var probs []float64
	err = faultinject.Fire(siteSubmit)
	if err == nil {
		probs, err = mv.pool.submit(r.Context(), vecs)
	}
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, context.Canceled):
		// The client has gone; nobody is reading a degraded answer. This is
		// client behaviour, not a server deadline, so it is accounted
		// separately and written with the client-closed-request status.
		s.metrics.canceled.Add(1)
		tr.SetError(err)
		writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
		return
	case err != nil:
		timedOut := errors.Is(err, context.DeadlineExceeded)
		if timedOut {
			s.metrics.timeouts.Add(1)
		}
		tr.SetError(err)
		if s.cfg.NoDegrade {
			status := http.StatusInternalServerError
			if timedOut {
				status = http.StatusGatewayTimeout
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		// Degraded mode: answer from the heuristic tier using the same
		// feature vectors the model was going to see.
		s.metrics.degraded.Add(1)
		resp.Degraded = true
		resp.Predictions = s.degradedPredictions(vecs, refs)
		endEncode := tr.StartSpan(obs.StageEncode)
		writeJSON(w, http.StatusOK, resp)
		endEncode()
		return
	}

	resp.Predictions = make([]Prediction, len(vecs))
	for i, p := range probs {
		conf := p
		if conf < 0.5 {
			conf = 1 - conf
		}
		resp.Predictions[i] = Prediction{
			Branch:      refs[i],
			Taken:       p > 0.5,
			Probability: p,
			Confidence:  conf,
		}
	}
	endEncode := tr.StartSpan(obs.StageEncode)
	writeJSON(w, http.StatusOK, resp)
	endEncode()
}

// predictPooled serves a fast-path vectors request entirely from the arena:
// the reusable job carries the decoded vectors through the worker pool and
// the response is rendered by hand into the arena's buffer. Error paths fall
// back to writeJSON (they are off the steady state, allocations there are
// irrelevant); the arena is returned to the pool only when the worker no
// longer owns it.
func (s *Server) predictPooled(w http.ResponseWriter, r *http.Request, tr *obs.Trace, ar *requestArena, mv *modelVersion) {
	reusable := true
	err := faultinject.Fire(siteSubmit)
	var j *job
	if err == nil {
		j = ar.prepareJob(r.Context())
		reusable, err = mv.pool.submitJob(j)
	}
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		tr.SetError(err)
		writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
	case err != nil:
		timedOut := errors.Is(err, context.DeadlineExceeded)
		if timedOut {
			s.metrics.timeouts.Add(1)
		}
		tr.SetError(err)
		if s.cfg.NoDegrade {
			status := http.StatusInternalServerError
			if timedOut {
				status = http.StatusGatewayTimeout
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			break
		}
		// Degraded mode answers from the heuristic tier over the same
		// vectors. The worker only ever reads vecs, so sharing them with an
		// unfinished job is safe; the arena itself stays un-pooled if the
		// worker still owns it.
		s.metrics.degraded.Add(1)
		refs := make([]string, len(ar.vecs))
		for i := range refs {
			refs[i] = fmt.Sprintf("#%d", i)
		}
		resp := PredictResponse{
			ID:          ar.id,
			Degraded:    true,
			Predictions: s.degradedPredictions(ar.vecs, refs),
		}
		endEncode := tr.StartSpan(obs.StageEncode)
		writeJSON(w, http.StatusOK, resp)
		endEncode()
	default:
		out := ar.encodeResponse(j.probs)
		endEncode := tr.StartSpan(obs.StageEncode)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
		endEncode()
	}
	if reusable {
		putArena(ar)
	}
}

// sourceKey hashes everything that determines a compilation's output.
func sourceKey(req *PredictRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%v\x00", req.Name, req.Language, req.LinkStdlib)
	h.Write([]byte(req.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// degradedPredictions answers from the heuristic tier: the vector form of
// the Dempster-Shafer combination over the Ball/Larus heuristics, a pure
// function of each feature vector.
func (s *Server) degradedPredictions(vecs []features.Vector, refs []string) []Prediction {
	out := make([]Prediction, len(vecs))
	for i := range vecs {
		p, _ := s.fallback.TakenProbabilityFromVector(&vecs[i])
		conf := p
		if conf < 0.5 {
			conf = 1 - conf
		}
		out[i] = Prediction{
			Branch:      refs[i],
			Taken:       p > 0.5,
			Probability: p,
			Confidence:  conf,
		}
	}
	return out
}

// compile resolves a source submission to a program image, consulting the
// LRU cache first. A fault at the cache site degrades to a fresh compile; a
// fault at the compile site is a transient infrastructure failure. The
// trace gets a cache span on a hit, and compile + featurize spans on a
// miss.
func (s *Server) compile(tr *obs.Trace, req *PredictRequest) (*programImage, bool, error) {
	key := sourceKey(req)
	endCache := tr.StartSpan(obs.StageCache)
	if faultinject.Fire(siteCacheGet) == nil {
		if img, ok := s.cache.get(key); ok {
			endCache()
			s.metrics.cacheHits.Add(1)
			return img, true, nil
		}
	}
	s.metrics.cacheMisses.Add(1)
	if err := faultinject.Fire(siteCompile); err != nil {
		return nil, false, fmt.Errorf("compile backend: %w: %w", errTransient, err)
	}
	endCompile := tr.StartSpan(obs.StageCompile)

	lang := ir.LangC
	switch req.Language {
	case "", string(ir.LangC):
	case string(ir.LangFortran):
		lang = ir.LangFortran
	case string(ir.LangScheme):
		lang = ir.LangScheme
	default:
		return nil, false, fmt.Errorf("unknown language %q", req.Language)
	}
	name := req.Name
	if name == "" {
		name = "query"
	}
	src := req.Source
	if req.LinkStdlib {
		src += corpus.StdlibSource + corpus.Stdlib2Source
	}
	ast, err := minic.ParseWithLimits(name, src, minic.Limits{MaxDepth: s.cfg.parseDepth()})
	if err != nil {
		return nil, false, fmt.Errorf("parse: %w", err)
	}
	prog, err := codegen.CompileBounded(ast, lang, codegen.Default,
		guard.Limits{CFGBlocks: s.cfg.cfgBlocks()})
	if err != nil {
		return nil, false, fmt.Errorf("compile: %w", err)
	}
	endCompile()
	endFeaturize := tr.StartSpan(obs.StageFeaturize)
	ps := features.Collect(prog)
	img := &programImage{
		Name:    name,
		Prog:    prog,
		Vectors: features.ExtractAll(ps),
	}
	img.Refs = make([]ir.BranchRef, len(ps.Sites))
	for i, site := range ps.Sites {
		img.Refs[i] = site.Ref
	}
	endFeaturize()
	s.cache.add(key, img)
	return img, false, nil
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status       string `json:"status"`
	Classifier   string `json:"classifier"`
	Inputs       int    `json:"inputs"`
	Hidden       int    `json:"hidden,omitempty"`
	ModelVersion int64  `json:"model_version"`
	UptimeSec    int64  `json:"uptime_sec"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mv := s.currentVersion()
	resp := healthzResponse{
		Status:       "ok",
		Classifier:   mv.model.Cfg.Classifier.String(),
		Inputs:       mv.model.Encoder.Dim,
		ModelVersion: mv.version,
		UptimeSec:    int64(time.Since(s.started).Seconds()),
	}
	if mv.model.Net != nil {
		resp.Hidden = mv.model.Net.Hidden
	}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.render())
}

// debugRequestsResponse is the /debug/requests body: the trace ring, oldest
// first.
type debugRequestsResponse struct {
	Traces []*obs.Trace `json:"traces"`
}

// handleDebugRequests serves the bounded ring of recent request traces, each
// carrying its per-stage spans, for production latency forensics.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, debugRequestsResponse{Traces: s.traces.Snapshot()})
}
