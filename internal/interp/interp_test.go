package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// mini builds a one-function program from a builder callback.
func mini(build func(fb *ir.FuncBuilder)) *ir.Program {
	fb := ir.NewFuncBuilder("main", ir.LangC)
	build(fb)
	return &ir.Program{Name: "t", Funcs: []*ir.Func{fb.Func()}}
}

func TestArithmeticSemantics(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		fb.LoadInt(ir.R(1), 100)
		fb.LoadInt(ir.R(2), 7)
		emit := func(op ir.Op) {
			fb.Op3(op, ir.R(3), ir.R(1), ir.R(2))
			fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.R(3)})
			fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		}
		emit(ir.OpAddQ)
		emit(ir.OpSubQ)
		emit(ir.OpMulQ)
		emit(ir.OpDivQ)
		emit(ir.OpRemQ)
		emit(ir.OpAndQ)
		emit(ir.OpOrQ)
		emit(ir.OpXorQ)
		emit(ir.OpCmpEq)
		emit(ir.OpCmpLt)
		emit(ir.OpCmpLe)
		fb.LoadInt(ir.RegV0, 0)
		fb.Ret()
	})
	prof, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{107, 93, 700, 14, 2, 100 & 7, 100 | 7, 100 ^ 7, 0, 0, 0}
	if len(prof.Outputs) != len(want) {
		t.Fatalf("outputs = %v", prof.Outputs)
	}
	for i, w := range want {
		if prof.Outputs[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, prof.Outputs[i], w)
		}
	}
}

func TestZeroRegisterReadsZero(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		fb.LoadInt(ir.RegZero, 99) // writing is a no-op on read
		fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.RegZero})
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		fb.Ret()
	})
	prof, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Outputs[0] != 0 {
		t.Errorf("R31 read %d, want 0", prof.Outputs[0])
	}
}

func TestErrorConditions(t *testing.T) {
	cases := []struct {
		name  string
		build func(fb *ir.FuncBuilder)
		want  error
	}{
		{"div by zero", func(fb *ir.FuncBuilder) {
			fb.LoadInt(ir.R(1), 1)
			fb.Op3(ir.OpDivQ, ir.R(2), ir.R(1), ir.RegZero)
			fb.Ret()
		}, ErrDivZero},
		{"rem by zero", func(fb *ir.FuncBuilder) {
			fb.LoadInt(ir.R(1), 1)
			fb.Op3(ir.OpRemQ, ir.R(2), ir.R(1), ir.RegZero)
			fb.Ret()
		}, ErrDivZero},
		{"store to null", func(fb *ir.FuncBuilder) {
			fb.Emit(ir.Instr{Op: ir.OpStq, A: ir.RegZero, B: ir.R(1)})
			fb.Ret()
		}, ErrMemBounds},
		{"load out of bounds", func(fb *ir.FuncBuilder) {
			fb.LoadInt(ir.R(1), 1<<40)
			fb.Emit(ir.Instr{Op: ir.OpLdq, Dst: ir.R(2), A: ir.R(1)})
			fb.Ret()
		}, ErrMemBounds},
		{"fuel exhausted", func(fb *ir.FuncBuilder) {
			loop := fb.NewBlock()
			fb.Jump(loop)
			fb.SetBlock(loop)
			fb.Jump(loop)
		}, ErrFuel},
		{"bad jump index", func(fb *ir.FuncBuilder) {
			fb.LoadInt(ir.R(1), 5)
			nb := fb.NewBlockDetached()
			fb.Emit(ir.Instr{Op: ir.OpJmp, A: ir.R(1), Targets: []int{1}})
			fb.Place(nb)
			fb.SetBlock(nb)
			fb.Ret()
		}, ErrBadJump},
	}
	for _, c := range cases {
		prog := mini(c.build)
		_, err := Run(prog, Config{MaxInsns: 10_000})
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestStackOverflowOnRunawayRecursion(t *testing.T) {
	fb := ir.NewFuncBuilder("main", ir.LangC)
	fb.Call("main")
	fb.Ret()
	fn := fb.Func()
	fn.FrameSize = 8
	prog := &ir.Program{Name: "t", Funcs: []*ir.Func{fn}}
	_, err := Run(prog, Config{})
	if !errors.Is(err, ErrStack) && !errors.Is(err, ErrCallDepth) {
		t.Errorf("runaway recursion: err = %v", err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		loop := fb.NewBlock()
		fb.Jump(loop)
		fb.SetBlock(loop)
		fb.LoadInt(ir.RegA0, 1<<20)
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtAlloc})
		fb.Jump(loop)
	})
	_, err := Run(prog, Config{MemWords: 1 << 18})
	if !errors.Is(err, ErrHeap) {
		t.Errorf("err = %v, want heap exhaustion", err)
	}
}

func TestBranchProfileCounts(t *testing.T) {
	// A branch taken exactly 3 of 5 times: loop i=0..4, branch when i%2==0
	// is false... simpler: branch on (i < 3).
	prog := mini(func(fb *ir.FuncBuilder) {
		// R1 = i, counts 0..4; R2 = 1 constant
		fb.LoadInt(ir.R(1), 0)
		loop := fb.NewBlock()
		fb.SetBlock(loop)
		// test i < 3 -> R3
		fb.OpImm(ir.OpCmpLt, ir.R(3), ir.R(1), 3)
		taken := fb.NewBlockDetached()
		fb.Branch(ir.OpBne, ir.R(3), taken) // taken while i < 3
		fb.Place(taken)
		fb.SetBlock(taken)
		fb.OpImm(ir.OpAddQ, ir.R(1), ir.R(1), 1)
		exit := fb.NewBlockDetached()
		done := fb.NewBlockDetached()
		fb.OpImm(ir.OpCmpLt, ir.R(3), ir.R(1), 5)
		fb.Branch(ir.OpBne, ir.R(3), loop)
		fb.Place(exit)
		fb.SetBlock(exit)
		fb.Jump(done)
		fb.Place(done)
		fb.SetBlock(done)
		fb.Ret()
	})
	prof, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := ir.BranchRef{Func: "main", Block: 1}
	c := prof.Branches[ref]
	if c == nil {
		t.Fatal("no count for the loop-test branch")
	}
	if c.Executed != 5 || c.Taken != 3 {
		t.Errorf("branch counts = %d/%d, want taken 3 of 5", c.Taken, c.Executed)
	}
	if got := c.TakenFraction(); got != 0.6 {
		t.Errorf("TakenFraction = %v", got)
	}
}

func TestEdgeCollection(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		next := fb.NewBlockDetached()
		fb.Jump(next)
		fb.Place(next)
		fb.SetBlock(next)
		fb.Ret()
	})
	prof, err := Run(prog, Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Edges[EdgeRef{Func: "main", From: 0, To: 1}] != 1 {
		t.Errorf("edges = %v", prof.Edges)
	}
	// Without the flag no edges are collected.
	prof2, _ := Run(prog, Config{})
	if prof2.Edges != nil {
		t.Error("edge map allocated without CollectEdges")
	}
}

func TestQuantiles(t *testing.T) {
	p := &Profile{Branches: map[ir.BranchRef]*BranchCount{
		{Func: "f", Block: 0}: {Executed: 90},
		{Func: "f", Block: 1}: {Executed: 5},
		{Func: "f", Block: 2}: {Executed: 3},
		{Func: "f", Block: 3}: {Executed: 2},
		{Func: "f", Block: 4}: {Executed: 0},
	}}
	got := p.Quantiles([]float64{50, 90, 95, 99, 100})
	// Totals: 90, 95, 98, 100 — so 99% needs four sites.
	want := []int{1, 1, 2, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("quantile %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if p.StaticSites() != 5 || p.ExecutedSites() != 4 {
		t.Errorf("sites = %d/%d", p.StaticSites(), p.ExecutedSites())
	}
}

func TestInputAndRandDeterminism(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		for i := 0; i < 4; i++ {
			fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtRand})
			fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.RegV0})
			fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		}
		fb.LoadInt(ir.RegA0, 2)
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtInput})
		fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.RegV0})
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		fb.Ret()
	})
	f := func(seed uint64, a, b, c int64) bool {
		cfg := Config{Seed: seed, Input: []int64{a, b, c}}
		p1, err1 := Run(prog, cfg)
		p2, err2 := Run(prog, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(p1.Outputs) != 5 || p1.Outputs[4] != c {
			return false
		}
		for i := range p1.Outputs {
			if p1.Outputs[i] != p2.Outputs[i] {
				return false
			}
			if i < 4 && p1.Outputs[i] < 0 {
				return false // __rand must be non-negative
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedWeights(t *testing.T) {
	p := &Profile{
		CondExec: 10,
		Branches: map[ir.BranchRef]*BranchCount{
			{Func: "f", Block: 0}: {Executed: 7, Taken: 3},
			{Func: "f", Block: 1}: {Executed: 3, Taken: 3},
		},
	}
	if w := p.NormalizedWeight(ir.BranchRef{Func: "f", Block: 0}); w != 0.7 {
		t.Errorf("weight = %v, want 0.7", w)
	}
	if w := p.NormalizedWeight(ir.BranchRef{Func: "f", Block: 9}); w != 0 {
		t.Errorf("missing branch weight = %v, want 0", w)
	}
}

func TestIndirectJumpDispatch(t *testing.T) {
	// A jump table selecting between three return values.
	prog := mini(func(fb *ir.FuncBuilder) {
		c1 := fb.NewBlockDetached()
		c2 := fb.NewBlockDetached()
		c3 := fb.NewBlockDetached()
		fb.LoadInt(ir.RegA0, 1)
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtInput})
		fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.R(1), A: ir.RegV0})
		fb.Emit(ir.Instr{Op: ir.OpJmp, A: ir.R(1), Targets: []int{c1.ID, c2.ID, c3.ID}})
		fb.Place(c1)
		fb.SetBlock(c1)
		fb.LoadInt(ir.RegV0, 10)
		fb.Ret()
		fb.Place(c2)
		fb.SetBlock(c2)
		fb.LoadInt(ir.RegV0, 20)
		fb.Ret()
		fb.Place(c3)
		fb.SetBlock(c3)
		fb.LoadInt(ir.RegV0, 30)
		fb.Ret()
	})
	for want, sel := range map[int64]int64{10: 0, 20: 1, 30: 2} {
		prof, err := Run(prog, Config{Input: []int64{0, sel}})
		if err != nil {
			t.Fatalf("sel %d: %v", sel, err)
		}
		if prof.Result != want {
			t.Errorf("sel %d: result %d, want %d", sel, prof.Result, want)
		}
	}
}

func TestFloatConversionSemantics(t *testing.T) {
	prog := mini(func(fb *ir.FuncBuilder) {
		fb.LoadInt(ir.R(1), -7)
		fb.Emit(ir.Instr{Op: ir.OpCvtQT, Dst: ir.F(1), A: ir.R(1)})
		fb.Emit(ir.Instr{Op: ir.OpFAbs, Dst: ir.F(2), A: ir.F(1)})
		fb.Emit(ir.Instr{Op: ir.OpFNeg, Dst: ir.F(3), A: ir.F(2)})
		fb.Emit(ir.Instr{Op: ir.OpCvtTQ, Dst: ir.R(2), A: ir.F(3)})
		fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.R(2)})
		fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		fb.Ret()
	})
	prof, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Outputs[0] != -7 {
		t.Errorf("abs/neg roundtrip = %d, want -7", prof.Outputs[0])
	}
}
