package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/dtree"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/mbr"
	"repro/internal/neural"
)

// ClassifierKind selects the function approximator behind ESP.
type ClassifierKind int

// Supported classifiers.
const (
	// NeuralNet is the paper's primary classifier (Section 3.1.1).
	NeuralNet ClassifierKind = iota
	// DecisionTree is the Section 3.1.2 alternative.
	DecisionTree
	// MemoryBased is memory-based reasoning, the other alternative the
	// paper names in Section 6.
	MemoryBased
)

// String names the classifier.
func (k ClassifierKind) String() string {
	switch k {
	case DecisionTree:
		return "decision-tree"
	case MemoryBased:
		return "memory-based"
	}
	return "neural-net"
}

// Config parameterizes ESP training.
type Config struct {
	// Classifier selects the model type (default NeuralNet).
	Classifier ClassifierKind
	// Hidden is the hidden-layer width (default 20).
	Hidden int
	// Seed makes training deterministic (default 1).
	Seed uint64
	// Net carries neural-net training overrides (epochs, learning rate…).
	Net neural.Config
	// Tree carries decision-tree overrides.
	Tree dtree.Config
	// MBR carries memory-based-reasoning overrides.
	MBR mbr.Config
	// ExcludeFeatures lists Table 2 feature indices to hide from the model
	// (feature-set ablations): excluded features read as Unknown.
	ExcludeFeatures []int
	// UniformWeights trains with equal example weights instead of the
	// paper's normalized branch weights n_k (the loss ablation); the
	// evaluation metric stays execution-weighted either way.
	UniformWeights bool
	// IncludeLibraryFeature exposes the library-subroutine feature
	// (features.FLibraryProc) to the model. The paper's feature set is the
	// 24 features of Table 2; the 25th is its Section 6 future-work
	// extension, so it is opt-in.
	IncludeLibraryFeature bool
	// IncludeCorrelationFeatures exposes the sparse inter-branch
	// correlation features (features.FCorrSharedCond, FCorrDomCond) to the
	// model — the correlation-feature ablation. Opt-in for the same reason
	// as the library feature: the default model is the paper's.
	IncludeCorrelationFeatures bool
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Net.MaxEpochs == 0 {
		c.Net.MaxEpochs = 600
	}
	if c.Net.Patience == 0 {
		c.Net.Patience = 60
	}
	if !c.IncludeLibraryFeature {
		c.ExcludeFeatures = append(append([]int(nil), c.ExcludeFeatures...),
			features.FLibraryProc)
	}
	if !c.IncludeCorrelationFeatures {
		c.ExcludeFeatures = append(append([]int(nil), c.ExcludeFeatures...),
			features.FCorrSharedCond, features.FCorrDomCond)
	}
	return c
}

// Model is a trained ESP predictor.
type Model struct {
	Cfg     Config
	Encoder *features.Encoder
	Net     *neural.Net
	Tree    *dtree.Tree
	MBR     *mbr.Model
	// TrainStats records the neural training run (empty for trees).
	TrainStats neural.TrainResult
	// QuantCalib carries the decision-pinned quantization calibration
	// (CalibrateQuant), inert until EnableQuant builds the int8 path from
	// it. It round-trips through Save/Load so a calibrated model file can
	// serve quantized without re-sweeping the corpus.
	QuantCalib *QuantCalibration

	// quant, when non-nil, routes TakenProbability/TakenProbabilities
	// through the int8 forward pass.
	quant *quantPath

	excluded map[int]bool
	// scratch pools the per-prediction encode/hidden buffers so
	// TakenProbability stays allocation-free and safe for concurrent use.
	scratch sync.Pool
}

// QuantCalibration is the serialized outcome of the decision-pinning sweep:
// everything needed to rebuild the int8 path deterministically from the
// float weights.
type QuantCalibration struct {
	// XScale quantizes inputs: qx = clamp(round(x·XScale), ±127).
	XScale float64 `json:"xscale"`
	// Guard is the half-width of the float-fallback band around 0.5: a
	// quantized probability within Guard of 0.5 is recomputed in float64.
	// Chosen by CalibrateQuant as the largest quantized decision margin of
	// any corpus branch whose quantized decision disagrees with the float
	// reference — so every corpus decision is pinned by construction.
	Guard float64 `json:"guard"`
	// Margin records the clip margin the sweep selected (the fraction of
	// the corpus's maximum activation magnitude kept representable).
	Margin float64 `json:"margin,omitempty"`
}

// quantPath is the assembled int8 serving path. fused answers single
// predictions via prefolded per-(feature, value) contribution tables;
// net/enc are the kernel form of the same computation, used by the
// calibration sweep and batch callers. The two are bit-identical
// (see quantFused).
type quantPath struct {
	net   *neural.QuantNet
	enc   *features.QuantEncoder
	fused *quantFused
}

// predictBuf is the reusable per-prediction scratch.
type predictBuf struct {
	x   []float64
	h   []float64
	qx  []int8
	acc []int32
}

// EnableQuant builds the int8 inference path from the stored calibration.
// Requires the neural classifier and a QuantCalib (from CalibrateQuant or a
// calibrated model file). Concurrent predictions must not be in flight.
func (m *Model) EnableQuant() error {
	if m.Net == nil {
		return fmt.Errorf("core: quantized inference requires the neural classifier (have %s)", m.Cfg.Classifier)
	}
	if m.QuantCalib == nil {
		return fmt.Errorf("core: model has no quantization calibration; run esptool calibrate (or CalibrateQuant)")
	}
	qn, err := neural.Quantize(m.Net, m.QuantCalib.XScale)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	qe, err := features.NewQuantEncoder(m.Encoder, m.QuantCalib.XScale)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	m.quant = &quantPath{net: qn, enc: qe, fused: newQuantFused(qn, qe, m.excluded)}
	return nil
}

// DisableQuant routes predictions back through the float64 reference path.
func (m *Model) DisableQuant() { m.quant = nil }

// QuantEnabled reports whether predictions run through the int8 path.
func (m *Model) QuantEnabled() bool { return m.quant != nil }

// Train fits an ESP model on the pooled examples of a corpus of programs.
func Train(corpus []*ProgramData, cfg Config) *Model {
	var examples []Example
	for _, pd := range corpus {
		examples = append(examples, pd.Examples()...)
	}
	return TrainExamples(examples, cfg)
}

// TrainExamples fits an ESP model on explicit examples.
func TrainExamples(examples []Example, cfg Config) *Model {
	cfg = cfg.withDefaults()
	excluded := excludeSet(cfg.ExcludeFeatures)
	masked := make([]features.Vector, len(examples))
	targets := make([]float64, len(examples))
	weightVals := make([]float64, len(examples))
	for i, ex := range examples {
		masked[i] = maskVector(ex.Vector, excluded)
		targets[i] = ex.Target
		weightVals[i] = ex.Weight
	}
	return trainMasked(masked, targets, weightVals, cfg, excluded)
}

// trainMasked fits a model on already-masked feature vectors. Cross-validation
// masks each program's vectors once and reuses them across all folds, so the
// masking work is hoisted out of here.
func trainMasked(masked []features.Vector, targets, weightVals []float64, cfg Config, excluded map[int]bool) *Model {
	m := &Model{Cfg: cfg, excluded: excluded}
	if cfg.UniformWeights {
		uniform := make([]float64, len(masked))
		for i := range uniform {
			uniform[i] = 1 / float64(len(masked))
		}
		weightVals = uniform
	}
	m.Encoder = features.NewEncoder(masked)

	switch cfg.Classifier {
	case DecisionTree:
		tex := make([]dtree.Example, len(masked))
		for i := range masked {
			tex[i] = dtree.Example{
				Values: masked[i].Values,
				TakenW: weightVals[i] * targets[i],
				NotW:   weightVals[i] * (1 - targets[i]),
			}
		}
		m.Tree = dtree.Build(tex, cfg.Tree)
	case MemoryBased:
		mex := make([]mbr.Example, len(masked))
		for i := range masked {
			mex[i] = mbr.Example{
				Values: masked[i].Values,
				Target: targets[i],
				Weight: weightVals[i],
			}
		}
		mcfg := cfg.MBR
		mcfg.InformationWeights = true
		m.MBR = mbr.New(mex, mcfg)
	default:
		xs := m.Encoder.EncodeAllSparse(masked)
		ncfg := cfg.Net
		ncfg.Inputs = m.Encoder.Dim
		ncfg.Hidden = cfg.Hidden
		if ncfg.Seed == 0 {
			ncfg.Seed = cfg.Seed
		}
		m.Net = neural.New(ncfg)
		m.TrainStats = m.Net.TrainCSR(ncfg, xs, targets, weightVals)
	}
	return m
}

func excludeSet(feats []int) map[int]bool {
	if len(feats) == 0 {
		return nil
	}
	s := make(map[int]bool, len(feats))
	for _, f := range feats {
		s[f] = true
	}
	return s
}

// maskVector hides excluded features.
func maskVector(v features.Vector, excluded map[int]bool) features.Vector {
	if len(excluded) == 0 {
		return v
	}
	for f := range excluded {
		if f >= 0 && f < features.NumFeatures {
			v.Values[f] = features.Unknown
		}
	}
	return v
}

// TakenProbability returns the model's estimate that the branch described by
// the feature vector is taken.
func (m *Model) TakenProbability(v features.Vector) float64 {
	if m.Tree != nil || m.MBR != nil {
		v = maskVector(v, m.excluded)
		if m.Tree != nil {
			return m.Tree.Predict(v.Values)
		}
		return m.MBR.Predict(v.Values)
	}
	buf := m.getBuf()
	var y float64
	if m.quant != nil {
		y = m.quantForward(&v, buf)
	} else {
		v = maskVector(v, m.excluded)
		y = m.forwardFloat(&v, buf)
	}
	m.scratch.Put(buf)
	return y
}

// getBuf pools the per-prediction scratch (encode row, hidden activations,
// and — when quantization is enabled — the int8 input row).
func (m *Model) getBuf() *predictBuf {
	buf, _ := m.scratch.Get().(*predictBuf)
	if buf == nil {
		buf = &predictBuf{
			x: make([]float64, m.Encoder.Dim),
			h: make([]float64, m.Net.Hidden),
		}
	}
	if m.quant != nil {
		if len(buf.qx) != m.Encoder.Dim {
			buf.qx = make([]int8, m.Encoder.Dim)
		}
		if len(buf.acc) != m.Net.Hidden {
			buf.acc = make([]int32, m.Net.Hidden)
		}
	}
	return buf
}

// quantForward runs one vector through the int8 fused path, with the
// float64 fallback inside the calibrated guard band around 0.5 (which is
// what pins decisions). v may be unmasked — excluded features are gated
// inside the fused tables, so the hot path never copies the vector. v is a
// pointer purely for speed (25 string headers) and is not modified.
func (m *Model) quantForward(v *features.Vector, buf *predictBuf) float64 {
	y := m.quant.fused.forward(v, buf.acc)
	if diff := y - 0.5; diff <= m.QuantCalib.Guard && -diff <= m.QuantCalib.Guard {
		// Too close to the decision boundary for the quantized pass to
		// be trusted with the outcome: recompute in float64.
		mv := maskVector(*v, m.excluded)
		m.Encoder.Encode(mv, buf.x)
		y = m.Net.ForwardInto(buf.h, buf.x)
	}
	return y
}

// forwardFloat runs one already-masked vector through the float64 reference
// network.
func (m *Model) forwardFloat(v *features.Vector, buf *predictBuf) float64 {
	m.Encoder.Encode(*v, buf.x)
	return m.Net.ForwardInto(buf.h, buf.x)
}

// TakenProbabilities predicts a whole batch of feature vectors into out
// (len(out) must equal len(vs)). For the neural classifier the batch shares
// one pooled scratch — a single Get/Put and one encode buffer for all rows —
// so a serving worker can fold many queued queries into one pass. The
// results are bit-identical to calling TakenProbability per vector.
func (m *Model) TakenProbabilities(vs []features.Vector, out []float64) {
	if len(out) != len(vs) {
		panic(fmt.Sprintf("core: TakenProbabilities out length %d, want %d", len(out), len(vs)))
	}
	if m.Tree != nil || m.MBR != nil {
		for i, v := range vs {
			out[i] = m.TakenProbability(v)
		}
		return
	}
	buf := m.getBuf()
	switch {
	case m.quant != nil:
		// The fused tables gate excluded features themselves, so predict
		// straight from the caller's slice — no mask copy per vector.
		for i := range vs {
			out[i] = m.quantForward(&vs[i], buf)
		}
	case len(m.excluded) == 0:
		for i := range vs {
			out[i] = m.forwardFloat(&vs[i], buf)
		}
	default:
		for i, v := range vs {
			v = maskVector(v, m.excluded)
			out[i] = m.forwardFloat(&v, buf)
		}
	}
	m.scratch.Put(buf)
}

// Predictor adapts the model to the heuristics.Predictor interface used by
// all evaluation code: a branch is predicted taken when the estimated
// probability exceeds 0.5.
type Predictor struct {
	Model *Model
	// Label overrides the reported name.
	Label string
}

// Name implements heuristics.Predictor.
func (p *Predictor) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "ESP(" + p.Model.Cfg.Classifier.String() + ")"
}

// PredictSite implements heuristics.Predictor.
func (p *Predictor) PredictSite(s *features.Site) (heuristics.Prediction, bool) {
	prob := p.Model.TakenProbability(features.Of(s))
	if prob > 0.5 {
		return heuristics.Taken, true
	}
	return heuristics.NotTaken, true
}

// modelJSON is the serialized form of a model. The quantization section
// stores only the calibration — the int8 weights are rebuilt
// deterministically from the float net on EnableQuant, so the file format
// carries no second copy of the matrix and old tools keep loading new
// files.
type modelJSON struct {
	Classifier ClassifierKind    `json:"classifier"`
	Hidden     int               `json:"hidden"`
	Excluded   []int             `json:"excluded,omitempty"`
	Encoder    *features.Encoder `json:"encoder"`
	Net        *neural.Net       `json:"net,omitempty"`
	Tree       *dtree.Tree       `json:"tree,omitempty"`
	MBR        *mbr.Model        `json:"mbr,omitempty"`
	Quant      *QuantCalibration `json:"quant,omitempty"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(modelJSON{
		Classifier: m.Cfg.Classifier,
		Hidden:     m.Cfg.Hidden,
		Excluded:   m.Cfg.ExcludeFeatures,
		Encoder:    m.Encoder,
		Net:        m.Net,
		Tree:       m.Tree,
		MBR:        m.MBR,
		Quant:      m.QuantCalib,
	})
}

// Load reads a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if mj.Encoder == nil {
		return nil, fmt.Errorf("core: model file has no encoder")
	}
	mj.Encoder.Rebuild()
	m := &Model{
		Cfg: Config{
			Classifier:      mj.Classifier,
			Hidden:          mj.Hidden,
			ExcludeFeatures: mj.Excluded,
		},
		Encoder:    mj.Encoder,
		Net:        mj.Net,
		Tree:       mj.Tree,
		MBR:        mj.MBR,
		QuantCalib: mj.Quant,
		excluded:   excludeSet(mj.Excluded),
	}
	if m.Net == nil && m.Tree == nil && m.MBR == nil {
		return nil, fmt.Errorf("core: model file has no classifier")
	}
	return m, nil
}
