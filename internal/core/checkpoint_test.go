package core

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func checkpointCorpus(t *testing.T) []*ProgramData {
	t.Helper()
	return []*ProgramData{
		analyzeSrc(t, "a", loopy, nil),
		analyzeSrc(t, "b", loopy2, nil),
		analyzeSrc(t, "c", `
int main() {
	int i;
	int n;
	n = 0;
	for (i = 0; i < 90; i = i + 1) {
		if (i % 3 == 0) { n = n + 2; }
	}
	return n;
}`, nil),
	}
}

func foldFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "fold-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestCheckpointKillAndResume is the crash-safety contract: a run canceled
// mid-way leaves valid checkpoints, and a resumed run completes from them
// with results bit-identical to an uninterrupted serial run.
func TestCheckpointKillAndResume(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := Config{Hidden: 8, Seed: 5}
	dir := t.TempDir()
	want := CrossValidateSerial(corpus, cfg)

	// First run: cancel as soon as the first checkpoint lands.
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		_, err := CrossValidateCheckpointed(ctx, corpus, cfg, dir)
		runErr <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for len(foldFiles(t, dir)) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	done := len(foldFiles(t, dir))
	if done == 0 {
		t.Fatal("no checkpoint was written before cancellation")
	}
	// The cancellation race may have let every fold finish; simulate the
	// worst-case crash deterministically by keeping only the first fold's
	// checkpoint, so the resume must mix loaded and recomputed folds.
	first := checkpointPath(dir, 0, corpus[0].Name)
	for _, f := range foldFiles(t, dir) {
		if f != first {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Resume: the finished fold loads from disk, the rest compute.
	got, err := CrossValidateCheckpointed(context.Background(), corpus, cfg, dir)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d folds, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("fold %d: resumed %+v, serial %+v", i, got[i], want[i])
		}
	}
	if n := len(foldFiles(t, dir)); n != len(corpus) {
		t.Errorf("%d checkpoint files after completion, want %d", n, len(corpus))
	}
	t.Logf("cancelled after %d/%d folds, resume matched serial bitwise", done, len(corpus))
}

// TestCheckpointSkipsCompletedFolds proves resumed folds really load from
// disk: tampering with a checkpointed miss rate (keeping its hash) shows up
// verbatim in the next run's results.
func TestCheckpointSkipsCompletedFolds(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := Config{Hidden: 8, Seed: 5}
	dir := t.TempDir()
	if _, err := CrossValidateCheckpointed(context.Background(), corpus, cfg, dir); err != nil {
		t.Fatal(err)
	}
	path := foldFiles(t, dir)[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp foldCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	cp.Fold.MissRate = 0.123456
	if err := saveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidateCheckpointed(context.Background(), corpus, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].MissRate != 0.123456 {
		t.Fatalf("fold 0 recomputed (miss %v): checkpoint was not used", got[0].MissRate)
	}
}

// TestCheckpointStaleHashIgnored: checkpoints from a different configuration
// must not leak into a run.
func TestCheckpointStaleHashIgnored(t *testing.T) {
	corpus := checkpointCorpus(t)
	dir := t.TempDir()
	if _, err := CrossValidateCheckpointed(context.Background(), corpus, Config{Hidden: 8, Seed: 5}, dir); err != nil {
		t.Fatal(err)
	}
	other := Config{Hidden: 8, Seed: 9}
	got, err := CrossValidateCheckpointed(context.Background(), corpus, other, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := CrossValidateSerial(corpus, other)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("fold %d: %+v, want %+v — stale checkpoint reused", i, got[i], want[i])
		}
	}
}

// TestCheckpointCorruptFilesIgnored: torn or garbage checkpoint files are
// recomputed, not trusted.
func TestCheckpointCorruptFilesIgnored(t *testing.T) {
	corpus := checkpointCorpus(t)
	cfg := Config{Hidden: 8, Seed: 5}
	dir := t.TempDir()
	// Plant garbage and a truncated JSON where folds 0 and 1 would land.
	if err := os.WriteFile(checkpointPath(dir, 0, "a"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointPath(dir, 1, "b"), []byte(`{"config_hash": "tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidateCheckpointed(context.Background(), corpus, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := CrossValidateSerial(corpus, cfg)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("fold %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
