package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names used by the serving path. Kept here so the server, the tests,
// and the docs agree on the vocabulary.
const (
	StageDecode    = "decode"     // request body read + JSON decode
	StageAdmission = "admission"  // admission-control gate
	StageCache     = "cache"      // compiled-program cache lookup (hit)
	StageCompile   = "compile"    // parse + codegen on a cache miss
	StageFeaturize = "featurize"  // feature collection / vector parsing
	StageQueueWait = "queue-wait" // time between enqueue and worker pickup
	StageForward   = "forward"    // batched model pass
	StageEncode    = "encode"     // response JSON encode + write
)

// Span is one timed stage inside a request, with its start expressed as an
// offset from the trace start so spans order naturally.
type Span struct {
	Stage   string `json:"stage"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Trace is the record of one request's trip through the pipeline. A trace
// belongs to the goroutine serving its request and is not safe for
// concurrent mutation; once handed to Recorder.Record it must be treated as
// immutable. All methods are nil-receiver-safe so uninstrumented call sites
// cost nothing.
type Trace struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	Status   int       `json:"status"`
	DurUS    int64     `json:"dur_us"`
	Spans    []Span    `json:"spans"`
	Err      string    `json:"error,omitempty"`
}

// NewTrace starts a trace for one request.
func NewTrace(endpoint, id string) *Trace {
	return &Trace{ID: id, Endpoint: endpoint, Start: time.Now()}
}

// StartSpan opens a span and returns the closure that ends it.
func (t *Trace) StartSpan(stage string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(stage, start, time.Since(start)) }
}

// AddSpan records an externally-timed span (e.g. queue wait measured by the
// worker pool).
func (t *Trace) AddSpan(stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{
		Stage:   stage,
		StartUS: start.Sub(t.Start).Microseconds(),
		DurUS:   d.Microseconds(),
	})
}

// SetStatus records the response status code.
func (t *Trace) SetStatus(code int) {
	if t != nil {
		t.Status = code
	}
}

// SetError records the terminal error, if any.
func (t *Trace) SetError(err error) {
	if t != nil && err != nil {
		t.Err = err.Error()
	}
}

// finish stamps the total duration.
func (t *Trace) finish() {
	if t != nil && t.DurUS == 0 {
		t.DurUS = time.Since(t.Start).Microseconds()
	}
}

type ctxKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil (whose methods no-op).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Recorder keeps the most recent completed traces in a bounded ring (served
// at /debug/requests) and optionally emits a sampled subset as structured
// JSON-lines access logs. A nil *Recorder is a valid no-op.
type Recorder struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	full bool

	seq    atomic.Uint64 // request-ID generator
	logSeq atomic.Uint64 // sampling counter
	every  uint64        // log every Nth trace; 0 = never

	logMu sync.Mutex
	logw  io.Writer
}

// NewRecorder builds a recorder with the given ring capacity (<= 0 disables
// the ring), sampling fraction (0 disables the access log, 1 logs every
// request; in between, every round(1/sample)-th request is logged), and log
// destination (nil disables the access log regardless of sample).
func NewRecorder(ringSize int, sample float64, logw io.Writer) *Recorder {
	r := &Recorder{}
	if ringSize > 0 {
		r.ring = make([]*Trace, ringSize)
	}
	if logw != nil && sample > 0 {
		if sample >= 1 {
			r.every = 1
		} else {
			r.every = uint64(1/sample + 0.5)
		}
		r.logw = logw
	}
	return r
}

// NextID mints a process-unique request ID.
func (r *Recorder) NextID() string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf("r%06d", r.seq.Add(1))
}

// Record finalizes a completed trace, stores it in the ring (evicting the
// oldest when full), and writes it as one JSON line when sampled.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.finish()
	if r.ring != nil {
		r.mu.Lock()
		r.ring[r.next] = t
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.full = true
		}
		r.mu.Unlock()
	}
	if r.every > 0 && r.logSeq.Add(1)%r.every == 0 {
		line, err := json.Marshal(t)
		if err != nil {
			return
		}
		line = append(line, '\n')
		r.logMu.Lock()
		_, _ = r.logw.Write(line)
		r.logMu.Unlock()
	}
}

// Snapshot returns the ring's traces, oldest first. The traces themselves
// are shared (immutable after Record), the slice is the caller's.
func (r *Recorder) Snapshot() []*Trace {
	if r == nil || r.ring == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Trace
	if r.full {
		out = make([]*Trace, 0, len(r.ring))
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[:r.next]...)
	}
	return out
}
