package minic_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/guard"
	"repro/internal/minic"
)

// TestParseDepthLimitNestedExprs: a pathological parenthesis tower must be
// rejected with the typed budget error instead of exhausting the parser
// stack.
func TestParseDepthLimitNestedExprs(t *testing.T) {
	adversarial := []struct {
		name string
		src  string
	}{
		{"parens", "int main() { return " + strings.Repeat("(", 20000) + "1" + strings.Repeat(")", 20000) + "; }"},
		{"unary", "int main() { return " + strings.Repeat("-", 20000) + "1; }"},
		{"not", "int main() { return " + strings.Repeat("!", 20000) + "1; }"},
		{"blocks", "int main() { " + strings.Repeat("{", 20000) + strings.Repeat("}", 20000) + " return 0; }"},
		{"ifs", "int main() { " + strings.Repeat("if (1) ", 20000) + "return 0; }"},
		{"casts", "int main() { return " + strings.Repeat("(int)", 20000) + "1; }"},
	}
	for _, tc := range adversarial {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, err := minic.ParseWithLimits("adversarial", tc.src, minic.Limits{MaxDepth: 256})
			if err == nil {
				t.Fatal("parse of 20000-deep nesting succeeded under MaxDepth 256")
			}
			if !errors.Is(err, guard.ErrBudgetExceeded) {
				t.Fatalf("error is not typed as budget exceeded: %v", err)
			}
			// The budget must abort the parse quickly, not after chewing
			// through the whole input.
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("budgeted parse took %v", d)
			}
		})
	}
}

// TestParseDepthLimitAllowsRealPrograms: every corpus program (plus the
// runtime library) parses under the depth budget espserve enforces, so the
// guard only rejects pathological nesting.
func TestParseDepthLimitAllowsRealPrograms(t *testing.T) {
	lim := minic.Limits{MaxDepth: 256}
	for _, e := range corpus.All() {
		if _, err := minic.ParseWithLimits(e.Name, e.Source+corpus.StdlibSource+corpus.Stdlib2Source, lim); err != nil {
			t.Errorf("%s: corpus program rejected by depth budget: %v", e.Name, err)
		}
	}
}

// TestParseUnlimitedByDefault: the plain Parse path carries no budget, so
// the reproduction pipeline's behaviour is unchanged.
func TestParseUnlimitedByDefault(t *testing.T) {
	deep := "int main() { return " + strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000) + "; }"
	if _, err := minic.Parse("deep", deep); err != nil {
		t.Fatalf("unlimited parse rejected deep nesting: %v", err)
	}
}
