package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/features"
)

// ErrDraining is returned to submissions that arrive after the pool has
// begun its graceful drain.
var ErrDraining = errors.New("serve: server is draining")

// job is one prediction request in flight through the pool: a batch of
// feature vectors and the slot its probabilities land in.
type job struct {
	ctx   context.Context
	vecs  []features.Vector
	probs []float64
	err   error
	done  chan struct{}
}

// pool is the batching worker pool. Requests enqueue jobs; each worker
// drains up to maxBatch queued jobs at a time, folds all of their vectors
// into one model pass over a single pooled scratch buffer, and scatters the
// probabilities back. Batching amortizes the scratch acquisition and keeps
// the model's buffers hot under concurrent load.
type pool struct {
	model    *core.Model
	jobs     chan *job
	maxBatch int
	metrics  *metrics

	mu       sync.RWMutex // guards draining against sends on jobs
	draining bool

	workers sync.WaitGroup
}

func newPool(model *core.Model, workers, maxBatch, queueDepth int, m *metrics) *pool {
	p := &pool{
		model:    model,
		jobs:     make(chan *job, queueDepth),
		maxBatch: maxBatch,
		metrics:  m,
	}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// submit enqueues the vectors and blocks until a worker has predicted them
// or the context expires. The returned slice is owned by the caller.
func (p *pool) submit(ctx context.Context, vecs []features.Vector) ([]float64, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	j := &job{
		ctx:   ctx,
		vecs:  vecs,
		probs: make([]float64, len(vecs)),
		done:  make(chan struct{}),
	}
	p.mu.RLock()
	if p.draining {
		p.mu.RUnlock()
		return nil, ErrDraining
	}
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case <-j.done:
		if j.err != nil {
			return nil, j.err
		}
		return j.probs, nil
	case <-ctx.Done():
		// The worker still owns j.probs and will complete it; the caller
		// just stops waiting.
		return nil, ctx.Err()
	}
}

// drain stops accepting new jobs, lets the workers finish everything already
// queued, and waits for them to exit (or for ctx to expire).
func (p *pool) drain(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		close(p.jobs)
	}
	finished := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains batches of jobs and predicts each batch's vectors in one
// model pass.
func (p *pool) worker() {
	defer p.workers.Done()
	batch := make([]*job, 0, p.maxBatch)
	var vecs []features.Vector
	var probs []float64
	for j := range p.jobs {
		batch = append(batch[:0], j)
		// Opportunistically fold whatever else is already queued into the
		// same pass, up to maxBatch jobs.
	fill:
		for len(batch) < p.maxBatch {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break fill
				}
				batch = append(batch, j2)
			default:
				break fill
			}
		}
		vecs = vecs[:0]
		live := 0
		for _, b := range batch {
			if b.ctx.Err() != nil {
				// The requester has already gone; don't spend model time.
				b.err = b.ctx.Err()
				continue
			}
			vecs = append(vecs, b.vecs...)
			live++
		}
		p.metrics.batches.Add(1)
		p.metrics.batchedJobs.Add(int64(len(batch)))
		if live > 0 {
			if cap(probs) < len(vecs) {
				probs = make([]float64, len(vecs))
			}
			probs = probs[:len(vecs)]
			if err := p.forward(vecs, probs); err != nil {
				// The pass failed; every live job in the batch shares the
				// error and the worker keeps serving.
				for _, b := range batch {
					if b.err == nil {
						b.err = err
					}
				}
			} else {
				p.metrics.predictedVecs.Add(int64(len(vecs)))
				off := 0
				for _, b := range batch {
					if b.err != nil {
						continue
					}
					copy(b.probs, probs[off:off+len(b.vecs)])
					off += len(b.vecs)
				}
			}
		}
		for _, b := range batch {
			close(b.done)
		}
	}
}

// forward runs one model pass, converting panics into errors so a poisoned
// batch cannot take the worker (and with it the process) down.
func (p *pool) forward(vecs []features.Vector, probs []float64) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p.metrics.panicsRecovered.Add(1)
			err = fmt.Errorf("serve: model pass panicked: %v", rec)
		}
	}()
	if err := faultinject.Fire(siteForward); err != nil {
		return err
	}
	p.model.TakenProbabilities(vecs, probs)
	return nil
}
