package codegen

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/minic"
)

// value is an expression result: a temporary register, possibly spilled to a
// stack scratch slot under register pressure.
type value struct {
	reg     ir.Reg
	float   bool
	temp    bool // reg came from the temporary pool
	spilled bool
	slot    int64
}

// valReg materializes the value in a register, reloading a spilled value.
func (g *generator) valReg(v value) ir.Reg {
	if !v.spilled {
		return v.reg
	}
	panic("codegen: valReg on spilled value; use reload")
}

// reload brings a (possibly spilled) value back into a register.
func (g *generator) reload(v value) value {
	if !v.spilled {
		return v
	}
	r := g.pool(v.float).alloc()
	load := ir.OpLdq
	if v.float {
		load = ir.OpLdt
	}
	g.fb.Emit(ir.Instr{Op: load, Dst: r, A: ir.RegSP, Imm: v.slot})
	g.releaseScratch(v.slot)
	return value{reg: r, float: v.float, temp: true}
}

// spill stores a register value to a scratch slot and releases the register.
func (g *generator) spill(v *value) {
	if v.spilled || !v.temp {
		return
	}
	slot := g.scratchSlot()
	store := ir.OpStq
	if v.float {
		store = ir.OpStt
	}
	g.fb.Emit(ir.Instr{Op: store, A: ir.RegSP, B: v.reg, Imm: slot})
	g.pool(v.float).release(v.reg)
	v.spilled = true
	v.slot = slot
}

// maybeSpill spills v when its register pool is nearly exhausted, leaving
// room for the next sub-expression.
func (g *generator) maybeSpill(v *value) {
	if !v.spilled && v.temp && g.pool(v.float).avail() < 2 {
		g.spill(v)
	}
}

// freeVal returns the value's resources to the pools.
func (g *generator) freeVal(v value) {
	if v.spilled {
		g.releaseScratch(v.slot)
		return
	}
	if v.temp {
		g.pool(v.float).release(v.reg)
	}
}

// genExprVoid evaluates an expression for effect; void calls yield a dummy.
func (g *generator) genExprVoid(e minic.Expr) value {
	if call, ok := e.(*minic.CallExpr); ok && call.Type().IsVoid() {
		return g.genCall(call)
	}
	return g.genExpr(e)
}

// genExpr evaluates an expression into a fresh temporary register.
func (g *generator) genExpr(e minic.Expr) value {
	switch x := e.(type) {
	case *minic.IntLit:
		r := g.intPool.alloc()
		g.fb.LoadInt(r, x.Value)
		return value{reg: r, temp: true}
	case *minic.FloatLit:
		r := g.fltPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpLdiT, Dst: r, Imm: int64(math.Float64bits(x.Value))})
		return value{reg: r, float: true, temp: true}
	case *minic.NullLit:
		r := g.intPool.alloc()
		g.fb.LoadInt(r, 0)
		return value{reg: r, temp: true}
	case *minic.Ident:
		return g.genIdent(x)
	case *minic.UnExpr:
		return g.genUnary(x)
	case *minic.BinExpr:
		return g.genBinary(x)
	case *minic.IndexExpr:
		av := g.genAddr(x)
		return g.loadThrough(av, x.Type().IsFloat())
	case *minic.CallExpr:
		if x.Type().IsVoid() {
			panic(fmt.Sprintf("codegen: void call %q used as a value", x.Name))
		}
		return g.genCall(x)
	case *minic.CastExpr:
		return g.genCast(x)
	}
	panic(fmt.Sprintf("codegen: unknown expression %T", e))
}

func (g *generator) genIdent(x *minic.Ident) value {
	sym := x.Sym
	isFloat := sym.Type.IsFloat()
	if sym.Type.IsArray() {
		// Arrays decay to their base address.
		r := g.intPool.alloc()
		if sym.Global {
			g.fb.Lda(r, sym.Name, 0)
		} else {
			g.fb.OpImm(ir.OpAddQ, r, ir.RegSP, sym.FrameOff)
		}
		return value{reg: r, temp: true}
	}
	load := ir.OpLdq
	if isFloat {
		load = ir.OpLdt
	}
	if sym.Global {
		addr := g.intPool.alloc()
		g.fb.Lda(addr, sym.Name, 0)
		if isFloat {
			r := g.fltPool.alloc()
			g.fb.Emit(ir.Instr{Op: load, Dst: r, A: addr})
			g.intPool.release(addr)
			return value{reg: r, float: true, temp: true}
		}
		g.fb.Emit(ir.Instr{Op: load, Dst: addr, A: addr})
		return value{reg: addr, temp: true}
	}
	var r ir.Reg
	if isFloat {
		r = g.fltPool.alloc()
	} else {
		r = g.intPool.alloc()
	}
	g.fb.Emit(ir.Instr{Op: load, Dst: r, A: ir.RegSP, Imm: sym.FrameOff})
	return value{reg: r, float: isFloat, temp: true}
}

// loadThrough dereferences an address value.
func (g *generator) loadThrough(av value, isFloat bool) value {
	addr := g.valReg(av)
	if isFloat {
		r := g.fltPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpLdt, Dst: r, A: addr})
		g.freeVal(av)
		return value{reg: r, float: true, temp: true}
	}
	g.fb.Emit(ir.Instr{Op: ir.OpLdq, Dst: addr, A: addr})
	return av
}

// genAddr computes the address of an lvalue (or pointer expression) into an
// integer temporary.
func (g *generator) genAddr(e minic.Expr) value {
	switch x := e.(type) {
	case *minic.Ident:
		r := g.intPool.alloc()
		if x.Sym.Global {
			g.fb.Lda(r, x.Sym.Name, 0)
		} else {
			g.fb.OpImm(ir.OpAddQ, r, ir.RegSP, x.Sym.FrameOff)
		}
		return value{reg: r, temp: true}
	case *minic.UnExpr:
		if x.Op == minic.OpDeref {
			return g.genExpr(x.X)
		}
	case *minic.IndexExpr:
		base := g.genExpr(x.X)
		g.maybeSpill(&base)
		idx := g.genExpr(x.Idx)
		base = g.reload(base)
		// Elements are one word; no scaling needed.
		g.fb.Op3(ir.OpAddQ, base.reg, base.reg, idx.reg)
		g.freeVal(idx)
		return base
	}
	panic(fmt.Sprintf("codegen: genAddr of non-lvalue %T", e))
}

func (g *generator) genUnary(x *minic.UnExpr) value {
	switch x.Op {
	case minic.OpNeg:
		if lit, ok := x.X.(*minic.IntLit); ok && g.tgt.FoldConstants {
			r := g.intPool.alloc()
			g.fb.LoadInt(r, -lit.Value)
			return value{reg: r, temp: true}
		}
		v := g.genExpr(x.X)
		if v.float {
			g.fb.Emit(ir.Instr{Op: ir.OpFNeg, Dst: v.reg, A: v.reg})
			return v
		}
		g.fb.Op3(ir.OpSubQ, v.reg, ir.RegZero, v.reg)
		return v
	case minic.OpNot:
		v := g.genExpr(x.X)
		g.fb.OpImm(ir.OpCmpEq, v.reg, v.reg, 0)
		return v
	case minic.OpDeref:
		av := g.genExpr(x.X)
		return g.loadThrough(av, x.Type().IsFloat())
	case minic.OpAddr:
		return g.genAddr(x.X)
	}
	panic("codegen: unknown unary operator")
}

func (g *generator) genCast(x *minic.CastExpr) value {
	v := g.genExpr(x.X)
	from := x.X.Type().Decay()
	to := x.To
	switch {
	case from.IsFloat() && !to.IsFloat():
		r := g.intPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpCvtTQ, Dst: r, A: v.reg})
		g.freeVal(v)
		return value{reg: r, temp: true}
	case !from.IsFloat() && to.IsFloat():
		r := g.fltPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpCvtQT, Dst: r, A: v.reg})
		g.freeVal(v)
		return value{reg: r, float: true, temp: true}
	default:
		// Pointer/int reinterpretations are free.
		return v
	}
}

func (g *generator) genBinary(x *minic.BinExpr) value {
	if x.Op == minic.OpAnd || x.Op == minic.OpOr {
		return g.genLogicalValue(x)
	}
	if x.Op.IsComparison() {
		return g.genCompareValue(x)
	}
	if g.tgt.FoldConstants {
		if folded, ok := g.foldInt(x); ok {
			r := g.intPool.alloc()
			g.fb.LoadInt(r, folded)
			return value{reg: r, temp: true}
		}
	}
	isFloat := x.Type().IsFloat()
	// Immediate form for int ops with a literal right operand.
	if lit, ok := x.R.(*minic.IntLit); ok && !isFloat && intOpImmOK(x.Op) {
		v := g.genExpr(x.L)
		g.fb.OpImm(intOp(x.Op), v.reg, v.reg, lit.Value)
		return v
	}
	lv := g.genExpr(x.L)
	g.maybeSpill(&lv)
	rv := g.genExpr(x.R)
	lv = g.reload(lv)
	if isFloat {
		g.fb.Op3(floatOp(x.Op), lv.reg, lv.reg, rv.reg)
	} else {
		g.fb.Op3(intOp(x.Op), lv.reg, lv.reg, rv.reg)
	}
	g.freeVal(rv)
	return lv
}

// foldInt folds integer-literal arithmetic.
func (g *generator) foldInt(x *minic.BinExpr) (int64, bool) {
	l, lok := x.L.(*minic.IntLit)
	r, rok := x.R.(*minic.IntLit)
	if !lok || !rok {
		return 0, false
	}
	switch x.Op {
	case minic.OpAdd:
		return l.Value + r.Value, true
	case minic.OpSub:
		return l.Value - r.Value, true
	case minic.OpMul:
		return l.Value * r.Value, true
	case minic.OpDiv:
		if r.Value != 0 {
			return l.Value / r.Value, true
		}
	case minic.OpRem:
		if r.Value != 0 {
			return l.Value % r.Value, true
		}
	}
	return 0, false
}

func intOpImmOK(op minic.BinOpKind) bool {
	switch op {
	case minic.OpAdd, minic.OpSub, minic.OpMul, minic.OpDiv, minic.OpRem:
		return true
	}
	return false
}

func intOp(op minic.BinOpKind) ir.Op {
	switch op {
	case minic.OpAdd:
		return ir.OpAddQ
	case minic.OpSub:
		return ir.OpSubQ
	case minic.OpMul:
		return ir.OpMulQ
	case minic.OpDiv:
		return ir.OpDivQ
	case minic.OpRem:
		return ir.OpRemQ
	}
	panic("codegen: not an int ALU operator")
}

func floatOp(op minic.BinOpKind) ir.Op {
	switch op {
	case minic.OpAdd:
		return ir.OpAddT
	case minic.OpSub:
		return ir.OpSubT
	case minic.OpMul:
		return ir.OpMulT
	case minic.OpDiv:
		return ir.OpDivT
	}
	panic("codegen: not a float ALU operator")
}

// genCompareValue materializes a comparison result as 0/1 in an int temp.
func (g *generator) genCompareValue(x *minic.BinExpr) value {
	if x.L.Type().Decay().IsFloat() {
		ft, negate := g.genFloatCompare(x)
		r := g.intPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpCvtTQ, Dst: r, A: ft.reg})
		g.freeVal(ft)
		if negate {
			g.fb.OpImm(ir.OpCmpEq, r, r, 0)
		}
		return value{reg: r, temp: true}
	}
	rv, negate := g.genIntCompare(x)
	if negate {
		g.fb.OpImm(ir.OpCmpEq, rv.reg, rv.reg, 0)
	}
	return rv
}

// genIntCompare computes an integer/pointer comparison into an int register
// holding the *non-negated* compare; negate reports whether the caller must
// invert it (used for !=).
func (g *generator) genIntCompare(x *minic.BinExpr) (value, bool) {
	op, swap, negate := intCmpPlan(x.Op)
	l, r := x.L, x.R
	if swap {
		l, r = r, l
	}
	// Immediate form for literal right operands.
	if lit, ok := r.(*minic.IntLit); ok {
		lv := g.genExpr(l)
		g.fb.OpImm(op, lv.reg, lv.reg, lit.Value)
		return lv, negate
	}
	if _, ok := r.(*minic.NullLit); ok {
		lv := g.genExpr(l)
		g.fb.OpImm(op, lv.reg, lv.reg, 0)
		return lv, negate
	}
	lv := g.genExpr(l)
	g.maybeSpill(&lv)
	rv := g.genExpr(r)
	lv = g.reload(lv)
	g.fb.Op3(op, lv.reg, lv.reg, rv.reg)
	g.freeVal(rv)
	return lv, negate
}

// intCmpPlan maps a source comparison onto the Alpha's three integer compare
// opcodes: op, whether operands swap, and whether the result is negated.
func intCmpPlan(op minic.BinOpKind) (ir.Op, bool, bool) {
	switch op {
	case minic.OpEq:
		return ir.OpCmpEq, false, false
	case minic.OpNe:
		return ir.OpCmpEq, false, true
	case minic.OpLt:
		return ir.OpCmpLt, false, false
	case minic.OpLe:
		return ir.OpCmpLe, false, false
	case minic.OpGt:
		return ir.OpCmpLt, true, false
	case minic.OpGe:
		return ir.OpCmpLe, true, false
	}
	panic("codegen: not a comparison")
}

// genFloatCompare computes a float comparison into a float register (0.0 or
// 1.0, Alpha style); negate reports whether the sense is inverted.
func (g *generator) genFloatCompare(x *minic.BinExpr) (value, bool) {
	var op ir.Op
	swap, negate := false, false
	switch x.Op {
	case minic.OpEq:
		op = ir.OpCmpTEq
	case minic.OpNe:
		op, negate = ir.OpCmpTEq, true
	case minic.OpLt:
		op = ir.OpCmpTLt
	case minic.OpLe:
		op = ir.OpCmpTLe
	case minic.OpGt:
		op, swap = ir.OpCmpTLt, true
	case minic.OpGe:
		op, swap = ir.OpCmpTLe, true
	default:
		panic("codegen: not a comparison")
	}
	l, r := x.L, x.R
	if swap {
		l, r = r, l
	}
	lv := g.genExpr(l)
	g.maybeSpill(&lv)
	rv := g.genExpr(r)
	lv = g.reload(lv)
	g.fb.Op3(op, lv.reg, lv.reg, rv.reg)
	g.freeVal(rv)
	return lv, negate
}

// genLogicalValue materializes a short-circuit && / || as 0/1.
func (g *generator) genLogicalValue(x *minic.BinExpr) value {
	r := g.intPool.alloc()
	done := g.fb.NewBlockDetached()
	g.fb.LoadInt(r, 0)
	g.genCondBranch(x, done, false)
	g.fb.LoadInt(r, 1)
	g.fb.Place(done)
	g.fb.SetBlock(done)
	return value{reg: r, temp: true}
}
