package hwsim

import (
	"math"

	"repro/internal/ir"
)

// Taxonomy is a TraceSink computing the branch-predictability taxonomy of
// one execution: per-site outcome entropy and bias, lag-1 self-correlation
// (does a branch repeat its own last outcome?), and global correlation
// (does it agree with the immediately preceding dynamic branch, whichever
// site that was?). Everything is streamed — per site it keeps counts and
// one bit of history, never the trace.
type Taxonomy struct {
	Refs  []ir.BranchRef
	Stats []SiteStat

	last       []int8 // per-site last outcome: -1 unseen, else 0/1
	globalLast int8
}

// SiteStat accumulates one site's taxonomy counts.
type SiteStat struct {
	Exec, Taken int64
	// SameAsSelf counts outcomes equal to the site's previous outcome, out
	// of SelfSeen repeat executions.
	SameAsSelf, SelfSeen int64
	// SameAsPrev counts outcomes equal to the immediately preceding dynamic
	// branch anywhere in the program, out of PrevSeen.
	SameAsPrev, PrevSeen int64
}

// BeginTrace implements interp.TraceSink.
func (x *Taxonomy) BeginTrace(refs []ir.BranchRef) {
	x.Refs = refs
	x.Stats = make([]SiteStat, len(refs))
	x.last = make([]int8, len(refs))
	for i := range x.last {
		x.last[i] = -1
	}
	x.globalLast = -1
}

// TraceBranch implements interp.TraceSink.
func (x *Taxonomy) TraceBranch(site int32, taken bool) {
	s := &x.Stats[site]
	out := int8(0)
	if taken {
		out = 1
		s.Taken++
	}
	s.Exec++
	if prev := x.last[site]; prev >= 0 {
		s.SelfSeen++
		if prev == out {
			s.SameAsSelf++
		}
	}
	if x.globalLast >= 0 {
		s.PrevSeen++
		if x.globalLast == out {
			s.SameAsPrev++
		}
	}
	x.last[site] = out
	x.globalLast = out
}

// Entropy is the site's outcome entropy in bits (0 = perfectly biased,
// 1 = coin flip).
func (s *SiteStat) Entropy() float64 {
	if s.Exec == 0 {
		return 0
	}
	p := float64(s.Taken) / float64(s.Exec)
	return binEntropy(p)
}

// Bias is the frequency of the site's majority direction (0.5..1).
func (s *SiteStat) Bias() float64 {
	if s.Exec == 0 {
		return 0
	}
	p := float64(s.Taken) / float64(s.Exec)
	return math.Max(p, 1-p)
}

// SelfAgree is the fraction of executions repeating the site's previous
// outcome — the lag-1 self-correlation a 1-bit predictor exploits.
func (s *SiteStat) SelfAgree() float64 {
	if s.SelfSeen == 0 {
		return 0
	}
	return float64(s.SameAsSelf) / float64(s.SelfSeen)
}

// PrevAgree is the fraction of executions agreeing with the immediately
// preceding dynamic branch — the inter-branch correlation global-history
// predictors exploit.
func (s *SiteStat) PrevAgree() float64 {
	if s.PrevSeen == 0 {
		return 0
	}
	return float64(s.SameAsPrev) / float64(s.PrevSeen)
}

func binEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Summary is the execution-weighted program-level aggregate of the
// taxonomy: every dynamic branch contributes its site's statistic.
type Summary struct {
	Sites     int     // static sites that executed at least once
	Events    int64   // dynamic conditional branches
	Entropy   float64 // weighted mean outcome entropy (bits)
	Bias      float64 // weighted mean majority-direction frequency
	SelfAgree float64 // weighted mean lag-1 self-agreement
	PrevAgree float64 // weighted mean previous-branch agreement
}

// Summarize aggregates the per-site taxonomy, weighting each site by its
// execution count.
func (x *Taxonomy) Summarize() Summary {
	var sum Summary
	var wEnt, wBias, wSelf, wPrev float64
	for i := range x.Stats {
		s := &x.Stats[i]
		if s.Exec == 0 {
			continue
		}
		sum.Sites++
		sum.Events += s.Exec
		w := float64(s.Exec)
		wEnt += w * s.Entropy()
		wBias += w * s.Bias()
		wSelf += w * s.SelfAgree()
		wPrev += w * s.PrevAgree()
	}
	if sum.Events > 0 {
		n := float64(sum.Events)
		sum.Entropy = wEnt / n
		sum.Bias = wBias / n
		sum.SelfAgree = wSelf / n
		sum.PrevAgree = wPrev / n
	}
	return sum
}
