package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WriteHeader emits the # HELP / # TYPE preamble of one Prometheus metric
// family. typ is "counter", "gauge", or "histogram".
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteHistogram emits the _bucket/_sum/_count series of one histogram in
// Prometheus text exposition format. labels is the inner label list without
// braces (e.g. `endpoint="predict"`), or "" for none; the le label is
// appended to it per bucket. Bucket counts are cumulative and the +Inf
// bucket equals _count, as the format requires.
func WriteHistogram(w io.Writer, name, labels string, s Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < NumBuckets-1 {
			le = strconv.FormatFloat(BucketBound(i), 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}
