package corpus

import "repro/internal/ir"

// The SPEC92 C suite: alvinn, compress, ear, eqntott, espresso, gcc, li, sc.
// The analogs match the paper's Table 3 shapes: alvinn and ear are dominated
// by two or three branch sites (tight numeric loops, ~90-98% taken);
// eqntott's hot compare loop is the classic conditional-move target;
// gcc has the flattest distribution (hundreds of live sites).

func init() {
	register(Entry{
		Name: "alvinn", Suite: SuiteSPECC, Language: ir.LangC, Seed: 201,
		About: "neural net trainer: forward/backward dot-product loops; two branch sites cover >90% of executions, ~98% taken",
		Input: []int64{60},
		Source: `
// alvinn: train a tiny two-layer perceptron on synthetic road images.
float in[128];
float w1[640];   // 128 x 5
float wcol[128];
float hid[5];
float w2[5];

int main() {
	int epochs;
	int e;
	float out;
	float err;
	epochs = __input(0);
	int i;
	int j;
	for (i = 0; i < 640; i = i + 1) { w1[i] = 0.01; }
	for (j = 0; j < 5; j = j + 1) { w2[j] = 0.1; }
	err = 0.0;
	for (e = 0; e < epochs; e = e + 1) {
		float target;
		for (i = 0; i < 128; i = i + 1) {
			in[i] = (float) (__rand() % 100) / 100.0;
		}
		target = (float) (e % 2);
		// Forward pass: the dominant loops run through the BLAS-style
		// library kernel (the paper's library-subroutine story: the same
		// dot product runs inside many numeric programs).
		for (j = 0; j < 5; j = j + 1) {
			for (i = 0; i < 128; i = i + 1) { wcol[i] = w1[i * 5 + j]; }
			hid[j] = lib_vecdot(&in[0], &wcol[0], 128) / 128.0;
		}
		out = 0.0;
		for (j = 0; j < 5; j = j + 1) { out = out + hid[j] * w2[j]; }
		out = lib_clampf(out, 0.0 - 10.0, 10.0);
		// Backward pass.
		float delta;
		delta = (target - out) * 0.05;
		for (j = 0; j < 5; j = j + 1) {
			w2[j] = w2[j] + delta * hid[j];
			for (i = 0; i < 128; i = i + 1) {
				w1[i * 5 + j] = w1[i * 5 + j] + delta * w2[j] * in[i] * 0.1;
			}
		}
		err = err + (target - out) * (target - out);
	}
	__printf(err);
	return 0;
}
`})

	register(Entry{
		Name: "compress", Suite: SuiteSPECC, Language: ir.LangC, Seed: 202,
		About: "LZW compressor: hash-table code lookup with collision probing",
		Input: []int64{5200},
		Source: `
// compress: LZW over a synthetic byte stream with an open-addressing table,
// a code-width tracker, and an output bit-packing phase.
int codes[1024];
int keys[1024];
int outBits[512];

int codeWidth(int next) {
	if (next < 512) { return 9; }
	if (next < 1024) { return 10; }
	if (next < 2048) { return 11; }
	return 12;
}

int main() {
	int n;
	int i;
	int nextCode;
	int cur;
	int emitted;
	int resets;
	int bitPos;
	int ratioChecks;
	n = __input(0);
	for (i = 0; i < 1024; i = i + 1) { keys[i] = -1; }
	nextCode = 256;
	cur = __rand() % 16;
	emitted = 0;
	resets = 0;
	bitPos = 0;
	ratioChecks = 0;
	for (i = 1; i < n; i = i + 1) {
		int ch;
		int key;
		int h;
		int found;
		int probes;
		ch = __rand() % 16;
		key = cur * 256 + ch;
		h = lib_hash(key) % 1024;
		found = -1;
		probes = 0;
		while (keys[h] != -1 && probes < 1024) {
			if (keys[h] == key) {
				found = codes[h];
				break;
			}
			h = (h + 1) % 1024;
			probes = probes + 1;
		}
		if (found >= 0) {
			cur = found;
		} else {
			// Emit the current code into the bit stream.
			int w;
			w = codeWidth(nextCode);
			bitPos = bitPos + w;
			if (bitPos >= 64) {
				bitPos = bitPos - 64;
				outBits[emitted % 512] = cur;
			}
			emitted = emitted + 1;
			if (keys[h] == -1 && nextCode < 1100) {
				keys[h] = key;
				codes[h] = nextCode;
				nextCode = nextCode + 1;
			}
			cur = ch;
		}
		// Compression-ratio check, like compress's block mode.
		if (i % 256 == 0) {
			ratioChecks = ratioChecks + 1;
			if (emitted * 3 > i) {
				int j;
				for (j = 0; j < 1024; j = j + 1) { keys[j] = -1; }
				nextCode = 256;
				resets = resets + 1;
			}
		}
	}
	__print(emitted);
	__print(nextCode);
	__print(resets);
	__print(ratioChecks);
	__print(outBits[0]);
	return 0;
}
`})

	register(Entry{
		Name: "ear", Suite: SuiteSPECC, Language: ir.LangC, Seed: 203,
		About: "human ear model: cochlear filterbank cascade, pure FP loops, ~90% taken",
		Input: []int64{300},
		Source: `
// ear: run a cascade of second-order filter sections over samples.
float state1[32];
float state2[32];
float coefA[32];
float coefB[32];

int main() {
	int samples;
	int s;
	float energy;
	samples = __input(0);
	int k;
	for (k = 0; k < 32; k = k + 1) {
		coefA[k] = 0.5 + (float) k / 100.0;
		coefB[k] = 0.3 - (float) k / 200.0;
		state1[k] = 0.0;
		state2[k] = 0.0;
	}
	energy = 0.0;
	int peaks;
	int saturations;
	float agc;
	peaks = 0;
	saturations = 0;
	agc = 1.0;
	for (s = 0; s < samples; s = s + 1) {
		float x;
		float best;
		int bestK;
		x = (float) (__rand() % 200 - 100) / 100.0 * agc;
		best = 0.0;
		bestK = 0;
		for (k = 0; k < 32; k = k + 1) {
			float y;
			y = coefA[k] * x - coefB[k] * state1[k] + 0.1 * state2[k];
			state2[k] = state1[k];
			state1[k] = y;
			x = y * 0.9;
			// Half-wave rectification: the model's one data branch.
			if (y > 0.0) { energy = energy + y; }
			// Peak channel tracking.
			if (y > best) {
				best = y;
				bestK = k;
			}
		}
		if (bestK > 16) { peaks = peaks + 1; }
		// Automatic gain control with saturation detection.
		if (best > 2.0) {
			agc = lib_maxf(agc * 0.95, 0.05);
			saturations = saturations + 1;
		} else if (best < 0.2) {
			agc = lib_minf(agc * 1.01, 4.0);
		}
	}
	__printf(energy);
	__print(peaks);
	__print(saturations);
	return 0;
}
`})

	register(Entry{
		Name: "eqntott", Suite: SuiteSPECC, Language: ir.LangC, Seed: 204,
		About: "truth-table generator: dominated by a bit-vector comparison loop of short conditionals — the conditional-move showcase (90% taken, Q-50 of 2)",
		Input: []int64{700, 24},
		Source: `
// eqntott: compare pterm bit vectors, the cmppt inner loop.
int pta[64];
int ptb[64];

int cmppt(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int a;
		int b;
		a = pta[i];
		b = ptb[i];
		if (a != b) {
			if (a < b) { return -1; }
			return 1;
		}
	}
	return 0;
}

int main() {
	int pairs;
	int width;
	int p;
	int less;
	int eq;
	int greater;
	pairs = __input(0);
	width = __input(1);
	less = 0;
	eq = 0;
	greater = 0;
	for (p = 0; p < pairs; p = p + 1) {
		int i;
		for (i = 0; i < width; i = i + 1) {
			pta[i] = __rand() % 2;
			ptb[i] = pta[i];
			// Vectors differ rarely and late, so the compare loop runs long.
			if (__rand() % 100 < 9) { ptb[i] = 1 - ptb[i]; }
		}
		int c;
		c = lib_sign(cmppt(width));
		if (c < 0) { less = less + 1; }
		else if (c == 0) { eq = eq + 1; }
		else { greater = greater + 1; }
	}
	lib_report(less);
	lib_report(eq);
	lib_report(greater);
	lib_report(lib_checksum(&pta[0], width));
	return 0;
}
`})

	register(Entry{
		Name: "espresso", Suite: SuiteSPECC, Language: ir.LangC, Seed: 205,
		About: "logic minimizer: cube cover containment and merging over bit matrices; the Table 7 compiler-sensitivity program",
		Input: []int64{40, 30, 10},
		Source: `
// espresso: minimize a random cover of cubes over a boolean space.
int cover[2048];  // cubes x vars, values 0,1,2 (dont-care)
int ncubes;
int nvars;

int contains(int a, int b) {
	// Does cube a contain cube b?
	int v;
	for (v = 0; v < nvars; v = v + 1) {
		int av;
		int bv;
		av = cover[a * nvars + v];
		bv = cover[b * nvars + v];
		if (av != 2 && av != bv) { return 0; }
	}
	return 1;
}

int distance(int a, int b) {
	int v;
	int d;
	d = 0;
	for (v = 0; v < nvars; v = v + 1) {
		int av;
		int bv;
		av = cover[a * nvars + v];
		bv = cover[b * nvars + v];
		if (av != 2 && bv != 2 && av != bv) { d = d + 1; }
	}
	return d;
}

int main() {
	int rounds;
	int r;
	int removed;
	int merged;
	ncubes = __input(1);
	nvars = __input(2);
	rounds = __input(0);
	removed = 0;
	merged = 0;
	for (r = 0; r < rounds; r = r + 1) {
		int i;
		int j;
		for (i = 0; i < ncubes * nvars; i = i + 1) {
			int x;
			x = __rand() % 10;
			if (x < 4) { cover[i] = 0; }
			else if (x < 8) { cover[i] = 1; }
			else { cover[i] = 2; }
		}
		// Single-cube containment sweep; identical cubes are found with the
		// library comparator first (the memcmp fast path).
		for (i = 0; i < ncubes; i = i + 1) {
			for (j = 0; j < ncubes; j = j + 1) {
				if (i != j) {
					if (lib_memcmp(&cover[i * nvars], &cover[j * nvars], nvars) == 0) {
						removed = removed + 1;
					} else if (contains(i, j)) {
						removed = removed + 1;
					}
				}
			}
		}
		// Distance-1 merge detection.
		for (i = 0; i < ncubes; i = i + 1) {
			for (j = i + 1; j < ncubes; j = j + 1) {
				if (distance(i, j) == 1) { merged = merged + 1; }
			}
		}
	}
	lib_report(removed);
	lib_report(merged);
	lib_report(lib_checksum(&cover[0], ncubes * nvars));
	return 0;
}
`})

	register(Entry{
		Name: "gcc", Suite: SuiteSPECC, Language: ir.LangC, Seed: 206,
		About: "optimizing compiler: many distinct passes each with its own branches — the flattest site distribution of the suite (Q-50 of 245 in the paper)",
		Input: []int64{110},
		Source: `
// gcc: run a pipeline of small compiler-ish passes over random IR arrays.
int code[256];
int use[256];
int def[256];
int n;

void genFunction(int size) {
	int i;
	n = size;
	for (i = 0; i < n; i = i + 1) {
		code[i] = __rand() % 12;
		use[i] = __rand() % 16;
		def[i] = __rand() % 16;
	}
}

int constantFold() {
	int i;
	int folded;
	folded = 0;
	for (i = 0; i + 1 < n; i = i + 1) {
		if (code[i] == 0 && code[i + 1] == 0) {
			code[i + 1] = 11;
			folded = folded + 1;
		} else if (code[i] == 1 && code[i + 1] == 2) {
			folded = folded + 1;
		}
	}
	return folded;
}

int deadCode() {
	int i;
	int j;
	int dead;
	dead = 0;
	for (i = 0; i < n; i = i + 1) {
		int used;
		used = 0;
		for (j = i + 1; j < n && j < i + 8; j = j + 1) {
			if (use[j] == def[i]) { used = 1; }
		}
		if (used == 0 && code[i] != 9) { dead = dead + 1; }
	}
	return dead;
}

int cse() {
	int i;
	int j;
	int hits;
	hits = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = i + 1; j < n && j < i + 6; j = j + 1) {
			if (code[i] == code[j] && use[i] == use[j]) {
				hits = hits + 1;
				break;
			}
		}
	}
	return hits;
}

int regalloc() {
	int pressure;
	int spills;
	int i;
	int maxPressure;
	pressure = 0;
	spills = 0;
	maxPressure = 0;
	for (i = 0; i < n; i = i + 1) {
		if (code[i] < 6) { pressure = pressure + 1; }
		if (code[i] >= 9) { pressure = pressure - 1; }
		if (pressure > 8) {
			spills = spills + 1;
			pressure = pressure - 2;
		}
		pressure = lib_max(pressure, 0);
		maxPressure = lib_max(maxPressure, pressure);
		if (lib_bitcount(use[i]) > 2) {
			spills = spills + 1;
		}
	}
	return spills + maxPressure;
}

int schedule() {
	int i;
	int stalls;
	stalls = 0;
	for (i = 1; i < n; i = i + 1) {
		if (use[i] == def[i - 1]) {
			stalls = stalls + 1;
		} else if (code[i] == code[i - 1] && code[i] > 7) {
			stalls = stalls + 1;
		}
	}
	return stalls;
}

int peephole() {
	int i;
	int wins;
	wins = 0;
	for (i = 0; i + 1 < n; i = i + 1) {
		if (code[i] == 3 && code[i + 1] == 4) { wins = wins + 1; }
		if (code[i] == 5 && def[i] == use[i + 1] && code[i + 1] == 5) { wins = wins + 1; }
	}
	return wins;
}

int main() {
	int funcs;
	int f;
	int total;
	funcs = __input(0);
	total = 0;
	for (f = 0; f < funcs; f = f + 1) {
		genFunction(60 + __rand() % 100);
		total = total + constantFold();
		total = total + deadCode();
		total = total + cse();
		total = total + regalloc();
		total = total + schedule();
		total = total + peephole();
	}
	__print(total);
	return 0;
}
`})

	register(Entry{
		Name: "li", Suite: SuiteSPECC, Language: ir.LangC, Seed: 207,
		About: "xlisp interpreter: recursive eval over cons trees with type dispatch; under half the branches taken",
		Input: []int64{110, 7},
		Source: `
// li: evaluate random s-expression trees. Node: [tag, a, b].
// tags: 0 number, 1 add, 2 sub, 3 mul, 4 if, 5 let-ish
int cells;

int* mk(int tag, int a, int b) {
	int* p;
	p = __alloc(3);
	p[0] = tag;
	p[1] = a;
	p[2] = b;
	cells = cells + 1;
	return p;
}

int* gen(int depth) {
	if (depth <= 0 || __rand() % 100 < 30) {
		return mk(0, __rand() % 100, 0);
	}
	int tag;
	tag = 1 + __rand() % 5;
	return mk(tag, (int) gen(depth - 1), (int) gen(depth - 1));
}

int eval(int* e) {
	int tag;
	if (e == null) { return 0; }
	tag = e[0];
	if (tag == 0) { return e[1]; }
	if (tag == 1) { return eval((int*) e[1]) + eval((int*) e[2]); }
	if (tag == 2) { return eval((int*) e[1]) - eval((int*) e[2]); }
	if (tag == 3) { return lib_wrap(eval((int*) e[1]) % 1009 * (eval((int*) e[2]) % 32), 1009); }
	if (tag == 4) {
		if (eval((int*) e[1]) > 0) { return eval((int*) e[2]); }
		return 0 - eval((int*) e[2]);
	}
	// let-ish: evaluate binding then body.
	int v;
	v = eval((int*) e[1]);
	return v + lib_abs(eval((int*) e[2])) % 97;
}

int main() {
	int exprs;
	int depth;
	int i;
	int total;
	exprs = __input(0);
	depth = __input(1);
	cells = 0;
	total = 0;
	for (i = 0; i < exprs; i = i + 1) {
		total = total + eval(gen(depth)) % 10007;
	}
	__print(total);
	__print(cells);
	return 0;
}
`})

	register(Entry{
		Name: "sc", Suite: SuiteSPECC, Language: ir.LangC, Seed: 208,
		About: "spreadsheet: iterative recalculation over a dependency grid",
		Input: []int64{26, 40},
		Source: `
// sc: recalculate a spreadsheet whose cells reference earlier cells.
int val[1024];
int dep1[1024];
int dep2[1024];
int op[1024];

int main() {
	int cellsN;
	int passes;
	int i;
	int p;
	int changedTotal;
	passes = __input(0);
	cellsN = __input(1) * 16;
	for (i = 0; i < cellsN; i = i + 1) {
		val[i] = __rand() % 100;
		if (i > 1) {
			dep1[i] = __rand() % i;
			dep2[i] = __rand() % i;
		} else {
			dep1[i] = 0;
			dep2[i] = 0;
		}
		op[i] = __rand() % 4;
	}
	changedTotal = 0;
	for (p = 0; p < passes; p = p + 1) {
		int changed;
		changed = 0;
		for (i = 2; i < cellsN; i = i + 1) {
			int nv;
			if (op[i] == 0) { nv = lib_clamp(val[dep1[i]] + val[dep2[i]], 0 - 100000, 100000); }
			else if (op[i] == 1) { nv = val[dep1[i]] - val[dep2[i]]; }
			else if (op[i] == 2) { nv = lib_max(val[dep1[i]], val[dep2[i]]); }
			else { nv = val[i]; }
			if (nv != val[i]) {
				val[i] = nv;
				changed = changed + 1;
			}
		}
		changedTotal = changedTotal + changed;
		if (changed == 0) { break; }
	}
	__print(changedTotal);
	__print(val[cellsN - 1]);
	return 0;
}
`})
}
