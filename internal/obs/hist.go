// Package obs is the service observability layer: lock-cheap fixed-bucket
// latency histograms, per-request trace spans with a bounded in-memory ring,
// and Prometheus text exposition helpers. Everything on the hot path is a
// handful of atomic operations — no locks, no allocation — so the
// instrumentation can ride inside the serving loop without perturbing the
// latencies it measures.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets, including the +Inf
// overflow bucket.
const NumBuckets = 28

// BucketBound returns the inclusive upper bound of bucket i in microseconds:
// log-spaced powers of two from 1µs (bucket 0) through 2^26µs ≈ 67s
// (bucket 26), with bucket 27 catching everything above as +Inf.
func BucketBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(1) << i)
}

// bucketOf maps an observation (microseconds) to its bucket: the smallest i
// with v <= 2^i.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket log-spaced latency histogram safe for
// concurrent writers. Observe is three atomic adds; readers take a Snapshot
// and compute quantiles from it. The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value (in microseconds; negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in microseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the histogram state for consistent-enough reading: each
// cell is loaded atomically, so a snapshot taken under concurrent writes is
// a valid histogram even if it straddles a few in-flight observations.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Quantile is shorthand for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot is a point-in-time copy of a Histogram.
type Snapshot struct {
	Counts [NumBuckets]int64
	Sum    int64
	Count  int64
}

// Quantile extracts the q-quantile from the bucket counts, in microseconds,
// interpolating linearly within the bucket that holds the rank (the
// Prometheus histogram_quantile rule). q is clamped to [0, 1]: q <= 0
// reports the lower bound of the lowest occupied bucket and q = 1 the upper
// bound of the highest. Observations that landed in the +Inf bucket report
// that bucket's finite lower bound (2^26µs). Returns 0 for an empty
// histogram.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = BucketBound(i - 1)
			}
			if i == NumBuckets-1 {
				return lower // +Inf bucket: report its finite lower bound
			}
			upper := BucketBound(i)
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return BucketBound(NumBuckets - 2)
}

// Mean returns the mean observation in microseconds (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
