package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// chaosSource is a small MinC program the chaos tests submit over the
// source path, exercising the cache and compile fault sites.
const chaosSource = `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 40; i = i + 1) {
		if (i % 4 == 0) { s = s + 2; } else { s = s + 1; }
	}
	return s;
}`

// offlineVectors recomputes the feature vectors the server extracts for a
// source submission, so tests can derive expected answers independently.
func offlineVectors(t *testing.T, name, src string) []features.Vector {
	t.Helper()
	ast, err := minic.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return features.ExtractAll(features.Collect(prog))
}

// degradedReference computes the exact degraded-mode answer for vecs: the
// vector-form Dempster-Shafer combination is a pure function, so the server
// must reproduce these floats bit-for-bit.
func degradedReference(vecs []features.Vector) []float64 {
	d := heuristics.NewDSHCBallLarus()
	out := make([]float64, len(vecs))
	for i := range vecs {
		out[i], _ = d.TakenProbabilityFromVector(&vecs[i])
	}
	return out
}

// checkPredictions verifies a 200 response against the offline model and
// the offline degraded reference: non-degraded answers must be bit-identical
// to the model, degraded answers bit-identical to the heuristic fallback.
func checkPredictions(t *testing.T, pr *PredictResponse, model []float64, degraded []float64) {
	t.Helper()
	want := model
	if pr.Degraded {
		want = degraded
	}
	if len(pr.Predictions) != len(want) {
		t.Errorf("%d predictions, want %d", len(pr.Predictions), len(want))
		return
	}
	for i, p := range pr.Predictions {
		if p.Probability != want[i] {
			t.Errorf("prediction %d (degraded=%v): %v, want %v",
				i, pr.Degraded, p.Probability, want[i])
			return
		}
	}
}

func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosMixedFaultsUnderLoad is the main chaos run: a seeded injector
// fires errors, latency, and panics at every registered fault site while
// concurrent clients hammer both the vector and source paths. The contract:
// the process never dies, every 200 is either bit-identical to the offline
// model or correctly flagged degraded with the exact heuristic answer, the
// server still serves clean bit-identical answers once faults stop, drain
// completes even with the injector active, and no goroutines leak.
func TestChaosMixedFaultsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in short mode")
	}
	model, data := testModel(t)
	vecs := data[0].Vectors[:12]
	offlineModel := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offlineModel)
	offlineDegraded := degradedReference(vecs)

	srcVecs := offlineVectors(t, "chaos", chaosSource)
	srcModel := make([]float64, len(srcVecs))
	model.TakenProbabilities(srcVecs, srcModel)
	srcDegraded := degradedReference(srcVecs)

	baseline := runtime.NumGoroutine()
	s, err := New(Config{Model: model, Workers: 2, MaxBatch: 4, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Every registered site gets all three fault kinds.
	sites := faultinject.Sites()
	if len(sites) < 4 {
		t.Fatalf("only %d registered fault sites: %v", len(sites), sites)
	}
	var rules []faultinject.Rule
	for _, site := range sites {
		rules = append(rules,
			faultinject.Rule{Site: site, Kind: faultinject.Error, Rate: 0.15},
			faultinject.Rule{Site: site, Kind: faultinject.Latency, Delay: 2 * time.Millisecond, Rate: 0.10},
			faultinject.Rule{Site: site, Kind: faultinject.Panic, Rate: 0.05},
		)
	}
	inj := faultinject.New(42, rules...)
	deactivate := faultinject.Activate(inj)
	defer deactivate()

	vecBody, err := json.Marshal(PredictRequest{ID: "v", Vectors: vectorValues(vecs)})
	if err != nil {
		t.Fatal(err)
	}
	srcBody, err := json.Marshal(PredictRequest{ID: "s", Name: "chaos", Source: chaosSource})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 24, 6
	var (
		wg          sync.WaitGroup
		ok200       atomic.Int64
		degraded200 atomic.Int64
		failed      atomic.Int64
	)
	httpc := &http.Client{Timeout: 30 * time.Second}

	// Artifact-cache traffic rides along so the artifact.load/store sites
	// face the same chaos: an injected fault must degrade to a miss or a
	// skipped write (an injected panic surfaces as *faultinject.Panicked),
	// and a successful load must never observe a wrong record.
	acache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := &artifact.Record{Profile: &interp.Profile{Program: "chaos", Insns: 1}}
		step := func(f func()) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*faultinject.Panicked); !ok {
						panic(r)
					}
				}
			}()
			f()
		}
		for i := 0; i < 150; i++ {
			step(func() { _ = acache.Store("cafe", rec) })
			step(func() {
				if got, ok := acache.Load("cafe"); ok && got.Profile.Program != "chaos" {
					t.Error("artifact cache served a wrong record under chaos")
				}
			})
		}
	}()

	// Model-registry reload churn rides along so the cluster.reload site
	// faces the same chaos: reloads re-install the same weights (answers
	// stay bit-identical across versions), injected errors fail the swap
	// atomically, and injected panics surface as *faultinject.Panicked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reload := func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*faultinject.Panicked); !ok {
						panic(r)
					}
				}
			}()
			_, _ = s.Reload(model)
		}
		for i := 0; i < 25; i++ {
			reload()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				body, m, d := vecBody, offlineModel, offlineDegraded
				if (c+r)%2 == 1 {
					body, m, d = srcBody, srcModel, srcDegraded
				}
				resp, err := httpc.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: transport: %v", c, err)
					return
				}
				var pr PredictResponse
				decErr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					// Injected failure surfaced as 5xx — allowed; the server
					// must just survive it.
					failed.Add(1)
					continue
				}
				if decErr != nil {
					t.Errorf("client %d: decode: %v", c, decErr)
					return
				}
				checkPredictions(t, &pr, m, d)
				ok200.Add(1)
				if pr.Degraded {
					degraded200.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	if degraded200.Load() == 0 {
		t.Error("chaos run never exercised degraded mode")
	}
	for _, site := range sites {
		if inj.Hits(site) == 0 {
			t.Errorf("site %s was never reached", site)
		} else if inj.Fired(site) == 0 {
			t.Errorf("site %s never injected a fault (%d hits)", site, inj.Hits(site))
		}
	}

	// Faults off: the very next answers are clean and bit-identical.
	deactivate()
	resp, pr := postPredict(t, ts.URL, PredictRequest{ID: "clean", Vectors: vectorValues(vecs)})
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("post-chaos request: status %d degraded %v", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)

	// Drain must complete even with the injector active again.
	faultinject.Activate(inj)
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
	deactivate()

	ts.Close()
	httpc.CloseIdleConnections()
	assertNoGoroutineLeak(t, baseline)
	t.Logf("chaos: %d ok (%d degraded), %d failed; fired per site: %v",
		ok200.Load(), degraded200.Load(), failed.Load(), func() map[string]int64 {
			m := map[string]int64{}
			for _, site := range sites {
				m[site] = inj.Fired(site)
			}
			return m
		}())
}

// TestChaosPanicAtCompileKeepsServing: an injected panic in the compile
// path becomes a 500 for that request only; the process keeps serving and
// the recovery is counted.
func TestChaosPanicAtCompileKeepsServing(t *testing.T) {
	s, ts := testServer(t, Config{})
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: "serve.compile", Kind: faultinject.Panic, Hits: []int64{1},
	}))
	defer deactivate()

	req := PredictRequest{Name: "chaos", Source: chaosSource}
	resp, _ := postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request: status %d, want 500", resp.StatusCode)
	}
	if got := s.metrics.panicsRecovered.Load(); got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
	resp, pr := postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("follow-up request: status %d degraded %v — server did not survive the panic",
			resp.StatusCode, pr.Degraded)
	}
}

// TestChaosForwardFailureDegrades: when every model pass fails, responses
// come back 200 with degraded=true and the exact heuristic answers.
func TestChaosForwardFailureDegrades(t *testing.T) {
	model, data := testModel(t)
	s, ts := testServer(t, Config{})
	vecs := data[0].Vectors[:8]
	offlineModel := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offlineModel)
	offlineDegraded := degradedReference(vecs)

	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Error, Rate: 1,
	}))
	req := PredictRequest{ID: "deg", Vectors: vectorValues(vecs)}
	resp, pr := postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || !pr.Degraded {
		deactivate()
		t.Fatalf("status %d degraded %v, want degraded 200", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)
	if s.metrics.degraded.Load() == 0 {
		t.Error("degraded counter not incremented")
	}

	// Faults off: the same request is answered by the model again.
	deactivate()
	resp, pr = postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("recovered request: status %d degraded %v", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)
}

// TestChaosWorkerPanicSurvives: a panic inside the worker's model pass is
// contained to that batch — the job degrades, the worker keeps running.
func TestChaosWorkerPanicSurvives(t *testing.T) {
	model, data := testModel(t)
	s, ts := testServer(t, Config{Workers: 1, MaxBatch: 1})
	vecs := data[0].Vectors[:4]
	offlineModel := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offlineModel)
	offlineDegraded := degradedReference(vecs)

	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Panic, Hits: []int64{1},
	}))
	defer deactivate()

	req := PredictRequest{Vectors: vectorValues(vecs)}
	resp, pr := postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || !pr.Degraded {
		t.Fatalf("panicked batch: status %d degraded %v, want degraded 200", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)
	if s.metrics.panicsRecovered.Load() != 1 {
		t.Fatalf("panics recovered = %d, want 1", s.metrics.panicsRecovered.Load())
	}
	// The single worker must still be alive to serve this.
	resp, pr = postPredict(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("follow-up: status %d degraded %v — worker died", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)
}

// TestChaosNoDegradeSurfacesErrors: with the fallback disabled, model-path
// failures surface as 5xx instead of silently degraded answers.
func TestChaosNoDegradeSurfacesErrors(t *testing.T) {
	_, data := testModel(t)
	_, ts := testServer(t, Config{NoDegrade: true})
	deactivate := faultinject.Activate(faultinject.New(1, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Error, Rate: 1,
	}))
	defer deactivate()

	resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:2])})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 with NoDegrade", resp.StatusCode)
	}
}

// TestChaosMetricsHealthzUnderLoadAndDrain: the observability endpoints
// stay correct while the service is overloaded (admission control shedding)
// and while it drains, and the resilience counters are exposed.
func TestChaosMetricsHealthzUnderLoadAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in short mode")
	}
	_, data := testModel(t)
	// A tiny admission window so concurrent load actually sheds.
	s, ts := testServer(t, Config{Workers: 1, MaxBatch: 1, MaxInflight: 2, RequestTimeout: time.Minute})
	vecs := data[0].Vectors
	body, err := json.Marshal(PredictRequest{Vectors: vectorValues(vecs)})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var load sync.WaitGroup
	httpc := &http.Client{Timeout: 2 * time.Minute}
	for c := 0; c < 8; c++ {
		load.Add(1)
		go func() {
			defer load.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := httpc.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server shutting down
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("predict under load: status %d", resp.StatusCode)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
					return
				}
			}
		}()
	}

	// Observability endpoints under concurrent load.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, path := range []string{"/metrics", "/healthz"} {
			resp, err := httpc.Get(ts.URL + path)
			if err != nil {
				t.Fatalf("%s under load: %v", path, err)
			}
			data, _ := readAll(resp)
			if path == "/metrics" {
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("/metrics status %d", resp.StatusCode)
				}
				for _, counter := range []string{
					"espserve_shed_total", "espserve_degraded_total",
					"espserve_panics_recovered_total", "espserve_budget_rejects_total",
				} {
					if !strings.Contains(data, counter) {
						t.Fatalf("/metrics missing %s:\n%s", counter, data)
					}
				}
			}
		}
	}

	// Begin the drain mid-load: healthz flips to draining/503, metrics stays
	// up, and the drain itself completes.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(drainCtx) }()
	defer func() {
		close(stop)
		load.Wait()
	}()

	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp, err := httpc.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Errorf("healthz during drain: status %d body %+v", resp.StatusCode, hz)
	}
	resp, err = httpc.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics during drain: status %d", resp.StatusCode)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.metrics.shed.Load() == 0 {
		t.Error("admission control never shed under overload")
	}
	_ = metricsBody
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// TestPredictBudgetRejected: adversarially nested source is refused with
// 422 and counted, instead of blowing the parser stack.
func TestPredictBudgetRejected(t *testing.T) {
	s, ts := testServer(t, Config{})
	deep := "int main() { return " + strings.Repeat("(", 400) + "1" + strings.Repeat(")", 400) + "; }"
	resp, _ := postPredict(t, ts.URL, PredictRequest{Name: "deep", Source: deep})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if s.metrics.budgetRejects.Load() != 1 {
		t.Fatalf("budget rejects = %d, want 1", s.metrics.budgetRejects.Load())
	}
	// Guards off: the same source is accepted.
	_, ts2 := testServer(t, Config{MaxParseDepth: -1, MaxCFGBlocks: -1})
	resp, pr := postPredict(t, ts2.URL, PredictRequest{Name: "deep", Source: deep})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unguarded server: status %d", resp.StatusCode)
	}
	_ = pr
}
