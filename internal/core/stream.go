package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ShardSource supplies a training corpus in shards, so a corpus far larger
// than the paper's 46 programs can be analyzed incrementally instead of
// being materialized in memory at once. Implementations must be
// deterministic: Load(i) returns the same examples, in the same order, on
// every call — the streaming trainer's bit-identical resume guarantee rests
// on it.
type ShardSource interface {
	// NumShards returns the shard count.
	NumShards() int
	// ShardID returns a stable identifier for shard i (program names, a
	// content hash — anything that changes when the shard's contents do).
	// It binds checkpoints: a resumed run with a different ShardID ignores
	// the stale checkpoint and recomputes.
	ShardID(i int) string
	// Load analyzes shard i and returns its training examples in
	// deterministic order.
	Load(i int) ([]Example, error)
}

// StreamStats reports what a streaming training run did.
type StreamStats struct {
	// Shards is the total shard count.
	Shards int
	// Resumed counts shards restored from checkpoints instead of analyzed.
	Resumed int
	// Examples is the pooled training-example count.
	Examples int
}

// shardCheckpoint is the on-disk record of one completed shard: the
// extracted examples, bound to the exact configuration, shard identity, and
// shard order that produced them.
type shardCheckpoint struct {
	ConfigHash string    `json:"config_hash"`
	Examples   []Example `json:"examples"`
}

// streamHash fingerprints everything that determines the pooled example
// stream: the fully-defaulted configuration and the ordered shard IDs.
func streamHash(src ShardSource, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "espstream-1\x00%+v\n", cfg)
	for i := 0; i < src.NumShards(); i++ {
		fmt.Fprintf(h, "%s\x00", src.ShardID(i))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TrainStreaming fits an ESP model on a sharded corpus with crash safety:
// each shard's extracted examples are checkpointed to dir as they complete,
// and a rerun after a kill resumes from the checkpoints instead of
// re-analyzing finished shards. Because shard extraction and training are
// both deterministic, a resumed run produces weights bit-identical to an
// uninterrupted one. dir == "" disables checkpointing (the run still
// streams shard by shard).
//
// ctx is checked between shards: on cancellation the shards completed so
// far remain checkpointed and ctx.Err() is returned.
func TrainStreaming(ctx context.Context, src ShardSource, cfg Config, dir string) (*Model, *StreamStats, error) {
	cfg = cfg.withDefaults()
	var hash string
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, err
		}
		hash = streamHash(src, cfg)
	}
	stats := &StreamStats{Shards: src.NumShards()}
	var examples []Example
	for i := 0; i < src.NumShards(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		var path string
		if dir != "" {
			path = filepath.Join(dir, fmt.Sprintf("shard-%05d.json", i))
			if exs, ok := loadShardCheckpoint(path, hash); ok {
				examples = append(examples, exs...)
				stats.Resumed++
				continue
			}
		}
		exs, err := src.Load(i)
		if err != nil {
			return nil, nil, fmt.Errorf("core: stream shard %d: %w", i, err)
		}
		if dir != "" {
			cp := shardCheckpoint{ConfigHash: hash, Examples: exs}
			data, err := json.Marshal(cp)
			if err != nil {
				return nil, nil, fmt.Errorf("core: checkpoint shard %d: %w", i, err)
			}
			if err := writeAtomic(path, data); err != nil {
				return nil, nil, fmt.Errorf("core: checkpoint shard %d: %w", i, err)
			}
		}
		examples = append(examples, exs...)
	}
	stats.Examples = len(examples)
	return TrainExamples(examples, cfg), stats, nil
}

// loadShardCheckpoint returns the examples recorded at path if the file
// exists, parses, and carries the expected hash. Corrupt, partial, or stale
// checkpoints are treated as absent: the shard just recomputes.
func loadShardCheckpoint(path, wantHash string) ([]Example, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var cp shardCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.ConfigHash != wantHash {
		return nil, false
	}
	return cp.Examples, true
}

// writeAtomic lands data at path via a synced temp file and rename, so a
// kill mid-write leaves either no checkpoint or a complete one — never a
// torn file a resume could half-read.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".shard-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
