package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// --- /metrics exposition regression -----------------------------------------

// promSeries matches one Prometheus text-format sample line.
var promSeries = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// stableNames are the metric families the first serving PRs exposed; they
// must keep rendering under exactly these names.
var stableNames = []string{
	"espserve_requests_total",
	"espserve_request_errors_total",
	"espserve_request_latency_micros_total",
	"espserve_cache_hits_total",
	"espserve_cache_misses_total",
	"espserve_batches_total",
	"espserve_batched_jobs_total",
	"espserve_predicted_vectors_total",
	"espserve_inflight_requests",
	"espserve_drain_rejects_total",
	"espserve_request_timeouts_total",
	"espserve_shed_total",
	"espserve_degraded_total",
	"espserve_panics_recovered_total",
	"espserve_budget_rejects_total",
	// Cluster-mode families (PR 8): peer artifact-cache traffic, router
	// failover, and model-registry reloads render under these names even on
	// a single replica (zero-valued), so dashboards are cluster-shape
	// everywhere.
	"espserve_peer_hits_total",
	"espserve_peer_misses_total",
	"espserve_failover_total",
	"espserve_reloads_total",
}

// family maps a sample name to its metric family: histogram series names
// carry a _bucket/_sum/_count suffix on top of the family name.
func family(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestMetricsExpositionWellFormed drives real traffic and then parses the
// /metrics output line by line: every family has # HELP and # TYPE metadata
// before its series, every series line is well-formed, histogram buckets
// are cumulative/monotone and end at a +Inf bucket equal to _count, and the
// metric names from the earlier serving PRs are still present.
func TestMetricsExpositionWellFormed(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{})

	// Vector and source traffic so endpoint histograms and the queue-wait
	// histogram all have observations.
	if resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:4])}); resp.StatusCode != http.StatusOK {
		t.Fatalf("vector predict: %d", resp.StatusCode)
	}
	if resp, _ := postPredict(t, ts.URL, PredictRequest{Name: "chaos", Source: chaosSource}); resp.StatusCode != http.StatusOK {
		t.Fatalf("source predict: %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := buf.String()

	helps := map[string]bool{}
	types := map[string]string{}
	type bucketKey struct{ family, labels string }
	lastBucket := map[bucketKey]int64{}
	infBucket := map[bucketKey]int64{}
	countVal := map[bucketKey]int64{}
	seen := map[string]bool{}

	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			helps[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, parts[1])
			}
			types[parts[0]] = parts[1]
		case line == "":
			t.Fatalf("line %d: blank line in exposition", i+1)
		default:
			m := promSeries.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed series: %q", i+1, line)
			}
			name, labels := m[1], m[2]
			fam := family(name, types)
			if !helps[fam] || types[fam] == "" {
				t.Fatalf("line %d: series %s before # HELP/# TYPE for %s", i+1, name, fam)
			}
			seen[name] = true
			val, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q", i+1, m[3])
			}
			if types[fam] == "histogram" {
				// Strip the le label to group one histogram's buckets.
				stripped := regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(labels, "")
				if stripped == "{}" {
					stripped = ""
				}
				k := bucketKey{fam, stripped}
				switch {
				case strings.HasSuffix(name, "_bucket"):
					c := int64(val)
					if c < lastBucket[k] {
						t.Errorf("line %d: bucket counts not monotone for %s%s", i+1, fam, stripped)
					}
					lastBucket[k] = c
					if strings.Contains(labels, `le="+Inf"`) {
						infBucket[k] = c
					}
				case strings.HasSuffix(name, "_count"):
					countVal[k] = int64(val)
				}
			}
		}
	}

	for _, name := range stableNames {
		if !seen[name] {
			t.Errorf("stable metric %s missing from exposition", name)
		}
	}
	if !seen["espserve_request_canceled_total"] {
		t.Error("espserve_request_canceled_total missing")
	}
	for _, g := range []string{
		"espserve_batch_queue_depth", "espserve_batch_queue_age_micros",
		"espserve_busy_workers", "espserve_workers", "espserve_worker_utilization",
		"espserve_model_version",
	} {
		if !seen[g] {
			t.Errorf("gauge %s missing", g)
		}
	}

	// The cluster counters respond to their feeders: ClusterStats
	// increments land under the promoted family names.
	cs := s.ClusterStats()
	cs.PeerHit()
	cs.PeerMiss()
	cs.Failover()
	rendered := s.metrics.render()
	for _, want := range []string{
		"espserve_peer_hits_total 1",
		"espserve_peer_misses_total 1",
		"espserve_failover_total 1",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("exposition missing %q after ClusterStats increment", want)
		}
	}

	// Histogram series exist for every endpoint and for batch-queue wait,
	// +Inf equals _count, and the endpoints that served traffic are
	// non-empty.
	for _, ep := range []string{"predict", "healthz", "metrics", "debug", "other"} {
		k := bucketKey{"espserve_request_latency_micros", fmt.Sprintf("{endpoint=%q}", ep)}
		if _, ok := infBucket[k]; !ok {
			t.Errorf("no latency histogram for endpoint %q", ep)
		}
		if infBucket[k] != countVal[k] {
			t.Errorf("endpoint %q: +Inf bucket %d != count %d", ep, infBucket[k], countVal[k])
		}
	}
	qk := bucketKey{"espserve_batch_queue_wait_micros", ""}
	if infBucket[qk] != countVal[qk] {
		t.Errorf("queue-wait: +Inf bucket %d != count %d", infBucket[qk], countVal[qk])
	}
	if countVal[qk] == 0 {
		t.Error("queue-wait histogram empty after predictions")
	}
	pk := bucketKey{"espserve_request_latency_micros", `{endpoint="predict"}`}
	if countVal[pk] != 2 {
		t.Errorf("predict latency histogram count = %d, want 2", countVal[pk])
	}
}

// --- canceled vs deadline accounting -----------------------------------------

// waitCounter polls an atomic counter until it reaches want or the deadline
// passes.
func waitCounter(t *testing.T, name string, load func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlineExceededAccounting forces the worker to out-sleep the request
// deadline: the request must surface as 504 (NoDegrade) and increment the
// timeout counter, not the canceled counter.
func TestDeadlineExceededAccounting(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{
		Workers: 1, MaxBatch: 1,
		RequestTimeout: 150 * time.Millisecond,
		NoDegrade:      true,
	})
	inj := faultinject.New(7, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Latency,
		Delay: 500 * time.Millisecond, Rate: 1,
	})
	deactivate := faultinject.Activate(inj)
	defer deactivate()

	resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.metrics.timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	if got := s.metrics.canceled.Load(); got != 0 {
		t.Errorf("canceled = %d, want 0", got)
	}
	if !strings.Contains(s.metrics.render(), "espserve_request_timeouts_total 1") {
		t.Error("timeout not rendered under its stable name")
	}
}

// TestClientCancelAccounting abandons a request client-side while the
// worker is slow: the server must account it as canceled (499), not as a
// server deadline.
func TestClientCancelAccounting(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{
		Workers: 1, MaxBatch: 1,
		RequestTimeout: 10 * time.Second,
	})
	inj := faultinject.New(7, faultinject.Rule{
		Site: "serve.forward", Kind: faultinject.Latency,
		Delay: 500 * time.Millisecond, Rate: 1,
	})
	deactivate := faultinject.Activate(inj)
	defer deactivate()

	body, err := json.Marshal(PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite client cancel")
	}
	waitCounter(t, "canceled", s.metrics.canceled.Load, 1)
	if got := s.metrics.timeouts.Load(); got != 0 {
		t.Errorf("timeouts = %d, want 0 for a client cancel", got)
	}
	if !strings.Contains(s.metrics.render(), "espserve_request_canceled_total 1") {
		t.Error("cancellation not rendered under espserve_request_canceled_total")
	}
}

// --- statusWriter and metrics fallbacks --------------------------------------

func TestStatusWriterFlushPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	f, ok := interface{}(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	// The modern path: http.ResponseController finds Flush through Unwrap
	// or the direct implementation.
	rec2 := httptest.NewRecorder()
	sw2 := &statusWriter{ResponseWriter: rec2, status: http.StatusOK}
	if err := http.NewResponseController(sw2).Flush(); err != nil {
		t.Errorf("ResponseController.Flush: %v", err)
	}
	if !rec2.Flushed {
		t.Error("ResponseController flush did not reach the recorder")
	}
	// A WriteHeader after a Flush must not duplicate onto the wire.
	sw2.WriteHeader(http.StatusTeapot)
	if sw2.status != http.StatusOK {
		t.Errorf("status mutated to %d after flush", sw2.status)
	}
}

func TestMetricsEndpointFallback(t *testing.T) {
	m := newMetrics()
	st := m.endpoint("never-registered")
	if st == nil {
		t.Fatal("unknown endpoint returned nil")
	}
	st.observe(123, true) // must not panic
	if st != m.endpoint("other") {
		t.Error("fallback is not the registered \"other\" block")
	}
	out := m.render()
	if !strings.Contains(out, `espserve_requests_total{endpoint="other"} 1`) {
		t.Errorf("fallback traffic not rendered:\n%s", out)
	}
	if !strings.Contains(out, `espserve_request_errors_total{endpoint="other"} 1`) {
		t.Error("fallback error not rendered")
	}
}

// --- /debug/requests and trace spans -----------------------------------------

func getDebugRequests(t *testing.T, url string) []*obs.Trace {
	t.Helper()
	resp, err := http.Get(url + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: %d", resp.StatusCode)
	}
	var dr debugRequestsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr.Traces
}

// spanStages returns the set of stage names on a trace.
func spanStages(tr *obs.Trace) map[string]bool {
	out := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		out[sp.Stage] = true
	}
	return out
}

// TestDebugRequestsTraces drives the compile and vector paths and asserts
// the ring at /debug/requests carries ordered per-stage spans for them.
func TestDebugRequestsTraces(t *testing.T) {
	_, data := testModel(t)
	s, ts := testServer(t, Config{})

	// Source twice: a compile-path trace, then a cache-hit trace.
	for i := 0; i < 2; i++ {
		if resp, _ := postPredict(t, ts.URL, PredictRequest{Name: "chaos", Source: chaosSource}); resp.StatusCode != http.StatusOK {
			t.Fatalf("source predict %d: %d", i, resp.StatusCode)
		}
	}
	// Vector path with a client-chosen request ID.
	body, _ := json.Marshal(PredictRequest{Vectors: vectorValues(data[0].Vectors[:2])})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/predict", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "my-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Traces are recorded after the response is written; poll until all
	// three predict traces have landed in the ring.
	var compileTrace, cachedTrace, vecTrace *obs.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		compileTrace, cachedTrace, vecTrace = nil, nil, nil
		for _, tr := range getDebugRequests(t, ts.URL) {
			if tr.Endpoint != "predict" {
				continue
			}
			st := spanStages(tr)
			switch {
			case tr.ID == "my-id-42":
				vecTrace = tr
			case st[obs.StageCompile]:
				compileTrace = tr
			case st[obs.StageCache]:
				cachedTrace = tr
			}
		}
		if compileTrace != nil && cachedTrace != nil && vecTrace != nil {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if compileTrace == nil {
		t.Fatal("no trace with a compile span")
	}
	st := spanStages(compileTrace)
	for _, stage := range []string{
		obs.StageAdmission, obs.StageDecode, obs.StageCompile,
		obs.StageFeaturize, obs.StageQueueWait, obs.StageForward, obs.StageEncode,
	} {
		if !st[stage] {
			t.Errorf("compile-path trace missing %q span: %+v", stage, compileTrace.Spans)
		}
	}
	if cachedTrace == nil {
		t.Error("no trace with a cache span for the repeated source")
	}
	if vecTrace == nil {
		t.Fatal("X-Request-ID trace not found in ring")
	}
	vst := spanStages(vecTrace)
	for _, stage := range []string{obs.StageFeaturize, obs.StageQueueWait, obs.StageForward} {
		if !vst[stage] {
			t.Errorf("vector trace missing %q span", stage)
		}
	}

	// Spans are ordered and sane; the trace is finalized.
	for _, tr := range []*obs.Trace{compileTrace, vecTrace} {
		prev := int64(-1)
		for _, sp := range tr.Spans {
			if sp.StartUS < prev {
				t.Errorf("trace %s: span %s out of order", tr.ID, sp.Stage)
			}
			if sp.DurUS < 0 {
				t.Errorf("trace %s: span %s negative duration", tr.ID, sp.Stage)
			}
			prev = sp.StartUS
		}
		if tr.Status != http.StatusOK {
			t.Errorf("trace %s status %d", tr.ID, tr.Status)
		}
		if tr.DurUS <= 0 {
			t.Errorf("trace %s has no total duration", tr.ID)
		}
	}

	// The latency histograms saw the traffic: non-zero quantiles.
	if p50 := s.metrics.endpoint("predict").latency.Quantile(0.5); p50 <= 0 {
		t.Errorf("predict p50 = %g after traffic", p50)
	}
	if p99 := s.metrics.endpoint("predict").latency.Quantile(0.99); p99 <= 0 {
		t.Errorf("predict p99 = %g after traffic", p99)
	}
	if s.metrics.queueWait.Count() == 0 {
		t.Error("queue-wait histogram never observed")
	}
}

// TestTraceRingBounded floods more requests than the ring holds.
func TestTraceRingBounded(t *testing.T) {
	_, data := testModel(t)
	_, ts := testServer(t, Config{TraceRing: 4})
	for i := 0; i < 10; i++ {
		if resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])}); resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: %d", i, resp.StatusCode)
		}
	}
	traces := getDebugRequests(t, ts.URL)
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(traces))
	}
}

// TestAccessLogSampling wires an access-log writer at sample=1 and expects
// one JSON line per request.
func TestAccessLogSampling(t *testing.T) {
	_, data := testModel(t)
	var buf syncBuffer
	_, ts := testServer(t, Config{TraceSample: 1, AccessLog: &buf})
	if resp, _ := postPredict(t, ts.URL, PredictRequest{Vectors: vectorValues(data[0].Vectors[:1])}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	// The trace is recorded after the response is written, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found bool
		for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
			if line == "" {
				continue
			}
			var tr obs.Trace
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatalf("access-log line is not JSON: %q: %v", line, err)
			}
			if tr.Endpoint == "predict" && len(tr.Spans) > 0 {
				found = true
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no predict trace with spans in the access log:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for test log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
