package heuristics

import (
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
)

// MissRate returns the dynamic misprediction rate of a predictor over a
// program: mispredicted branch executions divided by total conditional
// branch executions. Branches the predictor declines are charged the
// expected 50% miss of a uniform random prediction, matching the paper's
// treatment of branches no heuristic covers.
func MissRate(ps *features.ProgramSites, prof *interp.Profile, p Predictor) float64 {
	var miss, total float64
	for _, s := range ps.Sites {
		c := prof.Branches[s.Ref]
		if c == nil || c.Executed == 0 {
			continue
		}
		total += float64(c.Executed)
		miss += siteMisses(s, c, p)
	}
	if total == 0 {
		return 0
	}
	return miss / total
}

// siteMisses returns the (possibly fractional, for random defaults) number
// of mispredicted executions of one branch site.
func siteMisses(s *features.Site, c *interp.BranchCount, p Predictor) float64 {
	pred, ok := p.PredictSite(s)
	if !ok || pred == None {
		return 0.5 * float64(c.Executed)
	}
	if pred == Taken {
		return float64(c.Executed - c.Taken)
	}
	return float64(c.Taken)
}

// HeuristicStats reports how one heuristic performed on one program.
type HeuristicStats struct {
	Heuristic Heuristic
	// Covered is the number of dynamic branch executions where the
	// heuristic applied.
	Covered int64
	// Missed is the number of those executions it mispredicted.
	Missed int64
	// TotalExec is the program's total conditional branch executions.
	TotalExec int64
}

// MissRate returns the heuristic's miss rate over its covered executions.
func (h HeuristicStats) MissRate() float64 {
	if h.Covered == 0 {
		return 0
	}
	return float64(h.Missed) / float64(h.Covered)
}

// CoverageFraction returns the fraction of all executions it covered.
func (h HeuristicStats) CoverageFraction() float64 {
	if h.TotalExec == 0 {
		return 0
	}
	return float64(h.Covered) / float64(h.TotalExec)
}

// PerHeuristic measures each heuristic in isolation on one program — the
// data behind Table 6. Following Ball and Larus, the Loop Branch heuristic
// is measured on loop branches and the other heuristics on the remaining
// (non-loop) branches only.
func PerHeuristic(ps *features.ProgramSites, prof *interp.Profile, cfg Config) [NumHeuristics]HeuristicStats {
	var out [NumHeuristics]HeuristicStats
	var total int64
	for _, s := range ps.Sites {
		c := prof.Branches[s.Ref]
		if c == nil || c.Executed == 0 {
			continue
		}
		total += c.Executed
		isLoop := IsLoopBranch(s)
		for h := Heuristic(0); h < NumHeuristics; h++ {
			if (h == LoopBranch) != isLoop {
				continue
			}
			pred := Apply(h, s, cfg)
			if pred == None {
				continue
			}
			out[h].Covered += c.Executed
			if pred == Taken {
				out[h].Missed += c.Executed - c.Taken
			} else {
				out[h].Missed += c.Taken
			}
		}
	}
	for h := range out {
		out[h].Heuristic = Heuristic(h)
		out[h].TotalExec = total
	}
	return out
}

// Breakdown is the per-program decomposition of Table 5: loop versus
// non-loop branches, heuristic coverage of the non-loop branches, and the
// miss rates with and without the random default.
type Breakdown struct {
	// LoopExec/LoopMissed cover branches where the Loop Branch heuristic
	// applies.
	LoopExec   int64
	LoopMissed int64
	// NonLoopExec counts the remaining branch executions; Covered counts
	// those predicted by some non-loop heuristic, with CoveredMissed of
	// them mispredicted. The uncovered remainder is charged 50%.
	NonLoopExec   int64
	Covered       int64
	CoveredMissed int64
}

// LoopMissRate is the loop-branch miss rate (Table 5 column 1).
func (b Breakdown) LoopMissRate() float64 {
	if b.LoopExec == 0 {
		return 0
	}
	return float64(b.LoopMissed) / float64(b.LoopExec)
}

// PctNonLoop is the percentage of dynamic branches that are non-loop
// branches (column 2).
func (b Breakdown) PctNonLoop() float64 {
	total := b.LoopExec + b.NonLoopExec
	if total == 0 {
		return 0
	}
	return 100 * float64(b.NonLoopExec) / float64(total)
}

// PctCovered is the percentage of non-loop executions some heuristic
// predicts (column 3).
func (b Breakdown) PctCovered() float64 {
	if b.NonLoopExec == 0 {
		return 0
	}
	return 100 * float64(b.Covered) / float64(b.NonLoopExec)
}

// MissForHeuristics is the miss rate on covered non-loop branches (col 4).
func (b Breakdown) MissForHeuristics() float64 {
	if b.Covered == 0 {
		return 0
	}
	return float64(b.CoveredMissed) / float64(b.Covered)
}

// MissWithDefault is the non-loop miss rate including the 50% random default
// on uncovered branches (column 5).
func (b Breakdown) MissWithDefault() float64 {
	if b.NonLoopExec == 0 {
		return 0
	}
	return (float64(b.CoveredMissed) + 0.5*float64(b.NonLoopExec-b.Covered)) /
		float64(b.NonLoopExec)
}

// OverallMissRate combines loop and non-loop branches (column 6).
func (b Breakdown) OverallMissRate() float64 {
	total := b.LoopExec + b.NonLoopExec
	if total == 0 {
		return 0
	}
	miss := float64(b.LoopMissed) + float64(b.CoveredMissed) +
		0.5*float64(b.NonLoopExec-b.Covered)
	return miss / float64(total)
}

// BreakdownOf computes the Table 5 decomposition for one program under the
// given APHC order.
func BreakdownOf(ps *features.ProgramSites, prof *interp.Profile, a *APHC) Breakdown {
	var b Breakdown
	for _, s := range ps.Sites {
		c := prof.Branches[s.Ref]
		if c == nil || c.Executed == 0 {
			continue
		}
		if pred := applyLoopBranch(s); pred != None {
			b.LoopExec += c.Executed
			b.LoopMissed += missesOf(pred, c)
			continue
		}
		b.NonLoopExec += c.Executed
		pred, _, ok := a.PredictWith(s)
		if !ok {
			continue
		}
		b.Covered += c.Executed
		b.CoveredMissed += missesOf(pred, c)
	}
	return b
}

func missesOf(pred Prediction, c *interp.BranchCount) int64 {
	if pred == Taken {
		return c.Executed - c.Taken
	}
	return c.Taken
}

// SiteOutcome records a single site's prediction result, used by tests and
// by the espbench detail dumps.
type SiteOutcome struct {
	Ref      ir.BranchRef
	Pred     Prediction
	Covered  bool
	Executed int64
	Taken    int64
}

// Outcomes evaluates a predictor site by site.
func Outcomes(ps *features.ProgramSites, prof *interp.Profile, p Predictor) []SiteOutcome {
	out := make([]SiteOutcome, 0, len(ps.Sites))
	for _, s := range ps.Sites {
		c := prof.Branches[s.Ref]
		if c == nil {
			c = &interp.BranchCount{}
		}
		pred, ok := p.PredictSite(s)
		out = append(out, SiteOutcome{
			Ref: s.Ref, Pred: pred, Covered: ok,
			Executed: c.Executed, Taken: c.Taken,
		})
	}
	return out
}
