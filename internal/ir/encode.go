package ir

import "encoding/binary"

// AppendCanonical appends a deterministic binary encoding of the program to
// b and returns the extended slice. Two programs encode to the same bytes
// iff every semantic field — function order, block layout, opcodes,
// operands, immediates, symbols, jump tables, globals and their
// initializers — is identical, so the encoding is a stable content address
// for caching derived artifacts (see internal/artifact). It is an encoding
// only: nothing decodes it, so adding an IR field here is a compatible
// change as long as artifact.FormatVersion is bumped with it.
func AppendCanonical(b []byte, p *Program) []byte {
	b = appendString(b, p.Name)
	b = binary.AppendUvarint(b, uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		b = appendString(b, f.Name)
		b = appendString(b, string(f.Language))
		b = binary.AppendVarint(b, int64(f.NIntArgs))
		b = binary.AppendVarint(b, int64(f.NFltArgs))
		b = binary.AppendVarint(b, f.FrameSize)
		b = binary.AppendUvarint(b, uint64(len(f.Blocks)))
		for _, blk := range f.Blocks {
			b = binary.AppendVarint(b, int64(blk.ID))
			b = binary.AppendUvarint(b, uint64(len(blk.Insns)))
			for i := range blk.Insns {
				in := &blk.Insns[i]
				b = binary.AppendVarint(b, int64(in.Op))
				b = append(b, byte(in.Dst), byte(in.A), byte(in.B))
				b = binary.AppendVarint(b, in.Imm)
				if in.UseImm {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
				b = appendString(b, in.Sym)
				b = binary.AppendVarint(b, int64(in.Target))
				b = binary.AppendUvarint(b, uint64(len(in.Targets)))
				for _, t := range in.Targets {
					b = binary.AppendVarint(b, int64(t))
				}
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(len(p.Globals)))
	for i := range p.Globals {
		g := &p.Globals[i]
		b = appendString(b, g.Name)
		b = binary.AppendVarint(b, g.Size)
		if g.Float {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(len(g.Init)))
		for _, v := range g.Init {
			b = binary.AppendVarint(b, v)
		}
	}
	return b
}

// appendString appends a length-prefixed string; the prefix keeps adjacent
// strings from aliasing each other ("ab"+"c" vs "a"+"bc").
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
