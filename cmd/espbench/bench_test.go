package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteBenchEmitsJSON(t *testing.T) {
	dir := t.TempDir()
	r := testing.BenchmarkResult{
		N:         2000,
		T:         3 * time.Millisecond,
		Bytes:     0,
		MemAllocs: 4000,
		MemBytes:  128000,
	}
	if err := writeBench(dir, "parse", r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_parse.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got benchResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v\n%s", err, data)
	}
	want := benchResult{
		Name:        "parse",
		Iterations:  2000,
		NsPerOp:     1500,
		BytesPerOp:  64,
		AllocsPerOp: 2,
	}
	if got != want {
		t.Fatalf("emitted %+v, want %+v", got, want)
	}
}

func TestWriteBenchRoundTripsFields(t *testing.T) {
	dir := t.TempDir()
	if err := writeBench(dir, "forward", testing.BenchmarkResult{N: 1, T: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_forward.json"))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "iterations", "ns_per_op", "bytes_per_op", "allocs_per_op"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("emitted JSON is missing %q:\n%s", key, data)
		}
	}
}

func TestRunBenchSuiteRejectsUnknownName(t *testing.T) {
	if err := runBenchSuite("nosuchbench", t.TempDir()); err == nil {
		t.Fatal("expected an error for an unknown benchmark name")
	}
}

// TestRunBenchSuiteEndToEnd runs the two cheapest registered benchmarks for
// real and checks the emitted files parse and carry sane numbers.
func TestRunBenchSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	if err := runBenchSuite("encode,forward", dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"encode", "forward"} {
		data, err := os.ReadFile(benchFile(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var got benchResult
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != name || got.Iterations <= 0 || got.NsPerOp <= 0 {
			t.Fatalf("%s: implausible result %+v", name, got)
		}
	}
}
