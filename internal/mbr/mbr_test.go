package mbr

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/features"
)

func ex(f int, val string, target, weight float64) Example {
	var e Example
	for i := range e.Values {
		e.Values[i] = "-"
	}
	e.Values[f] = val
	e.Target = target
	e.Weight = weight
	return e
}

func TestEmptyMemory(t *testing.T) {
	m := New(nil, Config{})
	var v [features.NumFeatures]string
	if p := m.Predict(v); p != 0.5 {
		t.Errorf("empty memory predicts %g, want the 0.5 prior", p)
	}
}

func TestExactRecall(t *testing.T) {
	// With K=1, an exact match must return its own target.
	exs := []Example{
		ex(0, "A", 0.9, 0.5),
		ex(0, "B", 0.1, 0.5),
	}
	m := New(exs, Config{K: 1})
	if p := m.Predict(exs[0].Values); math.Abs(p-0.9) > 1e-9 {
		t.Errorf("recall of A = %g, want 0.9", p)
	}
	if p := m.Predict(exs[1].Values); math.Abs(p-0.1) > 1e-9 {
		t.Errorf("recall of B = %g, want 0.1", p)
	}
}

func TestNeighborhoodBlending(t *testing.T) {
	// Two memories at equal similarity and weight: prediction is their mean.
	exs := []Example{
		ex(0, "A", 1.0, 0.5),
		ex(0, "A", 0.0, 0.5),
	}
	m := New(exs, Config{K: 2, InformationWeights: false})
	if p := m.Predict(exs[0].Values); math.Abs(p-0.5) > 1e-6 {
		t.Errorf("blend = %g, want 0.5", p)
	}
}

func TestWeightDominance(t *testing.T) {
	// The heavier memory dominates the blend.
	exs := []Example{
		ex(0, "A", 1.0, 0.99),
		ex(0, "A", 0.0, 0.01),
	}
	m := New(exs, Config{K: 2, InformationWeights: false})
	if p := m.Predict(exs[0].Values); p < 0.9 {
		t.Errorf("heavy memory lost the blend: %g", p)
	}
}

func TestInformationWeights(t *testing.T) {
	// Feature 0 perfectly separates; feature 1 is constant noise. The
	// learned weight of feature 0 must exceed feature 1's.
	var exs []Example
	for i := 0; i < 20; i++ {
		e := ex(0, "A", 1, 0.05)
		if i%2 == 1 {
			e = ex(0, "B", 0, 0.05)
		}
		e.Values[1] = "same"
		exs = append(exs, e)
	}
	m := New(exs, Config{K: 3, InformationWeights: true})
	if m.FeatW[0] <= m.FeatW[1] {
		t.Errorf("informative feature weight %g not above noise weight %g",
			m.FeatW[0], m.FeatW[1])
	}
}

func TestUnknownNeverMatches(t *testing.T) {
	m := New([]Example{ex(0, "A", 1, 1)}, Config{K: 1, InformationWeights: false})
	var q [features.NumFeatures]string
	for i := range q {
		q[i] = features.Unknown
	}
	// Similarity with everything unknown is zero; prediction falls back to
	// the (single-memory) neighborhood blend, which is still well defined.
	if s := m.Similarity(q, m.Memory[0].Values); s != 0 {
		t.Errorf("unknown query similarity = %g, want 0", s)
	}
	if p := m.Predict(q); p < 0 || p > 1 {
		t.Errorf("prediction %g out of range", p)
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	exs := []Example{ex(0, "A", 0.8, 0.4), ex(2, "B", 0.3, 0.6)}
	m := New(exs, Config{})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if p1, p2 := m.Predict(exs[0].Values), back.Predict(exs[0].Values); p1 != p2 {
		t.Errorf("serialized model differs: %g vs %g", p1, p2)
	}
}

// TestWeightlessMemory pins a case testing/quick found: every stored
// memory carrying execution weight zero used to drive the information-gain
// computation through 0/0, poisoning all feature weights (and every
// prediction) with NaN.
func TestWeightlessMemory(t *testing.T) {
	var exs []Example
	for i := 0; i < 6; i++ {
		exs = append(exs, ex(i%3, string(rune('A'+i%4)), 0, 0))
	}
	m := New(exs, Config{K: 5, InformationWeights: true})
	for f, w := range m.FeatW {
		if math.IsNaN(w) {
			t.Fatalf("feature %d weight is NaN", f)
		}
	}
	if p := m.Predict(exs[0].Values); p < 0 || p > 1 || math.IsNaN(p) {
		t.Fatalf("prediction %v out of [0,1]", p)
	}
}

// TestPredictionBounded: predictions are probabilities for arbitrary
// memories.
func TestPredictionBounded(t *testing.T) {
	f := func(targets [6]float64, weights [6]float64, vals [6]uint8, k uint8) bool {
		var exs []Example
		for i := 0; i < 6; i++ {
			tg := math.Abs(targets[i])
			tg -= math.Floor(tg)
			w := math.Abs(weights[i])
			if math.IsNaN(w) || math.IsInf(w, 0) {
				w = 1
			}
			w = math.Mod(w, 10)
			if math.IsNaN(tg) {
				tg = 0.5
			}
			exs = append(exs, ex(int(vals[i])%3, string(rune('A'+vals[i]%4)), tg, w))
		}
		m := New(exs, Config{K: 1 + int(k)%6, InformationWeights: true})
		p := m.Predict(exs[0].Values)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSize(t *testing.T) {
	m := New([]Example{ex(0, "A", 1, 1)}, Config{})
	if m.Size() != 1 {
		t.Errorf("size = %d", m.Size())
	}
}
