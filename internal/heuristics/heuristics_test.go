package heuristics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/codegen"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// analyze compiles a MinC program and collects its branch sites.
func analyze(t *testing.T, src string) *features.ProgramSites {
	t.Helper()
	ast, err := minic.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return features.Collect(prog)
}

// sitesIn filters sites by function.
func sitesIn(ps *features.ProgramSites, fn string) []*features.Site {
	var out []*features.Site
	for _, s := range ps.Sites {
		if s.Ref.Func == fn {
			out = append(out, s)
		}
	}
	return out
}

// predictions applies one heuristic to every site of a function.
func predictions(ps *features.ProgramSites, fn string, h Heuristic) []Prediction {
	var out []Prediction
	for _, s := range sitesIn(ps, fn) {
		out = append(out, Apply(h, s, Config{}))
	}
	return out
}

func TestLoopBranchHeuristic(t *testing.T) {
	ps := analyze(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s + i; }
	return s;
}`)
	preds := predictions(ps, "main", LoopBranch)
	// Exactly one branch (the bottom test) is a loop branch, predicted
	// taken (back edge into the body).
	taken := 0
	for _, p := range preds {
		if p == Taken {
			taken++
		} else if p != None {
			t.Errorf("unexpected loop-branch prediction %v", p)
		}
	}
	if taken != 1 {
		t.Errorf("%d loop branches predicted taken, want 1", taken)
	}
}

func TestLoopExitHeuristicOnBreak(t *testing.T) {
	ps := analyze(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) {
		s = s + i;
		if (s > 50) { break; }
	}
	return s;
}`)
	// The break test is inside the loop, neither successor is a loop head,
	// and the break edge exits: Loop Exit must fire on it.
	found := false
	for _, s := range sitesIn(ps, "main") {
		if Apply(LoopBranch, s, Config{}) != None {
			continue
		}
		if p := Apply(LoopExit, s, Config{}); p != None {
			found = true
			// The exiting edge must be predicted not taken: taken direction
			// depends on codegen polarity, so check via the site's edges.
			exitTaken := s.G.IsLoopExitEdge(s.BlockIdx, s.TakenIdx)
			if exitTaken && p != NotTaken || !exitTaken && p != Taken {
				t.Errorf("Loop Exit predicted the exiting edge taken")
			}
		}
	}
	if !found {
		t.Error("Loop Exit heuristic never applied to the break test")
	}
}

func TestPointerHeuristic(t *testing.T) {
	ps := analyze(t, `
int g;
int* gp;
int main() {
	gp = &g;
	if (gp == null) { g = 1; }
	if (gp != null) { g = 2; }
	return g;
}`)
	sites := sitesIn(ps, "main")
	if len(sites) != 2 {
		t.Fatalf("got %d sites", len(sites))
	}
	// "gp == null" predicted false; "gp != null" predicted true. Check via
	// condition kind: prediction must make the equality fail.
	for _, s := range sites {
		p := Apply(Pointer, s, Config{})
		if p == None {
			t.Fatalf("Pointer heuristic did not apply to %v", s.Ref)
		}
		if s.Cond.Kind == features.CmpEq && p != NotTaken {
			t.Errorf("%v: ==null comparison predicted taken", s.Ref)
		}
		if s.Cond.Kind == features.CmpNe && p != Taken {
			t.Errorf("%v: !=null comparison predicted not-taken", s.Ref)
		}
	}
}

func TestOpcodeHeuristic(t *testing.T) {
	ps := analyze(t, `
int g;
int main() {
	int x;
	x = __input(0);
	if (x < 0) { g = 1; }
	if (x <= 0) { g = 2; }
	if (x == 9) { g = 3; }
	if (x > 5) { g = 4; }
	return g;
}`)
	sites := sitesIn(ps, "main")
	if len(sites) != 4 {
		t.Fatalf("got %d sites", len(sites))
	}
	// First three: the heuristic applies and predicts the condition false.
	for i := 0; i < 3; i++ {
		p := Apply(Opcode, sites[i], Config{})
		if p == None {
			t.Errorf("site %d: Opcode heuristic did not apply", i)
			continue
		}
		// Condition false means: whichever successor corresponds to the
		// source condition being true is avoided. Cond.Kind is relative to
		// taken, so "unlikely" kinds predict NotTaken.
		unlikely := map[features.CmpKind]bool{
			features.CmpLt: true, features.CmpLe: true, features.CmpEq: true,
		}
		want := Taken
		if unlikely[sites[i].Cond.Kind] {
			want = NotTaken
		}
		if p != want {
			t.Errorf("site %d: predicted %v, want %v (cond %v)", i, p, want, sites[i].Cond.Kind)
		}
	}
	// "x > 5" matches no Opcode pattern.
	if p := Apply(Opcode, sites[3], Config{}); p != None {
		t.Errorf("x > 5 must not trigger the Opcode heuristic, got %v", p)
	}
}

func TestReturnHeuristic(t *testing.T) {
	ps := analyze(t, `
int g;
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		return 1;
	}
	// The fall path does more work before returning, so only the then-arm
	// "contains a return" in the heuristic's sense.
	while (x < 10) { x = x + 1; }
	g = x;
	return 0;
}`)
	s := sitesIn(ps, "main")[0]
	p := Apply(Return, s, Config{})
	if p == None {
		t.Fatal("Return heuristic did not apply")
	}
	// The then-arm returns immediately; the else path also eventually
	// returns but not in its own first block. The heuristic avoids the
	// immediately-returning successor.
	thenIsTaken := s.G.Block(s.TakenIdx).Terminator() != nil &&
		s.G.Block(s.TakenIdx).Terminator().Op == ir.OpRet
	if thenIsTaken && p != NotTaken {
		t.Error("returning successor predicted taken")
	}
}

func TestCallHeuristicPolarity(t *testing.T) {
	ps := analyze(t, `
int helper() { return 1; }
int g;
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		g = helper();
	} else {
		g = x + 1;
	}
	return g;
}`)
	s := sitesIn(ps, "main")[0]
	std := Apply(Call, s, Config{})
	flipped := Apply(Call, s, Config{CallPredictsTaken: true})
	if std == None || flipped == None {
		t.Fatal("Call heuristic did not apply")
	}
	if std == flipped {
		t.Error("polarity knob must flip the Call prediction")
	}
}

func TestStoreHeuristicIgnoresStackStores(t *testing.T) {
	ps := analyze(t, `
int g;
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		g = 5;       // real store to a global
	} else {
		int y;
		y = x;       // only stack-frame traffic
		x = y + 1;
	}
	return x + g;
}`)
	s := sitesIn(ps, "main")[0]
	p := Apply(Store, s, Config{})
	if p == None {
		t.Fatal("Store heuristic did not apply")
	}
	// The successor with the global store is avoided; identify it.
	storeTaken := features.ContainsRealStore(s.G, s.TakenIdx)
	if storeTaken && p != NotTaken || !storeTaken && p != Taken {
		t.Errorf("Store heuristic predicted the storing successor (pred %v)", p)
	}
}

func TestGuardHeuristic(t *testing.T) {
	ps := analyze(t, `
int g;
int main() {
	int x;
	x = __input(0);
	if (x > 0) {
		g = x * 2;   // uses x before defining it
	}
	g = g + 1;
	return g;
}`)
	s := sitesIn(ps, "main")[0]
	if p := Apply(Guard, s, Config{}); p == None {
		t.Error("Guard heuristic did not apply to the guarded use")
	}
}

func TestBTFNT(t *testing.T) {
	ps := analyze(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) { s = s + i; }
	if (s > 100) { s = 100; }
	return s;
}`)
	var back, fwd int
	for _, s := range sitesIn(ps, "main") {
		p, ok := BTFNT{}.PredictSite(s)
		if !ok {
			t.Fatal("BTFNT must always predict")
		}
		backward := s.Fn.LayoutIndex(s.Branch.Target) < s.Fn.LayoutIndex(s.Ref.Block)
		if backward {
			back++
			if p != Taken {
				t.Error("backward branch predicted not-taken")
			}
		} else {
			fwd++
			if p != NotTaken {
				t.Error("forward branch predicted taken")
			}
		}
	}
	if back == 0 || fwd == 0 {
		t.Errorf("test needs both directions: %d back, %d fwd", back, fwd)
	}
}

func TestAPHCOrderAndCoverage(t *testing.T) {
	ps := analyze(t, `
int g;
int* gp;
int main() {
	int i;
	gp = &g;
	for (i = 0; i < 10; i = i + 1) {
		if (gp != null) { g = g + 1; }
	}
	return g;
}`)
	a := NewAPHC()
	for _, s := range sitesIn(ps, "main") {
		pred, h, ok := a.PredictWith(s)
		if !ok {
			continue
		}
		// Loop branches must be claimed by the Loop Branch heuristic, never
		// by later heuristics.
		if IsLoopBranch(s) && h != LoopBranch {
			t.Errorf("loop branch claimed by %v", h)
		}
		if pred == None {
			t.Error("PredictWith returned ok with no prediction")
		}
	}
}

func TestDSHCCombination(t *testing.T) {
	d := NewDSHCBallLarus()
	// Combining p and 1-p yields 0.5 (neutral evidence cancels).
	comb := func(ps []float64) float64 {
		pt, pn := 1.0, 1.0
		for _, p := range ps {
			pt *= p
			pn *= 1 - p
		}
		return pt / (pt + pn)
	}
	if got := comb([]float64{0.8, 0.2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("opposing evidence = %g, want 0.5", got)
	}
	// Agreeing evidence strengthens.
	if got := comb([]float64{0.8, 0.8}); got <= 0.8 {
		t.Errorf("agreeing evidence %g must exceed 0.8", got)
	}
	_ = d
}

// TestDSHCProperties checks algebraic properties of the Dempster-Shafer
// combination with testing/quick: commutativity and boundedness.
func TestDSHCProperties(t *testing.T) {
	comb := func(a, b float64) float64 {
		pt := a * b
		pn := (1 - a) * (1 - b)
		if pt+pn == 0 {
			return 0.5
		}
		return pt / (pt + pn)
	}
	clamp := func(x float64) float64 {
		x = math.Abs(x)
		x = x - math.Floor(x) // (0,1)
		return 0.01 + 0.98*x
	}
	f := func(a, b, c float64) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		// Commutative.
		if math.Abs(comb(a, b)-comb(b, a)) > 1e-12 {
			return false
		}
		// Associative (within float tolerance).
		if math.Abs(comb(comb(a, b), c)-comb(a, comb(b, c))) > 1e-9 {
			return false
		}
		// 0.5 is the identity.
		if math.Abs(comb(a, 0.5)-a) > 1e-12 {
			return false
		}
		// Bounded.
		v := comb(a, b)
		return v > 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDSHCClamping(t *testing.T) {
	var miss [NumHeuristics]float64
	miss[Pointer] = 0 // perfect heuristic would veto everything
	miss[Store] = 1   // hopeless heuristic
	d := NewDSHCFromMiss("t", miss)
	if d.Prob[Pointer] > 0.99 || d.Prob[Store] < 0.01 {
		t.Error("probabilities must be clamped away from 0 and 1")
	}
}

func TestPerfectPredictor(t *testing.T) {
	ps := analyze(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 3 == 0) { s = s + 1; }
	}
	return s;
}`)
	prog := ps.Prog
	prof, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	perfect := &Perfect{Prof: prof}
	miss := MissRate(ps, prof, perfect)
	// Perfect static prediction: per-branch miss = min(taken, not)/exec;
	// no predictor can beat it.
	for _, other := range []Predictor{BTFNT{}, NewAPHC(), NewDSHCBallLarus()} {
		if m := MissRate(ps, prof, other); m < miss-1e-12 {
			t.Errorf("%s (%.3f) beat perfect (%.3f)", other.Name(), m, miss)
		}
	}
}

func TestMissRateArithmetic(t *testing.T) {
	ps := analyze(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 4; i = i + 1) { s = s + i; }
	return s;
}`)
	prof, err := interp.Run(ps.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed taken vs fixed not-taken must sum to 1 over branch executions.
	mt := MissRate(ps, prof, Fixed{Direction: Taken})
	mn := MissRate(ps, prof, Fixed{Direction: NotTaken})
	if math.Abs(mt+mn-1) > 1e-12 {
		t.Errorf("fixed-direction misses sum to %g, want 1", mt+mn)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	ps := analyze(t, `
int g;
int main() {
	int i;
	for (i = 0; i < 20; i = i + 1) {
		if (i % 2 == 0) { g = g + 1; }
		if (g > 100) { break; }
	}
	return g;
}`)
	prof, err := interp.Run(ps.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPHC()
	b := BreakdownOf(ps, prof, a)
	if b.LoopExec+b.NonLoopExec != prof.CondExec {
		t.Errorf("breakdown misses executions: %d + %d != %d",
			b.LoopExec, b.NonLoopExec, prof.CondExec)
	}
	if b.Covered > b.NonLoopExec {
		t.Error("covered exceeds non-loop executions")
	}
	if b.PctNonLoop() < 0 || b.PctNonLoop() > 100 ||
		b.PctCovered() < 0 || b.PctCovered() > 100 {
		t.Error("percentages out of range")
	}
	overall := b.OverallMissRate()
	if overall < 0 || overall > 1 {
		t.Errorf("overall miss %g out of range", overall)
	}
}

func TestHeuristicNames(t *testing.T) {
	seen := map[string]bool{}
	for _, h := range AllHeuristics() {
		n := h.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("heuristic %d has bad name %q", h, n)
		}
		seen[n] = true
	}
	if Heuristic(99).String() != "unknown" {
		t.Error("out-of-range heuristic must render as unknown")
	}
}
