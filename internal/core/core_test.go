package core

import (
	"bytes"
	"testing"

	"repro/internal/codegen"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// analyzeSrc compiles and profiles a MinC program.
func analyzeSrc(t testing.TB, name, src string, input []int64) *ProgramData {
	t.Helper()
	ast, err := minic.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Analyze(prog, ir.LangC, interp.Config{Input: input, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pd
}

// loopy is a small corpus program whose loop branches are highly biased.
const loopy = `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 200; i = i + 1) {
		if (i % 16 == 0) { s = s + 2; } else { s = s + 1; }
	}
	return s;
}`

// loopy2 shares the idioms of loopy with different constants.
const loopy2 = `
int main() {
	int j;
	int acc;
	acc = 1;
	for (j = 0; j < 150; j = j + 1) {
		if (j % 10 == 3) { acc = acc * 2; } else { acc = acc + 3; }
		if (acc > 100000) { acc = acc / 2; }
	}
	return acc;
}`

func TestAnalyzeAndExamples(t *testing.T) {
	pd := analyzeSrc(t, "loopy", loopy, nil)
	exs := pd.Examples()
	if len(exs) == 0 {
		t.Fatal("no training examples")
	}
	var totalW float64
	for _, e := range exs {
		if e.Target < 0 || e.Target > 1 {
			t.Errorf("target %g out of range", e.Target)
		}
		if e.Weight <= 0 {
			t.Errorf("weight %g must be positive for executed branches", e.Weight)
		}
		totalW += e.Weight
	}
	// Weights are normalized per program: executed sites sum to ~1.
	if totalW < 0.999 || totalW > 1.001 {
		t.Errorf("weights sum to %g, want 1", totalW)
	}
}

func TestTrainAndPredict(t *testing.T) {
	train := []*ProgramData{
		analyzeSrc(t, "a", loopy, nil),
		analyzeSrc(t, "b", loopy2, nil),
	}
	model := Train(train, Config{})
	if model.TrainStats.Epochs == 0 {
		t.Fatal("no training happened")
	}
	// The model must beat a coin on its own training programs.
	p := &Predictor{Model: model}
	for _, pd := range train {
		miss := heuristics.MissRate(pd.Sites, pd.Profile, p)
		if miss >= 0.5 {
			t.Errorf("%s: training-set miss %.2f not better than random", pd.Name, miss)
		}
	}
	// Probabilities are bounded.
	for _, v := range train[0].Vectors {
		prob := model.TakenProbability(v)
		if prob < 0 || prob > 1 {
			t.Errorf("probability %g out of range", prob)
		}
	}
}

func TestTreeClassifier(t *testing.T) {
	train := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	model := Train(train, Config{Classifier: DecisionTree})
	if model.Tree == nil {
		t.Fatal("no tree built")
	}
	p := &Predictor{Model: model}
	miss := heuristics.MissRate(train[0].Sites, train[0].Profile, p)
	if miss >= 0.5 {
		t.Errorf("tree training-set miss %.2f", miss)
	}
	if p.Name() != "ESP(decision-tree)" {
		t.Errorf("predictor name = %q", p.Name())
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	train := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	for _, cls := range []ClassifierKind{NeuralNet, DecisionTree} {
		model := Train(train, Config{Classifier: cls})
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", cls, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v: load: %v", cls, err)
		}
		for _, v := range train[0].Vectors {
			if a, b := model.TakenProbability(v), back.TakenProbability(v); a != b {
				t.Fatalf("%v: loaded model differs: %g vs %g", cls, a, b)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader([]byte("{}"))); err == nil {
		t.Error("Load accepted an empty model")
	}
}

func TestFeatureExclusion(t *testing.T) {
	train := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	all := make([]int, features.NumFeatures)
	for i := range all {
		all[i] = i
	}
	model := Train(train, Config{ExcludeFeatures: all})
	// With every feature hidden the encoder sees only Unknowns: dim 0 and
	// constant predictions.
	if model.Encoder.Dim != 0 {
		t.Errorf("encoder dim = %d, want 0 with all features excluded", model.Encoder.Dim)
	}
	p0 := model.TakenProbability(train[0].Vectors[0])
	for _, v := range train[0].Vectors {
		if model.TakenProbability(v) != p0 {
			t.Error("blind model must predict a constant")
		}
	}
}

func TestUniformWeights(t *testing.T) {
	train := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	a := Train(train, Config{})
	b := Train(train, Config{UniformWeights: true})
	// Both must train; the learned functions will generally differ.
	if a.TrainStats.Epochs == 0 || b.TrainStats.Epochs == 0 {
		t.Fatal("training failed")
	}
}

func TestCrossValidate(t *testing.T) {
	corpus := []*ProgramData{
		analyzeSrc(t, "a", loopy, nil),
		analyzeSrc(t, "b", loopy2, nil),
		analyzeSrc(t, "c", `
int main() {
	int i;
	int n;
	n = 0;
	for (i = 0; i < 120; i = i + 1) {
		if (i % 2 == 0) { n = n + 1; }
	}
	return n;
}`, nil),
	}
	folds := CrossValidate(corpus, Config{})
	if len(folds) != 3 {
		t.Fatalf("%d folds, want 3", len(folds))
	}
	names := map[string]bool{}
	for _, f := range folds {
		names[f.Held] = true
		if f.TrainPrograms != 2 {
			t.Errorf("fold %s trained on %d programs", f.Held, f.TrainPrograms)
		}
		if f.MissRate < 0 || f.MissRate > 1 {
			t.Errorf("fold %s miss %g", f.Held, f.MissRate)
		}
	}
	if len(names) != 3 {
		t.Error("folds must cover every program")
	}
	if m := MeanMiss(folds); m < 0 || m > 1 {
		t.Errorf("mean miss %g", m)
	}
	byName := MissByProgram(folds)
	if len(byName) != 3 {
		t.Errorf("MissByProgram = %v", byName)
	}
	// Determinism: same corpus, same config, same results.
	again := CrossValidate(corpus, Config{})
	for i := range folds {
		if folds[i].MissRate != again[i].MissRate {
			t.Error("cross-validation is not deterministic")
		}
	}
}

func TestPredictorAlwaysPredicts(t *testing.T) {
	pd := analyzeSrc(t, "a", loopy, nil)
	model := Train([]*ProgramData{pd}, Config{})
	p := &Predictor{Model: model}
	for _, s := range pd.Sites.Sites {
		if _, ok := p.PredictSite(s); !ok {
			t.Fatal("ESP must predict every branch")
		}
	}
	if p.Name() == "" {
		t.Error("empty predictor name")
	}
	p.Label = "custom"
	if p.Name() != "custom" {
		t.Error("label override ignored")
	}
}

// TestCrossValidateSerialParity: the parallel CrossValidate must match the
// serial reference fold-for-fold, bitwise. The fold-level caching of prepared
// examples and the fold goroutines must not perturb any result.
func TestCrossValidateSerialParity(t *testing.T) {
	corpus := []*ProgramData{
		analyzeSrc(t, "a", loopy, nil),
		analyzeSrc(t, "b", loopy2, nil),
		analyzeSrc(t, "c", `
int main() {
	int i;
	int n;
	n = 0;
	for (i = 0; i < 90; i = i + 1) {
		if (i % 3 == 0) { n = n + 2; }
	}
	return n;
}`, nil),
	}
	for _, cfg := range []Config{
		{},
		{Hidden: 8, Seed: 5},
		{UniformWeights: true},
		{ExcludeFeatures: []int{features.FBrOpcode}},
	} {
		par := CrossValidate(corpus, cfg)
		ser := CrossValidateSerial(corpus, cfg)
		if len(par) != len(ser) {
			t.Fatalf("fold counts differ: %d vs %d", len(par), len(ser))
		}
		for i := range par {
			if par[i] != ser[i] {
				t.Errorf("cfg %+v fold %d: parallel %+v vs serial %+v",
					cfg, i, par[i], ser[i])
			}
		}
	}
}
