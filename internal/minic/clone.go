package minic

import "fmt"

// CloneProgram deep-copies a whole parsed program, dropping all checker
// annotations. The code generator clones before applying AST transforms so
// one parse can be compiled under many targets.
func CloneProgram(p *Program) *Program {
	out := &Program{Name: p.Name}
	for _, g := range p.Globals {
		d := *g
		d.Init = CloneExpr(g.Init)
		d.Sym = nil
		out.Globals = append(out.Globals, &d)
	}
	for _, fn := range p.Funcs {
		nf := &FuncDecl{Pos: fn.Pos, Name: fn.Name, Ret: fn.Ret}
		for _, prm := range fn.Params {
			d := *prm
			d.Sym = nil
			nf.Params = append(nf.Params, &d)
		}
		nf.Body = CloneStmt(fn.Body).(*BlockStmt)
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}

// CloneStmt deep-copies a statement tree. It must be applied to unchecked
// ASTs (clones carry no symbol or type annotations); the loop unroller uses
// it to replicate loop bodies before semantic analysis runs.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch st := s.(type) {
	case *BlockStmt:
		out := &BlockStmt{Pos: st.Pos}
		for _, inner := range st.Stmts {
			out.Stmts = append(out.Stmts, CloneStmt(inner))
		}
		return out
	case *DeclStmt:
		d := *st.Decl
		d.Init = CloneExpr(st.Decl.Init)
		d.Sym = nil
		return &DeclStmt{Decl: &d}
	case *IfStmt:
		return &IfStmt{Pos: st.Pos, Cond: CloneExpr(st.Cond),
			Then: CloneStmt(st.Then), Else: CloneStmt(st.Else)}
	case *WhileStmt:
		return &WhileStmt{Pos: st.Pos, Cond: CloneExpr(st.Cond), Body: CloneStmt(st.Body)}
	case *DoStmt:
		return &DoStmt{Pos: st.Pos, Body: CloneStmt(st.Body), Cond: CloneExpr(st.Cond)}
	case *ForStmt:
		return &ForStmt{Pos: st.Pos, Init: CloneStmt(st.Init), Cond: CloneExpr(st.Cond),
			Post: CloneStmt(st.Post), Body: CloneStmt(st.Body)}
	case *ReturnStmt:
		return &ReturnStmt{Pos: st.Pos, Value: CloneExpr(st.Value)}
	case *BreakStmt:
		cp := *st
		return &cp
	case *ContinueStmt:
		cp := *st
		return &cp
	case *ExprStmt:
		return &ExprStmt{Pos: st.Pos, X: CloneExpr(st.X)}
	case *AssignStmt:
		return &AssignStmt{Pos: st.Pos, Target: CloneExpr(st.Target), Value: CloneExpr(st.Value)}
	case *EmptyStmt:
		cp := *st
		return &cp
	}
	panic(fmt.Sprintf("minic: CloneStmt: unknown statement %T", s))
}

// CloneExpr deep-copies an expression tree, dropping checker annotations.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *IntLit:
		return &IntLit{Pos: x.Pos, Value: x.Value}
	case *FloatLit:
		return &FloatLit{Pos: x.Pos, Value: x.Value}
	case *NullLit:
		return &NullLit{Pos: x.Pos}
	case *Ident:
		return &Ident{Pos: x.Pos, Name: x.Name}
	case *BinExpr:
		return &BinExpr{Pos: x.Pos, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnExpr:
		return &UnExpr{Pos: x.Pos, Op: x.Op, X: CloneExpr(x.X)}
	case *IndexExpr:
		return &IndexExpr{Pos: x.Pos, X: CloneExpr(x.X), Idx: CloneExpr(x.Idx)}
	case *CallExpr:
		out := &CallExpr{Pos: x.Pos, Name: x.Name}
		for _, a := range x.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	case *CastExpr:
		return &CastExpr{Pos: x.Pos, To: x.To, X: CloneExpr(x.X)}
	}
	panic(fmt.Sprintf("minic: CloneExpr: unknown expression %T", e))
}

// HasLoopEscapes reports whether the statement tree contains a break,
// continue, or return that would escape the *current* loop level; nested
// loops' own breaks and continues do not count.
func HasLoopEscapes(s Stmt) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *BlockStmt:
		for _, inner := range st.Stmts {
			if HasLoopEscapes(inner) {
				return true
			}
		}
		return false
	case *IfStmt:
		return HasLoopEscapes(st.Then) || HasLoopEscapes(st.Else)
	case *WhileStmt, *DoStmt, *ForStmt:
		// breaks/continues inside bind to the nested loop; but returns still
		// escape. Walk for returns only.
		return hasReturn(st)
	case *ReturnStmt, *BreakStmt, *ContinueStmt:
		return true
	default:
		return false
	}
}

func hasReturn(s Stmt) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *BlockStmt:
		for _, inner := range st.Stmts {
			if hasReturn(inner) {
				return true
			}
		}
		return false
	case *IfStmt:
		return hasReturn(st.Then) || hasReturn(st.Else)
	case *WhileStmt:
		return hasReturn(st.Body)
	case *DoStmt:
		return hasReturn(st.Body)
	case *ForStmt:
		return hasReturn(st.Body)
	case *ReturnStmt:
		return true
	default:
		return false
	}
}
