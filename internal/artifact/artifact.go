// Package artifact is a persistent, content-addressed cache for derived
// program analyses. Profiling a corpus program is deterministic — the same
// IR under the same interpreter configuration always produces the same
// profile — so the (profile, feature vectors) pair can be stored on disk
// keyed by a hash of its inputs and reloaded by any later process, making
// warm corpus analysis skip the interpreter entirely.
//
// A cache entry is one file, dir/<key>.espa:
//
//	magic "ESPA"
//	format-version string   (length-prefixed; must equal FormatVersion)
//	key hex string          (length-prefixed; must equal the file's name key)
//	payload sha256          (32 bytes)
//	payload                 (gob-encoded Record)
//
// Every field is verified on load and any mismatch — truncation, corruption,
// a stale format version, a file renamed to the wrong key — is treated as a
// cache miss, never an error: the caller recomputes and overwrites. Writes
// go to a temp file in the cache directory which is synced and renamed into
// place, so concurrent readers and a crash mid-write can observe only the
// old entry, the new entry, or a miss — never a torn file.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
)

// FormatVersion names the encoding of both the cache key and the payload.
// Bump it whenever cached bytes could change meaning: the canonical IR
// encoding (ir.AppendCanonical), the observable semantics of the
// interpreter or feature extractor, or the Record/Profile/Vector types
// themselves. A bump invalidates every existing entry (old files fail the
// version check and recompute); forgetting one serves stale results.
const FormatVersion = "espa-3" // espa-3: feature vectors grew to 27 values (inter-branch correlation features)

var magic = [4]byte{'E', 'S', 'P', 'A'}

// Fault-injection sites: a fired load behaves as a miss, a fired store
// drops the write. Both are invisible to correctness — the cache is an
// optimization — which is exactly what the chaos tests assert.
var (
	siteLoad  = faultinject.Register("artifact.load")
	siteStore = faultinject.Register("artifact.store")
)

// Record is the cached analysis of one program: everything core.Analyze
// derives from executing it, minus what is recomputed from the IR on a hit
// (the site structures, which hold pointers into the live program).
type Record struct {
	Profile *interp.Profile
	Vectors []features.Vector
}

// Cache is an open cache directory. The zero value is not usable; a nil
// *Cache is valid everywhere and never hits, so "no cache" needs no
// branching at call sites.
type Cache struct {
	dir string

	// maxBytes bounds the directory's total entry size; 0 disables GC.
	maxBytes atomic.Int64
	gcMu     sync.Mutex // serializes eviction sweeps
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// DefaultDir resolves a cache directory from an explicit flag value, the
// ESPCACHE_DIR environment variable, or the default ".espcache", in that
// order.
func DefaultDir(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if env := os.Getenv("ESPCACHE_DIR"); env != "" {
		return env
	}
	return ".espcache"
}

// Key returns the content address of one analysis: sha256 over the format
// version, the canonical IR bytes, and every Config field that can alter
// execution, in fully-defaulted (Canonical) form so a zero config and an
// explicit-default config address the same entry.
func Key(prog *ir.Program, cfg interp.Config) string {
	h := sha256.New()
	io.WriteString(h, FormatVersion)
	h.Write([]byte{0})
	h.Write(ir.AppendCanonical(nil, prog))
	c := cfg.Canonical()
	fmt.Fprintf(h, "\x00seed=%d maxinsns=%d memwords=%d depth=%d edges=%t input=%v",
		c.Seed, c.MaxInsns, c.MemWords, c.MaxCallDepth, c.CollectEdges, c.Input)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".espa")
}

// Load returns the record stored under key, or ok=false on any kind of
// miss: absent, truncated, corrupt, stale version, or mis-keyed files all
// recompute rather than error.
func (c *Cache) Load(key string) (*Record, bool) {
	if c == nil {
		return nil, false
	}
	if faultinject.Fire(siteLoad) != nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	rec, ok := DecodeRecord(data, key)
	if !ok {
		return nil, false
	}
	c.touch(key)
	return rec, true
}

// DecodeRecord verifies a framed cache file (magic, format version, key
// echo, payload checksum) against key and decodes its payload. It is the
// trust boundary for bytes that arrived over the network: a cluster peer's
// response goes through the exact same checks as a local file, so a
// corrupt or mis-keyed peer payload is a miss, never a poisoned entry.
func DecodeRecord(data []byte, key string) (*Record, bool) {
	payload, ok := verify(data, key)
	if !ok {
		return nil, false
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, false
	}
	if rec.Profile == nil {
		return nil, false
	}
	return &rec, true
}

// LoadRaw returns the verified framed bytes of the entry under key — the
// whole on-disk file, checksum and all — for the peer protocol to ship
// without re-encoding. Verification happens before serving so a replica
// never forwards a torn or mis-keyed file to a peer.
func (c *Cache) LoadRaw(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	if faultinject.Fire(siteLoad) != nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	if _, ok := verify(data, key); !ok {
		return nil, false
	}
	c.touch(key)
	return data, true
}

// StoreRaw installs framed bytes received from a peer, verifying the full
// framing against key first so a malicious or corrupt peer response can
// never land on disk. The write is atomic exactly like Store's.
func (c *Cache) StoreRaw(key string, data []byte) error {
	if c == nil {
		return nil
	}
	if _, ok := verify(data, key); !ok {
		return fmt.Errorf("artifact: raw store: payload fails verification for key %.16s", key)
	}
	if err := faultinject.Fire(siteStore); err != nil {
		return err
	}
	if err := c.writeAtomic(key, data); err != nil {
		return err
	}
	c.gc()
	return nil
}

// Store writes the record under key atomically. A failed store leaves no
// partial entry; the error is reported so callers can warn, but correctness
// never depends on it.
func (c *Cache) Store(key string, rec *Record) error {
	if c == nil {
		return nil
	}
	if err := faultinject.Fire(siteStore); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return fmt.Errorf("artifact: encode: %w", err)
	}
	if err := c.writeAtomic(key, encodeFile(key, payload.Bytes())); err != nil {
		return err
	}
	c.gc()
	return nil
}

func (c *Cache) writeAtomic(key string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, ".espa-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// SetMaxBytes bounds the total size of cache entries; when a store pushes
// the directory past the bound, the least-recently-used entries (by
// modification time, which Load hits refresh) are evicted until it fits.
// Zero or negative disables eviction. Safe to call concurrently with loads
// and stores.
func (c *Cache) SetMaxBytes(n int64) {
	if c == nil {
		return
	}
	c.maxBytes.Store(n)
	c.gc()
}

// MaxBytes returns the configured size bound (0 = unbounded).
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes.Load()
}

// touch refreshes an entry's timestamps on a hit so LRU eviction keeps
// hot entries. Best-effort: a racing eviction or read-only directory just
// means the entry ages normally.
func (c *Cache) touch(key string) {
	if c.maxBytes.Load() <= 0 {
		return
	}
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now)
}

// gc evicts least-recently-used entries until the directory fits the
// configured bound. Eviction is a plain unlink of a fully-written entry:
// a reader that already opened the file keeps its data (POSIX semantics),
// and a reader that races the unlink sees a clean miss — never a torn
// entry. Temp files from in-flight writes are left alone.
func (c *Cache) gc() {
	limit := c.maxBytes.Load()
	if limit <= 0 {
		return
	}
	c.gcMu.Lock()
	defer c.gcMu.Unlock()

	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".espa" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // racing eviction or store; skip
		}
		files = append(files, entry{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= limit {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		return files[i].mtime.Before(files[j].mtime)
	})
	for _, f := range files {
		if total <= limit {
			break
		}
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			total -= f.size
		}
	}
}

func encodeFile(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	b := append([]byte(nil), magic[:]...)
	b = appendLenPrefixed(b, []byte(FormatVersion))
	b = appendLenPrefixed(b, []byte(key))
	b = append(b, sum[:]...)
	return append(b, payload...)
}

func appendLenPrefixed(b, s []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// verify checks magic, version, key echo, and payload checksum, returning
// the payload bytes when everything matches.
func verify(data []byte, key string) ([]byte, bool) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, false
	}
	rest := data[len(magic):]
	version, rest, ok := readLenPrefixed(rest)
	if !ok || string(version) != FormatVersion {
		return nil, false
	}
	gotKey, rest, ok := readLenPrefixed(rest)
	if !ok || string(gotKey) != key {
		return nil, false
	}
	if len(rest) < sha256.Size {
		return nil, false
	}
	payload := rest[sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], rest[:sha256.Size]) {
		return nil, false
	}
	return payload, true
}

func readLenPrefixed(b []byte) (s, rest []byte, ok bool) {
	n, width := binary.Uvarint(b)
	if width <= 0 || n > uint64(len(b)-width) {
		return nil, nil, false
	}
	return b[width : width+int(n)], b[width+int(n):], true
}
