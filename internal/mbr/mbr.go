// Package mbr implements memory-based reasoning — the second alternative
// classifier the paper names in Section 6: "We are also interested in
// seeing how effective other classification techniques, such as
// memory-based reasoning or decision trees, will be for ESP prediction."
//
// The memory is simply the corpus itself: every training branch is stored
// with its feature values, taken-probability, and normalized execution
// weight. A query branch is matched against the memory by weighted feature
// overlap (a Hamming-style similarity over the categorical features, with
// per-feature weights learned from how informative each feature is on the
// corpus), and the prediction is the weight-blended taken-probability of
// the K most similar memories.
package mbr

import (
	"math"
	"sort"

	"repro/internal/features"
)

// Example is one stored memory: a branch's features and dynamic behaviour.
type Example struct {
	Values [features.NumFeatures]string
	// Target is the branch's observed taken-probability.
	Target float64
	// Weight is the branch's normalized execution weight n_k.
	Weight float64
}

// Config parameterizes the model.
type Config struct {
	// K is the neighborhood size (default 9).
	K int
	// InformationWeights enables per-feature weights derived from each
	// feature's information gain on the memory (default on via NewModel).
	InformationWeights bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 9
	}
	return c
}

// Model is a trained memory-based reasoner.
type Model struct {
	Cfg    Config                        `json:"cfg"`
	Memory []Example                     `json:"memory"`
	FeatW  [features.NumFeatures]float64 `json:"featw"`
	// Prior is the weighted mean taken-probability, used when the memory
	// is empty.
	Prior float64 `json:"prior"`
}

// New builds a model from training examples.
func New(examples []Example, cfg Config) *Model {
	cfg = cfg.withDefaults()
	m := &Model{Cfg: cfg, Memory: examples, Prior: 0.5}
	var wsum, tsum float64
	for _, e := range examples {
		wsum += e.Weight
		tsum += e.Weight * e.Target
	}
	if wsum > 0 {
		m.Prior = tsum / wsum
	}
	for f := range m.FeatW {
		m.FeatW[f] = 1
	}
	if cfg.InformationWeights {
		m.computeInformationWeights()
	}
	return m
}

// computeInformationWeights sets each feature's weight to its information
// gain about the (thresholded) branch direction over the memory, so that
// uninformative features do not dilute the similarity measure — the
// memory-based analog of the paper's "the neural net ... is capable of
// ignoring information that is irrelevant".
func (m *Model) computeInformationWeights() {
	var wTaken, wNot float64
	for _, e := range m.Memory {
		wTaken += e.Weight * e.Target
		wNot += e.Weight * (1 - e.Target)
	}
	if wTaken+wNot <= 0 {
		// A weightless memory carries no measurable information; keep the
		// uniform weights rather than dividing by the zero total below.
		return
	}
	base := entropy(wTaken, wNot)
	for f := 0; f < features.NumFeatures; f++ {
		type bucket struct{ taken, not float64 }
		buckets := make(map[string]*bucket)
		for _, e := range m.Memory {
			b := buckets[e.Values[f]]
			if b == nil {
				b = &bucket{}
				buckets[e.Values[f]] = b
			}
			b.taken += e.Weight * e.Target
			b.not += e.Weight * (1 - e.Target)
		}
		var cond float64
		total := wTaken + wNot
		for _, b := range buckets {
			share := (b.taken + b.not) / total
			cond += share * entropy(b.taken, b.not)
		}
		gain := base - cond
		if gain < 0 {
			gain = 0
		}
		// Floor keeps every feature minimally active so ties break sanely.
		m.FeatW[f] = 0.05 + gain
	}
}

func entropy(a, b float64) float64 {
	total := a + b
	if total <= 0 {
		return 0
	}
	e := 0.0
	for _, x := range [2]float64{a, b} {
		if x > 0 {
			p := x / total
			e -= p * math.Log(p)
		}
	}
	return e
}

// Similarity returns the weighted feature-overlap between a query and a
// memory (higher is more similar). Unknown values never match.
func (m *Model) Similarity(query, memory [features.NumFeatures]string) float64 {
	var s float64
	for f := 0; f < features.NumFeatures; f++ {
		if query[f] == features.Unknown || memory[f] == features.Unknown {
			continue
		}
		if query[f] == memory[f] {
			s += m.FeatW[f]
		}
	}
	return s
}

// Predict returns the estimated taken-probability for a feature vector: the
// execution-weight-blended target of the K most similar memories.
func (m *Model) Predict(values [features.NumFeatures]string) float64 {
	if len(m.Memory) == 0 {
		return m.Prior
	}
	type scored struct {
		sim float64
		idx int
	}
	top := make([]scored, 0, m.Cfg.K+1)
	for i := range m.Memory {
		sim := m.Similarity(values, m.Memory[i].Values)
		if len(top) < m.Cfg.K {
			top = append(top, scored{sim, i})
			sort.Slice(top, func(a, b int) bool { return top[a].sim > top[b].sim })
			continue
		}
		if sim > top[len(top)-1].sim {
			top[len(top)-1] = scored{sim, i}
			sort.Slice(top, func(a, b int) bool { return top[a].sim > top[b].sim })
		}
	}
	var wsum, tsum float64
	for _, sc := range top {
		e := m.Memory[sc.idx]
		// Blend by execution weight and similarity so hot, close memories
		// dominate.
		w := (e.Weight + 1e-6) * (sc.sim + 1e-6)
		wsum += w
		tsum += w * e.Target
	}
	if wsum == 0 {
		return m.Prior
	}
	return tsum / wsum
}

// Size returns the number of stored memories.
func (m *Model) Size() int { return len(m.Memory) }
