//go:build amd64 && !purego

package neural

// useAVX gates the assembly kernels on hardware and OS support (AVX state
// must be enabled in XCR0, not just present in CPUID).
var useAVX = x86HasAVX()

// x86HasAVX reports CPU + OS support for the AVX kernels (implemented in
// csr_kernels_amd64.s).
func x86HasAVX() bool

//go:noescape
func csrGatherAVX(h, w *float64, idx *int32, val *float64, nnz, n, stride int)

//go:noescape
func csrScatterAVX(gw, dh *float64, idx *int32, val *float64, nnz, n, stride int)

func csrGather(h, w []float64, idx []int32, val []float64, n, stride int) {
	if useAVX && len(idx) > 0 && n > 0 {
		csrGatherAVX(&h[0], &w[0], &idx[0], &val[0], len(idx), n, stride)
		return
	}
	csrGatherGeneric(h, w, idx, val, n, stride)
}

func csrScatter(gw, dh []float64, idx []int32, val []float64, n, stride int) {
	if useAVX && len(idx) > 0 && n > 0 {
		csrScatterAVX(&gw[0], &dh[0], &idx[0], &val[0], len(idx), n, stride)
		return
	}
	csrScatterGeneric(gw, dh, idx, val, n, stride)
}
