package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/obs"
)

// ErrDraining is returned to submissions that arrive after the pool has
// begun its graceful drain.
var ErrDraining = errors.New("serve: server is draining")

// job is one prediction request in flight through the pool: a batch of
// feature vectors and the slot its probabilities land in. The timestamps
// let the requester split its wait into queue time and model time; started
// and finished are written by the worker before the send on done, so they
// are safe to read only after receiving from done.
//
// done is a 1-buffered channel that the worker sends to (rather than
// closes), so a job object is reusable: after the requester receives the
// completion token the channel is empty again and the job can carry the
// next request (the arena keeps one per pooled request). The buffer also
// means the worker never blocks on a requester that stopped waiting.
type job struct {
	ctx      context.Context
	vecs     []features.Vector
	probs    []float64
	err      error
	done     chan struct{}
	enqueued time.Time
	started  time.Time
	finished time.Time
}

// pool is the batching worker pool. Requests enqueue jobs; each worker
// drains up to maxBatch queued jobs at a time, folds all of their vectors
// into one model pass over a single pooled scratch buffer, and scatters the
// probabilities back. Batching amortizes the scratch acquisition and keeps
// the model's buffers hot under concurrent load.
type pool struct {
	model    *core.Model
	jobs     chan *job
	maxBatch int
	nworkers int
	metrics  *metrics

	mu       sync.RWMutex // guards draining against sends on jobs
	draining bool

	busy atomic.Int64 // workers currently inside a batch

	// Approximate queue-age tracking: submit stamps enqueue times into a
	// ring indexed by a send sequence number, workers advance a receive
	// sequence number, and the age gauge reads the slot at the receive
	// cursor. All cells are atomics, so the gauge is lock-free and at worst
	// a few jobs stale.
	enqSeq   atomic.Uint64
	deqSeq   atomic.Uint64
	enqTimes []atomic.Int64 // UnixNano per sequence slot

	workers sync.WaitGroup
}

func newPool(model *core.Model, workers, maxBatch, queueDepth int, m *metrics) *pool {
	p := &pool{
		model:    model,
		jobs:     make(chan *job, queueDepth),
		maxBatch: maxBatch,
		nworkers: workers,
		metrics:  m,
		enqTimes: make([]atomic.Int64, queueDepth+1),
	}
	// Gauges over pool state are registered by serve.New through the current
	// model version, not here: pools are created again on every hot reload
	// and the gauge slice is read lock-free on scrape.
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// queueAge estimates how long the job at the head of the queue has been
// waiting; zero when the queue is empty.
func (p *pool) queueAge() time.Duration {
	deq := p.deqSeq.Load()
	if p.enqSeq.Load() <= deq {
		return 0
	}
	ns := p.enqTimes[deq%uint64(len(p.enqTimes))].Load()
	if ns == 0 {
		return 0
	}
	age := time.Since(time.Unix(0, ns))
	if age < 0 {
		return 0
	}
	return age
}

// submit enqueues the vectors and blocks until a worker has predicted them
// or the context expires. The returned slice is owned by the caller. On
// success the queue-wait and forward stages are recorded into the context's
// trace, if any.
func (p *pool) submit(ctx context.Context, vecs []features.Vector) ([]float64, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	j := &job{
		ctx:      ctx,
		vecs:     vecs,
		probs:    make([]float64, len(vecs)),
		done:     make(chan struct{}, 1),
		enqueued: time.Now(),
	}
	if _, err := p.submitJob(j); err != nil {
		return nil, err
	}
	return j.probs, nil
}

// submitJob enqueues a caller-owned job and blocks until a worker completes
// it or the job's context expires. The bool reports whether the caller may
// reuse the job and the buffers it references: false means the caller
// stopped waiting while a worker still owned them, so they must not be
// pooled (abandon them to the garbage collector).
func (p *pool) submitJob(j *job) (reusable bool, err error) {
	p.mu.RLock()
	if p.draining {
		p.mu.RUnlock()
		return true, ErrDraining
	}
	select {
	case p.jobs <- j:
		seq := p.enqSeq.Add(1) - 1
		p.enqTimes[seq%uint64(len(p.enqTimes))].Store(j.enqueued.UnixNano())
		p.mu.RUnlock()
	case <-j.ctx.Done():
		p.mu.RUnlock()
		return true, j.ctx.Err()
	}
	select {
	case <-j.done:
		if j.err != nil {
			return true, j.err
		}
		if tr := obs.FromContext(j.ctx); tr != nil && !j.started.IsZero() {
			tr.AddSpan(obs.StageQueueWait, j.enqueued, j.started.Sub(j.enqueued))
			tr.AddSpan(obs.StageForward, j.started, j.finished.Sub(j.started))
		}
		return true, nil
	case <-j.ctx.Done():
		// The worker still owns the job and will complete it; the caller
		// just stops waiting.
		return false, j.ctx.Err()
	}
}

// drain stops accepting new jobs, lets the workers finish everything already
// queued, and waits for them to exit (or for ctx to expire).
func (p *pool) drain(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		close(p.jobs)
	}
	finished := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dequeued accounts one job leaving the queue: the age cursor advances and
// the job's wait lands in the queue-wait histogram.
func (p *pool) dequeued(j *job) {
	p.deqSeq.Add(1)
	p.metrics.queueWait.Observe(time.Since(j.enqueued).Microseconds())
}

// worker drains batches of jobs and predicts each batch's vectors in one
// model pass.
func (p *pool) worker() {
	defer p.workers.Done()
	batch := make([]*job, 0, p.maxBatch)
	var vecs []features.Vector
	var probs []float64
	for j := range p.jobs {
		p.busy.Add(1)
		p.dequeued(j)
		batch = append(batch[:0], j)
		// Opportunistically fold whatever else is already queued into the
		// same pass, up to maxBatch jobs.
	fill:
		for len(batch) < p.maxBatch {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break fill
				}
				p.dequeued(j2)
				batch = append(batch, j2)
			default:
				break fill
			}
		}
		start := time.Now()
		vecs = vecs[:0]
		live := 0
		for _, b := range batch {
			b.started = start
			if b.ctx.Err() != nil {
				// The requester has already gone; don't spend model time.
				b.err = b.ctx.Err()
				continue
			}
			vecs = append(vecs, b.vecs...)
			live++
		}
		p.metrics.batches.Add(1)
		p.metrics.batchedJobs.Add(int64(len(batch)))
		if live > 0 {
			if cap(probs) < len(vecs) {
				probs = make([]float64, len(vecs))
			}
			probs = probs[:len(vecs)]
			if err := p.forward(vecs, probs); err != nil {
				// The pass failed; every live job in the batch shares the
				// error and the worker keeps serving.
				for _, b := range batch {
					if b.err == nil {
						b.err = err
					}
				}
			} else {
				p.metrics.predictedVecs.Add(int64(len(vecs)))
				off := 0
				for _, b := range batch {
					if b.err != nil {
						continue
					}
					copy(b.probs, probs[off:off+len(b.vecs)])
					off += len(b.vecs)
				}
			}
		}
		end := time.Now()
		for _, b := range batch {
			b.finished = end
			b.done <- struct{}{} // 1-buffered: never blocks, job stays reusable
		}
		p.busy.Add(-1)
	}
}

// forward runs one model pass, converting panics into errors so a poisoned
// batch cannot take the worker (and with it the process) down.
func (p *pool) forward(vecs []features.Vector, probs []float64) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p.metrics.panicsRecovered.Add(1)
			err = fmt.Errorf("serve: model pass panicked: %v", rec)
		}
	}()
	if err := faultinject.Fire(siteForward); err != nil {
		return err
	}
	p.model.TakenProbabilities(vecs, probs)
	return nil
}
