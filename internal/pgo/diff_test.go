package pgo

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/gencorpus"
	"repro/internal/interp"
)

// diffEntries is the differential corpus: all 46 real programs plus a
// seeded generated slice covering every branch-character mix.
func diffEntries() []corpus.Entry {
	entries := corpus.All()
	spec := gencorpus.Spec{Seed: 1995, N: 10, Opt: gencorpus.Options{Prints: true}}
	return append(entries, spec.Entries()...)
}

// TestGuidedOptimizationPreservesBehaviour is the pipeline's safety net:
// for every corpus and generated program, every guided configuration must
// terminate and produce bit-identical observable behaviour (printed
// outputs, float outputs, exit result) to the plain unoptimized compile.
// Subtests run in parallel, so `go test -race ./internal/pgo` doubles as a
// data-race check over the whole pipeline.
func TestGuidedOptimizationPreservesBehaviour(t *testing.T) {
	type sourceCase struct {
		name string
		mk   func(run interp.Config) SourceFactory
	}
	sources := []sourceCase{
		{"uniform", func(interp.Config) SourceFactory { return Fixed(Uniform{}) }},
		{"heuristic", func(interp.Config) SourceFactory { return Fixed(NewHeuristic()) }},
		{"perfect", func(run interp.Config) SourceFactory { return MeasuredFactory(run) }},
	}
	opt := DefaultOptions()
	for _, e := range diffEntries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			ast, err := e.Parse()
			if err != nil {
				t.Fatal(err)
			}
			plain, err := codegen.Compile(ast, e.Language, codegen.Default)
			if err != nil {
				t.Fatal(err)
			}
			run := e.RunConfig()
			want, err := interp.Run(plain, run)
			if err != nil {
				t.Fatalf("unoptimized run: %v", err)
			}
			for _, sc := range sources {
				guided, err := Optimize(ast, e.Language, sc.mk(run), opt)
				if err != nil {
					t.Fatalf("%s: %v", sc.name, err)
				}
				got, err := interp.Run(guided, run)
				if err != nil {
					t.Fatalf("%s: guided run: %v", sc.name, err)
				}
				if err := sameBehaviour(want, got); err != nil {
					t.Errorf("%s: %v", sc.name, err)
				}
			}
		})
	}
}

func sameBehaviour(want, got *interp.Profile) error {
	if got.Result != want.Result {
		return fmt.Errorf("result %d, want %d", got.Result, want.Result)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		return fmt.Errorf("outputs diverged: got %d values, want %d", len(got.Outputs), len(want.Outputs))
	}
	if !reflect.DeepEqual(got.FOutputs, want.FOutputs) {
		return fmt.Errorf("float outputs diverged: got %d values, want %d", len(got.FOutputs), len(want.FOutputs))
	}
	return nil
}

// TestGuidedReferencePathAgrees cross-checks the two interpreter
// implementations on a sample of guided binaries: the micro-op path and
// the reference path must agree instruction for instruction even after
// layout has rewritten every function.
func TestGuidedReferencePathAgrees(t *testing.T) {
	names := []string{"compress", "espresso", "tomcatv", "boyer"}
	for _, name := range names {
		e, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus entry %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ast, err := e.Parse()
			if err != nil {
				t.Fatal(err)
			}
			guided, err := Optimize(ast, e.Language, Fixed(NewHeuristic()), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			run := e.RunConfig()
			run.CollectEdges = true
			a, err := interp.Run(guided, run)
			if err != nil {
				t.Fatal(err)
			}
			b, err := interp.RunReference(guided, run)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("micro-op and reference interpreters disagree on guided binary")
			}
		})
	}
}
