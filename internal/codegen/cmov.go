package codegen

import (
	"repro/internal/ir"
	"repro/internal/minic"
)

// tryCmovIf converts branches of the form
//
//	if (c) x = e;            or            if (c) x = e1; else x = e2;
//
// into conditional moves when the target is a scalar variable and the moved
// values are safe to speculate. This is the Alpha conditional-move effect
// the paper describes in Section 5.2: "the Alpha has a conditional move
// operation that obliviates the need for many short conditional branches,
// reducing the number of conditional branches that are executed."
// It reports whether the conversion was applied.
func (g *generator) tryCmovIf(st *minic.IfStmt) bool {
	thenAsn := singleAssign(st.Then)
	if thenAsn == nil {
		return false
	}
	target, ok := thenAsn.Target.(*minic.Ident)
	if !ok || target.Sym == nil || target.Sym.Type.IsArray() {
		return false
	}
	if !speculationSafe(thenAsn.Value) || !branchFreeCond(st.Cond) {
		return false
	}
	var elseAsn *minic.AssignStmt
	if st.Else != nil {
		elseAsn = singleAssign(st.Else)
		if elseAsn == nil {
			return false
		}
		elseTarget, ok := elseAsn.Target.(*minic.Ident)
		if !ok || elseTarget.Sym != target.Sym {
			return false
		}
		if !speculationSafe(elseAsn.Value) {
			return false
		}
	}

	isFloat := target.Sym.Type.IsFloat()
	cv := g.genCondValueFlat(st.Cond) // int 0/1 (or scalar condition value)
	g.maybeSpill(&cv)
	tv := g.genExpr(thenAsn.Value)
	g.maybeSpill(&tv)

	// The "old" value: either the current target value (if-without-else) or
	// the else-branch value.
	var old value
	if elseAsn != nil {
		old = g.genExpr(elseAsn.Value)
	} else {
		old = g.genExpr(target)
	}
	cv = g.reload(cv)
	tv = g.reload(tv)

	if isFloat {
		fc := g.fltPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpCvtQT, Dst: fc, A: cv.reg})
		g.fb.Emit(ir.Instr{Op: ir.OpFCmovNe, Dst: old.reg, A: fc, B: tv.reg})
		g.fltPool.release(fc)
	} else {
		g.fb.Emit(ir.Instr{Op: ir.OpCmovNe, Dst: old.reg, A: cv.reg, B: tv.reg})
	}
	g.freeVal(cv)
	g.freeVal(tv)
	g.genStoreTo(target, old)
	g.freeVal(old)
	return true
}

// singleAssign unwraps a statement that is exactly one assignment.
func singleAssign(s minic.Stmt) *minic.AssignStmt {
	switch st := s.(type) {
	case *minic.AssignStmt:
		return st
	case *minic.BlockStmt:
		if len(st.Stmts) == 1 {
			return singleAssign(st.Stmts[0])
		}
	}
	return nil
}

// speculationSafe reports whether evaluating the expression unconditionally
// is always safe and side-effect free: no calls, no memory dereferences, no
// division (which can fault).
func speculationSafe(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.NullLit:
		return true
	case *minic.Ident:
		// Scalar loads and decayed array addresses are always-valid reads.
		return true
	case *minic.BinExpr:
		switch x.Op {
		case minic.OpAdd, minic.OpSub, minic.OpMul,
			minic.OpEq, minic.OpNe, minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe,
			minic.OpAnd, minic.OpOr: // safe only when flattened branch-free
			return speculationSafe(x.L) && speculationSafe(x.R)
		}
		return false
	case *minic.UnExpr:
		if x.Op == minic.OpNeg || x.Op == minic.OpNot || x.Op == minic.OpAddr {
			return speculationSafe(x.X)
		}
		return false
	case *minic.CastExpr:
		return speculationSafe(x.X)
	}
	return false
}

// branchFreeCond reports whether the condition can be evaluated as a value
// without introducing control flow. Short-circuit operators are allowed
// when every operand is a speculation-safe scalar expression (no memory
// dereferences, no calls): the code generator then flattens them into
// bitwise and/or of comparison results, the way Alpha compilers feed
// conditional moves.
func branchFreeCond(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.IntLit, *minic.FloatLit, *minic.NullLit, *minic.Ident:
		return true
	case *minic.BinExpr:
		if x.Op == minic.OpAnd || x.Op == minic.OpOr {
			// Flattening evaluates both sides unconditionally and combines
			// them with bitwise and/or, so both must be safe to speculate
			// and guaranteed 0/1-valued (comparisons, negations, or nested
			// logical operators).
			return booleanValued(x.L) && booleanValued(x.R) &&
				branchFreeCond(x.L) && branchFreeCond(x.R) &&
				speculationSafe(x.L) && speculationSafe(x.R)
		}
		return branchFreeCond(x.L) && branchFreeCond(x.R)
	case *minic.UnExpr:
		if x.Op == minic.OpDeref {
			return false
		}
		return branchFreeCond(x.X)
	case *minic.IndexExpr:
		return false
	case *minic.CastExpr:
		return branchFreeCond(x.X)
	default:
		return false
	}
}

// booleanValued reports whether the expression always evaluates to 0 or 1.
func booleanValued(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.BinExpr:
		return x.Op.IsComparison() || x.Op == minic.OpAnd || x.Op == minic.OpOr
	case *minic.UnExpr:
		return x.Op == minic.OpNot
	case *minic.IntLit:
		return x.Value == 0 || x.Value == 1
	}
	return false
}

// genCondValueFlat materializes a branch-free condition as a 0/1 integer,
// flattening && and || into bitwise and/or of their operands' values.
func (g *generator) genCondValueFlat(e minic.Expr) value {
	if x, ok := e.(*minic.BinExpr); ok && (x.Op == minic.OpAnd || x.Op == minic.OpOr) {
		lv := g.genCondValueFlat(x.L)
		g.maybeSpill(&lv)
		rv := g.genCondValueFlat(x.R)
		lv = g.reload(lv)
		op := ir.OpAndQ
		if x.Op == minic.OpOr {
			op = ir.OpOrQ
		}
		g.fb.Op3(op, lv.reg, lv.reg, rv.reg)
		g.freeVal(rv)
		return lv
	}
	return g.genExpr(e)
}
