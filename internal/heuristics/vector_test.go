package heuristics

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/features"
)

// vectorTestSites compiles a few corpus programs and returns their branch
// sites paired with extracted Table 2 vectors.
func vectorTestSites(t *testing.T) ([]*features.Site, []features.Vector) {
	t.Helper()
	var sites []*features.Site
	var vecs []features.Vector
	for _, name := range []string{"bc", "grep", "sort", "eqntott"} {
		e, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("no corpus entry %q", name)
		}
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			t.Fatal(err)
		}
		ps := features.Collect(prog)
		for _, s := range ps.Sites {
			sites = append(sites, s)
			vecs = append(vecs, features.Of(s))
		}
	}
	if len(sites) < 100 {
		t.Fatalf("only %d sites collected", len(sites))
	}
	return sites, vecs
}

// TestVectorApplyMatchesSiteForExactHeuristics: the heuristics whose
// predicates the Table 2 vector stores verbatim must agree with the
// CFG-based forms on every branch of real compiled programs.
func TestVectorApplyMatchesSiteForExactHeuristics(t *testing.T) {
	sites, vecs := vectorTestSites(t)
	exact := []Heuristic{LoopBranch, Guard, LoopHeader, Call}
	var cfg Config
	for _, h := range exact {
		for i, s := range sites {
			site := Apply(h, s, cfg)
			vec := VectorApply(h, &vecs[i], cfg)
			if site != vec {
				t.Errorf("%s at %s: site=%s vector=%s", h, s.Ref, site, vec)
			}
		}
	}
	// Flipped Call polarity must flow through the vector form too.
	flipped := Config{CallPredictsTaken: true}
	for i, s := range sites {
		if Apply(Call, s, flipped) != VectorApply(Call, &vecs[i], flipped) {
			t.Errorf("Call polarity mismatch at %s", s.Ref)
		}
	}
}

// TestVectorApplyUnrecoverableNeverFire: Pointer and Store inspect state the
// vector does not carry; their vector forms must always decline rather than
// guess.
func TestVectorApplyUnrecoverableNeverFire(t *testing.T) {
	_, vecs := vectorTestSites(t)
	for _, h := range []Heuristic{Pointer, Store} {
		for i := range vecs {
			if p := VectorApply(h, &vecs[i], Config{}); p != None {
				t.Fatalf("%s fired on a vector: %s", h, p)
			}
		}
	}
}

// TestDSHCVectorCoverageAndDeterminism: the vector-based Dempster-Shafer
// combination must cover a substantial share of real branches (it is the
// degraded-mode answer) and must be a pure function of the vector.
func TestDSHCVectorCoverageAndDeterminism(t *testing.T) {
	_, vecs := vectorTestSites(t)
	d := NewDSHCBallLarus()
	covered := 0
	for i := range vecs {
		p1, ok1 := d.TakenProbabilityFromVector(&vecs[i])
		p2, ok2 := d.TakenProbabilityFromVector(&vecs[i])
		if p1 != p2 || ok1 != ok2 {
			t.Fatalf("vector %d: nondeterministic answer", i)
		}
		if ok1 {
			covered++
			if p1 < 0 || p1 > 1 {
				t.Fatalf("vector %d: probability %v out of range", i, p1)
			}
		} else if p1 != 0.5 {
			t.Fatalf("vector %d: declined but probability %v != 0.5", i, p1)
		}
	}
	if frac := float64(covered) / float64(len(vecs)); frac < 0.5 {
		t.Fatalf("vector DSHC covers only %.0f%% of %d branches", 100*frac, len(vecs))
	}
}

// TestAPHCVectorFirstMatchOrder: the vector APHC must respect the fixed
// order — a branch where Loop Branch applies must be decided by it even if
// later heuristics disagree.
func TestAPHCVectorFirstMatchOrder(t *testing.T) {
	_, vecs := vectorTestSites(t)
	a := NewAPHC()
	for i := range vecs {
		pred, h, ok := a.PredictVector(&vecs[i])
		if !ok {
			continue
		}
		if pred == None {
			t.Fatalf("vector %d: applied with None prediction", i)
		}
		// The reported heuristic must itself produce the prediction.
		if got := VectorApply(h, &vecs[i], a.Cfg); got != pred {
			t.Fatalf("vector %d: reported %s=%s but VectorApply says %s", i, h, pred, got)
		}
		// And no earlier heuristic in the order may have applied.
		for _, earlier := range DefaultOrder {
			if earlier == h {
				break
			}
			if VectorApply(earlier, &vecs[i], a.Cfg) != None {
				t.Fatalf("vector %d: %s fired but earlier %s also applies", i, h, earlier)
			}
		}
	}
}
