package experiments

import (
	"context"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/gencorpus"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// CorpusSizePoint is ESP's cross-validated miss rate with a corpus prefix
// of the given size, against APHC on the same held-out programs.
type CorpusSizePoint struct {
	Programs int
	ESP      float64
	APHC     float64
}

// CorpusSizeResult reproduces the paper's corpus-size observation (Section
// 3.1.2): with only 8 C programs ESP matched APHC/DSHC; growing the corpus
// to all 23 C programs made ESP clearly better.
type CorpusSizeResult struct {
	Points []CorpusSizePoint
}

// CorpusSize cross-validates ESP within growing prefixes of the C group.
func CorpusSize(ctx *Context, sizes []int, cfg core.Config) (*CorpusSizeResult, error) {
	group, err := ctx.LanguageData(ir.LangC, codegen.Default)
	if err != nil {
		return nil, err
	}
	aphc := heuristics.NewAPHC()
	res := &CorpusSizeResult{}
	for _, size := range sizes {
		if size < 2 || size > len(group) {
			return nil, fmt.Errorf("experiments: corpus size %d out of range [2,%d]", size, len(group))
		}
		sub := group[:size]
		folds := core.CrossValidate(sub, cfg)
		var am float64
		for i := range sub {
			am += heuristics.MissRate(sub[i].Sites, sub[i].Profile, aphc)
		}
		res.Points = append(res.Points, CorpusSizePoint{
			Programs: size,
			ESP:      core.MeanMiss(folds),
			APHC:     am / float64(size),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *CorpusSizeResult) Render() string {
	t := stats.NewTable("C Programs In Corpus", "ESP Miss", "APHC Miss")
	for _, p := range r.Points {
		t.Row(p.Programs, stats.Pct1(p.ESP), stats.Pct1(p.APHC))
	}
	return "Corpus-size study (Section 3.1.2): ESP vs APHC as the C corpus grows\n" + t.String()
}

// GenSweep parameterizes the Figure 2b extension: the corpus-size study
// continued past the paper's 46 programs on the generated corpus, with the
// miss rate broken out by branch-character mix.
type GenSweep struct {
	// Seed is the training-corpus base seed (default 1).
	Seed int64
	// Sizes lists the training-corpus sizes swept (default 46 -> 4000).
	Sizes []int
	// EvalSeed is the held-out evaluation corpus base seed (default 999);
	// eval programs are always disjoint from the training corpus.
	EvalSeed int64
	// EvalN is the number of evaluation programs per mix (default 8).
	EvalN int
	// Shard is the streaming shard size (default 64).
	Shard int
	// StreamDir, when non-empty, checkpoints streaming training there so a
	// killed sweep resumes.
	StreamDir string
}

func (s GenSweep) withDefaults() GenSweep {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{46, 100, 250, 500, 1000, 2000, 4000}
	}
	if s.EvalSeed == 0 {
		s.EvalSeed = 999
	}
	if s.EvalN == 0 {
		s.EvalN = 8
	}
	return s
}

// GenMixMiss is one mix column of a Figure 2b row.
type GenMixMiss struct {
	Mix  string
	ESP  float64
	APHC float64
}

// GenSizePoint is one Figure 2b row: the model trained on a generated
// corpus prefix of the given size, evaluated on the fixed held-out set.
type GenSizePoint struct {
	Programs int
	// Overall is the mean miss rate over every evaluation program.
	Overall float64
	// PerMix breaks the miss rate out by branch character, in
	// gencorpus.AllMixes order.
	PerMix []GenMixMiss
}

// CorpusSizeGenResult is the Figure 2b table.
type CorpusSizeGenResult struct {
	Sweep GenSweep
	// Points has one row per swept corpus size.
	Points []GenSizePoint
	// Stats aggregates the streaming-training runs.
	Stats core.StreamStats
}

// CorpusSizeGen extends the corpus-size study past the paper's 46 programs
// (Figure 2 stops at ~40): train on growing generated corpora — streamed
// shard by shard through the artifact cache — and evaluate on a disjoint
// held-out generated set, per branch-character mix. Training prefixes are
// nested (size 100 contains size 46's programs), mirroring how Figure 2
// grows one corpus rather than resampling.
func CorpusSizeGen(ctx *Context, sw GenSweep, cfg core.Config) (*CorpusSizeGenResult, error) {
	sw = sw.withDefaults()
	mixes := gencorpus.AllMixes()

	// Held-out evaluation programs, EvalN per mix, analyzed once through
	// the context like any other corpus entry.
	evalData := make([][]*core.ProgramData, len(mixes))
	for mi, m := range mixes {
		spec := gencorpus.Spec{Seed: sw.EvalSeed + int64(mi), N: sw.EvalN, Mixes: []gencorpus.Mix{m}}
		data, err := ctx.Batch(spec.Entries(), codegen.Default)
		if err != nil {
			return nil, err
		}
		evalData[mi] = data
	}
	aphc := heuristics.NewAPHC()

	res := &CorpusSizeGenResult{Sweep: sw}
	for _, size := range sw.Sizes {
		if size < 2 {
			return nil, fmt.Errorf("experiments: generated corpus size %d out of range", size)
		}
		spec := gencorpus.Spec{Seed: sw.Seed, N: size}
		src := &gencorpus.ShardedCorpus{
			Entries: spec.Entries(),
			Size:    sw.Shard,
			Cache:   ctx.PersistentCache(),
		}
		dir := sw.StreamDir
		if dir != "" {
			// Per-size subdirectories keep the nested prefixes' checkpoints
			// from colliding (the shard IDs would reject reuse anyway).
			dir = fmt.Sprintf("%s/n%d", dir, size)
		}
		model, st, err := core.TrainStreaming(context.Background(), src, cfg, dir)
		if err != nil {
			return nil, err
		}
		res.Stats.Shards += st.Shards
		res.Stats.Resumed += st.Resumed
		res.Stats.Examples += st.Examples

		pred := &core.Predictor{Model: model}
		point := GenSizePoint{Programs: size}
		var sum float64
		var n int
		for mi, m := range mixes {
			var em, am float64
			for _, pd := range evalData[mi] {
				em += heuristics.MissRate(pd.Sites, pd.Profile, pred)
				am += heuristics.MissRate(pd.Sites, pd.Profile, aphc)
			}
			k := float64(len(evalData[mi]))
			point.PerMix = append(point.PerMix, GenMixMiss{Mix: m.String(), ESP: em / k, APHC: am / k})
			sum += em
			n += len(evalData[mi])
		}
		point.Overall = sum / float64(n)
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render formats Figure 2b: one row per corpus size with per-mix miss
// rates, and the static APHC heuristic as the size-independent baseline row.
func (r *CorpusSizeGenResult) Render() string {
	cols := []string{"Generated Programs"}
	for _, m := range gencorpus.AllMixes() {
		cols = append(cols, m.String())
	}
	cols = append(cols, "Overall")
	t := stats.NewTable(cols...)
	for _, p := range r.Points {
		row := []any{p.Programs}
		for _, mm := range p.PerMix {
			row = append(row, stats.Pct1(mm.ESP))
		}
		row = append(row, stats.Pct1(p.Overall))
		t.Row(row...)
	}
	if len(r.Points) > 0 {
		row := []any{"APHC (baseline)"}
		var sum float64
		for _, mm := range r.Points[0].PerMix {
			row = append(row, stats.Pct1(mm.APHC))
			sum += mm.APHC
		}
		row = append(row, stats.Pct1(sum/float64(len(r.Points[0].PerMix))))
		t.Row(row...)
	}
	return fmt.Sprintf("Figure 2b: ESP miss rate vs generated-corpus size, per branch-character mix\n"+
		"(train seed %d, eval seed %d, %d held-out programs per mix)\n%s",
		r.Sweep.Seed, r.Sweep.EvalSeed, r.Sweep.EvalN, t.String())
}
