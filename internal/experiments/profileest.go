package experiments

import (
	"math"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// ProfileEstimationResult is the Section 6 future-work study: "Our next
// goal will be to incorporate this branch probability data to perform
// program-based profile estimation using ESP." For every program (under
// leave-one-out cross-validation) the held-out model's probability output
// is used as a static branch profile and scored against the measured
// profile, alongside the Dempster-Shafer evidence probabilities of Wu and
// Larus and the uninformed 0.5 baseline.
type ProfileEstimationResult struct {
	// Errors are execution-weighted mean absolute probability errors,
	// |p_estimated − p_actual|, averaged over programs.
	ESPError     float64
	DSHCError    float64
	UniformError float64
	// PerProgram lists the ESP error per held-out program.
	PerProgram map[string]float64
}

// ProfileEstimation runs the study over both language groups.
func ProfileEstimation(ctx *Context, cfg core.Config) (*ProfileEstimationResult, error) {
	res := &ProfileEstimationResult{PerProgram: make(map[string]float64)}
	dshc := heuristics.NewDSHCBallLarus()
	var espSum, dshcSum, uniSum float64
	n := 0
	for _, lang := range []ir.Language{ir.LangC, ir.LangFortran} {
		group, err := ctx.LanguageData(lang, codegen.Default)
		if err != nil {
			return nil, err
		}
		for hold := range group {
			var train []*core.ProgramData
			for j, pd := range group {
				if j != hold {
					train = append(train, pd)
				}
			}
			model := core.Train(train, cfg)
			held := group[hold]
			var espErr, dshcErr, uniErr, total float64
			for i, s := range held.Sites.Sites {
				c := held.Profile.Branches[s.Ref]
				if c == nil || c.Executed == 0 {
					continue
				}
				w := float64(c.Executed)
				actual := c.TakenFraction()
				esp := model.TakenProbability(held.Vectors[i])
				dp, _ := dshc.TakenProbability(s)
				espErr += w * math.Abs(esp-actual)
				dshcErr += w * math.Abs(dp-actual)
				uniErr += w * math.Abs(0.5-actual)
				total += w
			}
			if total == 0 {
				continue
			}
			res.PerProgram[held.Name] = espErr / total
			espSum += espErr / total
			dshcSum += dshcErr / total
			uniSum += uniErr / total
			n++
		}
	}
	if n > 0 {
		res.ESPError = espSum / float64(n)
		res.DSHCError = dshcSum / float64(n)
		res.UniformError = uniSum / float64(n)
	}
	return res, nil
}

// Render formats the study summary followed by the deterministically
// ordered per-program breakdown.
func (r *ProfileEstimationResult) Render() string {
	t := stats.NewTable("Estimator", "Weighted |p_est - p_actual|")
	t.Row("ESP probabilities (cross-validated)", fmtErr(r.ESPError))
	t.Row("DSHC evidence (Wu/Larus)", fmtErr(r.DSHCError))
	t.Row("uninformed 0.5 baseline", fmtErr(r.UniformError))
	return "Section 6 study: program-based profile estimation from ESP probabilities\n" + t.String() +
		"\nPer-program ESP estimation error (held-out)\n" +
		renderPerProgram("Weighted |p_est - p_actual|", r.PerProgram, fmtErr)
}

func fmtErr(e float64) string { return stats.Pct1(e) + "/100" }

// pctFootnote annotates tables whose values render through stats.Pct1.
const pctFootnote = "(values are percentages)\n"

// renderPerProgram renders a per-program metric map in deterministic
// (sorted-by-name) order — shared by the profile-estimation study and the
// guided-optimization study so their per-program sections stay uniform.
func renderPerProgram(header string, vals map[string]float64, format func(float64) string) string {
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	t := stats.NewTable("Program", header)
	for _, name := range names {
		t.Row(name, format(vals[name]))
	}
	return t.String()
}
