package hwsim

// gshare is the classic global-history predictor: a single table of 2-bit
// counters indexed by the branch site hashed with the global history
// register. Site indices are small dense integers (not sparse PCs), so the
// site is spread by a Fibonacci multiplicative hash before XOR-folding the
// history in.
//
// Seeding uses the agree transformation (Sprangle et al., ISCA '97): with
// hint bits available, each counter predicts whether the branch *agrees*
// with its static hint, initialized to weakly-agree. Two sites with
// opposite biases that alias to one entry then both train it toward
// "agree" instead of fighting over a direction bit — exactly the property
// that makes static hints valuable to shared-table hardware.
type gshare struct {
	name  string
	ctr   []uint8
	mask  uint32
	ghr   uint32
	hmask uint32 // history bits kept
	hints []bool // agree mode when non-nil
}

// DefaultGshareBits sizes the gshare table (log2 entries) and the history
// register. 12 bits ≈ a 1 KiB hardware table — small enough that corpus
// programs exhibit real aliasing, which is the phenomenon under study.
const DefaultGshareBits = 12

// NewGshare builds a gshare predictor with a 2^bits counter table. With
// hints it predicts agreement with the hint (weakly-agree initial state);
// without, it predicts direction (weakly-not-taken initial state).
func NewGshare(bits int, hints []bool) Predictor {
	if bits <= 0 {
		bits = DefaultGshareBits
	}
	p := &gshare{
		name:  "gshare",
		ctr:   make([]uint8, 1<<bits),
		mask:  uint32(1<<bits) - 1,
		hmask: uint32(1<<bits) - 1,
		hints: hints,
	}
	init := uint8(1) // weakly not-taken
	if hints != nil {
		init = 2 // weakly agree
	}
	for i := range p.ctr {
		p.ctr[i] = init
	}
	return p
}

func (p *gshare) Name() string { return p.name }

func (p *gshare) idx(site int32) uint32 {
	return (uint32(site)*2654435761 ^ (p.ghr & p.hmask)) & p.mask
}

func (p *gshare) Predict(site int32) bool {
	bit := ctrTaken(p.ctr[p.idx(site)])
	if p.hints != nil {
		return bit == p.hints[site] // bit means "agrees with hint"
	}
	return bit
}

func (p *gshare) Update(site int32, taken bool) {
	i := p.idx(site)
	if p.hints != nil {
		p.ctr[i] = bump(p.ctr[i], taken == p.hints[site])
	} else {
		p.ctr[i] = bump(p.ctr[i], taken)
	}
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
}
