package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTraceSpanOrdering(t *testing.T) {
	tr := NewTrace("predict", "r1")
	end := tr.StartSpan(StageDecode)
	time.Sleep(time.Millisecond)
	end()
	end = tr.StartSpan(StageCompile)
	time.Sleep(time.Millisecond)
	end()
	mid := tr.Start.Add(5 * time.Millisecond)
	tr.AddSpan(StageForward, mid, 2*time.Millisecond)
	tr.SetStatus(200)
	tr.SetError(errors.New("boom"))

	if got := []string{tr.Spans[0].Stage, tr.Spans[1].Stage, tr.Spans[2].Stage}; got[0] != StageDecode || got[1] != StageCompile || got[2] != StageForward {
		t.Fatalf("span order %v", got)
	}
	prev := int64(-1)
	for _, sp := range tr.Spans {
		if sp.StartUS < prev {
			t.Errorf("span %s starts at %dµs before previous %dµs", sp.Stage, sp.StartUS, prev)
		}
		if sp.DurUS < 0 {
			t.Errorf("span %s negative duration", sp.Stage)
		}
		prev = sp.StartUS
	}
	if tr.Spans[1].StartUS == 0 {
		t.Error("second span has zero offset; offsets not relative to trace start")
	}
	if tr.Status != 200 || tr.Err != "boom" {
		t.Errorf("status/err = %d/%q", tr.Status, tr.Err)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	tr.SetStatus(500)
	tr.SetError(errors.New("e"))
	var rec *Recorder
	rec.Record(tr)
	if rec.Snapshot() != nil || rec.NextID() != "" {
		t.Error("nil recorder not inert")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext on empty ctx = %v", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("e", "id")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(3, 0, nil)
	for i := 0; i < 5; i++ {
		rec.Record(NewTrace("e", fmt.Sprintf("r%d", i)))
	}
	got := rec.Snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
	// Oldest first: r2, r3, r4 survive.
	for i, want := range []string{"r2", "r3", "r4"} {
		if got[i].ID != want {
			t.Errorf("ring[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
	// A partially-filled ring returns only what it has.
	rec = NewRecorder(8, 0, nil)
	rec.Record(NewTrace("e", "only"))
	if got := rec.Snapshot(); len(got) != 1 || got[0].ID != "only" {
		t.Errorf("partial ring snapshot %v", got)
	}
	if tr := rec.Snapshot()[0]; tr.DurUS < 0 {
		t.Error("Record did not stamp a duration")
	}
}

func TestRecorderSampledAccessLog(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(4, 0.5, &buf) // every 2nd trace logged
	for i := 0; i < 10; i++ {
		rec.Record(NewTrace("predict", fmt.Sprintf("r%d", i)))
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if lines != 5 {
		t.Fatalf("%d access-log lines for 10 traces at sample=0.5, want 5", lines)
	}
	var first Trace
	if err := json.Unmarshal(bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0], &first); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if first.Endpoint != "predict" {
		t.Errorf("logged endpoint %q", first.Endpoint)
	}

	// sample=0 or nil writer: no lines.
	buf.Reset()
	rec = NewRecorder(4, 0, &buf)
	rec.Record(NewTrace("e", "x"))
	if buf.Len() != 0 {
		t.Error("sample=0 still logged")
	}
}

func TestRecorderNextID(t *testing.T) {
	rec := NewRecorder(1, 0, nil)
	a, b := rec.NextID(), rec.NextID()
	if a == b || a == "" {
		t.Errorf("ids %q, %q", a, b)
	}
}
