package pgo

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/minic"
)

// OptTarget is the optimizing target the pgo pipeline guides: GEM-flavored
// Alpha code generation with conditional moves and 4-way loop unrolling
// available. Unguided compilation applies both unconditionally (the
// historical Table 7 behaviour); guided compilation gates them through the
// estimated profile and adds layout.
var OptTarget = codegen.Target{
	Name:          "pgo-opt",
	ISA:           codegen.ISAAlpha,
	FoldConstants: true,
	UseCmov:       true,
	UnrollLoops:   4,
}

// Options are the pipeline's gating thresholds. Frequencies are estimated
// whole-run execution counts (main entry = 1), so a threshold of 8 means
// "predicted to run at least eight times per program execution".
type Options struct {
	Target codegen.Target
	// CmovMinFreq: an if-statement converts to conditional moves only when
	// its branch is predicted at least this hot. Cmov trades a branch for
	// unconditional evaluation of both arms, which only pays where the
	// branch actually executes.
	CmovMinFreq float64
	// UnrollMinFreq and UnrollMinProb: a counted loop unrolls only when its
	// bottom test is predicted at least this hot and its continue
	// probability at least this high (a predicted trip count of
	// 1/(1-p) iterations per entry). Note MaxCyclicProb caps a single
	// loop's estimated amplification at 20, so a frequency threshold
	// above 20 is reachable only through call weights or loop nesting.
	UnrollMinFreq float64
	UnrollMinProb float64
	// ColdBelow: blocks predicted to execute fewer than this many times per
	// function invocation sink out of line.
	ColdBelow float64
}

// DefaultOptions returns the thresholds the study and bench use.
func DefaultOptions() Options {
	return Options{
		Target:        OptTarget,
		CmovMinFreq:   8,
		UnrollMinFreq: 16,
		UnrollMinProb: 0.6,
		ColdBelow:     0.05,
	}
}

// BuildPlan translates an IR-level estimate into the position-keyed gating
// decisions codegen consumes, using the meta side table of the compilation
// the estimate was computed on. Positions with several branch sites (short
// circuit trees, unrolled copies) gate on their hottest site.
func BuildPlan(meta *codegen.Meta, est *Estimate, opt Options) *codegen.Plan {
	type posInfo struct {
		maxFreq  float64
		loopFreq float64
		loopProb float64
	}
	info := make(map[minic.Pos]*posInfo)
	for ref, o := range meta.Branch {
		pi := info[o.Pos]
		if pi == nil {
			pi = &posInfo{}
			info[o.Pos] = pi
		}
		f := est.GlobalFreq(ref)
		if f > pi.maxFreq {
			pi.maxFreq = f
		}
		if o.Loop && f >= pi.loopFreq {
			pi.loopFreq = f
			pi.loopProb = est.Prob[ref]
		}
	}
	return &codegen.Plan{
		Cmov: func(pos minic.Pos) bool {
			pi := info[pos]
			return pi != nil && pi.maxFreq >= opt.CmovMinFreq
		},
		Unroll: func(pos minic.Pos) bool {
			pi := info[pos]
			return pi != nil && pi.loopFreq >= opt.UnrollMinFreq && pi.loopProb >= opt.UnrollMinProb
		},
	}
}

// Optimize compiles ast under full profile guidance from the source the
// factory provides: a baseline compilation discovers the branch sites, a
// first estimate gates cmov and unrolling, and a second estimate — on the
// gated IR, whose branch sites are the ones layout will move — drives
// likely-successor block layout with cold splitting. The returned program
// is verified.
//
// The pipeline estimates twice because the two consumers see different
// IR: gating decisions must be made before the optimizing compilation
// exists (they are AST-level), while layout needs probabilities for
// exactly the branches of the program being laid out.
func Optimize(ast *minic.Program, lang ir.Language, srcFor SourceFactory, opt Options) (*ir.Program, error) {
	base, meta, err := codegen.CompilePlanned(ast, lang, codegen.Default, nil)
	if err != nil {
		return nil, fmt.Errorf("pgo: baseline compile: %w", err)
	}
	ps := features.Collect(base)
	src, err := srcFor(base, ps)
	if err != nil {
		return nil, err
	}
	plan := BuildPlan(meta, EstimateProfile(base, ps, src), opt)

	prog, _, err := codegen.CompilePlanned(ast, lang, opt.Target, plan)
	if err != nil {
		return nil, fmt.Errorf("pgo: guided compile: %w", err)
	}
	ps2 := features.Collect(prog)
	src2, err := srcFor(prog, ps2)
	if err != nil {
		return nil, err
	}
	est2 := EstimateProfile(prog, ps2, src2)
	codegen.OptimizeLayout(prog, est2.Guidance(), codegen.LayoutOptions{
		SplitCold: true,
		ColdBelow: opt.ColdBelow,
	})
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("pgo: layout produced invalid IR for %s: %w", prog.Name, err)
	}
	return prog, nil
}

// Unguided compiles ast with the same optimizing target but no guidance:
// cmov and unrolling apply unconditionally and layout stays as generated.
// This is the study's baseline.
func Unguided(ast *minic.Program, lang ir.Language, opt Options) (*ir.Program, error) {
	prog, _, err := codegen.CompilePlanned(ast, lang, opt.Target, nil)
	if err != nil {
		return nil, fmt.Errorf("pgo: unguided compile: %w", err)
	}
	return prog, nil
}
