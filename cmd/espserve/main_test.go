package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
)

// trainFixtureModel trains a tiny real model and saves it where the binary
// can load it.
func trainFixtureModel(t *testing.T, dir string) string {
	t.Helper()
	var data []*core.ProgramData
	for _, name := range []string{"bc", "grep"} {
		e, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("no corpus entry %q", name)
		}
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, pd)
	}
	cfg := core.Config{Hidden: 6}
	cfg.Net.MaxEpochs = 20
	cfg.Net.Patience = 5
	model := core.Train(data, cfg)
	path := filepath.Join(dir, "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeEndToEnd builds the binary, serves a trained model, queries it,
// and checks the SIGTERM graceful drain.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end serve test in short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "espserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	modelPath := trainFixtureModel(t, dir)

	cmd := exec.Command(bin, "-model", modelPath, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	i := strings.LastIndex(line, " on ")
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+4:])
	// Drain the rest of stdout in the background so the process never
	// blocks on a full pipe. cmd.Wait closes the read side of the pipe, so
	// it may only run after the scanner has reached EOF — waiting earlier
	// races the scanner and can discard the final log lines.
	lines := make(chan string, 64)
	waited := make(chan error, 1)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		waited <- cmd.Wait()
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" {
		t.Fatalf("healthz: %+v", hz)
	}

	body, _ := json.Marshal(map[string]any{
		"id":          "e2e",
		"name":        "demo",
		"link_stdlib": true,
		"source":      "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { s = s + i; } } return s; }",
	})
	resp, err = http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	var pr struct {
		ID          string `json:"id"`
		Predictions []struct {
			Branch      string  `json:"branch"`
			Probability float64 `json:"probability"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.ID != "e2e" || len(pr.Predictions) == 0 {
		t.Fatalf("predict: status %d resp %+v", resp.StatusCode, pr)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("espserve exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("espserve did not drain within 60s of SIGTERM")
	}
	var tail []string
	for l := range lines {
		tail = append(tail, l)
	}
	joined := strings.Join(tail, "\n")
	if !strings.Contains(joined, "draining") || !strings.Contains(joined, "drained, exiting") {
		t.Errorf("missing drain log lines:\n%s", joined)
	}
}

// TestRunRejectsMissingModel covers the CLI error path without a subprocess.
func TestRunRejectsMissingModel(t *testing.T) {
	if err := run([]string{"-model", filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("run succeeded without a model file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", bad}); err == nil {
		t.Fatal("run accepted a corrupt model file")
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
