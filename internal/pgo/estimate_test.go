package pgo

import (
	"math"
	"testing"

	"repro/internal/codegen"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// estSrc: main runs a 10-trip loop calling f each iteration; f has a
// mostly-false error test. Known structure for checking propagation.
const estSrc = `
int f(int x) {
	if (x < 0) {
		return 0 - x;
	}
	return x;
}
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) {
		s = s + f(i);
	}
	return s;
}
`

func compileEst(t *testing.T, src string) (*ir.Program, *features.ProgramSites) {
	t.Helper()
	ast, err := minic.Parse("est", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return prog, features.Collect(prog)
}

func TestEstimateMeasuredMatchesRealCounts(t *testing.T) {
	prog, ps := compileEst(t, estSrc)
	prof, err := interp.Run(prog, interp.Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateProfile(prog, ps, &Measured{Prof: prof})

	if got := est.Weight["main"]; got != 1 {
		t.Fatalf("main weight = %v, want 1", got)
	}
	// f is called ten times from a loop whose continue probability the
	// perfect source measures as 10/11 ≈ 0.909 < the 0.95 cap, so the
	// estimated activation count should land near the true 10.
	if got, want := est.Weight["f"], float64(prof.Calls["f"]); math.Abs(got-want) > 0.25*want {
		t.Fatalf("f weight = %v, want within 25%% of measured %v", got, want)
	}
	// The loop body must be amplified well above the entry frequency.
	fn := prog.FuncByName("main")
	var maxFreq float64
	for _, b := range fn.Blocks {
		if f := est.Local["main"][b.ID]; f > maxFreq {
			maxFreq = f
		}
	}
	if maxFreq < 5 {
		t.Fatalf("loop body frequency %v; want amplification over entry=1", maxFreq)
	}
}

func TestEstimateUniformBoundedAndComplete(t *testing.T) {
	prog, ps := compileEst(t, estSrc)
	est := EstimateProfile(prog, ps, Uniform{})
	if est.Source != "uniform" {
		t.Fatalf("source = %q", est.Source)
	}
	for _, s := range ps.Sites {
		p, ok := est.Prob[s.Ref]
		if !ok {
			t.Fatalf("site %v missing a probability", s.Ref)
		}
		if p != 0.5 {
			t.Fatalf("uniform prob = %v", p)
		}
	}
	for _, fn := range prog.Funcs {
		if est.Weight[fn.Name] < 0 {
			t.Fatalf("negative weight for %s", fn.Name)
		}
		for id, f := range est.Local[fn.Name] {
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				t.Fatalf("%s block %d frequency %v", fn.Name, id, f)
			}
		}
	}
}

// TestEstimateRecursionBounded: a recursive function must not overflow the
// call-weight fixpoint.
func TestEstimateRecursionBounded(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}
int main() {
	return fib(10);
}
`
	prog, ps := compileEst(t, src)
	est := EstimateProfile(prog, ps, Uniform{})
	w := est.Weight["fib"]
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		t.Fatalf("fib weight = %v", w)
	}
	if w > maxCallWeight {
		t.Fatalf("fib weight %v exceeds cap %v", w, maxCallWeight)
	}
}

func TestBuildPlanGatesOnThresholds(t *testing.T) {
	ast, err := minic.Parse("plan", `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) {
		if (s < i) {
			s = s + 2;
		}
	}
	if (s > 1000000) {
		s = 0;
	}
	return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, meta, err := codegen.CompilePlanned(ast, ir.LangC, codegen.Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := features.Collect(prog)
	prof, err := interp.Run(prog, interp.Config{CollectEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateProfile(prog, ps, &Measured{Prof: prof})
	plan := BuildPlan(meta, est, DefaultOptions())

	hotLoop := minic.Pos{Line: 6, Col: 2}
	var loopPos []minic.Pos
	for _, o := range meta.Branch {
		if o.Loop {
			loopPos = append(loopPos, o.Pos)
		}
	}
	if len(loopPos) == 0 {
		t.Fatal("no loop origins recorded")
	}
	foundHot := false
	for _, pos := range loopPos {
		if pos.Line == hotLoop.Line {
			foundHot = true
			if !plan.Unroll(pos) {
				t.Fatalf("hot 100-trip loop at %v not approved for unrolling", pos)
			}
			if !plan.Cmov(pos) {
				t.Fatalf("hot position %v not approved for cmov", pos)
			}
		}
	}
	if !foundHot {
		t.Fatalf("loop at line %d not in meta; have %v", hotLoop.Line, loopPos)
	}
	// The once-executed trailing if must stay cold for both transforms.
	coldIf := false
	for _, o := range meta.Branch {
		if o.Pos.Line == 11 && !o.Loop {
			coldIf = true
			if plan.Cmov(o.Pos) {
				t.Fatalf("once-run if at %v approved for cmov", o.Pos)
			}
			if plan.Unroll(o.Pos) {
				t.Fatalf("non-loop position %v approved for unrolling", o.Pos)
			}
		}
	}
	if !coldIf {
		t.Fatal("trailing if at line 11 not recorded in meta")
	}
}
