// Package dtree implements the decision-tree alternative the paper reports
// in Section 3.1.2: "preliminary results we have obtained using decision
// trees instead of neural networks are comparable to the neural net results
// presented here. Moreover, decision trees are easier to use and the
// knowledge they encode can be automatically translated into simple if-then
// rules."
//
// Trees are built over the same 24 categorical static features, splitting on
// weighted information gain where each branch example carries its normalized
// execution weight n_k split into taken mass n_k·t_k and not-taken mass
// n_k·(1−t_k).
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/features"
)

// Example is one training branch: its feature values and its weighted
// taken / not-taken mass.
type Example struct {
	Values [features.NumFeatures]string
	TakenW float64
	NotW   float64
}

// Config bounds tree growth.
type Config struct {
	// MaxDepth limits tree depth (default 8).
	MaxDepth int
	// MinWeight is the minimum total mass needed to split a node
	// (default 1e-4).
	MinWeight float64
	// MinGain is the minimum information gain needed to split
	// (default 1e-6).
	MinGain float64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 8
	}
	if c.MinWeight == 0 {
		c.MinWeight = 1e-4
	}
	if c.MinGain == 0 {
		c.MinGain = 1e-6
	}
	return c
}

// Node is a tree node: an internal node splits on one categorical feature;
// a leaf predicts the weighted taken-probability of its examples. Every
// node stores its probability so unseen feature values fall back to the
// deepest matching ancestor.
type Node struct {
	Feature   int              `json:"feature"` // -1 for leaves
	ProbTaken float64          `json:"prob"`
	Children  map[string]*Node `json:"children,omitempty"`
}

// Tree is a trained decision tree.
type Tree struct {
	Root *Node `json:"root"`
}

// Build grows a tree from weighted examples.
func Build(examples []Example, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	used := make([]bool, features.NumFeatures)
	return &Tree{Root: build(examples, cfg, used, 0)}
}

func build(examples []Example, cfg Config, used []bool, depth int) *Node {
	taken, not := mass(examples)
	total := taken + not
	n := &Node{Feature: -1, ProbTaken: 0.5}
	if total > 0 {
		n.ProbTaken = taken / total
	}
	if depth >= cfg.MaxDepth || total < cfg.MinWeight || taken == 0 || not == 0 {
		return n
	}
	bestF, bestGain := -1, 0.0
	base := entropy(taken, not)
	for f := 0; f < features.NumFeatures; f++ {
		if used[f] {
			continue
		}
		gain := base - splitEntropy(examples, f, total)
		if gain > bestGain {
			bestGain, bestF = gain, f
		}
	}
	if bestF < 0 || bestGain < cfg.MinGain {
		return n
	}
	n.Feature = bestF
	n.Children = make(map[string]*Node)
	parts := partition(examples, bestF)
	used[bestF] = true
	for val, part := range parts {
		n.Children[val] = build(part, cfg, used, depth+1)
	}
	used[bestF] = false
	return n
}

func mass(examples []Example) (taken, not float64) {
	for _, e := range examples {
		taken += e.TakenW
		not += e.NotW
	}
	return taken, not
}

// entropy is the binary entropy of a weighted (taken, not) split, in nats.
func entropy(taken, not float64) float64 {
	total := taken + not
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, m := range [2]float64{taken, not} {
		if m > 0 {
			p := m / total
			e -= p * math.Log(p)
		}
	}
	return e
}

func splitEntropy(examples []Example, f int, total float64) float64 {
	type bucket struct{ taken, not float64 }
	buckets := make(map[string]*bucket)
	for _, e := range examples {
		b := buckets[e.Values[f]]
		if b == nil {
			b = &bucket{}
			buckets[e.Values[f]] = b
		}
		b.taken += e.TakenW
		b.not += e.NotW
	}
	var e float64
	for _, b := range buckets {
		w := (b.taken + b.not) / total
		e += w * entropy(b.taken, b.not)
	}
	return e
}

func partition(examples []Example, f int) map[string][]Example {
	out := make(map[string][]Example)
	for _, e := range examples {
		out[e.Values[f]] = append(out[e.Values[f]], e)
	}
	return out
}

// Predict returns the estimated taken-probability for a feature vector.
func (t *Tree) Predict(values [features.NumFeatures]string) float64 {
	n := t.Root
	for n.Feature >= 0 {
		child, ok := n.Children[values[n.Feature]]
		if !ok {
			break // unseen value: use this node's distribution
		}
		n = child
	}
	return n.ProbTaken
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return size(t.Root) }

func size(n *Node) int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += size(c)
	}
	return s
}

// Depth returns the maximum depth (a lone root has depth 1).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Rules renders the tree as the paper's "simple if-then rules": one line per
// leaf, listing the feature tests on the path and the leaf's prediction.
func (t *Tree) Rules() []string {
	var out []string
	var walk func(n *Node, conds []string)
	walk = func(n *Node, conds []string) {
		if n.Feature < 0 {
			dir := "not-taken"
			if n.ProbTaken > 0.5 {
				dir = "taken"
			}
			cond := "always"
			if len(conds) > 0 {
				cond = strings.Join(conds, " and ")
			}
			out = append(out, fmt.Sprintf("if %s then predict %s (p=%.2f)", cond, dir, n.ProbTaken))
			return
		}
		vals := make([]string, 0, len(n.Children))
		for v := range n.Children {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			next := make([]string, len(conds)+1)
			copy(next, conds)
			next[len(conds)] = fmt.Sprintf("%s=%s", features.Name(n.Feature), v)
			walk(n.Children[v], next)
		}
	}
	walk(t.Root, nil)
	sort.Strings(out)
	return out
}
