package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func owners(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.Lookup(k)
	}
	return m
}

// TestRingRebalanceProperty is the consistent-hashing contract: adding a
// replica moves only keys that land on the newcomer (≈1/N of the keyspace),
// and removing it restores the exact original assignment — no unrelated
// key ever changes owner in either direction.
func TestRingRebalanceProperty(t *testing.T) {
	const nodes, extra = 4, "replica-4"
	keys := ringKeys(10000)
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	before := owners(r, keys)

	r.Add(extra)
	after := owners(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != extra {
				t.Fatalf("key %s moved %s -> %s, not to the new replica", k, before[k], after[k])
			}
		}
	}
	// Expect ≈ 1/5 of keys on the newcomer; allow generous variance for the
	// vnode hash but fail on gross imbalance (a broken hash gives ~0 or ~100%).
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("adding 5th replica moved %.1f%% of keys, want ≈20%%", 100*frac)
	}

	r.Remove(extra)
	restored := owners(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s: owner %s after remove, originally %s", k, restored[k], before[k])
		}
	}
}

// TestRingSpreadsLoad: with vnodes, no replica owns a wildly outsized
// keyspace share.
func TestRingSpreadsLoad(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	counts := make(map[string]int)
	for _, k := range ringKeys(10000) {
		counts[r.Lookup(k)]++
	}
	for name, n := range counts {
		frac := float64(n) / 10000
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("%s owns %.1f%% of keys with 4 replicas", name, 100*frac)
		}
	}
}

// TestRingNeverYieldsDrained: Lookup and Sequence skip drained members
// without reshuffling the live ones' shares, and draining everything yields
// nothing rather than a drained member.
func TestRingNeverYieldsDrained(t *testing.T) {
	r := NewRing(0)
	members := []string{"a", "b", "c"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(2000)

	r.SetDrained("b", true)
	for _, k := range keys {
		if got := r.Lookup(k); got == "b" {
			t.Fatalf("key %s routed to drained replica", k)
		}
		for _, m := range r.Sequence(k, 3) {
			if m == "b" {
				t.Fatalf("key %s sequence contains drained replica", k)
			}
		}
	}
	// Undrained keys that never belonged to b must not have moved: draining
	// keeps the keyspace stable.
	before := owners(r, keys)
	r.SetDrained("b", false)
	for _, k := range keys {
		if own := r.Lookup(k); own != "b" && own != before[k] {
			t.Fatalf("undraining b moved key %s from %s to %s", k, before[k], own)
		}
	}

	for _, m := range members {
		r.SetDrained(m, true)
	}
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("fully drained ring returned %q", got)
	}
}

// TestRingSequenceDistinct: the failover candidate list holds each live
// member at most once, in deterministic order for a given key.
func TestRingSequenceDistinct(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	for _, k := range ringKeys(100) {
		seq := r.Sequence(k, 10)
		if len(seq) != 3 {
			t.Fatalf("key %s: sequence %v, want all 3 distinct members", k, seq)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("key %s: duplicate member in sequence %v", k, seq)
			}
			seen[m] = true
		}
		again := r.Sequence(k, 10)
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("key %s: sequence not deterministic: %v vs %v", k, seq, again)
			}
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	if seq := r.Sequence("k", 3); seq != nil {
		t.Fatalf("empty ring sequence %v", seq)
	}
}
