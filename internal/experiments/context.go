// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1-7, Figures 1-2, the Section 3.1.2 Scheme
// study, and the corpus-size observation of Section 3.1.2), plus the
// ablation studies listed in DESIGN.md. Each driver returns the rendered
// table and a structured result that the benchmarks and tests assert on.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ir"
)

// Context caches compiled programs, profiles, and feature extraction per
// (program, target) so the table drivers can share work. It is safe for
// concurrent use. An optional persistent artifact cache extends the
// in-process memoization across processes: analyses hit on disk instead of
// re-tracing.
type Context struct {
	mu    sync.Mutex
	data  map[string]*entryState
	cache *artifact.Cache
}

type entryState struct {
	once sync.Once
	pd   *core.ProgramData
	err  error
}

// NewContext returns an empty in-process cache with no persistent backing.
func NewContext() *Context {
	return &Context{data: make(map[string]*entryState)}
}

// NewContextWithCache returns a context whose analyses are additionally
// backed by the given persistent cache (nil behaves like NewContext).
func NewContextWithCache(cache *artifact.Cache) *Context {
	c := NewContext()
	c.cache = cache
	return c
}

// PersistentCache returns the artifact cache backing this context (nil when
// the context is purely in-process), so drivers that stream analyses outside
// the in-process memo — the Figure 2b generated-corpus sweep — share the
// same on-disk artifacts.
func (c *Context) PersistentCache() *artifact.Cache {
	return c.cache
}

// Data compiles, profiles, and analyzes one corpus entry under a target,
// caching the result.
func (c *Context) Data(e corpus.Entry, tgt codegen.Target) (*core.ProgramData, error) {
	key := e.Name + "\x00" + tgt.Name
	c.mu.Lock()
	st := c.data[key]
	if st == nil {
		st = &entryState{}
		c.data[key] = st
	}
	c.mu.Unlock()
	st.once.Do(func() {
		prog, err := e.Compile(tgt)
		if err != nil {
			st.err = err
			return
		}
		st.pd, st.err = core.AnalyzeCached(c.cache, prog, e.Language, e.RunConfig())
	})
	return st.pd, st.err
}

// Batch analyzes a set of entries under one target, in parallel, with
// fan-out bounded to GOMAXPROCS workers: profiling is CPU-bound, so more
// goroutines than processors only adds scheduling and memory pressure.
func (c *Context) Batch(entries []corpus.Entry, tgt codegen.Target) ([]*core.ProgramData, error) {
	out := make([]*core.ProgramData, len(entries))
	errs := make([]error, len(entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = c.Data(entries[i], tgt)
			}
		}()
	}
	for i := range entries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", entries[i].Name, err)
		}
	}
	return out, nil
}

// StudyData analyzes the full 43-program study corpus under a target.
func (c *Context) StudyData(tgt codegen.Target) ([]*core.ProgramData, error) {
	return c.Batch(corpus.Study(), tgt)
}

// LanguageData analyzes one cross-validation language group.
func (c *Context) LanguageData(lang ir.Language, tgt codegen.Target) ([]*core.ProgramData, error) {
	return c.Batch(corpus.ByLanguage(lang), tgt)
}
