package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers /predict with the scripted statuses, then succeeds.
func flakyHandler(attempts *atomic.Int64, script []int, retryAfter string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= len(script) {
			status := script[n-1]
			if status == http.StatusTooManyRequests && retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeJSON(w, status, errorResponse{Error: "scripted failure"})
			return
		}
		_ = json.NewEncoder(w).Encode(PredictResponse{ID: "ok"})
	})
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{
		http.StatusInternalServerError,
		http.StatusTooManyRequests,
		http.StatusServiceUnavailable,
	}, "0"))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 7})
	resp, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if resp.ID != "ok" {
		t.Fatalf("response %+v", resp)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (3 failures + success)", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{http.StatusTooManyRequests}, "1"))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 7})
	start := time.Now()
	if _, err := c.Predict(context.Background(), &PredictRequest{ID: "x"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	// The backoff after a millisecond-scale base would be instant; the
	// server's 1s hint must dominate.
	if d := time.Since(start); d < time.Second {
		t.Fatalf("retried after %v despite Retry-After: 1", d)
	}
}

func TestClientTerminal4xxDoesNotRetry(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{
		http.StatusBadRequest, http.StatusBadRequest, http.StatusBadRequest,
	}, ""))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 5, BaseDelay: time.Millisecond})
	_, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("error %v, want APIError 400", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("%d attempts for a terminal 400, want 1", got)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{
		http.StatusInternalServerError, http.StatusInternalServerError,
		http.StatusInternalServerError, http.StatusInternalServerError,
	}, ""))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	if err == nil {
		t.Fatal("predict succeeded with a permanently failing server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("exhaustion error %v does not wrap the last failure", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("%d attempts, want MaxAttempts=3", got)
	}
}

// TestClientReusesConnectionAcrossRetries asserts the error-path body
// handling keeps connections poolable: three failed attempts plus the
// success must all ride one TCP connection. Without draining the error
// bodies before Close, every retry dials fresh.
func TestClientReusesConnectionAcrossRetries(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewUnstartedServer(flakyHandler(&attempts, []int{
		http.StatusInternalServerError,
		http.StatusServiceUnavailable,
		http.StatusTooManyRequests,
	}, "0"))
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	// A dedicated transport so other tests' pooled connections can't help.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	c := NewClient(ts.URL, ClientConfig{
		MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 3,
		HTTP: &http.Client{Transport: tr},
	})
	resp, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if resp.ID != "ok" || attempts.Load() != 4 {
		t.Fatalf("resp %+v after %d attempts", resp, attempts.Load())
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("%d TCP connections for 4 attempts, want 1 (connections not reused)", got)
	}
}

// TestClientCancelAbortsBackoff cancels the caller's context while the
// client sits in a long Retry-After-driven backoff: Predict must return
// context.Canceled promptly instead of sleeping the hint out. This pins the
// backoff sleep's select on ctx.Done — with a bare time.Sleep the call
// would block for the full 30s hint.
func TestClientCancelAbortsBackoff(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{
		http.StatusTooManyRequests, http.StatusTooManyRequests,
	}, "30"))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BaseDelay: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Predict(ctx, &PredictRequest{ID: "x"})
		done <- err
	}()
	// Let the first attempt land and the backoff begin, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for attempts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancel took %v to abort the backoff", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Predict still blocked 10s after cancel — backoff ignores ctx.Done")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts after mid-backoff cancel, want 1", got)
	}
}

// TestParseRetryAfter pins the RFC 7231 §7.1.3 parsing: both delta-seconds
// and HTTP-date forms are understood, negatives and past dates clamp to
// zero (retry now) instead of being dropped or producing negative sleeps,
// oversized hints clamp to maxRetryAfter, and garbage is rejected.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2025, time.March, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name   string
		header string
		want   time.Duration
		ok     bool
	}{
		{"absent", "", 0, false},
		{"delta seconds", "2", 2 * time.Second, true},
		{"zero delta", "0", 0, true},
		{"negative delta clamps to zero", "-5", 0, true},
		{"huge delta clamps to cap", "86400", maxRetryAfter, true},
		{"http date in the future", now.Add(3 * time.Second).Format(http.TimeFormat), 3 * time.Second, true},
		{"http date in the past clamps to zero", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"http date far in the future clamps to cap", now.Add(time.Hour).Format(http.TimeFormat), maxRetryAfter, true},
		{"garbage", "soon", 0, false},
		{"float seconds are not delta-seconds", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.header, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = (%v, %t), want (%v, %t)",
					tc.header, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestClientHonorsHTTPDateRetryAfter scripts a 429 whose Retry-After is an
// HTTP-date rather than delta-seconds — the form the old bare strconv.Atoi
// silently dropped, collapsing the wait to the millisecond-scale backoff.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	ts := httptest.NewServer(flakyHandler(&attempts, []int{http.StatusTooManyRequests}, date))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 7})
	start := time.Now()
	if _, err := c.Predict(context.Background(), &PredictRequest{ID: "x"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	// The HTTP-date names a moment 2s out; http.TimeFormat truncates to
	// whole seconds, so the parsed delay is still at least ~1s. A
	// millisecond-scale backoff means the hint was dropped.
	if d := time.Since(start); d < 800*time.Millisecond {
		t.Fatalf("retried after %v despite an HTTP-date Retry-After 2s out", d)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2", got)
	}
}

// TestClientClampsNegativeRetryAfter scripts a 429 with a negative
// delta-seconds hint. The old code passed it straight into a
// time.Duration, handing backoff a negative "floor"; the fix clamps it to
// zero so the client retries promptly and successfully.
func TestClientClampsNegativeRetryAfter(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(flakyHandler(&attempts, []int{http.StatusTooManyRequests}, "-30"))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 7})
	start := time.Now()
	if _, err := c.Predict(context.Background(), &PredictRequest{ID: "x"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("negative Retry-After stalled the retry for %v", d)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2", got)
	}
}

// TestClientBoundsErrorBody sends a huge error payload: the client must
// surface the status without inhaling the whole body into the decoder.
func TestClientBoundsErrorBody(t *testing.T) {
	huge := strings.Repeat("x", 4<<20)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"` + huge + `"}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 1, BaseDelay: time.Millisecond})
	_, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("error %v, want APIError 400", err)
	}
	if len(apiErr.Message) > maxErrorBodyBytes {
		t.Errorf("error message %d bytes leaked past the %d-byte limit", len(apiErr.Message), maxErrorBodyBytes)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // first attempt hangs
		}
		_ = json.NewEncoder(w).Encode(PredictResponse{ID: "ok"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{
		MaxAttempts: 3, BaseDelay: time.Millisecond, PerAttemptTimeout: 50 * time.Millisecond,
	})
	resp, err := c.Predict(context.Background(), &PredictRequest{ID: "x"})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if resp.ID != "ok" || attempts.Load() < 2 {
		t.Fatalf("resp %+v after %d attempts", resp, attempts.Load())
	}
}
