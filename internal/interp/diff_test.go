package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/minic"
)

// This file is the differential property test of the profiling pipeline:
// randomized small MinC programs are generated, compiled, and executed, and
// the collected branch profiles are checked against invariants that must
// hold for every program — counts sum correctly, taken never exceeds
// executed, edges are consistent with branch counts, and two runs of the
// same program are bit-identical.

// progGen emits random but always-terminating MinC programs: loops are only
// ever the canonical bounded counting form, so every generated program halts
// well within the interpreter's instruction budget.
type progGen struct {
	rng   *rand.Rand
	b     strings.Builder
	depth int
	vars  []string
	// callable bounds which helpers may be called: helper h may only call
	// helpers with a smaller index, so the call graph is acyclic and the
	// call depth is bounded.
	callable int
}

func (g *progGen) emit(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.depth))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// expr builds a random arithmetic expression over the in-scope variables.
// Division and modulo are excluded so no generated program can trap.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(41)-20)
		case 1:
			return "__rand() % 17"
		default:
			return g.vars[g.rng.Intn(len(g.vars))]
		}
	}
	op := []string{"+", "-", "*"}[g.rng.Intn(3)]
	l, r := g.expr(depth-1), g.expr(depth-1)
	if op == "*" {
		// Keep products bounded so no overflow weirdness accumulates.
		return fmt.Sprintf("((%s %% 100) %s (%s %% 100))", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *progGen) cond() string {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	return fmt.Sprintf("%s %s %s", g.expr(1), op, g.expr(1))
}

// stmts emits a random statement list. Loop nesting is capped at two and
// every loop runs at most 20 iterations.
func (g *progGen) stmts(n, loopDepth int) {
	for s := 0; s < n; s++ {
		v := g.vars[g.rng.Intn(len(g.vars))]
		switch g.rng.Intn(5) {
		case 0, 1: // assignment
			g.emit("%s = %s;", v, g.expr(2))
		case 2: // if / if-else
			g.emit("if (%s) {", g.cond())
			g.depth++
			g.stmts(1+g.rng.Intn(2), loopDepth)
			g.depth--
			if g.rng.Intn(2) == 0 {
				g.emit("} else {")
				g.depth++
				g.stmts(1+g.rng.Intn(2), loopDepth)
				g.depth--
			}
			g.emit("}")
		case 3: // bounded counting loop
			if loopDepth >= 2 {
				g.emit("%s = %s;", v, g.expr(1))
				continue
			}
			iv := fmt.Sprintf("i%d", g.rng.Intn(1000000))
			g.emit("int %s;", iv)
			g.emit("for (%s = 0; %s < %d; %s = %s + 1) {", iv, iv, 1+g.rng.Intn(20), iv, iv)
			g.depth++
			// The loop counter is deliberately NOT added to g.vars: body
			// statements must never reassign it, or termination is gone.
			g.stmts(1+g.rng.Intn(2), loopDepth+1)
			g.depth--
			g.emit("}")
		case 4: // call a helper lower in the (acyclic) call order
			if g.callable == 0 {
				g.emit("%s = %s;", v, g.expr(1))
				continue
			}
			g.emit("%s = helper%d(%s);", v, g.rng.Intn(g.callable), g.expr(1))
		}
	}
}

// generate builds one random program.
func generate(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	for h := 0; h < 2; h++ {
		g.emit("int helper%d(int a) {", h)
		g.depth++
		g.vars = []string{"a", "r"}
		g.callable = h
		g.emit("int r;")
		g.emit("r = a;")
		g.stmts(2+g.rng.Intn(2), 1) // helpers count as one loop level deep
		g.emit("return r;")
		g.depth--
		g.emit("}")
	}
	g.emit("int main() {")
	g.depth++
	g.callable = 2
	g.vars = []string{"x", "y", "z"}
	for _, v := range g.vars {
		g.emit("int %s;", v)
		g.emit("%s = __input(%d);", v, len(g.vars))
	}
	g.stmts(4+g.rng.Intn(4), 0)
	g.emit("return x + y + z;")
	g.depth--
	g.emit("}")
	return g.b.String()
}

// runProfile compiles and executes one generated program.
func runProfile(t *testing.T, src string, seed uint64) *Profile {
	t.Helper()
	ast, err := minic.Parse("generated", src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatalf("generated program does not compile: %v\n%s", err, src)
	}
	prof, err := Run(prog, Config{
		Input:        []int64{3, 7, 11},
		Seed:         seed,
		CollectEdges: true,
	})
	if err != nil {
		t.Fatalf("generated program does not run: %v\n%s", err, src)
	}
	return prof
}

func TestRandomProgramProfileInvariants(t *testing.T) {
	const programs = 60
	for pi := 0; pi < programs; pi++ {
		pi := pi
		t.Run(fmt.Sprintf("seed%d", pi), func(t *testing.T) {
			t.Parallel()
			src := generate(int64(1000 + pi))
			prof := runProfile(t, src, uint64(pi)+1)

			// Branch-count invariants: taken <= executed, nothing negative,
			// and the per-site counts sum to the program totals.
			var sumExec, sumTaken int64
			for ref, c := range prof.Branches {
				if c.Executed < 0 || c.Taken < 0 {
					t.Fatalf("%v: negative counts %+v", ref, c)
				}
				if c.Taken > c.Executed {
					t.Fatalf("%v: taken %d > executed %d", ref, c.Taken, c.Executed)
				}
				if f := c.TakenFraction(); f < 0 || f > 1 {
					t.Fatalf("%v: taken fraction %v", ref, f)
				}
				sumExec += c.Executed
				sumTaken += c.Taken
			}
			if sumExec != prof.CondExec {
				t.Fatalf("per-site executions sum to %d, profile says %d", sumExec, prof.CondExec)
			}
			if sumTaken != prof.CondTaken {
				t.Fatalf("per-site takens sum to %d, profile says %d", sumTaken, prof.CondTaken)
			}
			if prof.CondExec > prof.Insns {
				t.Fatalf("more conditional branches (%d) than instructions (%d)",
					prof.CondExec, prof.Insns)
			}

			// Normalized weights are the paper's n_k: they must sum to 1
			// over executed sites (within float tolerance).
			if prof.CondExec > 0 {
				var wsum float64
				for ref := range prof.Branches {
					wsum += prof.NormalizedWeight(ref)
				}
				if wsum < 0.999999 || wsum > 1.000001 {
					t.Fatalf("normalized weights sum to %v", wsum)
				}
			}

			// Edge counts are consistent with branch counts: for every
			// branch site, the taken-edge count equals Taken.
			edgeFrom := map[ir.BranchRef]int64{}
			for e, n := range prof.Edges {
				if n < 0 {
					t.Fatalf("edge %v has negative count %d", e, n)
				}
				edgeFrom[ir.BranchRef{Func: e.Func, Block: e.From}] += n
			}
			for ref, c := range prof.Branches {
				if out, ok := edgeFrom[ref]; ok && out != c.Executed {
					t.Fatalf("%v: %d outgoing edge transitions for %d executions",
						ref, out, c.Executed)
				}
			}

			// Determinism: the same program, input, and seed reproduce the
			// profile exactly — counts, edges, outputs, and result.
			again := runProfile(t, src, uint64(pi)+1)
			if again.Insns != prof.Insns || again.CondExec != prof.CondExec ||
				again.CondTaken != prof.CondTaken || again.Result != prof.Result {
				t.Fatalf("rerun diverged: insns %d/%d cond %d/%d taken %d/%d result %d/%d",
					prof.Insns, again.Insns, prof.CondExec, again.CondExec,
					prof.CondTaken, again.CondTaken, prof.Result, again.Result)
			}
			if len(again.Branches) != len(prof.Branches) {
				t.Fatalf("rerun has %d branch sites, first run %d",
					len(again.Branches), len(prof.Branches))
			}
			for ref, c := range prof.Branches {
				c2 := again.Branches[ref]
				if c2 == nil || *c2 != *c {
					t.Fatalf("%v: rerun count %+v != %+v", ref, c2, c)
				}
			}
			if len(again.Edges) != len(prof.Edges) {
				t.Fatalf("rerun has %d edges, first run %d", len(again.Edges), len(prof.Edges))
			}
			for e, n := range prof.Edges {
				if again.Edges[e] != n {
					t.Fatalf("edge %v: rerun %d != %d", e, again.Edges[e], n)
				}
			}
		})
	}
}

// TestGeneratedProgramsExerciseBranches guards the generator itself: across
// the differential corpus a healthy share of programs must actually execute
// conditional branches, or the invariants above are vacuous.
func TestGeneratedProgramsExerciseBranches(t *testing.T) {
	withBranches := 0
	for pi := 0; pi < 20; pi++ {
		prof := runProfile(t, generate(int64(2000+pi)), uint64(pi)+1)
		if prof.CondExec > 0 {
			withBranches++
		}
	}
	if withBranches < 15 {
		t.Fatalf("only %d/20 generated programs executed a conditional branch", withBranches)
	}
}
