package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/minic"
)

// genCall lowers builtin and user calls. Arguments are evaluated into
// temporaries (spilled under pressure), then moved into the argument
// registers immediately before the call, matching the simplified Alpha
// calling standard the interpreter implements.
func (g *generator) genCall(x *minic.CallExpr) value {
	if x.Builtin != minic.BuiltinNone {
		return g.genBuiltin(x)
	}
	vals := make([]value, len(x.Args))
	for i, a := range x.Args {
		vals[i] = g.genExpr(a)
		g.maybeSpill(&vals[i])
	}
	for i, v := range vals {
		if v.float {
			dst := ir.Reg(int(ir.RegFA0) + i)
			if v.spilled {
				g.fb.Emit(ir.Instr{Op: ir.OpLdt, Dst: dst, A: ir.RegSP, Imm: v.slot})
				g.releaseScratch(v.slot)
			} else {
				g.fb.Emit(ir.Instr{Op: ir.OpFMov, Dst: dst, A: v.reg})
				g.freeVal(v)
			}
		} else {
			dst := ir.Reg(int(ir.RegA0) + i)
			if v.spilled {
				g.fb.Emit(ir.Instr{Op: ir.OpLdq, Dst: dst, A: ir.RegSP, Imm: v.slot})
				g.releaseScratch(v.slot)
			} else {
				g.fb.Emit(ir.Instr{Op: ir.OpMov, Dst: dst, A: v.reg})
				g.freeVal(v)
			}
		}
	}
	// MIPS-style register-save convention: save a callee-saved register to
	// the (memory-based) register save area around the call — the real
	// stores the paper blames for Store-heuristic differences between the
	// MIPS and the Alpha (Section 5.2.1).
	if g.tgt.RegSaveStores {
		addr := g.intPool.alloc()
		g.fb.Lda(addr, regSaveGlobal, 0)
		g.fb.Emit(ir.Instr{Op: ir.OpStq, A: addr, B: ir.R(9)})
		g.intPool.release(addr)
	}
	g.fb.Call(x.Name)
	if g.tgt.RegSaveStores {
		addr := g.intPool.alloc()
		g.fb.Lda(addr, regSaveGlobal, 0)
		g.fb.Emit(ir.Instr{Op: ir.OpLdq, Dst: ir.R(9), A: addr})
		g.intPool.release(addr)
	}
	ret := x.Decl.Ret
	if ret.IsVoid() {
		return value{reg: ir.RegZero}
	}
	if ret.IsFloat() {
		r := g.fltPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpFMov, Dst: r, A: ir.RegFV0})
		return value{reg: r, float: true, temp: true}
	}
	r := g.intPool.alloc()
	g.fb.Emit(ir.Instr{Op: ir.OpMov, Dst: r, A: ir.RegV0})
	return value{reg: r, temp: true}
}

func (g *generator) genBuiltin(x *minic.CallExpr) value {
	moveArg := func(i int, float bool) {
		v := g.genExpr(x.Args[i])
		if float {
			g.fb.Emit(ir.Instr{Op: ir.OpFMov, Dst: ir.RegFA0, A: v.reg})
		} else {
			g.fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: v.reg})
		}
		g.freeVal(v)
	}
	intResult := func() value {
		r := g.intPool.alloc()
		g.fb.Emit(ir.Instr{Op: ir.OpMov, Dst: r, A: ir.RegV0})
		return value{reg: r, temp: true}
	}
	switch x.Builtin {
	case minic.BuiltinAlloc:
		moveArg(0, false)
		g.fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtAlloc})
		return intResult()
	case minic.BuiltinInput:
		moveArg(0, false)
		g.fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtInput})
		return intResult()
	case minic.BuiltinPrint:
		moveArg(0, false)
		g.fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrint})
		return value{reg: ir.RegZero}
	case minic.BuiltinPrintF:
		moveArg(0, true)
		g.fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtPrintF})
		return value{reg: ir.RegZero}
	case minic.BuiltinRand:
		g.fb.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtRand})
		return intResult()
	}
	panic(fmt.Sprintf("codegen: unknown builtin %q", x.Name))
}
