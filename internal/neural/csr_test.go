package neural

import (
	"math"
	"testing"
)

// synthBatch builds a deterministic batch with the sparsity structure the
// encoder produces: blocks of columns that are either entirely zero (a gated
// feature) or entirely nonzero (an active, mean-centered one-hot block).
func synthBatch(rows, cols, block int, seed uint64) ([][]float64, []float64, []float64) {
	r := newRNG(seed)
	xs := make([][]float64, rows)
	t := make([]float64, rows)
	w := make([]float64, rows)
	var wsum float64
	for k := range xs {
		x := make([]float64, cols)
		for b := 0; b < cols; b += block {
			if r.uniform() < 0.3 {
				continue // gated block: exact zeros
			}
			hi := b + block
			if hi > cols {
				hi = cols
			}
			for j := b; j < hi; j++ {
				x[j] = 2*r.uniform() - 1
			}
		}
		xs[k] = x
		if r.uniform() < 0.5 {
			t[k] = 1
		}
		w[k] = r.uniform() + 0.01
		wsum += w[k]
	}
	for k := range w {
		w[k] /= wsum
	}
	return xs, t, w
}

func sameNet(t *testing.T, label string, a, b *Net) {
	t.Helper()
	for i, v := range a.W {
		if v != b.W[i] {
			t.Fatalf("%s: W[%d] = %g vs %g", label, i, v, b.W[i])
		}
	}
	for i := range a.B {
		if a.B[i] != b.B[i] || a.V[i] != b.V[i] {
			t.Fatalf("%s: hidden unit %d differs", label, i)
		}
	}
	if a.A != b.A {
		t.Fatalf("%s: A = %g vs %g", label, a.A, b.A)
	}
}

func sameResult(t *testing.T, label string, a, b TrainResult) {
	t.Helper()
	if a.Epochs != b.Epochs || a.StoppedEarly != b.StoppedEarly {
		t.Fatalf("%s: epochs %d/%v vs %d/%v", label,
			a.Epochs, a.StoppedEarly, b.Epochs, b.StoppedEarly)
	}
	if a.FinalLoss != b.FinalLoss || a.BestThresholded != b.BestThresholded ||
		a.FinalLearnRate != b.FinalLearnRate {
		t.Fatalf("%s: loss %v/%v/%v vs %v/%v/%v", label,
			a.FinalLoss, a.BestThresholded, a.FinalLearnRate,
			b.FinalLoss, b.BestThresholded, b.FinalLearnRate)
	}
}

// TestTrainCSRMatchesDense is the tentpole equivalence guarantee: the sparse
// fused kernel must produce bit-for-bit the same model and statistics as the
// dense reference on the same seed and data.
func TestTrainCSRMatchesDense(t *testing.T) {
	for _, seed := range []uint64{1, 42, 12345} {
		cfg := Config{Inputs: 40, Hidden: 7, Seed: seed,
			MaxEpochs: 150, Patience: 12, RecordHistory: true}
		xs, targets, w := synthBatch(90, cfg.Inputs, 5, seed*31+7)

		dense := New(cfg)
		dres := dense.Train(cfg, xs, targets, w)

		sparse := New(cfg)
		sres := sparse.TrainCSR(cfg, NewCSRFromDense(xs, cfg.Inputs), targets, w)

		sameNet(t, "model", dense, sparse)
		sameResult(t, "stats", dres, sres)
		if len(dres.LossHistory) != len(sres.LossHistory) {
			t.Fatalf("loss history length %d vs %d",
				len(dres.LossHistory), len(sres.LossHistory))
		}
		for i := range dres.LossHistory {
			if dres.LossHistory[i] != sres.LossHistory[i] {
				t.Fatalf("loss history[%d]: %g vs %g",
					i, dres.LossHistory[i], sres.LossHistory[i])
			}
		}
		if len(dres.ThresholdHistory) != len(sres.ThresholdHistory) {
			t.Fatalf("threshold history length %d vs %d",
				len(dres.ThresholdHistory), len(sres.ThresholdHistory))
		}
		for i := range dres.ThresholdHistory {
			if dres.ThresholdHistory[i] != sres.ThresholdHistory[i] {
				t.Fatalf("threshold history[%d]: %g vs %g",
					i, dres.ThresholdHistory[i], sres.ThresholdHistory[i])
			}
		}
	}
}

// TestTrainCSRWorkerInvariance: the sharded parallel epoch must produce the
// same bits as the serial kernel for every worker count. The batch is large
// enough (≥ 4×minShardRows) that sharding actually engages.
func TestTrainCSRWorkerInvariance(t *testing.T) {
	base := Config{Inputs: 30, Hidden: 6, Seed: 3, MaxEpochs: 40, Patience: 40}
	xs, targets, w := synthBatch(4*minShardRows+19, base.Inputs, 5, 77)
	data := NewCSRFromDense(xs, base.Inputs)

	ref := New(base)
	serialCfg := base
	serialCfg.Workers = 1
	rres := ref.TrainCSR(serialCfg, data, targets, w)

	for _, workers := range []int{2, 3, 8} {
		cfg := base
		cfg.Workers = workers
		n := New(cfg)
		res := n.TrainCSR(cfg, data, targets, w)
		sameNet(t, "workers", ref, n)
		sameResult(t, "workers", rres, res)
	}
}

func TestForwardIntoMatchesForward(t *testing.T) {
	n := New(Config{Inputs: 9, Hidden: 4, Seed: 6})
	h := make([]float64, n.Hidden)
	r := newRNG(55)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, n.Inputs)
		for j := range x {
			if r.uniform() < 0.4 {
				x[j] = 2*r.uniform() - 1
			}
		}
		if got, want := n.ForwardInto(h, x), n.Forward(x); got != want {
			t.Fatalf("ForwardInto = %g, Forward = %g", got, want)
		}
	}
}

// TestForwardRowMatchesDense: the CSR row forward must be bit-identical to
// the dense forward on the equivalent dense row.
func TestForwardRowMatchesDense(t *testing.T) {
	n := New(Config{Inputs: 25, Hidden: 5, Seed: 8})
	xs, _, _ := synthBatch(30, n.Inputs, 5, 91)
	data := NewCSRFromDense(xs, n.Inputs)
	h := make([]float64, n.Hidden)
	for k, x := range xs {
		idx, val := data.Row(k)
		if got, want := n.forwardRow(h, idx, val), n.Forward(x); got != want {
			t.Fatalf("row %d: forwardRow = %g, Forward = %g", k, got, want)
		}
	}
}

func TestHistoryGatedByConfig(t *testing.T) {
	cfg := Config{Inputs: 10, Hidden: 3, Seed: 2, MaxEpochs: 30, Patience: 30}
	xs, targets, w := synthBatch(20, cfg.Inputs, 5, 13)
	n := New(cfg)
	res := n.TrainCSR(cfg, NewCSRFromDense(xs, cfg.Inputs), targets, w)
	if res.LossHistory != nil || res.ThresholdHistory != nil {
		t.Error("history recorded without RecordHistory")
	}
	cfg.RecordHistory = true
	n2 := New(cfg)
	res2 := n2.TrainCSR(cfg, NewCSRFromDense(xs, cfg.Inputs), targets, w)
	if len(res2.LossHistory) != res2.Epochs {
		t.Errorf("loss history %d entries, want %d", len(res2.LossHistory), res2.Epochs)
	}
	if math.IsInf(res2.BestThresholded, 1) {
		t.Error("BestThresholded never set")
	}
}

// TestKernelsMatchGeneric exercises the dispatching gather/scatter kernels
// against the portable loops across awkward shapes: vector-width remainders,
// single lanes, and scatter into a sub-range of the hidden units (the
// parallel phase-2 case, where n < stride).
func TestKernelsMatchGeneric(t *testing.T) {
	r := newRNG(321)
	for _, shape := range []struct{ n, stride, cols, nnz int }{
		{1, 1, 3, 5}, {3, 3, 4, 9}, {4, 4, 6, 11}, {7, 7, 10, 25},
		{20, 20, 80, 60}, {5, 20, 80, 60}, {6, 13, 9, 17},
	} {
		w := make([]float64, shape.cols*shape.stride)
		for i := range w {
			w[i] = 2*r.uniform() - 1
		}
		idx := make([]int32, shape.nnz)
		val := make([]float64, shape.nnz)
		for p := range idx {
			idx[p] = int32(int(r.next()) % shape.cols)
			if idx[p] < 0 {
				idx[p] += int32(shape.cols)
			}
			val[p] = 2*r.uniform() - 1
		}
		h1 := make([]float64, shape.n)
		h2 := make([]float64, shape.n)
		for i := range h1 {
			h1[i] = r.uniform()
			h2[i] = h1[i]
		}
		csrGather(h1, w, idx, val, shape.n, shape.stride)
		csrGatherGeneric(h2, w, idx, val, shape.n, shape.stride)
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("gather %+v: h[%d] = %g vs %g", shape, i, h1[i], h2[i])
			}
		}
		g1 := make([]float64, len(w))
		g2 := make([]float64, len(w))
		dh := make([]float64, shape.n)
		for i := range dh {
			dh[i] = 2*r.uniform() - 1
		}
		csrScatter(g1, dh, idx, val, shape.n, shape.stride)
		csrScatterGeneric(g2, dh, idx, val, shape.n, shape.stride)
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("scatter %+v: g[%d] = %g vs %g", shape, i, g1[i], g2[i])
			}
		}
	}
}
