package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the command under test into a temp dir once.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "minicc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func writeSrc(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testProgram = `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < __input(0); i = i + 1) { s = s + i; }
	__print(s);
	return s;
}
`

func TestCompileSummary(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, testProgram)
	out, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatalf("minicc: %v\n%s", err, out)
	}
	for _, want := range []string{"functions", "conditional branch sites"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithInputs(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, testProgram)
	out, err := exec.Command(bin, "-run", "-input", "10", src).CombinedOutput()
	if err != nil {
		t.Fatalf("minicc -run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "45") {
		t.Errorf("expected the printed sum 45:\n%s", out)
	}
	if !strings.Contains(string(out), "result=45") {
		t.Errorf("expected result=45:\n%s", out)
	}
}

func TestDumpStages(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, testProgram)
	ir, err := exec.Command(bin, "-dump", "ir", src).CombinedOutput()
	if err != nil {
		t.Fatalf("-dump ir: %v\n%s", err, ir)
	}
	if !strings.Contains(string(ir), "func main") || !strings.Contains(string(ir), "ret") {
		t.Errorf("IR dump incomplete:\n%s", ir)
	}
	cfgOut, err := exec.Command(bin, "-dump", "cfg", src).CombinedOutput()
	if err != nil {
		t.Fatalf("-dump cfg: %v\n%s", err, cfgOut)
	}
	if !strings.Contains(string(cfgOut), "loop header") {
		t.Errorf("CFG dump missing loop info:\n%s", cfgOut)
	}
	toks, err := exec.Command(bin, "-dump", "tokens", src).CombinedOutput()
	if err != nil {
		t.Fatalf("-dump tokens: %v\n%s", err, toks)
	}
	if !strings.Contains(string(toks), "'int'") {
		t.Errorf("token dump missing keywords:\n%s", toks)
	}
}

func TestTargetSelection(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, testProgram)
	out, err := exec.Command(bin, "-target", "gem", src).CombinedOutput()
	if err != nil {
		t.Fatalf("-target gem: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "[gem]") {
		t.Errorf("target not reported:\n%s", out)
	}
	if out, err := exec.Command(bin, "-target", "nonesuch", src).CombinedOutput(); err == nil {
		t.Errorf("unknown target accepted:\n%s", out)
	}
}

func TestStdlibLinking(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, `
int main() {
	lib_report(lib_max(3, lib_abs(0 - 9)));
	return 0;
}
`)
	out, err := exec.Command(bin, "-stdlib", "-run", src).CombinedOutput()
	if err != nil {
		t.Fatalf("-stdlib: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "9") {
		t.Errorf("library call result missing:\n%s", out)
	}
	// Without -stdlib the same program must fail to compile.
	if out, err := exec.Command(bin, src).CombinedOutput(); err == nil {
		t.Errorf("unlinked library call accepted:\n%s", out)
	}
}

func TestCompileErrorsAreReported(t *testing.T) {
	bin := buildTool(t)
	src := writeSrc(t, `int main() { return undefined_var; }`)
	out, err := exec.Command(bin, src).CombinedOutput()
	if err == nil {
		t.Fatalf("invalid program accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "undefined") {
		t.Errorf("error output unhelpful:\n%s", out)
	}
}
