// Package codegen lowers checked MinC programs to the Alpha-like IR. The
// Target configuration reproduces the architecture and compiler axes the
// paper studies in Section 5.2: conditional-move availability (the Alpha
// feature that removes short conditional branches), compare-to-zero versus
// two-register branch forms (Alpha vs MIPS), register-save store conventions
// around calls (MIPS), loop unrolling (the DEC GEM compiler), and register
// pressure (which forces spill stores on the register-poor target).
package codegen

// ISA selects the branch-instruction style of the target architecture.
type ISA int

// Supported instruction-set styles.
const (
	// ISAAlpha: conditional branches compare one register against zero;
	// equality of two registers needs an explicit CMPEQ.
	ISAAlpha ISA = iota
	// ISAMIPS: branches may compare two registers directly (BEQ2/BNE2).
	ISAMIPS
)

// String names the ISA.
func (i ISA) String() string {
	if i == ISAMIPS {
		return "MIPS"
	}
	return "Alpha"
}

// Target describes the architecture/compiler configuration used for
// lowering. The zero value is a plain unoptimized Alpha target.
type Target struct {
	// Name identifies the configuration in experiment tables.
	Name string
	// ISA selects the branch style.
	ISA ISA
	// UseCmov converts short conditional assignments (if (c) x = e;) into
	// conditional moves instead of branches.
	UseCmov bool
	// UnrollLoops unrolls innermost counted for-loops by this factor when
	// greater than 1 (the GEM compiler behaviour from Table 7).
	UnrollLoops int
	// RegSaveStores inserts register-save stores/reloads around calls (the
	// MIPS calling-convention effect the paper blames for Store-heuristic
	// differences on tomcatv).
	RegSaveStores bool
	// FoldConstants folds integer-literal arithmetic at compile time.
	FoldConstants bool
	// MaterializeCompares always computes comparison results into a
	// register and branches on that register, even for comparisons against
	// zero that the ISA could branch on directly (a gcc-style difference
	// that shifts which opcodes the Opcode heuristic sees).
	MaterializeCompares bool
	// NoLoopInversion keeps while/for loops in the jump-to-test layout
	// instead of duplicating the test as an entry guard — a loop-layout
	// policy difference between compilers that changes which branches are
	// loop back edges.
	NoLoopInversion bool
	// IntTemps and FloatTemps bound the expression-temporary register pools;
	// exhausting a pool forces spill stores to the stack frame. Zero means
	// the default for the ISA (14 on Alpha, 8/6 on MIPS).
	IntTemps   int
	FloatTemps int
}

func (t Target) intTemps() int {
	if t.IntTemps > 0 {
		return t.IntTemps
	}
	if t.ISA == ISAMIPS {
		return 8
	}
	return 14
}

func (t Target) floatTemps() int {
	if t.FloatTemps > 0 {
		return t.FloatTemps
	}
	if t.ISA == ISAMIPS {
		return 6
	}
	return 14
}

// Predefined targets and compiler configurations.
var (
	// AlphaCC models "cc on OSF/1 V1.2" — the paper's baseline compiler:
	// standard -O, no conditional moves.
	AlphaCC = Target{Name: "cc-osf1-v1.2", ISA: ISAAlpha, FoldConstants: true}

	// AlphaCCv2 models "cc on OSF/1 V2.0": conditional moves enabled.
	AlphaCCv2 = Target{Name: "cc-osf1-v2.0", ISA: ISAAlpha, UseCmov: true, FoldConstants: true}

	// AlphaGEM models the DEC GEM compiler: conditional moves plus loop
	// unrolling (Table 7 attributes GEM's different branch mix to
	// unrolling the main loop).
	AlphaGEM = Target{Name: "gem", ISA: ISAAlpha, UseCmov: true, UnrollLoops: 4, FoldConstants: true}

	// AlphaGCC models the GNU C compiler on Alpha: no conditional moves,
	// no folding, materializing every comparison.
	AlphaGCC = Target{Name: "gcc", ISA: ISAAlpha, FoldConstants: false, MaterializeCompares: true, NoLoopInversion: true}

	// MIPSCC models the MIPS compiler of the Ball and Larus study:
	// two-register branches, register-save stores around calls, and a
	// smaller temporary pool (spill stores under pressure).
	MIPSCC = Target{Name: "mips-cc", ISA: ISAMIPS, RegSaveStores: true, FoldConstants: true}
)

// Default is the target used throughout the evaluation unless a table
// studies compiler sensitivity: the paper compiled most programs with the
// DEC compilers at standard optimization on the Alpha.
var Default = AlphaCC

// Compilers lists the Table 7 compiler configurations in presentation order.
var Compilers = []Target{AlphaCC, AlphaCCv2, AlphaGEM, AlphaGCC}
