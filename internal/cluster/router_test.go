package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
)

// fakeBackend is a scriptable replica: it answers /predict with its own
// name so tests can observe routing, and can be flipped into shedding or
// erroring mode.
type fakeBackend struct {
	name string
	hits atomic.Int64
	shed atomic.Bool // 429 + Retry-After: 7
	fail atomic.Bool // 500
	ts   *httptest.Server
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	b := &fakeBackend{name: name}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		switch {
		case b.shed.Load():
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":"shedding"}`)
		case b.fail.Load():
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"id":%q,"predictions":[]}`, b.name)
		}
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func testRouter(t *testing.T, cfg RouterConfig, backends ...*fakeBackend) *Router {
	t.Helper()
	reps := make([]*Replica, len(backends))
	for i, b := range backends {
		reps[i] = &Replica{Name: b.name}
		reps[i].SetURL(b.ts.URL)
	}
	return NewRouter(cfg, reps...)
}

func routePredict(t *testing.T, rt *Router, req serve.PredictRequest) (*http.Response, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, hr)
	resp := rec.Result()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PredictResponse
	_ = json.Unmarshal(data, &pr)
	return resp, pr.ID
}

func sourceReq(i int) serve.PredictRequest {
	return serve.PredictRequest{Name: fmt.Sprintf("p%d", i), Source: fmt.Sprintf("int main() { return %d; }", i)}
}

// TestRouterKeyAffinity: one request body always lands on one replica, and
// distinct bodies spread across all of them.
func TestRouterKeyAffinity(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "r0"), newFakeBackend(t, "r1"), newFakeBackend(t, "r2"),
	}
	rt := testRouter(t, RouterConfig{}, backends...)

	req := sourceReq(7)
	var first string
	for i := 0; i < 10; i++ {
		resp, who := routePredict(t, rt, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if first == "" {
			first = who
		} else if who != first {
			t.Fatalf("same body served by %s then %s", first, who)
		}
	}

	served := map[string]bool{}
	for i := 0; i < 60; i++ {
		_, who := routePredict(t, rt, sourceReq(i))
		served[who] = true
	}
	if len(served) != len(backends) {
		t.Fatalf("60 distinct bodies reached only %d of %d replicas", len(served), len(backends))
	}
}

// TestRouterFailsOverOnShed: the key's owner sheds, the next ring candidate
// answers; the client sees a clean 200 and the failover is counted.
func TestRouterFailsOverOnShed(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "r0"), newFakeBackend(t, "r1"), newFakeBackend(t, "r2"),
	}
	var failovers atomic.Int64
	rt := testRouter(t, RouterConfig{Counters: countFailovers{&failovers}}, backends...)

	req := sourceReq(1)
	owner := rt.Ring().Lookup(RequestKey(&req))
	for _, b := range backends {
		if b.name == owner {
			b.shed.Store(true)
		}
	}
	resp, who := routePredict(t, rt, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if who == owner {
		t.Fatalf("shedding owner %s served the request", owner)
	}
	if failovers.Load() == 0 {
		t.Error("failover not counted")
	}
	// Next candidate for this key must be deterministic: the same request
	// fails over to the same secondary.
	_, who2 := routePredict(t, rt, req)
	if who2 != who {
		t.Fatalf("failover not deterministic: %s then %s", who, who2)
	}
}

// TestRouterFailsOverOnErrorAndUnreachable: 5xx and transport failures move
// the request along the ring just like a shed.
func TestRouterFailsOverOnErrorAndUnreachable(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "r0"), newFakeBackend(t, "r1"), newFakeBackend(t, "r2"),
	}
	rt := testRouter(t, RouterConfig{}, backends...)
	req := sourceReq(2)
	seq := rt.Ring().Sequence(RequestKey(&req), 3)

	for _, b := range backends {
		if b.name == seq[0] {
			b.fail.Store(true) // owner: 500
		}
		if b.name == seq[1] {
			b.ts.Close() // first failover target: unreachable
		}
	}
	resp, who := routePredict(t, rt, req)
	if resp.StatusCode != http.StatusOK || who != seq[2] {
		t.Fatalf("status %d from %q, want 200 from %q", resp.StatusCode, who, seq[2])
	}
}

// TestRouterRelaysShedVerbatim: when every candidate sheds, the client gets
// the upstream 429 with its Retry-After intact — the single-server backoff
// protocol, not a router-invented error.
func TestRouterRelaysShedVerbatim(t *testing.T) {
	backends := []*fakeBackend{newFakeBackend(t, "r0"), newFakeBackend(t, "r1")}
	for _, b := range backends {
		b.shed.Store(true)
	}
	rt := testRouter(t, RouterConfig{}, backends...)
	resp, _ := routePredict(t, rt, sourceReq(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want relayed 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q not relayed", got)
	}
}

// TestRouterNeverRoutesToDrained: a drained replica receives zero requests
// — as owner or as failover target — until undrained.
func TestRouterNeverRoutesToDrained(t *testing.T) {
	backends := []*fakeBackend{
		newFakeBackend(t, "r0"), newFakeBackend(t, "r1"), newFakeBackend(t, "r2"),
	}
	rt := testRouter(t, RouterConfig{}, backends...)
	rt.SetDrained("r1", true)
	// Shed on r0 so failover pressure exists: it must skip r1.
	backends[0].shed.Store(true)

	for i := 0; i < 40; i++ {
		resp, _ := routePredict(t, rt, sourceReq(i))
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if got := backends[1].hits.Load(); got != 0 {
		t.Fatalf("drained replica served %d requests", got)
	}

	rt.SetDrained("r1", false)
	backends[0].shed.Store(false)
	for i := 0; i < 40; i++ {
		routePredict(t, rt, sourceReq(i))
	}
	if backends[1].hits.Load() == 0 {
		t.Error("undrained replica never rejoined the rotation")
	}
}

// TestRouterAllUnreachable: a fully dead cluster surfaces as 502, and a
// fully drained one as 503.
func TestRouterAllUnreachable(t *testing.T) {
	backends := []*fakeBackend{newFakeBackend(t, "r0"), newFakeBackend(t, "r1")}
	rt := testRouter(t, RouterConfig{}, backends...)
	for _, b := range backends {
		b.ts.Close()
	}
	resp, _ := routePredict(t, rt, sourceReq(4))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	for _, b := range backends {
		rt.SetDrained(b.name, true)
	}
	resp, _ = routePredict(t, rt, sourceReq(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when fully drained", resp.StatusCode)
	}
}

// TestRequestKeyContent: the key follows the request's content — same
// source, same key; different source or vectors, different key.
func TestRequestKeyContent(t *testing.T) {
	a := sourceReq(1)
	b := sourceReq(1)
	if RequestKey(&a) != RequestKey(&b) {
		t.Fatal("identical requests keyed differently")
	}
	c := sourceReq(2)
	if RequestKey(&a) == RequestKey(&c) {
		t.Fatal("different sources share a key")
	}
	v1 := serve.PredictRequest{Vectors: [][]string{{"x", "y"}}}
	v2 := serve.PredictRequest{Vectors: [][]string{{"x", "z"}}}
	if RequestKey(&v1) == RequestKey(&v2) {
		t.Fatal("different vectors share a key")
	}
}

type countFailovers struct{ n *atomic.Int64 }

func (c countFailovers) PeerHit()  {}
func (c countFailovers) PeerMiss() {}
func (c countFailovers) Failover() { c.n.Add(1) }
