package neural

import (
	"math"
	"runtime"
	"sync"
)

// CSR is a batch of training inputs in compressed-sparse-row form: row k's
// nonzero entries are Index/Value[Start[k]:Start[k+1]], with column indices
// strictly ascending within a row. The one-hot feature encoding leaves every
// gated ("?") feature block and every constant column exactly zero, so rows
// carry only their active columns.
//
// Kernels that consume a CSR add the surviving terms in the same ascending
// column order the dense kernels use; since the skipped terms are exact
// zeros, dense and sparse runs produce bit-identical floats.
type CSR struct {
	// Cols is the dense width (the encoder dimension).
	Cols int
	// Start has one entry per row plus a final total-length sentinel.
	Start []int
	// Index holds the nonzero column indices, ascending within each row.
	Index []int32
	// Value holds the corresponding values.
	Value []float64
}

// Rows returns the number of rows.
func (c *CSR) Rows() int {
	if len(c.Start) == 0 {
		return 0
	}
	return len(c.Start) - 1
}

// Row returns row k's column indices and values.
func (c *CSR) Row(k int) ([]int32, []float64) {
	lo, hi := c.Start[k], c.Start[k+1]
	return c.Index[lo:hi], c.Value[lo:hi]
}

// NewCSRFromDense compresses dense rows (all of width cols), dropping exact
// zeros.
func NewCSRFromDense(xs [][]float64, cols int) *CSR {
	c := &CSR{Cols: cols, Start: make([]int, 1, len(xs)+1)}
	for _, x := range xs {
		for j, v := range x {
			if v != 0 {
				c.Index = append(c.Index, int32(j))
				c.Value = append(c.Value, v)
			}
		}
		c.Start = append(c.Start, len(c.Index))
	}
	return c
}

// forwardRow computes the hidden activations for one sparse row into h and
// returns the network output.
func (n *Net) forwardRow(h []float64, idx []int32, val []float64) float64 {
	hh := n.Hidden
	copy(h, n.B)
	h = h[:hh]
	csrGather(h, n.W, idx, val, hh, hh)
	for i, z := range h {
		h[i] = math.Tanh(z)
	}
	return n.output(h)
}

// TrainCSR fits the network on sparse rows. It is the production training
// kernel: bit-identical to the dense reference Train (same seed, same data,
// same model and TrainResult) but roughly 3× faster, because it
//
//   - walks only each row's nonzero columns (column-major weight layout,
//     all hidden accumulators advanced per column);
//   - evaluates the early-stopping thresholded error inside the next
//     epoch's forward pass instead of re-forwarding the whole dataset —
//     the error after epoch e's update is measured with exactly the weights
//     epoch e+1 forwards with, so the fused value is the same float; and
//   - optionally shards the batch gradient across Config.Workers goroutines
//     (trainShards), with every per-weight accumulation still performed in
//     example order, so worker count never changes the result.
func (n *Net) TrainCSR(cfg Config, data *CSR, t, w []float64) TrainResult {
	cfg = cfg.withDefaults()
	rows := data.Rows()
	if rows == 0 {
		return TrainResult{}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Sharding has fixed per-epoch overhead; tiny batches stay serial.
	if rows < 4*minShardRows {
		workers = 1
	}
	var sh *shards
	if workers > 1 {
		sh = newShards(n, data, workers)
	}

	lr := cfg.LearnRate
	res := TrainResult{BestThresholded: math.Inf(1)}
	if cfg.RecordHistory {
		res.LossHistory = make([]float64, 0, cfg.MaxEpochs)
		res.ThresholdHistory = make([]float64, 0, cfg.MaxEpochs)
	}
	prevLoss := math.Inf(1)
	best := n.snapshot()
	sinceBest := 0

	hh := n.Hidden
	gW := make([]float64, len(n.W))
	gB := make([]float64, hh)
	gV := make([]float64, hh)
	h := make([]float64, hh)
	dh := make([]float64, hh)

	// processThr folds one epoch's post-update thresholded error into the
	// early-stopping state; it returns true when patience is exhausted.
	// The caller must not have applied the next update yet, so the current
	// weights are exactly the ones the thresholded error measured.
	processThr := func(thr float64) bool {
		if cfg.RecordHistory {
			res.ThresholdHistory = append(res.ThresholdHistory, thr)
		}
		if thr < res.BestThresholded-1e-12 {
			res.BestThresholded = thr
			copy(best.w, n.W)
			copy(best.b, n.B)
			copy(best.v, n.V)
			best.a = n.A
			sinceBest = 0
			return false
		}
		sinceBest++
		return sinceBest >= cfg.Patience
	}

	stopped := false
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		var loss, thr, gA float64
		if sh != nil {
			loss, thr, gA = sh.epoch(n, t, w, gW, gB, gV)
		} else {
			for i := range gW {
				gW[i] = 0
			}
			for i := 0; i < hh; i++ {
				gB[i] = 0
				gV[i] = 0
			}
			for k := 0; k < rows; k++ {
				idx, val := data.Row(k)
				y := n.forwardRow(h, idx, val)
				loss += w[k] * (y*(1-t[k]) + t[k]*(1-y))
				if y > 0.5 {
					thr += w[k] * (1 - t[k])
				} else {
					thr += w[k] * t[k]
				}
				u := 2*y - 1
				dOut := w[k] * (1 - 2*t[k]) * 0.5 * (1 - u*u)
				for i := 0; i < hh; i++ {
					hi := h[i]
					gV[i] += dOut * hi
					d := dOut * n.V[i] * (1 - hi*hi)
					gB[i] += d
					dh[i] = d
				}
				csrScatter(gW, dh, idx, val, hh, hh)
				gA += dOut
			}
		}
		// The pass ran with the weights produced by the previous epoch's
		// update, so its thresholded error is that epoch's early-stopping
		// measurement. (The epoch-0 pass sees the initial weights, which
		// the reference never evaluates — discard.)
		if epoch > 0 && processThr(thr) {
			res.StoppedEarly = true
			stopped = true
			break
		}
		// Batch update.
		for i := range n.W {
			n.W[i] -= lr * gW[i]
		}
		for i := 0; i < hh; i++ {
			n.V[i] -= lr * gV[i]
			n.B[i] -= lr * gB[i]
		}
		n.A -= lr * gA
		if loss < prevLoss {
			lr *= cfg.LRUp
		} else {
			lr *= cfg.LRDown
		}
		prevLoss = loss
		if cfg.RecordHistory {
			res.LossHistory = append(res.LossHistory, loss)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = loss
		res.FinalLearnRate = lr
	}
	if !stopped {
		// The final epoch's update has not been measured yet: one forward
		// pass for its thresholded error.
		var thr float64
		for k := 0; k < rows; k++ {
			idx, val := data.Row(k)
			if n.forwardRow(h, idx, val) > 0.5 {
				thr += w[k] * (1 - t[k])
			} else {
				thr += w[k] * t[k]
			}
		}
		if processThr(thr) {
			res.StoppedEarly = true
		}
	}
	n.restore(best)
	return res
}

// minShardRows is the smallest number of rows worth a goroutine.
const minShardRows = 64

// shards holds the scratch state for the parallel two-phase epoch. Phase 1
// computes every example's hidden activations and output deltas in parallel
// over row shards (purely per-example work, so sharding cannot reorder any
// sum). Phase 2 accumulates the gradients in parallel over hidden-unit
// shards: each accumulator (one gV/gB entry, one gW column slot) is owned by
// exactly one worker, which adds that accumulator's contributions in example
// order — the same order the serial kernel uses. The scalar reductions
// (loss, thresholded error, output-bias gradient) run serially in example
// order. Worker count therefore never changes a single bit of the result.
type shards struct {
	data    *CSR
	workers int
	hbuf    []float64 // rows × hidden activations
	dbuf    []float64 // rows × hidden deltas
	dout    []float64 // per-row output delta
	lossT   []float64 // per-row loss term
	thrT    []float64 // per-row thresholded-loss term
}

func newShards(n *Net, data *CSR, workers int) *shards {
	rows := data.Rows()
	if max := (rows + minShardRows - 1) / minShardRows; workers > max {
		workers = max
	}
	return &shards{
		data:    data,
		workers: workers,
		hbuf:    make([]float64, rows*n.Hidden),
		dbuf:    make([]float64, rows*n.Hidden),
		dout:    make([]float64, rows),
		lossT:   make([]float64, rows),
		thrT:    make([]float64, rows),
	}
}

func (s *shards) epoch(n *Net, t, w, gW, gB, gV []float64) (loss, thr, gA float64) {
	rows := s.data.Rows()
	hh := n.Hidden
	var wg sync.WaitGroup

	// Phase 1: per-example forwards and deltas, sharded by row range.
	per := (rows + s.workers - 1) / s.workers
	for ws := 0; ws < s.workers; ws++ {
		lo, hi := ws*per, (ws+1)*per
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				idx, val := s.data.Row(k)
				h := s.hbuf[k*hh : (k+1)*hh]
				y := n.forwardRow(h, idx, val)
				s.lossT[k] = w[k] * (y*(1-t[k]) + t[k]*(1-y))
				if y > 0.5 {
					s.thrT[k] = w[k] * (1 - t[k])
				} else {
					s.thrT[k] = w[k] * t[k]
				}
				u := 2*y - 1
				dOut := w[k] * (1 - 2*t[k]) * 0.5 * (1 - u*u)
				s.dout[k] = dOut
				d := s.dbuf[k*hh : (k+1)*hh]
				for i := 0; i < hh; i++ {
					hi := h[i]
					d[i] = dOut * n.V[i] * (1 - hi*hi)
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Scalar reductions, serially in example order.
	for k := 0; k < rows; k++ {
		loss += s.lossT[k]
		thr += s.thrT[k]
		gA += s.dout[k]
	}

	// Phase 2: gradient accumulation, sharded by hidden-unit range.
	hper := (hh + s.workers - 1) / s.workers
	for ws := 0; ws < s.workers; ws++ {
		ilo, ihi := ws*hper, (ws+1)*hper
		if ihi > hh {
			ihi = hh
		}
		if ilo >= ihi {
			break
		}
		wg.Add(1)
		go func(ilo, ihi int) {
			defer wg.Done()
			for i := ilo; i < ihi; i++ {
				gB[i] = 0
				gV[i] = 0
			}
			for j := 0; j < s.data.Cols; j++ {
				base := j * hh
				for i := ilo; i < ihi; i++ {
					gW[base+i] = 0
				}
			}
			for k := 0; k < rows; k++ {
				dOut := s.dout[k]
				h := s.hbuf[k*hh : (k+1)*hh]
				d := s.dbuf[k*hh : (k+1)*hh]
				for i := ilo; i < ihi; i++ {
					gV[i] += dOut * h[i]
					gB[i] += d[i]
				}
				idx, val := s.data.Row(k)
				csrScatter(gW[ilo:], d[ilo:], idx, val, ihi-ilo, hh)
			}
		}(ilo, ihi)
	}
	wg.Wait()
	return loss, thr, gA
}
