package ir

import (
	"fmt"
	"strings"
)

// Disassemble renders the function as text, one block per paragraph, with
// successor annotations. The output is stable and used in golden tests.
func (f *Func) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (int args %d, float args %d, frame %d, lang %s):\n",
		f.Name, f.NIntArgs, f.NFltArgs, f.FrameSize, f.Language)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if succs := f.Succs(b); len(succs) > 0 {
			fmt.Fprintf(&sb, "  ; succs=%v", succs)
		}
		sb.WriteByte('\n')
		for i := range b.Insns {
			fmt.Fprintf(&sb, "\t%s\n", b.Insns[i].String())
		}
	}
	return sb.String()
}

// Disassemble renders the whole program (globals, then functions).
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, g := range p.Globals {
		kind := "int"
		if g.Float {
			kind = "float"
		}
		fmt.Fprintf(&sb, "global %s %s[%d]\n", kind, g.Name, g.Size)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.Disassemble())
	}
	return sb.String()
}
