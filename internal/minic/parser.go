package minic

import (
	"fmt"

	"repro/internal/guard"
)

// Limits bounds the resources a single parse may consume, so a hostile
// source submission cannot blow the parser's stack. The zero value is
// unlimited — the default for trusted corpus input, keeping every
// reproduction run byte-identical.
type Limits struct {
	// MaxDepth caps the combined statement/expression nesting depth. 0
	// means unlimited.
	MaxDepth int
}

// Parser is a recursive-descent parser for MinC.
type Parser struct {
	lx   *Lexer
	tok  Token
	peek *Token

	depth    int
	maxDepth int
}

// Parse parses a complete MinC compilation unit with no resource limits.
func Parse(name, src string) (*Program, error) {
	return ParseWithLimits(name, src, Limits{})
}

// ParseWithLimits parses a compilation unit under resource budgets. A
// violated budget aborts the parse with an error wrapping
// guard.ErrBudgetExceeded.
func ParseWithLimits(name, src string, lim Limits) (*Program, error) {
	if err := reject(src); err != nil {
		return nil, err
	}
	p := &Parser{lx: NewLexer(src), maxDepth: lim.MaxDepth}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog := &Program{Name: name}
	for p.tok.Kind != TokEOF {
		if err := p.parseDecl(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// enter charges one level of recursive descent against the depth budget.
// Every recursive production (statements, expressions, unary chains) calls
// it, so parser stack growth is proportional to the budget.
func (p *Parser) enter() error {
	p.depth++
	if p.maxDepth > 0 && p.depth > p.maxDepth {
		return fmt.Errorf("%s: nesting depth exceeds limit %d: %w",
			p.tok.Pos, p.maxDepth, guard.ErrBudgetExceeded)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

func (p *Parser) next() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekTok returns the token after the current one without consuming it.
func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lx.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.describe())
	}
	t := p.tok
	if err := p.next(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *Parser) describe() string {
	if p.tok.Kind == TokIdent {
		return fmt.Sprintf("identifier %q", p.tok.Text)
	}
	return p.tok.Kind.String()
}

func (p *Parser) atType() bool {
	switch p.tok.Kind {
	case TokKwInt, TokKwFloat, TokKwVoid:
		return true
	}
	return false
}

// parseType parses "int"/"float"/"void" followed by '*'s.
func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.tok.Kind {
	case TokKwInt:
		t.Base = BaseInt
	case TokKwFloat:
		t.Base = BaseFloat
	case TokKwVoid:
		t.Base = BaseVoid
	default:
		return Type{}, errf(p.tok.Pos, "expected type, found %s", p.describe())
	}
	if err := p.next(); err != nil {
		return Type{}, err
	}
	for p.tok.Kind == TokStar {
		t.PtrDepth++
		if err := p.next(); err != nil {
			return Type{}, err
		}
	}
	return t, nil
}

func (p *Parser) parseDecl(prog *Program) error {
	pos := p.tok.Pos
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.tok.Kind == TokLParen {
		fn, err := p.parseFuncRest(pos, typ, name.Text)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	decl, err := p.parseVarRest(pos, typ, name.Text)
	if err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, decl)
	return nil
}

// parseVarRest parses the remainder of a variable declaration after the type
// and name: optional array length, optional initializer, semicolon.
func (p *Parser) parseVarRest(pos Pos, typ Type, name string) (*VarDecl, error) {
	d := &VarDecl{Pos: pos, Name: name, Type: typ}
	if p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, errf(n.Pos, "array length must be positive, got %d", n.Int)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.Type.ArrayLen = n.Int
	}
	if p.tok.Kind == TokAssign {
		if d.Type.IsArray() {
			return nil, errf(p.tok.Pos, "array %q cannot have an initializer", name)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFuncRest(pos Pos, ret Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRParen {
		ppos := p.tok.Pos
		ptype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &VarDecl{Pos: ppos, Name: pname.Text, Type: ptype})
		if p.tok.Kind == TokComma {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: open.Pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return nil, errf(open.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokKwInt, TokKwFloat, TokKwVoid:
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d, err := p.parseVarRest(pos, typ, name.Text)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case TokKwIf:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: pos, Cond: cond, Then: then}
		if p.tok.Kind == TokKwElse {
			if err := p.next(); err != nil {
				return nil, err
			}
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case TokKwWhile:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
	case TokKwDo:
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DoStmt{Pos: pos, Body: body, Cond: cond}, nil
	case TokKwFor:
		return p.parseFor(pos)
	case TokKwReturn:
		if err := p.next(); err != nil {
			return nil, err
		}
		st := &ReturnStmt{Pos: pos}
		if p.tok.Kind != TokSemi {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return st, nil
	case TokKwBreak:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil
	case TokKwContinue:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil
	case TokLBrace:
		return p.parseBlock()
	case TokSemi:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &EmptyStmt{Pos: pos}, nil
	}
	st, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return st, nil
}

// parseFor handles "for" "(" [simple] ";" [expr] ";" [simple] ")" stmt.
func (p *Parser) parseFor(pos Pos) (Stmt, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	if p.tok.Kind != TokSemi {
		init, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRParen {
		post, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseSimple parses either an assignment or a bare expression (without the
// trailing semicolon).
func (p *Parser) parseSimple() (Stmt, error) {
	pos := p.tok.Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokAssign {
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: lhs, Value: rhs}, nil
	}
	return &ExprStmt{Pos: pos, X: lhs}, nil
}

// --- Expression parsing (precedence climbing) -------------------------------

type precLevel struct {
	toks map[TokKind]BinOpKind
}

var precLevels = []precLevel{
	{map[TokKind]BinOpKind{TokOrOr: OpOr}},
	{map[TokKind]BinOpKind{TokAndAnd: OpAnd}},
	{map[TokKind]BinOpKind{TokEq: OpEq, TokNe: OpNe}},
	{map[TokKind]BinOpKind{TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe}},
	{map[TokKind]BinOpKind{TokPlus: OpAdd, TokMinus: OpSub}},
	{map[TokKind]BinOpKind{TokStar: OpMul, TokSlash: OpDiv, TokPercent: OpRem}},
}

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseBin(0)
}

func (p *Parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op, ok := precLevels[level].toks[p.tok.Kind]
		if !ok {
			return lhs, nil
		}
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: OpNeg, X: x}, nil
	case TokBang:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: OpNot, X: x}, nil
	case TokStar:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: OpDeref, X: x}, nil
	case TokAmp:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: pos, Op: OpAddr, X: x}, nil
	case TokLParen:
		// Cast if '(' is followed by a type keyword.
		nt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if nt.Kind == TokKwInt || nt.Kind == TokKwFloat || nt.Kind == TokKwVoid {
			if err := p.next(); err != nil { // consume '('
				return nil, err
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: pos, To: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.Kind {
		case TokLBracket:
			pos := p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: pos, X: x, Idx: idx}
		case TokLParen:
			id, ok := x.(*Ident)
			if !ok {
				return nil, errf(p.tok.Pos, "only named functions can be called")
			}
			pos := p.tok.Pos
			if err := p.next(); err != nil {
				return nil, err
			}
			call := &CallExpr{Pos: pos, Name: id.Name}
			for p.tok.Kind != TokRParen {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.tok.Kind == TokComma {
					if err := p.next(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokIntLit:
		v := p.tok.Int
		if err := p.next(); err != nil {
			return nil, err
		}
		return &IntLit{Pos: pos, Value: v}, nil
	case TokFloatLit:
		v := p.tok.Float
		if err := p.next(); err != nil {
			return nil, err
		}
		return &FloatLit{Pos: pos, Value: v}, nil
	case TokKwNull:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &NullLit{Pos: pos}, nil
	case TokIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Ident{Pos: pos, Name: name}, nil
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(pos, "expected expression, found %s", p.describe())
}
