package heuristics

import "repro/internal/features"

// This file evaluates the Ball/Larus heuristics directly on a Table 2
// feature vector, without access to the program's CFG. It exists for the
// serving stack's degraded mode: when the neural model path is unavailable
// (inference failure, deadline, overload), espserve can still answer from
// the same feature vectors it was going to feed the model, using the
// heuristic tier the paper shows ESP only modestly beats (Tables 4-5).
//
// The Table 2 vector encodes most of what the heuristics inspect, but not
// everything, so the vector forms fall into three classes:
//
//   - Exactly recoverable — Loop Branch (back-edge flags), Guard
//     (use-before-def + post-dominance flags), Loop Header (reaches-header +
//     post-dominance flags), and Call (reaches-call + post-dominance flags)
//     test precisely the predicates the vector stores; their vector forms
//     agree with the CFG forms on every branch.
//   - Approximate — Loop Exit (the vector has exact exit-edge flags but not
//     the "successor is a loop header" exclusion), Return (the vector sees
//     only the successor's own terminator, not unconditional chains to a
//     return), and Opcode (the vector sees the branch mnemonic, not the
//     resolved comparison, so materialized compares read as plain
//     register tests).
//   - Unrecoverable — Pointer and Store inspect operand kinds and successor
//     instruction bodies that Table 2 does not encode; their vector forms
//     never apply.
//
// Everything here is a pure function of the vector, so degraded-mode
// answers are deterministic and a test can recompute them offline.

// VectorApply evaluates heuristic h on a Table 2 feature vector, returning
// Taken/NotTaken when the heuristic's vector form applies and None
// otherwise.
func VectorApply(h Heuristic, v *features.Vector, cfg Config) Prediction {
	val := func(i int) string { return v.Values[i] }
	// Per-side helper: does the taken/not-taken successor carry flag f?
	switch h {
	case LoopBranch:
		if val(features.FTakenSuccBackedge) == "LB" {
			return Taken
		}
		if val(features.FNotTakenSuccBackedge) == "LB" {
			return NotTaken
		}
	case Opcode:
		// The comparison-against-zero/constant forms visible in the branch
		// mnemonic itself. Float branches are excluded, as in the CFG form.
		switch val(features.FBrOpcode) {
		case "blt", "ble", "beq":
			return NotTaken
		case "bgt", "bge", "bne":
			return Taken
		}
	case Guard:
		takenGuards := val(features.FTakenSuccUseDef) == "UBD" &&
			val(features.FTakenPostdominates) == "NPD"
		fallGuards := val(features.FNotTakenSuccUseDef) == "UBD" &&
			val(features.FNotTakenPostdominates) == "NPD"
		if takenGuards && !fallGuards {
			return Taken
		}
		if fallGuards && !takenGuards {
			return NotTaken
		}
	case LoopExit:
		takenExits := val(features.FTakenSuccExit) == "LE"
		fallExits := val(features.FNotTakenSuccExit) == "LE"
		if takenExits && !fallExits {
			return NotTaken
		}
		if fallExits && !takenExits {
			return Taken
		}
	case LoopHeader:
		if val(features.FTakenSuccLoop) == "LH" &&
			val(features.FTakenPostdominates) == "NPD" {
			return Taken
		}
		if val(features.FNotTakenSuccLoop) == "LH" &&
			val(features.FNotTakenPostdominates) == "NPD" {
			return NotTaken
		}
	case Call:
		predictAvoid := func(succTaken bool) Prediction {
			if cfg.CallPredictsTaken == succTaken {
				return Taken
			}
			return NotTaken
		}
		if val(features.FTakenSuccCall) == "PC" &&
			val(features.FTakenPostdominates) == "NPD" {
			return predictAvoid(true)
		}
		if val(features.FNotTakenSuccCall) == "PC" &&
			val(features.FNotTakenPostdominates) == "NPD" {
			return predictAvoid(false)
		}
	case Return:
		takenReturns := val(features.FTakenSuccEnds) == "RETURN"
		fallReturns := val(features.FNotTakenSuccEnds) == "RETURN"
		if takenReturns && !fallReturns {
			return NotTaken
		}
		if fallReturns && !takenReturns {
			return Taken
		}
	}
	// Pointer and Store: not recoverable from the vector.
	return None
}

// TakenProbabilityFromVector combines the vector forms of the heuristics
// with the Dempster-Shafer rule, mirroring TakenProbability but without CFG
// access. The second result reports whether any heuristic applied.
func (d *DSHC) TakenProbabilityFromVector(v *features.Vector) (float64, bool) {
	pTaken, pNot := 1.0, 1.0
	applied := false
	for h := Heuristic(0); h < NumHeuristics; h++ {
		pred := VectorApply(h, v, d.Cfg)
		if pred == None {
			continue
		}
		applied = true
		p := d.Prob[h]
		if pred == Taken {
			pTaken *= p
			pNot *= 1 - p
		} else {
			pTaken *= 1 - p
			pNot *= p
		}
	}
	if !applied {
		return 0.5, false
	}
	den := pTaken + pNot
	if den == 0 {
		return 0.5, true
	}
	return pTaken / den, true
}

// PredictVector runs APHC's fixed-order first-match combination over the
// vector forms of the heuristics, reporting which heuristic fired.
func (a *APHC) PredictVector(v *features.Vector) (Prediction, Heuristic, bool) {
	order := a.Order
	if order == nil {
		order = DefaultOrder
	}
	for _, h := range order {
		if p := VectorApply(h, v, a.Cfg); p != None {
			return p, h, true
		}
	}
	return None, 0, false
}
