package corpus

import "repro/internal/ir"

// The Perfect Club suite (Berry et al. 1989): APS, CSS, LWS, NAS, OCS, SDS,
// TFS, TIS, WSS — supercomputer application benchmarks, all Fortran.

func init() {
	register(Entry{
		Name: "APS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 401,
		About: "air pollution spectral model: transform loops plus emission thresholds near 50/50",
		Input: []int64{30, 48},
		Source: `
// APS: advect pollutant concentrations with source/sink thresholds.
float conc[2500];
float wind[2500];

int main() {
	int steps;
	int dim;
	int s;
	float total;
	int sources;
	steps = __input(0);
	dim = __input(1);
	total = 0.0;
	sources = 0;
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		conc[i] = (float) (__rand() % 100) / 100.0;
		wind[i] = (float) (__rand() % 200 - 100) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				float flux;
				c = i * dim + j;
				// Upwind differencing: direction depends on wind sign.
				if (wind[c] > 0.0) {
					flux = wind[c] * (conc[c] - conc[c - 1]);
				} else {
					flux = wind[c] * (conc[c + 1] - conc[c]);
				}
				conc[c] = conc[c] - 0.1 * flux;
				// Emission events roughly half the time.
				if (conc[c] < 0.5) {
					conc[c] = conc[c] + 0.01;
					sources = sources + 1;
				}
			}
		}
	}
	// Exceedance report: histogram of concentration levels.
	int low;
	int mid;
	int high;
	low = 0;
	mid = 0;
	high = 0;
	for (i = 0; i < dim * dim; i = i + 1) {
		total = total + conc[i];
		if (conc[i] < 0.3) {
			low = low + 1;
		} else if (conc[i] < 0.7) {
			mid = mid + 1;
		} else {
			high = high + 1;
		}
	}
	__printf(total);
	__print(sources);
	__print(low);
	__print(mid);
	__print(high);
	return 0;
}
`})

	register(Entry{
		Name: "CSS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 402,
		About: "circuit system simulation: device model evaluation with region tests",
		Input: []int64{900, 30},
		Source: `
// CSS: evaluate transistor-ish device models over random operating points.
float volt[64];

int main() {
	int evals;
	int devices;
	int e;
	int cutoff;
	int linear;
	int saturated;
	float current;
	evals = __input(0);
	devices = __input(1);
	cutoff = 0;
	linear = 0;
	saturated = 0;
	current = 0.0;
	int d;
	for (d = 0; d < devices; d = d + 1) {
		volt[d] = (float) (__rand() % 300) / 100.0;
	}
	for (e = 0; e < evals; e = e + 1) {
		for (d = 0; d < devices; d = d + 1) {
			float vgs;
			float vds;
			float vth;
			vgs = volt[d];
			vds = (float) (__rand() % 300) / 100.0;
			vth = 0.7;
			if (vgs < vth) {
				cutoff = cutoff + 1;
			} else if (vds < vgs - vth) {
				linear = linear + 1;
				current = current + (vgs - vth) * vds - vds * vds * 0.5;
			} else {
				saturated = saturated + 1;
				current = current + 0.5 * (vgs - vth) * (vgs - vth);
			}
			volt[d] = volt[d] * 0.99 + vds * 0.01;
			// Subthreshold leakage and breakdown corner cases.
			if (vgs < 0.2) {
				current = current + 0.001;
			}
			if (vds > 2.8) {
				current = current + 0.01;
				volt[d] = volt[d] * 0.9;
			}
		}
		// Newton-ish convergence damping every few evaluations.
		if (e % 16 == 15) {
			float norm;
			norm = 0.0;
			for (d = 0; d < devices; d = d + 1) {
				norm = lib_maxf(norm, volt[d]);
			}
			if (norm > 3.5) {
				for (d = 0; d < devices; d = d + 1) {
					volt[d] = volt[d] * 0.8;
				}
			}
		}
	}
	__print(cutoff);
	__print(linear);
	__print(saturated);
	__printf(current);
	return 0;
}
`})

	register(Entry{
		Name: "LWS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 403,
		About: "liquid water simulation: neighbor-list molecular dynamics, ~66% taken",
		Input: []int64{14, 40},
		Source: `
// LWS: water-molecule dynamics with a distance-windowed interaction.
float mx[48];
float my[48];
float mz[48];

int main() {
	int steps;
	int mols;
	int s;
	float potential;
	int pairs;
	steps = __input(0);
	mols = __input(1);
	potential = 0.0;
	pairs = 0;
	int i;
	for (i = 0; i < mols; i = i + 1) {
		mx[i] = (float) (__rand() % 600) / 100.0;
		my[i] = (float) (__rand() % 600) / 100.0;
		mz[i] = (float) (__rand() % 600) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		int j;
		for (i = 0; i < mols; i = i + 1) {
			for (j = i + 1; j < mols; j = j + 1) {
				float dx;
				float dy;
				float dz;
				float r2;
				dx = mx[i] - mx[j];
				dy = my[i] - my[j];
				dz = mz[i] - mz[j];
				r2 = dx * dx + dy * dy + dz * dz;
				if (r2 < 16.0) {
					potential = potential + 1.0 / (r2 + 0.2) - 0.05;
					pairs = pairs + 1;
					if (r2 < 1.0) {
						// Hard-core repulsion: rare.
						potential = potential + 2.0;
					}
				}
			}
			mx[i] = mx[i] + (float) (__rand() % 3 - 1) / 100.0;
			my[i] = my[i] + (float) (__rand() % 3 - 1) / 100.0;
			mz[i] = mz[i] + (float) (__rand() % 3 - 1) / 100.0;
			// Keep molecules inside the box.
			mx[i] = lib_clampf(mx[i], 0.0, 6.0);
			my[i] = lib_clampf(my[i], 0.0, 6.0);
		}
		// Hydrogen-bond census each step.
		int bonds;
		bonds = 0;
		for (i = 1; i < mols; i = i + 1) {
			float dz2;
			dz2 = (mz[i] - mz[i - 1]) * (mz[i] - mz[i - 1]);
			if (dz2 < 0.25) { bonds = bonds + 1; }
		}
		if (bonds > mols / 4) { potential = potential - 0.1; }
	}
	__printf(potential);
	__print(pairs);
	return 0;
}
`})

	register(Entry{
		Name: "NAS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 404,
		About: "NASA Ames kernels: vectorizable loops with rare boundary branches",
		Input: []int64{26, 500},
		Source: `
// NAS: long vector kernels (daxpy, dot, scan) with boundary handling.
float va[512];
float vb[512];
float vc[512];

int main() {
	int reps;
	int n;
	int r;
	float result;
	reps = __input(0);
	n = __input(1);
	result = 0.0;
	int i;
	for (i = 0; i < n; i = i + 1) {
		va[i] = (float) (i % 9) / 9.0;
		vb[i] = (float) (i % 11) / 11.0;
	}
	for (r = 0; r < reps; r = r + 1) {
		float dot;
		// daxpy
		for (i = 0; i < n; i = i + 1) {
			vc[i] = va[i] * 1.5 + vb[i];
		}
		// dot product through the shared BLAS-style kernel
		dot = lib_vecdot(&va[0], &vc[0], n);
		// running max scan: data branch, mostly not updating
		float mx;
		mx = 0.0 - 1000.0;
		for (i = 0; i < n; i = i + 1) {
			if (vc[i] > mx) { mx = vc[i]; }
		}
		result = result + dot + mx;
		// occasional renormalization
		if (result > 100000.0) { result = result / 2.0; }
		// tridiagonal solve sweep
		for (i = 1; i < n; i = i + 1) {
			vb[i] = vb[i] - 0.25 * vb[i - 1];
			vb[i] = lib_maxf(vb[i], 0.0 - vb[i] * 0.5);
		}
		// sparse gather: indices with a validity check
		float gathered;
		gathered = 0.0;
		for (i = 0; i < n; i = i + 4) {
			int idx;
			idx = (i * 7) % n;
			if (idx >= 0 && idx < n) {
				gathered = gathered + va[idx];
			}
		}
		result = result + gathered * 0.001;
	}
	__printf(result);
	return 0;
}
`})

	register(Entry{
		Name: "OCS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 405,
		About: "ocean circulation: stream-function relaxation, heavily loop-dominated (88.6% taken)",
		Input: []int64{40, 30},
		Source: `
// OCS: relax an ocean basin stream function with fixed coasts.
float psi[1024];

int main() {
	int iters;
	int dim;
	int it;
	float sum;
	iters = __input(0);
	dim = __input(1);
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		psi[i] = 0.0;
	}
	int coastCells;
	coastCells = 0;
	for (it = 0; it < iters; it = it + 1) {
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				float wind;
				c = i * dim + j;
				// Irregular coastline: a band of cells stays clamped.
				if (j < 3 && i % 5 == 0) {
					psi[c] = 0.0;
					if (it == 0) { coastCells = coastCells + 1; }
				} else {
					wind = (float) (i - dim / 2) / (float) dim;
					psi[c] = 0.25 * (psi[c - 1] + psi[c + 1] + psi[c - dim] + psi[c + dim])
					       + wind * 0.01;
				}
			}
		}
		// Western boundary current diagnostic.
		float wb;
		wb = 0.0;
		for (i = 1; i < dim - 1; i = i + 1) {
			wb = lib_maxf(wb, lib_absf(psi[i * dim + 1]));
		}
		if (wb > 10.0) { break; }
	}
	sum = 0.0;
	for (i = 0; i < dim * dim; i = i + 1) { sum = sum + psi[i]; }
	__printf(sum);
	__print(coastCells);
	return 0;
}
`})

	register(Entry{
		Name: "SDS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 406,
		About: "structural dynamics: element assembly with material-state branching near 50/50",
		Input: []int64{60, 80},
		Source: `
// SDS: assemble and damp a spring-mass chain with yield checks.
float disp[128];
float vel[128];
float force[128];

int main() {
	int steps;
	int nodes;
	int s;
	int yields;
	float energy;
	steps = __input(0);
	nodes = __input(1);
	yields = 0;
	energy = 0.0;
	int i;
	for (i = 0; i < nodes; i = i + 1) {
		disp[i] = (float) (__rand() % 100 - 50) / 100.0;
		vel[i] = 0.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (i = 1; i < nodes - 1; i = i + 1) {
			float strain;
			strain = disp[i + 1] - 2.0 * disp[i] + disp[i - 1];
			// Material yield: about half the elements exceed the limit.
			if (lib_absf(strain) > 0.02) {
				force[i] = strain * 0.5;
				yields = yields + 1;
			} else {
				force[i] = strain;
			}
		}
		for (i = 1; i < nodes - 1; i = i + 1) {
			vel[i] = vel[i] * 0.99 + force[i] * 0.1;
			disp[i] = disp[i] + vel[i] * 0.1;
			energy = energy + vel[i] * vel[i];
			// Displacement limiter (contact with a stop).
			if (disp[i] > 1.0) {
				disp[i] = 1.0;
				vel[i] = 0.0 - vel[i] * 0.5;
			} else if (disp[i] < 0.0 - 1.0) {
				disp[i] = 0.0 - 1.0;
				vel[i] = 0.0 - vel[i] * 0.5;
			}
		}
		// Modal damping applied when total energy is excessive.
		if (energy > 1000.0) {
			for (i = 0; i < nodes; i = i + 1) {
				vel[i] = vel[i] * 0.9;
			}
			energy = energy * 0.81;
		}
	}
	__printf(energy);
	__print(yields);
	return 0;
}
`})

	register(Entry{
		Name: "TFS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 407,
		About: "turbulent flow simulation: spectral-ish sweeps, ~77% taken",
		Input: []int64{22, 26},
		Source: `
// TFS: evolve a vorticity grid with turbulence injection.
float vort[784];
float tmp[784];

int main() {
	int steps;
	int dim;
	int s;
	float enstrophy;
	int injections;
	steps = __input(0);
	dim = __input(1);
	enstrophy = 0.0;
	injections = 0;
	int i;
	int j;
	for (i = 0; i < dim * dim; i = i + 1) {
		vort[i] = (float) (__rand() % 200 - 100) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				c = i * dim + j;
				tmp[c] = vort[c] + 0.05 * (vort[c - 1] + vort[c + 1]
				       + vort[c - dim] + vort[c + dim] - 4.0 * vort[c]);
			}
		}
		for (i = 1; i < dim - 1; i = i + 1) {
			for (j = 1; j < dim - 1; j = j + 1) {
				int c;
				c = i * dim + j;
				vort[c] = tmp[c] * 0.999;
				// Sparse forcing.
				if (__rand() % 100 < 4) {
					vort[c] = vort[c] + 0.05;
					injections = injections + 1;
				}
			}
		}
	}
	for (i = 0; i < dim * dim; i = i + 1) {
		enstrophy = enstrophy + vort[i] * vort[i];
	}
	__printf(enstrophy);
	__print(injections);
	return 0;
}
`})

	register(Entry{
		Name: "TIS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 408,
		About: "seismic migration: trace stacking with mute and clip decisions near 50/50",
		Input: []int64{110, 120},
		Source: `
// TIS: stack seismic traces with mute windows and clipping.
float trace[128];
float stack[128];

int main() {
	int ntraces;
	int nsamples;
	int t;
	int muted;
	int clipped;
	float power;
	ntraces = __input(0);
	nsamples = __input(1);
	muted = 0;
	clipped = 0;
	power = 0.0;
	int i;
	for (i = 0; i < nsamples; i = i + 1) { stack[i] = 0.0; }
	for (t = 0; t < ntraces; t = t + 1) {
		int muteStart;
		muteStart = __rand() % nsamples;
		for (i = 0; i < nsamples; i = i + 1) {
			trace[i] = (float) (__rand() % 2000 - 1000) / 1000.0;
			// Mute early samples about half the time.
			if (i < muteStart) {
				trace[i] = 0.0;
				muted = muted + 1;
			} else {
				if (trace[i] > 0.9) {
					trace[i] = 0.9;
					clipped = clipped + 1;
				} else if (trace[i] < 0.0 - 0.9) {
					trace[i] = 0.0 - 0.9;
					clipped = clipped + 1;
				}
			}
			stack[i] = stack[i] + trace[i];
		}
	}
	// Automatic gain windows and first-break picking over the stack.
	int picks;
	picks = 0;
	for (i = 2; i < nsamples; i = i + 1) {
		float w;
		w = lib_absf(stack[i]);
		power = power + stack[i] * stack[i];
		if (w > 3.0 && picks < 10) {
			picks = picks + 1;
		}
	}
	// Normal-moveout style index remap with bounds checks.
	float nmo;
	nmo = 0.0;
	for (i = 0; i < nsamples; i = i + 1) {
		int src;
		src = i + i / 8;
		if (src < nsamples) {
			nmo = nmo + stack[src];
		} else {
			nmo = nmo + stack[nsamples - 1] * 0.5;
		}
	}
	__printf(power);
	__printf(nmo);
	__print(muted);
	__print(clipped);
	__print(picks);
	return 0;
}
`})

	register(Entry{
		Name: "WSS", Suite: SuitePerfectClub, Language: ir.LangFortran, Seed: 409,
		About: "weather simulation: column physics with phase-change branching",
		Input: []int64{36, 60},
		Source: `
// WSS: integrate atmospheric columns with condensation decisions.
float temp[80];
float moisture[80];

int main() {
	int steps;
	int levels;
	int s;
	int condensations;
	float rain;
	steps = __input(0);
	levels = __input(1);
	condensations = 0;
	rain = 0.0;
	int k;
	for (k = 0; k < levels; k = k + 1) {
		temp[k] = 300.0 - (float) k * 2.0;
		moisture[k] = (float) (__rand() % 100) / 100.0;
	}
	for (s = 0; s < steps; s = s + 1) {
		for (k = 1; k < levels; k = k + 1) {
			float capacity;
			// Convective mixing.
			temp[k] = temp[k] * 0.98 + temp[k - 1] * 0.02;
			moisture[k] = moisture[k] * 0.97 + moisture[k - 1] * 0.03;
			capacity = (temp[k] - 240.0) / 100.0;
			capacity = lib_maxf(capacity, 0.05);
			// Condense when super-saturated: happens regularly.
			if (moisture[k] > capacity) {
				rain = rain + moisture[k] - capacity;
				moisture[k] = capacity;
				condensations = condensations + 1;
				temp[k] = temp[k] + 0.5;
			}
			// Radiative cooling at the top levels.
			if (k > levels - 10) {
				temp[k] = temp[k] - 0.1;
			}
			// Freezing level bookkeeping.
			if (temp[k] < 273.0 && moisture[k] > 0.2) {
				moisture[k] = moisture[k] * 0.98;
			}
		}
		moisture[0] = (float) (__rand() % 100) / 100.0;
		// Surface heating cycle and storm detection.
		if (s % 8 < 4) {
			temp[0] = temp[0] + 0.3;
		} else {
			temp[0] = temp[0] - 0.2;
		}
		int unstable;
		unstable = 0;
		for (k = 1; k < levels; k = k + 1) {
			if (temp[k] > temp[k - 1]) { unstable = unstable + 1; }
		}
		if (unstable > levels / 3) {
			// Convective adjustment.
			for (k = 1; k < levels; k = k + 1) {
				temp[k] = temp[k] * 0.5 + temp[k - 1] * 0.5 - 1.0;
			}
		}
	}
	__printf(rain);
	__print(condensations);
	return 0;
}
`})
}
