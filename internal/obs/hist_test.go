package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 10, 10}, {1<<10 + 1, 11},
		{1 << 26, 26}, {1<<26 + 1, 27}, {math.MaxInt64, 27},
	}
	for _, tc := range cases {
		if tc.v < 0 {
			// Observe clamps negatives; bucketOf itself sees >= 0.
			continue
		}
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every value must land in a bucket whose bound contains it.
	for v := int64(1); v < 1<<20; v = v*3 + 1 {
		b := bucketOf(v)
		if float64(v) > BucketBound(b) {
			t.Fatalf("value %d above its bucket bound %g", v, BucketBound(b))
		}
		if b > 0 && float64(v) <= BucketBound(b-1) {
			t.Fatalf("value %d fits the previous bucket %g", v, BucketBound(b-1))
		}
	}
}

func TestHistogramCountsAndSum(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 5000, -7} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+2+3+100+5000 { // -7 clamps to 0
		t.Errorf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, count says %d", total, s.Count)
	}
}

func TestQuantileExtraction(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g", q)
	}
	// 100 observations of exactly 8µs: every quantile must stay inside the
	// (4, 8] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if got <= 4 || got > 8 {
			t.Errorf("p%g = %g, want in (4, 8]", q*100, got)
		}
	}
	// Add a heavy tail: 10 observations near 1s. p50 stays low, p99 jumps.
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if p50 := h.Quantile(0.5); p50 > 8 {
		t.Errorf("p50 = %g after tail, want <= 8", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 512*1024 {
		t.Errorf("p99 = %g, want in the ~1s bucket", p99)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone: p%g=%g < %g", q*100, v, prev)
		}
		prev = v
	}
}

func TestQuantileInfBucket(t *testing.T) {
	var h Histogram
	h.Observe(int64(1) << 30) // beyond the last finite bound
	if got, want := h.Quantile(0.99), BucketBound(NumBuckets-2); got != want {
		t.Errorf("p99 of an overflow-only histogram = %g, want %g", got, want)
	}
}

// TestQuantileClampsQ pins the documented clamping of q to [0, 1]: q <= 0
// reports the lower bound of the lowest occupied bucket, q >= 1 the upper
// bound of the highest, and out-of-range inputs behave like the nearest
// endpoint rather than panicking or extrapolating.
func TestQuantileClampsQ(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(8) // the (4, 8] bucket
	}
	for _, q := range []float64{-1, 0} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("Quantile(%g) = %g, want the bucket's lower bound 4", q, got)
		}
	}
	for _, q := range []float64{1, 2} {
		if got := h.Quantile(q); got != 8 {
			t.Errorf("Quantile(%g) = %g, want the bucket's upper bound 8", q, got)
		}
	}
	// Empty histogram: every q, in range or not, reports 0.
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

// TestQuantileAllInOverflow puts every observation in the +Inf bucket: the
// whole quantile range must collapse to that bucket's finite lower bound —
// never +Inf, never an interpolated value past the last finite bound.
func TestQuantileAllInOverflow(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(int64(1)<<27 + int64(i))
	}
	want := BucketBound(NumBuckets - 2)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != want {
			t.Errorf("Quantile(%g) = %g, want the +Inf bucket's lower bound %g", q, got, want)
		}
		if math.IsInf(got, 1) {
			t.Errorf("Quantile(%g) leaked +Inf", q)
		}
	}
}

// TestQuantileSingleObservation: one observation in one bucket must keep
// every quantile inside that bucket's bounds.
func TestQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(100) // the (64, 128] bucket
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < 64 || got > 128 {
			t.Errorf("Quantile(%g) = %g, want within (64, 128]", q, got)
		}
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestHistogramConcurrentWriters(t *testing.T) {
	var h Histogram
	const writers, perWriter = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*31+i) % 4096)
			}
		}(w)
	}
	// Concurrent readers must see valid snapshots while writes race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			s := h.Snapshot()
			var total int64
			for _, c := range s.Counts {
				total += c
			}
			if total < 0 || s.Count < 0 {
				t.Error("negative snapshot")
				return
			}
			_ = s.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("count = %d, want %d", got, writers*perWriter)
	}
	s := h.Snapshot()
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Errorf("buckets sum to %d, count %d", total, s.Count)
	}
}

func TestWriteHistogramExposition(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(100)
	var b strings.Builder
	WriteHistogram(&b, "x_micros", `endpoint="p"`, h.Snapshot())
	out := b.String()
	for _, want := range []string{
		`x_micros_bucket{endpoint="p",le="4"} 1`,
		`x_micros_bucket{endpoint="p",le="128"} 2`,
		`x_micros_bucket{endpoint="p",le="+Inf"} 2`,
		`x_micros_sum{endpoint="p"} 103`,
		`x_micros_count{endpoint="p"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unlabeled form.
	b.Reset()
	WriteHistogram(&b, "y", "", h.Snapshot())
	if !strings.Contains(b.String(), `y_bucket{le="+Inf"} 2`) || !strings.Contains(b.String(), "y_count 2") {
		t.Errorf("unlabeled exposition wrong:\n%s", b.String())
	}
}
