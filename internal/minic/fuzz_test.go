package minic_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/minic"
)

// FuzzParse throws arbitrary program text at the MinC lexer and parser. The
// seed corpus is the real thing: all 46 corpus programs plus the runtime
// library. Any input must either parse or fail with an error — never panic.
//
// CI runs this for a short budget (go test -fuzz=FuzzParse -fuzztime=20s).
func FuzzParse(f *testing.F) {
	for _, e := range corpus.All() {
		f.Add(e.Source)
	}
	f.Add(corpus.StdlibSource)
	f.Add(corpus.Stdlib2Source)
	// A few adversarial shapes: unterminated constructs, deep nesting,
	// stray bytes, huge literals.
	f.Add("int main() { return 0; }")
	f.Add(`int main() { /* unterminated`)
	f.Add(`int main() { float f; f = 1e999999; return (int)f; }`)
	f.Add("int x = 99999999999999999999999999999;")
	f.Add("void f(" + string(rune(0)) + ") {}")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse("fuzz", src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program and nil error")
		}
	})
}
