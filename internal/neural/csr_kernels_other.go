//go:build !amd64 || purego

package neural

func csrGather(h, w []float64, idx []int32, val []float64, n, stride int) {
	csrGatherGeneric(h, w, idx, val, n, stride)
}

func csrScatter(gw, dh []float64, idx []int32, val []float64, n, stride int) {
	csrScatterGeneric(gw, dh, idx, val, n, stride)
}
