package codegen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/ir"
	"repro/internal/minic"
)

// TestCompileBoundedCFGCap: a function with a huge control-flow graph is
// rejected with the typed budget error, while normal programs compile
// unchanged under the same limit.
func TestCompileBoundedCFGCap(t *testing.T) {
	// Each if/else contributes several blocks; 3000 of them blows any
	// reasonable per-function cap.
	var b strings.Builder
	b.WriteString("int main() { int x; x = 0; ")
	for i := 0; i < 3000; i++ {
		b.WriteString("if (x) { x = x + 1; } else { x = x - 1; } ")
	}
	b.WriteString("return x; }")
	ast, err := minic.Parse("huge", b.String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileBounded(ast, ir.LangC, Default, guard.Limits{CFGBlocks: 1024})
	if err == nil {
		t.Fatal("huge CFG compiled under a 1024-block cap")
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("error is not typed as budget exceeded: %v", err)
	}

	small, err := minic.Parse("small", "int main() { int i; for (i = 0; i < 4; i = i + 1) { __print(i); } return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileBounded(small, ir.LangC, Default, guard.Limits{CFGBlocks: 1024})
	if err != nil {
		t.Fatalf("normal program rejected: %v", err)
	}
	// The unlimited path must produce the identical program.
	ref, err := Compile(small, ir.LangC, Default)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Disassemble() != ref.Disassemble() {
		t.Fatal("bounded compile diverged from unlimited compile")
	}
}
