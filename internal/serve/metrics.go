package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// endpointStats is the per-endpoint counter block, updated atomically on
// every request. The summed-latency counter from the first serving PR is
// kept for name stability; the histogram behind it is what distinguishes a
// p99 regression from noise.
type endpointStats struct {
	requests     atomic.Int64
	errors       atomic.Int64 // 4xx/5xx responses
	latencyMicro atomic.Int64 // summed wall time
	latency      obs.Histogram
}

func (s *endpointStats) observe(micros int64, failed bool) {
	s.requests.Add(1)
	s.latencyMicro.Add(micros)
	s.latency.Observe(micros)
	if failed {
		s.errors.Add(1)
	}
}

// gauge is a read-on-scrape metric registered by a subsystem (the worker
// pool reports queue depth/age and utilization this way).
type gauge struct {
	name, help string
	fn         func() float64
}

// metrics aggregates the service counters exposed at /metrics.
type metrics struct {
	endpoints map[string]*endpointStats
	fallback  *endpointStats // accounts requests to unregistered endpoint names

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	batches       atomic.Int64 // worker passes executed
	batchedJobs   atomic.Int64 // jobs folded into those passes
	predictedVecs atomic.Int64 // feature vectors predicted
	inflight      atomic.Int64
	rejectedDrain atomic.Int64 // requests refused because the server drains
	timeouts      atomic.Int64 // requests that hit the server-side deadline
	canceled      atomic.Int64 // requests whose client went away mid-flight

	shed            atomic.Int64 // requests refused with 429 by admission control
	degraded        atomic.Int64 // requests answered by the heuristic fallback
	panicsRecovered atomic.Int64 // panics absorbed by middleware or workers
	budgetRejects   atomic.Int64 // submissions rejected by compile resource budgets

	// Cluster-layer counters: the peer artifact cache and the failover
	// router feed these through ClusterStats; reloads counts model-registry
	// hot swaps. They render unconditionally (zero on a single replica) so
	// the exposition is the same shape in and out of cluster mode.
	peerHits   atomic.Int64 // artifact records served by a cluster peer
	peerMisses atomic.Int64 // peer lookups that found nothing (recompute follows)
	failover   atomic.Int64 // requests rerouted to another replica on the ring
	reloads    atomic.Int64 // model versions hot-swapped into the registry

	queueWait obs.Histogram // enqueue-to-worker-pickup per job
	gauges    []gauge       // registered before serving starts; read-only after
}

func newMetrics() *metrics {
	m := &metrics{endpoints: map[string]*endpointStats{
		"predict": {},
		"healthz": {},
		"metrics": {},
		"debug":   {},
		"other":   {},
	}}
	m.fallback = m.endpoints["other"]
	return m
}

// endpoint returns the named endpoint's stats, falling back to the
// registered "other" block for unknown names so an unregistered endpoint
// cannot panic the instrumentation path.
func (m *metrics) endpoint(name string) *endpointStats {
	if s, ok := m.endpoints[name]; ok {
		return s
	}
	return m.fallback
}

// addGauge registers a scrape-time gauge. Call before serving starts: the
// slice is read without a lock on every /metrics render.
func (m *metrics) addGauge(name, help string, fn func() float64) {
	m.gauges = append(m.gauges, gauge{name: name, help: help, fn: fn})
}

// ClusterStats is the handle the cluster layer (the peer artifact cache and
// an embedded router) uses to feed its counters into this server's /metrics
// exposition. The zero value is valid and counts nothing, so cluster
// components can take one unconditionally.
type ClusterStats struct{ m *metrics }

// ClusterStats returns the server's cluster-counter handle.
func (s *Server) ClusterStats() ClusterStats { return ClusterStats{m: s.metrics} }

// PeerHit counts one artifact record served by a cluster peer.
func (c ClusterStats) PeerHit() {
	if c.m != nil {
		c.m.peerHits.Add(1)
	}
}

// PeerMiss counts one peer lookup that missed cluster-wide.
func (c ClusterStats) PeerMiss() {
	if c.m != nil {
		c.m.peerMisses.Add(1)
	}
}

// Failover counts one request rerouted to another replica.
func (c ClusterStats) Failover() {
	if c.m != nil {
		c.m.failover.Add(1)
	}
}

// counterDesc pairs one global counter with its exposition metadata.
type counterDesc struct {
	name, help string
	v          *atomic.Int64
}

func (m *metrics) counters() []counterDesc {
	return []counterDesc{
		{"espserve_cache_hits_total", "Compiled-program cache hits.", &m.cacheHits},
		{"espserve_cache_misses_total", "Compiled-program cache misses.", &m.cacheMisses},
		{"espserve_batches_total", "Worker model passes executed.", &m.batches},
		{"espserve_batched_jobs_total", "Jobs folded into worker passes.", &m.batchedJobs},
		{"espserve_predicted_vectors_total", "Feature vectors predicted.", &m.predictedVecs},
		{"espserve_drain_rejects_total", "Requests refused because the server drains.", &m.rejectedDrain},
		{"espserve_request_timeouts_total", "Requests that hit the server-side deadline.", &m.timeouts},
		{"espserve_request_canceled_total", "Requests abandoned by their client mid-flight.", &m.canceled},
		{"espserve_shed_total", "Requests refused with 429 by admission control.", &m.shed},
		{"espserve_degraded_total", "Requests answered by the heuristic fallback.", &m.degraded},
		{"espserve_panics_recovered_total", "Panics absorbed by middleware or workers.", &m.panicsRecovered},
		{"espserve_budget_rejects_total", "Submissions rejected by compile resource budgets.", &m.budgetRejects},
		{"espserve_peer_hits_total", "Artifact-cache records served by a cluster peer.", &m.peerHits},
		{"espserve_peer_misses_total", "Peer artifact-cache lookups that missed cluster-wide.", &m.peerMisses},
		{"espserve_failover_total", "Requests rerouted to another replica on the ring.", &m.failover},
		{"espserve_reloads_total", "Model versions hot-swapped into the registry.", &m.reloads},
	}
}

// render writes the full Prometheus text exposition: # HELP/# TYPE metadata
// for every family, per-endpoint counters and latency histograms
// (_bucket/_sum/_count), global counters under their original (PR 3) names,
// the batch-queue wait histogram, and the registered gauges. Endpoint order
// is sorted for determinism.
func (m *metrics) render() string {
	var b strings.Builder
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	obs.WriteHeader(&b, "espserve_requests_total", "counter", "Requests served, by endpoint.")
	for _, name := range names {
		fmt.Fprintf(&b, "espserve_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].requests.Load())
	}
	obs.WriteHeader(&b, "espserve_request_errors_total", "counter", "4xx/5xx responses, by endpoint.")
	for _, name := range names {
		fmt.Fprintf(&b, "espserve_request_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors.Load())
	}
	obs.WriteHeader(&b, "espserve_request_latency_micros_total", "counter", "Summed request wall time in microseconds, by endpoint.")
	for _, name := range names {
		fmt.Fprintf(&b, "espserve_request_latency_micros_total{endpoint=%q} %d\n", name, m.endpoints[name].latencyMicro.Load())
	}
	obs.WriteHeader(&b, "espserve_request_latency_micros", "histogram", "Request wall time in microseconds, by endpoint.")
	for _, name := range names {
		obs.WriteHistogram(&b, "espserve_request_latency_micros",
			fmt.Sprintf("endpoint=%q", name), m.endpoints[name].latency.Snapshot())
	}

	for _, c := range m.counters() {
		obs.WriteHeader(&b, c.name, "counter", c.help)
		fmt.Fprintf(&b, "%s %d\n", c.name, c.v.Load())
	}

	obs.WriteHeader(&b, "espserve_inflight_requests", "gauge", "Requests currently being served.")
	fmt.Fprintf(&b, "espserve_inflight_requests %d\n", m.inflight.Load())

	obs.WriteHeader(&b, "espserve_batch_queue_wait_micros", "histogram", "Per-job wait between enqueue and worker pickup in microseconds.")
	obs.WriteHistogram(&b, "espserve_batch_queue_wait_micros", "", m.queueWait.Snapshot())

	for _, g := range m.gauges {
		obs.WriteHeader(&b, g.name, "gauge", g.help)
		fmt.Fprintf(&b, "%s %g\n", g.name, g.fn())
	}
	return b.String()
}
