// Package stats provides the small numeric and formatting helpers the
// experiment drivers share: means, weighted aggregation, and fixed-width
// table rendering for the paper's tables.
package stats

import (
	"fmt"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Pct renders a fraction as a rounded percentage ("25").
func Pct(f float64) string { return fmt.Sprintf("%.0f", 100*f) }

// Pct1 renders a fraction as a percentage with one decimal ("24.8").
func Pct1(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Header []string
	rows   [][]string
	seps   map[int]bool // row indices after which to draw a separator
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{Header: header, seps: make(map[int]bool)}
}

// Row appends a row; values are rendered with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Separator draws a horizontal rule after the most recent row.
func (t *Table) Separator() {
	t.seps[len(t.rows)-1] = true
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	rule := func() {
		total := 0
		for _, w := range widths {
			total += w
		}
		total += 2 * (len(widths) - 1)
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	rule()
	for i, r := range t.rows {
		writeRow(r)
		if t.seps[i] {
			rule()
		}
	}
	return sb.String()
}
