package experiments

import (
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// AblationPoint is one configuration's cross-validated ESP miss rate.
type AblationPoint struct {
	Name string
	Miss float64
}

// cvMeanMiss cross-validates ESP over both language groups and returns the
// mean per-program miss.
func cvMeanMiss(ctx *Context, cfg core.Config) (float64, error) {
	var sum float64
	n := 0
	for _, lang := range []ir.Language{ir.LangC, ir.LangFortran} {
		group, err := ctx.LanguageData(lang, codegen.Default)
		if err != nil {
			return 0, err
		}
		for _, fold := range core.CrossValidate(group, cfg) {
			sum += fold.MissRate
			n++
		}
	}
	return sum / float64(n), nil
}

// AblationFeatureSets measures ESP with feature groups removed — the
// design-choice study behind the paper's claim that irrelevant information
// does not hurt and that no feature tuning was needed.
func AblationFeatureSets(ctx *Context) ([]AblationPoint, error) {
	groups := []struct {
		name    string
		exclude []int
	}{
		{"the paper's 24 features (default)", nil},
		{"without successor features (9-24)", rangeInts(features.FTakenDominates, features.FNotTakenSuccCall)},
		{"without defining-opcode features (3-5)", rangeInts(features.FBrOperandOpcode, features.FRBOpcode)},
		{"without language/procedure features (7-8)", rangeInts(features.FLanguage, features.FProcedureType)},
		{"without loop-edge features (13-14, 21-22)", []int{
			features.FTakenSuccBackedge, features.FTakenSuccExit,
			features.FNotTakenSuccBackedge, features.FNotTakenSuccExit}},
		{"opcode+direction only (1-2)", rangeInts(features.FBrOperandOpcode, features.FLibraryProc)},
	}
	var out []AblationPoint
	for _, g := range groups {
		miss, err := cvMeanMiss(ctx, core.Config{ExcludeFeatures: g.exclude})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: g.name, Miss: miss})
	}
	// The Section 6 future-work extension, measured as an addition.
	withLib, err := cvMeanMiss(ctx, core.Config{IncludeLibraryFeature: true})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationPoint{Name: "with the library-subroutine feature (Section 6 extension)", Miss: withLib})
	return out, nil
}

func rangeInts(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// AblationHiddenUnits sweeps the hidden-layer width.
func AblationHiddenUnits(ctx *Context, sizes []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, h := range sizes {
		miss, err := cvMeanMiss(ctx, core.Config{Hidden: h})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Name: fmt.Sprintf("%d hidden units", h), Miss: miss})
	}
	return out, nil
}

// AblationLoss compares the paper's execution-weighted loss against uniform
// example weights.
func AblationLoss(ctx *Context) ([]AblationPoint, error) {
	weighted, err := cvMeanMiss(ctx, core.Config{})
	if err != nil {
		return nil, err
	}
	uniform, err := cvMeanMiss(ctx, core.Config{UniformWeights: true})
	if err != nil {
		return nil, err
	}
	return []AblationPoint{
		{Name: "weighted MB/BIT loss (paper)", Miss: weighted},
		{Name: "uniform example weights", Miss: uniform},
	}, nil
}

// AblationClassifier compares the neural net against the decision tree
// (Section 3.1.2: "comparable") and memory-based reasoning (Section 6).
func AblationClassifier(ctx *Context) ([]AblationPoint, error) {
	net, err := cvMeanMiss(ctx, core.Config{})
	if err != nil {
		return nil, err
	}
	tree, err := cvMeanMiss(ctx, core.Config{Classifier: core.DecisionTree})
	if err != nil {
		return nil, err
	}
	knn, err := cvMeanMiss(ctx, core.Config{Classifier: core.MemoryBased})
	if err != nil {
		return nil, err
	}
	return []AblationPoint{
		{Name: "neural net (Section 3.1.1)", Miss: net},
		{Name: "decision tree (Section 3.1.2)", Miss: tree},
		{Name: "memory-based reasoning (Section 6)", Miss: knn},
	}, nil
}

// AblationCorrelation measures the sparse inter-branch correlation
// features (features.FCorrSharedCond/FCorrDomCond, excluded by default) as
// an addition to the paper's feature set, mirroring the library-subroutine
// ablation: does telling ESP that another (or a dominating) branch tests
// the same variable improve cross-validated prediction?
func AblationCorrelation(ctx *Context) ([]AblationPoint, error) {
	base, err := cvMeanMiss(ctx, core.Config{})
	if err != nil {
		return nil, err
	}
	with, err := cvMeanMiss(ctx, core.Config{IncludeCorrelationFeatures: true})
	if err != nil {
		return nil, err
	}
	return []AblationPoint{
		{Name: "the paper's 24 features (default)", Miss: base},
		{Name: "with inter-branch correlation features", Miss: with},
	}, nil
}

// AblationCallPolarity evaluates APHC under both readings of the Call
// heuristic (the Table 1 OCR discrepancy documented in DESIGN.md).
func AblationCallPolarity(ctx *Context) ([]AblationPoint, error) {
	data, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	eval := func(cfg heuristics.Config) float64 {
		a := heuristics.NewAPHC()
		a.Cfg = cfg
		var sum float64
		for _, pd := range data {
			sum += heuristics.MissRate(pd.Sites, pd.Profile, a)
		}
		return sum / float64(len(data))
	}
	return []AblationPoint{
		{Name: "Call predicts not-taken (Ball/Larus)", Miss: eval(heuristics.Config{})},
		{Name: "Call predicts taken (paper Table 1 as printed)", Miss: eval(heuristics.Config{CallPredictsTaken: true})},
	}, nil
}

// OrderSearchResult is the outcome of the exhaustive APHC order experiment
// (Ball and Larus "determined the best fixed order by conducting an
// experiment in which all possible orders were considered").
type OrderSearchResult struct {
	Best      []heuristics.Heuristic
	BestMiss  float64
	Worst     []heuristics.Heuristic
	WorstMiss float64
	Default   float64
	Orders    int
}

// APHCOrderSearch evaluates every order of the non-loop heuristics (the
// Loop Branch heuristic always first) over the corpus.
func APHCOrderSearch(ctx *Context) (*OrderSearchResult, error) {
	data, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	// Precompute each site's per-heuristic prediction outcome.
	type siteInfo struct {
		prog     int
		executed int64
		taken    int64
		// missIf[h] is the misses incurred if heuristic h predicts the
		// site; -1 when h does not apply.
		missIf [heuristics.NumHeuristics]int64
	}
	var sites []siteInfo
	progExec := make([]int64, len(data))
	loopMiss := make([]int64, len(data))
	for pi, pd := range data {
		for _, s := range pd.Sites.Sites {
			c := pd.Profile.Branches[s.Ref]
			if c == nil || c.Executed == 0 {
				continue
			}
			progExec[pi] += c.Executed
			if p := heuristics.Apply(heuristics.LoopBranch, s, heuristics.Config{}); p != heuristics.None {
				if p == heuristics.Taken {
					loopMiss[pi] += c.Executed - c.Taken
				} else {
					loopMiss[pi] += c.Taken
				}
				continue
			}
			si := siteInfo{prog: pi, executed: c.Executed, taken: c.Taken}
			for h := heuristics.Heuristic(1); h < heuristics.NumHeuristics; h++ {
				pred := heuristics.Apply(h, s, heuristics.Config{})
				switch pred {
				case heuristics.Taken:
					si.missIf[h] = c.Executed - c.Taken
				case heuristics.NotTaken:
					si.missIf[h] = c.Taken
				default:
					si.missIf[h] = -1
				}
			}
			sites = append(sites, si)
		}
	}
	nonLoop := []heuristics.Heuristic{
		heuristics.Pointer, heuristics.Opcode, heuristics.Guard,
		heuristics.LoopExit, heuristics.LoopHeader, heuristics.Call,
		heuristics.Store, heuristics.Return,
	}
	evalOrder := func(order []heuristics.Heuristic) float64 {
		miss := make([]float64, len(data))
		for pi := range data {
			miss[pi] = float64(loopMiss[pi])
		}
		for i := range sites {
			s := &sites[i]
			charged := false
			for _, h := range order {
				if s.missIf[h] >= 0 {
					miss[s.prog] += float64(s.missIf[h])
					charged = true
					break
				}
			}
			if !charged {
				miss[s.prog] += 0.5 * float64(s.executed)
			}
		}
		var sum float64
		n := 0
		for pi := range data {
			if progExec[pi] > 0 {
				sum += miss[pi] / float64(progExec[pi])
				n++
			}
		}
		return sum / float64(n)
	}
	res := &OrderSearchResult{BestMiss: 2, WorstMiss: -1}
	res.Default = evalOrder(heuristics.DefaultOrder[1:])
	perm := make([]heuristics.Heuristic, len(nonLoop))
	copy(perm, nonLoop)
	sort.Slice(perm, func(i, j int) bool { return perm[i] < perm[j] })
	permute(perm, 0, func(order []heuristics.Heuristic) {
		res.Orders++
		m := evalOrder(order)
		if m < res.BestMiss {
			res.BestMiss = m
			res.Best = append([]heuristics.Heuristic(nil), order...)
		}
		if m > res.WorstMiss {
			res.WorstMiss = m
			res.Worst = append([]heuristics.Heuristic(nil), order...)
		}
	})
	return res, nil
}

// permute enumerates permutations of hs[k:] in place.
func permute(hs []heuristics.Heuristic, k int, visit func([]heuristics.Heuristic)) {
	if k == len(hs) {
		visit(hs)
		return
	}
	for i := k; i < len(hs); i++ {
		hs[k], hs[i] = hs[i], hs[k]
		permute(hs, k+1, visit)
		hs[k], hs[i] = hs[i], hs[k]
	}
}

// RenderAblations formats a list of ablation points.
func RenderAblations(title string, points []AblationPoint) string {
	t := stats.NewTable("Configuration", "Miss Rate")
	for _, p := range points {
		t.Row(p.Name, stats.Pct1(p.Miss))
	}
	return title + "\n" + t.String()
}

// Render formats the order-search result.
func (r *OrderSearchResult) Render() string {
	name := func(hs []heuristics.Heuristic) string {
		out := ""
		for i, h := range hs {
			if i > 0 {
				out += " > "
			}
			out += h.String()
		}
		return out
	}
	return fmt.Sprintf(
		"APHC order search over %d orders (Loop Branch always first)\n"+
			"  best order:  %s (miss %s%%)\n"+
			"  worst order: %s (miss %s%%)\n"+
			"  default:     %s%%\n",
		r.Orders, name(r.Best), stats.Pct1(r.BestMiss),
		name(r.Worst), stats.Pct1(r.WorstMiss), stats.Pct1(r.Default))
}
