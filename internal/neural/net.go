// Package neural implements the feed-forward network of Section 3.1.1: one
// tanh hidden layer, an output unit y = 0.5·(tanh(v·h + a) + 1) normalized
// to [0,1], batch backpropagation minimizing the paper's weighted
// missed-branch / branch-incorrectly-taken loss
//
//	E = Σ_k n_k [ y_k (1 − t_k) + t_k (1 − y_k) ]
//
// (t_k the branch's true taken-probability, n_k its normalized execution
// weight), an adaptive learning rate (raised while error falls steadily,
// lowered otherwise), no momentum, and early stopping on the thresholded
// error to avoid overfitting.
//
// Two training kernels share these semantics bit for bit: Train, the dense
// reference implementation, and TrainCSR, the production kernel that runs on
// sparse rows, fuses the early-stopping forward pass into the training pass,
// and can shard the batch gradient across goroutines (csr.go). Every kernel
// accumulates each weight's contributions in the same example-then-column
// order, so a fixed seed yields identical models from either path.
package neural

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Config parameterizes a network and its training run.
type Config struct {
	Inputs int
	Hidden int
	// Seed makes weight initialization deterministic.
	Seed uint64
	// LearnRate is the initial learning rate (default 0.2).
	LearnRate float64
	// MaxEpochs bounds training (default 400).
	MaxEpochs int
	// Patience is the number of epochs without thresholded-error improvement
	// before early stopping (default 25).
	Patience int
	// LRUp and LRDown are the adaptive learning-rate factors
	// (defaults 1.05 and 0.7).
	LRUp   float64
	LRDown float64
	// RecordHistory retains the per-epoch loss and thresholded-error curves
	// in the TrainResult. Off by default: cross-validation runs thousands of
	// epochs whose histories nobody reads.
	RecordHistory bool
	// Workers bounds the goroutines TrainCSR shards the batch gradient over
	// (0 = GOMAXPROCS). The result is bit-identical for every worker count;
	// see csr.go.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.LearnRate == 0 {
		c.LearnRate = 0.2
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 400
	}
	if c.Patience == 0 {
		c.Patience = 25
	}
	if c.LRUp == 0 {
		c.LRUp = 1.05
	}
	if c.LRDown == 0 {
		c.LRDown = 0.7
	}
	return c
}

// Net is the branch-prediction network of Figure 1. The hidden×inputs weight
// matrix lives in one contiguous column-major buffer: W[j*Hidden+i] is the
// weight from input j to hidden unit i. Column-major order lets the forward
// and gradient kernels walk one input column while updating all hidden
// accumulators, which keeps the per-accumulator floating-point addition order
// identical to the classic row-major loops while breaking their serial
// add-latency dependency chain.
type Net struct {
	Inputs int
	Hidden int
	W      []float64 // column-major hidden×inputs, W[j*Hidden+i]
	B      []float64 // hidden biases
	V      []float64 // hidden → output
	A      float64   // output bias
}

// Weight returns the weight from input j to hidden unit i.
func (n *Net) Weight(i, j int) float64 { return n.W[j*n.Hidden+i] }

// SetWeight sets the weight from input j to hidden unit i.
func (n *Net) SetWeight(i, j int, v float64) { n.W[j*n.Hidden+i] = v }

// New creates a network with small deterministic random weights.
func New(cfg Config) *Net {
	cfg = cfg.withDefaults()
	rng := newRNG(cfg.Seed)
	n := &Net{
		Inputs: cfg.Inputs,
		Hidden: cfg.Hidden,
		W:      make([]float64, cfg.Hidden*cfg.Inputs),
		B:      make([]float64, cfg.Hidden),
		V:      make([]float64, cfg.Hidden),
	}
	scale := 1 / math.Sqrt(float64(cfg.Inputs)+1)
	// The draw order (row of W, then bias, then output weight, per hidden
	// unit) is part of the seed contract and must not change.
	for i := 0; i < cfg.Hidden; i++ {
		for j := 0; j < cfg.Inputs; j++ {
			n.W[j*cfg.Hidden+i] = rng.uniform() * scale
		}
		n.B[i] = rng.uniform() * scale
		n.V[i] = rng.uniform() * 0.5
	}
	n.A = rng.uniform() * 0.5
	return n
}

// HiddenActivations computes the hidden layer into h (length Hidden).
func (n *Net) HiddenActivations(x []float64, h []float64) {
	hh := n.Hidden
	copy(h, n.B)
	h = h[:hh]
	for j, xv := range x {
		if xv == 0 {
			continue
		}
		col := n.W[j*hh : j*hh+hh]
		for i, wv := range col {
			h[i] += wv * xv
		}
	}
	for i, z := range h {
		h[i] = math.Tanh(z)
	}
}

// Forward returns the network output for one input: the estimated
// probability (in [0,1]) that the branch is taken. It allocates a hidden
// scratch buffer per call; hot paths should use ForwardInto.
func (n *Net) Forward(x []float64) float64 {
	return n.ForwardInto(make([]float64, n.Hidden), x)
}

// ForwardInto is Forward with a caller-provided hidden scratch buffer
// (length Hidden), avoiding the per-call allocation.
func (n *Net) ForwardInto(h []float64, x []float64) float64 {
	n.HiddenActivations(x, h)
	return n.output(h)
}

// ForwardBatch runs every row of xs through the network, writing the output
// probabilities into out (len(out) must equal len(xs), checked — a short out
// would otherwise panic mid-batch with rows already mutated). The caller
// provides one hidden scratch buffer (length Hidden) that is reused across
// the whole batch — the serving layer's batched inference hook. The empty
// batch is an explicit no-op.
func (n *Net) ForwardBatch(h []float64, xs [][]float64, out []float64) {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("neural: ForwardBatch out length %d, want %d", len(out), len(xs)))
	}
	if len(xs) == 0 {
		return
	}
	for i, x := range xs {
		out[i] = n.ForwardInto(h, x)
	}
}

func (n *Net) output(h []float64) float64 {
	z := n.A
	for i, hv := range h {
		z += n.V[i] * hv
	}
	return 0.5 * (math.Tanh(z) + 1)
}

// Loss computes the paper's weighted expected-miss loss over a dataset.
func (n *Net) Loss(xs [][]float64, t, w []float64) float64 {
	h := make([]float64, n.Hidden)
	var e float64
	for k, x := range xs {
		y := n.ForwardInto(h, x)
		e += w[k] * (y*(1-t[k]) + t[k]*(1-y))
	}
	return e
}

// ThresholdedLoss is the loss with the output thresholded to {0,1} — the
// early-stopping criterion ("training continues until the thresholded error
// of the net no longer decreases").
func (n *Net) ThresholdedLoss(xs [][]float64, t, w []float64) float64 {
	h := make([]float64, n.Hidden)
	var e float64
	for k, x := range xs {
		y := 0.0
		if n.ForwardInto(h, x) > 0.5 {
			y = 1
		}
		e += w[k] * (y*(1-t[k]) + t[k]*(1-y))
	}
	return e
}

// TrainResult reports a training run.
type TrainResult struct {
	Epochs          int
	FinalLoss       float64
	BestThresholded float64
	FinalLearnRate  float64
	StoppedEarly    bool
	// LossHistory and ThresholdHistory are populated only when
	// Config.RecordHistory is set.
	LossHistory      []float64
	ThresholdHistory []float64
}

// Train fits the network with batch gradient descent. xs are the encoded
// feature vectors, t the per-branch taken-probabilities (targets), and w the
// normalized branch weights n_k. Training mutates the receiver and restores
// the weights that achieved the best thresholded error.
//
// This is the dense reference kernel; TrainCSR produces bit-identical
// models from sparse rows, faster.
func (n *Net) Train(cfg Config, xs [][]float64, t, w []float64) TrainResult {
	cfg = cfg.withDefaults()
	if len(xs) == 0 {
		return TrainResult{}
	}
	lr := cfg.LearnRate
	res := TrainResult{BestThresholded: math.Inf(1)}
	if cfg.RecordHistory {
		res.LossHistory = make([]float64, 0, cfg.MaxEpochs)
		res.ThresholdHistory = make([]float64, 0, cfg.MaxEpochs)
	}
	prevLoss := math.Inf(1)
	best := n.snapshot()
	sinceBest := 0

	hh := n.Hidden
	gW := make([]float64, len(n.W))
	gB := make([]float64, hh)
	gV := make([]float64, hh)
	h := make([]float64, hh)
	dh := make([]float64, hh)

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		// Zero gradients.
		for i := range gW {
			gW[i] = 0
		}
		for i := 0; i < hh; i++ {
			gB[i] = 0
			gV[i] = 0
		}
		gA := 0.0
		var loss float64
		for k, x := range xs {
			n.HiddenActivations(x, h)
			y := n.output(h)
			loss += w[k] * (y*(1-t[k]) + t[k]*(1-y))
			// dE/dy = w_k (1 - 2 t_k); dy/dz = 0.5 (1 - u²) with u = 2y-1.
			u := 2*y - 1
			dOut := w[k] * (1 - 2*t[k]) * 0.5 * (1 - u*u)
			for i := 0; i < hh; i++ {
				hi := h[i]
				gV[i] += dOut * hi
				d := dOut * n.V[i] * (1 - hi*hi)
				gB[i] += d
				dh[i] = d
			}
			for j, xv := range x {
				if xv == 0 {
					continue
				}
				gcol := gW[j*hh : j*hh+hh]
				for i, dv := range dh {
					gcol[i] += dv * xv
				}
			}
			gA += dOut
		}
		// Batch update.
		for i := range n.W {
			n.W[i] -= lr * gW[i]
		}
		for i := 0; i < hh; i++ {
			n.V[i] -= lr * gV[i]
			n.B[i] -= lr * gB[i]
		}
		n.A -= lr * gA

		// Adaptive learning rate: grow while the error drops, shrink when
		// it rises.
		if loss < prevLoss {
			lr *= cfg.LRUp
		} else {
			lr *= cfg.LRDown
		}
		prevLoss = loss

		thr := n.ThresholdedLoss(xs, t, w)
		if cfg.RecordHistory {
			res.LossHistory = append(res.LossHistory, loss)
			res.ThresholdHistory = append(res.ThresholdHistory, thr)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = loss
		res.FinalLearnRate = lr
		if thr < res.BestThresholded-1e-12 {
			res.BestThresholded = thr
			copy(best.w, n.W)
			copy(best.b, n.B)
			copy(best.v, n.V)
			best.a = n.A
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				res.StoppedEarly = true
				break
			}
		}
	}
	n.restore(best)
	return res
}

type weights struct {
	w []float64
	b []float64
	v []float64
	a float64
}

func (n *Net) snapshot() weights {
	return weights{
		w: append([]float64(nil), n.W...),
		b: append([]float64(nil), n.B...),
		v: append([]float64(nil), n.V...),
		a: n.A,
	}
}

func (n *Net) restore(s weights) {
	copy(n.W, s.w)
	copy(n.B, s.b)
	copy(n.V, s.v)
	n.A = s.a
}

// netJSON is the serialized form: the weight matrix stays row-major
// ("w"[i][j] = weight from input j to hidden unit i) so model files written
// before the column-major layout still load, and new files stay readable by
// older tools.
type netJSON struct {
	Inputs int         `json:"inputs"`
	Hidden int         `json:"hidden"`
	W      [][]float64 `json:"w"`
	B      []float64   `json:"b"`
	V      []float64   `json:"v"`
	A      float64     `json:"a"`
}

// MarshalJSON implements json.Marshaler.
func (n *Net) MarshalJSON() ([]byte, error) {
	rows := make([][]float64, n.Hidden)
	backing := make([]float64, n.Hidden*n.Inputs)
	for i := 0; i < n.Hidden; i++ {
		rows[i] = backing[i*n.Inputs : (i+1)*n.Inputs]
		for j := 0; j < n.Inputs; j++ {
			rows[i][j] = n.W[j*n.Hidden+i]
		}
	}
	return json.Marshal(netJSON{
		Inputs: n.Inputs, Hidden: n.Hidden, W: rows, B: n.B, V: n.V, A: n.A,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (n *Net) UnmarshalJSON(data []byte) error {
	var nj netJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return err
	}
	if len(nj.W) != nj.Hidden {
		return fmt.Errorf("neural: weight matrix has %d rows, want %d", len(nj.W), nj.Hidden)
	}
	n.Inputs = nj.Inputs
	n.Hidden = nj.Hidden
	n.B = nj.B
	n.V = nj.V
	n.A = nj.A
	n.W = make([]float64, nj.Hidden*nj.Inputs)
	for i, row := range nj.W {
		if len(row) != nj.Inputs {
			return fmt.Errorf("neural: weight row %d has %d columns, want %d", i, len(row), nj.Inputs)
		}
		for j, v := range row {
			n.W[j*nj.Hidden+i] = v
		}
	}
	return nil
}

// Describe renders the network architecture (Figure 1 of the paper) as
// text: input layer (static feature set), hidden layer, output unit.
func (n *Net) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: the branch prediction neural network\n")
	fmt.Fprintf(&sb, "  output  (branch probability)           : y = 0.5*(tanh(v.h + a) + 1)\n")
	fmt.Fprintf(&sb, "  hidden  (%3d units)                     : h_i = tanh(W_i.x + b_i)\n", n.Hidden)
	fmt.Fprintf(&sb, "  input   (%3d units, static feature set) : one-hot, z-normalized, '?' gated to 0\n", n.Inputs)
	return sb.String()
}

// rng is a small deterministic generator (xorshift64*) so results do not
// depend on math/rand implementation details.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// uniform returns a value in (-1, 1).
func (r *rng) uniform() float64 {
	return 2*float64(r.next()>>11)/float64(1<<53) - 1
}
