package hwsim

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pgo"
)

// The Mux and Taxonomy sinks must satisfy the interpreter's trace contract.
var (
	_ interp.TraceSink = (*Mux)(nil)
	_ interp.TraceSink = (*Taxonomy)(nil)
)

// run feeds a synthetic single-site stream and returns mispredicts.
func run(p Predictor, outcomes []bool) int64 {
	var miss int64
	for _, t := range outcomes {
		if p.Predict(0) != t {
			miss++
		}
		p.Update(0, t)
	}
	return miss
}

func repeat(pattern []bool, n int) []bool {
	out := make([]bool, 0, n*len(pattern))
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestOneBitStateMachine(t *testing.T) {
	// Unseeded: starts not-taken, then tracks the last outcome exactly.
	p := NewOneBit(1, nil)
	stream := []bool{true, true, false, true, false, false}
	// predictions: F T T F T F → miss on events 0, 2, 3, 4
	if got := run(p, stream); got != 4 {
		t.Fatalf("1-bit mispredicts = %d, want 4", got)
	}
	// Seeded taken: the first event is now predicted correctly.
	p = NewOneBit(1, []bool{true})
	if got := run(p, stream); got != 3 {
		t.Fatalf("seeded 1-bit mispredicts = %d, want 3", got)
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	// A strongly-taken site with occasional not-taken blips: the 2-bit
	// counter mispredicts once per blip, the 1-bit twice (classic loop
	// branch behavior).
	pattern := repeat([]bool{true, true, true, false}, 8)
	warm := repeat([]bool{true}, 4)
	stream := append(warm, pattern...)
	miss2 := run(NewTwoBit(1, nil), stream)
	miss1 := run(NewOneBit(1, nil), stream)
	if miss2 >= miss1 {
		t.Fatalf("2-bit (%d misses) should beat 1-bit (%d) on loop-like stream", miss2, miss1)
	}
	// 2-bit: 1 warmup miss + 1 per blip (8 blips) = 9.
	if miss2 != 9 {
		t.Fatalf("2-bit mispredicts = %d, want 9", miss2)
	}
}

func TestSeededTwoBitColdStart(t *testing.T) {
	// A heavily taken-biased site: the seeded counter starts on the right
	// side and never pays the cold-start mispredict.
	stream := repeat([]bool{true}, 64)
	unseeded := run(NewTwoBit(1, nil), stream)
	seeded := run(NewTwoBit(1, []bool{true}), stream)
	if unseeded != 1 || seeded != 0 {
		t.Fatalf("cold start: unseeded %d (want 1), seeded %d (want 0)", unseeded, seeded)
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A strict alternation defeats per-site counters but is a trivial
	// function of 1 bit of global history — gshare must learn it.
	stream := repeat([]bool{true, false}, 256)
	g := run(NewGshare(0, nil), stream)
	b := run(NewTwoBit(1, nil), stream)
	if g >= b/4 {
		t.Fatalf("gshare misses %d on alternation, 2-bit %d — gshare failed to learn history", g, b)
	}
}

func TestTageLearnsLongerPattern(t *testing.T) {
	// Period-6 pattern needs more history bits than the pattern period.
	stream := repeat([]bool{true, true, false, true, false, false}, 512)
	tg := run(NewTage(1, nil), stream)
	if rate := float64(tg) / float64(len(stream)); rate > 0.05 {
		t.Fatalf("tage miss rate %.3f on periodic stream, want < 0.05 after warmup", rate)
	}
}

func TestTageDeterministic(t *testing.T) {
	stream := repeat([]bool{true, false, false, true, true, false, true}, 300)
	a := run(NewTage(4, nil), stream)
	b := run(NewTage(4, nil), stream)
	if a != b {
		t.Fatalf("tage not deterministic: %d vs %d", a, b)
	}
}

func TestCounterWarmupCheckpoints(t *testing.T) {
	c := NewCounter(NewOneBit(1, nil))
	// 100 all-taken events: 1-bit misses only the first.
	for i := 0; i < 100; i++ {
		c.Observe(0, true)
	}
	if miss, ev := c.WarmMiss(0); miss != 1 || ev != 64 {
		t.Fatalf("warmup[64] = %d/%d, want 1/64", miss, ev)
	}
	// Stream shorter than the 256 budget: reports the full stream.
	if miss, ev := c.WarmMiss(1); miss != 1 || ev != 100 {
		t.Fatalf("warmup[256] = %d/%d, want 1/100 (stream exhausted)", miss, ev)
	}
	if c.Miss != 1 || c.Events != 100 {
		t.Fatalf("totals %d/%d, want 1/100", c.Miss, c.Events)
	}
}

func TestTaxonomyHandComputed(t *testing.T) {
	var x Taxonomy
	x.BeginTrace(make([]ir.BranchRef, 2))
	// Stream: site0 T, site1 F, site0 T, site0 F, site1 F.
	for _, ev := range []struct {
		site  int32
		taken bool
	}{{0, true}, {1, false}, {0, true}, {0, false}, {1, false}} {
		x.TraceBranch(ev.site, ev.taken)
	}
	s0, s1 := &x.Stats[0], &x.Stats[1]
	if s0.Exec != 3 || s0.Taken != 2 || s1.Exec != 2 || s1.Taken != 0 {
		t.Fatalf("counts: s0 %d/%d s1 %d/%d", s0.Exec, s0.Taken, s1.Exec, s1.Taken)
	}
	// site0 repeats: T→T (same), T→F (diff) = 1/2.
	if s0.SelfSeen != 2 || s0.SameAsSelf != 1 {
		t.Fatalf("s0 self: %d/%d, want 1/2", s0.SameAsSelf, s0.SelfSeen)
	}
	// site1 is perfectly biased: entropy 0, bias 1, self-agreement 1.
	if s1.Entropy() != 0 || s1.Bias() != 1 || s1.SelfAgree() != 1 {
		t.Fatalf("s1 taxonomy: H=%v bias=%v self=%v", s1.Entropy(), s1.Bias(), s1.SelfAgree())
	}
	// Previous-branch agreement for site1: prev events were T (diff) and
	// F (same) → 1/2.
	if s1.PrevSeen != 2 || s1.SameAsPrev != 1 {
		t.Fatalf("s1 prev: %d/%d, want 1/2", s1.SameAsPrev, s1.PrevSeen)
	}
	sum := x.Summarize()
	if sum.Sites != 2 || sum.Events != 5 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestCorpusIntegration runs one real program through RunTrace with the
// full predictor matrix and checks stream accounting: every counter sees
// exactly Profile.CondExec events, and the perfect-profile-seeded 2-bit
// predictor never does worse than the unseeded one at the smallest warmup.
func TestCorpusIntegration(t *testing.T) {
	e, ok := corpus.ByName("espresso")
	if !ok {
		t.Skip("no espresso in corpus")
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.RunConfig()

	prof, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sites := features.Collect(prog)

	var mux Mux
	perfect := &pgo.Measured{Prof: prof}
	pre := &preMux{mux: &mux, sites: sites, perfect: perfect}
	prof2, err := interp.RunTrace(prog, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mux.Counters {
		if c.Events != prof2.CondExec {
			t.Fatalf("%s counted %d events, profile says %d", c.Pred.Name(), c.Events, prof2.CondExec)
		}
	}
	// Seeding from the perfect profile must not hurt cold start.
	unseeded, seeded := mux.Counters[0], mux.Counters[1]
	um, _ := unseeded.WarmMiss(0)
	sm, _ := seeded.WarmMiss(0)
	if sm > um {
		t.Fatalf("perfect-seeded 2-bit cold-start misses %d > unseeded %d", sm, um)
	}
}

// preMux defers predictor construction until BeginTrace delivers the site
// table (predictor tables are sized by site count), then relays events.
type preMux struct {
	mux     *Mux
	sites   *features.ProgramSites
	perfect pgo.ProbSource
}

func (p *preMux) BeginTrace(refs []ir.BranchRef) {
	hints := Hints(p.perfect, p.sites, refs)
	p.mux.Counters = []*Counter{
		NewCounter(NewTwoBit(len(refs), nil)),
		NewCounter(NewTwoBit(len(refs), hints)),
		NewCounter(NewOneBit(len(refs), hints)),
		NewCounter(NewGshare(0, hints)),
		NewCounter(NewTage(len(refs), hints)),
	}
}

func (p *preMux) TraceBranch(site int32, taken bool) { p.mux.TraceBranch(site, taken) }
