package cluster

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/faultinject"
)

// TestFaultSiteRegistry pins the exact set of fault-injection sites linked
// into the cluster stack. The chaos suites enumerate registered sites and
// assume each is exercised; a site added without updating this list (or
// removed while a chaos rule still names it) silently weakens that
// coverage, so drift fails here first.
func TestFaultSiteRegistry(t *testing.T) {
	want := []string{
		"artifact.load",
		"artifact.store",
		"cluster.peer.get",
		"cluster.reload",
		"cluster.route",
		"serve.cache.get",
		"serve.compile",
		"serve.forward",
		"serve.pool.submit",
	}
	got := faultinject.Sites()
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered fault sites drifted:\n got %v\nwant %v\n"+
			"update this list AND the chaos suites that exercise the sites", got, want)
	}
}
