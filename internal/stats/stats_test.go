package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of nothing must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %g", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.254); got != "25" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct1(0.2547); got != "25.5" {
		t.Errorf("Pct1 = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Name", "Value")
	tab.Row("alpha", 1)
	tab.Row("bb", 22)
	tab.Separator()
	tab.Row("total", 23)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, rule, 2 rows, rule, total = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// First column left-aligned, numbers right-aligned.
	if !strings.HasPrefix(lines[2], "alpha") {
		t.Errorf("row misaligned: %q", lines[2])
	}
	if !strings.HasSuffix(lines[2], "1") || !strings.HasSuffix(lines[3], "22") {
		t.Errorf("numeric column misaligned: %q / %q", lines[2], lines[3])
	}
	// All lines equal width at the rules.
	if len(lines[1]) != len(lines[4]) {
		t.Error("separator widths differ")
	}
}

// TestTableTotality: rendering never panics for arbitrary cell content.
func TestTableTotality(t *testing.T) {
	f := func(a, b string, n int8) bool {
		tab := NewTable("A", "B")
		tab.Row(a, b)
		tab.Row(n, a+b)
		return tab.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
