package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadConcurrentClients is the load-generator acceptance test: hundreds
// of concurrent clients hammer one httptest server, every response must be
// routed back to the client that asked for it (checked by a unique request
// ID and by the per-client expected probabilities), and nothing may be
// dropped. The clients use the retrying Client, so admission-control sheds
// (429) are absorbed by backoff and every request still completes. Run
// under -race in CI.
func TestLoadConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in short mode")
	}
	model, data := testModel(t)
	srv, ts := testServer(t, Config{MaxBatch: 8, Workers: 4})

	// Every client owns a distinct window of this program's feature
	// vectors, so a misrouted response carries the wrong prediction count
	// or the wrong probabilities.
	vecs := data[0].Vectors
	if len(vecs) < 8 {
		t.Fatalf("fixture program has only %d branch sites", len(vecs))
	}
	offline := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offline)

	const (
		clients           = 220
		requestsPerClient = 4
	)
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		served   atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := NewClient(ts.URL, ClientConfig{
				MaxAttempts:       8,
				BaseDelay:         10 * time.Millisecond,
				MaxDelay:          500 * time.Millisecond,
				PerAttemptTimeout: 30 * time.Second,
				Seed:              int64(c) + 1,
			})
			lo := c % (len(vecs) - 4)
			n := 1 + c%4
			window := vecs[lo : lo+n]
			req := PredictRequest{
				ID:      fmt.Sprintf("client-%d", c),
				Vectors: vectorValues(window),
			}
			for r := 0; r < requestsPerClient; r++ {
				pr, err := client.Predict(context.Background(), &req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					failures.Add(1)
					return
				}
				if pr.Degraded {
					t.Errorf("client %d: degraded response without injected faults", c)
					failures.Add(1)
					return
				}
				if pr.ID != req.ID {
					t.Errorf("client %d: got response for %q — misrouted", c, pr.ID)
					failures.Add(1)
					return
				}
				if len(pr.Predictions) != n {
					t.Errorf("client %d: %d predictions, want %d", c, len(pr.Predictions), n)
					failures.Add(1)
					return
				}
				for i, p := range pr.Predictions {
					if want := offline[lo+i]; p.Probability != want {
						t.Errorf("client %d: vector %d served %v, offline %v — misrouted or corrupted",
							c, i, p.Probability, want)
						failures.Add(1)
						return
					}
				}
				served.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failed requests", failures.Load())
	}
	if want := int64(clients * requestsPerClient); served.Load() != want {
		t.Fatalf("served %d responses, want %d — requests dropped", served.Load(), want)
	}
	t.Logf("admission control shed %d requests; all absorbed by client retries",
		srv.metrics.shed.Load())

	// One source submission so the trace ring also carries a compile span.
	if resp, _ := postPredict(t, ts.URL, PredictRequest{Name: "chaos", Source: chaosSource}); resp.StatusCode != http.StatusOK {
		t.Fatalf("source predict: %d", resp.StatusCode)
	}

	// The observability acceptance check: after a load run the latency
	// histograms hold real quantiles and the ring has per-stage spans for
	// decode, compile, queue-wait, and forward.
	p50 := srv.metrics.endpoint("predict").latency.Quantile(0.5)
	p99 := srv.metrics.endpoint("predict").latency.Quantile(0.99)
	if p50 <= 0 || p99 <= 0 || p99 < p50 {
		t.Errorf("predict latency quantiles p50=%gµs p99=%gµs after load", p50, p99)
	}
	if srv.metrics.queueWait.Count() == 0 {
		t.Error("queue-wait histogram empty after load")
	}
	// Traces land in the ring just after their response is written, so give
	// the final compile trace a moment to arrive.
	var stages map[string]bool
	for deadline := time.Now().Add(5 * time.Second); ; {
		stages = map[string]bool{}
		for _, tr := range srv.traces.Snapshot() {
			for _, sp := range tr.Spans {
				stages[sp.Stage] = true
			}
		}
		if stages["decode"] && stages["compile"] && stages["queue-wait"] && stages["forward"] {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{"decode", "compile", "queue-wait", "forward"} {
		if !stages[want] {
			t.Errorf("no %q span recorded during the load run (saw %v)", want, stages)
		}
	}
	t.Logf("predict latency p50=%.0fµs p99=%.0fµs over %d requests",
		p50, p99, srv.metrics.endpoint("predict").requests.Load())
}

// TestGracefulDrainCompletesInflight asserts the SIGTERM contract: once a
// drain begins, requests already accepted by the pool still complete
// successfully, new ones are refused with 503, and nothing is dropped on the
// floor.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test in short mode")
	}
	model, data := testModel(t)
	// One slow worker and single-job batches so work queues up behind it.
	// The request timeout is pushed way out so a loaded machine (race
	// detector, single core) cannot turn queued-but-alive requests into
	// 504s — this test is about drain semantics, not deadlines.
	s, ts := testServer(t, Config{
		Workers: 1, MaxBatch: 1, QueueDepth: 64,
		RequestTimeout: 3 * time.Minute,
	})
	_ = model

	// Big batches make each job take a visible amount of model time.
	big := data[0].Vectors
	for len(big) < 3000 {
		big = append(big, data[0].Vectors...)
	}
	reqBody, err := json.Marshal(PredictRequest{ID: "inflight", Vectors: vectorValues(big)})
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 24
	type result struct {
		status int
		err    error
		when   time.Time
	}
	results := make(chan result, inflight)
	var started sync.WaitGroup
	client := &http.Client{Timeout: 4 * time.Minute}
	for i := 0; i < inflight; i++ {
		started.Add(1)
		go func() {
			started.Done()
			resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				results <- result{err: err}
				return
			}
			var pr PredictResponse
			decErr := json.NewDecoder(resp.Body).Decode(&pr)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if decErr != nil {
					results <- result{err: decErr}
					return
				}
				if len(pr.Predictions) != len(big) {
					results <- result{err: fmt.Errorf("%d predictions, want %d", len(pr.Predictions), len(big))}
					return
				}
			}
			results <- result{status: resp.StatusCode, when: time.Now()}
		}()
	}
	started.Wait()
	// Let at least one response land so we know the queue is charged and
	// the worker is mid-stream, then begin the drain.
	first := <-results
	if first.err != nil {
		t.Fatalf("first request failed: %v", first.err)
	}
	drainStart := time.Now()
	drainCtx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	completedAfterDrain := 0
	counts := map[int]int{first.status: 1}
	for i := 1; i < inflight; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request dropped during drain: %v", r.err)
		}
		counts[r.status]++
		if r.status == http.StatusOK && r.when.After(drainStart) {
			completedAfterDrain++
		}
	}
	if counts[http.StatusOK]+counts[http.StatusServiceUnavailable] != inflight {
		t.Fatalf("unexpected statuses during drain: %v", counts)
	}
	if completedAfterDrain == 0 {
		t.Error("no in-flight request completed after shutdown began")
	}

	// The drained server refuses follow-up work.
	resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", resp.StatusCode)
	}
}
