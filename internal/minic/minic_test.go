package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll(`int main() { return 42; } // comment
/* block
comment */ float f = 1.5e3;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKwInt, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokKwReturn, TokIntLit, TokSemi, TokRBrace,
		TokKwFloat, TokIdent, TokAssign, TokFloatLit, TokSemi}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[6].Int != 42 {
		t.Errorf("int literal = %d", toks[6].Int)
	}
	if toks[12].Float != 1500 {
		t.Errorf("float literal = %g", toks[12].Float)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll(`== != <= >= < > && || ! & = + - * / %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAndAnd,
		TokOrOr, TokBang, TokAmp, TokAssign, TokPlus, TokMinus, TokStar,
		TokSlash, TokPercent}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"@", "|", "/* unterminated", "\x00"}
	for _, src := range cases {
		if _, err := LexAll(src); err == nil {
			// NUL is rejected by Parse, not LexAll; accept either path.
			if _, perr := Parse("t", src); perr == nil {
				t.Errorf("input %q lexed and parsed without error", src)
			}
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("token 0 pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("token 1 pos = %v", toks[1].Pos)
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	p := mustParse(t, src)
	if err := Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `int main() { return 1 + 2 * 3 < 4 && 5 == 6 || 7 > 8; }`)
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or, ok := ret.Value.(*BinExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top operator = %v, want ||", ret.Value)
	}
	and, ok := or.L.(*BinExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("left of || = %v, want &&", or.L)
	}
	lt, ok := and.L.(*BinExpr)
	if !ok || lt.Op != OpLt {
		t.Fatalf("left of && = %v, want <", and.L)
	}
	add, ok := lt.L.(*BinExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("left of < = %v, want +", lt.L)
	}
	if mul, ok := add.R.(*BinExpr); !ok || mul.Op != OpMul {
		t.Fatalf("right of + = %v, want *", add.R)
	}
}

func TestParseDeclarations(t *testing.T) {
	p := mustParse(t, `
int g;
float farr[8];
int* ptr;
int** pp;
int helper(int a, float b, int* c) { return a; }
int main() { return 0; }
`)
	if len(p.Globals) != 4 || len(p.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(p.Globals), len(p.Funcs))
	}
	if !p.Globals[1].Type.IsArray() || p.Globals[1].Type.ArrayLen != 8 {
		t.Error("farr must be an array of 8")
	}
	if p.Globals[2].Type.PtrDepth != 1 || p.Globals[3].Type.PtrDepth != 2 {
		t.Error("pointer depths wrong")
	}
	if len(p.Funcs[0].Params) != 3 {
		t.Error("helper must have 3 parameters")
	}
}

func TestParseStatements(t *testing.T) {
	mustParse(t, `
int main() {
	int i;
	if (i) { i = 1; } else if (i == 2) { i = 3; }
	while (i < 10) { i = i + 1; }
	do { i = i - 1; } while (i > 0);
	for (i = 0; i < 5; i = i + 1) { continue; }
	for (;;) { break; }
	;
	return (int) 1.5;
}`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return 0 }`, "expected ';'"},
		{`int main() { if i { } }`, "expected '('"},
		{`int main(`, "expected"},
		{`int a[0];`, "array length must be positive"},
		{`int a[3] = 5;`, "cannot have an initializer"},
		{`int main() { 1()(); }`, "only named functions"},
		{`int main() { return +; }`, "expected expression"},
		{`int main() {`, "unterminated block"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("parse accepted %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q; want mention of %q", c.src, err, c.want)
		}
	}
}

func TestCheckerAcceptsValid(t *testing.T) {
	mustCheck(t, `
int g = 3;
float pi = 3.14;
int arr[10];
int add(int a, int b) { return a + b; }
float scale(float x) { return x * 2.0; }
void touch(int* p) { *p = 1; }
int main() {
	int i;
	int* p;
	p = &arr[2];
	touch(p);
	p = null;
	if (p == null && arr[0] > 0 || !g) { i = add(1, 2); }
	float f;
	f = scale((float) i);
	i = (int) f;
	int** pp;
	pp = (int**) __alloc(2);
	pp[0] = &g;
	return *pp[0];
}`)
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return x; }`, "undefined"},
		{`int main() { int x; int x; return 0; }`, "duplicate declaration"},
		{`int g; int g; int main() { return 0; }`, "duplicate global"},
		{`int f() { return 0; } int f() { return 0; } int main() { return 0; }`, "duplicate function"},
		{`int main(int argc) { return 0; }`, "main must be declared"},
		{`void main() { }`, "main must be declared"},
		{`int f() { return 0; }`, "no main function"},
		{`int main() { break; }`, "break outside loop"},
		{`int main() { continue; }`, "continue outside loop"},
		{`int main() { return 1.5; }`, "cannot assign float to int"},
		{`int main() { int x; x = null; return 0; }`, "cannot assign"},
		{`int main() { float f; if (f) { } return 0; }`, "condition must be int"},
		{`int main() { int* p; if (p) { } return 0; }`, "condition must be int"},
		{`int main() { int* p; if (p < null) { } return 0; }`, "== or !="},
		{`int main() { 3 = 4; return 0; }`, "not assignable"},
		{`int main() { int x; return *x; }`, "cannot dereference"},
		{`int main() { int x; return x[0]; }`, "cannot index"},
		{`int main() { float f; return f % 2.0; }`, "must be int"},
		{`int main() { return __alloc(1, 2); }`, "takes 1 argument"},
		{`int main() { return nothere(); }`, "undefined function"},
		{`int f(int a) { return a; } int main() { return f(); }`, "takes 1 arguments, got 0"},
		{`int f(int a) { return a; } int main() { return f(1.0); }`, "argument 1"},
		{`void g() { return 1; } int main() { return 0; }`, "void function"},
		{`int g() { return; } int main() { return 0; }`, "must return"},
		{`int __alloc(int n) { return n; } int main() { return 0; }`, "shadows a builtin"},
		{`int main() { int* p; return (int)(float) p; }`, "cannot cast between float and pointer"},
		{`int main() { int a[3]; int b[3]; a = b; return 0; }`, "not assignable"},
		{`void v; int main() { return 0; }`, "void type"},
		{`int main() { return &5; }`, "cannot take the address"},
	}
	for _, c := range cases {
		p, err := Parse("t", c.src)
		if err != nil {
			t.Errorf("parse error for %q: %v", c.src, err)
			continue
		}
		err = Check(p)
		if err == nil {
			t.Errorf("checker accepted %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q; want mention of %q", c.src, err, c.want)
		}
	}
}

func TestFrameLayout(t *testing.T) {
	p := mustCheck(t, `
int f(int a, float b) {
	int x;
	int arr[5];
	float y;
	return a;
}
int main() { return f(1, 2.0); }
`)
	fn := p.Funcs[0]
	// Frame: a, b, x, arr[5], y = 1+1+1+5+1 = 9 words.
	if fn.FrameSize != 9 {
		t.Errorf("frame size = %d, want 9", fn.FrameSize)
	}
	if fn.NIntParams != 1 || fn.NFltParams != 1 {
		t.Errorf("param counts = %d int, %d float", fn.NIntParams, fn.NFltParams)
	}
	if fn.Params[0].Sym.FrameOff != 0 || fn.Params[1].Sym.FrameOff != 1 {
		t.Error("parameter offsets wrong")
	}
}

func TestScopesShadowing(t *testing.T) {
	p := mustCheck(t, `
int x;
int main() {
	int x;
	x = 1;
	{
		int x;
		x = 2;
	}
	return x;
}`)
	// The returned x must be the function-level local, not the inner one or
	// the global.
	ret := p.Funcs[0].Body.Stmts[3].(*ReturnStmt)
	id := ret.Value.(*Ident)
	if id.Sym.Global {
		t.Error("return must reference the local x")
	}
	if id.Sym.FrameOff != 0 {
		t.Errorf("outer local offset = %d, want 0", id.Sym.FrameOff)
	}
}

func TestTypeStringAndEqual(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{TypeInt, "int"},
		{TypeFloat, "float"},
		{Type{Base: BaseInt, PtrDepth: 2}, "int**"},
		{Type{Base: BaseFloat, PtrDepth: 1, ArrayLen: 4}, "float*[]"},
		{TypeNull, "null"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	arr := Type{Base: BaseInt, ArrayLen: 10}
	if !arr.Equal(TypeIntPtr) {
		t.Error("int[10] must decay-equal int*")
	}
	if arr.Decay() != TypeIntPtr {
		t.Error("decay of int[10] must be int*")
	}
	if arr.Elem() != TypeInt {
		t.Error("element of int[10] must be int")
	}
}

func TestCloneIndependence(t *testing.T) {
	src := `
int g = 1;
int helper(int a) { return a * 2; }
int main() {
	int i;
	for (i = 0; i < 4; i = i + 1) {
		if (i % 2 == 0) { g = g + helper(i); } else { continue; }
	}
	while (g > 100) { g = g / 2; }
	do { g = g + 1; } while (g < 0);
	return g;
}`
	orig := mustParse(t, src)
	clone := CloneProgram(orig)
	// Checking the clone must not annotate the original.
	if err := Check(clone); err != nil {
		t.Fatalf("check clone: %v", err)
	}
	if orig.Funcs[1].FrameSize != 0 {
		t.Error("checking the clone mutated the original's frame size")
	}
	if orig.Funcs[0].Params[0].Sym != nil {
		t.Error("checking the clone resolved the original's symbols")
	}
	// And checking the original must work independently.
	if err := Check(orig); err != nil {
		t.Fatalf("check original: %v", err)
	}
}

func TestHasLoopEscapes(t *testing.T) {
	body := func(src string) Stmt {
		p := mustParse(t, "int main() { int i; for (i = 0; i < 9; i = i + 1) "+src+" }")
		return p.Funcs[0].Body.Stmts[1].(*ForStmt).Body
	}
	if HasLoopEscapes(body(`{ i = i + 1; }`)) {
		t.Error("plain body has no escapes")
	}
	if !HasLoopEscapes(body(`{ break; }`)) {
		t.Error("break must count as an escape")
	}
	if !HasLoopEscapes(body(`{ if (i > 2) { continue; } }`)) {
		t.Error("nested continue must count")
	}
	if !HasLoopEscapes(body(`{ return i; }`)) {
		t.Error("return must count")
	}
	if HasLoopEscapes(body(`{ while (i < 3) { break; } }`)) {
		t.Error("a nested loop's break binds to the nested loop")
	}
	if !HasLoopEscapes(body(`{ while (i < 3) { return i; } }`)) {
		t.Error("a return inside a nested loop still escapes")
	}
}

// TestLexerTotality feeds random printable strings to the lexer: it must
// either tokenize or return a positioned error, never panic or loop.
func TestLexerTotality(t *testing.T) {
	f := func(b []byte) bool {
		src := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return ' '
			}
			return r
		}, string(b))
		_, err := LexAll(src)
		_ = err
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestParserTotality: the parser must never panic on random token soup.
func TestParserTotality(t *testing.T) {
	f := func(b []byte) bool {
		src := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return ';'
			}
			return r
		}, string(b))
		_, err := Parse("fuzz", src)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
