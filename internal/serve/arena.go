// Zero-allocation request path for the vectors-only /predict shape.
//
// The serving hot path — a client submitting pre-extracted feature vectors —
// previously paid encoding/json twice (decode and encode) plus per-request
// slices, a job struct, and a done channel. This file replaces all of it
// with a pooled request arena: one sync.Pool'd struct owns the body buffer,
// the decoded vectors, a reusable prediction job, and the response buffer,
// so a steady-state vectors request performs zero heap allocations between
// reading the body and writing the response bytes (asserted by
// TestArenaPipelineZeroAlloc; the net/http connection machinery around it is
// outside the pooled region).
//
// The decoder is a hand-rolled scanner for the one fixed shape
//
//	{"id": "...", "vectors": [["BEQ", "F", ...], ...]}
//
// and nothing else: any other key, a malformed body, an over-limit vector
// count, a wrong-arity row, or an exotic escape (\uXXXX) makes it bail out,
// and the handler falls back to the encoding/json slow path, which
// reproduces the exact legacy behavior and error messages. The fast path
// therefore never has to be bug-for-bug compatible with encoding/json on
// weird inputs — it only has to win the common case and get out of the way.
//
// Lifetime contract: decoded strings are unsafe.String views into the
// arena's body and scratch buffers, so they are valid only until the arena
// is released. The arena is released after the response is written — except
// when the requester abandons a submitted job (timeout/cancel): the worker
// may still be reading the arena's vectors, so the arena is abandoned to the
// garbage collector instead of being returned to the pool (pool.submitJob
// reports reusability).
package serve

import (
	"context"
	"io"
	"strconv"
	"sync"
	"time"
	"unsafe"

	"repro/internal/features"
)

// requestArena is the pooled per-request working set.
type requestArena struct {
	body    []byte            // raw request body
	scratch []byte            // escape-decoding overflow for string views
	vecs    []features.Vector // decoded feature vectors (views into body/scratch)
	out     []byte            // response encode buffer
	id      string            // request ID (view into body/scratch)
	job     *job              // reusable prediction job (buffered done channel)
}

var arenaPool = sync.Pool{New: func() any {
	return &requestArena{
		body: make([]byte, 0, 4096),
		out:  make([]byte, 0, 4096),
		job:  &job{done: make(chan struct{}, 1)},
	}
}}

func getArena() *requestArena { return arenaPool.Get().(*requestArena) }

// putArena returns the arena to the pool. Callers must not release an arena
// whose job a worker may still touch (see pool.submitJob). Stale string
// views in vecs' capacity keep at most one previous body/scratch generation
// alive — bounded retention, overwritten on next use.
func putArena(ar *requestArena) {
	ar.id = ""
	arenaPool.Put(ar)
}

// readBody reads r to EOF into the arena's reusable body buffer.
func (ar *requestArena) readBody(r io.Reader) ([]byte, error) {
	buf := ar.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			ar.body = buf
			return buf, nil
		}
		if err != nil {
			ar.body = buf
			return nil, err
		}
	}
}

// prepareJob readies the arena's reusable job for one submission over the
// decoded vectors.
func (ar *requestArena) prepareJob(ctx context.Context) *job {
	j := ar.job
	n := len(ar.vecs)
	if cap(j.probs) < n {
		j.probs = make([]float64, n)
	}
	j.probs = j.probs[:n]
	j.ctx = ctx
	j.vecs = ar.vecs
	j.err = nil
	j.started = time.Time{}
	j.finished = time.Time{}
	j.enqueued = time.Now()
	return j
}

// view reinterprets b as a string without copying. The result aliases the
// arena's buffers and dies with the request.
func view(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// arenaParser scans the fixed vectors-only request shape.
type arenaParser struct {
	data []byte
	pos  int
	ar   *requestArena
}

func (p *arenaParser) ws() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *arenaParser) eat(c byte) bool {
	if p.pos < len(p.data) && p.data[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// str scans a JSON string. The fast case (no backslash) returns a view
// straight into the body; escapes are decoded into the arena's scratch
// buffer. Unsupported escapes (\uXXXX) fail the scan, punting the request to
// the encoding/json slow path.
func (p *arenaParser) str() (string, bool) {
	if !p.eat('"') {
		return "", false
	}
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			s := view(p.data[start:p.pos])
			p.pos++
			return s, true
		case c == '\\':
			return p.strSlow(start)
		case c < 0x20:
			return "", false
		default:
			p.pos++
		}
	}
	return "", false
}

func (p *arenaParser) strSlow(start int) (string, bool) {
	sc := p.ar.scratch
	base := len(sc)
	sc = append(sc, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			p.ar.scratch = sc
			// A later append may grow scratch and copy it elsewhere; this
			// view then pins the old backing array, which is exactly as
			// long-lived as the request. Safe, if briefly wasteful.
			return view(sc[base:]), true
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return "", false
			}
			switch p.data[p.pos] {
			case '"':
				sc = append(sc, '"')
			case '\\':
				sc = append(sc, '\\')
			case '/':
				sc = append(sc, '/')
			case 'n':
				sc = append(sc, '\n')
			case 't':
				sc = append(sc, '\t')
			case 'r':
				sc = append(sc, '\r')
			case 'b':
				sc = append(sc, '\b')
			case 'f':
				sc = append(sc, '\f')
			default: // \uXXXX and anything else: slow path's problem
				return "", false
			}
			p.pos++
		case c < 0x20:
			return "", false
		default:
			sc = append(sc, c)
			p.pos++
		}
	}
	return "", false
}

// row scans one vector: exactly NumFeatures strings, empty normalized to
// Unknown (mirroring features.FromValues). Wrong arity fails the scan so the
// slow path can produce its precise error.
func (p *arenaParser) row(v *features.Vector) bool {
	if !p.eat('[') {
		return false
	}
	n := 0
	p.ws()
	if p.eat(']') {
		return false // zero values: FromValues rejects, let it
	}
	for {
		s, ok := p.str()
		if !ok || n >= features.NumFeatures {
			return false
		}
		if s == "" {
			s = features.Unknown
		}
		v.Values[n] = s
		n++
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat(']') {
			return n == features.NumFeatures
		}
		return false
	}
}

func (p *arenaParser) vectors(maxVectors int) bool {
	ar := p.ar
	ar.vecs = ar.vecs[:0]
	if !p.eat('[') {
		return false
	}
	p.ws()
	if p.eat(']') {
		return true // empty: decode() rejects below, slow path answers 400
	}
	for {
		if len(ar.vecs) >= maxVectors {
			return false // over limit: slow path reproduces the 413
		}
		var zero features.Vector
		if len(ar.vecs) < cap(ar.vecs) {
			ar.vecs = ar.vecs[:len(ar.vecs)+1]
			ar.vecs[len(ar.vecs)-1] = zero
		} else {
			ar.vecs = append(ar.vecs, zero)
		}
		if !p.row(&ar.vecs[len(ar.vecs)-1]) {
			return false
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		return p.eat(']')
	}
}

// decode attempts the fast-path scan. On success the arena holds the
// request ID and at least one feature vector; on failure (any shape this
// scanner doesn't own) the caller re-parses the body with encoding/json.
func (ar *requestArena) decode(data []byte, maxVectors int) bool {
	ar.id = ""
	ar.vecs = ar.vecs[:0]
	ar.scratch = ar.scratch[:0]
	p := arenaParser{data: data, ar: ar}
	p.ws()
	if !p.eat('{') {
		return false
	}
	sawVectors := false
	p.ws()
	if p.eat('}') {
		return false // no source, no vectors: slow path answers 400
	}
	for {
		p.ws()
		key, ok := p.str()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch key {
		case "id":
			s, ok := p.str()
			if !ok {
				return false
			}
			ar.id = s
		case "vectors":
			if !p.vectors(maxVectors) {
				return false
			}
			sawVectors = true
		default:
			// source/name/language/link_stdlib or an unknown key: the slow
			// path owns those semantics.
			return false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		if !p.eat('}') {
			return false
		}
		break
	}
	p.ws()
	if p.pos != len(p.data) {
		return false // trailing bytes: json.Decoder tolerated them, mimic via slow path
	}
	return sawVectors && len(ar.vecs) > 0
}

// appendJSONString appends s as a JSON string literal. Control characters
// escape as \u00XX; everything else (including multi-byte UTF-8) passes
// through byte-for-byte, which is valid JSON.
func appendJSONString(out []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c >= 0x20:
			out = append(out, c)
		case c == '\n':
			out = append(out, '\\', 'n')
		case c == '\t':
			out = append(out, '\\', 't')
		case c == '\r':
			out = append(out, '\\', 'r')
		default:
			out = append(out, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(out, '"')
}

// encodeResponse renders the fast-path PredictResponse into the arena's
// reusable buffer: same fields, order, and trailing newline as the
// encoding/json path, with branch refs synthesized as "#i" directly.
func (ar *requestArena) encodeResponse(probs []float64) []byte {
	out := ar.out[:0]
	out = append(out, '{')
	if ar.id != "" {
		out = append(out, `"id":`...)
		out = appendJSONString(out, ar.id)
		out = append(out, ',')
	}
	out = append(out, `"cached":false,"predictions":[`...)
	for i, p := range probs {
		if i > 0 {
			out = append(out, ',')
		}
		conf := p
		if conf < 0.5 {
			conf = 1 - conf
		}
		out = append(out, `{"branch":"#`...)
		out = strconv.AppendInt(out, int64(i), 10)
		out = append(out, `","taken":`...)
		out = strconv.AppendBool(out, p > 0.5)
		out = append(out, `,"probability":`...)
		out = strconv.AppendFloat(out, p, 'g', -1, 64)
		out = append(out, `,"confidence":`...)
		out = strconv.AppendFloat(out, conf, 'g', -1, 64)
		out = append(out, '}')
	}
	out = append(out, ']', '}', '\n')
	ar.out = out
	return out
}
