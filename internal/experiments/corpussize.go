package experiments

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// CorpusSizePoint is ESP's cross-validated miss rate with a corpus prefix
// of the given size, against APHC on the same held-out programs.
type CorpusSizePoint struct {
	Programs int
	ESP      float64
	APHC     float64
}

// CorpusSizeResult reproduces the paper's corpus-size observation (Section
// 3.1.2): with only 8 C programs ESP matched APHC/DSHC; growing the corpus
// to all 23 C programs made ESP clearly better.
type CorpusSizeResult struct {
	Points []CorpusSizePoint
}

// CorpusSize cross-validates ESP within growing prefixes of the C group.
func CorpusSize(ctx *Context, sizes []int, cfg core.Config) (*CorpusSizeResult, error) {
	group, err := ctx.LanguageData(ir.LangC, codegen.Default)
	if err != nil {
		return nil, err
	}
	aphc := heuristics.NewAPHC()
	res := &CorpusSizeResult{}
	for _, size := range sizes {
		if size < 2 || size > len(group) {
			return nil, fmt.Errorf("experiments: corpus size %d out of range [2,%d]", size, len(group))
		}
		sub := group[:size]
		folds := core.CrossValidate(sub, cfg)
		var am float64
		for i := range sub {
			am += heuristics.MissRate(sub[i].Sites, sub[i].Profile, aphc)
		}
		res.Points = append(res.Points, CorpusSizePoint{
			Programs: size,
			ESP:      core.MeanMiss(folds),
			APHC:     am / float64(size),
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r *CorpusSizeResult) Render() string {
	t := stats.NewTable("C Programs In Corpus", "ESP Miss", "APHC Miss")
	for _, p := range r.Points {
		t.Row(p.Programs, stats.Pct1(p.ESP), stats.Pct1(p.APHC))
	}
	return "Corpus-size study (Section 3.1.2): ESP vs APHC as the C corpus grows\n" + t.String()
}
