package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The paper artifacts are regression-protected byte for byte: every table,
// figure, and study render is compared against a committed golden file.
// After an intentional output change, regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden byte for byte, or
// rewrites the file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if got == string(want) {
		return
	}
	t.Errorf("%s drifted from its golden file %s (if intentional, regenerate with -update)\n%s",
		name, path, firstDiff(string(want), got))
}

// firstDiff pinpoints the first differing line of two renders.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "outputs differ only in trailing bytes"
}

func TestGoldenDefinitionalTables(t *testing.T) {
	// Tables 1 and 2 and Figure 1 are definitional (no corpus run needed)
	// but their renders are part of the paper surface all the same.
	checkGolden(t, "table1", Table1())
	checkGolden(t, "table2", Table2())
	checkGolden(t, "figure1", Figure1(100, 20))
}

func TestGoldenTable3(t *testing.T) { checkGolden(t, "table3", table3ForTest(t).Render()) }

func TestGoldenTable4(t *testing.T) { checkGolden(t, "table4", table4ForTest(t).Render()) }

func TestGoldenTable5(t *testing.T) { checkGolden(t, "table5", table5ForTest(t).Render()) }

func TestGoldenTable6(t *testing.T) { checkGolden(t, "table6", table6ForTest(t).Render()) }

func TestGoldenTable7(t *testing.T) { checkGolden(t, "table7", table7ForTest(t).Render()) }

func TestGoldenFigure2(t *testing.T) { checkGolden(t, "figure2", figure2ForTest(t).Render()) }

func TestGoldenSchemeStudy(t *testing.T) { checkGolden(t, "scheme", schemeForTest(t).Render()) }

func TestGoldenCorpusSize(t *testing.T) {
	checkGolden(t, "corpussize", corpusSizeForTest(t).Render())
}

func TestGoldenFigure2b(t *testing.T) {
	checkGolden(t, "figure2b", figure2bForTest(t).Render())
}

func TestGoldenAblations(t *testing.T) {
	out := RenderAblations("Ablation: classifier", classifierAblationForTest(t)) + "\n" +
		RenderAblations("Ablation: Call heuristic polarity", polarityAblationForTest(t)) + "\n" +
		RenderAblations("Ablation: inter-branch correlation features", correlationAblationForTest(t))
	checkGolden(t, "ablations", out)
}

func TestGoldenProfileEstimation(t *testing.T) {
	checkGolden(t, "profileest", profileEstForTest(t).Render())
}

func TestGoldenPGOStudy(t *testing.T) {
	checkGolden(t, "pgostudy", pgoForTest(t).Render())
}

func TestGoldenOrderSearch(t *testing.T) {
	checkGolden(t, "ordersearch", orderSearchForTest(t).Render())
}

func TestGoldenHwsimStudy(t *testing.T) {
	checkGolden(t, "hwsim", hwsimForTest(t).Render())
}

func TestGoldenTaxonomy(t *testing.T) {
	checkGolden(t, "taxonomy", taxonomyForTest(t).Render())
}
