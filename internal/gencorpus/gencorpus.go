// Package gencorpus is a seeded, deterministic MinC workload generator: the
// corpus-at-scale lever of the repository. It promotes the random-program
// generator that began life inside the differential property tests into a
// first-class corpus source with controllable *branch character* — the axis
// the workload-characterization literature shows branch predictability
// varies along. Five mixes are supported:
//
//	loop-heavy       deeply nested bounded counting loops and array scans
//	pointer-chasing  heap list building and null-test traversal
//	recursion-heavy  linear and tree recursion with explicit depth fuel
//	call-dense       many small helpers plus library-routine calls
//	mixed            a blend of all of the above
//
// Every generated program is always-terminating *by construction*:
//
//   - loops are only ever the canonical bounded counting form, with a fresh
//     induction variable that body statements can never reassign, and with
//     per-nesting trip-count caps so the product of enclosing trip counts
//     is bounded;
//   - recursion always decrements an explicit depth argument checked by a
//     base case, so linear recursion is O(depth) and tree recursion is
//     O(2^depth) with depth capped at 7;
//   - helper calls follow a strictly acyclic order (helper h may only call
//     helpers with a smaller index), so call chains are finite, and no
//     calls are emitted inside helper loop bodies;
//   - list traversals walk acyclic lists built by prepending, advancing the
//     cursor on every iteration;
//   - expressions exclude division and variable modulus, so no generated
//     program can trap, and array indices are reduced modulo the array
//     length before use.
//
// Generation is a pure function of (seed, mix, options): the same inputs
// yield byte-identical source, input vectors, and run seeds on every
// machine, under every GOMAXPROCS setting, on every run. The package-level
// tests pin this, and the artifact cache and streaming trainer rely on it.
package gencorpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/ir"
)

// Mix selects the branch-character profile of a generated program.
type Mix int

// The supported branch-character mixes.
const (
	LoopHeavy Mix = iota
	PointerChasing
	RecursionHeavy
	CallDense
	Mixed

	numMixes = int(Mixed) + 1
)

// String names the mix the way the CLI spells it.
func (m Mix) String() string {
	switch m {
	case LoopHeavy:
		return "loop-heavy"
	case PointerChasing:
		return "pointer-chasing"
	case RecursionHeavy:
		return "recursion-heavy"
	case CallDense:
		return "call-dense"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("mix(%d)", int(m))
}

// ParseMix parses a CLI mix name.
func ParseMix(s string) (Mix, error) {
	for _, m := range AllMixes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("gencorpus: unknown mix %q (have loop-heavy, pointer-chasing, recursion-heavy, call-dense, mixed)", s)
}

// AllMixes returns every mix in declaration order.
func AllMixes() []Mix {
	return []Mix{LoopHeavy, PointerChasing, RecursionHeavy, CallDense, Mixed}
}

// Options tunes generation for special callers. The zero value is the
// corpus default.
type Options struct {
	// Prints interleaves __print statements so output-differential tests
	// (compiler A vs compiler B, micro-op vs reference interpreter) have
	// observable intermediate state beyond the final return value.
	Prints bool
	// Stmts overrides the top-level statement count of main (default 6-9,
	// seed-dependent).
	Stmts int
}

// Program is one generated workload: a MinC source with pinned,
// reproducible inputs.
type Program struct {
	// Name is unique within a Spec ("gen-s<seed>-<index>-<mix>").
	Name string
	// Mix is the branch-character profile the program was drawn from.
	Mix Mix
	// Seed is the exact generator seed that produced Source.
	Seed int64
	// Source is the MinC program text (stdlib not included; the corpus
	// compile path links it, exactly as for the real programs).
	Source string
	// Input is the reproducible input vector served by __input.
	Input []int64
	// RunSeed seeds the deterministic __rand stream for profiling runs.
	RunSeed uint64
}

// Entry adapts the program to a corpus entry, so generated programs flow
// through the exact parse -> compile -> uop-trace -> featurize -> train
// pipeline the 46 real programs use.
func (p Program) Entry() corpus.Entry {
	return corpus.Entry{
		Name:     p.Name,
		Suite:    corpus.SuiteGenerated,
		Language: ir.LangC,
		Source:   p.Source,
		Input:    p.Input,
		Seed:     p.RunSeed,
		About:    fmt.Sprintf("generated %s workload (seed %d)", p.Mix, p.Seed),
	}
}

// Generate builds one program from a seed and a mix with default options.
func Generate(seed int64, mix Mix) Program {
	return GenerateOpts(seed, mix, Options{})
}

// GenerateOpts builds one program from a seed, a mix, and options. It is a
// pure function: identical arguments produce an identical Program.
func GenerateOpts(seed int64, mix Mix, opt Options) Program {
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		mix: mix,
		opt: opt,
		w:   mixWeights(mix),
	}
	src := g.program()
	input := make([]int64, 3)
	for i := range input {
		input[i] = int64(g.rng.Intn(41) - 8)
	}
	return Program{
		Name:    fmt.Sprintf("gen-s%d-%s", seed, mix),
		Mix:     mix,
		Seed:    seed,
		Source:  src,
		Input:   input,
		RunSeed: uint64(g.rng.Int63())>>1 + 1,
	}
}

// Spec describes a generated corpus slice: N programs whose per-program
// seeds derive from Seed, cycling round-robin through Mixes. Spec
// implements corpus.Source.
type Spec struct {
	// Seed is the base seed; program i uses splitmix64(Seed, i).
	Seed int64
	// N is the number of programs.
	N int
	// Mixes cycles per program; empty means AllMixes().
	Mixes []Mix
	// Opt applies to every program.
	Opt Options
}

// mixes resolves the round-robin mix list.
func (s Spec) mixes() []Mix {
	if len(s.Mixes) == 0 {
		return AllMixes()
	}
	return s.Mixes
}

// ProgramSeed returns the generator seed of program i — exposed so tools
// can regenerate a single program of a spec without materializing the rest.
func (s Spec) ProgramSeed(i int) int64 {
	return int64(splitmix64(uint64(s.Seed), uint64(i)) >> 1)
}

// Program materializes program i of the spec.
func (s Spec) Program(i int) Program {
	mixes := s.mixes()
	p := GenerateOpts(s.ProgramSeed(i), mixes[i%len(mixes)], s.Opt)
	// Within a spec the index names the program (two spec programs may
	// share a mix; the derived seeds are what differ).
	p.Name = fmt.Sprintf("gen-s%d-%05d-%s", s.Seed, i, p.Mix)
	return p
}

// Programs materializes the whole spec in index order.
func (s Spec) Programs() []Program {
	out := make([]Program, s.N)
	for i := range out {
		out[i] = s.Program(i)
	}
	return out
}

// Entries implements corpus.Source: the spec's programs as corpus entries,
// in index order.
func (s Spec) Entries() []corpus.Entry {
	out := make([]corpus.Entry, s.N)
	for i := range out {
		out[i] = s.Program(i).Entry()
	}
	return out
}

// splitmix64 mixes a base seed and an index into a well-distributed
// per-program seed (Steele et al.'s SplitMix64 finalizer).
func splitmix64(seed, i uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stmtKind enumerates the statement templates the chooser draws from.
type stmtKind int

const (
	kAssign stmtKind = iota
	kIf
	kLoop
	kArrayScan
	kPtrWalk
	kRecCall
	kHelperCall
	kLibCall
	kPrint
	numKinds
)

// weights is a statement-kind weight table; a zero weight disables the
// kind under that mix.
type weights [numKinds]int

// mixWeights returns the statement-kind mass function that gives each mix
// its branch character.
func mixWeights(m Mix) weights {
	switch m {
	case LoopHeavy:
		return weights{kAssign: 3, kIf: 2, kLoop: 6, kArrayScan: 4, kLibCall: 1}
	case PointerChasing:
		return weights{kAssign: 2, kIf: 2, kLoop: 1, kPtrWalk: 6, kLibCall: 1}
	case RecursionHeavy:
		return weights{kAssign: 2, kIf: 2, kLoop: 1, kRecCall: 6, kHelperCall: 1}
	case CallDense:
		return weights{kAssign: 2, kIf: 2, kLoop: 1, kHelperCall: 5, kLibCall: 5}
	default: // Mixed
		return weights{kAssign: 3, kIf: 3, kLoop: 2, kArrayScan: 1, kPtrWalk: 2,
			kRecCall: 2, kHelperCall: 2, kLibCall: 2}
	}
}

// gen is one generation in progress.
type gen struct {
	rng *rand.Rand
	b   strings.Builder
	mix Mix
	opt Options
	w   weights

	depth     int // indentation
	loopDepth int
	stmtDepth int      // statement nesting (if/loop bodies)
	budget    int      // remaining statement budget; forces termination of generation
	vars      []string // in-scope int scalars (never induction variables)
	callable  int      // helpers with index < callable may be called
	recurs    int      // recursive helpers available (rec0..recN-1)
	lists     bool     // list helpers (mklist) are emitted
	inHelper  bool     // restrict call emission inside helper bodies
}

func (g *gen) emit(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.depth))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// expr builds a random arithmetic expression over the in-scope variables.
// Division and variable modulus are excluded so no expression can trap;
// products are reduced modulo 100 so magnitudes stay bounded.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(41)-20)
		case 1:
			return "__rand() % 17"
		default:
			return g.vars[g.rng.Intn(len(g.vars))]
		}
	}
	op := []string{"+", "-", "*"}[g.rng.Intn(3)]
	l, r := g.expr(depth-1), g.expr(depth-1)
	if op == "*" {
		return fmt.Sprintf("((%s %% 100) %s (%s %% 100))", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

// cond builds a random comparison, occasionally compounded with && / ||.
func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.rng.Intn(6)], g.expr(1))
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.expr(1), ops[g.rng.Intn(6)], g.expr(1))
	case 1:
		return fmt.Sprintf("%s || %s %s %s", c, g.expr(1), ops[g.rng.Intn(6)], g.expr(1))
	}
	return c
}

// pick draws a statement kind from the mix's weight table, masked by what
// is legal in the current context.
func (g *gen) pick() stmtKind {
	w := g.w
	if g.loopDepth >= g.maxLoopDepth() {
		w[kLoop], w[kArrayScan] = 0, 0
	}
	// In contexts where most kinds are masked, if/loop statements can
	// dominate the remaining mass and the recursive statement process turns
	// supercritical (each if expands to >1 expected children) — so nesting
	// is cut off outright past a fixed statement depth.
	if g.stmtDepth >= 4 {
		w[kIf], w[kLoop], w[kArrayScan] = 0, 0, 0
	}
	// Helper and recursive calls are cheap individually but compose into
	// exponential work when a loop body calls a helper whose own loops call
	// further helpers — so calls are never emitted inside helper loop
	// bodies, and in main only outside the innermost nesting level.
	deep := g.loopDepth >= 2 || (g.inHelper && g.loopDepth >= 1)
	if deep || g.callable == 0 {
		w[kHelperCall] = 0
	}
	if deep || g.recurs == 0 {
		w[kRecCall] = 0
	}
	if !g.lists || g.inHelper || g.loopDepth >= 1 {
		// List building allocates; keep it out of loops and helpers so the
		// heap footprint stays trivially bounded.
		w[kPtrWalk] = 0
	}
	if !g.opt.Prints || g.inHelper {
		w[kPrint] = 0
	} else if g.opt.Prints {
		w[kPrint] = 2
	}
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return kAssign
	}
	n := g.rng.Intn(total)
	for k, wk := range w {
		if n < wk {
			return stmtKind(k)
		}
		n -= wk
	}
	return kAssign
}

// maxLoopDepth caps loop nesting per mix.
func (g *gen) maxLoopDepth() int {
	if g.mix == LoopHeavy && !g.inHelper {
		return 3
	}
	return 2
}

// trip draws a loop trip count; deeper nesting draws smaller counts so the
// product of enclosing trip counts stays bounded (<= 24*12*6).
func (g *gen) trip() int {
	switch g.loopDepth {
	case 0:
		return 4 + g.rng.Intn(21) // 4..24
	case 1:
		return 2 + g.rng.Intn(11) // 2..12
	default:
		return 2 + g.rng.Intn(5) // 2..6
	}
}

// stmts emits n random statements.
func (g *gen) stmts(n int) {
	for s := 0; s < n; s++ {
		g.stmt()
	}
}

// stmt emits one statement drawn from the mix's weight table. A hard
// per-program statement budget backstops the statistical size control: once
// exhausted, every statement degenerates to an assignment, so generation
// itself provably terminates.
func (g *gen) stmt() {
	v := g.vars[g.rng.Intn(len(g.vars))]
	if g.budget <= 0 {
		g.emit("%s = %s;", v, g.expr(1))
		return
	}
	g.budget--
	switch g.pick() {
	case kIf:
		g.emit("if (%s) {", g.cond())
		g.depth++
		g.stmtDepth++
		g.stmts(1 + g.rng.Intn(2))
		g.stmtDepth--
		g.depth--
		if g.rng.Intn(2) == 0 {
			g.emit("} else {")
			g.depth++
			g.stmtDepth++
			g.stmts(1 + g.rng.Intn(2))
			g.stmtDepth--
			g.depth--
		}
		g.emit("}")
	case kLoop:
		iv := fmt.Sprintf("i%d", g.rng.Intn(1000000))
		g.emit("int %s;", iv)
		g.emit("for (%s = 0; %s < %d; %s = %s + 1) {", iv, iv, g.trip(), iv, iv)
		g.depth++
		g.loopDepth++
		g.stmtDepth++
		// The induction variable is deliberately NOT added to g.vars: body
		// statements must never reassign it, or termination is gone.
		g.stmts(1 + g.rng.Intn(2))
		g.stmtDepth--
		g.loopDepth--
		g.depth--
		g.emit("}")
	case kArrayScan:
		iv := fmt.Sprintf("i%d", g.rng.Intn(1000000))
		g.emit("int %s;", iv)
		g.emit("for (%s = 0; %s < %d; %s = %s + 1) {", iv, iv, g.trip(), iv, iv)
		g.depth++
		g.loopDepth++
		// Indices are reduced modulo the array length via a nonnegative
		// residue, so scans can never step out of bounds.
		g.emit("garr[lib_abs(%s %% 29)] = %s;", iv, g.expr(1))
		g.emit("%s = %s + garr[lib_abs((%s) %% 29)];", v, v, g.expr(1))
		if g.rng.Intn(2) == 0 {
			g.emit("if (garr[lib_abs(%s %% 29)] %s %s) { %s = %s + 1; }",
				iv, []string{"<", ">", "=="}[g.rng.Intn(3)], g.expr(1), v, v)
		}
		g.loopDepth--
		g.depth--
		g.emit("}")
	case kPtrWalk:
		g.ptrWalk(v)
	case kRecCall:
		r := g.rng.Intn(g.recurs)
		g.emit("%s = rec%d(%d, %s);", v, r, 3+g.rng.Intn(5), g.expr(1))
	case kHelperCall:
		g.emit("%s = h%d(%s);", v, g.rng.Intn(g.callable), g.expr(1))
	case kLibCall:
		g.emit("%s = %s;", v, g.libCall())
	case kPrint:
		g.emit("__print(%s);", g.expr(1))
	default:
		g.emit("%s = %s;", v, g.expr(2))
	}
}

// libCall builds a call into the MinC runtime library, giving programs the
// shared library-branch character the paper's Section 6 feature keys on.
// Only cheap, trap-free routines are drawn, with arguments reduced so every
// call is O(1) or O(log n).
func (g *gen) libCall() string {
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("lib_abs(%s)", g.expr(1))
	case 1:
		return fmt.Sprintf("lib_sign(%s)", g.expr(1))
	case 2:
		return fmt.Sprintf("lib_max(%s, %s)", g.expr(1), g.expr(1))
	case 3:
		return fmt.Sprintf("lib_min(%s, %s)", g.expr(1), g.expr(1))
	case 4:
		return fmt.Sprintf("lib_clamp(%s, 0 - %d, %d)", g.expr(1), 2+g.rng.Intn(9), 2+g.rng.Intn(9))
	case 5:
		return fmt.Sprintf("lib_gcd(%s %% 64, %d)", g.expr(1), 2+g.rng.Intn(30))
	default:
		// NOTE: lib_isqrt is deliberately excluded — its Newton iteration
		// (`while (r != prev)`) oscillates forever between k and k+1 for
		// many inputs (x=3: 2,1,2,1,...). No real corpus program reaches
		// those inputs, but a generator drawing random arguments does.
		return fmt.Sprintf("lib_ipow(%s %% 9, %d)", g.expr(1), 2+g.rng.Intn(4))
	}
}

// ptrWalk emits a list build followed by one of the traversal templates:
// the null-test-driven walks that give the pointer mix its character.
func (g *gen) ptrWalk(v string) {
	p := fmt.Sprintf("p%d", g.rng.Intn(1000000))
	n := 2 + g.rng.Intn(13) // 2..14 nodes
	g.emit("int* %s;", p)
	g.emit("%s = mklist(%d, %s);", p, n, g.expr(1))
	switch g.rng.Intn(3) {
	case 0: // sum walk
		g.emit("while (%s != null) {", p)
		g.depth++
		g.emit("%s = %s + %s[0];", v, v, p)
		g.emit("%s = (int*) %s[1];", p, p)
		g.depth--
		g.emit("}")
	case 1: // count-matching walk
		g.emit("while (%s != null) {", p)
		g.depth++
		g.emit("if (%s[0] %s %s) { %s = %s + 1; }", p,
			[]string{"<", ">", "=="}[g.rng.Intn(3)], g.expr(1), v, v)
		g.emit("%s = (int*) %s[1];", p, p)
		g.depth--
		g.emit("}")
	default: // find-with-early-exit walk
		g.emit("while (%s != null) {", p)
		g.depth++
		g.emit("if (%s[0] == %d) {", p, g.rng.Intn(17))
		g.depth++
		g.emit("%s = %s + 100;", v, v)
		g.emit("%s = null;", p)
		g.depth--
		g.emit("} else {")
		g.depth++
		g.emit("%s = (int*) %s[1];", p, p)
		g.depth--
		g.emit("}")
		g.depth--
		g.emit("}")
	}
}

// helperCount returns how many straight-line helpers the mix emits.
func (g *gen) helperCount() int {
	if g.mix == CallDense {
		return 4 + g.rng.Intn(3) // 4..6
	}
	return 2
}

// recursiveCount returns how many recursive helpers the mix emits.
func (g *gen) recursiveCount() int {
	switch g.mix {
	case RecursionHeavy:
		return 2 + g.rng.Intn(2) // 2..3
	case Mixed, CallDense:
		return 1
	}
	return 0
}

// program generates the whole compilation unit.
func (g *gen) program() string {
	g.budget = 220
	g.emit("// generated: mix=%s", g.mix)
	g.emit("int garr[32];")
	g.emit("int gcnt;")

	if g.mix == PointerChasing || g.mix == Mixed {
		g.lists = true
		g.emitMklist()
	}

	helpers := g.helperCount()
	for h := 0; h < helpers; h++ {
		g.emitHelper(h)
	}
	g.callable = helpers

	recs := g.recursiveCount()
	for r := 0; r < recs; r++ {
		g.emitRecursive(r)
	}
	g.recurs = recs

	g.emit("int main() {")
	g.depth++
	g.vars = []string{"x", "y", "z"}
	for i, v := range g.vars {
		g.emit("int %s;", v)
		g.emit("%s = __input(%d);", v, i)
	}
	n := g.opt.Stmts
	if n <= 0 {
		n = 6 + g.rng.Intn(4)
	}
	g.stmts(n)
	if g.opt.Prints {
		g.emit("__print(x); __print(y); __print(z); __print(gcnt);")
	}
	g.emit("return x + y + z + gcnt;")
	g.depth--
	g.emit("}")
	return g.b.String()
}

// emitMklist emits the shared list-building helper: an acyclic list built
// by prepending, so every traversal that advances the cursor terminates.
func (g *gen) emitMklist() {
	g.emit("int* mklist(int n, int s) {")
	g.depth++
	g.emit("int* head;")
	g.emit("int* c;")
	g.emit("int i;")
	g.emit("head = null;")
	g.emit("for (i = 0; i < n; i = i + 1) {")
	g.depth++
	g.emit("c = __alloc(2);")
	g.emit("c[0] = (s + i * 3) %% 17;")
	g.emit("c[1] = (int) head;")
	g.emit("head = c;")
	g.depth--
	g.emit("}")
	g.emit("return head;")
	g.depth--
	g.emit("}")
}

// emitHelper emits straight-line helper h. Helpers may only call helpers
// with a smaller index, so the call graph is acyclic and chains are finite.
func (g *gen) emitHelper(h int) {
	g.emit("int h%d(int a) {", h)
	g.depth++
	g.inHelper = true
	g.callable = h
	g.vars = []string{"a", "r"}
	g.emit("int r;")
	g.emit("gcnt = gcnt + 1;")
	g.emit("r = a;")
	g.stmts(2 + g.rng.Intn(2))
	g.emit("return r;")
	g.inHelper = false
	g.depth--
	g.emit("}")
}

// emitRecursive emits recursive helper r: either linear recursion on an
// explicit depth argument or bounded tree recursion. The depth argument is
// decremented on every recursive call and checked by the base case, so
// termination is structural.
func (g *gen) emitRecursive(r int) {
	g.emit("int rec%d(int d, int a) {", r)
	g.depth++
	g.emit("if (d <= 0) { return a %% 13; }")
	if g.rng.Intn(2) == 0 {
		// Linear recursion with a data-dependent branch on the way down.
		g.emit("if (a %% 2 == 0) { return rec%d(d - 1, a + 3); }", r)
		g.emit("return a + rec%d(d - 1, a - 2);", r)
	} else {
		// Tree recursion: O(2^d) calls, d <= 7 at every call site.
		g.emit("if (a > %d) { return rec%d(d - 1, a - 5); }", 20+g.rng.Intn(20), r)
		g.emit("return rec%d(d - 1, a + 1) + rec%d(d - 1, (a * 3) %% 19);", r, r)
	}
	g.depth--
	g.emit("}")
}
