package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/heuristics"
)

// sharedCtx caches corpus analysis across the tests in this package.
var (
	sharedCtx  *Context
	sharedOnce sync.Once
)

func ctxForTest(t *testing.T) *Context {
	if testing.Short() {
		t.Skip("experiment reproduction tests are skipped in -short mode")
	}
	sharedOnce.Do(func() { sharedCtx = NewContext() })
	return sharedCtx
}

// memoOf caches one expensive driver result (cross-validated tables run for
// seconds) so the reproduction tests and the golden-file tests share a
// single computation per `go test` run.
type memoOf[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (m *memoOf[T]) get(t *testing.T, f func() (T, error)) T {
	t.Helper()
	m.once.Do(func() { m.val, m.err = f() })
	if m.err != nil {
		t.Fatal(m.err)
	}
	return m.val
}

var (
	memoTable3     memoOf[*Table3Result]
	memoTable4     memoOf[*Table4Result]
	memoTable5     memoOf[*Table5Result]
	memoTable6     memoOf[*Table6Result]
	memoTable7     memoOf[*Table7Result]
	memoFigure2    memoOf[*Figure2Result]
	memoScheme     memoOf[*SchemeStudyResult]
	memoCorpusSize memoOf[*CorpusSizeResult]
	memoFigure2b   memoOf[*CorpusSizeGenResult]
	memoClassifier memoOf[[]AblationPoint]
	memoPolarity   memoOf[[]AblationPoint]
	memoCorr       memoOf[[]AblationPoint]
	memoProfileEst memoOf[*ProfileEstimationResult]
	memoOrders     memoOf[*OrderSearchResult]
	memoPGO        memoOf[*PGOStudyResult]
	memoHwsim      memoOf[*HwsimStudyResult]
	memoTaxonomy   memoOf[*TaxonomyResult]
)

func table3ForTest(t *testing.T) *Table3Result {
	ctx := ctxForTest(t)
	return memoTable3.get(t, func() (*Table3Result, error) { return Table3(ctx) })
}

func table4ForTest(t *testing.T) *Table4Result {
	ctx := ctxForTest(t)
	return memoTable4.get(t, func() (*Table4Result, error) { return Table4(ctx, core.Config{}) })
}

func table5ForTest(t *testing.T) *Table5Result {
	ctx := ctxForTest(t)
	return memoTable5.get(t, func() (*Table5Result, error) { return Table5(ctx) })
}

func table6ForTest(t *testing.T) *Table6Result {
	ctx := ctxForTest(t)
	return memoTable6.get(t, func() (*Table6Result, error) { return Table6(ctx) })
}

func table7ForTest(t *testing.T) *Table7Result {
	ctx := ctxForTest(t)
	return memoTable7.get(t, func() (*Table7Result, error) { return Table7(ctx) })
}

func figure2ForTest(t *testing.T) *Figure2Result {
	ctx := ctxForTest(t)
	return memoFigure2.get(t, func() (*Figure2Result, error) { return Figure2(ctx) })
}

func schemeForTest(t *testing.T) *SchemeStudyResult {
	ctx := ctxForTest(t)
	return memoScheme.get(t, func() (*SchemeStudyResult, error) { return SchemeStudy(ctx) })
}

func corpusSizeForTest(t *testing.T) *CorpusSizeResult {
	ctx := ctxForTest(t)
	return memoCorpusSize.get(t, func() (*CorpusSizeResult, error) {
		return CorpusSize(ctx, []int{8, 23}, core.Config{})
	})
}

// figure2bForTest runs a miniature Figure 2b sweep: the full driver path
// (generate -> stream-train -> per-mix evaluation) over corpus sizes small
// enough for CI; EXPERIMENTS.md documents the full 46 -> 4000 render.
func figure2bForTest(t *testing.T) *CorpusSizeGenResult {
	ctx := ctxForTest(t)
	return memoFigure2b.get(t, func() (*CorpusSizeGenResult, error) {
		cfg := core.Config{Hidden: 8}
		cfg.Net.MaxEpochs = 60
		cfg.Net.Patience = 15
		return CorpusSizeGen(ctx, GenSweep{Sizes: []int{10, 40}, EvalN: 3, Shard: 10}, cfg)
	})
}

func classifierAblationForTest(t *testing.T) []AblationPoint {
	ctx := ctxForTest(t)
	return memoClassifier.get(t, func() ([]AblationPoint, error) { return AblationClassifier(ctx) })
}

func polarityAblationForTest(t *testing.T) []AblationPoint {
	ctx := ctxForTest(t)
	return memoPolarity.get(t, func() ([]AblationPoint, error) { return AblationCallPolarity(ctx) })
}

func correlationAblationForTest(t *testing.T) []AblationPoint {
	ctx := ctxForTest(t)
	return memoCorr.get(t, func() ([]AblationPoint, error) { return AblationCorrelation(ctx) })
}

func profileEstForTest(t *testing.T) *ProfileEstimationResult {
	ctx := ctxForTest(t)
	return memoProfileEst.get(t, func() (*ProfileEstimationResult, error) {
		return ProfileEstimation(ctx, core.Config{})
	})
}

// pgoForTest runs the guided-optimization study with a small generated
// slice; espbench -pgo uses a larger one for the committed BENCH artifact.
func pgoForTest(t *testing.T) *PGOStudyResult {
	ctx := ctxForTest(t)
	return memoPGO.get(t, func() (*PGOStudyResult, error) {
		return PGOStudy(ctx, core.Config{}, 4)
	})
}

// hwsimForTest runs the hardware co-simulation study with a small generated
// slice; espbench -hwsim uses a larger one for the committed BENCH artifact.
func hwsimForTest(t *testing.T) *HwsimStudyResult {
	ctx := ctxForTest(t)
	return memoHwsim.get(t, func() (*HwsimStudyResult, error) {
		return HwsimStudy(ctx, core.Config{}, 4)
	})
}

func taxonomyForTest(t *testing.T) *TaxonomyResult {
	ctx := ctxForTest(t)
	return memoTaxonomy.get(t, func() (*TaxonomyResult, error) {
		return TaxonomyStudy(ctx, 4)
	})
}

func orderSearchForTest(t *testing.T) *OrderSearchResult {
	ctx := ctxForTest(t)
	return memoOrders.get(t, func() (*OrderSearchResult, error) { return APHCOrderSearch(ctx) })
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1()
	for _, h := range heuristics.AllHeuristics() {
		if !strings.Contains(t1, h.String()) {
			t.Errorf("Table 1 missing heuristic %v", h)
		}
	}
	t2 := Table2()
	for _, want := range []string{"br.opcode", "language", "taken.backedge", "nottaken.call"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing feature %q", want)
		}
	}
}

func TestTable3Reproduction(t *testing.T) {
	res := table3ForTest(t)
	if len(res.Rows) != 43 {
		t.Fatalf("%d rows, want 43", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Insns <= 0 {
			t.Errorf("%s: no instructions traced", row.Program)
		}
		if row.PctCond <= 0 || row.PctCond > 25 {
			t.Errorf("%s: %%cond = %.2f implausible", row.Program, row.PctCond)
		}
		if row.PctTaken <= 0 || row.PctTaken >= 100 {
			t.Errorf("%s: %%taken = %.2f implausible", row.Program, row.PctTaken)
		}
		// Quantiles must be nondecreasing and bounded by the static count.
		for i := 1; i < len(row.Quantiles); i++ {
			if row.Quantiles[i] < row.Quantiles[i-1] {
				t.Errorf("%s: quantiles not monotone: %v", row.Program, row.Quantiles)
			}
		}
		if row.Quantiles[len(row.Quantiles)-1] > row.Static {
			t.Errorf("%s: Q-100 %d exceeds static sites %d",
				row.Program, row.Quantiles[len(row.Quantiles)-1], row.Static)
		}
	}
	if !strings.Contains(res.Render(), "tomcatv") {
		t.Error("render missing programs")
	}
}

func TestTable4HeadlineShape(t *testing.T) {
	res := table4ForTest(t)
	o := res.Overall
	// The paper's ordering: perfect < ESP < APHC ~ DSHC < BTFNT.
	if !(o.Perfect < o.ESP) {
		t.Errorf("perfect (%.3f) must beat ESP (%.3f)", o.Perfect, o.ESP)
	}
	if !(o.ESP < o.APHC) {
		t.Errorf("headline: ESP (%.3f) must beat APHC (%.3f)", o.ESP, o.APHC)
	}
	if !(o.APHC < o.BTFNT) {
		t.Errorf("APHC (%.3f) must beat BTFNT (%.3f)", o.APHC, o.BTFNT)
	}
	// Dempster-Shafer does not beat the fixed order by more than noise
	// (the paper's conclusion: "the Dempster-Shafer theory does not
	// combine the evidence well enough to improve branch prediction").
	if o.DSHCOurs < o.APHC-0.02 || o.DSHCBL < o.APHC-0.02 {
		t.Errorf("DSHC (%.3f/%.3f) must not clearly beat APHC (%.3f)",
			o.DSHCBL, o.DSHCOurs, o.APHC)
	}
	// Plausible absolute bands (paper: 34/25/26/25/20/8).
	if o.BTFNT < 0.25 || o.BTFNT > 0.50 {
		t.Errorf("BTFNT overall %.3f outside band", o.BTFNT)
	}
	if o.APHC < 0.15 || o.APHC > 0.35 {
		t.Errorf("APHC overall %.3f outside band", o.APHC)
	}
	if o.ESP < 0.10 || o.ESP > 0.30 {
		t.Errorf("ESP overall %.3f outside band", o.ESP)
	}
	if o.Perfect < 0.02 || o.Perfect > 0.20 {
		t.Errorf("perfect overall %.3f outside band", o.Perfect)
	}
	// Per-program sanity.
	if len(res.Rows) != 43 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, v := range map[string]float64{
			"btfnt": row.BTFNT, "aphc": row.APHC, "dshcBL": row.DSHCBL,
			"dshcOurs": row.DSHCOurs, "esp": row.ESP, "perfect": row.Perfect,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %s = %g out of range", row.Program, name, v)
			}
		}
		if row.Perfect > row.BTFNT+1e-9 && row.Perfect > row.APHC+1e-9 {
			t.Errorf("%s: perfect (%.3f) worse than both baselines", row.Program, row.Perfect)
		}
	}
	if !strings.Contains(res.Render(), "Overall Avg") {
		t.Error("render missing overall row")
	}
}

func TestTable5Reproduction(t *testing.T) {
	res := table5ForTest(t)
	loopMiss, pctNonLoop, pctCov, missCov, missDef, overall := res.Averages()
	// Paper: loop miss 15%, 50% non-loop, 70% covered, 33/38/25.
	if loopMiss > 0.25 {
		t.Errorf("loop miss %.3f too high", loopMiss)
	}
	if pctNonLoop < 30 || pctNonLoop > 85 {
		t.Errorf("%%non-loop %.1f outside band", pctNonLoop)
	}
	if pctCov < 50 || pctCov > 95 {
		t.Errorf("%%covered %.1f outside band", pctCov)
	}
	if missCov >= missDef+1e-9 {
		t.Errorf("adding the random default cannot lower the miss: %.3f vs %.3f", missCov, missDef)
	}
	if overall < 0.10 || overall > 0.40 {
		t.Errorf("overall %.3f outside band", overall)
	}
}

func TestTable6Reproduction(t *testing.T) {
	res := table6ForTest(t)
	// The paper's headline for this table: heuristics are language
	// dependent — several heuristics differ by >10 points between C and
	// Fortran (four of nine in the paper).
	if n := res.DivergentHeuristics(); n < 2 {
		t.Errorf("only %d heuristics diverge by >10 points between languages", n)
	}
	if res.OursOverall[heuristics.LoopBranch] > 0.25 {
		t.Errorf("loop-branch miss %.3f too high", res.OursOverall[heuristics.LoopBranch])
	}
	// The MIPS-style target must shift at least one heuristic visibly —
	// in miss rate or in coverage (two-register branches change which
	// branches the Opcode/Pointer heuristics even apply to).
	shifted := 0
	for h := 0; h < int(heuristics.NumHeuristics); h++ {
		dm := res.OursOverall[h] - res.OursMIPSTgt[h]
		if dm < 0 {
			dm = -dm
		}
		dc := res.OverallCov[h] - res.MIPSTgtCov[h]
		if dc < 0 {
			dc = -dc
		}
		if dm > 0.03 || dc > 0.03 {
			shifted++
		}
	}
	if shifted == 0 {
		t.Error("the MIPS target shifted no heuristic's accuracy or coverage")
	}
}

func TestTable7Reproduction(t *testing.T) {
	res := table7ForTest(t)
	if len(res.Rows) != 4 {
		t.Fatalf("%d compiler rows", len(res.Rows))
	}
	byName := map[string]Table7Row{}
	for _, r := range res.Rows {
		byName[r.Compiler] = r
	}
	base := byName[codegen.AlphaCC.Name]
	gem := byName[codegen.AlphaGEM.Name]
	// GEM's unrolling reduces the dynamic frequency of loop branches — the
	// paper's explicit observation.
	if gem.PctLoopBranches >= base.PctLoopBranches {
		t.Errorf("GEM loop share %.1f not below baseline %.1f",
			gem.PctLoopBranches, base.PctLoopBranches)
	}
	// The compilers must not all behave identically.
	distinct := map[string]bool{}
	for _, r := range res.Rows {
		distinct[r.Compiler] = true
		if r.B.OverallMissRate() <= 0 || r.B.OverallMissRate() >= 1 {
			t.Errorf("%s: overall miss %.3f", r.Compiler, r.B.OverallMissRate())
		}
	}
	shares := map[float64]bool{}
	for _, r := range res.Rows {
		shares[r.PctLoopBranches] = true
	}
	if len(shares) < 3 {
		t.Errorf("compiler configurations barely differ: loop shares %v", shares)
	}
}

func TestFigure2Reproduction(t *testing.T) {
	res := figure2ForTest(t)
	// "most of the basic block transitions in that procedure involve three
	// basic blocks"
	if res.TopBlockSharePct < 20 {
		t.Errorf("top-3 block share %.1f%% too small", res.TopBlockSharePct)
	}
	if len(res.Edges) == 0 {
		t.Fatal("no edges collected")
	}
	if res.Edges[0].PctOfTotal <= 0 {
		t.Error("hottest edge has no share")
	}
	// The fragment must show the FABS/compare kernel of Figure 2.
	if !strings.Contains(res.Fragment, "fabs") &&
		!strings.Contains(res.Fragment, "cmptlt") &&
		!strings.Contains(res.Fragment, "fbne") &&
		!strings.Contains(res.Fragment, "subt") {
		t.Errorf("hot fragment lacks the FP kernel:\n%s", res.Fragment)
	}
}

func TestSchemeStudyReproduction(t *testing.T) {
	res := schemeForTest(t)
	// The paper's Section 3.1.2 finding: the Pointer and Return heuristics
	// degrade on Scheme relative to C.
	if res.SchemeMiss[heuristics.Pointer] <= res.CMiss[heuristics.Pointer] {
		t.Errorf("Pointer on Scheme (%.3f) must be worse than on C (%.3f)",
			res.SchemeMiss[heuristics.Pointer], res.CMiss[heuristics.Pointer])
	}
	if res.SchemeMiss[heuristics.Return] <= res.CMiss[heuristics.Return] {
		t.Errorf("Return on Scheme (%.3f) must be worse than on C (%.3f)",
			res.SchemeMiss[heuristics.Return], res.CMiss[heuristics.Return])
	}
	if len(res.Programs) != 3 {
		t.Errorf("scheme programs = %v", res.Programs)
	}
}

func TestCorpusSizeReproduction(t *testing.T) {
	res := corpusSizeForTest(t)
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	small, full := res.Points[0], res.Points[1]
	// The paper: with 8 programs ESP was no better than the heuristics;
	// growing the corpus to all 23 C programs improved ESP's relative
	// position. Require the ESP-vs-APHC gap to shrink materially and reach
	// at least parity (the decisive overall win in Table 4 comes from the
	// combined corpus).
	smallGap := small.ESP - small.APHC
	fullGap := full.ESP - full.APHC
	if fullGap > smallGap-0.01 {
		t.Errorf("growing the corpus did not improve ESP's relative position: %+.3f -> %+.3f",
			smallGap, fullGap)
	}
	if fullGap > 0.02 {
		t.Errorf("with the full C corpus ESP (%.3f) must at least match APHC (%.3f)",
			full.ESP, full.APHC)
	}
}

func TestCorpusSizeGenReproduction(t *testing.T) {
	res := figure2bForTest(t)
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if len(p.PerMix) != 5 {
			t.Fatalf("size %d: %d mix columns, want 5", p.Programs, len(p.PerMix))
		}
		if p.Overall <= 0 || p.Overall >= 1 {
			t.Errorf("size %d: overall miss %.3f out of range", p.Programs, p.Overall)
		}
		for _, mm := range p.PerMix {
			if mm.ESP < 0 || mm.ESP > 1 || mm.APHC < 0 || mm.APHC > 1 {
				t.Errorf("size %d %s: miss rates out of range (%v)", p.Programs, mm.Mix, mm)
			}
		}
	}
	// The APHC baseline is size-independent by construction.
	for mi := range res.Points[0].PerMix {
		if res.Points[0].PerMix[mi].APHC != res.Points[1].PerMix[mi].APHC {
			t.Errorf("APHC baseline varies with training-corpus size")
		}
	}
	// Growing the training corpus 4x must not make ESP materially worse on
	// the held-out programs.
	if res.Points[1].Overall > res.Points[0].Overall+0.05 {
		t.Errorf("growing the corpus hurt: %.3f -> %.3f",
			res.Points[0].Overall, res.Points[1].Overall)
	}
	if res.Stats.Examples == 0 {
		t.Error("streaming training saw no examples")
	}
}

func TestAblationsRun(t *testing.T) {
	cls := classifierAblationForTest(t)
	if len(cls) != 3 {
		t.Fatalf("classifier ablation points = %d", len(cls))
	}
	// Memory-based reasoning must be competitive (within 10 points).
	if cls[2].Miss > cls[0].Miss+0.10 {
		t.Errorf("memory-based reasoning (%.3f) far behind the net (%.3f)",
			cls[2].Miss, cls[0].Miss)
	}
	// Section 3.1.2: the decision tree is comparable to the net.
	d := cls[0].Miss - cls[1].Miss
	if d < 0 {
		d = -d
	}
	if d > 0.08 {
		t.Errorf("net (%.3f) and tree (%.3f) are not comparable", cls[0].Miss, cls[1].Miss)
	}
	polarity := polarityAblationForTest(t)
	if polarity[0].Miss == polarity[1].Miss {
		t.Error("Call polarity knob changed nothing")
	}
	if out := RenderAblations("x", polarity); !strings.Contains(out, "Call") {
		t.Error("render broken")
	}
	// The correlation-feature addition: like the paper's experience with
	// extra features, it must not materially hurt (irrelevant information
	// does not hurt), and the default point must equal the untouched base
	// config bit for bit (the features are masked out by default).
	corr := correlationAblationForTest(t)
	if len(corr) != 2 {
		t.Fatalf("correlation ablation points = %d", len(corr))
	}
	if corr[1].Miss > corr[0].Miss+0.03 {
		t.Errorf("correlation features hurt badly: %.3f -> %.3f", corr[0].Miss, corr[1].Miss)
	}
}

func TestProfileEstimationReproduction(t *testing.T) {
	res := profileEstForTest(t)
	// ESP's probability output must beat the uninformed baseline, and every
	// error is a probability distance in [0, 1].
	if res.ESPError >= res.UniformError {
		t.Errorf("ESP estimation error %.3f not below the 0.5 baseline %.3f",
			res.ESPError, res.UniformError)
	}
	for name, e := range res.PerProgram {
		if e < 0 || e > 1 {
			t.Errorf("%s: estimation error %g out of range", name, e)
		}
	}
	if !strings.Contains(res.Render(), "profile estimation") {
		t.Error("render broken")
	}
}

func TestPGOStudyReproduction(t *testing.T) {
	res := pgoForTest(t)
	if len(res.Rows) != 46+res.GenN {
		t.Fatalf("%d rows, want %d", len(res.Rows), 46+res.GenN)
	}
	for _, row := range res.Rows {
		for mode, c := range map[string]int64{"unguided": row.Unguided,
			"esp": row.ESP, "heuristic": row.Heuristic, "perfect": row.Perfect} {
			if c <= 0 {
				t.Errorf("%s: %s cycles = %d", row.Program, mode, c)
			}
		}
	}
	// The acceptance shape: every guidance source beats the unguided
	// optimizer in aggregate, and ESP lands within a bounded gap of the
	// perfect measured profile.
	tot := res.Total
	if tot.ESP >= tot.Unguided {
		t.Errorf("ESP guidance (%d cycles) did not beat unguided (%d)", tot.ESP, tot.Unguided)
	}
	if tot.Heuristic >= tot.Unguided {
		t.Errorf("heuristic guidance (%d cycles) did not beat unguided (%d)", tot.Heuristic, tot.Unguided)
	}
	if tot.Perfect >= tot.Unguided {
		t.Errorf("perfect guidance (%d cycles) did not beat unguided (%d)", tot.Perfect, tot.Unguided)
	}
	if float64(tot.ESP) > 1.10*float64(tot.Perfect) {
		t.Errorf("ESP (%d cycles) more than 10%% behind the perfect profile (%d)", tot.ESP, tot.Perfect)
	}
	if res.GenN > 0 && res.GenTotal.ESP >= res.GenTotal.Unguided {
		t.Errorf("generated slice: ESP (%d) did not beat unguided (%d)",
			res.GenTotal.ESP, res.GenTotal.Unguided)
	}
	if !strings.Contains(res.Render(), "ESP-guided optimization") {
		t.Error("render broken")
	}
}

func TestHwsimStudyReproduction(t *testing.T) {
	res := hwsimForTest(t)
	if len(res.Cells) != len(HwsimPredictors)*len(HwsimSeeds) {
		t.Fatalf("%d cells, want %d", len(res.Cells), len(HwsimPredictors)*len(HwsimSeeds))
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Events == 0 {
			t.Fatalf("%s/%s saw no events", c.Predictor, c.Seed)
		}
		if r := c.Rate(); r < 0 || r > 1 {
			t.Errorf("%s/%s rate %.3f out of range", c.Predictor, c.Seed, r)
		}
	}
	// Every counter of a predictor family sees the identical stream.
	for _, p := range HwsimPredictors {
		ev := res.cell(p, "unseeded").Events
		for _, s := range HwsimSeeds {
			if res.cell(p, s).Events != ev {
				t.Errorf("%s/%s saw %d events, unseeded saw %d", p, s, res.cell(p, s).Events, ev)
			}
		}
	}
	// The acceptance shape: ESP-seeded counters beat unseeded cold starts
	// at the small warmup budgets, for the per-site predictors.
	for _, p := range []string{"1bit", "2bit"} {
		for k := 0; k < 2; k++ {
			esp := res.cell(p, "esp").WarmRate(k)
			un := res.cell(p, "unseeded").WarmRate(k)
			if esp >= un {
				t.Errorf("%s warmup %d: esp-seeded %.4f not below unseeded %.4f",
					p, res.Warmups[k], esp, un)
			}
		}
	}
	// Hint quality must order the cold start: the perfect profile's hints
	// are at least as good as ESP's at the smallest budget.
	if perf, esp := res.cell("2bit", "perfect").WarmRate(0), res.cell("2bit", "esp").WarmRate(0); perf > esp+1e-9 {
		t.Errorf("perfect-seeded cold start %.4f worse than esp %.4f", perf, esp)
	}
	// Steady state: with millions of events, seeding must not matter much
	// for the per-site 2-bit (within 1 point) — the gain is cold start.
	if d := res.cell("2bit", "esp").Rate() - res.cell("2bit", "unseeded").Rate(); d > 0.01 || d < -0.01 {
		t.Errorf("2bit steady-state seeded/unseeded gap %.4f implausibly large", d)
	}
	// History predictors must beat per-site counters in steady state on
	// aggregate (that is why hardware builds them).
	if res.cell("tage", "unseeded").Rate() >= res.cell("2bit", "unseeded").Rate() {
		t.Errorf("tage steady state (%.4f) not below 2bit (%.4f)",
			res.cell("tage", "unseeded").Rate(), res.cell("2bit", "unseeded").Rate())
	}
	if len(res.ProgramESPMiss) != 46 {
		t.Errorf("per-program map has %d entries, want 46", len(res.ProgramESPMiss))
	}
	if !strings.Contains(res.Render(), "Hardware co-simulation") {
		t.Error("render broken")
	}
}

func TestTaxonomyReproduction(t *testing.T) {
	res := taxonomyForTest(t)
	if len(res.Rows) != 46+res.GenN {
		t.Fatalf("%d rows, want %d", len(res.Rows), 46+res.GenN)
	}
	for _, row := range res.Rows {
		if row.Events <= 0 || row.Sites <= 0 {
			t.Errorf("%s: no branch activity (%d sites, %d events)", row.Program, row.Sites, row.Events)
		}
		if row.Entropy < 0 || row.Entropy > 1 {
			t.Errorf("%s: entropy %.3f outside [0,1]", row.Program, row.Entropy)
		}
		if row.Bias < 0.5 || row.Bias > 1 {
			t.Errorf("%s: bias %.3f outside [0.5,1]", row.Program, row.Bias)
		}
		for _, v := range []float64{row.SelfAgree, row.PrevAgree} {
			if v < 0 || v > 1 {
				t.Errorf("%s: agreement %.3f out of range", row.Program, v)
			}
		}
	}
	// Corpus branches are biased, not coin flips: weighted entropy well
	// below 1 bit and self-agreement above 50% — the structure static
	// prediction (and the 1-bit predictor) exploits.
	if res.Corpus.Entropy >= 0.9 {
		t.Errorf("corpus weighted entropy %.3f implausibly high", res.Corpus.Entropy)
	}
	if res.Corpus.SelfAgree <= 0.5 {
		t.Errorf("corpus self-agreement %.3f not above chance", res.Corpus.SelfAgree)
	}
	if !strings.Contains(res.Render(), "taxonomy") {
		t.Error("render broken")
	}
}

func TestAPHCOrderSearch(t *testing.T) {
	res := orderSearchForTest(t)
	if res.Orders != 40320 { // 8!
		t.Errorf("searched %d orders, want 8! = 40320", res.Orders)
	}
	if res.BestMiss > res.Default || res.Default > res.WorstMiss {
		t.Errorf("order metrics inconsistent: best %.3f default %.3f worst %.3f",
			res.BestMiss, res.Default, res.WorstMiss)
	}
	if len(res.Best) != 8 || len(res.Worst) != 8 {
		t.Error("orders have wrong length")
	}
	if !strings.Contains(res.Render(), "best order") {
		t.Error("render broken")
	}
}
