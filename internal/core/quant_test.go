package core

import (
	"bytes"
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/testutil"
)

// calibratedModel trains on the given programs and runs the calibration
// sweep, returning the model with QuantCalib set but the float path active.
func calibratedModel(t *testing.T, data []*ProgramData) (*Model, *QuantCalibrationReport) {
	t.Helper()
	m := Train(data, Config{})
	rep, err := CalibrateQuant(m, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, rep
}

// TestCorpusQuantDecisionsPinned is the tentpole differential test: over
// all 46 corpus programs, the calibrated int8 path must produce the exact
// taken/not-taken decision of the float64 reference at every branch site,
// and therefore bit-identical Table 4 miss rates. Runs in the CI race
// matrix; -short skips it.
func TestCorpusQuantDecisionsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide differential test in short mode")
	}
	entries := corpus.Study()
	var data []*ProgramData
	for _, e := range entries {
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			t.Fatalf("compile %s: %v", e.Name, err)
		}
		pd, err := Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			t.Fatalf("analyze %s: %v", e.Name, err)
		}
		data = append(data, pd)
	}
	model, rep := calibratedModel(t, data)
	t.Logf("calibration: margin %.4f xscale %.4f guard %.6f fallback %.2f%% over %d vectors",
		rep.Chosen.Margin, rep.Chosen.XScale, rep.Chosen.Guard,
		100*rep.Chosen.FallbackFraction(), rep.Chosen.Vectors)

	// The guard band is the price of pinning; it must stay a minority path
	// or the quantized kernels aren't actually serving.
	if f := rep.Chosen.FallbackFraction(); f > 0.25 {
		t.Fatalf("calibration sends %.1f%% of corpus vectors to the float fallback (budget 25%%)", 100*f)
	}

	// Float reference decisions and miss rates first, with quant off.
	type programRef struct {
		probs []float64
		miss  float64
	}
	refs := make([]programRef, len(data))
	pred := &Predictor{Model: model}
	for i, pd := range data {
		probs := make([]float64, len(pd.Vectors))
		model.TakenProbabilities(pd.Vectors, probs)
		refs[i] = programRef{probs: probs, miss: heuristics.MissRate(pd.Sites, pd.Profile, pred)}
	}

	if err := model.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	if !model.QuantEnabled() {
		t.Fatal("EnableQuant did not enable the int8 path")
	}
	flipped := 0
	for i, pd := range data {
		probs := make([]float64, len(pd.Vectors))
		model.TakenProbabilities(pd.Vectors, probs)
		for k := range probs {
			if (probs[k] > 0.5) != (refs[i].probs[k] > 0.5) {
				flipped++
				t.Errorf("%s site %s: quant %v vs float %v — decision flipped",
					pd.Name, pd.Vectors[k].Ref, probs[k], refs[i].probs[k])
			}
		}
		// Miss rates are a pure function of decisions and profile counts,
		// so pinned decisions must make them bit-identical — the Table 4
		// contract, asserted with ==, not a tolerance.
		if miss := heuristics.MissRate(pd.Sites, pd.Profile, pred); miss != refs[i].miss {
			t.Errorf("%s: quant miss rate %v, float %v — not bit-identical", pd.Name, miss, refs[i].miss)
		}
	}
	if flipped > 0 {
		t.Fatalf("%d corpus decisions flipped under quantization", flipped)
	}
}

// TestQuantCalibrationPinsSmallCorpus is the fast always-on version of the
// differential contract on the two in-package fixture programs.
func TestQuantCalibrationPinsSmallCorpus(t *testing.T) {
	data := []*ProgramData{
		analyzeSrc(t, "a", loopy, nil),
		analyzeSrc(t, "b", loopy2, nil),
	}
	model, rep := calibratedModel(t, data)
	if model.QuantCalib == nil {
		t.Fatal("CalibrateQuant left QuantCalib nil")
	}
	if len(rep.Points) != len(DefaultQuantMargins) {
		t.Fatalf("sweep has %d points, want %d", len(rep.Points), len(DefaultQuantMargins))
	}
	ref := make([]float64, len(data[0].Vectors))
	model.TakenProbabilities(data[0].Vectors, ref)
	if err := model.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(data[0].Vectors))
	model.TakenProbabilities(data[0].Vectors, got)
	for i := range got {
		if (got[i] > 0.5) != (ref[i] > 0.5) {
			t.Errorf("site %d: quant %v vs float %v — decision flipped", i, got[i], ref[i])
		}
	}
	model.DisableQuant()
	if model.QuantEnabled() {
		t.Error("DisableQuant left the int8 path active")
	}
}

// TestQuantCalibrationRoundTrip saves a calibrated model and reloads it:
// the calibration must survive, and the reloaded quantized path must
// reproduce the original's probabilities bit for bit (the int8 weights are
// rebuilt deterministically from the float net).
func TestQuantCalibrationRoundTrip(t *testing.T) {
	data := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	model, _ := calibratedModel(t, data)
	if err := model.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.QuantCalib == nil {
		t.Fatal("calibration lost in save/load round trip")
	}
	if *loaded.QuantCalib != *model.QuantCalib {
		t.Fatalf("calibration changed: %+v vs %+v", loaded.QuantCalib, model.QuantCalib)
	}
	if loaded.QuantEnabled() {
		t.Fatal("loading a calibrated model must not silently enable quantization")
	}
	if err := loaded.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(data[0].Vectors))
	got := make([]float64, len(data[0].Vectors))
	model.TakenProbabilities(data[0].Vectors, want)
	loaded.TakenProbabilities(data[0].Vectors, got)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("site %d: reloaded quant %v, original %v", i, got[i], want[i])
		}
	}
}

// TestQuantZeroAllocPrediction pins the serving property: with quantization
// enabled, steady-state batch prediction allocates nothing.
func TestQuantZeroAllocPrediction(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold on plain builds")
	}
	data := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	model, _ := calibratedModel(t, data)
	if err := model.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	vecs := data[0].Vectors
	out := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, out) // warm the scratch pool
	if allocs := testing.AllocsPerRun(100, func() {
		model.TakenProbabilities(vecs, out)
	}); allocs != 0 {
		t.Fatalf("quantized TakenProbabilities allocates %v per run, want 0", allocs)
	}
}

// BenchmarkPredictFloat/BenchmarkPredictQuant measure the serving forward
// path per prediction — the ratio is the quantization speedup espbench
// -serve records in BENCH_serve.json.
func benchQuantModel(b *testing.B) (*Model, []features.Vector) {
	b.Helper()
	data := []*ProgramData{
		analyzeSrc(b, "a", loopy, nil),
		analyzeSrc(b, "b", loopy2, nil),
	}
	m := Train(data, Config{})
	if _, err := CalibrateQuant(m, data, nil); err != nil {
		b.Fatal(err)
	}
	vecs := append(append([]features.Vector(nil), data[0].Vectors...), data[1].Vectors...)
	return m, vecs
}

func BenchmarkPredictFloat(b *testing.B) {
	m, vecs := benchQuantModel(b)
	out := make([]float64, len(vecs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TakenProbabilities(vecs, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(vecs)), "ns/prediction")
}

func BenchmarkPredictQuant(b *testing.B) {
	m, vecs := benchQuantModel(b)
	if err := m.EnableQuant(); err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(vecs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TakenProbabilities(vecs, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(vecs)), "ns/prediction")
}

// TestEnableQuantErrors pins the misuse paths.
func TestEnableQuantErrors(t *testing.T) {
	data := []*ProgramData{analyzeSrc(t, "a", loopy, nil)}
	uncalibrated := Train(data, Config{})
	if err := uncalibrated.EnableQuant(); err == nil {
		t.Error("EnableQuant without calibration: no error")
	}
	tree := Train(data, Config{Classifier: DecisionTree})
	if _, err := CalibrateQuant(tree, data, nil); err == nil {
		t.Error("CalibrateQuant on a decision tree: no error")
	}
	neuralM := Train(data, Config{})
	if _, err := CalibrateQuant(neuralM, nil, nil); err == nil {
		t.Error("CalibrateQuant without corpus data: no error")
	}
	if _, err := CalibrateQuant(neuralM, data, []float64{-1}); err == nil {
		t.Error("CalibrateQuant with a negative margin: no error")
	}
}
