package core_test

// Streaming sharded training: the kill-and-resume bit-identity guarantee
// and the zero-warm-trace guarantee, tested end to end over generated
// programs flowing through the real analyze pipeline and artifact cache.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/gencorpus"
	"repro/internal/interp"
)

// streamCfg keeps the nets small so the suite stays fast; determinism does
// not depend on training length.
func streamCfg() core.Config {
	cfg := core.Config{Seed: 7, Hidden: 8}
	cfg.Net.MaxEpochs = 40
	cfg.Net.Patience = 10
	return cfg
}

// testShards builds a 12-program generated corpus in 4-program shards,
// analyzed through an artifact cache rooted at cacheDir.
func testShards(t *testing.T, cacheDir string) *gencorpus.ShardedCorpus {
	t.Helper()
	cache, err := artifact.Open(cacheDir)
	if err != nil {
		t.Fatalf("artifact.Open: %v", err)
	}
	spec := gencorpus.Spec{Seed: 11, N: 12}
	return &gencorpus.ShardedCorpus{Entries: spec.Entries(), Size: 4, Cache: cache}
}

// modelBytes serializes a model for bit-identity comparison.
func modelBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// failAfter wraps a ShardSource and fails every Load past the first n,
// simulating a crash mid-run.
type failAfter struct {
	core.ShardSource
	n int
}

func (f *failAfter) Load(i int) ([]core.Example, error) {
	if i >= f.n {
		return nil, fmt.Errorf("simulated crash at shard %d", i)
	}
	return f.ShardSource.Load(i)
}

func TestTrainStreamingResumeBitIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	src := testShards(t, cacheDir)
	cfg := streamCfg()

	// Reference: one uninterrupted run with no checkpointing at all.
	ref, refStats, err := core.TrainStreaming(context.Background(), src, cfg, "")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if refStats.Shards != 3 || refStats.Resumed != 0 {
		t.Fatalf("reference stats = %+v, want 3 shards, 0 resumed", refStats)
	}
	if refStats.Examples == 0 {
		t.Fatal("reference run produced no examples")
	}
	want := modelBytes(t, ref)

	// Crashed run: dies after two shards, leaving their checkpoints behind.
	dir := t.TempDir()
	_, _, err = core.TrainStreaming(context.Background(), &failAfter{src, 2}, cfg, dir)
	if err == nil {
		t.Fatal("crashed run unexpectedly succeeded")
	}
	cps, _ := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if len(cps) != 2 {
		t.Fatalf("crashed run left %d checkpoints, want 2", len(cps))
	}

	// Resume: the two finished shards restore from checkpoints, only the
	// third analyzes, and the weights are bit-identical to the reference.
	resumed, stats, err := core.TrainStreaming(context.Background(), src, cfg, dir)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if stats.Resumed != 2 {
		t.Fatalf("resumed %d shards, want 2", stats.Resumed)
	}
	if got := modelBytes(t, resumed); !bytes.Equal(got, want) {
		t.Errorf("resumed model differs from uninterrupted model (%d vs %d bytes)", len(got), len(want))
	}
}

func TestTrainStreamingWarmRunZeroTraces(t *testing.T) {
	cacheDir := t.TempDir()
	src := testShards(t, cacheDir)
	cfg := streamCfg()

	cold, _, err := core.TrainStreaming(context.Background(), src, cfg, "")
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	want := modelBytes(t, cold)

	// Warm run against the filled artifact cache, with no checkpoint dir:
	// every analysis is a cache hit, so the interpreter never runs.
	before := interp.TotalRuns()
	warm, _, err := core.TrainStreaming(context.Background(), testShards(t, cacheDir), cfg, "")
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if traces := interp.TotalRuns() - before; traces != 0 {
		t.Errorf("warm streaming run did %d interpreter traces, want 0", traces)
	}
	if got := modelBytes(t, warm); !bytes.Equal(got, want) {
		t.Errorf("warm model differs from cold model")
	}
}

func TestTrainStreamingStaleCheckpoints(t *testing.T) {
	cacheDir := t.TempDir()
	src := testShards(t, cacheDir)
	cfg := streamCfg()

	ref, _, err := core.TrainStreaming(context.Background(), src, cfg, "")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := modelBytes(t, ref)

	dir := t.TempDir()
	// Corrupt checkpoint: truncated JSON.
	if err := os.WriteFile(filepath.Join(dir, "shard-00000.json"), []byte(`{"config_hash":"tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stale checkpoint: valid JSON bound to a different configuration; its
	// examples are poison and must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "shard-00001.json"),
		[]byte(`{"config_hash":"0000","examples":[{"Vector":{},"Target":1,"Weight":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, stats, err := core.TrainStreaming(context.Background(), src, cfg, dir)
	if err != nil {
		t.Fatalf("run over stale checkpoints: %v", err)
	}
	if stats.Resumed != 0 {
		t.Fatalf("resumed %d shards from corrupt/stale checkpoints, want 0", stats.Resumed)
	}
	if got := modelBytes(t, m); !bytes.Equal(got, want) {
		t.Errorf("model trained over stale checkpoint dir differs from reference")
	}
}

func TestTrainStreamingContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := testShards(t, t.TempDir())
	_, _, err := core.TrainStreaming(ctx, src, streamCfg(), "")
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
