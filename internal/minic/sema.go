package minic

import "fmt"

// Check resolves names and types for a parsed program, annotating the AST in
// place (expression types, resolved symbols, frame offsets, frame sizes).
// It returns the first error found.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		globals: make(map[string]*Symbol),
		funcs:   make(map[string]*FuncDecl),
	}
	return c.run()
}

type checker struct {
	prog    *Program
	globals map[string]*Symbol
	funcs   map[string]*FuncDecl

	// Per-function state.
	fn        *FuncDecl
	scopes    []map[string]*Symbol
	frameSize int64
	loopDepth int
}

func (c *checker) run() error {
	for _, g := range c.prog.Globals {
		if c.globals[g.Name] != nil {
			return errf(g.Pos, "duplicate global %q", g.Name)
		}
		if g.Type.IsVoid() {
			return errf(g.Pos, "global %q has void type", g.Name)
		}
		if g.Init != nil {
			if err := c.checkGlobalInit(g); err != nil {
				return err
			}
		}
		c.globals[g.Name] = &Symbol{Name: g.Name, Type: g.Type, Global: true, ParamIdx: -1}
	}
	for _, fn := range c.prog.Funcs {
		if c.funcs[fn.Name] != nil {
			return errf(fn.Pos, "duplicate function %q", fn.Name)
		}
		if isBuiltinName(fn.Name) != BuiltinNone {
			return errf(fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		if c.globals[fn.Name] != nil {
			return errf(fn.Pos, "function %q collides with a global", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	main := c.funcs["main"]
	if main == nil {
		return errf(Pos{Line: 1, Col: 1}, "program %q has no main function", c.prog.Name)
	}
	if len(main.Params) != 0 || !main.Ret.IsInt() {
		return errf(main.Pos, "main must be declared as: int main()")
	}
	for _, fn := range c.prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

// checkGlobalInit permits only constant scalar initializers on globals.
func (c *checker) checkGlobalInit(g *VarDecl) error {
	switch init := g.Init.(type) {
	case *IntLit:
		if !g.Type.IsInt() {
			return errf(g.Pos, "global %q: integer initializer for %s", g.Name, g.Type)
		}
		init.SetType(TypeInt)
	case *FloatLit:
		if !g.Type.IsFloat() {
			return errf(g.Pos, "global %q: float initializer for %s", g.Name, g.Type)
		}
		init.SetType(TypeFloat)
	default:
		return errf(g.Pos, "global %q: initializer must be a literal constant", g.Name)
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.scopes = []map[string]*Symbol{{}}
	c.frameSize = 0
	c.loopDepth = 0
	if len(fn.Params) > 6 {
		return errf(fn.Pos, "function %q has %d parameters; at most 6 are supported",
			fn.Name, len(fn.Params))
	}
	nInt, nFlt := 0, 0
	for i, prm := range fn.Params {
		if prm.Type.IsVoid() || prm.Type.IsArray() {
			return errf(prm.Pos, "parameter %q has invalid type %s", prm.Name, prm.Type)
		}
		if prm.Type.IsFloat() {
			nFlt++
		} else {
			nInt++
		}
		sym, err := c.declare(prm, i)
		if err != nil {
			return err
		}
		_ = sym
	}
	fn.NIntParams, fn.NFltParams = nInt, nFlt
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	fn.FrameSize = c.frameSize
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *VarDecl, paramIdx int) (*Symbol, error) {
	top := c.scopes[len(c.scopes)-1]
	if top[d.Name] != nil {
		return nil, errf(d.Pos, "duplicate declaration of %q", d.Name)
	}
	if d.Type.IsVoid() {
		return nil, errf(d.Pos, "variable %q has void type", d.Name)
	}
	size := int64(1)
	if d.Type.IsArray() {
		size = d.Type.ArrayLen
	}
	sym := &Symbol{
		Name:     d.Name,
		Type:     d.Type,
		FrameOff: c.frameSize,
		ParamIdx: paramIdx,
	}
	c.frameSize += size
	top[d.Name] = sym
	d.Sym = sym
	return sym, nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s := c.scopes[i][name]; s != nil {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		d := st.Decl
		if d.Init != nil {
			if d.Type.IsArray() {
				return errf(d.Pos, "array %q cannot have an initializer", d.Name)
			}
			if err := c.checkExpr(d.Init); err != nil {
				return err
			}
			if err := assignable(d.Pos, d.Type, d.Init.Type()); err != nil {
				return err
			}
		}
		_, err := c.declare(d, -1)
		return err
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkStmt(st.Body)
		c.loopDepth--
		return err
	case *DoStmt:
		c.loopDepth++
		err := c.checkStmt(st.Body)
		c.loopDepth--
		if err != nil {
			return err
		}
		return c.checkCond(st.Cond)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkStmt(st.Body)
		c.loopDepth--
		return err
	case *ReturnStmt:
		if st.Value == nil {
			if !c.fn.Ret.IsVoid() {
				return errf(st.Pos, "function %q must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret.IsVoid() {
			return errf(st.Pos, "void function %q returns a value", c.fn.Name)
		}
		if err := c.checkExpr(st.Value); err != nil {
			return err
		}
		return assignable(st.Pos, c.fn.Ret, st.Value.Type())
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *AssignStmt:
		if err := c.checkExpr(st.Target); err != nil {
			return err
		}
		if !isLvalue(st.Target) {
			return errf(st.Pos, "left side of assignment is not assignable")
		}
		if st.Target.Type().IsArray() {
			return errf(st.Pos, "cannot assign to an array")
		}
		if err := c.checkExpr(st.Value); err != nil {
			return err
		}
		return assignable(st.Pos, st.Target.Type(), st.Value.Type())
	case *EmptyStmt:
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// checkCond checks a branch condition: it must be scalar int (comparisons
// and logical operators produce int).
func (c *checker) checkCond(e Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if !e.Type().IsInt() {
		return errf(e.ExprPos(), "condition must be int, got %s (compare pointers with == null)", e.Type())
	}
	return nil
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return !x.Type().IsArray()
	case *UnExpr:
		return x.Op == OpDeref
	case *IndexExpr:
		return true
	}
	return false
}

// assignable checks whether a value of type src can be stored into dst.
func assignable(pos Pos, dst, src Type) error {
	if dst.IsArray() {
		return errf(pos, "cannot assign to array type %s", dst)
	}
	if src.Base == BaseNull && dst.IsPointer() {
		return nil
	}
	if dst.Equal(src) {
		return nil
	}
	return errf(pos, "cannot assign %s to %s", src, dst)
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		x.SetType(TypeInt)
	case *FloatLit:
		x.SetType(TypeFloat)
	case *NullLit:
		x.SetType(TypeNull)
	case *Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			return errf(x.Pos, "undefined: %q", x.Name)
		}
		x.Sym = sym
		x.SetType(sym.Type)
	case *BinExpr:
		return c.checkBin(x)
	case *UnExpr:
		return c.checkUn(x)
	case *IndexExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Idx); err != nil {
			return err
		}
		t := x.X.Type()
		if !t.IsArray() && t.PtrDepth == 0 {
			return errf(x.Pos, "cannot index %s", t)
		}
		if !x.Idx.Type().IsInt() {
			return errf(x.Pos, "index must be int, got %s", x.Idx.Type())
		}
		x.SetType(t.Elem())
	case *CallExpr:
		return c.checkCall(x)
	case *CastExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := castable(x.Pos, x.To, x.X.Type()); err != nil {
			return err
		}
		x.SetType(x.To)
	default:
		return fmt.Errorf("minic: unknown expression %T", e)
	}
	return nil
}

// castable checks an explicit conversion: between int and float, between any
// two pointer types, and between int and pointers (for address arithmetic in
// allocator-style code).
func castable(pos Pos, to, from Type) error {
	if to.IsVoid() {
		return errf(pos, "cannot cast to void")
	}
	if to.IsArray() {
		return errf(pos, "cannot cast to array type")
	}
	fromD := from.Decay()
	numOrPtr := func(t Type) bool { return t.IsNumeric() || t.IsPointer() }
	if !numOrPtr(to) || !numOrPtr(fromD) {
		return errf(pos, "cannot cast %s to %s", from, to)
	}
	if to.IsFloat() && fromD.IsPointer() || fromD.IsFloat() && to.IsPointer() {
		return errf(pos, "cannot cast between float and pointer")
	}
	return nil
}

func (c *checker) checkBin(x *BinExpr) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	switch x.Op {
	case OpAnd, OpOr:
		if !lt.IsInt() || !rt.IsInt() {
			return errf(x.Pos, "operands of %s must be int, got %s and %s", x.Op, lt, rt)
		}
		x.SetType(TypeInt)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		switch {
		case lt.IsInt() && rt.IsInt(), lt.IsFloat() && rt.IsFloat():
		case lt.IsPointer() && rt.Base == BaseNull, rt.IsPointer() && lt.Base == BaseNull:
			if x.Op != OpEq && x.Op != OpNe {
				return errf(x.Pos, "pointers can be compared with null only via == or !=")
			}
		case lt.IsPointer() && rt.IsPointer() && lt.Equal(rt):
		default:
			return errf(x.Pos, "cannot compare %s with %s", lt, rt)
		}
		x.SetType(TypeInt)
	case OpAdd, OpSub:
		switch {
		case lt.IsInt() && rt.IsInt():
			x.SetType(TypeInt)
		case lt.IsFloat() && rt.IsFloat():
			x.SetType(TypeFloat)
		case lt.IsPointer() && lt.Base != BaseNull && rt.IsInt():
			x.SetType(lt)
		case x.Op == OpAdd && lt.IsInt() && rt.IsPointer() && rt.Base != BaseNull:
			x.SetType(rt)
		case x.Op == OpSub && lt.IsPointer() && rt.IsPointer() && lt.Equal(rt):
			x.SetType(TypeInt) // pointer difference in words
		default:
			return errf(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
	case OpMul, OpDiv:
		switch {
		case lt.IsInt() && rt.IsInt():
			x.SetType(TypeInt)
		case lt.IsFloat() && rt.IsFloat():
			x.SetType(TypeFloat)
		default:
			return errf(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		}
	case OpRem:
		if !lt.IsInt() || !rt.IsInt() {
			return errf(x.Pos, "operands of %% must be int, got %s and %s", lt, rt)
		}
		x.SetType(TypeInt)
	default:
		return errf(x.Pos, "unknown binary operator")
	}
	return nil
}

func (c *checker) checkUn(x *UnExpr) error {
	if err := c.checkExpr(x.X); err != nil {
		return err
	}
	t := x.X.Type()
	switch x.Op {
	case OpNeg:
		if !t.IsNumeric() {
			return errf(x.Pos, "cannot negate %s", t)
		}
		x.SetType(t)
	case OpNot:
		if !t.IsInt() {
			return errf(x.Pos, "operand of ! must be int, got %s", t)
		}
		x.SetType(TypeInt)
	case OpDeref:
		td := t.Decay()
		if !td.IsPointer() || td.Base == BaseNull {
			return errf(x.Pos, "cannot dereference %s", t)
		}
		x.SetType(td.Elem())
	case OpAddr:
		if !isLvalue(x.X) && !x.X.Type().IsArray() {
			return errf(x.Pos, "cannot take the address of this expression")
		}
		base := t
		if t.IsArray() {
			x.SetType(t.Decay())
			return nil
		}
		x.SetType(Type{Base: base.Base, PtrDepth: base.PtrDepth + 1})
	}
	return nil
}

func isBuiltinName(name string) BuiltinKind {
	switch name {
	case "__alloc":
		return BuiltinAlloc
	case "__input":
		return BuiltinInput
	case "__print":
		return BuiltinPrint
	case "__printf":
		return BuiltinPrintF
	case "__rand":
		return BuiltinRand
	}
	return BuiltinNone
}

func (c *checker) checkCall(x *CallExpr) error {
	for _, a := range x.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	if b := isBuiltinName(x.Name); b != BuiltinNone {
		x.Builtin = b
		return c.checkBuiltin(x)
	}
	fn := c.funcs[x.Name]
	if fn == nil {
		return errf(x.Pos, "call to undefined function %q", x.Name)
	}
	x.Decl = fn
	if len(x.Args) != len(fn.Params) {
		return errf(x.Pos, "%q takes %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	for i, a := range x.Args {
		if err := assignable(a.ExprPos(), fn.Params[i].Type, a.Type()); err != nil {
			return errf(a.ExprPos(), "argument %d of %q: %v", i+1, x.Name, err)
		}
	}
	x.SetType(fn.Ret)
	return nil
}

func (c *checker) checkBuiltin(x *CallExpr) error {
	want := func(n int) error {
		if len(x.Args) != n {
			return errf(x.Pos, "%s takes %d argument(s), got %d", x.Name, n, len(x.Args))
		}
		return nil
	}
	argInt := func(i int) error {
		if !x.Args[i].Type().Decay().IsInt() {
			return errf(x.Args[i].ExprPos(), "%s: argument %d must be int", x.Name, i+1)
		}
		return nil
	}
	switch x.Builtin {
	case BuiltinAlloc:
		if err := want(1); err != nil {
			return err
		}
		if err := argInt(0); err != nil {
			return err
		}
		x.SetType(TypeIntPtr)
	case BuiltinInput:
		if err := want(1); err != nil {
			return err
		}
		if err := argInt(0); err != nil {
			return err
		}
		x.SetType(TypeInt)
	case BuiltinPrint:
		if err := want(1); err != nil {
			return err
		}
		t := x.Args[0].Type().Decay()
		if !t.IsInt() && !t.IsPointer() {
			return errf(x.Pos, "__print takes an int (or pointer)")
		}
		x.SetType(TypeVoid)
	case BuiltinPrintF:
		if err := want(1); err != nil {
			return err
		}
		if !x.Args[0].Type().IsFloat() {
			return errf(x.Pos, "__printf takes a float")
		}
		x.SetType(TypeVoid)
	case BuiltinRand:
		if err := want(0); err != nil {
			return err
		}
		x.SetType(TypeInt)
	}
	return nil
}
