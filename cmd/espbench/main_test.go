package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "espbench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestDefinitionalTables(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-table", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("-table 1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Loop Branch") {
		t.Errorf("Table 1 incomplete:\n%s", out)
	}
	out, err = exec.Command(bin, "-table", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("-table 2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "br.opcode") {
		t.Errorf("Table 2 incomplete:\n%s", out)
	}
	out, err = exec.Command(bin, "-figure", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("-figure 1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hidden") {
		t.Errorf("Figure 1 incomplete:\n%s", out)
	}
}

func TestMeasuredTable(t *testing.T) {
	if testing.Short() {
		t.Skip("measured table in short mode")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "-table", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("-table 7: %v\n%s", err, out)
	}
	for _, want := range []string{"espresso", "gem", "gcc"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("Table 7 missing %q:\n%s", want, out)
		}
	}
}
