// Package repro is a from-scratch Go reproduction of "Corpus-based Static
// Branch Prediction" (Calder, Grunwald, Lindsay, Martin, Mozer, Zorn;
// PLDI 1995): evidence-based static prediction (ESP), where a neural network
// trained on a corpus of programs maps static branch features to
// taken-probabilities, evaluated against BTFNT, the Ball/Larus heuristics
// (APHC), Dempster-Shafer combination (DSHC), and perfect static profiles.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-
// measured results, and cmd/espbench to regenerate every table and figure.
package repro
