package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/serve"
)

// warmPeer analyzes one corpus program into a fresh cache and serves it
// over the peer protocol, returning the peer URL, the key, and the
// reference analysis.
func warmPeer(t *testing.T, name string) (string, string, *core.ProgramData) {
	t.Helper()
	e, ok := corpus.ByName(name)
	if !ok {
		t.Fatalf("no corpus entry %q", name)
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pd, err := core.AnalyzeCached(cache, prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{})
	ts := httptest.NewServer(pc.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, artifact.Key(prog, e.RunConfig()), pd
}

// TestPeerWarmJoinZeroTraces is the cluster warm-start acceptance test: a
// replica joining with a completely cold local cache serves its first
// corpus-program analysis from a peer's cache — bit-identical profile and
// vectors, and not a single interpreter trace run locally.
func TestPeerWarmJoinZeroTraces(t *testing.T) {
	peerURL, _, ref := warmPeer(t, "bc")

	e, _ := corpus.ByName("bc")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	coldCache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	joiner := NewPeerCache(coldCache, PeerCacheConfig{Peers: []string{peerURL}})

	runsBefore := interp.TotalRuns()
	pd, err := core.AnalyzeCached(joiner, prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if delta := interp.TotalRuns() - runsBefore; delta != 0 {
		t.Fatalf("cold replica ran %d interpreter traces despite a warm peer", delta)
	}
	if !reflect.DeepEqual(pd.Profile, ref.Profile) || !reflect.DeepEqual(pd.Vectors, ref.Vectors) {
		t.Fatal("peer-warmed analysis differs from the peer's reference")
	}

	// The peer payload was installed locally: a second load is a local hit
	// even with the peer gone.
	joiner.Ring().Remove(peerURL)
	runsBefore = interp.TotalRuns()
	pd2, err := core.AnalyzeCached(joiner, prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if delta := interp.TotalRuns() - runsBefore; delta != 0 {
		t.Fatalf("local re-load after peer warm-up ran %d traces", delta)
	}
	if !reflect.DeepEqual(pd2.Profile, ref.Profile) {
		t.Fatal("locally installed entry differs from the peer's")
	}
}

// TestPeerSingleflight: concurrent cold loads of one key produce exactly
// one peer fetch.
func TestPeerSingleflight(t *testing.T) {
	peerURL, key, ref := warmPeer(t, "grep")
	var fetches atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		resp, err := http.Get(peerURL + r.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer counting.Close()

	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{Peers: []string{counting.URL}})

	// Gate every goroutine on the same starting line so they all miss
	// locally before the first fetch can install the entry.
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec, ok := pc.Load(key)
			if !ok {
				t.Error("cold load missed with a warm peer")
				return
			}
			if !reflect.DeepEqual(rec.Profile, ref.Profile) {
				t.Error("peer load returned a wrong record")
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := fetches.Load(); got != 1 {
		t.Fatalf("%d peer fetches for 8 concurrent loads of one key, want 1 (singleflight)", got)
	}
}

// TestPeerCorruptPayloadRejected: a peer serving corrupted bytes causes a
// miss — never a poisoned local cache — and a healthy peer on the same
// ring still satisfies the load.
func TestPeerCorruptPayloadRejected(t *testing.T) {
	peerURL, key, ref := warmPeer(t, "gzip")
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(peerURL + r.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		if len(buf) > 0 {
			buf[len(buf)-1] ^= 0xFF
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(buf)
	}))
	defer corrupt.Close()

	// Corrupt peer alone: clean miss, nothing installed locally.
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{Peers: []string{corrupt.URL}})
	if _, ok := pc.Load(key); ok {
		t.Fatal("corrupt peer payload served as a hit")
	}
	if _, ok := cache.Load(key); ok {
		t.Fatal("corrupt peer payload poisoned the local cache")
	}

	// Corrupt and healthy peers together: the load succeeds from the
	// healthy one regardless of ring order.
	cache2, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc2 := NewPeerCache(cache2, PeerCacheConfig{Peers: []string{corrupt.URL, peerURL}})
	rec, ok := pc2.Load(key)
	if !ok {
		t.Fatal("healthy peer not consulted after corrupt one")
	}
	if !reflect.DeepEqual(rec.Profile, ref.Profile) {
		t.Fatal("wrong record from healthy peer")
	}
}

// TestPeerFaultInjectionDegradesToMiss: an injected fault at
// cluster.peer.get skips the peer — analysis falls back to local
// recomputation, bit-identical by construction.
func TestPeerFaultInjectionDegradesToMiss(t *testing.T) {
	peerURL, key, _ := warmPeer(t, "bc")
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{Peers: []string{peerURL}})
	deactivate := faultinject.Activate(faultinject.New(5, faultinject.Rule{
		Site: "cluster.peer.get", Kind: faultinject.Error, Rate: 1,
	}))
	if _, ok := pc.Load(key); ok {
		t.Fatal("peer fetch succeeded under an injected routing fault")
	}
	deactivate()
	if _, ok := pc.Load(key); !ok {
		t.Fatal("peer fetch still failing after faults cleared")
	}
}

// TestPeerHandlerRejectsBadKeys: only well-formed hex keys reach the
// filesystem.
func TestPeerHandlerRejectsBadKeys(t *testing.T) {
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{})
	ts := httptest.NewServer(pc.Handler())
	defer ts.Close()
	for _, path := range []string{
		PeerPathPrefix + "../../etc/passwd",
		PeerPathPrefix + "short",
		PeerPathPrefix + "ZZ" + validKeyPad(62),
		"/cluster/other",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// A well-formed but absent key is a plain 404.
	resp, err := http.Get(ts.URL + PeerPathPrefix + validKeyPad(64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent key: status %d, want 404", resp.StatusCode)
	}
}

func validKeyPad(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a'
	}
	return string(b)
}

// TestPeerCountersFlowIntoServeMetrics: peer hits and misses land in the
// serving replica's Prometheus families via serve.ClusterStats.
func TestPeerCountersFlowIntoServeMetrics(t *testing.T) {
	model, _ := testModel(t)
	srv, err := serve.New(serve.Config{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	peerURL, key, _ := warmPeer(t, "grep")
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPeerCache(cache, PeerCacheConfig{Peers: []string{peerURL}, Counters: srv.ClusterStats()})
	if _, ok := pc.Load(key); !ok {
		t.Fatal("peer load missed")
	}
	if _, ok := pc.Load("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("absent key hit")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"espserve_peer_hits_total 1", "espserve_peer_misses_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
