// Package pgo turns per-branch taken-probabilities into whole-program edge
// profiles and feeds them back into the code generator — profile-guided
// optimization without profiles, the Section 6 goal the paper names
// ("program-based profile estimation using ESP") and the modern PGO-sans-
// instrumentation recipe of Rotem & Cummins. The interface mirrors the
// SML/NJ STATIC_BRANCH_PREDICTION signature: a branchProb oracle plus a
// loop multiplier yields block and edge frequencies over the IR, which
// gate conditional-move conversion and loop unrolling, drive
// likely-successor block layout, and sink predicted-cold code out of line.
//
// Any probability source plugs in: the trained ESP network, the
// Ball/Larus+Dempster-Shafer heuristic combination, a measured ("perfect")
// profile, or the uninformed 0.5 baseline — the pipeline is identical, so
// cycle deltas between sources measure exactly the value of the
// probabilities.
package pgo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/interp"
	"repro/internal/ir"
)

// ProbSource predicts the taken-probability of one static conditional
// branch site.
type ProbSource interface {
	Name() string
	Prob(s *features.Site) float64
}

// Uniform is the uninformed baseline: every branch 50/50.
type Uniform struct{}

// Name implements ProbSource.
func (Uniform) Name() string { return "uniform" }

// Prob implements ProbSource.
func (Uniform) Prob(*features.Site) float64 { return 0.5 }

// Heuristic predicts with the Ball/Larus heuristics combined under
// Dempster-Shafer evidence (the paper's strongest non-learned baseline).
type Heuristic struct{ d *heuristics.DSHC }

// NewHeuristic returns the Ball/Larus+DSHC source.
func NewHeuristic() *Heuristic { return &Heuristic{d: heuristics.NewDSHCBallLarus()} }

// Name implements ProbSource.
func (*Heuristic) Name() string { return "heuristic" }

// Prob implements ProbSource.
func (h *Heuristic) Prob(s *features.Site) float64 {
	if p, ok := h.d.TakenProbability(s); ok {
		return p
	}
	return 0.5
}

// Model predicts with a trained ESP network. Training honesty is the
// caller's concern: the pgo study trains leave-one-out, exactly like
// Table 4, so the program being optimized never sees its own profile.
type Model struct{ M *core.Model }

// Name implements ProbSource.
func (*Model) Name() string { return "esp" }

// Prob implements ProbSource.
func (m *Model) Prob(s *features.Site) float64 {
	return m.M.TakenProbability(features.Of(s))
}

// Measured is the perfect-profile source: probabilities read from a real
// profiling run of the same IR. Branches the run never executed fall back
// to 0.5 (a real profile carries no evidence about them either).
type Measured struct{ Prof *interp.Profile }

// Name implements ProbSource.
func (*Measured) Name() string { return "perfect" }

// Prob implements ProbSource.
func (m *Measured) Prob(s *features.Site) float64 {
	if c := m.Prof.Branches[s.Ref]; c != nil && c.Executed > 0 {
		return c.TakenFraction()
	}
	return 0.5
}

// SourceFactory builds a probability source for one compilation of a
// program. The pipeline estimates twice — on the baseline IR (for gating
// decisions) and on the gated optimized IR (for layout) — and static
// sources ignore the arguments, while the perfect source must re-profile
// the exact IR it is asked about.
type SourceFactory func(prog *ir.Program, ps *features.ProgramSites) (ProbSource, error)

// Fixed adapts a static source (uniform, heuristic, ESP) as a factory.
func Fixed(s ProbSource) SourceFactory {
	return func(*ir.Program, *features.ProgramSites) (ProbSource, error) { return s, nil }
}

// MeasuredFactory profiles each compilation under run and serves its
// measured taken-fractions — the perfect-profile upper bound.
func MeasuredFactory(run interp.Config) SourceFactory {
	return func(prog *ir.Program, _ *features.ProgramSites) (ProbSource, error) {
		prof, err := interp.Run(prog, run)
		if err != nil {
			return nil, fmt.Errorf("pgo: perfect-profile run of %s: %w", prog.Name, err)
		}
		return &Measured{Prof: prof}, nil
	}
}
