package cfg

// Dominator and post-dominator computation using the iterative algorithm of
// Cooper, Harvey, and Kennedy ("A Simple, Fast Dominance Algorithm"). The
// functions in this repository are small (tens to a few hundred blocks), so
// the simple algorithm is both fast enough and easy to validate against a
// naive quadratic reference in the tests.

// Idom returns the immediate-dominator array: Idom()[i] is the dense index
// of block i's immediate dominator, -1 for the entry block and for blocks
// unreachable from the entry.
func (g *Graph) Idom() []int {
	if g.idom == nil {
		g.idom = computeIdom(g.N(), g.Entry(), g.reversePostorder(), g.Pred)
	}
	return g.idom
}

// Ipdom returns the immediate-post-dominator array over the reverse CFG,
// using a virtual exit that every return block feeds into. Ipdom()[i] is -1
// for blocks that post-dominate everything on their paths (i.e. blocks whose
// immediate post-dominator is the virtual exit) as well as for blocks that
// cannot reach any exit (infinite loops).
func (g *Graph) Ipdom() []int {
	if g.ipdom == nil {
		g.ipdom = g.computeIpdom()
	}
	return g.ipdom
}

// Dominates reports whether block a dominates block b (reflexive).
func (g *Graph) Dominates(a, b int) bool {
	idom := g.Idom()
	for {
		if a == b {
			return true
		}
		if b == g.Entry() || idom[b] < 0 {
			return false
		}
		b = idom[b]
	}
}

// PostDominates reports whether block a post-dominates block b (reflexive).
func (g *Graph) PostDominates(a, b int) bool {
	ipdom := g.Ipdom()
	for {
		if a == b {
			return true
		}
		if ipdom[b] < 0 {
			return false
		}
		b = ipdom[b]
	}
}

// computeIdom runs the CHK iterative algorithm. rpo must list the nodes
// reachable from entry in reverse postorder. Unreachable nodes keep idom -1.
func computeIdom(n, entry int, rpo []int, pred [][]int) []int {
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range pred[b] {
				if idom[p] < 0 || rpoNum[p] < 0 {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1
	return idom
}

// computeIpdom computes post-dominators by running the same algorithm on the
// reverse graph extended with a virtual exit node.
func (g *Graph) computeIpdom() []int {
	n := g.N()
	exit := n // virtual exit node index
	// Reverse graph: preds of the reverse graph are the succs of the forward
	// graph; the virtual exit has an edge from every block with no forward
	// successors.
	rsucc := make([][]int, n+1) // successors in the reverse graph
	rpred := make([][]int, n+1) // predecessors in the reverse graph
	for i := 0; i < n; i++ {
		if len(g.Succ[i]) == 0 {
			rsucc[exit] = append(rsucc[exit], i)
			rpred[i] = append(rpred[i], exit)
		}
		for _, s := range g.Succ[i] {
			rsucc[s] = append(rsucc[s], i)
			rpred[i] = append(rpred[i], s)
		}
	}
	// Reverse postorder of the reverse graph from the virtual exit.
	seen := make([]bool, n+1)
	var order []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range rsucc[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(exit)
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	ipdomExt := computeIdom(n+1, exit, order, rpred)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		if ipdomExt[i] == exit || ipdomExt[i] < 0 {
			out[i] = -1
		} else {
			out[i] = ipdomExt[i]
		}
	}
	return out
}
