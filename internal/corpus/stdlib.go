package corpus

// StdlibSource is the MinC runtime library linked into every corpus
// program, playing the role of libc/libm/libFutil in the paper's traces:
// "These library routines are part of the native operating system, and not
// part of the distributed benchmark suite." Branches inside these routines
// appear in every binary with similar dynamic behaviour across programs —
// the effect the paper calls out when proposing a library-subroutine
// feature — so the evidence-based predictor can learn them from the corpus
// while the fixed heuristics treat each occurrence in isolation.
//
// Every function is prefixed lib_. Programs may not redefine these names.
const StdlibSource = `
// ---- integer math ----------------------------------------------------------

int lib_abs(int x) {
	if (x < 0) { return 0 - x; }
	return x;
}

int lib_sign(int x) {
	if (x < 0) { return 0 - 1; }
	if (x > 0) { return 1; }
	return 0;
}

int lib_max(int a, int b) {
	if (a > b) { return a; }
	return b;
}

int lib_min(int a, int b) {
	if (a < b) { return a; }
	return b;
}

int lib_clamp(int x, int lo, int hi) {
	if (x < lo) { return lo; }
	if (x > hi) { return hi; }
	return x;
}

// lib_wrap folds an index into [0, n); callers keep indices nearly in
// range, so both tests usually fail.
int lib_wrap(int i, int n) {
	if (n <= 0) { return 0; }
	while (i >= n) { i = i - n; }
	while (i < 0) { i = i + n; }
	return i;
}

int lib_gcd(int a, int b) {
	a = lib_abs(a);
	b = lib_abs(b);
	while (b != 0) {
		int t;
		t = a % b;
		a = b;
		b = t;
	}
	return a;
}

// lib_isqrt computes the integer square root by Newton iteration.
int lib_isqrt(int x) {
	int r;
	int prev;
	if (x <= 0) { return 0; }
	r = x;
	prev = 0;
	while (r != prev) {
		prev = r;
		r = (r + x / r) / 2;
	}
	return r;
}

int lib_ipow(int base, int exp) {
	int r;
	r = 1;
	while (exp > 0) {
		if (exp % 2 == 1) { r = r * base; }
		base = base * base;
		exp = exp / 2;
	}
	return r;
}

int lib_log2i(int x) {
	int l;
	l = 0;
	while (x > 1) {
		x = x / 2;
		l = l + 1;
	}
	return l;
}

int lib_bitcount(int v) {
	int c;
	c = 0;
	if (v < 0) { v = 0 - v; }
	while (v != 0) {
		if (v % 2 == 1) { c = c + 1; }
		v = v / 2;
	}
	return c;
}

int lib_median3(int a, int b, int c) {
	if (a > b) {
		int t;
		t = a;
		a = b;
		b = t;
	}
	if (b > c) { b = c; }
	if (a > b) { return a; }
	return b;
}

// ---- float math ------------------------------------------------------------

float lib_absf(float x) {
	if (x < 0.0) { return 0.0 - x; }
	return x;
}

float lib_maxf(float a, float b) {
	if (a > b) { return a; }
	return b;
}

float lib_minf(float a, float b) {
	if (a < b) { return a; }
	return b;
}

float lib_clampf(float x, float lo, float hi) {
	if (x < lo) { return lo; }
	if (x > hi) { return hi; }
	return x;
}

// lib_lerp interpolates with a clamped parameter.
float lib_lerp(float a, float b, float t) {
	if (t < 0.0) { t = 0.0; }
	if (t > 1.0) { t = 1.0; }
	return a + (b - a) * t;
}

// lib_sqrtf: Newton iterations with a convergence test that exits early.
float lib_sqrtf(float x) {
	float r;
	float prev;
	int iter;
	if (x <= 0.0) { return 0.0; }
	r = x;
	if (r > 1.0) { r = r * 0.5; }
	prev = 0.0;
	iter = 0;
	while (iter < 20) {
		prev = r;
		r = 0.5 * (r + x / r);
		float d;
		d = r - prev;
		if (d < 0.0) { d = 0.0 - d; }
		if (d < 0.000001) { return r; }
		iter = iter + 1;
	}
	return r;
}

// ---- hashing and formatting -------------------------------------------------

// lib_hash mixes an integer key; the negative-fold branch almost never
// fires because callers hash non-negative values.
int lib_hash(int x) {
	int h;
	h = x * 2654435761 % 1000003;
	if (h < 0) { h = h + 1000003; }
	return h;
}

int lib_hash2(int a, int b) {
	return lib_hash(a * 31 + b);
}

// lib_fmtint returns the width of the decimal rendering (sign included),
// like the inner loop of printf's %d.
int lib_fmtint(int v) {
	int w;
	w = 0;
	if (v < 0) {
		w = 1;
		v = 0 - v;
	}
	if (v == 0) { return w + 1; }
	while (v > 0) {
		v = v / 10;
		w = w + 1;
	}
	return w;
}

// lib_report formats and emits a value; the standard output path of every
// corpus program.
void lib_report(int v) {
	int w;
	w = lib_fmtint(v);
	if (w > 18) { w = 18; }
	__print(v);
}

// lib_reportf emits a float, flushing denormal-scale noise to zero.
void lib_reportf(float v) {
	float a;
	a = lib_absf(v);
	if (a < 0.000000000001) {
		__printf(0.0);
	} else {
		__printf(v);
	}
}

// ---- array utilities --------------------------------------------------------

void lib_memset(int* p, int v, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		p[i] = v;
	}
}

void lib_memcpy(int* dst, int* src, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		dst[i] = src[i];
	}
}

// lib_memcmp compares two buffers, exiting at the first difference.
int lib_memcmp(int* a, int* b, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		if (a[i] != b[i]) {
			if (a[i] < b[i]) { return 0 - 1; }
			return 1;
		}
	}
	return 0;
}

int lib_sum(int* p, int n) {
	int s;
	int i;
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		s = s + p[i];
	}
	return s;
}

int lib_maxidx(int* p, int n) {
	int best;
	int i;
	best = 0;
	for (i = 1; i < n; i = i + 1) {
		if (p[i] > p[best]) { best = i; }
	}
	return best;
}

// lib_bsearch over a sorted array; returns the index or -1.
int lib_bsearch(int* p, int n, int key) {
	int lo;
	int hi;
	lo = 0;
	hi = n - 1;
	while (lo <= hi) {
		int mid;
		mid = (lo + hi) / 2;
		if (p[mid] == key) { return mid; }
		if (p[mid] < key) {
			lo = mid + 1;
		} else {
			hi = mid - 1;
		}
	}
	return 0 - 1;
}

// lib_sortsmall: insertion sort for small runs (qsort's base case).
void lib_sortsmall(int* p, int n) {
	int i;
	for (i = 1; i < n; i = i + 1) {
		int v;
		int j;
		v = p[i];
		j = i - 1;
		while (j >= 0 && p[j] > v) {
			p[j + 1] = p[j];
			j = j - 1;
		}
		p[j + 1] = v;
	}
}

// lib_checksum folds a buffer into one value (Adler-ish).
int lib_checksum(int* p, int n) {
	int a;
	int b;
	int i;
	a = 1;
	b = 0;
	for (i = 0; i < n; i = i + 1) {
		a = (a + lib_abs(p[i])) % 65521;
		b = (b + a) % 65521;
		if (b < 0) { b = b + 65521; }
	}
	return b * 65536 + a;
}
`
