package ir

import "fmt"

// Op identifies an IR instruction opcode. The instruction set is modeled on
// the DEC Alpha AXP (the paper's evaluation architecture): integer and
// floating-point ALU operations, compares that write a register, loads and
// stores, conditional branches that compare a single register against zero,
// and direct calls. A small number of MIPS-style extensions (two-register
// branch forms) exist so the cross-architecture study of Table 6 can be
// reproduced; the Alpha-style code generator never emits them.
type Op int

const (
	OpInvalid Op = iota

	// Integer ALU. Dst = A op B (or A op Imm when UseImm is set).
	OpAddQ
	OpSubQ
	OpMulQ
	OpDivQ
	OpRemQ
	OpAndQ
	OpOrQ
	OpXorQ
	OpSllQ
	OpSrlQ

	// Integer compares, writing 1 or 0 to Dst.
	OpCmpEq
	OpCmpLt
	OpCmpLe

	// Constants and addresses.
	OpLdiQ // Dst = Imm (integer literal)
	OpLda  // Dst = address of global Sym + Imm
	OpMov  // Dst = A

	// Conditional moves (the Alpha feature the paper credits with removing
	// short conditional branches; see Section 5.2).
	OpCmovEq  // if A == 0 then Dst = B
	OpCmovNe  // if A != 0 then Dst = B
	OpFCmovEq // if A (float) == 0 then Dst = B (float registers)
	OpFCmovNe // if A (float) != 0 then Dst = B (float registers)

	// Memory. Addresses are word offsets: effective address = A + Imm.
	OpLdq // Dst = mem[A+Imm] (integer)
	OpStq // mem[A+Imm] = B (integer)
	OpLdt // Dst = mem[A+Imm] (float)
	OpStt // mem[A+Imm] = B (float)

	// Floating point ALU.
	OpAddT
	OpSubT
	OpMulT
	OpDivT
	OpFAbs
	OpFNeg
	OpFMov
	OpLdiT  // Dst = float literal (bits in Imm)
	OpCvtQT // Dst(float) = float(A(int))
	OpCvtTQ // Dst(int) = trunc(A(float))

	// Floating point compares; per the Alpha, the boolean result is written
	// to a floating-point register (as 0.0 or 1.0) and tested by FB* branches.
	OpCmpTEq
	OpCmpTLt
	OpCmpTLe

	// Conditional branches, Alpha style: compare one register against zero.
	// Target is the taken-successor block ID; fall-through is the next block
	// in layout order.
	OpBeq
	OpBne
	OpBlt
	OpBle
	OpBgt
	OpBge
	OpFbeq
	OpFbne
	OpFblt
	OpFble
	OpFbgt
	OpFbge

	// Conditional branches, MIPS style: compare two registers directly.
	OpBeq2 // taken if A == B
	OpBne2 // taken if A != B

	// Control transfer.
	OpBr     // unconditional branch to Target
	OpJmp    // indirect jump (jump-table); interpreter resolves via A
	OpBsr    // direct call to function Sym
	OpJsr    // indirect call (unused by the code generator; kept for fidelity)
	OpRet    // return; value in R0 / F0 by convention
	OpRtcall // runtime intrinsic call; Imm selects the Runtime function
)

// Runtime intrinsic identifiers for OpRtcall.
const (
	RtAlloc  = iota // R0 = address of a fresh zeroed heap block of R16 words
	RtInput         // R0 = input word R16 of the program's input vector
	RtPrint         // record R16 as program output (integer)
	RtPrintF        // record F16 as program output (float)
	RtRand          // R0 = next value of the deterministic per-run LCG
	numRuntime
)

// OpClass partitions opcodes for feature extraction and heuristic analysis.
type OpClass int

const (
	ClassInvalid OpClass = iota
	ClassIntALU
	ClassIntCmp
	ClassConst
	ClassMove
	ClassCmov
	ClassLoad
	ClassStore
	ClassFloatALU
	ClassFloatCmp
	ClassCondBranch
	ClassUncondBranch
	ClassIndirectJump
	ClassCall
	ClassIndirectCall
	ClassReturn
	ClassRuntime
)

type opInfo struct {
	name  string
	class OpClass
	// float marks opcodes whose Dst (for ALU/compare) or tested register
	// (for branches) is a floating-point register.
	float bool
}

var opTable = [...]opInfo{
	OpInvalid: {"invalid", ClassInvalid, false},

	OpAddQ: {"addq", ClassIntALU, false},
	OpSubQ: {"subq", ClassIntALU, false},
	OpMulQ: {"mulq", ClassIntALU, false},
	OpDivQ: {"divq", ClassIntALU, false},
	OpRemQ: {"remq", ClassIntALU, false},
	OpAndQ: {"andq", ClassIntALU, false},
	OpOrQ:  {"orq", ClassIntALU, false},
	OpXorQ: {"xorq", ClassIntALU, false},
	OpSllQ: {"sllq", ClassIntALU, false},
	OpSrlQ: {"srlq", ClassIntALU, false},

	OpCmpEq: {"cmpeq", ClassIntCmp, false},
	OpCmpLt: {"cmplt", ClassIntCmp, false},
	OpCmpLe: {"cmple", ClassIntCmp, false},

	OpLdiQ: {"ldiq", ClassConst, false},
	OpLda:  {"lda", ClassConst, false},
	OpMov:  {"mov", ClassMove, false},

	OpCmovEq:  {"cmoveq", ClassCmov, false},
	OpCmovNe:  {"cmovne", ClassCmov, false},
	OpFCmovEq: {"fcmoveq", ClassCmov, true},
	OpFCmovNe: {"fcmovne", ClassCmov, true},

	OpLdq: {"ldq", ClassLoad, false},
	OpStq: {"stq", ClassStore, false},
	OpLdt: {"ldt", ClassLoad, true},
	OpStt: {"stt", ClassStore, true},

	OpAddT:  {"addt", ClassFloatALU, true},
	OpSubT:  {"subt", ClassFloatALU, true},
	OpMulT:  {"mult", ClassFloatALU, true},
	OpDivT:  {"divt", ClassFloatALU, true},
	OpFAbs:  {"fabs", ClassFloatALU, true},
	OpFNeg:  {"fneg", ClassFloatALU, true},
	OpFMov:  {"fmov", ClassMove, true},
	OpLdiT:  {"ldit", ClassConst, true},
	OpCvtQT: {"cvtqt", ClassFloatALU, true},
	OpCvtTQ: {"cvttq", ClassIntALU, false},

	OpCmpTEq: {"cmpteq", ClassFloatCmp, true},
	OpCmpTLt: {"cmptlt", ClassFloatCmp, true},
	OpCmpTLe: {"cmptle", ClassFloatCmp, true},

	OpBeq:  {"beq", ClassCondBranch, false},
	OpBne:  {"bne", ClassCondBranch, false},
	OpBlt:  {"blt", ClassCondBranch, false},
	OpBle:  {"ble", ClassCondBranch, false},
	OpBgt:  {"bgt", ClassCondBranch, false},
	OpBge:  {"bge", ClassCondBranch, false},
	OpFbeq: {"fbeq", ClassCondBranch, true},
	OpFbne: {"fbne", ClassCondBranch, true},
	OpFblt: {"fblt", ClassCondBranch, true},
	OpFble: {"fble", ClassCondBranch, true},
	OpFbgt: {"fbgt", ClassCondBranch, true},
	OpFbge: {"fbge", ClassCondBranch, true},

	OpBeq2: {"beq2", ClassCondBranch, false},
	OpBne2: {"bne2", ClassCondBranch, false},

	OpBr:     {"br", ClassUncondBranch, false},
	OpJmp:    {"jmp", ClassIndirectJump, false},
	OpBsr:    {"bsr", ClassCall, false},
	OpJsr:    {"jsr", ClassIndirectCall, false},
	OpRet:    {"ret", ClassReturn, false},
	OpRtcall: {"rtcall", ClassRuntime, false},
}

// NumOps is the number of defined opcodes (including OpInvalid).
const NumOps = int(OpRtcall) + 1

func (o Op) valid() bool { return o > OpInvalid && int(o) < len(opTable) }

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if !o.valid() {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opTable[o].name
}

// Class returns the opcode's classification.
func (o Op) Class() OpClass {
	if !o.valid() {
		return ClassInvalid
	}
	return opTable[o].class
}

// IsFloat reports whether the opcode operates on floating-point registers.
func (o Op) IsFloat() bool {
	if !o.valid() {
		return false
	}
	return opTable[o].float
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o.Class() == ClassCondBranch }

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	switch o.Class() {
	case ClassCondBranch, ClassUncondBranch, ClassIndirectJump, ClassReturn:
		return true
	}
	return false
}

// IsCall reports whether the opcode transfers control to a procedure and
// returns (direct or indirect).
func (o Op) IsCall() bool {
	c := o.Class()
	return c == ClassCall || c == ClassIndirectCall
}

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsCompare reports whether the opcode is an integer or float compare that
// writes a boolean register result.
func (o Op) IsCompare() bool {
	c := o.Class()
	return c == ClassIntCmp || c == ClassFloatCmp
}

// IsTwoRegBranch reports whether the opcode is a MIPS-style branch that
// compares two registers directly.
func (o Op) IsTwoRegBranch() bool { return o == OpBeq2 || o == OpBne2 }

// BranchNegate returns the conditional branch opcode with the opposite
// condition, e.g. beq <-> bne. It panics if o is not a conditional branch.
func (o Op) BranchNegate() Op {
	switch o {
	case OpBeq:
		return OpBne
	case OpBne:
		return OpBeq
	case OpBlt:
		return OpBge
	case OpBge:
		return OpBlt
	case OpBle:
		return OpBgt
	case OpBgt:
		return OpBle
	case OpFbeq:
		return OpFbne
	case OpFbne:
		return OpFbeq
	case OpFblt:
		return OpFbge
	case OpFbge:
		return OpFblt
	case OpFble:
		return OpFbgt
	case OpFbgt:
		return OpFble
	case OpBeq2:
		return OpBne2
	case OpBne2:
		return OpBeq2
	}
	panic("ir: BranchNegate on non-branch opcode " + o.String())
}
