package serve

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

// quantTestServer builds a server over a calibrated, quant-enabled copy of
// the fixture model.
func quantTestServer(t testing.TB, cfg Config) *Server {
	model, data := testModel(t)
	qm := core.Train(data, core.Config{Hidden: 8, Net: model.Cfg.Net})
	if _, err := core.CalibrateQuant(qm, data, nil); err != nil {
		t.Fatal(err)
	}
	if err := qm.EnableQuant(); err != nil {
		t.Fatal(err)
	}
	cfg.Model = qm
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func benchBody(t testing.TB, nvec int) []byte {
	_, data := testModel(t)
	vecs := data[0].Vectors
	for len(vecs) < nvec {
		vecs = append(vecs, vecs...)
	}
	body, err := json.Marshal(PredictRequest{ID: "bench", Vectors: vectorValues(vecs[:nvec])})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestPredictPipelineMatchesReference pins the two exported pipelines to
// each other: same request, same predictions, on the same quant-enabled
// server (the reference pipeline runs whatever model the server holds, so
// both paths answer from the int8 model and must agree bit for bit).
func TestPredictPipelineMatchesReference(t *testing.T) {
	s := quantTestServer(t, Config{Workers: 1, MaxBatch: 4})
	body := benchBody(t, 6)
	ctx := context.Background()

	fast, err := s.PredictPipeline(ctx, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.PredictPipelineReference(ctx, body)
	if err != nil {
		t.Fatal(err)
	}
	var fastResp, refResp PredictResponse
	if err := json.Unmarshal(fast, &fastResp); err != nil {
		t.Fatalf("fast-path response is not JSON: %v\n%s", err, fast)
	}
	if err := json.Unmarshal(ref, &refResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fastResp, refResp) {
		t.Fatalf("pipelines disagree:\nfast %+v\nref  %+v", fastResp, refResp)
	}

	if _, err := s.PredictPipeline(ctx, []byte(`{"source":"int f(){}"}`), nil); err == nil {
		t.Fatal("PredictPipeline accepted a non-vectors request")
	}
}

// TestQuantServePipelineSpeedup is the PR's acceptance measurement: the
// quantized arena pipeline must serve ≥ 5x the predictions/sec/core of the
// committed float baseline (encoding/json + float64 forward), with zero
// steady-state allocations. Runs in the race-enabled CI load matrix — both
// pipelines carry the instrumentation, so the ratio survives it; the alloc
// assertion alone needs a plain build. espbench -serve records the same
// two measurements in BENCH_serve.json.
func TestQuantServePipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline speedup measurement in short mode")
	}
	model, _ := testModel(t)
	ref, err := New(Config{Model: model, Workers: 1, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast := quantTestServer(t, Config{Workers: 1, MaxBatch: 1})
	body := benchBody(t, 4)
	ctx := context.Background()

	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ref.PredictPipelineReference(ctx, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	var out []byte
	fastRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			out, err = fast.PredictPipeline(ctx, body, out)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(refRes.NsPerOp()) / float64(fastRes.NsPerOp())
	t.Logf("float reference %d ns/req, quant arena %d ns/req: %.1fx, %d allocs/op",
		refRes.NsPerOp(), fastRes.NsPerOp(), speedup, fastRes.AllocsPerOp())
	// Race instrumentation taxes the compute-bound int8 path per memory
	// access while the json path's cost is mostly allocation, so the race
	// build compresses the ratio; it keeps a regression tripwire while the
	// plain build (what espbench -serve records) asserts the real bound.
	want := 5.0
	if testutil.RaceEnabled {
		want = 2.0
	}
	if speedup < want {
		t.Errorf("quantized pipeline speedup %.2fx, want >= %.0fx", speedup, want)
	}
	if !testutil.RaceEnabled && fastRes.AllocsPerOp() != 0 {
		t.Errorf("steady-state pipeline allocates %d per request, want 0", fastRes.AllocsPerOp())
	}
}

func BenchmarkPipelineReferenceFloat(b *testing.B) {
	model, _ := testModel(b)
	s, err := New(Config{Model: model, Workers: 1, MaxBatch: 1})
	if err != nil {
		b.Fatal(err)
	}
	body := benchBody(b, 4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PredictPipelineReference(ctx, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*4), "ns/prediction")
}

func BenchmarkPipelineArenaQuant(b *testing.B) {
	s := quantTestServer(b, Config{Workers: 1, MaxBatch: 1})
	body := benchBody(b, 4)
	ctx := context.Background()
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = s.PredictPipeline(ctx, body, out)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*4), "ns/prediction")
}
