package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// buildFunc assembles a function from an adjacency list. Every block gets a
// terminator: two successors become a conditional branch (first successor
// taken, second must be the next block in layout), one successor an
// unconditional branch, zero a return.
func buildFunc(t *testing.T, succs [][]int) *ir.Func {
	t.Helper()
	fn := &ir.Func{Name: "f", Language: ir.LangC}
	for i := range succs {
		fn.Blocks = append(fn.Blocks, &ir.Block{ID: i})
	}
	for i, ss := range succs {
		b := fn.Blocks[i]
		switch len(ss) {
		case 0:
			b.Insns = append(b.Insns, ir.Instr{Op: ir.OpRet})
		case 1:
			b.Insns = append(b.Insns, ir.Instr{Op: ir.OpBr, Target: ss[0]})
		case 2:
			if ss[1] != i+1 {
				t.Fatalf("block %d: fall-through successor %d must be next block %d", i, ss[1], i+1)
			}
			b.Insns = append(b.Insns, ir.Instr{Op: ir.OpBne, A: ir.R(1), Target: ss[0]})
		default:
			t.Fatalf("block %d: too many successors", i)
		}
	}
	return fn
}

// naiveDominators computes dominator sets by the quadratic dataflow
// definition — the reference the fast algorithm is checked against.
func naiveDominators(g *Graph) [][]bool {
	n := g.N()
	dom := make([][]bool, n)
	reach := make([]bool, n)
	var mark func(int)
	mark = func(u int) {
		if reach[u] {
			return
		}
		reach[u] = true
		for _, v := range g.Succ[u] {
			mark(v)
		}
	}
	mark(g.Entry())
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = reach[i] // start full for reachable nodes
		}
	}
	for j := range dom[g.Entry()] {
		dom[g.Entry()][j] = j == g.Entry()
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if b == g.Entry() || !reach[b] {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range g.Pred[b] {
				if !reach[p] {
					continue
				}
				if first {
					copy(next, dom[p])
					first = false
				} else {
					for j := range next {
						next[j] = next[j] && dom[p][j]
					}
				}
			}
			next[b] = true
			for j := range next {
				if next[j] != dom[b][j] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func checkDominatorsAgainstNaive(t *testing.T, g *Graph) {
	t.Helper()
	ref := naiveDominators(g)
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if !g.Reachable(b) || !g.Reachable(a) {
				continue
			}
			want := ref[b][a]
			if got := g.Dominates(a, b); got != want {
				t.Errorf("Dominates(%d, %d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1,2 -> 3
	fn := buildFunc(t, [][]int{{2, 1}, {3}, {3}, {}})
	g := New(fn)
	checkDominatorsAgainstNaive(t, g)
	if !g.Dominates(0, 3) || g.Dominates(1, 3) || g.Dominates(2, 3) {
		t.Error("diamond dominators wrong")
	}
	// Post-dominators: 3 post-dominates everything.
	for b := 0; b < 4; b++ {
		if !g.PostDominates(3, b) {
			t.Errorf("3 must post-dominate %d", b)
		}
	}
	if g.PostDominates(1, 0) || g.PostDominates(2, 0) {
		t.Error("branch arms must not post-dominate the entry")
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 (header); 1 -> 2,3(exit)? layout: 0,1,2,3
	// 1 branches to 2 (taken)=wait: need fallthrough = next block.
	// Use: 0->1; 1 cond (taken 3, fall 2); 2 -> 1 (back edge); 3 ret.
	fn := buildFunc(t, [][]int{{1}, {3, 2}, {1}, {}})
	g := New(fn)
	checkDominatorsAgainstNaive(t, g)
	li := g.Loops()
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != 1 {
		t.Errorf("loop header = %d, want 1", l.Header)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Errorf("loop body wrong: %v", l.Blocks)
	}
	if !g.IsBackEdge(2, 1) {
		t.Error("2->1 must be a back edge")
	}
	if g.IsBackEdge(1, 2) {
		t.Error("1->2 must not be a back edge")
	}
	if !g.IsLoopExitEdge(1, 3) {
		t.Error("1->3 must be a loop exit edge")
	}
	if g.IsLoopExitEdge(1, 2) {
		t.Error("1->2 must not be a loop exit edge")
	}
	if li.Depth(2) != 1 || li.Depth(3) != 0 {
		t.Error("loop depths wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1(outer hdr); 1 cond(4 exit, fall 2); 2(inner hdr) cond(taken 2? )
	// Build: 0->1; 1 cond (taken 5, fall 2); 2 cond (taken 4, fall 3);
	// 3 -> 2 (inner back edge); 4 -> 1 (outer back edge); 5 ret.
	fn := buildFunc(t, [][]int{{1}, {5, 2}, {4, 3}, {2}, {1}, {}})
	g := New(fn)
	checkDominatorsAgainstNaive(t, g)
	li := g.Loops()
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	inner := li.HeaderLoop(2)
	outer := li.HeaderLoop(1)
	if inner == nil || outer == nil {
		t.Fatal("missing header loops")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent must be the outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d, %d; want 2, 1", inner.Depth, outer.Depth)
	}
	if li.Innermost(3) != inner {
		t.Error("block 3 must belong to the inner loop")
	}
	if li.Innermost(4) != outer {
		t.Error("block 4 must belong to the outer loop only")
	}
}

// TestDominatorsRandom cross-checks the CHK algorithm against the naive
// reference on many random CFGs.
func TestDominatorsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		succs := make([][]int, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				succs[i] = nil // return
			case 1:
				succs[i] = []int{rng.Intn(n)}
			case 2:
				if i+1 < n {
					succs[i] = []int{rng.Intn(n), i + 1}
				} else {
					succs[i] = []int{rng.Intn(n)}
				}
			}
		}
		fn := buildFunc(t, succs)
		g := New(fn)
		checkDominatorsAgainstNaive(t, g)
		// Idom sanity: the immediate dominator strictly dominates its node.
		idom := g.Idom()
		for b := 0; b < n; b++ {
			if idom[b] < 0 {
				continue
			}
			if !g.Dominates(idom[b], b) {
				t.Fatalf("trial %d: idom(%d)=%d does not dominate", trial, b, idom[b])
			}
		}
		// Loop invariant: every back edge targets its loop's header and the
		// header dominates the whole body.
		li := g.Loops()
		for _, l := range li.Loops {
			for b := range l.Blocks {
				if !g.Dominates(l.Header, b) {
					t.Fatalf("trial %d: loop header %d does not dominate body block %d", trial, l.Header, b)
				}
			}
			for _, latch := range l.Latches {
				if !l.Contains(latch) {
					t.Fatalf("trial %d: latch %d outside loop", trial, latch)
				}
			}
		}
	}
}

func TestPostDominatorsInfiniteLoop(t *testing.T) {
	// 0 -> 1; 1 -> 1 (no exit). Post-dominators must not crash and the
	// unexitable block post-dominates only itself.
	fn := buildFunc(t, [][]int{{1}, {1}})
	g := New(fn)
	if !g.PostDominates(1, 1) {
		t.Error("block must post-dominate itself")
	}
	if g.PostDominates(0, 1) {
		t.Error("0 must not post-dominate 1")
	}
}

func TestUncondChains(t *testing.T) {
	// 0 -> 1 -> 2(header); 2 cond(taken 4, fall 3); 3 -> 2; 4 ret
	fn := buildFunc(t, [][]int{{1}, {2}, {4, 3}, {2}, {}})
	g := New(fn)
	if !g.ReachesLoopHeaderUncond(0) {
		t.Error("0 unconditionally reaches the loop header via 1")
	}
	if !g.ReachesLoopHeaderUncond(2) {
		t.Error("the header itself reaches a loop header")
	}
	if g.ReachesLoopHeaderUncond(4) {
		t.Error("the exit block does not reach a header")
	}
	// Call chains.
	fn.Blocks[1].Insns = append([]ir.Instr{{Op: ir.OpBsr, Sym: "x"}}, fn.Blocks[1].Insns...)
	g2 := New(fn)
	if !g2.ReachesCallUncond(0) {
		t.Error("0 unconditionally reaches the call in 1")
	}
	if g2.ReachesCallUncond(3) {
		t.Error("3 has no call on its unconditional path")
	}
	if !g2.ContainsReturn(4) {
		t.Error("4 contains a return")
	}
	if g2.ContainsReturn(3) {
		t.Error("3 does not reach a return unconditionally")
	}
}

func TestPointerAnalysisBasics(t *testing.T) {
	// main: R1 = &g; store R1 to slot 0; load slot 0 -> R2; branch on R2.
	fb := ir.NewFuncBuilder("main", ir.LangC)
	fb.Lda(ir.R(1), "g", 0)
	fb.Emit(ir.Instr{Op: ir.OpStq, A: ir.RegSP, B: ir.R(1), Imm: 0})
	fb.Emit(ir.Instr{Op: ir.OpLdq, Dst: ir.R(2), A: ir.RegSP, Imm: 0})
	nb := fb.NewBlockDetached()
	fb.Branch(ir.OpBeq, ir.R(2), nb)
	fb.Place(nb)
	fb.SetBlock(nb)
	fb.Ret()
	fn := fb.Func()
	fn.FrameSize = 1
	g := New(fn)
	pi := g.Pointers()
	// The branch is instruction 3 of block 0; operand A must be a pointer.
	if !pi.OperandIsPointer(0, 3, 0) {
		t.Error("loaded pointer not detected at the branch")
	}
	// The LDA destination itself.
	if pi.OperandIsPointer(0, 0, 0) {
		t.Error("LDA's own operand is not a pointer read")
	}
}

func TestProgramPointersInterprocedural(t *testing.T) {
	// callee(p): branch on A0 (pointer passed by main through a call).
	calleeB := ir.NewFuncBuilder("callee", ir.LangC)
	nb := calleeB.NewBlockDetached()
	calleeB.Branch(ir.OpBeq, ir.RegA0, nb)
	calleeB.Place(nb)
	calleeB.SetBlock(nb)
	calleeB.Ret()

	mainB := ir.NewFuncBuilder("main", ir.LangC)
	mainB.Lda(ir.R(1), "g", 0)
	mainB.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegA0, A: ir.R(1)})
	mainB.Call("callee")
	mainB.Ret()

	prog := &ir.Program{Name: "t",
		Funcs:   []*ir.Func{mainB.Func(), calleeB.Func()},
		Globals: []ir.Global{{Name: "g", Size: 1}}}
	graphs := map[string]*Graph{
		"main":   New(prog.Funcs[0]),
		"callee": New(prog.Funcs[1]),
	}
	infos := ProgramPointers(prog, graphs)
	pi := infos["callee"]
	if pi == nil {
		t.Fatal("no pointer info for callee")
	}
	if !pi.OperandIsPointer(0, 0, 0) {
		t.Error("pointer argument not propagated to the callee's branch")
	}
}

func TestAllocAndReturnPointerPropagation(t *testing.T) {
	// alloc result is a pointer; a function returning it marks callers.
	mk := ir.NewFuncBuilder("mk", ir.LangC)
	mk.LoadInt(ir.RegA0, 4)
	mk.Emit(ir.Instr{Op: ir.OpRtcall, Imm: ir.RtAlloc})
	mk.Ret() // V0 = alloc result

	mainB := ir.NewFuncBuilder("main", ir.LangC)
	mainB.Call("mk")
	mainB.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.R(1), A: ir.RegV0})
	nb := mainB.NewBlockDetached()
	mainB.Branch(ir.OpBne, ir.R(1), nb)
	mainB.Place(nb)
	mainB.SetBlock(nb)
	mainB.Ret()

	prog := &ir.Program{Name: "t", Funcs: []*ir.Func{mainB.Func(), mk.Func()}}
	graphs := map[string]*Graph{
		"main": New(prog.Funcs[0]),
		"mk":   New(prog.Funcs[1]),
	}
	infos := ProgramPointers(prog, graphs)
	pi := infos["main"]
	// The branch is instruction 2 of block 0 in main.
	if !pi.OperandIsPointer(0, 2, 0) {
		t.Error("pointer-returning call not propagated to the caller's branch")
	}
}
