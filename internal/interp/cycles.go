package interp

import (
	"errors"
	"fmt"

	"repro/internal/ir"
)

// CostModel assigns simulated cycle costs to the IR instruction set, an
// in-order Alpha-flavored scoreboard: every executed instruction pays a
// per-class base cost, every *taken* control transfer pays a front-end
// fetch-redirect penalty, and conditional branches additionally pay a
// misprediction penalty whenever the BTFNT static predictor (backward
// taken, forward not-taken — the paper's hardware baseline) guesses the
// wrong direction. The model is what profile-guided layout optimizes
// against: making the likely successor the fall-through removes taken
// redirects, and because BTFNT predicts forward branches not-taken, it
// removes mispredicts at the same time.
type CostModel struct {
	IntALU   int64 // add/sub/logical/shift and integer compares
	IntMul   int64
	IntDiv   int64 // divq, remq
	FloatALU int64 // addt/subt/mult, conversions, fabs/fneg, float compares
	FloatDiv int64
	Load     int64
	Store    int64
	Move     int64 // mov/fmov, constants, addresses, conditional moves
	Branch   int64 // issue cost of any branch or jump
	Call     int64 // extra issue cost of bsr/ret linkage
	Runtime  int64 // rtcall intrinsic

	// TakenRedirect is the fetch-bubble cost of any taken control transfer
	// (taken conditional branch, br, jmp, call, return).
	TakenRedirect int64
	// Mispredict is the additional penalty when BTFNT predicts a
	// conditional branch's direction wrong.
	Mispredict int64
}

// DefaultCostModel returns the scoreboard used by the pgo study and the
// espbench -pgo table. The values are EV4/EV5-flavored textbook latencies;
// results are only ever compared under one model, so relative deltas —
// not the absolute constants — are what the study reports.
func DefaultCostModel() CostModel {
	return CostModel{
		IntALU:        1,
		IntMul:        8,
		IntDiv:        40,
		FloatALU:      4,
		FloatDiv:      24,
		Load:          3,
		Store:         1,
		Move:          1,
		Branch:        1,
		Call:          2,
		Runtime:       20,
		TakenRedirect: 2,
		Mispredict:    8,
	}
}

// opCost returns the base issue cost of one executed instruction.
func (cm CostModel) opCost(op ir.Op) int64 {
	switch op {
	case ir.OpMulQ:
		return cm.IntMul
	case ir.OpDivQ, ir.OpRemQ:
		return cm.IntDiv
	case ir.OpDivT:
		return cm.FloatDiv
	}
	switch op.Class() {
	case ir.ClassIntALU, ir.ClassIntCmp:
		return cm.IntALU
	case ir.ClassFloatALU, ir.ClassFloatCmp:
		return cm.FloatALU
	case ir.ClassLoad:
		return cm.Load
	case ir.ClassStore:
		return cm.Store
	case ir.ClassConst, ir.ClassMove, ir.ClassCmov:
		return cm.Move
	case ir.ClassCondBranch, ir.ClassUncondBranch, ir.ClassIndirectJump:
		return cm.Branch
	case ir.ClassCall, ir.ClassIndirectCall, ir.ClassReturn:
		return cm.Call
	case ir.ClassRuntime:
		return cm.Runtime
	}
	return cm.IntALU
}

// ErrNoEdgeProfile is returned by CycleCount when the profile was collected
// without Config.CollectEdges (per-block dynamic counts cannot be derived).
var ErrNoEdgeProfile = errors.New("interp: cycle counting needs a profile collected with CollectEdges")

// CycleCount replays a measured profile through the default cost model.
// See CycleCountModel.
func CycleCount(p *ir.Program, prof *Profile) (int64, error) {
	return CycleCountModel(p, prof, DefaultCostModel())
}

// CycleCountModel computes the simulated cycle count of one execution from
// its profile, without re-running the program: a block's dynamic count is
// its function's activation count (entry block) plus the sum of its
// measured incoming edges, and every reachable instruction of the block
// (the same blockEnd prefix the micro-op lowering charges fuel for) is
// costed per the model. Conditional-branch penalties come from the
// per-site taken counts; a branch is BTFNT-predicted taken exactly when
// its target does not lie later in layout order than the branch block.
//
// The computation is exact, and checked: the derived per-block counts must
// reproduce prof.Insns instruction-for-instruction, so a profile that does
// not match the program (or a layout pass that corrupted edge structure)
// is an error, never a silently wrong number.
func CycleCountModel(p *ir.Program, prof *Profile, cm CostModel) (int64, error) {
	if prof.Edges == nil || prof.Calls == nil {
		return 0, ErrNoEdgeProfile
	}
	// Bucket incoming-edge counts by function and destination block.
	incoming := make(map[string]map[int]int64, len(p.Funcs))
	for e, n := range prof.Edges {
		m := incoming[e.Func]
		if m == nil {
			m = make(map[int]int64)
			incoming[e.Func] = m
		}
		m[e.To] += n
	}
	var cycles, insns int64
	for _, f := range p.Funcs {
		in := incoming[f.Name]
		for i, b := range f.Blocks {
			dyn := in[b.ID]
			if i == 0 {
				dyn += prof.Calls[f.Name]
			}
			if dyn == 0 {
				continue
			}
			end := blockEnd(b.Insns)
			insns += dyn * int64(end)
			for k := 0; k < end; k++ {
				op := b.Insns[k].Op
				cycles += dyn * cm.opCost(op)
				switch op.Class() {
				case ir.ClassUncondBranch, ir.ClassIndirectJump,
					ir.ClassCall, ir.ClassIndirectCall, ir.ClassReturn:
					// Unconditionally taken transfers always redirect fetch.
					cycles += dyn * cm.TakenRedirect
				}
			}
			if br := b.Branch(); br != nil {
				c := prof.Branches[ir.BranchRef{Func: f.Name, Block: b.ID}]
				if c == nil {
					return 0, fmt.Errorf("interp: no branch counts for %s:b%d", f.Name, b.ID)
				}
				if c.Executed != dyn {
					return 0, fmt.Errorf("interp: %s:b%d executed %d times but derived count is %d",
						f.Name, b.ID, c.Executed, dyn)
				}
				notTaken := c.Executed - c.Taken
				cycles += c.Taken * cm.TakenRedirect
				if backward := f.LayoutIndex(br.Target) <= i; backward {
					cycles += notTaken * cm.Mispredict // predicted taken, fell through
				} else {
					cycles += c.Taken * cm.Mispredict // predicted not-taken, taken
				}
			}
		}
	}
	if insns != prof.Insns {
		return 0, fmt.Errorf("interp: derived %d dynamic instructions, profile recorded %d (profile does not match program)",
			insns, prof.Insns)
	}
	return cycles, nil
}
