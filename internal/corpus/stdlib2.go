package corpus

// Stdlib2Source is the second half of the linked runtime: the libm/libutil
// analog (sorting, heaps, hash tables, string-ish buffers, vector math,
// run-length coding, sampling). Like StdlibSource it is linked into every
// corpus binary, so its branch sites appear in every program's static site
// count — exactly as the paper's statically-linked OS libraries did — and
// the programs that call it on warm paths give the corpus shared dynamic
// behaviour for ESP to learn.
const Stdlib2Source = `
// ---- sorting and selection --------------------------------------------------

// lib_qsort: quicksort with median-of-three pivots and an insertion-sort
// cutoff for small runs, like every libc qsort.
void lib_qsort(int* a, int lo, int hi) {
	while (hi - lo >= 12) {
		int pivot;
		int i;
		int j;
		pivot = lib_median3(a[lo], a[(lo + hi) / 2], a[hi]);
		i = lo;
		j = hi;
		while (i <= j) {
			while (a[i] < pivot) { i = i + 1; }
			while (a[j] > pivot) { j = j - 1; }
			if (i <= j) {
				int t;
				t = a[i];
				a[i] = a[j];
				a[j] = t;
				i = i + 1;
				j = j - 1;
			}
		}
		// Recurse on the smaller side, loop on the larger (bounded stack).
		if (j - lo < hi - i) {
			lib_qsort(a, lo, j);
			lo = i;
		} else {
			lib_qsort(a, i, hi);
			hi = j;
		}
	}
	lib_sortsmall(&a[lo], hi - lo + 1);
}

// lib_select returns the k-th smallest element (destructive quickselect).
int lib_select(int* a, int n, int k) {
	int lo;
	int hi;
	if (n <= 0) { return 0; }
	k = lib_clamp(k, 0, n - 1);
	lo = 0;
	hi = n - 1;
	while (lo < hi) {
		int pivot;
		int i;
		int j;
		pivot = lib_median3(a[lo], a[(lo + hi) / 2], a[hi]);
		i = lo;
		j = hi;
		while (i <= j) {
			while (a[i] < pivot) { i = i + 1; }
			while (a[j] > pivot) { j = j - 1; }
			if (i <= j) {
				int t;
				t = a[i];
				a[i] = a[j];
				a[j] = t;
				i = i + 1;
				j = j - 1;
			}
		}
		if (k <= j) {
			hi = j;
		} else if (k >= i) {
			lo = i;
		} else {
			return a[k];
		}
	}
	return a[k];
}

// ---- binary heap ------------------------------------------------------------

// lib_heappush inserts v into a min-heap of n elements; returns n + 1.
int lib_heappush(int* h, int n, int v) {
	int i;
	h[n] = v;
	i = n;
	while (i > 0) {
		int parent;
		parent = (i - 1) / 2;
		if (h[parent] <= h[i]) { break; }
		int t;
		t = h[parent];
		h[parent] = h[i];
		h[i] = t;
		i = parent;
	}
	return n + 1;
}

// lib_heappop removes the minimum of an n-element min-heap; returns it.
// The heap size becomes n - 1.
int lib_heappop(int* h, int n) {
	int top;
	int i;
	if (n <= 0) { return 0; }
	top = h[0];
	h[0] = h[n - 1];
	n = n - 1;
	i = 0;
	while (1) {
		int l;
		int r;
		int m;
		l = 2 * i + 1;
		r = 2 * i + 2;
		m = i;
		if (l < n && h[l] < h[m]) { m = l; }
		if (r < n && h[r] < h[m]) { m = r; }
		if (m == i) { break; }
		int t;
		t = h[i];
		h[i] = h[m];
		h[m] = t;
		i = m;
	}
	return top;
}

// ---- open-addressing hash table ----------------------------------------------

// The table stores key/value pairs in caller-provided parallel arrays of
// capacity cap; empty slots hold key -1. Linear probing.

int lib_htput(int* keys, int* vals, int cap, int key, int val) {
	int h;
	int probes;
	h = lib_hash(key) % cap;
	probes = 0;
	while (probes < cap) {
		if (keys[h] == -1 || keys[h] == key) {
			keys[h] = key;
			vals[h] = val;
			return 1;
		}
		h = h + 1;
		if (h >= cap) { h = 0; }
		probes = probes + 1;
	}
	return 0; // table full
}

int lib_htget(int* keys, int* vals, int cap, int key, int missing) {
	int h;
	int probes;
	h = lib_hash(key) % cap;
	probes = 0;
	while (probes < cap) {
		if (keys[h] == -1) { return missing; }
		if (keys[h] == key) { return vals[h]; }
		h = h + 1;
		if (h >= cap) { h = 0; }
		probes = probes + 1;
	}
	return missing;
}

// ---- buffers (sentinel-terminated "strings") ---------------------------------

int lib_strlen(int* s) {
	int n;
	n = 0;
	while (s[n] != 0) { n = n + 1; }
	return n;
}

// lib_strcmp compares sentinel-terminated buffers like C strcmp.
int lib_strcmp(int* a, int* b) {
	int i;
	i = 0;
	while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
	return lib_sign(a[i] - b[i]);
}

// lib_strchr returns the index of c in s, or -1.
int lib_strchr(int* s, int c) {
	int i;
	i = 0;
	while (s[i] != 0) {
		if (s[i] == c) { return i; }
		i = i + 1;
	}
	return 0 - 1;
}

// ---- run-length coding --------------------------------------------------------

// lib_rle encodes src[0..n) as (value, runLength) pairs into dst; returns
// the number of pairs. dst must have room for 2*n.
int lib_rle(int* src, int n, int* dst) {
	int i;
	int pairs;
	i = 0;
	pairs = 0;
	while (i < n) {
		int v;
		int run;
		v = src[i];
		run = 1;
		while (i + run < n && src[i + run] == v && run < 255) {
			run = run + 1;
		}
		dst[pairs * 2] = v;
		dst[pairs * 2 + 1] = run;
		pairs = pairs + 1;
		i = i + run;
	}
	return pairs;
}

// ---- float vector kernels -----------------------------------------------------

float lib_vecdot(float* a, float* b, int n) {
	float s;
	int i;
	s = 0.0;
	for (i = 0; i < n; i = i + 1) {
		s = s + a[i] * b[i];
	}
	return s;
}

float lib_vecnorm(float* a, int n) {
	return lib_sqrtf(lib_vecdot(a, a, n));
}

// lib_vecmax returns the maximum absolute element (the BLAS iamax value).
float lib_vecmax(float* a, int n) {
	float m;
	int i;
	m = 0.0;
	for (i = 0; i < n; i = i + 1) {
		m = lib_maxf(m, lib_absf(a[i]));
	}
	return m;
}

// lib_polyeval evaluates a polynomial by Horner's rule.
float lib_polyeval(float* coef, int n, float x) {
	float acc;
	int i;
	acc = 0.0;
	for (i = n - 1; i >= 0; i = i - 1) {
		acc = acc * x + coef[i];
	}
	return acc;
}

// lib_expf: truncated series with a convergence exit, libm style.
float lib_expf(float x) {
	float term;
	float sum;
	int i;
	x = lib_clampf(x, 0.0 - 8.0, 8.0);
	term = 1.0;
	sum = 1.0;
	for (i = 1; i < 30; i = i + 1) {
		term = term * x / (float) i;
		sum = sum + term;
		if (lib_absf(term) < 0.0000001) { break; }
	}
	return sum;
}

// ---- sampling -----------------------------------------------------------------

// lib_randrange returns a uniform value in [lo, hi) by rejection, the
// unbiased libc idiom: the rejection branch is almost never taken.
int lib_randrange(int lo, int hi) {
	int span;
	int limit;
	int v;
	span = hi - lo;
	if (span <= 0) { return lo; }
	limit = (2147483647 / span) * span;
	v = __rand();
	while (v >= limit) {
		v = __rand();
	}
	return lo + v % span;
}

// lib_randbiased returns 1 with probability pct/100.
int lib_randbiased(int pct) {
	if (__rand() % 100 < pct) { return 1; }
	return 0;
}
`
