package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/serve"
)

// serveBenchResult is BENCH_serve.json: the request-path throughput of the
// committed float pipeline (encoding/json decode + float64 forward +
// encoding/json encode) against the quantized arena pipeline (hand-rolled
// zero-allocation decode + int8 fused forward + hand-rendered response),
// measured per prediction on identical request bodies through the same
// worker pool.
type serveBenchResult struct {
	Name              string  `json:"name"`
	VectorsPerRequest int     `json:"vectors_per_request"`
	FloatNsPerPred    float64 `json:"float_ns_per_prediction"`
	QuantNsPerPred    float64 `json:"quant_ns_per_prediction"`
	// Predictions/sec/core: the pipelines run on one worker with a
	// synchronous caller, so 1e9/ns-per-prediction is per-core throughput.
	FloatPredPerSecCore float64 `json:"float_predictions_per_sec_per_core"`
	QuantPredPerSecCore float64 `json:"quant_predictions_per_sec_per_core"`
	Speedup             float64 `json:"speedup"`
	FloatAllocsPerOp    int64   `json:"float_allocs_per_op"`
	QuantAllocsPerOp    int64   `json:"quant_allocs_per_op"`
	// Calibration context for the quant numbers.
	XScale           float64 `json:"xscale"`
	Guard            float64 `json:"guard"`
	Margin           float64 `json:"margin"`
	FallbackFraction float64 `json:"fallback_fraction"`
}

// runServeBench measures the serving request path and writes BENCH_serve.json.
func runServeBench(dir string, espCfg core.Config) error {
	const (
		trainPrograms = 3 // matches the serve test fixture's scale
		vectorsPerReq = 4
	)
	var data []*core.ProgramData
	for _, name := range []string{"bc", "grep", "gzip"}[:trainPrograms] {
		e, ok := corpus.ByName(name)
		if !ok {
			return fmt.Errorf("corpus program %s missing", name)
		}
		prog, err := e.Compile(codegen.Default)
		if err != nil {
			return err
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			return err
		}
		data = append(data, pd)
	}
	if espCfg.Net.MaxEpochs == 0 {
		espCfg.Net.MaxEpochs = 40
		espCfg.Net.Patience = 10
	}
	floatModel := core.Train(data, espCfg)
	quantModel := core.Train(data, espCfg)
	rep, err := core.CalibrateQuant(quantModel, data, nil)
	if err != nil {
		return err
	}
	if err := quantModel.EnableQuant(); err != nil {
		return err
	}

	floatSrv, err := serve.New(serve.Config{Model: floatModel, Workers: 1, MaxBatch: 1})
	if err != nil {
		return err
	}
	quantSrv, err := serve.New(serve.Config{Model: quantModel, Workers: 1, MaxBatch: 1})
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.PredictRequest{
		ID:      "bench",
		Vectors: vectorValues(data[0].Vectors[:vectorsPerReq]),
	})
	if err != nil {
		return err
	}
	ctx := context.Background()

	floatRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := floatSrv.PredictPipelineReference(ctx, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	var out []byte
	quantRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			out, err = quantSrv.PredictPipeline(ctx, body, out)
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	floatNs := float64(floatRes.T.Nanoseconds()) / float64(floatRes.N*vectorsPerReq)
	quantNs := float64(quantRes.T.Nanoseconds()) / float64(quantRes.N*vectorsPerReq)
	res := serveBenchResult{
		Name:                "serve",
		VectorsPerRequest:   vectorsPerReq,
		FloatNsPerPred:      floatNs,
		QuantNsPerPred:      quantNs,
		FloatPredPerSecCore: 1e9 / floatNs,
		QuantPredPerSecCore: 1e9 / quantNs,
		Speedup:             floatNs / quantNs,
		FloatAllocsPerOp:    floatRes.AllocsPerOp(),
		QuantAllocsPerOp:    quantRes.AllocsPerOp(),
		XScale:              rep.Chosen.XScale,
		Guard:               rep.Chosen.Guard,
		Margin:              rep.Chosen.Margin,
		FallbackFraction:    rep.Chosen.FallbackFraction(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jd, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchFile(dir, "serve"), append(jd, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("float: %.0f ns/prediction (%.0f predictions/sec/core, %d allocs/op)\n",
		res.FloatNsPerPred, res.FloatPredPerSecCore, res.FloatAllocsPerOp)
	fmt.Printf("quant: %.0f ns/prediction (%.0f predictions/sec/core, %d allocs/op)\n",
		res.QuantNsPerPred, res.QuantPredPerSecCore, res.QuantAllocsPerOp)
	fmt.Printf("speedup: %.1fx -> %s\n", res.Speedup, benchFile(dir, "serve"))
	return nil
}

// vectorValues flattens feature vectors into the request wire shape.
func vectorValues(vecs []features.Vector) [][]string {
	out := make([][]string, len(vecs))
	for i := range vecs {
		vals := vecs[i].Values
		out[i] = vals[:]
	}
	return out
}
