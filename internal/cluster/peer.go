package cluster

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/faultinject"
)

// PeerPathPrefix is where every replica mounts its peer-cache handler.
const PeerPathPrefix = "/cluster/artifact/"

// maxPeerPayloadBytes bounds a peer response; an artifact record for even
// the largest corpus program is far below this.
const maxPeerPayloadBytes = 64 << 20

// PeerCache layers replica-to-replica artifact sharing over a local
// *artifact.Cache, groupcache-style: a local miss triggers one
// singleflighted fetch walking the key's peers in ring order, and a
// verified peer payload is installed locally before being decoded, so the
// next request for the key is a plain local hit. It satisfies
// core.AnalysisCache, slotting in wherever a bare cache does.
//
// Trust boundary: peer bytes pass the full artifact framing check (magic,
// version, key echo, checksum) in StoreRaw/DecodeRecord before use — a
// corrupt or malicious peer can cause a miss, never a poisoned entry.
type PeerCache struct {
	local  *artifact.Cache
	self   string // this replica's own peer base URL, excluded from fetches
	ring   *Ring  // members are peer base URLs
	client *http.Client

	// counters is swappable after construction: espserve builds its
	// PeerCache (and trains through it) before the server that owns the
	// metrics exists.
	counters atomic.Pointer[counters]

	mu       sync.Mutex
	inflight map[string]*peerFetch
}

type peerFetch struct {
	done chan struct{}
	rec  *artifact.Record
	ok   bool
}

// PeerCacheConfig configures a PeerCache.
type PeerCacheConfig struct {
	// Self is this replica's own peer base URL; it is never fetched from.
	Self string
	// Peers are the other replicas' base URLs (the handler is assumed
	// mounted at PeerPathPrefix on each).
	Peers []string
	// Vnodes per peer on the fetch-order ring (default DefaultVnodes).
	Vnodes int
	// Timeout is the per-fetch timeout (default 10s).
	Timeout time.Duration
	// Counters receives peer hit/miss events (optional).
	Counters Counters
}

// NewPeerCache wraps local with peer-backed fetching. A nil local cache is
// allowed: peers are still consulted, but nothing is persisted locally.
func NewPeerCache(local *artifact.Cache, cfg PeerCacheConfig) *PeerCache {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	p := &PeerCache{
		local:    local,
		self:     cfg.Self,
		ring:     NewRing(cfg.Vnodes),
		client:   &http.Client{Timeout: timeout},
		inflight: make(map[string]*peerFetch),
	}
	p.SetCounters(cfg.Counters)
	for _, u := range cfg.Peers {
		if u != "" && u != cfg.Self {
			p.ring.Add(u)
		}
	}
	return p
}

// SetCounters installs (or replaces) the metrics sink; safe concurrently
// with loads.
func (p *PeerCache) SetCounters(c Counters) {
	p.counters.Store(&counters{c})
}

// Ring exposes the peer ring so tests and operators can partition or heal
// peers (SetDrained) and adjust membership.
func (p *PeerCache) Ring() *Ring { return p.ring }

// Load returns the record under key from the local cache, or from the
// first peer that has it. Concurrent loads of one key share a single peer
// fetch. A peer hit is installed locally first, so it counts as a durable
// warm-up, not a one-shot answer.
func (p *PeerCache) Load(key string) (*artifact.Record, bool) {
	if rec, ok := p.local.Load(key); ok {
		return rec, true
	}
	if len(p.ring.Members()) == 0 {
		return nil, false
	}

	p.mu.Lock()
	if f, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		<-f.done
		return f.rec, f.ok
	}
	f := &peerFetch{done: make(chan struct{})}
	p.inflight[key] = f
	p.mu.Unlock()

	f.rec, f.ok = p.fetchFromPeers(key)
	close(f.done)
	p.mu.Lock()
	delete(p.inflight, key)
	p.mu.Unlock()
	return f.rec, f.ok
}

// Store writes through to the local cache.
func (p *PeerCache) Store(key string, rec *artifact.Record) error {
	return p.local.Store(key, rec)
}

// fetchFromPeers walks the key's peers in ring order. Each attempt fires
// the cluster.peer.get fault site; an injected fault skips that peer, the
// same degradation as an unreachable one.
func (p *PeerCache) fetchFromPeers(key string) (*artifact.Record, bool) {
	for _, peer := range p.ring.Sequence(key, len(p.ring.Members())) {
		if err := faultinject.Fire(sitePeerGet); err != nil {
			continue
		}
		raw, ok := p.fetchOne(peer, key)
		if !ok {
			continue
		}
		// Install-then-decode: StoreRaw re-verifies the framing, and a
		// local store failure (full disk, injected fault) still lets this
		// request proceed from the verified bytes in hand.
		_ = p.local.StoreRaw(key, raw)
		if rec, ok := artifact.DecodeRecord(raw, key); ok {
			p.counters.Load().peerHit()
			return rec, true
		}
	}
	p.counters.Load().peerMiss()
	return nil, false
}

func (p *PeerCache) fetchOne(peer, key string) ([]byte, bool) {
	resp, err := p.client.Get(peer + PeerPathPrefix + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerPayloadBytes))
	if err != nil {
		return nil, false
	}
	if _, ok := artifact.DecodeRecord(raw, key); !ok {
		return nil, false
	}
	return raw, true
}

// Handler serves this replica's local cache to its peers:
//
//	GET /cluster/artifact/<key>  ->  200 + framed entry bytes | 404
//
// Only well-formed hex keys are accepted, so the key can never escape the
// cache directory, and only verified bytes are served (LoadRaw re-checks
// the framing before shipping).
func (p *PeerCache) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		key, ok := strings.CutPrefix(r.URL.Path, PeerPathPrefix)
		if !ok || !validKey(key) {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		raw, ok := p.local.LoadRaw(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(raw)
	})
}

// validKey accepts exactly the lowercase-hex sha256 keys artifact.Key
// produces.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
