//go:build !race

// Package testutil carries small cross-package test helpers.
package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count assertions (testing.AllocsPerRun) are meaningless under
// race instrumentation, which allocates on its own; tests gate on this.
const RaceEnabled = false
