package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// maxRouteBodyBytes bounds how much of a request body the router buffers
// for re-sending across failover candidates; matches the serve package's
// default source bound plus framing slack.
const maxRouteBodyBytes = 1<<20 + 1<<16

// Replica is one routable espserve instance. Its URL is mutable so a
// restarted replica (new port) keeps its ring identity and keyspace share.
type Replica struct {
	Name string

	mu  sync.RWMutex
	url string
}

// URL returns the replica's current base URL.
func (r *Replica) URL() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.url
}

// SetURL repoints the replica, e.g. after a restart on a fresh port.
func (r *Replica) SetURL(u string) {
	r.mu.Lock()
	r.url = u
	r.mu.Unlock()
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Vnodes per replica on the ring (default DefaultVnodes).
	Vnodes int
	// MaxFailover bounds how many replicas one request may be offered to
	// (default 3, or the replica count if smaller).
	MaxFailover int
	// Timeout is the per-attempt upstream timeout (default 30s).
	Timeout time.Duration
	// Counters receives failover events (optional).
	Counters Counters
}

// Router fronts a set of espserve replicas with consistent-hash routing
// and bounded failover. Each /predict request is keyed by its content
// (RequestKey) and offered to the key's ring owner first; a shed (429),
// server error (5xx), or transport failure moves it to the next distinct
// live replica on the ring, never to a drained one. Responses are relayed
// verbatim — including Retry-After on a shed — so clients observe exactly
// the single-server protocol.
type Router struct {
	ring     *Ring
	mu       sync.RWMutex
	replicas map[string]*Replica
	client   *http.Client
	maxFail  int
	counters counters
}

// NewRouter builds a router over the given replicas.
func NewRouter(cfg RouterConfig, replicas ...*Replica) *Router {
	maxFail := cfg.MaxFailover
	if maxFail <= 0 {
		maxFail = 3
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	rt := &Router{
		ring:     NewRing(cfg.Vnodes),
		replicas: make(map[string]*Replica, len(replicas)),
		client:   &http.Client{Timeout: timeout},
		maxFail:  maxFail,
		counters: counters{cfg.Counters},
	}
	for _, rep := range replicas {
		rt.replicas[rep.Name] = rep
		rt.ring.Add(rep.Name)
	}
	return rt
}

// Ring exposes the router's ring for membership and drain control.
func (rt *Router) Ring() *Ring { return rt.ring }

// Replica returns the named replica, or nil.
func (rt *Router) Replica(name string) *Replica {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.replicas[name]
}

// SetDrained marks a replica as drained: it keeps its keyspace share but
// receives no traffic until undrained.
func (rt *Router) SetDrained(name string, drained bool) {
	rt.ring.SetDrained(name, drained)
}

// RequestKey derives the routing key from a request's content: the source
// program when present (so one program's repeat requests — and its compiled
// LRU entry and artifact-cache entry — land on one replica), otherwise the
// submitted feature vectors.
func RequestKey(req *serve.PredictRequest) string {
	h := sha256.New()
	if req.Source != "" {
		io.WriteString(h, req.Language)
		h.Write([]byte{0})
		io.WriteString(h, req.Name)
		h.Write([]byte{0})
		fmt.Fprintf(h, "%t\x00", req.LinkStdlib)
		io.WriteString(h, req.Source)
	} else {
		for _, vec := range req.Vectors {
			for _, v := range vec {
				io.WriteString(h, v)
				h.Write([]byte{1})
			}
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ServeHTTP routes /predict by content key with failover; every other path
// (healthz, metrics, debug) is answered by the first live replica on the
// ring for that path, without failover semantics beyond skipping drained
// replicas.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBodyBytes))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	key := r.URL.Path
	if r.Method == http.MethodPost && r.URL.Path == "/predict" {
		var req serve.PredictRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeRouterError(w, http.StatusBadRequest, "invalid JSON body")
			return
		}
		key = RequestKey(&req)
	}

	candidates := rt.ring.Sequence(key, rt.maxFail)
	if len(candidates) == 0 {
		writeRouterError(w, http.StatusServiceUnavailable, "no live replicas")
		return
	}

	var last *http.Response
	var lastBody []byte
	for i, name := range candidates {
		if i > 0 {
			rt.counters.failover()
		}
		if err := faultinject.Fire(siteRoute); err != nil {
			continue // injected routing fault: this candidate is unreachable
		}
		rep := rt.Replica(name)
		if rep == nil {
			continue
		}
		resp, respBody, err := rt.forward(rep.URL(), r, body)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			last, lastBody = resp, respBody
			continue
		}
		relay(w, resp, respBody)
		return
	}
	if last != nil {
		// Every candidate shed or failed: relay the most recent upstream
		// verdict verbatim (Retry-After included) so clients back off the
		// way a single overloaded server would make them.
		relay(w, last, lastBody)
		return
	}
	writeRouterError(w, http.StatusBadGateway, "all replicas unreachable")
}

func (rt *Router) forward(base string, r *http.Request, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func writeRouterError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": "esprouter: " + msg})
}
