package experiments

import (
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// Table4Row is one program's miss rates under each predictor (fractions,
// not percentages).
type Table4Row struct {
	Program  string
	Suite    corpus.Suite
	BTFNT    float64
	APHC     float64
	DSHCBL   float64
	DSHCOurs float64
	ESP      float64
	Perfect  float64
}

// Table4Result is the paper's central comparison.
type Table4Result struct {
	Rows []Table4Row
	// SuiteAvg holds per-suite mean rows; Overall the corpus mean.
	SuiteAvg map[corpus.Suite]Table4Row
	Overall  Table4Row
	// MeasuredMiss holds the per-heuristic miss rates measured on this
	// corpus (used to configure DSHC(Ours), analogous to Table 6's
	// "Overall" column feeding the paper's DSHC(Ours)).
	MeasuredMiss [heuristics.NumHeuristics]float64
}

// MeasuredHeuristicMiss aggregates per-heuristic miss rates over a corpus.
func MeasuredHeuristicMiss(data []*core.ProgramData, cfg heuristics.Config) [heuristics.NumHeuristics]float64 {
	var cov, missed [heuristics.NumHeuristics]int64
	for _, pd := range data {
		per := heuristics.PerHeuristic(pd.Sites, pd.Profile, cfg)
		for h := range per {
			cov[h] += per[h].Covered
			missed[h] += per[h].Missed
		}
	}
	var out [heuristics.NumHeuristics]float64
	for h := range out {
		if cov[h] > 0 {
			out[h] = float64(missed[h]) / float64(cov[h])
		} else {
			out[h] = 0.5
		}
	}
	return out
}

// Table4 runs the full comparison: BTFNT, APHC, DSHC with the Ball/Larus
// published rates, DSHC with rates measured on this corpus, ESP under
// leave-one-out cross-validation within each language group, and the
// perfect static predictor.
func Table4(ctx *Context, espCfg core.Config) (*Table4Result, error) {
	data, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{SuiteAvg: make(map[corpus.Suite]Table4Row)}
	res.MeasuredMiss = MeasuredHeuristicMiss(data, heuristics.Config{})

	// ESP: leave-one-out within the C and Fortran groups.
	espMiss := make(map[string]float64)
	for _, lang := range []ir.Language{ir.LangC, ir.LangFortran} {
		group, err := ctx.LanguageData(lang, codegen.Default)
		if err != nil {
			return nil, err
		}
		for _, fold := range core.CrossValidate(group, espCfg) {
			espMiss[fold.Held] = fold.MissRate
		}
	}

	aphc := heuristics.NewAPHC()
	dshcBL := heuristics.NewDSHCBallLarus()
	dshcOurs := heuristics.NewDSHCFromMiss("DSHC(Ours)", res.MeasuredMiss)
	entries := corpus.Study()
	for i, pd := range data {
		row := Table4Row{
			Program:  pd.Name,
			Suite:    entries[i].Suite,
			BTFNT:    heuristics.MissRate(pd.Sites, pd.Profile, heuristics.BTFNT{}),
			APHC:     heuristics.MissRate(pd.Sites, pd.Profile, aphc),
			DSHCBL:   heuristics.MissRate(pd.Sites, pd.Profile, dshcBL),
			DSHCOurs: heuristics.MissRate(pd.Sites, pd.Profile, dshcOurs),
			ESP:      espMiss[pd.Name],
			Perfect:  heuristics.MissRate(pd.Sites, pd.Profile, &heuristics.Perfect{Prof: pd.Profile}),
		}
		res.Rows = append(res.Rows, row)
	}
	for _, suite := range []corpus.Suite{corpus.SuiteOtherC, corpus.SuiteSPECC,
		corpus.SuiteSPECFortran, corpus.SuitePerfectClub} {
		res.SuiteAvg[suite] = averageRows(res.Rows, suite)
	}
	res.Overall = averageRows(res.Rows, "")
	return res, nil
}

// averageRows means the rows of one suite ("" for all).
func averageRows(rows []Table4Row, suite corpus.Suite) Table4Row {
	var out Table4Row
	n := 0
	for _, r := range rows {
		if suite != "" && r.Suite != suite {
			continue
		}
		out.BTFNT += r.BTFNT
		out.APHC += r.APHC
		out.DSHCBL += r.DSHCBL
		out.DSHCOurs += r.DSHCOurs
		out.ESP += r.ESP
		out.Perfect += r.Perfect
		n++
	}
	if n == 0 {
		return out
	}
	f := float64(n)
	out.BTFNT /= f
	out.APHC /= f
	out.DSHCBL /= f
	out.DSHCOurs /= f
	out.ESP /= f
	out.Perfect /= f
	if suite == "" {
		out.Program = "Overall Avg"
	} else {
		out.Program = string(suite) + " Avg"
	}
	out.Suite = suite
	return out
}

// Render formats the table in the paper's layout.
func (r *Table4Result) Render() string {
	t := stats.NewTable("Program", "BTFNT", "APHC", "DSHC(B&L)", "DSHC(Ours)", "ESP", "Perfect")
	emit := func(row Table4Row) {
		t.Row(row.Program, stats.Pct(row.BTFNT), stats.Pct(row.APHC),
			stats.Pct(row.DSHCBL), stats.Pct(row.DSHCOurs),
			stats.Pct(row.ESP), stats.Pct(row.Perfect))
	}
	var lastSuite corpus.Suite
	for i, row := range r.Rows {
		if i > 0 && row.Suite != lastSuite {
			emit(r.SuiteAvg[lastSuite])
			t.Separator()
		}
		lastSuite = row.Suite
		emit(row)
	}
	emit(r.SuiteAvg[lastSuite])
	t.Separator()
	emit(r.Overall)
	return "Table 4: branch misprediction rates (% of executed conditional branches)\n" +
		t.String() + heuristicOrderString() + "\n"
}
