package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

// runPGOStudy runs the ESP-guided optimization study (simulated cycles for
// unguided vs ESP-, heuristic-, and perfect-guided binaries over the whole
// corpus plus a generated slice), prints the table, and writes the
// machine-readable result as BENCH_pgo.json.
func runPGOStudy(ctx *experiments.Context, espCfg core.Config, genN int, dir string) error {
	res, err := experiments.PGOStudy(ctx, espCfg, genN)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	out := benchFile(dir, "pgo")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("guided-optimization cycles -> %s\n", out)
	return nil
}
