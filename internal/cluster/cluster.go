// Package cluster replicates espserve horizontally without weakening its
// single-process guarantees. Three pieces compose:
//
//   - A consistent-hash Ring maps a request's content key to an owner
//     replica; membership changes move only the departed or arrived
//     replica's share of the keyspace.
//   - A Router fronts N replicas, routing each /predict to its ring owner
//     and failing over along the ring — bounded, never to a drained
//     replica — when the owner sheds (429) or errors (5xx, transport).
//   - A PeerCache extends the artifact cache across replicas: a local miss
//     asks the key's ring neighbours for their verified on-disk bytes
//     before falling back to recomputation, so one replica's analysis
//     warms every other replica's start.
//
// The cluster-wide contract is the single-process one: every completed
// response is bit-identical to what a lone espserve would have produced
// (or exactly-degraded under the serve package's documented fallback
// rules), regardless of which replica answered, how many failovers the
// request rode, or which model version was hot-reloading at the time. The
// chaos suite in this package drives kill/restart, peer partitions, and
// mid-burst reloads under deterministic fault injection to hold that line.
package cluster

import "repro/internal/faultinject"

// Fault-injection sites. cluster.route fires once per candidate replica a
// request is offered to; cluster.peer.get fires once per peer fetch
// attempt. (cluster.reload lives in internal/serve, at the reload
// entrypoint itself.)
var (
	siteRoute   = faultinject.Register("cluster.route")
	sitePeerGet = faultinject.Register("cluster.peer.get")
)

// Counters receives cluster-level events for metrics export.
// serve.ClusterStats satisfies it; the zero Counters field of any struct
// in this package (nil interface) counts nothing.
type Counters interface {
	PeerHit()
	PeerMiss()
	Failover()
}

// counters wraps an optional Counters so call sites stay flat: a nil
// interface counts nothing.
type counters struct{ Counters }

func (c counters) peerHit() {
	if c.Counters != nil {
		c.Counters.PeerHit()
	}
}

func (c counters) peerMiss() {
	if c.Counters != nil {
		c.Counters.PeerMiss()
	}
}

func (c counters) failover() {
	if c.Counters != nil {
		c.Counters.Failover()
	}
}
