package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/ir"
)

// Config controls an execution.
type Config struct {
	// Input is the program's input vector, served by the __input intrinsic
	// (index modulo length; an empty vector serves zeros).
	Input []int64
	// Seed seeds the deterministic generator behind the __rand intrinsic.
	Seed uint64
	// MaxInsns bounds execution; 0 means DefaultMaxInsns.
	MaxInsns int64
	// MemWords sizes the flat word memory; 0 means DefaultMemWords.
	MemWords int64
	// MaxCallDepth bounds activation nesting; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// CollectEdges enables per-edge transition counting (needed only for
	// the Figure 2 experiment; branch counts are always collected).
	CollectEdges bool
}

// Defaults for Config.
const (
	DefaultMaxInsns     = int64(50_000_000)
	DefaultMemWords     = int64(1 << 21)
	DefaultMaxCallDepth = 4096
)

// Execution errors. The budget-class errors (fuel, stack, heap, call depth)
// wrap guard.ErrBudgetExceeded, so a caller running untrusted programs can
// classify "the program exceeded its configured resource budget" with one
// errors.Is check, distinct from genuine program faults like a division by
// zero or an out-of-bounds access.
var (
	ErrFuel       = fmt.Errorf("interp: instruction budget exhausted: %w", guard.ErrBudgetExceeded)
	ErrMemBounds  = errors.New("interp: memory access out of bounds")
	ErrDivZero    = errors.New("interp: integer division by zero")
	ErrStack      = fmt.Errorf("interp: stack overflow: %w", guard.ErrBudgetExceeded)
	ErrHeap       = fmt.Errorf("interp: heap exhausted: %w", guard.ErrBudgetExceeded)
	ErrNoMain     = errors.New("interp: program has no main function")
	ErrBadJump    = errors.New("interp: indirect jump index out of range")
	ErrCallDepth  = fmt.Errorf("interp: call depth exceeded: %w", guard.ErrBudgetExceeded)
	ErrBadRuntime = errors.New("interp: unknown runtime intrinsic")
)

// machine is one execution of a program.
type machine struct {
	prog    *ir.Program
	cfg     Config
	mem     []int64
	heapPtr int64 // bump allocator cursor
	heapTop int64 // stack/heap collision guard: stack may not descend below
	rng     uint64
	fuel    int64
	prof    *Profile
	depth   int

	funcs    map[string]*funcImage
	funcList []*funcImage
	// counts/refs are the dense branch profile: every static conditional
	// branch site gets a slot at image-build time, and the dispatch loop
	// counts straight into the slot — no map lookups on the hot path. The
	// Profile's Branches map is materialized from these once, at run end.
	counts []BranchCount
	refs   []ir.BranchRef
}

// funcImage is a function pre-resolved for dispatch: every symbolic operand
// (block IDs, global symbols, callee names) is rewritten to a dense index so
// the interpreter loop never consults a map.
type funcImage struct {
	fn     *ir.Func
	blocks []blockImage
}

// blockImage carries the per-instruction resolved operands of one block.
// aux is indexed by pc and its meaning depends on the opcode there:
//
//	conditional branch → branch-count slot (high 32 bits) | taken-target
//	                     block index (low 32 bits)
//	OpBr               → target block index
//	OpJmp              → index into jmp, the resolved target table
//	OpBsr              → callee index into machine.funcList, -1 if unknown
//	OpLda              → global base + immediate, or unknownSym
//
// aux stays nil for blocks with none of these opcodes.
type blockImage struct {
	aux []int64
	jmp [][]int32
}

// unknownSym marks an OpLda/OpBsr operand that did not resolve at image-build
// time; executing it reports the same error the unresolved lookup used to.
const unknownSym = math.MinInt64

// Run executes the program's main function under the given configuration and
// returns the collected profile.
func Run(p *ir.Program, cfg Config) (*Profile, error) {
	if cfg.MaxInsns == 0 {
		cfg.MaxInsns = DefaultMaxInsns
	}
	if cfg.MemWords == 0 {
		cfg.MemWords = DefaultMemWords
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = DefaultMaxCallDepth
	}
	m := &machine{
		prog:  p,
		cfg:   cfg,
		mem:   make([]int64, cfg.MemWords),
		rng:   cfg.Seed*2862933555777941757 + 3037000493,
		fuel:  cfg.MaxInsns,
		funcs: make(map[string]*funcImage, len(p.Funcs)),
	}
	m.prof = &Profile{Program: p.Name}
	if cfg.CollectEdges {
		m.prof.Edges = make(map[EdgeRef]int64)
	}
	// Lay out globals starting at word 1 (0 stays null).
	globals := make(map[string]int64, len(p.Globals))
	base := int64(1)
	for i := range p.Globals {
		g := &p.Globals[i]
		globals[g.Name] = base
		for j, v := range g.Init {
			if base+int64(j) < cfg.MemWords {
				m.mem[base+int64(j)] = v
			}
		}
		base += g.Size
	}
	m.heapPtr = base
	// Stacks grow downward from the top of memory; the heap may not grow
	// into the reserved stack region and stacks may not descend below it.
	m.heapTop = cfg.MemWords - 64*1024
	if m.heapTop < m.heapPtr {
		m.heapTop = m.heapPtr
	}
	m.buildImages(globals)
	mainFn := m.funcs["main"]
	if mainFn == nil {
		return nil, ErrNoMain
	}
	var args [12]int64 // 6 int (A0..A5) + 6 float arg registers
	ret, _, err := m.call(mainFn, args, cfg.MemWords)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	m.prof.Result = ret
	m.prof.Insns = cfg.MaxInsns - m.fuel
	m.prof.Branches = make(map[ir.BranchRef]*BranchCount, len(m.refs))
	for i, ref := range m.refs {
		c := &m.counts[i]
		m.prof.Branches[ref] = c
		m.prof.CondExec += c.Executed
		m.prof.CondTaken += c.Taken
	}
	return m.prof, nil
}

// buildImages pre-resolves every function for dispatch and assigns the dense
// branch-count slots. Every static branch site gets a slot (so StaticSites
// covers never-executed branches); symbol resolution errors are deferred to
// execution via unknownSym sentinels so unreachable bad code stays harmless,
// as before.
func (m *machine) buildImages(globals map[string]int64) {
	p := m.prog
	m.funcList = make([]*funcImage, 0, len(p.Funcs))
	fidx := make(map[string]int, len(p.Funcs))
	for _, f := range p.Funcs {
		fi := &funcImage{fn: f, blocks: make([]blockImage, len(f.Blocks))}
		fidx[f.Name] = len(m.funcList)
		m.funcList = append(m.funcList, fi)
		m.funcs[f.Name] = fi
	}
	slotOf := make(map[ir.BranchRef]int32)
	slot := func(ref ir.BranchRef) int32 {
		s, ok := slotOf[ref]
		if !ok {
			s = int32(len(m.counts))
			slotOf[ref] = s
			m.refs = append(m.refs, ref)
			m.counts = append(m.counts, BranchCount{})
		}
		return s
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Branch() != nil {
				slot(ir.BranchRef{Func: f.Name, Block: b.ID})
			}
		}
	}
	for _, fi := range m.funcList {
		f := fi.fn
		idToIdx := make(map[int]int, len(f.Blocks))
		for i, b := range f.Blocks {
			idToIdx[b.ID] = i
		}
		for bi := range f.Blocks {
			b := f.Blocks[bi]
			blk := &fi.blocks[bi]
			ensure := func() []int64 {
				if blk.aux == nil {
					blk.aux = make([]int64, len(b.Insns))
				}
				return blk.aux
			}
			for pc := range b.Insns {
				in := &b.Insns[pc]
				switch {
				case in.Op.IsCondBranch():
					s := slot(ir.BranchRef{Func: f.Name, Block: b.ID})
					ensure()[pc] = int64(s)<<32 |
						int64(uint32(int32(idToIdx[in.Target])))
				case in.Op == ir.OpBr:
					ensure()[pc] = int64(idToIdx[in.Target])
				case in.Op == ir.OpJmp:
					tg := make([]int32, len(in.Targets))
					for i, id := range in.Targets {
						tg[i] = int32(idToIdx[id])
					}
					ensure()[pc] = int64(len(blk.jmp))
					blk.jmp = append(blk.jmp, tg)
				case in.Op == ir.OpBsr:
					if i, ok := fidx[in.Sym]; ok {
						ensure()[pc] = int64(i)
					} else {
						ensure()[pc] = unknownSym
					}
				case in.Op == ir.OpLda:
					if base, ok := globals[in.Sym]; ok {
						ensure()[pc] = base + in.Imm
					} else {
						ensure()[pc] = unknownSym
					}
				}
			}
		}
	}
}

// call executes one function activation. args holds the incoming A0..A5 and
// FA0..FA5 register values; sp is the caller's stack pointer.
func (m *machine) call(fi *funcImage, args [12]int64, sp int64) (retInt int64, retFloat int64, err error) {
	if m.depth++; m.depth > m.cfg.MaxCallDepth {
		return 0, 0, ErrCallDepth
	}
	defer func() { m.depth-- }()

	var regs [ir.NumRegs]int64
	for i := 0; i < 6; i++ {
		regs[int(ir.RegA0)+i] = args[i]
		regs[int(ir.RegFA0)+i] = args[6+i]
	}
	sp -= fi.fn.FrameSize
	if sp < m.heapTop {
		return 0, 0, ErrStack
	}
	regs[ir.RegSP] = sp

	fn := fi.fn
	blockIdx := 0
	for {
		b := fn.Blocks[blockIdx]
		bim := &fi.blocks[blockIdx]
		nextIdx := blockIdx + 1 // default: fall through in layout order
		fell := true
		for pc := 0; pc < len(b.Insns); pc++ {
			in := &b.Insns[pc]
			if m.fuel--; m.fuel < 0 {
				return 0, 0, ErrFuel
			}
			// Reads of the zero registers always see zero.
			regs[ir.RegZero] = 0
			regs[ir.RegFZero] = 0
			switch in.Op {
			case ir.OpAddQ, ir.OpSubQ, ir.OpMulQ, ir.OpDivQ, ir.OpRemQ,
				ir.OpAndQ, ir.OpOrQ, ir.OpXorQ, ir.OpSllQ, ir.OpSrlQ,
				ir.OpCmpEq, ir.OpCmpLt, ir.OpCmpLe:
				bval := regs[in.B]
				if in.UseImm {
					bval = in.Imm
				}
				v, derr := intALU(in.Op, regs[in.A], bval)
				if derr != nil {
					return 0, 0, derr
				}
				regs[in.Dst] = v
			case ir.OpLdiQ:
				regs[in.Dst] = in.Imm
			case ir.OpLda:
				addr := bim.aux[pc]
				if addr == unknownSym {
					return 0, 0, fmt.Errorf("interp: unknown global %q", in.Sym)
				}
				regs[in.Dst] = addr
			case ir.OpMov, ir.OpFMov:
				regs[in.Dst] = regs[in.A]
			case ir.OpCmovEq:
				if regs[in.A] == 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpCmovNe:
				if regs[in.A] != 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpFCmovEq:
				if math.Float64frombits(uint64(regs[in.A])) == 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpFCmovNe:
				if math.Float64frombits(uint64(regs[in.A])) != 0 {
					regs[in.Dst] = regs[in.B]
				}
			case ir.OpLdq, ir.OpLdt:
				addr := regs[in.A] + in.Imm
				if addr < 0 || addr >= int64(len(m.mem)) {
					return 0, 0, fmt.Errorf("%w: load at %d in %s", ErrMemBounds, addr, fn.Name)
				}
				regs[in.Dst] = m.mem[addr]
			case ir.OpStq, ir.OpStt:
				addr := regs[in.A] + in.Imm
				if addr <= 0 || addr >= int64(len(m.mem)) {
					return 0, 0, fmt.Errorf("%w: store at %d in %s", ErrMemBounds, addr, fn.Name)
				}
				m.mem[addr] = regs[in.B]
			case ir.OpAddT, ir.OpSubT, ir.OpMulT, ir.OpDivT:
				a := math.Float64frombits(uint64(regs[in.A]))
				bv := math.Float64frombits(uint64(regs[in.B]))
				var r float64
				switch in.Op {
				case ir.OpAddT:
					r = a + bv
				case ir.OpSubT:
					r = a - bv
				case ir.OpMulT:
					r = a * bv
				case ir.OpDivT:
					r = a / bv
				}
				regs[in.Dst] = int64(math.Float64bits(r))
			case ir.OpFAbs:
				a := math.Float64frombits(uint64(regs[in.A]))
				regs[in.Dst] = int64(math.Float64bits(math.Abs(a)))
			case ir.OpFNeg:
				a := math.Float64frombits(uint64(regs[in.A]))
				regs[in.Dst] = int64(math.Float64bits(-a))
			case ir.OpLdiT:
				regs[in.Dst] = in.Imm
			case ir.OpCvtQT:
				regs[in.Dst] = int64(math.Float64bits(float64(regs[in.A])))
			case ir.OpCvtTQ:
				regs[in.Dst] = int64(math.Float64frombits(uint64(regs[in.A])))
			case ir.OpCmpTEq, ir.OpCmpTLt, ir.OpCmpTLe:
				a := math.Float64frombits(uint64(regs[in.A]))
				bv := math.Float64frombits(uint64(regs[in.B]))
				var cond bool
				switch in.Op {
				case ir.OpCmpTEq:
					cond = a == bv
				case ir.OpCmpTLt:
					cond = a < bv
				case ir.OpCmpTLe:
					cond = a <= bv
				}
				r := 0.0
				if cond {
					r = 1.0
				}
				regs[in.Dst] = int64(math.Float64bits(r))
			case ir.OpBeq, ir.OpBne, ir.OpBlt, ir.OpBle, ir.OpBgt, ir.OpBge,
				ir.OpFbeq, ir.OpFbne, ir.OpFblt, ir.OpFble, ir.OpFbgt, ir.OpFbge,
				ir.OpBeq2, ir.OpBne2:
				a := bim.aux[pc]
				bc := &m.counts[int32(a>>32)]
				bc.Executed++
				if branchTaken(in, regs[:]) {
					bc.Taken++
					nextIdx = int(int32(uint32(a)))
				}
				fell = false
				goto endBlock
			case ir.OpBr:
				nextIdx = int(bim.aux[pc])
				fell = false
				goto endBlock
			case ir.OpJmp:
				tgts := bim.jmp[bim.aux[pc]]
				idx := regs[in.A]
				if idx < 0 || idx >= int64(len(tgts)) {
					return 0, 0, ErrBadJump
				}
				nextIdx = int(tgts[idx])
				fell = false
				goto endBlock
			case ir.OpBsr:
				ci := bim.aux[pc]
				if ci == unknownSym {
					return 0, 0, fmt.Errorf("interp: call to unknown function %q", in.Sym)
				}
				callee := m.funcList[ci]
				var cargs [12]int64
				for i := 0; i < 6; i++ {
					cargs[i] = regs[int(ir.RegA0)+i]
					cargs[6+i] = regs[int(ir.RegFA0)+i]
				}
				ri, rf, cerr := m.call(callee, cargs, sp)
				if cerr != nil {
					return 0, 0, cerr
				}
				regs[ir.RegV0] = ri
				regs[ir.RegFV0] = rf
			case ir.OpRet:
				return regs[ir.RegV0], regs[ir.RegFV0], nil
			case ir.OpRtcall:
				if rerr := m.runtime(in.Imm, regs[:]); rerr != nil {
					return 0, 0, rerr
				}
			default:
				return 0, 0, fmt.Errorf("interp: unimplemented opcode %s", in.Op)
			}
		}
	endBlock:
		if fell && blockIdx+1 >= len(fn.Blocks) {
			return 0, 0, fmt.Errorf("interp: %s: control fell off the end", fn.Name)
		}
		if m.prof.Edges != nil {
			from := fn.Blocks[blockIdx].ID
			to := fn.Blocks[nextIdx].ID
			m.prof.Edges[EdgeRef{Func: fn.Name, From: from, To: to}]++
		}
		blockIdx = nextIdx
	}
}

// branchTaken evaluates a conditional branch against the register file.
func branchTaken(in *ir.Instr, regs []int64) bool {
	switch in.Op {
	case ir.OpBeq:
		return regs[in.A] == 0
	case ir.OpBne:
		return regs[in.A] != 0
	case ir.OpBlt:
		return regs[in.A] < 0
	case ir.OpBle:
		return regs[in.A] <= 0
	case ir.OpBgt:
		return regs[in.A] > 0
	case ir.OpBge:
		return regs[in.A] >= 0
	case ir.OpBeq2:
		return regs[in.A] == regs[in.B]
	case ir.OpBne2:
		return regs[in.A] != regs[in.B]
	case ir.OpFbeq, ir.OpFbne, ir.OpFblt, ir.OpFble, ir.OpFbgt, ir.OpFbge:
		a := math.Float64frombits(uint64(regs[in.A]))
		switch in.Op {
		case ir.OpFbeq:
			return a == 0
		case ir.OpFbne:
			return a != 0
		case ir.OpFblt:
			return a < 0
		case ir.OpFble:
			return a <= 0
		case ir.OpFbgt:
			return a > 0
		case ir.OpFbge:
			return a >= 0
		}
	}
	panic("interp: branchTaken on non-branch " + in.Op.String())
}

func intALU(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.OpAddQ:
		return a + b, nil
	case ir.OpSubQ:
		return a - b, nil
	case ir.OpMulQ:
		return a * b, nil
	case ir.OpDivQ:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a / b, nil
	case ir.OpRemQ:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a % b, nil
	case ir.OpAndQ:
		return a & b, nil
	case ir.OpOrQ:
		return a | b, nil
	case ir.OpXorQ:
		return a ^ b, nil
	case ir.OpSllQ:
		return a << (uint64(b) & 63), nil
	case ir.OpSrlQ:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case ir.OpCmpEq:
		if a == b {
			return 1, nil
		}
		return 0, nil
	case ir.OpCmpLt:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case ir.OpCmpLe:
		if a <= b {
			return 1, nil
		}
		return 0, nil
	}
	panic("interp: intALU on " + op.String())
}

// runtime dispatches the OpRtcall intrinsics.
func (m *machine) runtime(id int64, regs []int64) error {
	switch id {
	case ir.RtAlloc:
		n := regs[ir.RegA0]
		if n < 0 {
			n = 0
		}
		if m.heapPtr+n >= m.heapTop {
			return ErrHeap
		}
		regs[ir.RegV0] = m.heapPtr
		m.heapPtr += n
	case ir.RtInput:
		if len(m.cfg.Input) == 0 {
			regs[ir.RegV0] = 0
		} else {
			i := regs[ir.RegA0] % int64(len(m.cfg.Input))
			if i < 0 {
				i += int64(len(m.cfg.Input))
			}
			regs[ir.RegV0] = m.cfg.Input[i]
		}
	case ir.RtPrint:
		m.prof.Outputs = append(m.prof.Outputs, regs[ir.RegA0])
	case ir.RtPrintF:
		m.prof.FOutputs = append(m.prof.FOutputs, math.Float64frombits(uint64(regs[ir.RegFA0])))
	case ir.RtRand:
		m.rng = m.rng*6364136223846793005 + 1442695040888963407
		regs[ir.RegV0] = int64((m.rng >> 33) & 0x7FFFFFFF)
	default:
		return ErrBadRuntime
	}
	return nil
}
