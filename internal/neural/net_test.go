package neural

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestForwardRange(t *testing.T) {
	n := New(Config{Inputs: 5, Hidden: 3, Seed: 7})
	f := func(a, b, c, d, e float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 10)
		}
		y := n.Forward([]float64{clamp(a), clamp(b), clamp(c), clamp(d), clamp(e)})
		return y >= 0 && y <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(Config{Inputs: 4, Hidden: 3, Seed: 5})
	b := New(Config{Inputs: 4, Hidden: 3, Seed: 5})
	c := New(Config{Inputs: 4, Hidden: 3, Seed: 6})
	x := []float64{1, -1, 0.5, 2}
	if a.Forward(x) != b.Forward(x) {
		t.Error("same seed must give identical networks")
	}
	if a.Forward(x) == c.Forward(x) {
		t.Error("different seeds should differ")
	}
}

// TestGradients verifies the backpropagation gradients against finite
// differences of the paper's weighted loss.
func TestGradients(t *testing.T) {
	cfg := Config{Inputs: 3, Hidden: 2, Seed: 11}
	xs := [][]float64{{0.5, -1, 2}, {1, 1, -0.5}, {-2, 0.3, 0.7}}
	ts := []float64{0.9, 0.2, 0.6}
	ws := []float64{0.5, 0.3, 0.2}

	n := New(cfg)
	grads := rawGradient(n, xs, ts, ws)
	loss := func() float64 { return n.Loss(xs, ts, ws) }
	const h = 1e-6
	checkGrad := func(name string, get func() float64, set func(float64)) {
		orig := get()
		set(orig + h)
		up := loss()
		set(orig - h)
		down := loss()
		set(orig)
		numeric := (up - down) / (2 * h)
		analytic := grads[name]
		if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %g vs analytic %g", name, numeric, analytic)
		}
	}
	checkGrad("w00", func() float64 { return n.Weight(0, 0) }, func(v float64) { n.SetWeight(0, 0, v) })
	checkGrad("w11", func() float64 { return n.Weight(1, 1) }, func(v float64) { n.SetWeight(1, 1, v) })
	checkGrad("b0", func() float64 { return n.B[0] }, func(v float64) { n.B[0] = v })
	checkGrad("v1", func() float64 { return n.V[1] }, func(v float64) { n.V[1] = v })
	checkGrad("a", func() float64 { return n.A }, func(v float64) { n.A = v })
}

// rawGradient computes the batch gradient with an independent, straight
// implementation of the chain rule, mirroring the derivation in Train.
func rawGradient(n *Net, xs [][]float64, ts, ws []float64) map[string]float64 {
	out := map[string]float64{}
	gW := make([][]float64, n.Hidden)
	for i := range gW {
		gW[i] = make([]float64, n.Inputs)
	}
	gB := make([]float64, n.Hidden)
	gV := make([]float64, n.Hidden)
	gA := 0.0
	h := make([]float64, n.Hidden)
	for k, x := range xs {
		n.HiddenActivations(x, h)
		y := n.output(h)
		u := 2*y - 1
		dOut := ws[k] * (1 - 2*ts[k]) * 0.5 * (1 - u*u)
		for i := 0; i < n.Hidden; i++ {
			gV[i] += dOut * h[i]
			dHid := dOut * n.V[i] * (1 - h[i]*h[i])
			gB[i] += dHid
			for j := range x {
				gW[i][j] += dHid * x[j]
			}
		}
		gA += dOut
	}
	out["w00"] = gW[0][0]
	out["w11"] = gW[1][1]
	out["b0"] = gB[0]
	out["v1"] = gV[1]
	out["a"] = gA
	return out
}

func TestLearnsXOR(t *testing.T) {
	xs := [][]float64{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}}
	ts := []float64{0, 1, 1, 0}
	ws := []float64{0.25, 0.25, 0.25, 0.25}
	// XOR is sensitive to initialization under plain batch descent without
	// momentum; a small deterministic seed sweep must find a solver.
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := Config{Inputs: 2, Hidden: 8, Seed: seed, LearnRate: 0.5,
			MaxEpochs: 4000, Patience: 4000}
		n := New(cfg)
		n.Train(cfg, xs, ts, ws)
		solved := true
		for k, x := range xs {
			if (n.Forward(x) > 0.5) != (ts[k] == 1) {
				solved = false
			}
		}
		if solved {
			return
		}
	}
	t.Error("no seed in 1..8 learned XOR")
}

func TestWeightedLossFavorsHeavyExamples(t *testing.T) {
	// Two contradictory examples with identical inputs: the heavier one
	// must win the prediction.
	xs := [][]float64{{1, 1}, {1, 1}}
	ts := []float64{1, 0}
	ws := []float64{0.9, 0.1}
	cfg := Config{Inputs: 2, Hidden: 4, Seed: 2, MaxEpochs: 500, Patience: 500}
	n := New(cfg)
	n.Train(cfg, xs, ts, ws)
	if y := n.Forward([]float64{1, 1}); y <= 0.5 {
		t.Errorf("heavy taken example lost: y = %g", y)
	}
}

func TestEarlyStopping(t *testing.T) {
	xs := [][]float64{{1}, {-1}}
	ts := []float64{1, 0}
	ws := []float64{0.5, 0.5}
	cfg := Config{Inputs: 1, Hidden: 2, Seed: 4, MaxEpochs: 10_000, Patience: 10}
	n := New(cfg)
	res := n.Train(cfg, xs, ts, ws)
	if !res.StoppedEarly {
		t.Error("trivially separable data must stop early")
	}
	if res.Epochs >= 10_000 {
		t.Error("ran to MaxEpochs despite early stopping")
	}
	if res.BestThresholded != 0 {
		t.Errorf("best thresholded error = %g, want 0", res.BestThresholded)
	}
}

func TestTrainEmpty(t *testing.T) {
	n := New(Config{Inputs: 2, Hidden: 2, Seed: 1})
	res := n.Train(Config{Inputs: 2, Hidden: 2}, nil, nil, nil)
	if res.Epochs != 0 {
		t.Error("training on nothing must do nothing")
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	cfg := Config{Inputs: 3, Hidden: 2, Seed: 9}
	n := New(cfg)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var m Net
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 1.2}
	if n.Forward(x) != m.Forward(x) {
		t.Error("serialized network differs")
	}
}

func TestDescribe(t *testing.T) {
	n := New(Config{Inputs: 86, Hidden: 12, Seed: 1})
	d := n.Describe()
	for _, want := range []string{"86", "12", "tanh"} {
		if !contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestForwardBatchValidatesLengths pins the previously-untested panic path:
// a mismatched out slice fails loudly up front instead of indexing past the
// end mid-batch.
func TestForwardBatchValidatesLengths(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: 4, Seed: 1})
	h := make([]float64, n.Hidden)
	xs := [][]float64{{1, 0, 0}, {0, 1, 0}}

	for _, tc := range []struct {
		name string
		out  []float64
	}{
		{"short out", make([]float64, 1)},
		{"long out", make([]float64, 3)},
		{"nil out", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: ForwardBatch did not panic", tc.name)
				}
			}()
			n.ForwardBatch(h, xs, tc.out)
		}()
	}
}

// TestForwardBatchEmpty asserts the empty batch is an explicit no-op for
// every nil/empty combination, including a nil scratch buffer.
func TestForwardBatchEmpty(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: 4, Seed: 1})
	n.ForwardBatch(nil, nil, nil)
	n.ForwardBatch(make([]float64, n.Hidden), [][]float64{}, []float64{})
}

// TestForwardBatchMatchesForward asserts the batch hook is exactly the
// per-row forward pass.
func TestForwardBatchMatchesForward(t *testing.T) {
	n := New(Config{Inputs: 5, Hidden: 6, Seed: 2})
	xs := [][]float64{
		{1, 0, 0, -2, 0.5},
		{0, 0, 0, 0, 0},
		{-1, 1, -1, 1, -1},
	}
	h := make([]float64, n.Hidden)
	out := make([]float64, len(xs))
	n.ForwardBatch(h, xs, out)
	for i, x := range xs {
		if want := n.Forward(x); out[i] != want {
			t.Errorf("row %d: batch %v, forward %v", i, out[i], want)
		}
	}
}
