// Package core implements ESP — evidence-based static prediction — the
// paper's primary contribution. A corpus of programs is compiled, executed
// to collect per-branch dynamic behaviour, and reduced to (static feature
// set, branch probability, normalized branch weight) triples; a classifier
// (the Section 3.1.1 neural network, or the Section 3.1.2 decision tree)
// maps static features to a taken-probability; and new programs are
// predicted from their static features alone.
package core

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
)

// ProgramData bundles everything ESP knows about one program: the compiled
// IR, the analyzed branch sites, the Table 2 feature vectors, and the
// dynamic profile from one profiling run.
type ProgramData struct {
	Name     string
	Language ir.Language
	Prog     *ir.Program
	Sites    *features.ProgramSites
	Vectors  []features.Vector
	Profile  *interp.Profile
}

// Analyze runs a compiled program under the given interpreter configuration
// and extracts its branch sites and static features.
func Analyze(prog *ir.Program, lang ir.Language, runCfg interp.Config) (*ProgramData, error) {
	prof, err := interp.Run(prog, runCfg)
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", prog.Name, err)
	}
	ps := features.Collect(prog)
	return &ProgramData{
		Name:     prog.Name,
		Language: lang,
		Prog:     prog,
		Sites:    ps,
		Vectors:  features.ExtractAll(ps),
		Profile:  prof,
	}, nil
}

// AnalysisCache is the load/store surface AnalyzeCached needs. A plain
// *artifact.Cache satisfies it (including a typed nil, whose methods
// degrade to miss/no-op); internal/cluster substitutes a peer-backed
// implementation that consults replica caches before a miss.
type AnalysisCache interface {
	Load(key string) (*artifact.Record, bool)
	Store(key string, rec *artifact.Record) error
}

// AnalyzeCached is Analyze backed by a persistent artifact cache: the
// expensive profiling run (and feature-vector extraction) is skipped when
// the cache holds an entry for this exact program and configuration. Site
// structures hold pointers into the live IR, so they are rebuilt from prog
// on every path; a hit is bit-identical to a fresh Analyze because both the
// profile and the vectors are pure functions of (prog, runCfg). A nil cache
// degrades to plain Analyze, and a failed store is ignored — the cache is
// an optimization, never a correctness dependency.
func AnalyzeCached(cache AnalysisCache, prog *ir.Program, lang ir.Language, runCfg interp.Config) (*ProgramData, error) {
	if cache == nil {
		return Analyze(prog, lang, runCfg)
	}
	key := artifact.Key(prog, runCfg)
	if rec, ok := cache.Load(key); ok {
		ps := features.Collect(prog)
		if len(rec.Vectors) == len(ps.Sites) {
			return &ProgramData{
				Name:     prog.Name,
				Language: lang,
				Prog:     prog,
				Sites:    ps,
				Vectors:  rec.Vectors,
				Profile:  rec.Profile,
			}, nil
		}
	}
	pd, err := Analyze(prog, lang, runCfg)
	if err != nil {
		return nil, err
	}
	// Best effort: a full disk or injected fault costs only the warm start.
	_ = cache.Store(key, &artifact.Record{Profile: pd.Profile, Vectors: pd.Vectors})
	return pd, nil
}

// Example is one training observation: a static feature vector with the
// branch's dynamic behaviour from the corpus.
type Example struct {
	Vector features.Vector
	// Target is t_k: the fraction of executions in which the branch was
	// taken.
	Target float64
	// Weight is n_k: the branch's executions normalized by the program's
	// total branch executions, so every corpus program contributes equal
	// total weight.
	Weight float64
}

// Examples converts a program's profile into training examples, skipping
// branches that never executed (they carry no evidence).
func (pd *ProgramData) Examples() []Example {
	out := make([]Example, 0, len(pd.Vectors))
	for i, s := range pd.Sites.Sites {
		c := pd.Profile.Branches[s.Ref]
		if c == nil || c.Executed == 0 {
			continue
		}
		out = append(out, Example{
			Vector: pd.Vectors[i],
			Target: c.TakenFraction(),
			Weight: pd.Profile.NormalizedWeight(s.Ref),
		})
	}
	return out
}
