package interp_test

// This file is the differential property test of the profiling pipeline:
// randomized small MinC programs — drawn from the shared gencorpus
// generator, cycling through every branch-character mix — are compiled and
// executed, and the collected branch profiles are checked against
// invariants that must hold for every program: counts sum correctly, taken
// never exceeds executed, edges are consistent with branch counts, and two
// runs of the same program are bit-identical.

import (
	"fmt"
	"testing"

	"repro/internal/codegen"
	"repro/internal/gencorpus"
	"repro/internal/interp"
	"repro/internal/ir"
)

// runProfile compiles (stdlib linked, as for every corpus program) and
// executes one generated program.
func runProfile(t *testing.T, p gencorpus.Program) *interp.Profile {
	t.Helper()
	prog, err := p.Entry().Compile(codegen.Default)
	if err != nil {
		t.Fatalf("generated program does not compile: %v\n%s", err, p.Source)
	}
	prof, err := interp.Run(prog, interp.Config{
		Input:        p.Input,
		Seed:         p.RunSeed,
		CollectEdges: true,
	})
	if err != nil {
		t.Fatalf("generated program does not run: %v\n%s", err, p.Source)
	}
	return prof
}

func TestRandomProgramProfileInvariants(t *testing.T) {
	spec := gencorpus.Spec{Seed: 1000, N: 60}
	for pi := 0; pi < spec.N; pi++ {
		p := spec.Program(pi)
		t.Run(fmt.Sprintf("seed%d", pi), func(t *testing.T) {
			t.Parallel()
			prof := runProfile(t, p)

			// Branch-count invariants: taken <= executed, nothing negative,
			// and the per-site counts sum to the program totals.
			var sumExec, sumTaken int64
			for ref, c := range prof.Branches {
				if c.Executed < 0 || c.Taken < 0 {
					t.Fatalf("%v: negative counts %+v", ref, c)
				}
				if c.Taken > c.Executed {
					t.Fatalf("%v: taken %d > executed %d", ref, c.Taken, c.Executed)
				}
				if f := c.TakenFraction(); f < 0 || f > 1 {
					t.Fatalf("%v: taken fraction %v", ref, f)
				}
				sumExec += c.Executed
				sumTaken += c.Taken
			}
			if sumExec != prof.CondExec {
				t.Fatalf("per-site executions sum to %d, profile says %d", sumExec, prof.CondExec)
			}
			if sumTaken != prof.CondTaken {
				t.Fatalf("per-site takens sum to %d, profile says %d", sumTaken, prof.CondTaken)
			}
			if prof.CondExec > prof.Insns {
				t.Fatalf("more conditional branches (%d) than instructions (%d)",
					prof.CondExec, prof.Insns)
			}

			// Normalized weights are the paper's n_k: they must sum to 1
			// over executed sites (within float tolerance).
			if prof.CondExec > 0 {
				var wsum float64
				for ref := range prof.Branches {
					wsum += prof.NormalizedWeight(ref)
				}
				if wsum < 0.999999 || wsum > 1.000001 {
					t.Fatalf("normalized weights sum to %v", wsum)
				}
			}

			// Edge counts are consistent with branch counts: for every
			// branch site, the taken-edge count equals Taken.
			edgeFrom := map[ir.BranchRef]int64{}
			for e, n := range prof.Edges {
				if n < 0 {
					t.Fatalf("edge %v has negative count %d", e, n)
				}
				edgeFrom[ir.BranchRef{Func: e.Func, Block: e.From}] += n
			}
			for ref, c := range prof.Branches {
				if out, ok := edgeFrom[ref]; ok && out != c.Executed {
					t.Fatalf("%v: %d outgoing edge transitions for %d executions",
						ref, out, c.Executed)
				}
			}

			// Determinism: the same program, input, and seed reproduce the
			// profile exactly — counts, edges, outputs, and result.
			again := runProfile(t, p)
			if again.Insns != prof.Insns || again.CondExec != prof.CondExec ||
				again.CondTaken != prof.CondTaken || again.Result != prof.Result {
				t.Fatalf("rerun diverged: insns %d/%d cond %d/%d taken %d/%d result %d/%d",
					prof.Insns, again.Insns, prof.CondExec, again.CondExec,
					prof.CondTaken, again.CondTaken, prof.Result, again.Result)
			}
			if len(again.Branches) != len(prof.Branches) {
				t.Fatalf("rerun has %d branch sites, first run %d",
					len(again.Branches), len(prof.Branches))
			}
			for ref, c := range prof.Branches {
				c2 := again.Branches[ref]
				if c2 == nil || *c2 != *c {
					t.Fatalf("%v: rerun count %+v != %+v", ref, c2, c)
				}
			}
			if len(again.Edges) != len(prof.Edges) {
				t.Fatalf("rerun has %d edges, first run %d", len(again.Edges), len(prof.Edges))
			}
			for e, n := range prof.Edges {
				if again.Edges[e] != n {
					t.Fatalf("edge %v: rerun %d != %d", e, again.Edges[e], n)
				}
			}
		})
	}
}

// TestGeneratedProgramsExerciseBranches guards the generator itself: across
// the differential corpus a healthy share of programs must actually execute
// conditional branches, or the invariants above are vacuous.
func TestGeneratedProgramsExerciseBranches(t *testing.T) {
	withBranches := 0
	spec := gencorpus.Spec{Seed: 2000, N: 20}
	for pi := 0; pi < spec.N; pi++ {
		prof := runProfile(t, spec.Program(pi))
		if prof.CondExec > 0 {
			withBranches++
		}
	}
	if withBranches < 15 {
		t.Fatalf("only %d/20 generated programs executed a conditional branch", withBranches)
	}
}
