GO ?= go

.PHONY: all build test vet fmt-check check bench bench-hot bench-serve bench-gencorpus bench-pgo bench-hwsim race fuzz chaos cluster-chaos gencorpus-check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race runs the data-race detector over the concurrent packages (parallel
# cross-validation folds, sharded training, the prediction scratch pool,
# the espserve batching worker pool, and concurrent artifact-cache
# readers/writers).
race:
	$(GO) test -race ./internal/core ./internal/neural ./internal/interp ./internal/serve ./internal/faultinject ./internal/artifact ./internal/experiments ./internal/obs ./internal/gencorpus ./internal/cluster ./internal/pgo ./internal/hwsim

# gencorpus-check is the short generative soak CI runs on every push: the
# generator property suite (~200 programs across the five mixes, each
# parsed, compiled, and executed under guard budgets) with the race
# detector watching the parallel shard-analysis path.
gencorpus-check:
	$(GO) test -race -short ./internal/gencorpus

# chaos runs the fault-injection suite under the race detector: seeded
# error/latency/panic faults at every registered site while concurrent
# clients verify bit-identical or correctly-degraded answers, drain
# completion, and goroutine hygiene.
chaos:
	$(GO) test -race -run Chaos ./internal/serve/... ./internal/faultinject/...

# cluster-chaos runs the replicated-serving chaos suite under the race
# detector: a seeded injector fires faults at the routing, peer-cache, and
# reload sites while a replica is killed and restarted mid-load, a peer
# partition opens and heals, and hot reloads land mid-burst — asserting
# every completed answer is bit-identical or exactly-degraded, loss stays
# bounded, and no goroutines leak.
cluster-chaos:
	$(GO) test -race -run 'ClusterChaos|Peer|Router|Ring' ./internal/cluster

# fuzz runs every fuzz target for a short budget, the same way CI does.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=20s ./internal/minic
	$(GO) test -run=NONE -fuzz=FuzzEncode -fuzztime=20s ./internal/features
	$(GO) test -run=NONE -fuzz=FuzzQuantDot -fuzztime=20s ./internal/neural
	$(GO) test -run=NONE -fuzz=FuzzGenCorpus -fuzztime=20s ./internal/gencorpus

check: build vet fmt-check test race chaos cluster-chaos

# bench runs the full benchmark suite (every table/figure plus the component
# micro-benchmarks). Expect several minutes.
bench:
	$(GO) test -bench . -benchmem -timeout 3600s .

# bench-hot runs just the hot-path benchmarks this repo optimizes: ESP
# cross-validation, sparse neural training, and profile collection (the
# micro-op interpreter on espresso and tomcatv).
bench-hot:
	$(GO) test -run XXX -benchmem -timeout 3600s \
		-bench 'BenchmarkTable4ESPCrossVal|BenchmarkNeuralTrainSparse|BenchmarkInterpProfile|BenchmarkInterpretTomcatv' .

# bench-json regenerates the machine-readable BENCH_<name>.json results
# that CI uploads as artifacts. BENCH_profile.json is committed as the
# baseline for the profiling hot path.
bench-json:
	$(GO) run ./cmd/espbench -bench all -benchout .

# bench-serve measures the serving request path — the committed float
# pipeline (encoding/json + float64 forward) against the quantized
# zero-allocation arena pipeline — and regenerates BENCH_serve.json,
# committed as the baseline the >=5x acceptance test guards.
bench-serve:
	$(GO) run ./cmd/espbench -serve -benchout .

# bench-gencorpus measures the generative-corpus pipeline (generation,
# cold/warm analysis through the artifact cache, streaming training) and
# regenerates BENCH_gencorpus.json, committed as the throughput baseline.
bench-gencorpus:
	$(GO) run ./cmd/espbench -gencorpus -benchout .

# bench-pgo runs the ESP-guided optimization study (simulated cycles of
# unguided vs ESP/heuristic/perfect-guided binaries over the whole corpus
# plus a generated slice) and regenerates BENCH_pgo.json, committed as the
# guided-optimization baseline.
bench-pgo:
	$(GO) run ./cmd/espbench -pgo -benchout .

# bench-hwsim runs the hardware-predictor co-simulation (dynamic
# 1-bit/2-bit/gshare/TAGE counters seeded from each static hint source,
# steady-state and cold-start) plus the branch-predictability taxonomy over
# the whole corpus and a generated slice, and regenerates BENCH_hwsim.json,
# committed as the co-simulation baseline.
bench-hwsim:
	$(GO) run ./cmd/espbench -hwsim -benchout .
