package corpus

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/ir"
)

func TestRegistryShape(t *testing.T) {
	if got := len(Study()); got != 43 {
		t.Errorf("study corpus has %d programs, want 43 (the paper's corpus)", got)
	}
	if got := len(All()); got != 46 {
		t.Errorf("full corpus has %d programs, want 46 (43 + 3 Scheme)", got)
	}
	wantSuite := map[Suite]int{
		SuiteOtherC: 15, SuiteSPECC: 8, SuiteSPECFortran: 11,
		SuitePerfectClub: 9, SuiteScheme: 3,
	}
	for s, want := range wantSuite {
		if got := len(BySuite(s)); got != want {
			t.Errorf("suite %q has %d programs, want %d", s, got, want)
		}
	}
	if got := len(ByLanguage(ir.LangC)); got != 23 {
		t.Errorf("C group has %d programs, want 23", got)
	}
	if got := len(ByLanguage(ir.LangFortran)); got != 20 {
		t.Errorf("Fortran group has %d programs, want 20", got)
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate corpus entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.About == "" {
			t.Errorf("%s: missing About", e.Name)
		}
		if e.Seed == 0 {
			t.Errorf("%s: zero seed", e.Name)
		}
	}
}

// TestAllProgramsRun compiles and executes every corpus program under the
// default target and sanity-checks the resulting profile.
func TestAllProgramsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := e.Compile(codegen.Default)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			prof, err := interp.Run(prog, e.RunConfig())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if prof.CondExec < 3_000 {
				t.Errorf("only %d conditional branch executions; workload too small", prof.CondExec)
			}
			if prof.CondExec > 3_000_000 {
				t.Errorf("%d conditional branch executions; workload too large for the harness", prof.CondExec)
			}
			if prof.ExecutedSites() < 8 {
				t.Errorf("only %d branch sites executed; program too simple", prof.ExecutedSites())
			}
			pct := prof.PercentTaken()
			if pct < 5 || pct > 99.9 {
				t.Errorf("%%taken = %.1f; outside plausible range", pct)
			}
		})
	}
}

// TestDeterministicProfiles re-runs a sample of programs and checks for
// bit-identical profiles (the whole evaluation depends on determinism).
func TestDeterministicProfiles(t *testing.T) {
	for _, name := range []string{"bc", "tomcatv", "boyer", "gcc"} {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("missing corpus entry %q", name)
		}
		prog1, err := e.Compile(codegen.Default)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog2, _ := e.Compile(codegen.Default)
		p1, err := interp.Run(prog1, e.RunConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p2, err := interp.Run(prog2, e.RunConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p1.Insns != p2.Insns || p1.CondExec != p2.CondExec || p1.CondTaken != p2.CondTaken {
			t.Errorf("%s: non-deterministic profile: %+v vs %+v", name, p1.Insns, p2.Insns)
		}
		for ref, c1 := range p1.Branches {
			c2 := p2.Branches[ref]
			if c2 == nil || c1.Executed != c2.Executed || c1.Taken != c2.Taken {
				t.Errorf("%s: branch %v differs between runs", name, ref)
			}
		}
	}
}

// TestAllProgramsRunAllTargets checks that the cross-architecture and
// compiler configurations preserve every program's semantics (outputs
// identical) — required for Tables 6 and 7 to be meaningful.
func TestAllProgramsRunAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-target sweep in short mode")
	}
	targets := []codegen.Target{codegen.AlphaCCv2, codegen.AlphaGEM, codegen.AlphaGCC, codegen.MIPSCC}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			base := mustRun(t, e, codegen.Default)
			for _, tgt := range targets {
				got := mustRun(t, e, tgt)
				if got.Result != base.Result {
					t.Errorf("%s: result %d, want %d", tgt.Name, got.Result, base.Result)
				}
				if len(got.Outputs) != len(base.Outputs) || len(got.FOutputs) != len(base.FOutputs) {
					t.Fatalf("%s: output shape differs", tgt.Name)
				}
				for i := range got.Outputs {
					if got.Outputs[i] != base.Outputs[i] {
						t.Errorf("%s: output[%d] = %d, want %d", tgt.Name, i, got.Outputs[i], base.Outputs[i])
					}
				}
				for i := range got.FOutputs {
					if got.FOutputs[i] != base.FOutputs[i] {
						t.Errorf("%s: foutput[%d] = %g, want %g", tgt.Name, i, got.FOutputs[i], base.FOutputs[i])
					}
				}
			}
		})
	}
}

func mustRun(t *testing.T, e Entry, tgt codegen.Target) *interp.Profile {
	t.Helper()
	prog, err := e.Compile(tgt)
	if err != nil {
		t.Fatalf("%s/%s: compile: %v", e.Name, tgt.Name, err)
	}
	prof, err := interp.Run(prog, e.RunConfig())
	if err != nil {
		t.Fatalf("%s/%s: run: %v", e.Name, tgt.Name, err)
	}
	return prof
}
