package neural

import (
	"math"
	"testing"
)

// TestTanhApproxAccuracy bounds the LUT's error against math.Tanh over a
// dense sweep, including the clamp region, negatives, and specials. The
// bound (2e-6) is three orders of magnitude below the quantization deltas
// the calibration sweep absorbs (QuantSweepPoint.MaxAbsDelta ~ 1e-3), which
// is what justifies treating the approximation as part of the quantized
// model rather than a separate error source.
func TestTanhApproxAccuracy(t *testing.T) {
	const bound = 2e-6
	var worst float64
	for x := -12.0; x <= 12.0; x += 1e-3 {
		if d := math.Abs(tanhApprox(x) - math.Tanh(x)); d > worst {
			worst = d
		}
	}
	if worst > bound {
		t.Fatalf("tanhApprox max error %g over [-12,12], want <= %g", worst, bound)
	}
	t.Logf("max |tanhApprox - tanh| = %g", worst)

	for _, x := range []float64{0, -0.0, tanhMax, -tanhMax, math.Inf(1), math.Inf(-1)} {
		got, want := tanhApprox(x), math.Tanh(x)
		if math.Abs(got-want) > bound {
			t.Errorf("tanhApprox(%v) = %v, want ~%v", x, got, want)
		}
	}
	if y := tanhApprox(math.NaN()); y != 1 && y != -1 {
		t.Errorf("tanhApprox(NaN) = %v, want a clamp, not a poisoned value", y)
	}
	// Oddness: serving negates through the same table, so the two halves
	// must be exact mirrors.
	for _, x := range []float64{0.1, 1.5, 7.999, 42} {
		if tanhApprox(-x) != -tanhApprox(x) {
			t.Errorf("tanhApprox not odd at %v", x)
		}
	}
}

// TestForwardAccMatchesForward pins the decomposition contract ForwardAcc
// documents: feeding it accumulators computed any which way — here, split
// into arbitrary segment sums — must reproduce Forward bit for bit.
func TestForwardAccMatchesForward(t *testing.T) {
	const inputs, hidden = 57, 9
	n := New(Config{Inputs: inputs, Hidden: hidden, Seed: 7})
	q, err := Quantize(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	qx := make([]int8, inputs)
	for i := range qx {
		qx[i] = int8((i*37+11)%255 - 127)
	}
	want := q.Forward(qx)

	acc := make([]int32, hidden)
	for i := 0; i < hidden; i++ {
		row := q.WQ[i*inputs : (i+1)*inputs]
		// Sum in deliberately odd-sized segments to exercise associativity.
		for lo := 0; lo < inputs; {
			hi := lo + 1 + (lo % 7)
			if hi > inputs {
				hi = inputs
			}
			var part int32
			for j := lo; j < hi; j++ {
				part += int32(row[j]) * int32(qx[j])
			}
			acc[i] += part
			lo = hi
		}
	}
	if got := q.ForwardAcc(acc); got != want {
		t.Fatalf("ForwardAcc %v, Forward %v — not bit-identical", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Error("short acc did not panic")
		}
	}()
	q.ForwardAcc(acc[:hidden-1])
}
