package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/dtree"
	"repro/internal/features"
	"repro/internal/heuristics"
	"repro/internal/mbr"
	"repro/internal/neural"
)

// ClassifierKind selects the function approximator behind ESP.
type ClassifierKind int

// Supported classifiers.
const (
	// NeuralNet is the paper's primary classifier (Section 3.1.1).
	NeuralNet ClassifierKind = iota
	// DecisionTree is the Section 3.1.2 alternative.
	DecisionTree
	// MemoryBased is memory-based reasoning, the other alternative the
	// paper names in Section 6.
	MemoryBased
)

// String names the classifier.
func (k ClassifierKind) String() string {
	switch k {
	case DecisionTree:
		return "decision-tree"
	case MemoryBased:
		return "memory-based"
	}
	return "neural-net"
}

// Config parameterizes ESP training.
type Config struct {
	// Classifier selects the model type (default NeuralNet).
	Classifier ClassifierKind
	// Hidden is the hidden-layer width (default 20).
	Hidden int
	// Seed makes training deterministic (default 1).
	Seed uint64
	// Net carries neural-net training overrides (epochs, learning rate…).
	Net neural.Config
	// Tree carries decision-tree overrides.
	Tree dtree.Config
	// MBR carries memory-based-reasoning overrides.
	MBR mbr.Config
	// ExcludeFeatures lists Table 2 feature indices to hide from the model
	// (feature-set ablations): excluded features read as Unknown.
	ExcludeFeatures []int
	// UniformWeights trains with equal example weights instead of the
	// paper's normalized branch weights n_k (the loss ablation); the
	// evaluation metric stays execution-weighted either way.
	UniformWeights bool
	// IncludeLibraryFeature exposes the library-subroutine feature
	// (features.FLibraryProc) to the model. The paper's feature set is the
	// 24 features of Table 2; the 25th is its Section 6 future-work
	// extension, so it is opt-in.
	IncludeLibraryFeature bool
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Net.MaxEpochs == 0 {
		c.Net.MaxEpochs = 600
	}
	if c.Net.Patience == 0 {
		c.Net.Patience = 60
	}
	if !c.IncludeLibraryFeature {
		c.ExcludeFeatures = append(append([]int(nil), c.ExcludeFeatures...),
			features.FLibraryProc)
	}
	return c
}

// Model is a trained ESP predictor.
type Model struct {
	Cfg     Config
	Encoder *features.Encoder
	Net     *neural.Net
	Tree    *dtree.Tree
	MBR     *mbr.Model
	// TrainStats records the neural training run (empty for trees).
	TrainStats neural.TrainResult

	excluded map[int]bool
	// scratch pools the per-prediction encode/hidden buffers so
	// TakenProbability stays allocation-free and safe for concurrent use.
	scratch sync.Pool
}

// predictBuf is the reusable per-prediction scratch.
type predictBuf struct {
	x []float64
	h []float64
}

// Train fits an ESP model on the pooled examples of a corpus of programs.
func Train(corpus []*ProgramData, cfg Config) *Model {
	var examples []Example
	for _, pd := range corpus {
		examples = append(examples, pd.Examples()...)
	}
	return TrainExamples(examples, cfg)
}

// TrainExamples fits an ESP model on explicit examples.
func TrainExamples(examples []Example, cfg Config) *Model {
	cfg = cfg.withDefaults()
	excluded := excludeSet(cfg.ExcludeFeatures)
	masked := make([]features.Vector, len(examples))
	targets := make([]float64, len(examples))
	weightVals := make([]float64, len(examples))
	for i, ex := range examples {
		masked[i] = maskVector(ex.Vector, excluded)
		targets[i] = ex.Target
		weightVals[i] = ex.Weight
	}
	return trainMasked(masked, targets, weightVals, cfg, excluded)
}

// trainMasked fits a model on already-masked feature vectors. Cross-validation
// masks each program's vectors once and reuses them across all folds, so the
// masking work is hoisted out of here.
func trainMasked(masked []features.Vector, targets, weightVals []float64, cfg Config, excluded map[int]bool) *Model {
	m := &Model{Cfg: cfg, excluded: excluded}
	if cfg.UniformWeights {
		uniform := make([]float64, len(masked))
		for i := range uniform {
			uniform[i] = 1 / float64(len(masked))
		}
		weightVals = uniform
	}
	m.Encoder = features.NewEncoder(masked)

	switch cfg.Classifier {
	case DecisionTree:
		tex := make([]dtree.Example, len(masked))
		for i := range masked {
			tex[i] = dtree.Example{
				Values: masked[i].Values,
				TakenW: weightVals[i] * targets[i],
				NotW:   weightVals[i] * (1 - targets[i]),
			}
		}
		m.Tree = dtree.Build(tex, cfg.Tree)
	case MemoryBased:
		mex := make([]mbr.Example, len(masked))
		for i := range masked {
			mex[i] = mbr.Example{
				Values: masked[i].Values,
				Target: targets[i],
				Weight: weightVals[i],
			}
		}
		mcfg := cfg.MBR
		mcfg.InformationWeights = true
		m.MBR = mbr.New(mex, mcfg)
	default:
		xs := m.Encoder.EncodeAllSparse(masked)
		ncfg := cfg.Net
		ncfg.Inputs = m.Encoder.Dim
		ncfg.Hidden = cfg.Hidden
		if ncfg.Seed == 0 {
			ncfg.Seed = cfg.Seed
		}
		m.Net = neural.New(ncfg)
		m.TrainStats = m.Net.TrainCSR(ncfg, xs, targets, weightVals)
	}
	return m
}

func excludeSet(feats []int) map[int]bool {
	if len(feats) == 0 {
		return nil
	}
	s := make(map[int]bool, len(feats))
	for _, f := range feats {
		s[f] = true
	}
	return s
}

// maskVector hides excluded features.
func maskVector(v features.Vector, excluded map[int]bool) features.Vector {
	if len(excluded) == 0 {
		return v
	}
	for f := range excluded {
		if f >= 0 && f < features.NumFeatures {
			v.Values[f] = features.Unknown
		}
	}
	return v
}

// TakenProbability returns the model's estimate that the branch described by
// the feature vector is taken.
func (m *Model) TakenProbability(v features.Vector) float64 {
	v = maskVector(v, m.excluded)
	if m.Tree != nil {
		return m.Tree.Predict(v.Values)
	}
	if m.MBR != nil {
		return m.MBR.Predict(v.Values)
	}
	buf, _ := m.scratch.Get().(*predictBuf)
	if buf == nil {
		buf = &predictBuf{
			x: make([]float64, m.Encoder.Dim),
			h: make([]float64, m.Net.Hidden),
		}
	}
	m.Encoder.Encode(v, buf.x)
	y := m.Net.ForwardInto(buf.h, buf.x)
	m.scratch.Put(buf)
	return y
}

// TakenProbabilities predicts a whole batch of feature vectors into out
// (len(out) must equal len(vs)). For the neural classifier the batch shares
// one pooled scratch — a single Get/Put and one encode buffer for all rows —
// so a serving worker can fold many queued queries into one pass. The
// results are bit-identical to calling TakenProbability per vector.
func (m *Model) TakenProbabilities(vs []features.Vector, out []float64) {
	if len(out) != len(vs) {
		panic(fmt.Sprintf("core: TakenProbabilities out length %d, want %d", len(out), len(vs)))
	}
	if m.Tree != nil || m.MBR != nil {
		for i, v := range vs {
			out[i] = m.TakenProbability(v)
		}
		return
	}
	buf, _ := m.scratch.Get().(*predictBuf)
	if buf == nil {
		buf = &predictBuf{
			x: make([]float64, m.Encoder.Dim),
			h: make([]float64, m.Net.Hidden),
		}
	}
	for i, v := range vs {
		m.Encoder.Encode(maskVector(v, m.excluded), buf.x)
		out[i] = m.Net.ForwardInto(buf.h, buf.x)
	}
	m.scratch.Put(buf)
}

// Predictor adapts the model to the heuristics.Predictor interface used by
// all evaluation code: a branch is predicted taken when the estimated
// probability exceeds 0.5.
type Predictor struct {
	Model *Model
	// Label overrides the reported name.
	Label string
}

// Name implements heuristics.Predictor.
func (p *Predictor) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "ESP(" + p.Model.Cfg.Classifier.String() + ")"
}

// PredictSite implements heuristics.Predictor.
func (p *Predictor) PredictSite(s *features.Site) (heuristics.Prediction, bool) {
	prob := p.Model.TakenProbability(features.Of(s))
	if prob > 0.5 {
		return heuristics.Taken, true
	}
	return heuristics.NotTaken, true
}

// modelJSON is the serialized form of a model.
type modelJSON struct {
	Classifier ClassifierKind    `json:"classifier"`
	Hidden     int               `json:"hidden"`
	Excluded   []int             `json:"excluded,omitempty"`
	Encoder    *features.Encoder `json:"encoder"`
	Net        *neural.Net       `json:"net,omitempty"`
	Tree       *dtree.Tree       `json:"tree,omitempty"`
	MBR        *mbr.Model        `json:"mbr,omitempty"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(modelJSON{
		Classifier: m.Cfg.Classifier,
		Hidden:     m.Cfg.Hidden,
		Excluded:   m.Cfg.ExcludeFeatures,
		Encoder:    m.Encoder,
		Net:        m.Net,
		Tree:       m.Tree,
		MBR:        m.MBR,
	})
}

// Load reads a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: loading model: %w", err)
	}
	if mj.Encoder == nil {
		return nil, fmt.Errorf("core: model file has no encoder")
	}
	mj.Encoder.Rebuild()
	m := &Model{
		Cfg: Config{
			Classifier:      mj.Classifier,
			Hidden:          mj.Hidden,
			ExcludeFeatures: mj.Excluded,
		},
		Encoder:  mj.Encoder,
		Net:      mj.Net,
		Tree:     mj.Tree,
		MBR:      mj.MBR,
		excluded: excludeSet(mj.Excluded),
	}
	if m.Net == nil && m.Tree == nil && m.MBR == nil {
		return nil, fmt.Errorf("core: model file has no classifier")
	}
	return m, nil
}
