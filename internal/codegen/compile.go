package codegen

import (
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/ir"
	"repro/internal/minic"
)

// Compile lowers a parsed (but not yet checked) MinC program to IR for the
// given target. The input AST is cloned, so one parse may be compiled under
// many targets. lang tags every generated function with the source language
// (feature 7 of the paper's static feature set).
func Compile(src *minic.Program, lang ir.Language, tgt Target) (*ir.Program, error) {
	return CompileBounded(src, lang, tgt, guard.Limits{})
}

// CompileBounded is Compile under resource budgets: when lim.CFGBlocks is
// set, any generated function whose control-flow graph exceeds that many
// basic blocks aborts the compilation with an error wrapping
// guard.ErrBudgetExceeded. Serving stacks use it so a hostile submission
// cannot balloon a worker's memory; the reproduction pipeline keeps the
// unlimited Compile.
func CompileBounded(src *minic.Program, lang ir.Language, tgt Target, lim guard.Limits) (*ir.Program, error) {
	return compile(src, lang, tgt, lim, nil, nil)
}

// compile is the shared lowering path behind Compile, CompileBounded, and
// CompilePlanned. plan gates the speculative transformations; meta, when
// non-nil, receives the branch-origin side table.
func compile(src *minic.Program, lang ir.Language, tgt Target, lim guard.Limits, plan *Plan, meta *Meta) (*ir.Program, error) {
	prog := minic.CloneProgram(src)
	if tgt.UnrollLoops > 1 {
		allow := plan.unrollFilter()
		for _, fn := range prog.Funcs {
			fn.Body = unrollBlock(fn.Body, tgt.UnrollLoops, allow).(*minic.BlockStmt)
		}
	}
	if err := minic.Check(prog); err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", prog.Name, err)
	}
	out := &ir.Program{Name: prog.Name}
	for _, g := range prog.Globals {
		out.Globals = append(out.Globals, lowerGlobal(g))
	}
	if tgt.RegSaveStores {
		// The register save area the MIPS-style calling convention spills
		// through (one word per saved register is enough for the corpus).
		out.Globals = append(out.Globals, ir.Global{Name: regSaveGlobal, Size: 4})
	}
	for _, fn := range prog.Funcs {
		g := &generator{prog: prog, tgt: tgt, lang: lang, plan: plan, meta: meta}
		irFn, err := g.lowerFunc(fn)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s.%s: %w", prog.Name, fn.Name, err)
		}
		if lim.CFGBlocks > 0 && len(irFn.Blocks) > lim.CFGBlocks {
			return nil, fmt.Errorf("codegen: %s.%s: CFG has %d blocks, limit %d: %w",
				prog.Name, fn.Name, len(irFn.Blocks), lim.CFGBlocks, guard.ErrBudgetExceeded)
		}
		out.Funcs = append(out.Funcs, irFn)
	}
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("codegen: generated invalid IR: %w", err)
	}
	return out, nil
}

// regSaveGlobal names the register save area emitted for targets with the
// MIPS-style RegSaveStores convention. MinC identifiers cannot start with a
// digit-prefixed dot, so the name cannot collide with program globals.
const regSaveGlobal = ".regsave"

func lowerGlobal(g *minic.VarDecl) ir.Global {
	size := int64(1)
	if g.Type.IsArray() {
		size = g.Type.ArrayLen
	}
	out := ir.Global{Name: g.Name, Size: size, Float: g.Type.IsFloat()}
	switch init := g.Init.(type) {
	case *minic.IntLit:
		out.Init = []int64{init.Value}
	case *minic.FloatLit:
		out.Init = []int64{int64(math.Float64bits(init.Value))}
	}
	return out
}

// generator lowers one function.
type generator struct {
	prog *minic.Program
	tgt  Target
	lang ir.Language
	plan *Plan
	meta *Meta

	// origin is the source statement whose lowering is emitting branches
	// right now; noteBranch stamps it onto every conditional branch site.
	origin BranchOrigin

	fb      *ir.FuncBuilder
	fn      *minic.FuncDecl
	intPool *regPool
	fltPool *regPool

	// frameExtra counts scratch spill slots appended past the sema frame.
	frameExtra int64
	// scratchFree recycles spill slots within a statement.
	scratchFree []int64

	loops []loopCtx
}

type loopCtx struct {
	continueTo *ir.Block
	breakTo    *ir.Block
}

// regPool hands out expression-temporary registers.
type regPool struct {
	free []ir.Reg
}

func newRegPool(float bool, n int) *regPool {
	p := &regPool{}
	// Temps are R1..Rn / F1..Fn (R0/F0 are the return-value registers).
	for i := n; i >= 1; i-- {
		if float {
			p.free = append(p.free, ir.F(i))
		} else {
			p.free = append(p.free, ir.R(i))
		}
	}
	return p
}

func (p *regPool) alloc() ir.Reg {
	if len(p.free) == 0 {
		panic("codegen: temporary register pool exhausted (spill logic failed)")
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return r
}

func (p *regPool) release(r ir.Reg) { p.free = append(p.free, r) }
func (p *regPool) avail() int       { return len(p.free) }

func (g *generator) pool(float bool) *regPool {
	if float {
		return g.fltPool
	}
	return g.intPool
}

// scratchSlot returns a frame offset for a spill slot.
func (g *generator) scratchSlot() int64 {
	if n := len(g.scratchFree); n > 0 {
		s := g.scratchFree[n-1]
		g.scratchFree = g.scratchFree[:n-1]
		return s
	}
	off := g.fn.FrameSize + g.frameExtra
	g.frameExtra++
	return off
}

func (g *generator) releaseScratch(off int64) {
	g.scratchFree = append(g.scratchFree, off)
}

func (g *generator) lowerFunc(fn *minic.FuncDecl) (irFn *ir.Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			irFn = nil
			err = fmt.Errorf("%v", r)
		}
	}()
	g.fn = fn
	g.fb = ir.NewFuncBuilder(fn.Name, g.lang)
	g.intPool = newRegPool(false, g.tgt.intTemps())
	g.fltPool = newRegPool(true, g.tgt.floatTemps())

	// Spill incoming arguments to their frame slots.
	for i, prm := range fn.Params {
		var src ir.Reg
		var store ir.Op
		if prm.Type.IsFloat() {
			src = ir.Reg(int(ir.RegFA0) + i)
			store = ir.OpStt
		} else {
			src = ir.Reg(int(ir.RegA0) + i)
			store = ir.OpStq
		}
		g.fb.Emit(ir.Instr{Op: store, A: ir.RegSP, B: src, Imm: prm.Sym.FrameOff})
	}
	g.genBlock(fn.Body)
	if !g.fb.Terminated() {
		// Implicit return: R0 = 0.
		g.fb.LoadInt(ir.RegV0, 0)
		g.fb.Ret()
	}
	out := g.fb.Func()
	out.NIntArgs = fn.NIntParams
	out.NFltArgs = fn.NFltParams
	out.FrameSize = fn.FrameSize + g.frameExtra
	return out, nil
}

// --- Statements -------------------------------------------------------------

func (g *generator) genBlock(b *minic.BlockStmt) {
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
}

func (g *generator) genStmt(s minic.Stmt) {
	if pos, ok := stmtPos(s); ok {
		g.origin = BranchOrigin{Pos: pos}
	}
	switch st := s.(type) {
	case *minic.BlockStmt:
		g.genBlock(st)
	case *minic.EmptyStmt:
	case *minic.DeclStmt:
		if st.Decl.Init != nil {
			v := g.genExpr(st.Decl.Init)
			g.storeLocal(st.Decl.Sym, v)
			g.freeVal(v)
		}
	case *minic.AssignStmt:
		g.genAssign(st)
	case *minic.ExprStmt:
		v := g.genExprVoid(st.X)
		g.freeVal(v)
	case *minic.IfStmt:
		g.genIf(st)
	case *minic.WhileStmt:
		g.genWhile(st)
	case *minic.DoStmt:
		g.genDo(st)
	case *minic.ForStmt:
		g.genFor(st)
	case *minic.ReturnStmt:
		g.genReturn(st)
	case *minic.BreakStmt:
		ctx := g.loops[len(g.loops)-1]
		g.fb.Jump(ctx.breakTo)
		g.startDeadBlock()
	case *minic.ContinueStmt:
		ctx := g.loops[len(g.loops)-1]
		g.fb.Jump(ctx.continueTo)
		g.startDeadBlock()
	default:
		panic(fmt.Sprintf("codegen: unknown statement %T", s))
	}
}

// startDeadBlock begins a fresh block for any (unreachable) code following a
// jump or return in the middle of a statement list.
func (g *generator) startDeadBlock() {
	nb := g.fb.NewBlock()
	g.fb.SetBlock(nb)
}

func (g *generator) genReturn(st *minic.ReturnStmt) {
	if st.Value != nil {
		v := g.genExpr(st.Value)
		r := g.valReg(v)
		if st.Value.Type().IsFloat() {
			g.fb.Emit(ir.Instr{Op: ir.OpFMov, Dst: ir.RegFV0, A: r})
		} else {
			g.fb.Emit(ir.Instr{Op: ir.OpMov, Dst: ir.RegV0, A: r})
		}
		g.freeVal(v)
	} else {
		g.fb.LoadInt(ir.RegV0, 0)
	}
	g.fb.Ret()
	g.startDeadBlock()
}

func (g *generator) genAssign(st *minic.AssignStmt) {
	v := g.genExpr(st.Value)
	g.genStoreTo(st.Target, v)
	g.freeVal(v)
}

// genStoreTo stores the value into the lvalue target.
func (g *generator) genStoreTo(target minic.Expr, v value) {
	isFloat := target.Type().IsFloat()
	store := ir.OpStq
	if isFloat {
		store = ir.OpStt
	}
	switch t := target.(type) {
	case *minic.Ident:
		sym := t.Sym
		if sym.Global {
			addr := g.intPool.alloc()
			g.fb.Lda(addr, sym.Name, 0)
			g.fb.Emit(ir.Instr{Op: store, A: addr, B: g.valReg(v)})
			g.intPool.release(addr)
			return
		}
		g.fb.Emit(ir.Instr{Op: store, A: ir.RegSP, B: g.valReg(v), Imm: sym.FrameOff})
	default:
		av := g.genAddr(target)
		g.fb.Emit(ir.Instr{Op: store, A: g.valReg(av), B: g.valReg(v)})
		g.freeVal(av)
	}
}

func (g *generator) storeLocal(sym *minic.Symbol, v value) {
	store := ir.OpStq
	if sym.Type.IsFloat() {
		store = ir.OpStt
	}
	g.fb.Emit(ir.Instr{Op: store, A: ir.RegSP, B: g.valReg(v), Imm: sym.FrameOff})
}

func (g *generator) genIf(st *minic.IfStmt) {
	if g.tgt.UseCmov && g.plan.cmovOK(st.Pos) && g.tryCmovIf(st) {
		return
	}
	if st.Else == nil {
		join := g.fb.NewBlockDetached()
		g.genCondBranch(st.Cond, join, false)
		g.genStmt(st.Then)
		if !g.fb.Terminated() {
			// Fall through into the join block placed next.
			g.fb.Place(join)
			g.fb.SetBlock(join)
			return
		}
		g.fb.Place(join)
		g.fb.SetBlock(join)
		return
	}
	elseB := g.fb.NewBlockDetached()
	join := g.fb.NewBlockDetached()
	g.genCondBranch(st.Cond, elseB, false)
	g.genStmt(st.Then)
	if !g.fb.Terminated() {
		g.fb.Jump(join)
	}
	g.fb.Place(elseB)
	g.fb.SetBlock(elseB)
	g.genStmt(st.Else)
	g.fb.Place(join)
	g.fb.SetBlock(join)
}

// genWhile emits an inverted (guard + bottom-test) loop, the layout -O
// compilers produce: an entry guard skips the loop when the condition is
// initially false, and the loop-iteration conditional branch at the bottom
// is a backward taken branch whose target dominates it — a true back edge,
// so loop branches are dynamically mostly taken, the behaviour BTFNT and
// the Loop heuristics depend on. Conditions with side effects (calls)
// cannot be evaluated twice, so they fall back to a single shared test
// reached by an unconditional jump.
func (g *generator) genWhile(st *minic.WhileStmt) {
	test := g.fb.NewBlockDetached()
	exit := g.fb.NewBlockDetached()
	if exprPure(st.Cond) && !g.tgt.NoLoopInversion {
		// Entry guard: skip the loop when the condition is false.
		g.genCondBranch(st.Cond, exit, false)
	} else {
		g.fb.Jump(test)
	}
	body := g.fb.NewBlock()
	g.fb.SetBlock(body)
	g.loops = append(g.loops, loopCtx{continueTo: test, breakTo: exit})
	g.genStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	// Fall through (or be jumped to) into the bottom test.
	g.fb.Place(test)
	g.fb.SetBlock(test)
	g.origin = BranchOrigin{Pos: st.Pos, Loop: true}
	g.genCondBranch(st.Cond, body, true)
	g.fb.Place(exit)
	g.fb.SetBlock(exit)
}

func (g *generator) genDo(st *minic.DoStmt) {
	test := g.fb.NewBlockDetached()
	exit := g.fb.NewBlockDetached()
	body := g.fb.NewBlock()
	g.fb.SetBlock(body)
	g.loops = append(g.loops, loopCtx{continueTo: test, breakTo: exit})
	g.genStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.fb.Place(test)
	g.fb.SetBlock(test)
	g.origin = BranchOrigin{Pos: st.Pos, Loop: true}
	g.genCondBranch(st.Cond, body, true)
	g.fb.Place(exit)
	g.fb.SetBlock(exit)
}

func (g *generator) genFor(st *minic.ForStmt) {
	if st.Init != nil {
		g.genStmt(st.Init)
	}
	test := g.fb.NewBlockDetached()
	post := g.fb.NewBlockDetached()
	exit := g.fb.NewBlockDetached()
	switch {
	case st.Cond == nil:
		// No test: fall straight into the body.
	case exprPure(st.Cond) && !g.tgt.NoLoopInversion:
		g.genCondBranch(st.Cond, exit, false) // inverted loop: entry guard
	default:
		g.fb.Jump(test)
	}
	body := g.fb.NewBlock()
	g.fb.SetBlock(body)
	g.loops = append(g.loops, loopCtx{continueTo: post, breakTo: exit})
	g.genStmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	g.fb.Place(post)
	g.fb.SetBlock(post)
	if st.Post != nil {
		g.genStmt(st.Post)
	}
	g.fb.Place(test)
	g.fb.SetBlock(test)
	if st.Cond == nil {
		g.fb.Jump(body)
	} else {
		g.origin = BranchOrigin{Pos: st.Pos, Loop: true}
		g.genCondBranch(st.Cond, body, true)
	}
	g.fb.Place(exit)
	g.fb.SetBlock(exit)
}

// exprPure reports whether evaluating the expression twice is safe and
// observationally identical (no calls anywhere inside) — the condition for
// loop inversion to duplicate the loop test.
func exprPure(e minic.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *minic.IntLit, *minic.FloatLit, *minic.NullLit, *minic.Ident:
		return true
	case *minic.BinExpr:
		return exprPure(x.L) && exprPure(x.R)
	case *minic.UnExpr:
		return exprPure(x.X)
	case *minic.IndexExpr:
		return exprPure(x.X) && exprPure(x.Idx)
	case *minic.CastExpr:
		return exprPure(x.X)
	default:
		return false
	}
}
