package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/serve"
)

// chaosSource is the source-path payload: it exercises compile, cache, and
// forward sites on whichever replica the router picks.
const chaosSource = `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 40; i = i + 1) {
		if (i % 4 == 0) { s = s + 2; } else { s = s + 1; }
	}
	return s;
}`

func chaosProgram(t *testing.T) *ir.Program {
	t.Helper()
	ast, err := minic.Parse("chaos", chaosSource)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// recoverInjected converts an injected-panic escape into a no-op so chaos
// driver goroutines survive; any other panic is real and re-raised.
func recoverInjected() {
	if r := recover(); r != nil {
		if _, ok := r.(*faultinject.Panicked); !ok {
			panic(r)
		}
	}
}

// TestClusterChaosKillRestartPartitionReload is the cluster chaos suite: a
// seeded injector fires faults at every cluster and serve site while
// concurrent clients drive the router, a replica is killed and restarted
// mid-load, a peer-cache partition opens and heals, and model reloads land
// mid-burst on the surviving replicas.
//
// The contract under all of it: the router never routes to a drained
// replica, every completed 200 is bit-identical to the single-process
// reference (or exactly-degraded per the serve rules), shed/failed stays a
// bounded fraction of traffic, the healed cluster serves clean
// bit-identical answers, and nothing leaks goroutines.
func TestClusterChaosKillRestartPartitionReload(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos in short mode")
	}
	model, data := testModel(t)
	baseline := runtime.NumGoroutine()

	// Offline references for both request paths.
	vecs := data[0].Vectors[:12]
	offlineModel := make([]float64, len(vecs))
	model.TakenProbabilities(vecs, offlineModel)
	offlineDegraded := degradedReference(vecs)
	srcVecs := features.ExtractAll(features.Collect(chaosProgram(t)))
	srcModel := make([]float64, len(srcVecs))
	model.TakenProbabilities(srcVecs, srcModel)
	srcDegraded := degradedReference(srcVecs)

	// Reference analysis for the peer-cache traffic.
	prog := chaosProgram(t)
	refPD, err := core.Analyze(prog, ir.LangC, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}

	replicas := []*testReplica{
		newTestReplica(t, "r0", serve.Config{Workers: 2, MaxBatch: 4, RequestTimeout: 10 * time.Second}),
		newTestReplica(t, "r1", serve.Config{Workers: 2, MaxBatch: 4, RequestTimeout: 10 * time.Second}),
		newTestReplica(t, "r2", serve.Config{Workers: 2, MaxBatch: 4, RequestTimeout: 10 * time.Second}),
	}
	connectPeers(replicas...)

	reps := make([]*Replica, len(replicas))
	for i, r := range replicas {
		reps[i] = &Replica{Name: r.name}
		reps[i].SetURL(r.ts.URL)
	}
	router := NewRouter(RouterConfig{
		MaxFailover: 3,
		Counters:    replicas[0].srv.ClusterStats(),
	}, reps...)
	rts := httptest.NewServer(router)

	// Seeded faults at every cluster and serve site; panics only where the
	// stack contains them (the serve forward path).
	inj := faultinject.New(42,
		faultinject.Rule{Site: "cluster.route", Kind: faultinject.Error, Rate: 0.10},
		faultinject.Rule{Site: "cluster.peer.get", Kind: faultinject.Error, Rate: 0.20},
		faultinject.Rule{Site: "cluster.peer.get", Kind: faultinject.Latency, Delay: 2 * time.Millisecond, Rate: 0.10},
		faultinject.Rule{Site: "cluster.reload", Kind: faultinject.Error, Rate: 0.25},
		faultinject.Rule{Site: "serve.forward", Kind: faultinject.Error, Rate: 0.10},
		faultinject.Rule{Site: "serve.forward", Kind: faultinject.Panic, Rate: 0.03},
		faultinject.Rule{Site: "serve.cache.get", Kind: faultinject.Error, Rate: 0.10},
		faultinject.Rule{Site: "serve.compile", Kind: faultinject.Error, Rate: 0.05},
		faultinject.Rule{Site: "serve.pool.submit", Kind: faultinject.Error, Rate: 0.05},
		faultinject.Rule{Site: "artifact.load", Kind: faultinject.Error, Rate: 0.10},
		faultinject.Rule{Site: "artifact.store", Kind: faultinject.Error, Rate: 0.10},
	)
	deactivate := faultinject.Activate(inj)
	defer deactivate()

	vecBody, err := json.Marshal(serve.PredictRequest{ID: "v", Vectors: vectorValues(vecs)})
	if err != nil {
		t.Fatal(err)
	}
	srcBody, err := json.Marshal(serve.PredictRequest{ID: "s", Name: "chaos", Source: chaosSource})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg, loadWG sync.WaitGroup
		ok200      atomic.Int64
		degraded   atomic.Int64
		shed       atomic.Int64
		failed     atomic.Int64
	)
	stop := make(chan struct{})
	httpc := &http.Client{Timeout: 30 * time.Second}

	const clients = 12
	for c := 0; c < clients; c++ {
		loadWG.Add(1)
		go func(c int) {
			defer loadWG.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				body, m, d := vecBody, offlineModel, offlineDegraded
				if (c+r)%2 == 1 {
					body, m, d = srcBody, srcModel, srcDegraded
				}
				resp, err := httpc.Post(rts.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				var pr serve.PredictResponse
				decErr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					if decErr != nil {
						t.Errorf("client %d: decode: %v", c, decErr)
						return
					}
					checkPredictions(t, &pr, m, d)
					ok200.Add(1)
					if pr.Degraded {
						degraded.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}

	// Peer-cache traffic rides along: every replica repeatedly analyzes the
	// chaos program through its PeerCache (the first computes, the others
	// warm from it when the partition allows), plus absent-key probes that
	// keep the peer-fetch path hot. A completed analysis must equal the
	// reference exactly, whatever faults fired.
	wg.Add(1)
	go func() {
		defer wg.Done()
		probe := func(f func()) {
			defer recoverInjected()
			f()
		}
		for i := 0; i < 30; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range replicas {
				probe(func() {
					pd, err := core.AnalyzeCached(r.peers, prog, ir.LangC, interp.Config{})
					if err != nil {
						t.Errorf("%s: analyze under chaos: %v", r.name, err)
						return
					}
					if len(pd.Vectors) != len(refPD.Vectors) || pd.Profile.Insns != refPD.Profile.Insns {
						t.Errorf("%s: peer-cached analysis diverged from reference", r.name)
					}
				})
				probe(func() {
					_, _ = r.peers.Load("00000000000000000000000000000000000000000000000000000000000000ff")
				})
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The chaos script: drain+kill a replica mid-load, reload the survivors
	// mid-burst, partition a peer, then heal everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		sleep := func(d time.Duration) { time.Sleep(d) }

		sleep(50 * time.Millisecond)
		// Partition: r0 loses sight of r2's peer cache.
		replicas[0].peers.Ring().SetDrained(replicas[2].ts.URL, true)

		sleep(50 * time.Millisecond)
		// Kill r1 without warning; the router must absorb it as failover.
		replicas[1].ts.Close()

		// Reload churn on the survivors while the cluster is degraded.
		for i := 0; i < 10; i++ {
			for _, r := range []*testReplica{replicas[0], replicas[2]} {
				func() {
					defer recoverInjected()
					_, _ = r.srv.Reload(model)
				}()
			}
			sleep(2 * time.Millisecond)
		}

		sleep(50 * time.Millisecond)
		// Restart r1 on a fresh port: same ring identity, new URL.
		replicas[1].restart()
		router.Replica("r1").SetURL(replicas[1].ts.URL)
		// Heal the partition and the peer rings.
		connectPeers(replicas...)

		sleep(100 * time.Millisecond)
	}()

	wg.Wait()
	loadWG.Wait()

	total := ok200.Load() + shed.Load() + failed.Load()
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded under cluster chaos")
	}
	if bad := shed.Load() + failed.Load(); bad*2 > total {
		t.Errorf("shed+failed = %d of %d requests — loss not bounded", bad, total)
	}
	for _, site := range []string{"cluster.route", "cluster.peer.get", "cluster.reload"} {
		if inj.Hits(site) == 0 {
			t.Errorf("site %s never reached under cluster chaos", site)
		} else if inj.Fired(site) == 0 {
			t.Errorf("site %s never fired (%d hits)", site, inj.Hits(site))
		}
	}

	// Faults off, cluster healed: the very next answers are clean and
	// bit-identical on both paths, through the router.
	deactivate()
	for _, probe := range []struct {
		body []byte
		want []float64
		deg  []float64
	}{{vecBody, offlineModel, offlineDegraded}, {srcBody, srcModel, srcDegraded}} {
		resp, err := httpc.Post(rts.URL+"/predict", "application/json", bytes.NewReader(probe.body))
		if err != nil {
			t.Fatalf("post-chaos request: %v", err)
		}
		var pr serve.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || pr.Degraded {
			t.Fatalf("post-chaos request: status %d degraded %v", resp.StatusCode, pr.Degraded)
		}
		checkPredictions(t, &pr, probe.want, probe.deg)
	}

	// The restarted replica answers with the same model as everyone else:
	// drive one request directly at it.
	resp, pr := postPredict(t, replicas[1].ts.URL, serve.PredictRequest{Vectors: vectorValues(vecs)})
	if resp.StatusCode != http.StatusOK || pr.Degraded {
		t.Fatalf("restarted replica: status %d degraded %v", resp.StatusCode, pr.Degraded)
	}
	checkPredictions(t, &pr, offlineModel, offlineDegraded)

	rts.Close()
	httpc.CloseIdleConnections()
	// Replica drains run in test cleanups; check for leaks after an explicit
	// drain here so the baseline comparison sees the quiesced state.
	for _, r := range replicas {
		r.ts.Close()
	}
	drainAll(t, replicas)
	assertNoGoroutineLeak(t, baseline)
	t.Logf("cluster chaos: %d ok (%d degraded), %d shed, %d failed; failovers in r0 metrics",
		ok200.Load(), degraded.Load(), shed.Load(), failed.Load())
}

func drainAll(t *testing.T, replicas []*testReplica) {
	t.Helper()
	for _, r := range replicas {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := r.srv.Drain(ctx); err != nil {
			t.Errorf("%s drain: %v", r.name, err)
		}
		cancel()
	}
}
