// Package minic implements the MinC language front end: a small C-like
// systems language (integers, floats, pointers, arrays, functions,
// short-circuit booleans) that the corpus programs are written in. It stands
// in for the paper's C and Fortran sources: the corpus carries a language
// tag per program, and the Fortran-dialect programs simply restrict
// themselves to Fortran idioms (counted loops, arrays, no pointers).
//
// Grammar (EBNF):
//
//	program    = { decl } .
//	decl       = varDecl | funcDecl .
//	varDecl    = type declarator ";" .
//	declarator = ident [ "[" intlit "]" ] [ "=" expr ] .
//	funcDecl   = type ident "(" [ param { "," param } ] ")" block .
//	type       = ( "int" | "float" | "void" ) { "*" } .
//	param      = type ident .
//	block      = "{" { stmt } "}" .
//	stmt       = varDecl | "if" "(" expr ")" stmt [ "else" stmt ]
//	           | "while" "(" expr ")" stmt
//	           | "do" stmt "while" "(" expr ")" ";"
//	           | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" stmt
//	           | "return" [ expr ] ";" | "break" ";" | "continue" ";"
//	           | block | simple ";" | ";" .
//	simple     = expr [ "=" expr ] .
//	expr       = binary expression; precedence (low to high):
//	             "||", "&&", ("=="|"!="), ("<"|"<="|">"|">="),
//	             ("+"|"-"), ("*"|"/"|"%") .
//	unary      = ( "-" | "!" | "*" | "&" ) unary | cast | postfix .
//	cast       = "(" type ")" unary .
//	postfix    = primary { "[" expr "]" | "(" [ expr {"," expr} ] ")" } .
//	primary    = intlit | floatlit | ident | "null" | "(" expr ")" .
//
// Built-in functions: __alloc(n) (returns int*, heap allocation of n words),
// __input(i) (word i of the program input), __print(x), __printf(f),
// __rand() (deterministic per-run pseudo-random non-negative int).
package minic

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwDo
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwNull

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokBang
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
)

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal",
	TokKwInt:    "'int'", TokKwFloat: "'float'", TokKwVoid: "'void'",
	TokKwIf: "'if'", TokKwElse: "'else'", TokKwWhile: "'while'", TokKwDo: "'do'",
	TokKwFor: "'for'", TokKwReturn: "'return'", TokKwBreak: "'break'",
	TokKwContinue: "'continue'", TokKwNull: "'null'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokSemi: "';'", TokComma: "','",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokAmp: "'&'", TokBang: "'!'",
	TokEq: "'=='", TokNe: "'!='", TokLt: "'<'", TokLe: "'<='", TokGt: "'>'",
	TokGe: "'>='", TokAndAnd: "'&&'", TokOrOr: "'||'",
}

// String names the token kind for diagnostics.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"int": TokKwInt, "float": TokKwFloat, "void": TokKwVoid,
	"if": TokKwIf, "else": TokKwElse, "while": TokKwWhile, "do": TokKwDo,
	"for": TokKwFor, "return": TokKwReturn, "break": TokKwBreak,
	"continue": TokKwContinue, "null": TokKwNull,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind  TokKind
	Text  string
	Int   int64
	Float float64
	Pos   Pos
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
