package core

import (
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/interp"
)

// A cache hit must be bit-identical to a fresh Analyze — same profile
// counts, same vectors, same rebuilt sites — and must not run the
// interpreter at all.
func TestAnalyzeCachedBitIdentical(t *testing.T) {
	e, ok := corpus.ByName("bc")
	if !ok {
		t.Fatal("no corpus program bc")
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := Analyze(prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := AnalyzeCached(cache, prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Profile, fresh.Profile) || !reflect.DeepEqual(cold.Vectors, fresh.Vectors) {
		t.Fatal("cold cached analysis differs from plain Analyze")
	}

	before := interp.TotalRuns()
	warm, err := AnalyzeCached(cache, prog, e.Language, e.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := interp.TotalRuns() - before; got != 0 {
		t.Fatalf("warm analysis ran the interpreter %d times", got)
	}
	if !reflect.DeepEqual(warm.Profile, fresh.Profile) || !reflect.DeepEqual(warm.Vectors, fresh.Vectors) {
		t.Fatal("warm cached analysis differs from plain Analyze")
	}
	if len(warm.Sites.Sites) != len(fresh.Sites.Sites) {
		t.Fatal("warm sites not rebuilt")
	}

	// The warm result must train identically: Examples feed the classifier.
	if !reflect.DeepEqual(warm.Examples(), fresh.Examples()) {
		t.Fatal("warm examples differ")
	}
}

// A config change must miss (and re-trace) rather than serve the wrong
// profile.
func TestAnalyzeCachedConfigMiss(t *testing.T) {
	e, _ := corpus.ByName("bc")
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeCached(cache, prog, e.Language, e.RunConfig()); err != nil {
		t.Fatal(err)
	}
	cfg := e.RunConfig()
	cfg.Seed += 99
	before := interp.TotalRuns()
	if _, err := AnalyzeCached(cache, prog, e.Language, cfg); err != nil {
		t.Fatal(err)
	}
	if interp.TotalRuns() == before {
		t.Fatal("changed config served from cache")
	}
}
