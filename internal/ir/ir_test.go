package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisters(t *testing.T) {
	if R(5).IsFloat() {
		t.Error("R(5) must be an integer register")
	}
	if !F(5).IsFloat() {
		t.Error("F(5) must be a float register")
	}
	if got := R(5).String(); got != "R5" {
		t.Errorf("R(5).String() = %q", got)
	}
	if got := F(31).String(); got != "F31" {
		t.Errorf("F(31).String() = %q", got)
	}
	if !RegZero.IsZero() || !RegFZero.IsZero() {
		t.Error("zero registers not recognized")
	}
	if RegSP.IsZero() {
		t.Error("SP is not a zero register")
	}
}

func TestRegisterConstructorPanics(t *testing.T) {
	for _, bad := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", bad)
				}
			}()
			R(bad)
		}()
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op         Op
		cond       bool
		term       bool
		call       bool
		store      bool
		load       bool
		cmp        bool
		floatClass bool
	}{
		{OpAddQ, false, false, false, false, false, false, false},
		{OpBne, true, true, false, false, false, false, false},
		{OpFbeq, true, true, false, false, false, false, true},
		{OpBr, false, true, false, false, false, false, false},
		{OpRet, false, true, false, false, false, false, false},
		{OpBsr, false, false, true, false, false, false, false},
		{OpJsr, false, false, true, false, false, false, false},
		{OpStq, false, false, false, true, false, false, false},
		{OpLdt, false, false, false, false, true, false, true},
		{OpCmpLt, false, false, false, false, false, true, false},
		{OpCmpTEq, false, false, false, false, false, true, true},
		{OpBeq2, true, true, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsCondBranch() != c.cond {
			t.Errorf("%v.IsCondBranch() = %v", c.op, !c.cond)
		}
		if c.op.IsTerminator() != c.term {
			t.Errorf("%v.IsTerminator() = %v", c.op, !c.term)
		}
		if c.op.IsCall() != c.call {
			t.Errorf("%v.IsCall() = %v", c.op, !c.call)
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v.IsStore() = %v", c.op, !c.store)
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%v.IsLoad() = %v", c.op, !c.load)
		}
		if c.op.IsCompare() != c.cmp {
			t.Errorf("%v.IsCompare() = %v", c.op, !c.cmp)
		}
		if c.op.IsFloat() != c.floatClass {
			t.Errorf("%v.IsFloat() = %v", c.op, !c.floatClass)
		}
	}
}

func TestBranchNegateInvolution(t *testing.T) {
	branches := []Op{OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge,
		OpFbeq, OpFbne, OpFblt, OpFble, OpFbgt, OpFbge, OpBeq2, OpBne2}
	for _, op := range branches {
		n := op.BranchNegate()
		if n == op {
			t.Errorf("%v negates to itself", op)
		}
		if n.BranchNegate() != op {
			t.Errorf("BranchNegate not an involution for %v", op)
		}
	}
}

func TestBranchNegatePanicsOnNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BranchNegate(OpAddQ) did not panic")
		}
	}()
	OpAddQ.BranchNegate()
}

func TestAllOpsHaveNames(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
		if op.Class() == ClassInvalid {
			t.Errorf("opcode %v has no class", op)
		}
	}
}

func TestUsesAndDef(t *testing.T) {
	add := Instr{Op: OpAddQ, Dst: R(1), A: R(2), B: R(3)}
	if d, ok := add.Def(); !ok || d != R(1) {
		t.Errorf("add def = %v, %v", d, ok)
	}
	if got := add.Uses(); len(got) != 2 || got[0] != R(2) || got[1] != R(3) {
		t.Errorf("add uses = %v", got)
	}
	addImm := Instr{Op: OpAddQ, Dst: R(1), A: R(2), Imm: 5, UseImm: true}
	if got := addImm.Uses(); len(got) != 1 || got[0] != R(2) {
		t.Errorf("addImm uses = %v", got)
	}
	st := Instr{Op: OpStq, A: R(4), B: R(5), Imm: 2}
	if _, ok := st.Def(); ok {
		t.Error("store must not define a register")
	}
	if got := st.Uses(); len(got) != 2 {
		t.Errorf("store uses = %v", got)
	}
	br := Instr{Op: OpBne, A: R(6), Target: 1}
	if got := br.Uses(); len(got) != 1 || got[0] != R(6) {
		t.Errorf("branch uses = %v", got)
	}
	br2 := Instr{Op: OpBeq2, A: R(6), B: R(7), Target: 1}
	if got := br2.Uses(); len(got) != 2 {
		t.Errorf("two-register branch uses = %v", got)
	}
	cmov := Instr{Op: OpCmovNe, Dst: R(1), A: R(2), B: R(3)}
	if got := cmov.Uses(); len(got) != 3 {
		t.Errorf("cmov must read its destination too, uses = %v", got)
	}
}

// buildDiamond constructs the classic if-then-else diamond used by several
// tests: b0 -> {b1 taken, b2 fall} -> b3 -> ret.
func buildDiamond(t *testing.T) *Func {
	t.Helper()
	fb := NewFuncBuilder("diamond", LangC)
	b0 := fb.Block()
	b1 := fb.NewBlockDetached()
	b2 := fb.NewBlockDetached()
	b3 := fb.NewBlockDetached()
	fb.LoadInt(R(1), 1)
	fb.Branch(OpBne, R(1), b1)
	fb.Place(b2)
	fb.SetBlock(b2)
	fb.LoadInt(R(2), 2)
	fb.Jump(b3)
	fb.Place(b1)
	fb.SetBlock(b1)
	fb.LoadInt(R(2), 3)
	fb.Place(b3)
	fb.SetBlock(b3)
	fb.Ret()
	_ = b0
	return fb.Func()
}

func TestFuncSuccessors(t *testing.T) {
	fn := buildDiamond(t)
	// b0 branches to b1 (taken) and falls through to b2 (next placed).
	succs := fn.Succs(fn.Blocks[0])
	if len(succs) != 2 || succs[0] != 1 || succs[1] != 2 {
		t.Fatalf("entry succs = %v, want [1 2]", succs)
	}
	// The unconditional jump block goes only to b3.
	b2 := fn.BlockByID(2)
	if got := fn.Succs(b2); len(got) != 1 || got[0] != 3 {
		t.Errorf("b2 succs = %v, want [3]", got)
	}
	// b1 falls through to b3 in layout order.
	b1 := fn.BlockByID(1)
	if got := fn.Succs(b1); len(got) != 1 || got[0] != 3 {
		t.Errorf("b1 succs = %v, want [3]", got)
	}
	// The return block has no successors.
	if got := fn.Succs(fn.BlockByID(3)); got != nil {
		t.Errorf("return block succs = %v, want nil", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	fb := NewFuncBuilder("f", LangC)
	fb.Ret()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("emitting after a terminator did not panic")
			}
		}()
		fb.LoadInt(R(1), 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("placing a block twice did not panic")
			}
		}()
		b := fb.NewBlockDetached()
		fb.Place(b)
		fb.Place(b)
	}()
}

func TestVerifyCatchesErrors(t *testing.T) {
	mk := func(build func(fb *FuncBuilder)) *Program {
		fb := NewFuncBuilder("main", LangC)
		build(fb)
		return &Program{Name: "t", Funcs: []*Func{fb.Func()}}
	}
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"bad branch target",
			mk(func(fb *FuncBuilder) {
				fb.Emit(Instr{Op: OpBne, A: R(1), Target: 99})
				nb := fb.NewBlock()
				fb.SetBlock(nb)
				fb.Ret()
			}),
			"successor b99 does not exist",
		},
		{
			"falls off end",
			mk(func(fb *FuncBuilder) { fb.LoadInt(R(1), 1) }),
			"falls off the end",
		},
		{
			"undefined callee",
			mk(func(fb *FuncBuilder) {
				fb.Call("nowhere")
				fb.Ret()
			}),
			"undefined function",
		},
		{
			"undefined global",
			mk(func(fb *FuncBuilder) {
				fb.Lda(R(1), "ghost", 0)
				fb.Ret()
			}),
			"undefined global",
		},
		{
			"wrong register class",
			mk(func(fb *FuncBuilder) {
				fb.Emit(Instr{Op: OpAddT, Dst: R(1), A: F(1), B: F(2)})
				fb.Ret()
			}),
			"wrong register class",
		},
		{
			"bad runtime intrinsic",
			mk(func(fb *FuncBuilder) {
				fb.Emit(Instr{Op: OpRtcall, Imm: 999})
				fb.Ret()
			}),
			"unknown runtime intrinsic",
		},
	}
	for _, c := range cases {
		err := c.prog.Verify()
		if err == nil {
			t.Errorf("%s: Verify accepted invalid IR", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestVerifyRequiresMain(t *testing.T) {
	fb := NewFuncBuilder("helper", LangC)
	fb.Ret()
	p := &Program{Name: "t", Funcs: []*Func{fb.Func()}}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Errorf("Verify = %v, want missing-main error", err)
	}
}

func TestProgramQueries(t *testing.T) {
	fn := buildDiamond(t)
	fn.Name = "main"
	p := &Program{Name: "t", Funcs: []*Func{fn},
		Globals: []Global{{Name: "g", Size: 4}}}
	if err := p.Verify(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if p.FuncByName("main") != fn || p.FuncByName("nope") != nil {
		t.Error("FuncByName misbehaves")
	}
	if p.GlobalByName("g") == nil || p.GlobalByName("h") != nil {
		t.Error("GlobalByName misbehaves")
	}
	if p.NumCondBranches() != 1 {
		t.Errorf("NumCondBranches = %d, want 1", p.NumCondBranches())
	}
	refs := p.Branches()
	if len(refs) != 1 || refs[0].Func != "main" || refs[0].Block != 0 {
		t.Errorf("Branches = %v", refs)
	}
	if got := refs[0].String(); got != "main:b0" {
		t.Errorf("BranchRef.String = %q", got)
	}
	if p.NumInsns() != fn.NumInsns() {
		t.Error("NumInsns mismatch")
	}
}

func TestDisassembleStable(t *testing.T) {
	fn := buildDiamond(t)
	a, b := fn.Disassemble(), fn.Disassemble()
	if a != b {
		t.Error("Disassemble not deterministic")
	}
	for _, want := range []string{"b0:", "bne R1, b1", "br b3", "ret"} {
		if !strings.Contains(a, want) {
			t.Errorf("disassembly missing %q:\n%s", want, a)
		}
	}
}

// TestInstrStringTotal checks that every opcode renders without panicking
// (property-style over the opcode space).
func TestInstrStringTotal(t *testing.T) {
	f := func(op uint8, dst, a, b uint8, imm int64, useImm bool) bool {
		in := Instr{
			Op:  Op(int(op) % NumOps),
			Dst: Reg(dst % NumRegs), A: Reg(a % NumRegs), B: Reg(b % NumRegs),
			Imm: imm, UseImm: useImm, Sym: "s", Target: 1,
		}
		return in.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
