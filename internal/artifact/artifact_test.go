package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/features"
	"repro/internal/interp"
	"repro/internal/ir"
)

func testProgram(t *testing.T, name string) (*ir.Program, interp.Config) {
	t.Helper()
	e, ok := corpus.ByName(name)
	if !ok {
		t.Fatalf("no corpus program %q", name)
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return prog, e.RunConfig()
}

func analyzed(t *testing.T, name string) (string, *Record) {
	t.Helper()
	prog, cfg := testProgram(t, name)
	prof, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := features.Collect(prog)
	return Key(prog, cfg), &Record{Profile: prof, Vectors: features.ExtractAll(ps)}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, rec := analyzed(t, "bc")
	if _, ok := c.Load(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Store(key, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(key)
	if !ok {
		t.Fatal("miss after store")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatal("loaded record differs from stored record")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Load("deadbeef"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Store("deadbeef", &Record{}); err != nil {
		t.Fatal(err)
	}
}

// TestKeySensitivity: the key must move when anything that can change the
// analysis moves — the program text or any canonical config field — and
// must NOT move when a zero config is spelled out explicitly.
func TestKeySensitivity(t *testing.T) {
	prog, cfg := testProgram(t, "bc")
	base := Key(prog, cfg)

	prog2, _ := testProgram(t, "bc")
	if Key(prog2, cfg) != base {
		t.Fatal("identical program+config produced different keys")
	}
	other, _ := testProgram(t, "gzip")
	if Key(other, cfg) == base {
		t.Fatal("different programs share a key")
	}

	mut := cfg
	mut.Seed = cfg.Seed + 1
	if Key(prog, mut) == base {
		t.Fatal("seed change did not move the key")
	}
	mut = cfg
	mut.CollectEdges = !cfg.CollectEdges
	if Key(prog, mut) == base {
		t.Fatal("CollectEdges change did not move the key")
	}
	mut = cfg
	mut.Input = append(append([]int64(nil), cfg.Input...), 7)
	if Key(prog, mut) == base {
		t.Fatal("input change did not move the key")
	}

	spelled := cfg.Canonical() // zero fields replaced by explicit defaults
	if Key(prog, spelled) != base {
		t.Fatal("canonical form and zero form disagree")
	}

	// A mutated instruction immediate must move the key even though the
	// program shape is unchanged.
	progMut, _ := testProgram(t, "bc")
	progMut.Funcs[0].Blocks[0].Insns[0].Imm++
	if Key(progMut, cfg) == base {
		t.Fatal("IR mutation did not move the key")
	}
}

func entryPath(t *testing.T, c *Cache, key string) string {
	t.Helper()
	p := c.path(key)
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// corruptions maps a failure mode to a file mutation; every one must read
// back as a plain miss.
func TestCorruptEntriesAreMisses(t *testing.T) {
	key, rec := analyzed(t, "bc")
	cases := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:3] },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-7] },
		"empty":             func(b []byte) []byte { return nil },
		"flipped payload":   func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b },
		"flipped magic":     func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"stale version": func(b []byte) []byte {
			return bytes.Replace(b, []byte(FormatVersion), []byte("espa-0"), 1)
		},
		"garbage": func([]byte) []byte { return []byte("not a cache entry at all") },
	}
	for name, mutate := range cases {
		t.Run(strings.ReplaceAll(name, " ", "-"), func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Store(key, rec); err != nil {
				t.Fatal(err)
			}
			p := entryPath(t, c, key)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Load(key); ok {
				t.Fatalf("%s entry served as a hit", name)
			}
			// The miss must recover: a fresh store over the damage hits again.
			if err := c.Store(key, rec); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Load(key); !ok || !reflect.DeepEqual(got, rec) {
				t.Fatal("restore after corruption failed")
			}
		})
	}
}

// A file renamed to another entry's key must not be served under that key:
// the embedded key echo catches it even though version and checksum pass.
func TestWrongKeyIsMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, rec := analyzed(t, "bc")
	otherKey, _ := analyzed(t, "gzip")
	if err := c.Store(key, rec); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path(key), c.path(otherKey)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(otherKey); ok {
		t.Fatal("mis-keyed entry served as a hit")
	}
}

func TestStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, rec := analyzed(t, "bc")
	for i := 0; i < 3; i++ {
		if err := c.Store(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want exactly the entry file, got %v", names)
	}
}

// Concurrent readers and writers on the same and different keys must be
// race-clean (the -race build checks the memory side) and every load must
// observe either a miss or a complete, correct record (the rename gives
// atomicity on the file side).
func TestConcurrentReadersWriters(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyA, recA := analyzed(t, "bc")
	keyB, recB := analyzed(t, "gzip")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key, rec := keyA, recA
			if g%2 == 1 {
				key, rec = keyB, recB
			}
			for i := 0; i < 20; i++ {
				if i%3 == 0 {
					if err := c.Store(key, rec); err != nil {
						t.Errorf("store: %v", err)
						return
					}
				}
				if got, ok := c.Load(key); ok && !reflect.DeepEqual(got, rec) {
					t.Error("load observed a wrong or partial record")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Injected faults at the artifact sites must degrade to miss/skip, not
// break loads or stores.
func TestFaultInjection(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, rec := analyzed(t, "bc")

	inj := faultinject.New(1,
		faultinject.Rule{Site: "artifact.store", Kind: faultinject.Error, Rate: 1})
	defer faultinject.Activate(inj)()
	if err := c.Store(key, rec); err == nil {
		t.Fatal("injected store fault not reported")
	}
	if _, ok := c.Load(key); ok {
		t.Fatal("hit after a faulted store: something was written")
	}

	inj2 := faultinject.New(1,
		faultinject.Rule{Site: "artifact.load", Kind: faultinject.Error, Rate: 1})
	defer faultinject.Activate(inj2)()
	if err := c.Store(key, rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(key); ok {
		t.Fatal("injected load fault did not read as a miss")
	}
}

func TestDefaultDir(t *testing.T) {
	if got := DefaultDir("explicit"); got != "explicit" {
		t.Fatalf("flag value not honored: %q", got)
	}
	t.Setenv("ESPCACHE_DIR", filepath.Join("env", "cache"))
	if got := DefaultDir(""); got != filepath.Join("env", "cache") {
		t.Fatalf("env value not honored: %q", got)
	}
	t.Setenv("ESPCACHE_DIR", "")
	if got := DefaultDir(""); got != ".espcache" {
		t.Fatalf("default not honored: %q", got)
	}
}
