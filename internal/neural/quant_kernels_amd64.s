//go:build amd64 && !purego

#include "textflag.h"

// The int8 dot-product kernel behind the quantized forward pass. Sixteen
// int8 lanes are sign-extended to int16, VPMADDWD multiplies and pairwise
// adds them into eight int32 lanes, and the lanes accumulate across the row.
// Integer addition is associative, so the lane-parallel order is exactly
// equal to the scalar loop — no FMA/rounding caveats apply here, unlike the
// float kernels in csr_kernels_amd64.s.

// func x86HasAVX2() bool
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	BTL  $27, CX       // OSXSAVE
	JCC  no
	BTL  $28, CX       // AVX
	JCC  no
	XORL CX, CX
	XGETBV             // XCR0 in AX
	ANDL $6, AX        // XMM|YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	BTL  $5, BX        // AVX2
	JCC  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func quantDotAVX2(a, b *int8, n int) int32
//
// ret = Σ_{i<n} int32(a[i]) * int32(b[i])
TEXT ·quantDotAVX2(SB), NOSPLIT, $0-28
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), DI
	MOVQ  n+16(FP), CX
	VPXOR Y0, Y0, Y0       // eight int32 accumulator lanes
vloop:
	CMPQ CX, $16
	JLT  vsum
	VPMOVSXBW (SI), Y1     // 16 int8 -> 16 int16
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y1, Y2, Y2   // pairwise a*b sums -> 8 int32
	VPADDD    Y2, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  vloop
vsum:
	// Horizontal sum of the eight lanes into AX.
	VEXTRACTI128 $1, Y0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0xEE, X0, X1  // high qword -> low
	VPADDD  X1, X0, X0
	VPSHUFD $0x55, X0, X1  // lane 1 -> lane 0
	VPADDD  X1, X0, X0
	VMOVD   X0, AX
	VZEROUPPER
stail:
	TESTQ CX, CX
	JE    done
	MOVBQSX (SI), R8
	MOVBQSX (DI), R9
	IMULQ   R9, R8
	ADDL    R8, AX
	INCQ    SI
	INCQ    DI
	DECQ    CX
	JMP     stail
done:
	MOVL AX, ret+24(FP)
	RET
