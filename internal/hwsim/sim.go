package hwsim

import (
	"repro/internal/features"
	"repro/internal/ir"
	"repro/internal/pgo"
)

// BTFNT is the paper's hardware baseline as a probability source: backward
// branches (target not later in layout) predicted taken, forward branches
// not-taken. It slots into the same hint pipeline as the heuristic, ESP,
// and perfect sources, all via pgo.ProbSource.
type BTFNT struct{}

// Name implements pgo.ProbSource.
func (BTFNT) Name() string { return "btfnt" }

// Prob implements pgo.ProbSource.
func (BTFNT) Prob(s *features.Site) float64 {
	if s.TakenIdx <= s.BlockIdx {
		return 1
	}
	return 0
}

// Hints derives one static hint bit per dense branch site: taken when the
// source's probability estimate is at least 1/2. refs is the interpreter's
// site table (TraceSink.BeginTrace order); sites the program's collected
// branch sites. A site the collector cannot see (never happens for two-way
// conditional branches, but defended anyway) hints not-taken.
func Hints(src pgo.ProbSource, sites *features.ProgramSites, refs []ir.BranchRef) []bool {
	hints := make([]bool, len(refs))
	for i, ref := range refs {
		if s := sites.Site(ref); s != nil {
			hints[i] = src.Prob(s) >= 0.5
		}
	}
	return hints
}

// Warmups are the cold-start checkpoint budgets: a Counter snapshots its
// cumulative mispredicts when its event count crosses each budget, so the
// study can report mispredict rates after 64, 256, … dynamic branches —
// the regime where seeded counters matter most.
var Warmups = []int64{64, 256, 1024, 4096}

// Counter simulates one predictor over a stream and accounts mispredicts,
// total and at each warmup checkpoint.
type Counter struct {
	Pred   Predictor
	Events int64
	Miss   int64
	// warmMiss[k] is Miss when Events first reached Warmups[k]; -1 until
	// then (the stream may be shorter than a budget).
	warmMiss []int64
}

// NewCounter wraps a predictor for simulation.
func NewCounter(p Predictor) *Counter {
	c := &Counter{Pred: p, warmMiss: make([]int64, len(Warmups))}
	for i := range c.warmMiss {
		c.warmMiss[i] = -1
	}
	return c
}

// Observe feeds one dynamic branch through the predictor.
func (c *Counter) Observe(site int32, taken bool) {
	if c.Pred.Predict(site) != taken {
		c.Miss++
	}
	c.Pred.Update(site, taken)
	c.Events++
	for k, w := range Warmups {
		if c.Events == w {
			c.warmMiss[k] = c.Miss
		}
	}
}

// WarmMiss returns the cumulative mispredicts and events at warmup
// checkpoint k; streams shorter than the budget report their full length.
func (c *Counter) WarmMiss(k int) (miss, events int64) {
	if c.warmMiss[k] >= 0 {
		return c.warmMiss[k], Warmups[k]
	}
	return c.Miss, c.Events
}

// MissRate is total mispredicts over total events (0 for an empty stream).
func (c *Counter) MissRate() float64 {
	if c.Events == 0 {
		return 0
	}
	return float64(c.Miss) / float64(c.Events)
}

// Mux fans one branch-outcome stream out to many predictor counters, so a
// single traced interpreter run scores every (predictor × seed) instance.
// It implements interp.TraceSink.
type Mux struct {
	Counters []*Counter
}

// BeginTrace implements interp.TraceSink.
func (m *Mux) BeginTrace(refs []ir.BranchRef) {}

// TraceBranch implements interp.TraceSink.
func (m *Mux) TraceBranch(site int32, taken bool) {
	for _, c := range m.Counters {
		c.Observe(site, taken)
	}
}
