package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/codegen"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/neural"
	"repro/internal/stats"
)

// Figure1 renders the branch-prediction network architecture (Figure 1).
func Figure1(inputs, hidden int) string {
	n := neural.New(neural.Config{Inputs: inputs, Hidden: hidden, Seed: 1})
	return n.Describe()
}

// Figure2Edge is one control-flow edge of the hot fragment with its share
// of all edge transitions.
type Figure2Edge struct {
	Edge       interp.EdgeRef
	Count      int64
	PctOfTotal float64
	// Taken marks edges that correspond to a conditional branch being
	// taken (the dotted edges of the paper's figure).
	Taken bool
}

// Figure2Result reproduces Figure 2: the tomcatv code fragment that
// contributes most of the program's branches, with per-edge transition
// percentages.
type Figure2Result struct {
	Program string
	// HotFunc is the function containing the fragment.
	HotFunc string
	// Edges lists the hottest control-flow edges, descending.
	Edges []Figure2Edge
	// TopBlockSharePct is the share of all edge transitions carried by the
	// fragment's three hottest blocks (the paper: "most of the basic block
	// transitions in that procedure involve three basic blocks").
	TopBlockSharePct float64
	// Fragment is the disassembled hot region.
	Fragment string
}

// Figure2 profiles tomcatv with edge collection and extracts the hot
// fragment.
func Figure2(ctx *Context) (*Figure2Result, error) {
	e, ok := corpus.ByName("tomcatv")
	if !ok {
		return nil, fmt.Errorf("experiments: corpus has no tomcatv")
	}
	prog, err := e.Compile(codegen.Default)
	if err != nil {
		return nil, err
	}
	cfgRun := e.RunConfig()
	cfgRun.CollectEdges = true
	prof, err := interp.Run(prog, cfgRun)
	if err != nil {
		return nil, err
	}
	var total int64
	for _, c := range prof.Edges {
		total += c
	}
	edges := make([]Figure2Edge, 0, len(prof.Edges))
	for ref, c := range prof.Edges {
		edges = append(edges, Figure2Edge{Edge: ref, Count: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Count != edges[j].Count {
			return edges[i].Count > edges[j].Count
		}
		if edges[i].Edge.From != edges[j].Edge.From {
			return edges[i].Edge.From < edges[j].Edge.From
		}
		return edges[i].Edge.To < edges[j].Edge.To
	})
	res := &Figure2Result{Program: e.Name}
	fn := prog.FuncByName("main")
	res.HotFunc = fn.Name
	blockShare := make(map[int]int64)
	for i := range edges {
		edges[i].PctOfTotal = 100 * float64(edges[i].Count) / float64(total)
		if b := fn.BlockByID(edges[i].Edge.From); b != nil {
			if br := b.Branch(); br != nil && br.Target == edges[i].Edge.To {
				edges[i].Taken = true
			}
		}
		blockShare[edges[i].Edge.From] += edges[i].Count
	}
	if len(edges) > 12 {
		edges = edges[:12]
	}
	res.Edges = edges
	// Share carried by the three hottest source blocks.
	type bs struct {
		id int
		c  int64
	}
	var shares []bs
	for id, c := range blockShare {
		shares = append(shares, bs{id, c})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].c != shares[j].c {
			return shares[i].c > shares[j].c
		}
		return shares[i].id < shares[j].id
	})
	var top3 int64
	hot := map[int]bool{}
	for i := 0; i < 3 && i < len(shares); i++ {
		top3 += shares[i].c
		hot[shares[i].id] = true
	}
	res.TopBlockSharePct = 100 * float64(top3) / float64(total)
	res.Fragment = disassembleBlocks(fn, hot)
	return res, nil
}

func disassembleBlocks(fn *ir.Func, ids map[int]bool) string {
	var sb strings.Builder
	for _, b := range fn.Blocks {
		if !ids[b.ID] {
			continue
		}
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Insns {
			fmt.Fprintf(&sb, "\t%s\n", b.Insns[i].String())
		}
	}
	return sb.String()
}

// Render formats the figure as text.
func (r *Figure2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: hot fragment of %s (procedure %s)\n", r.Program, r.HotFunc)
	fmt.Fprintf(&sb, "three hottest blocks carry %.1f%% of all edge transitions\n\n", r.TopBlockSharePct)
	t := stats.NewTable("Edge", "Transitions", "% Of All Edges", "Kind")
	for _, e := range r.Edges {
		kind := "fall-through"
		if e.Taken {
			kind = "taken"
		}
		t.Row(fmt.Sprintf("%s: b%d->b%d", e.Edge.Func, e.Edge.From, e.Edge.To),
			e.Count, fmt.Sprintf("%.1f", e.PctOfTotal), kind)
	}
	sb.WriteString(t.String())
	sb.WriteString("\nhot fragment disassembly (FABS/compare/branch kernel):\n")
	sb.WriteString(r.Fragment)
	return sb.String()
}
