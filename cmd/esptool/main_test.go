package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "esptool")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestTrainPredictRulesRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tool test in short mode")
	}
	bin := buildTool(t)
	model := filepath.Join(t.TempDir(), "model.json")

	// Train a decision tree on the Fortran group, holding tomcatv out.
	out, err := exec.Command(bin, "train", "-tree", "-lang", "FORT",
		"-exclude", "tomcatv", "-out", model).CombinedOutput()
	if err != nil {
		t.Fatalf("train: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "decision-tree") {
		t.Errorf("train output missing classifier:\n%s", out)
	}

	// Predict the held-out program.
	out, err = exec.Command(bin, "predict", "-model", model, "-program", "tomcatv").CombinedOutput()
	if err != nil {
		t.Fatalf("predict: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ESP miss") || !strings.Contains(string(out), "APHC") {
		t.Errorf("predict output incomplete:\n%s", out)
	}

	// Print the learned rules.
	out, err = exec.Command(bin, "rules", "-model", model).CombinedOutput()
	if err != nil {
		t.Fatalf("rules: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "predict") {
		t.Errorf("rules output empty:\n%s", out)
	}
}

func TestPredictUnknownProgram(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "predict", "-model", "nope.json", "-program", "nonesuch").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown program accepted:\n%s", out)
	}
}

func TestUsage(t *testing.T) {
	bin := buildTool(t)
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Errorf("no-argument run must fail with usage:\n%s", out)
	}
	if out, err := exec.Command(bin, "frobnicate").CombinedOutput(); err == nil {
		t.Errorf("unknown subcommand accepted:\n%s", out)
	}
}
