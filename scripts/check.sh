#!/bin/sh
# check.sh — the full local gate: build, vet, gofmt, tests, race tests.
# CI (.github/workflows/ci.yml) runs the same sequence.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "==> go test"
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/core ./internal/neural ./internal/interp ./internal/serve

echo "OK"
