package ir

import (
	"fmt"
)

// Verify checks structural invariants of the program:
//
//   - block IDs are unique within each function and branch targets resolve;
//   - terminators appear only as the last instruction of a block;
//   - the last block of a function does not fall off the end;
//   - calls name functions that exist; LDA names globals that exist;
//   - register operands are within the register file;
//   - float/int register classes match the opcode where the ISA requires it.
//
// It returns the first violation found, or nil.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if err := p.verifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	if p.FuncByName("main") == nil {
		return fmt.Errorf("program %s: no main function", p.Name)
	}
	return nil
}

func (p *Program) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	ids := make(map[int]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if ids[b.ID] {
			return fmt.Errorf("duplicate block id b%d", b.ID)
		}
		ids[b.ID] = true
	}
	for li, b := range f.Blocks {
		for i := range b.Insns {
			in := &b.Insns[i]
			if in.Op.IsTerminator() && i != len(b.Insns)-1 {
				return fmt.Errorf("b%d: terminator %s not at end of block", b.ID, in.String())
			}
			if err := p.verifyInstr(f, in); err != nil {
				return fmt.Errorf("b%d: %s: %w", b.ID, in.String(), err)
			}
		}
		if b.Terminator() == nil && li == len(f.Blocks)-1 {
			return fmt.Errorf("b%d: last block falls off the end of the function", b.ID)
		}
		for _, s := range f.Succs(b) {
			if !ids[s] {
				return fmt.Errorf("b%d: successor b%d does not exist", b.ID, s)
			}
		}
	}
	return nil
}

func (p *Program) verifyInstr(f *Func, in *Instr) error {
	if !in.Op.valid() {
		return fmt.Errorf("invalid opcode")
	}
	for _, r := range in.Uses() {
		if int(r) >= NumRegs {
			return fmt.Errorf("register %d out of range", r)
		}
	}
	if d, ok := in.Def(); ok {
		if int(d) >= NumRegs {
			return fmt.Errorf("destination register %d out of range", d)
		}
		if d.IsZero() {
			// Writing the zero register is legal (discard) but suspicious in
			// generated code; permit it for hand-written tests.
			_ = d
		}
		wantFloat := in.Op.IsFloat()
		// Loads/converts define the class named by the opcode; moves carry
		// their class too.
		if d.IsFloat() != wantFloat {
			return fmt.Errorf("destination %s has wrong register class for %s", d, in.Op)
		}
	}
	switch in.Op.Class() {
	case ClassCondBranch:
		if in.Op.IsFloat() != in.A.IsFloat() {
			return fmt.Errorf("branch tests %s with wrong register class", in.A)
		}
	case ClassCall:
		if p.FuncByName(in.Sym) == nil {
			return fmt.Errorf("call to undefined function %q", in.Sym)
		}
	case ClassConst:
		if in.Op == OpLda && p.GlobalByName(in.Sym) == nil {
			return fmt.Errorf("lda of undefined global %q", in.Sym)
		}
	case ClassRuntime:
		if in.Imm < 0 || in.Imm >= numRuntime {
			return fmt.Errorf("unknown runtime intrinsic %d", in.Imm)
		}
	}
	return nil
}
