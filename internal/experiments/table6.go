package experiments

import (
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/heuristics"
	"repro/internal/ir"
	"repro/internal/stats"
)

// Table6Result compares per-heuristic miss rates across architectures and
// languages (Table 6 of the paper): the Ball/Larus rates published for the
// MIPS, and our measured rates on the Alpha-style target split by language,
// plus our measured rates under the MIPS-style target as the
// cross-architecture axis.
type Table6Result struct {
	BallLarusMIPS [heuristics.NumHeuristics]float64
	OursC         [heuristics.NumHeuristics]float64
	OursFortran   [heuristics.NumHeuristics]float64
	OursOverall   [heuristics.NumHeuristics]float64
	OursMIPSTgt   [heuristics.NumHeuristics]float64
	// Coverage fractions (dynamic branches the heuristic applies to) for
	// the Alpha and MIPS-style targets: the ISA mostly shifts which
	// branches a heuristic can see (e.g. two-register equality branches
	// remove the Opcode heuristic's ==constant sites).
	OverallCov [heuristics.NumHeuristics]float64
	MIPSTgtCov [heuristics.NumHeuristics]float64
}

// perProgramHeuristicAvg averages per-heuristic miss rates across programs,
// including a program in a heuristic's average only if the heuristic
// applies to at least 1% of that program's executed branches — the
// inclusion rule of the paper's Table 6. The second result is the mean
// coverage fraction per heuristic.
func perProgramHeuristicAvg(data []*core.ProgramData, cfg heuristics.Config) (miss, cov [heuristics.NumHeuristics]float64) {
	var n [heuristics.NumHeuristics]int
	for _, pd := range data {
		per := heuristics.PerHeuristic(pd.Sites, pd.Profile, cfg)
		for h := range per {
			cov[h] += per[h].CoverageFraction()
			if per[h].CoverageFraction() >= 0.01 {
				miss[h] += per[h].MissRate()
				n[h]++
			}
		}
	}
	for h := range miss {
		if n[h] > 0 {
			miss[h] /= float64(n[h])
		}
		if len(data) > 0 {
			cov[h] /= float64(len(data))
		}
	}
	return miss, cov
}

// Table6 runs the cross-architecture heuristic study.
func Table6(ctx *Context) (*Table6Result, error) {
	res := &Table6Result{BallLarusMIPS: heuristics.BallLarusMIPSMiss}
	cData, err := ctx.LanguageData(ir.LangC, codegen.Default)
	if err != nil {
		return nil, err
	}
	fData, err := ctx.LanguageData(ir.LangFortran, codegen.Default)
	if err != nil {
		return nil, err
	}
	all, err := ctx.StudyData(codegen.Default)
	if err != nil {
		return nil, err
	}
	mipsAll, err := ctx.StudyData(codegen.MIPSCC)
	if err != nil {
		return nil, err
	}
	res.OursC, _ = perProgramHeuristicAvg(cData, heuristics.Config{})
	res.OursFortran, _ = perProgramHeuristicAvg(fData, heuristics.Config{})
	res.OursOverall, res.OverallCov = perProgramHeuristicAvg(all, heuristics.Config{})
	res.OursMIPSTgt, res.MIPSTgtCov = perProgramHeuristicAvg(mipsAll, heuristics.Config{})
	return res, nil
}

// DivergentHeuristics counts heuristics whose C and Fortran miss rates
// differ by more than 10 percentage points — the paper's observation that
// "four of the nine heuristics show a difference of greater than 10%".
func (r *Table6Result) DivergentHeuristics() int {
	n := 0
	for h := 0; h < int(heuristics.NumHeuristics); h++ {
		d := r.OursC[h] - r.OursFortran[h]
		if d < 0 {
			d = -d
		}
		if d > 0.10 {
			n++
		}
	}
	return n
}

// Render formats the table in the paper's layout.
func (r *Table6Result) Render() string {
	t := stats.NewTable("Branch Heuristic", "B&L (MIPS)", "Ours C", "Ours FORT", "Ours Overall",
		"Ours (MIPS tgt)", "Cov Alpha", "Cov MIPS")
	for h := heuristics.Heuristic(0); h < heuristics.NumHeuristics; h++ {
		t.Row(h.String(), stats.Pct(r.BallLarusMIPS[h]), stats.Pct(r.OursC[h]),
			stats.Pct(r.OursFortran[h]), stats.Pct(r.OursOverall[h]), stats.Pct(r.OursMIPSTgt[h]),
			stats.Pct(r.OverallCov[h]), stats.Pct(r.MIPSTgtCov[h]))
	}
	return "Table 6: comparison of branch miss rates for prediction heuristics\n" +
		"(averages include a program only when the heuristic applies to >=1% of its branches)\n" +
		t.String()
}
