// Compiler sweep: the Table 7 experiment as a library workflow.
//
// One program (espresso, as in the paper) is compiled under the four
// compiler configurations — DEC cc V1.2, cc V2.0 (conditional moves), GEM
// (conditional moves + loop unrolling), and a gcc-style configuration — and
// the branch population and heuristic accuracy are compared. The paper's
// point: "heuristic-based branch prediction rates vary with programs,
// program style, compiler, architecture, and runtime system."
//
// Run with: go run ./examples/compilersweep [program]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/heuristics"
)

func main() {
	name := "espresso"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	e, ok := corpus.ByName(name)
	if !ok {
		log.Fatalf("unknown corpus program %q", name)
	}
	fmt.Printf("program %s under four compilers:\n\n", name)
	fmt.Printf("%-14s %10s %12s %12s %10s %10s %10s\n",
		"compiler", "insns", "branch sites", "%loop brs", "%taken", "APHC", "perfect")
	aphc := heuristics.NewAPHC()
	for _, tgt := range codegen.Compilers {
		prog, err := e.Compile(tgt)
		if err != nil {
			log.Fatal(err)
		}
		pd, err := core.Analyze(prog, e.Language, e.RunConfig())
		if err != nil {
			log.Fatal(err)
		}
		b := heuristics.BreakdownOf(pd.Sites, pd.Profile, aphc)
		fmt.Printf("%-14s %10d %12d %11.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			tgt.Name, pd.Profile.Insns, pd.Profile.StaticSites(),
			100-b.PctNonLoop(), pd.Profile.PercentTaken(),
			100*heuristics.MissRate(pd.Sites, pd.Profile, aphc),
			100*heuristics.MissRate(pd.Sites, pd.Profile, &heuristics.Perfect{Prof: pd.Profile}))
	}
	fmt.Println("\nGEM's unrolling cuts the loop-branch share; conditional moves remove")
	fmt.Println("short branches (raising the loop share); the gcc-style layout changes")
	fmt.Println("which branches carry the loop back edges.")
}
