package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// TestDifferentialRandomPrograms generates random MinC programs and checks
// that every target/compiler configuration computes identical outputs — the
// compiler axes of Tables 6 and 7 must be semantics-preserving by
// construction, so any divergence is a code-generator bug.
func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	targets := []Target{AlphaCCv2, AlphaGEM, AlphaGCC, MIPSCC,
		{Name: "tiny-regs", ISA: ISAAlpha, IntTemps: 3, FloatTemps: 3, FoldConstants: true}}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		src := genProgram(rng)
		ast, err := minic.Parse("fuzz", src)
		if err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, src)
		}
		base := runFor(t, trial, ast, AlphaCC, src)
		for _, tgt := range targets {
			got := runFor(t, trial, ast, tgt, src)
			if got.Result != base.Result {
				t.Fatalf("trial %d: %s result %d, base %d\n%s",
					trial, tgt.Name, got.Result, base.Result, src)
			}
			if len(got.Outputs) != len(base.Outputs) {
				t.Fatalf("trial %d: %s output count %d, base %d\n%s",
					trial, tgt.Name, len(got.Outputs), len(base.Outputs), src)
			}
			for i := range got.Outputs {
				if got.Outputs[i] != base.Outputs[i] {
					t.Fatalf("trial %d: %s output[%d] = %d, base %d\n%s",
						trial, tgt.Name, i, got.Outputs[i], base.Outputs[i], src)
				}
			}
		}
	}
}

func runFor(t *testing.T, trial int, ast *minic.Program, tgt Target, src string) *interp.Profile {
	t.Helper()
	prog, err := Compile(ast, ir.LangC, tgt)
	if err != nil {
		t.Fatalf("trial %d: compile for %s: %v\n%s", trial, tgt.Name, err, src)
	}
	prof, err := interp.Run(prog, interp.Config{Seed: uint64(trial + 1), MaxInsns: 2_000_000})
	if err != nil {
		t.Fatalf("trial %d: run for %s: %v\n%s", trial, tgt.Name, err, src)
	}
	return prof
}

// genProgram builds a random but safe MinC program: globals, a few scalar
// locals mutated through nested ifs and bounded loops, no division (to
// avoid fault divergence) and no unbounded recursion.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("int g0;\nint g1;\nint arr[16];\n")
	b.WriteString("int main() {\n")
	b.WriteString("\tint v0;\n\tint v1;\n\tint v2;\n\tint i0;\n\tint i1;\n\tint i2;\n")
	b.WriteString("\tv0 = 3; v1 = 7; v2 = 11; g0 = 2; g1 = 5;\n")
	b.WriteString("\tfor (i0 = 0; i0 < 16; i0 = i0 + 1) { arr[i0] = i0 * 3 % 7; }\n")
	depth := 0
	var stmt func(indent string, inLoop bool)
	expr := func() string { return genExpr(rng, 3) }
	stmt = func(indent string, inLoop bool) {
		switch choice := rng.Intn(10); {
		case choice < 4: // assignment
			b.WriteString(fmt.Sprintf("%s%s = %s;\n", indent, genLval(rng), expr()))
		case choice < 6 && depth < 3: // if / if-else
			depth++
			b.WriteString(fmt.Sprintf("%sif (%s) {\n", indent, genCond(rng)))
			stmt(indent+"\t", inLoop)
			if rng.Intn(2) == 0 {
				b.WriteString(indent + "} else {\n")
				stmt(indent+"\t", inLoop)
			}
			b.WriteString(indent + "}\n")
			depth--
		case choice < 8 && depth < 2: // bounded counted loop
			// Each nesting depth owns its induction variable, so nested
			// loops cannot livelock each other.
			iv := fmt.Sprintf("i%d", depth)
			depth++
			n := 2 + rng.Intn(9)
			b.WriteString(fmt.Sprintf("%sfor (%s = 0; %s < %d; %s = %s + 1) {\n",
				indent, iv, iv, n, iv, iv))
			stmt(indent+"\t", true)
			if rng.Intn(3) == 0 {
				b.WriteString(fmt.Sprintf("%s\tif (%s) { break; }\n", indent, genCond(rng)))
			}
			b.WriteString(indent + "}\n")
			depth--
		case choice < 9: // print
			b.WriteString(fmt.Sprintf("%s__print(%s);\n", indent, expr()))
		default: // library call through the assignment path
			b.WriteString(fmt.Sprintf("%s%s = %s;\n", indent, genLval(rng), expr()))
		}
	}
	nStmts := 4 + rng.Intn(8)
	for s := 0; s < nStmts; s++ {
		stmt("\t", false)
	}
	b.WriteString("\t__print(v0); __print(v1); __print(v2); __print(g0); __print(g1);\n")
	b.WriteString("\treturn v0 + v1 * 3 + g0;\n}\n")
	return b.String()
}

var fuzzVars = []string{"v0", "v1", "v2", "g0", "g1"}

func genLval(rng *rand.Rand) string {
	if rng.Intn(4) == 0 {
		return fmt.Sprintf("arr[%d]", rng.Intn(16))
	}
	return fuzzVars[rng.Intn(len(fuzzVars))]
}

// genExpr produces an integer expression with magnitudes kept in range by
// modular reduction (no division, so no fault divergence).
func genExpr(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(100)-50)
		case 1:
			return fuzzVars[rng.Intn(len(fuzzVars))]
		default:
			return fmt.Sprintf("arr[%d]", rng.Intn(16))
		}
	}
	ops := []string{"+", "-", "*"}
	op := ops[rng.Intn(len(ops))]
	l := genExpr(rng, depth-1)
	r := genExpr(rng, depth-1)
	if op == "*" {
		// Keep products bounded.
		return fmt.Sprintf("((%s %% 1000) %s (%s %% 1000))", l, op, r)
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func genCond(rng *rand.Rand) string {
	cmps := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", genExpr(rng, 2), cmps[rng.Intn(len(cmps))], genExpr(rng, 2))
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, genExpr(rng, 1), cmps[rng.Intn(len(cmps))], genExpr(rng, 1))
	case 1:
		return fmt.Sprintf("%s || %s %s %s", c, genExpr(rng, 1), cmps[rng.Intn(len(cmps))], genExpr(rng, 1))
	default:
		return c
	}
}
