package codegen

import (
	"sort"

	"repro/internal/ir"
)

// EdgeGuidance is the estimated edge profile OptimizeLayout consumes. It is
// deliberately a plain data bundle — codegen never imports the estimator,
// so any probability source (ESP, heuristics, a measured profile, a test
// fixture) can drive layout.
type EdgeGuidance struct {
	// Prob maps each conditional branch site to its predicted
	// taken-probability. Missing sites default to 0.5.
	Prob map[ir.BranchRef]float64
	// LocalFreq maps function name → block ID → predicted per-invocation
	// execution frequency (entry block = 1). Missing blocks default to 0.
	LocalFreq map[string]map[int]float64
}

func (g *EdgeGuidance) prob(ref ir.BranchRef) float64 {
	if g == nil {
		return 0.5
	}
	if p, ok := g.Prob[ref]; ok {
		return p
	}
	return 0.5
}

func (g *EdgeGuidance) freq(fn string, block int) float64 {
	if g == nil {
		return 0
	}
	return g.LocalFreq[fn][block]
}

// LayoutOptions controls OptimizeLayout.
type LayoutOptions struct {
	// SplitCold sinks predicted-cold blocks out of line: a trace through
	// hot code never pulls a cold successor in as its fall-through, so cold
	// chains accumulate at the end of the function.
	SplitCold bool
	// ColdBelow is the per-invocation frequency under which a block counts
	// as cold when SplitCold is set.
	ColdBelow float64
}

// OptimizeLayout reorders every function's basic blocks so that each
// conditional branch's predicted-likely successor becomes the fall-through
// (inverting the branch sense where the opcode permits), and — with
// SplitCold — predicted-cold blocks sink out of line past the hot traces.
// Block IDs are preserved, so branch sites (ir.BranchRef) remain valid
// names across the pass; correctness is restored after reordering by
// inverting branches, inserting trampoline blocks where neither successor
// could be made adjacent, appending explicit jumps for displaced implicit
// fall-throughs, and deleting jumps made redundant by the new order.
//
// Under the simulated-cycle model this is the classic win of profile-driven
// code placement: a correctly-laid-out branch falls through on its common
// path, paying neither the taken-redirect nor (because BTFNT predicts
// forward branches not-taken) the misprediction penalty.
func OptimizeLayout(p *ir.Program, g *EdgeGuidance, opt LayoutOptions) {
	for _, f := range p.Funcs {
		layoutFunc(f, g, opt)
	}
}

// invertibleBranch reports whether negating the branch opcode preserves
// semantics exactly. Float order comparisons are excluded: with a NaN
// operand both fblt x and fbge x fall through, so the negated form is not
// the complement and inversion could change program behaviour.
func invertibleBranch(op ir.Op) bool {
	switch op {
	case ir.OpFblt, ir.OpFble, ir.OpFbgt, ir.OpFbge:
		return false
	}
	return op.IsCondBranch()
}

func layoutFunc(f *ir.Func, g *EdgeGuidance, opt LayoutOptions) {
	n := len(f.Blocks)
	if n < 2 {
		return
	}
	byID := make(map[int]*ir.Block, n)
	oldFall := make(map[int]int, n) // block ID → old layout successor ID (-1 for last)
	maxID := 0
	for i, b := range f.Blocks {
		byID[b.ID] = b
		if b.ID > maxID {
			maxID = b.ID
		}
		if i+1 < n {
			oldFall[b.ID] = f.Blocks[i+1].ID
		} else {
			oldFall[b.ID] = -1
		}
	}
	cold := func(id int) bool {
		return opt.SplitCold && g.freq(f.Name, id) < opt.ColdBelow
	}

	// Trace formation: greedily chain each block to its preferred unplaced
	// successor. The preferred successor of a conditional branch is the one
	// predicted likely — the taken target only when the branch sense can be
	// inverted to keep semantics. Hot traces refuse to chain into cold
	// blocks, which is what sinks cold code out of line.
	placed := make(map[int]bool, n)
	order := make([]*ir.Block, 0, n)
	appendTrace := func(start *ir.Block) {
		for cur := start; cur != nil && !placed[cur.ID]; {
			placed[cur.ID] = true
			order = append(order, cur)
			var cands []int
			t := cur.Terminator()
			switch {
			case t == nil:
				cands = []int{oldFall[cur.ID]}
			case t.Op.IsCondBranch():
				ft, tk := oldFall[cur.ID], t.Target
				if g.prob(ir.BranchRef{Func: f.Name, Block: cur.ID}) > 0.5 &&
					invertibleBranch(t.Op) && tk != ft {
					cands = []int{tk, ft}
				} else {
					cands = []int{ft, tk}
				}
			case t.Op.Class() == ir.ClassUncondBranch:
				cands = []int{t.Target}
			}
			next := (*ir.Block)(nil)
			for _, id := range cands {
				if id < 0 || placed[id] {
					continue
				}
				if cold(id) && !cold(cur.ID) {
					continue // leave cold successors for their own trace
				}
				next = byID[id]
				break
			}
			cur = next
		}
	}
	appendTrace(f.Blocks[0])
	// Seed the remaining traces hottest-first; cold blocks seed last, in
	// their original relative order, forming the out-of-line cold region.
	var rest []*ir.Block
	for _, b := range f.Blocks {
		if !placed[b.ID] {
			rest = append(rest, b)
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		ci, cj := cold(rest[i].ID), cold(rest[j].ID)
		if ci != cj {
			return !ci
		}
		if ci {
			return false // cold region keeps original order
		}
		return g.freq(f.Name, rest[i].ID) > g.freq(f.Name, rest[j].ID)
	})
	for _, b := range rest {
		if !placed[b.ID] {
			appendTrace(b)
		}
	}

	// Fixup: restore control flow under the new order. Trampolines get
	// fresh IDs, so existing branch sites keep their names.
	out := make([]*ir.Block, 0, len(order)+4)
	for i, b := range order {
		out = append(out, b)
		nextID := -1
		if i+1 < len(order) {
			nextID = order[i+1].ID
		}
		t := b.Terminator()
		switch {
		case t == nil:
			if ft := oldFall[b.ID]; ft != nextID {
				b.Insns = append(b.Insns, ir.Instr{Op: ir.OpBr, Target: ft})
			}
		case t.Op.IsCondBranch():
			ft := oldFall[b.ID]
			switch {
			case ft == nextID:
				// Old fall-through is adjacent again: nothing to do.
			case t.Target == nextID && invertibleBranch(t.Op) && t.Target != ft:
				t.Op = t.Op.BranchNegate()
				t.Target = ft
			default:
				maxID++
				out = append(out, &ir.Block{ID: maxID,
					Insns: []ir.Instr{{Op: ir.OpBr, Target: ft}}})
			}
		case t.Op == ir.OpBr:
			if t.Target == nextID {
				b.Insns = b.Insns[:len(b.Insns)-1]
			}
		}
	}
	f.Blocks = out
}
