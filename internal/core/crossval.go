package core

import (
	"runtime"
	"sync"

	"repro/internal/features"
	"repro/internal/heuristics"
)

// FoldResult is one leave-one-out fold: the model trained on every corpus
// program except Held, evaluated on Held.
type FoldResult struct {
	Held     string
	MissRate float64
	// TrainPrograms is the number of programs trained on.
	TrainPrograms int
	// Epochs is the neural training length of the fold (0 for trees).
	Epochs int
}

// preparedProgram is one program's fold-independent training data: the
// masked feature vectors, targets, and weights of its executed branches.
// Cross-validation extracts these once per program and reuses them across
// every fold instead of re-deriving them per fold (masking and example
// extraction depend only on the configuration, not on which program is
// held out; only the encoder's vocabulary and normalization are per-fold).
type preparedProgram struct {
	masked  []features.Vector
	targets []float64
	weights []float64
}

func prepareProgram(pd *ProgramData, excluded map[int]bool) preparedProgram {
	examples := pd.Examples()
	p := preparedProgram{
		masked:  make([]features.Vector, len(examples)),
		targets: make([]float64, len(examples)),
		weights: make([]float64, len(examples)),
	}
	for i, ex := range examples {
		p.masked[i] = maskVector(ex.Vector, excluded)
		p.targets[i] = ex.Target
		p.weights[i] = ex.Weight
	}
	return p
}

// CrossValidate performs the paper's leave-one-out cross-validation: for
// each program, ESP trains on the remaining programs of the group and
// predicts the held-out program. The paper validates within language groups
// (C programs against C programs, Fortran against Fortran); callers pass the
// group as corpus.
//
// Folds run in parallel but every fold's training is deterministic (the
// seed is fixed per configuration), so results are reproducible.
func CrossValidate(corpus []*ProgramData, cfg Config) []FoldResult {
	return crossValidate(corpus, cfg, maxParallel())
}

// CrossValidateSerial is CrossValidate with the folds run one at a time, in
// order. It exists as the reference for tests: the parallel run must produce
// identical folds.
func CrossValidateSerial(corpus []*ProgramData, cfg Config) []FoldResult {
	return crossValidate(corpus, cfg, 1)
}

func crossValidate(corpus []*ProgramData, cfg Config, workers int) []FoldResult {
	cfg = cfg.withDefaults()
	excluded := excludeSet(cfg.ExcludeFeatures)
	preps := make([]preparedProgram, len(corpus))
	for i, pd := range corpus {
		preps[i] = prepareProgram(pd, excluded)
	}
	results := make([]FoldResult, len(corpus))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range corpus {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = crossValidateFold(corpus, preps, i, cfg, excluded)
		}(i)
	}
	wg.Wait()
	return results
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

func crossValidateFold(corpus []*ProgramData, preps []preparedProgram, hold int, cfg Config, excluded map[int]bool) FoldResult {
	total := 0
	for j := range preps {
		if j != hold {
			total += len(preps[j].masked)
		}
	}
	masked := make([]features.Vector, 0, total)
	targets := make([]float64, 0, total)
	weights := make([]float64, 0, total)
	for j := range preps {
		if j == hold {
			continue
		}
		masked = append(masked, preps[j].masked...)
		targets = append(targets, preps[j].targets...)
		weights = append(weights, preps[j].weights...)
	}
	model := trainMasked(masked, targets, weights, cfg, excluded)
	held := corpus[hold]
	miss := heuristics.MissRate(held.Sites, held.Profile, &Predictor{Model: model})
	return FoldResult{
		Held:          held.Name,
		MissRate:      miss,
		TrainPrograms: len(corpus) - 1,
		Epochs:        model.TrainStats.Epochs,
	}
}

// MissByProgram reshapes fold results into a name → miss-rate map.
func MissByProgram(folds []FoldResult) map[string]float64 {
	out := make(map[string]float64, len(folds))
	for _, f := range folds {
		if _, ok := out[f.Held]; !ok {
			out[f.Held] = f.MissRate
		}
	}
	return out
}

// MeanMiss averages the fold miss rates (the paper averages per-program
// miss rates within suites and overall).
func MeanMiss(folds []FoldResult) float64 {
	if len(folds) == 0 {
		return 0
	}
	var sum float64
	for _, f := range folds {
		sum += f.MissRate
	}
	return sum / float64(len(folds))
}
