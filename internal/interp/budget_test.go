package interp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/guard"
	"repro/internal/ir"
	"repro/internal/minic"
)

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	ast, err := minic.Parse("adversarial", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(ast, ir.LangC, codegen.Default)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestBudgetErrorsAreTyped: runaway programs — infinite loops, unbounded
// recursion, heap exhaustion — must come back as errors wrapping
// guard.ErrBudgetExceeded within their configured budgets, not hang the
// interpreter.
func TestBudgetErrorsAreTyped(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cfg  Config
		want error
	}{
		{
			name: "infinite loop",
			src:  "int main() { while (1) {} return 0; }",
			cfg:  Config{MaxInsns: 100_000},
			want: ErrFuel,
		},
		{
			name: "unbounded recursion",
			src:  "int f(int n) { return f(n + 1); } int main() { return f(0); }",
			cfg:  Config{MaxCallDepth: 64},
			want: ErrCallDepth,
		},
		{
			name: "stack exhaustion",
			src: "int f(int n) { int a[64]; a[0] = n; return f(a[0] + 1); }" +
				"int main() { return f(0); }",
			cfg:  Config{MemWords: 1 << 17},
			want: ErrStack,
		},
		{
			name: "heap exhaustion",
			src:  "int main() { int *p; while (1) { p = __alloc(4096); } return 0; }",
			cfg:  Config{MemWords: 1 << 17, MaxInsns: 10_000_000},
			want: ErrHeap,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := compileSrc(t, tc.src)
			start := time.Now()
			_, err := Run(prog, tc.cfg)
			if err == nil {
				t.Fatal("runaway program terminated without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if !errors.Is(err, guard.ErrBudgetExceeded) {
				t.Fatalf("budget error is not typed: %v", err)
			}
			if d := time.Since(start); d > 10*time.Second {
				t.Fatalf("budgeted run took %v", d)
			}
		})
	}
}

// TestNonBudgetErrorsStayUntyped: genuine program faults must not be
// classified as budget violations.
func TestNonBudgetErrorsStayUntyped(t *testing.T) {
	prog := compileSrc(t, "int main() { int x; x = 0; return 1 / x; }")
	_, err := Run(prog, Config{})
	if !errors.Is(err, ErrDivZero) {
		t.Fatalf("error %v, want div-zero", err)
	}
	if errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("program fault mistyped as budget violation: %v", err)
	}
}

// TestConfigurableCallDepth: the default call-depth budget still applies
// when unset.
func TestConfigurableCallDepth(t *testing.T) {
	prog := compileSrc(t, "int f(int n) { return f(n + 1); } int main() { return f(0); }")
	_, err := Run(prog, Config{})
	if !errors.Is(err, ErrCallDepth) && !errors.Is(err, ErrStack) {
		t.Fatalf("default-depth run: %v", err)
	}
}
