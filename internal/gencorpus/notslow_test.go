//go:build !slow

package gencorpus_test

// slowTests is enabled by the slow build tag; see slow_test.go.
const slowTests = false
