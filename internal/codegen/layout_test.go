package codegen

import (
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minic"
)

// layoutSrc exercises every fixup path of OptimizeLayout: a mostly-taken
// forward branch (inversion), an if/else diamond, a loop, and a rarely
// executed error arm (cold splitting).
const layoutSrc = `
int main() {
	int i;
	int s;
	int bad;
	s = 0;
	bad = 0;
	for (i = 0; i < 200; i = i + 1) {
		if (i != 100) {
			s = s + i;
		} else {
			bad = bad + 1;
			__print(bad);
		}
		if (s > 10000) {
			s = s - 7;
		}
	}
	__print(s);
	return s;
}
`

// measuredGuidance runs the program and converts its profile into
// EdgeGuidance: measured taken fractions plus per-invocation block
// frequencies derived from edge counts.
func measuredGuidance(t *testing.T, prog *ir.Program, cfg interp.Config) *EdgeGuidance {
	t.Helper()
	cfg.CollectEdges = true
	prof, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	g := &EdgeGuidance{
		Prob:      make(map[ir.BranchRef]float64),
		LocalFreq: make(map[string]map[int]float64),
	}
	for ref, c := range prof.Branches {
		if c.Executed > 0 {
			g.Prob[ref] = c.TakenFraction()
		}
	}
	for _, f := range prog.Funcs {
		calls := prof.Calls[f.Name]
		if calls == 0 {
			continue
		}
		m := make(map[int]float64)
		for i, b := range f.Blocks {
			var dyn int64
			if i == 0 {
				dyn = calls
			}
			for e, n := range prof.Edges {
				if e.Func == f.Name && e.To == b.ID {
					dyn += n
				}
			}
			m[b.ID] = float64(dyn) / float64(calls)
		}
		g.LocalFreq[f.Name] = m
	}
	return g
}

func TestOptimizeLayoutPreservesSemanticsAndSavesCycles(t *testing.T) {
	ast, err := minic.Parse("layout", layoutSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := interp.Config{CollectEdges: true}
	base, err := Compile(ast, ir.LangC, Default)
	if err != nil {
		t.Fatal(err)
	}
	baseProf, err := interp.Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseCycles, err := interp.CycleCount(base, baseProf)
	if err != nil {
		t.Fatal(err)
	}

	opt, err := Compile(ast, ir.LangC, Default)
	if err != nil {
		t.Fatal(err)
	}
	guide := measuredGuidance(t, opt, interp.Config{})
	OptimizeLayout(opt, guide, LayoutOptions{SplitCold: true, ColdBelow: 0.01})
	if err := opt.Verify(); err != nil {
		t.Fatalf("layout produced invalid IR: %v", err)
	}
	optProf, err := interp.Run(opt, cfg)
	if err != nil {
		t.Fatalf("optimized run: %v\n%s", err, opt.Disassemble())
	}
	if !reflect.DeepEqual(optProf.Outputs, baseProf.Outputs) ||
		!reflect.DeepEqual(optProf.FOutputs, baseProf.FOutputs) ||
		optProf.Result != baseProf.Result {
		t.Fatalf("layout changed program behaviour: outputs %v vs %v, result %d vs %d",
			optProf.Outputs, baseProf.Outputs, optProf.Result, baseProf.Result)
	}
	optCycles, err := interp.CycleCount(opt, optProf)
	if err != nil {
		t.Fatal(err)
	}
	if optCycles >= baseCycles {
		t.Fatalf("perfect-profile layout did not save cycles: %d -> %d", baseCycles, optCycles)
	}
}

func TestOptimizeLayoutReferencePathAgrees(t *testing.T) {
	ast, err := minic.Parse("layout", layoutSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(ast, ir.LangC, Default)
	if err != nil {
		t.Fatal(err)
	}
	guide := measuredGuidance(t, prog, interp.Config{})
	OptimizeLayout(prog, guide, LayoutOptions{SplitCold: true, ColdBelow: 0.01})
	cfg := interp.Config{CollectEdges: true}
	a, err := interp.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.RunReference(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("micro-op and reference paths disagree on laid-out program")
	}
}

// unrollGateSrc has a hot high-trip loop (line 5) and a cold loop that runs
// twice (line 8). Guided unrolling must replicate only the hot body.
const unrollGateSrc = `int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 500; i = i + 1) { s = s + i; }
	s = s / 100;
	i = 0;
	for (i = 0; i < 2; i = i + 1) { s = s + 2 * i; }
	__print(s);
	return s;
}
`

func TestUnrollGateLeavesColdLoopAlone(t *testing.T) {
	ast, err := minic.Parse("unrollgate", unrollGateSrc)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Default
	tgt.Name = "unroll-test"
	tgt.UnrollLoops = 4

	sizeOf := func(plan *Plan) (int, *ir.Program) {
		prog, _, err := CompilePlanned(ast, ir.LangC, tgt, plan)
		if err != nil {
			t.Fatal(err)
		}
		return prog.NumInsns(), prog
	}
	noneSize, noneProg := sizeOf(&Plan{Unroll: func(minic.Pos) bool { return false }})
	hotSize, hotProg := sizeOf(&Plan{Unroll: func(pos minic.Pos) bool { return pos.Line == 5 }})
	allSize, allProg := sizeOf(nil)

	if !(noneSize < hotSize && hotSize < allSize) {
		t.Fatalf("unroll gating not selective: none=%d hot-only=%d all=%d insns",
			noneSize, hotSize, allSize)
	}
	// The gated compile must replicate exactly as much as the unconditional
	// one does for the hot loop: the delta of unrolling the cold loop too is
	// what staying cold saves.
	var results []int64
	var outputs [][]int64
	for _, prog := range []*ir.Program{noneProg, hotProg, allProg} {
		prof, err := interp.Run(prog, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, prof.Result)
		outputs = append(outputs, prof.Outputs)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("unroll gating changed results: %v", results)
	}
	if !reflect.DeepEqual(outputs[0], outputs[1]) || !reflect.DeepEqual(outputs[1], outputs[2]) {
		t.Fatalf("unroll gating changed outputs: %v", outputs)
	}
}

func TestCmovGate(t *testing.T) {
	src := `int main() {
	int x;
	int v;
	x = __input(0);
	v = 0;
	if (x > 3) { v = 7; }
	__print(v);
	return v;
}
`
	ast, err := minic.Parse("cmovgate", src)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Default
	tgt.Name = "cmov-test"
	tgt.UseCmov = true

	countCmov := func(plan *Plan) int {
		prog, _, err := CompilePlanned(ast, ir.LangC, tgt, plan)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Insns {
					if b.Insns[i].Op.Class() == ir.ClassCmov {
						n++
					}
				}
			}
		}
		return n
	}
	if got := countCmov(nil); got == 0 {
		t.Fatal("unconditional cmov target emitted no conditional moves")
	}
	if got := countCmov(&Plan{Cmov: func(minic.Pos) bool { return false }}); got != 0 {
		t.Fatalf("gated-off compile still emitted %d conditional moves", got)
	}
	if got := countCmov(&Plan{Cmov: func(pos minic.Pos) bool { return pos.Line == 6 }}); got == 0 {
		t.Fatal("selectively-enabled cmov was not applied")
	}
}

func TestCompilePlannedMetaRecordsLoops(t *testing.T) {
	ast, err := minic.Parse("meta", unrollGateSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, meta, err := CompilePlanned(ast, ir.LangC, Default, nil)
	if err != nil {
		t.Fatal(err)
	}
	loopLines := map[int]bool{}
	for _, o := range meta.Branch {
		if o.Loop {
			loopLines[o.Pos.Line] = true
		}
	}
	if !loopLines[5] || !loopLines[8] {
		t.Fatalf("loop bottom tests not recorded; loop origin lines: %v", loopLines)
	}
}
