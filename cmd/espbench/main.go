// Command espbench regenerates every table and figure of the paper's
// evaluation from the synthetic corpus. Run with no arguments for
// everything, or select individual experiments:
//
//	espbench -table 4          # the central predictor comparison
//	espbench -figure 2         # the tomcatv hot-fragment profile
//	espbench -scheme           # the Section 3.1.2 Scheme study
//	espbench -corpussize       # the corpus-size observation
//	espbench -ablations        # design-choice ablations
//	espbench -orders           # exhaustive APHC order search
//
// With -bench it instead runs micro-benchmarks of the pipeline hot paths
// and writes machine-readable BENCH_<name>.json files:
//
//	espbench -bench all -benchout .
//	espbench -bench parse,forward -benchout bench/
//
// With -serve it benchmarks the serving request path — the committed float
// pipeline against the quantized zero-allocation arena pipeline — and
// writes BENCH_serve.json:
//
//	espbench -serve -benchout .
//
// With -pgo it runs the ESP-guided optimization study (simulated cycles of
// unguided vs ESP/heuristic/perfect-guided binaries) and writes
// BENCH_pgo.json:
//
//	espbench -pgo -benchout .
//
// With -hwsim it co-simulates dynamic hardware predictors (1-bit, 2-bit,
// gshare, TAGE) over the corpus branch streams, seeding their counters from
// each static hint source, alongside the branch-predictability taxonomy,
// and writes BENCH_hwsim.json:
//
//	espbench -hwsim -benchout .
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "render one table (1-7)")
	figure := flag.Int("figure", 0, "render one figure (1-2)")
	scheme := flag.Bool("scheme", false, "run the Scheme language study")
	corpusSize := flag.Bool("corpussize", false, "run the corpus-size study")
	figure2b := flag.Bool("figure2b", false, "run the Figure 2b generated-corpus-size study (opt-in: trains on up to -gen-max programs)")
	genMax := flag.Int("gen-max", 4000, "largest generated corpus size for -figure2b")
	genBench := flag.Bool("gencorpus", false, "benchmark the generative-corpus pipeline and write BENCH_gencorpus.json")
	ablations := flag.Bool("ablations", false, "run the ESP design ablations")
	orders := flag.Bool("orders", false, "run the exhaustive APHC order search")
	profileEst := flag.Bool("profileest", false, "run the Section 6 profile-estimation study")
	pgoStudy := flag.Bool("pgo", false, "run the ESP-guided optimization study and write BENCH_pgo.json")
	pgoGen := flag.Int("pgo-gen", 10, "generated programs in the -pgo study slice")
	hwsim := flag.Bool("hwsim", false, "run the hardware-predictor co-simulation and predictability taxonomy and write BENCH_hwsim.json")
	hwsimGen := flag.Int("hwsim-gen", 10, "generated programs in the -hwsim study slice")
	hidden := flag.Int("hidden", 0, "override ESP hidden-layer width")
	seed := flag.Uint64("seed", 0, "override ESP training seed")
	bench := flag.String("bench", "", "run micro-benchmarks (comma-separated names or \"all\") instead of experiments")
	serveBench := flag.Bool("serve", false, "benchmark the serving request path (float baseline vs quantized arena pipeline) and write BENCH_serve.json")
	stages := flag.Bool("stages", false, "time the analysis pipeline per stage (compile/trace/featurize/train) and write BENCH_stages.json")
	benchout := flag.String("benchout", ".", "directory for BENCH_<name>.json files")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (default $ESPCACHE_DIR, else .espcache)")
	noCache := flag.Bool("no-cache", false, "disable the persistent analysis cache")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			}
		}()
	}

	if *bench != "" {
		if err := runBenchSuite(*bench, *benchout); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		if err := runServeBench(*benchout, core.Config{Hidden: *hidden, Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *stages {
		if err := runStages(*benchout, core.Config{Hidden: *hidden, Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *genBench {
		if err := runGencorpusBench(*benchout, core.Config{Hidden: *hidden, Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var cache *artifact.Cache
	if !*noCache {
		var err error
		if cache, err = artifact.Open(artifact.DefaultDir(*cacheDir)); err != nil {
			// The cache is an optimization: an unwritable directory costs
			// warm starts, not results.
			fmt.Fprintf(os.Stderr, "espbench: %v (continuing uncached)\n", err)
		}
	}
	ctx := experiments.NewContextWithCache(cache)
	espCfg := core.Config{Hidden: *hidden, Seed: *seed}
	if *pgoStudy {
		if err := runPGOStudy(ctx, espCfg, *pgoGen, *benchout); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *hwsim {
		if err := runHwsimStudy(ctx, espCfg, *hwsimGen, *benchout); err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	any := *table != 0 || *figure != 0 || *scheme || *corpusSize || *figure2b || *ablations || *orders || *profileEst

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "espbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if !any || *table == 1 {
		run("table 1", func() (string, error) { return experiments.Table1(), nil })
	}
	if !any || *table == 2 {
		run("table 2", func() (string, error) { return experiments.Table2(), nil })
	}
	if !any || *table == 3 {
		run("table 3", func() (string, error) {
			r, err := experiments.Table3(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *table == 4 {
		run("table 4", func() (string, error) {
			r, err := experiments.Table4(ctx, espCfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *table == 5 {
		run("table 5", func() (string, error) {
			r, err := experiments.Table5(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *table == 6 {
		run("table 6", func() (string, error) {
			r, err := experiments.Table6(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *table == 7 {
		run("table 7", func() (string, error) {
			r, err := experiments.Table7(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *figure == 1 {
		run("figure 1", func() (string, error) { return experiments.Figure1(100, 20), nil })
	}
	if !any || *figure == 2 {
		run("figure 2", func() (string, error) {
			r, err := experiments.Figure2(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *scheme {
		run("scheme study", func() (string, error) {
			r, err := experiments.SchemeStudy(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *corpusSize {
		run("corpus size", func() (string, error) {
			r, err := experiments.CorpusSize(ctx, []int{8, 12, 16, 23}, espCfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	// Figure 2b is opt-in only: its largest corpus sizes train on thousands
	// of generated programs, far beyond the default everything-run's budget.
	if *figure2b {
		run("figure 2b", func() (string, error) {
			sizes := []int{46, 100, 250, 500, 1000, 2000, 4000}
			var kept []int
			for _, s := range sizes {
				if s <= *genMax {
					kept = append(kept, s)
				}
			}
			r, err := experiments.CorpusSizeGen(ctx, experiments.GenSweep{Sizes: kept}, espCfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *ablations {
		run("ablations", func() (string, error) {
			out := ""
			fs, err := experiments.AblationFeatureSets(ctx)
			if err != nil {
				return "", err
			}
			out += experiments.RenderAblations("Ablation: feature sets", fs) + "\n"
			hu, err := experiments.AblationHiddenUnits(ctx, []int{8, 12, 20, 32})
			if err != nil {
				return "", err
			}
			out += experiments.RenderAblations("Ablation: hidden units", hu) + "\n"
			lo, err := experiments.AblationLoss(ctx)
			if err != nil {
				return "", err
			}
			out += experiments.RenderAblations("Ablation: loss weighting", lo) + "\n"
			cl, err := experiments.AblationClassifier(ctx)
			if err != nil {
				return "", err
			}
			out += experiments.RenderAblations("Ablation: classifier", cl) + "\n"
			cp, err := experiments.AblationCallPolarity(ctx)
			if err != nil {
				return "", err
			}
			out += experiments.RenderAblations("Ablation: Call heuristic polarity", cp)
			return out, nil
		})
	}
	if !any || *orders {
		run("order search", func() (string, error) {
			r, err := experiments.APHCOrderSearch(ctx)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !any || *profileEst {
		run("profile estimation", func() (string, error) {
			r, err := experiments.ProfileEstimation(ctx, espCfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
}
