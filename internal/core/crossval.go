package core

import (
	"runtime"
	"sync"

	"repro/internal/heuristics"
)

// FoldResult is one leave-one-out fold: the model trained on every corpus
// program except Held, evaluated on Held.
type FoldResult struct {
	Held     string
	MissRate float64
	// TrainPrograms is the number of programs trained on.
	TrainPrograms int
	// Epochs is the neural training length of the fold (0 for trees).
	Epochs int
}

// CrossValidate performs the paper's leave-one-out cross-validation: for
// each program, ESP trains on the remaining programs of the group and
// predicts the held-out program. The paper validates within language groups
// (C programs against C programs, Fortran against Fortran); callers pass the
// group as corpus.
//
// Folds run in parallel but every fold's training is deterministic (the
// seed is fixed per configuration), so results are reproducible.
func CrossValidate(corpus []*ProgramData, cfg Config) []FoldResult {
	results := make([]FoldResult, len(corpus))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := range corpus {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = crossValidateFold(corpus, i, cfg)
		}(i)
	}
	wg.Wait()
	return results
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

func crossValidateFold(corpus []*ProgramData, hold int, cfg Config) FoldResult {
	train := make([]*ProgramData, 0, len(corpus)-1)
	for j, pd := range corpus {
		if j != hold {
			train = append(train, pd)
		}
	}
	model := Train(train, cfg)
	held := corpus[hold]
	miss := heuristics.MissRate(held.Sites, held.Profile, &Predictor{Model: model})
	return FoldResult{
		Held:          held.Name,
		MissRate:      miss,
		TrainPrograms: len(train),
		Epochs:        model.TrainStats.Epochs,
	}
}

// MissByProgram reshapes fold results into a name → miss-rate map.
func MissByProgram(folds []FoldResult) map[string]float64 {
	out := make(map[string]float64, len(folds))
	for _, f := range folds {
		out[f.Held] = f.MissRate
	}
	return out
}

// MeanMiss averages the fold miss rates (the paper averages per-program
// miss rates within suites and overall).
func MeanMiss(folds []FoldResult) float64 {
	if len(folds) == 0 {
		return 0
	}
	var sum float64
	for _, f := range folds {
		sum += f.MissRate
	}
	return sum / float64(len(folds))
}
