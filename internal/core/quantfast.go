package core

import (
	"repro/internal/features"
	"repro/internal/neural"
)

// quantFused is the serving-speed form of the int8 forward pass. The kernel
// path (features.QuantEncoder + neural.QuantNet.Forward) materializes the
// full D-wide int8 input row and runs H row-dot-products over it — but the
// row is almost entirely zeros: each of the 25 features contributes one
// small one-hot-ish block. So for every (feature, value) pair we prefold
// that block against the quantized weight matrix once, yielding an H-wide
// int32 contribution vector, and a prediction becomes 25 table lookups plus
// 25 H-wide int32 adds.
//
// The result is bit-identical to the kernel path by construction: integer
// addition is exact and associative, so summing per-feature partial dot
// products gives exactly the accumulators quantDot computes over the full
// row, and neural.QuantNet.ForwardAcc finishes in Forward's exact float
// operation order. The calibration sweep therefore measures with the kernel
// path and serving answers with this one; the differential test holds for
// both. The AVX2 kernels remain load-bearing for calibration (which probes
// dense rows) and for ForwardBatch callers.
type quantFused struct {
	net   *neural.QuantNet
	feats [features.NumFeatures]fusedFeature
}

// fusedFeature maps one feature's values to prefolded contribution vectors.
// Lookups take the packed-key open-addressing table when every vocabulary
// value packs into a uint64 (they essentially always do — values are short
// mnemonics); otherwise the whole feature falls back to a Go map.
type fusedFeature struct {
	// gated marks a feature the model excludes (Config.ExcludeFeatures):
	// masking it to "?" would zero its block, so the fused path just skips
	// it — which is why serving never needs the per-vector mask copy.
	gated bool
	// keys/vals form an open-addressed hash table (power-of-two size,
	// linear probing). keys[h]==0 marks an empty slot — safe because
	// packKey never returns 0 for a non-empty string and empty strings
	// never reach lookup (gated features are skipped).
	keys  []uint64
	vals  [][]int32
	mask  uint64
	shift uint
	// unseen is the contribution of an out-of-vocabulary value.
	unseen []int32
	// slow replaces keys/vals when some vocabulary value is unpackable.
	slow map[string][]int32
}

// packKey packs a short string into a uint64: little-endian bytes with the
// length in the top byte. Injective over strings of length 1..7, and never
// zero for them (the length byte is non-zero), so 0 can mark empty slots.
func packKey(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 7 {
		return 0, false
	}
	var k uint64
	for i := 0; i < len(s); i++ {
		k |= uint64(s[i]) << (8 * uint(i))
	}
	return k | uint64(len(s))<<56, true
}

// fusedHashMul is the Fibonacci-hashing multiplier (2^64/φ, odd).
const fusedHashMul = 0x9E3779B97F4A7C15

// newQuantFused folds the quantized encoder's per-value blocks against the
// quantized weight matrix. Features in excluded are gated: forward treats
// them exactly as if the vector had been masked to "?".
func newQuantFused(qn *neural.QuantNet, qe *features.QuantEncoder, excluded map[int]bool) *quantFused {
	f := &quantFused{net: qn}
	d := qn.Inputs
	for ft := 0; ft < features.NumFeatures; ft++ {
		if excluded[ft] {
			f.feats[ft].gated = true
			continue
		}
		off, _ := qe.FeatureSpan(ft)
		fold := func(block []int8) []int32 {
			contrib := make([]int32, qn.Hidden)
			for i := 0; i < qn.Hidden; i++ {
				row := qn.WQ[i*d+off : i*d+off+len(block)]
				var acc int32
				for j, b := range block {
					acc += int32(row[j]) * int32(b)
				}
				contrib[i] = acc
			}
			return contrib
		}
		known := qe.KnownBlocks(ft)
		ff := &f.feats[ft]
		ff.unseen = fold(qe.UnseenBlock(ft))
		packable := true
		for val := range known {
			if _, ok := packKey(val); !ok {
				packable = false
				break
			}
		}
		if !packable {
			ff.slow = make(map[string][]int32, len(known))
			for val, block := range known {
				ff.slow[val] = fold(block)
			}
			continue
		}
		size := 1
		for size < 2*(len(known)+1) {
			size <<= 1
		}
		ff.keys = make([]uint64, size)
		ff.vals = make([][]int32, size)
		ff.mask = uint64(size - 1)
		ff.shift = 64 - uint(log2(size))
		for val, block := range known {
			k, _ := packKey(val)
			h := (k * fusedHashMul) >> ff.shift
			for ff.keys[h] != 0 {
				h = (h + 1) & ff.mask
			}
			ff.keys[h] = k
			ff.vals[h] = fold(block)
		}
	}
	return f
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// forward runs one vector through the fused path. v may be unmasked: the
// model's excluded features are gated in the tables themselves. acc is the
// caller's H-wide scratch. Allocates nothing.
func (f *quantFused) forward(v *features.Vector, acc []int32) float64 {
	for i := range acc {
		acc[i] = 0
	}
	for ft := range v.Values {
		ff := &f.feats[ft]
		val := v.Values[ft]
		if ff.gated || val == features.Unknown || val == "" {
			// Masked or gated feature: the encoded block is all-zero,
			// contribution 0.
			continue
		}
		var contrib []int32
		switch {
		case ff.slow != nil:
			c, ok := ff.slow[val]
			if !ok {
				c = ff.unseen
			}
			contrib = c
		default:
			k, ok := packKey(val)
			if !ok {
				// Unpackable query against an all-packable vocabulary:
				// necessarily out of vocabulary.
				contrib = ff.unseen
				break
			}
			h := (k * fusedHashMul) >> ff.shift
			for {
				kk := ff.keys[h]
				if kk == k {
					contrib = ff.vals[h]
					break
				}
				if kk == 0 {
					contrib = ff.unseen
					break
				}
				h = (h + 1) & ff.mask
			}
		}
		for i, c := range contrib {
			acc[i] += c
		}
	}
	return f.net.ForwardAcc(acc)
}
